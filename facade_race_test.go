package dcvalidate_test

import (
	"sync"
	"testing"

	"dcvalidate"
)

// TestFacadeConcurrentUse pins the facade's thread-safety contract:
// validations and serving-cache queries proceed concurrently with
// topology and configuration mutations without data races. The test is
// meaningful under -race (make test-race and the CI race job run it);
// without -race it still exercises the lock ordering for deadlocks.
func TestFacadeConcurrentUse(t *testing.T) {
	dc, err := dcvalidate.NewDatacenter(dcvalidate.TopologyParams{
		Clusters: 2, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.Metrics() // instrument, so counters race-test too

	tor := dc.Topo.Device(dc.Topo.ClusterToRs(0)[0]).Name
	leaf := dc.Topo.Device(dc.Topo.ClusterLeaves(0)[0]).Name
	remote := dc.Topo.Device(dc.Topo.ClusterToRs(1)[0]).Name

	const iters = 20
	var wg sync.WaitGroup
	run := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}

	// Mutators: link flaps and config edits.
	run(func(i int) {
		if i%2 == 0 {
			if err := dc.FailLink(tor, leaf); err != nil {
				t.Error(err)
			}
		} else if err := dc.RestoreLink(tor, leaf); err != nil {
			t.Error(err)
		}
	})
	run(func(i int) {
		if err := dc.SetDeviceConfig(leaf, nil); err != nil {
			t.Error(err)
		}
	})
	// Full and incremental validations.
	run(func(i int) {
		if _, err := dc.Validate(dcvalidate.ValidateOptions{Workers: 2}); err != nil {
			t.Error(err)
		}
	})
	run(func(i int) {
		if _, err := dc.ValidateDelta(nil, dcvalidate.ValidateOptions{Workers: 2}); err != nil {
			t.Error(err)
		}
	})
	// Serving-cache queries of every kind.
	run(func(i int) {
		if _, err := dc.QueryDevice(tor); err != nil {
			t.Error(err)
		}
	})
	run(func(i int) {
		if _, err := dc.QueryReach(tor, remote); err != nil {
			t.Error(err)
		}
	})
	run(func(i int) {
		if _, err := dc.Summary(); err != nil {
			t.Error(err)
		}
		if _, _, err := dc.QueryViolations(); err != nil {
			t.Error(err)
		}
	})
	// Resharding mid-flight.
	run(func(i int) {
		switch i % 4 {
		case 0:
			dc.EnableSharding(2)
		case 2:
			dc.DisableSharding()
		default:
			dc.Shards()
		}
	})
	wg.Wait()

	// The facade must still converge to a consistent healthy state.
	if err := dc.RestoreLink(tor, leaf); err != nil {
		t.Fatal(err)
	}
	dc.Topo.RestoreAll()
	s, err := dc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Violating != 0 {
		t.Fatalf("restored fleet still violating: %+v", s)
	}
}
