package dcvalidate

import (
	"fmt"
	"strings"
	"testing"
)

// The failure explorer's checkpoint/restore invariant: a fault applied
// and then undone must leave the world byte-identical — every synthesized
// FIB and every validation verdict — or incremental exploration against a
// fixed healthy baseline would silently drift. These tests lock the
// FailLink/RestoreLink and FailDevice/RestoreDevice round trips.

// worldSnapshot renders every device's synthesized FIB plus the full
// validation verdict into one comparable string.
func worldSnapshot(t *testing.T, dc *Datacenter) string {
	t.Helper()
	var b strings.Builder
	for i := range dc.Topo.Devices {
		d := &dc.Topo.Devices[i]
		fmt.Fprintf(&b, "== %s ==\n", d.Name)
		if err := dc.WriteFIB(&b, d.Name); err != nil {
			t.Fatalf("WriteFIB(%s): %v", d.Name, err)
		}
	}
	rep, err := dc.Validate(ValidateOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, v := range rep.Violations() {
		fmt.Fprintf(&b, "violation: %+v\n", v)
	}
	return b.String()
}

func roundTripDC(t *testing.T) *Datacenter {
	t.Helper()
	dc, err := NewDatacenter(TopologyParams{
		Clusters: 2, ToRsPerCluster: 2, LeavesPerCluster: 2,
		SpinesPerPlane: 1, RegionalSpines: 2, RSLinksPerSpine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestFailRestoreLinkRoundTrip(t *testing.T) {
	dc := roundTripDC(t)
	base := worldSnapshot(t, dc)

	tor := dc.Topo.Device(dc.Topo.ClusterToRs(0)[0]).Name
	leaf := dc.Topo.Device(dc.Topo.ClusterLeaves(0)[0]).Name
	if err := dc.FailLink(tor, leaf); err != nil {
		t.Fatal(err)
	}
	if degraded := worldSnapshot(t, dc); degraded == base {
		t.Fatal("failing a ToR-leaf link changed nothing; snapshot is not sensitive enough")
	}
	if err := dc.RestoreLink(tor, leaf); err != nil {
		t.Fatal(err)
	}
	if got := worldSnapshot(t, dc); got != base {
		t.Error("FailLink/RestoreLink round trip did not restore a byte-identical world")
	}
}

func TestFailRestoreDeviceRoundTrip(t *testing.T) {
	dc := roundTripDC(t)
	base := worldSnapshot(t, dc)

	leaf := dc.Topo.ClusterLeaves(0)[0]
	flipped := dc.Topo.FailDevice(leaf)
	if len(flipped) == 0 {
		t.Fatal("FailDevice flipped no links on a healthy leaf")
	}
	if degraded := worldSnapshot(t, dc); degraded == base {
		t.Fatal("failing a leaf changed nothing; snapshot is not sensitive enough")
	}
	dc.Topo.RestoreDevice(leaf)
	if got := worldSnapshot(t, dc); got != base {
		t.Error("FailDevice/RestoreDevice round trip did not restore a byte-identical world")
	}
}

// TestOverlappingFailureExactRestore is the degraded-base case: when a
// link is already down before the device fails, FailDevice must not
// resurrect it on restore — the FailDevice return value replayed through
// RestoreLinks restores exactly the pre-FailDevice state.
func TestOverlappingFailureExactRestore(t *testing.T) {
	dc := roundTripDC(t)
	tor := dc.Topo.Device(dc.Topo.ClusterToRs(0)[0]).Name
	leafID := dc.Topo.ClusterLeaves(0)[0]
	leaf := dc.Topo.Device(leafID).Name

	if err := dc.FailLink(tor, leaf); err != nil {
		t.Fatal(err)
	}
	degradedBase := worldSnapshot(t, dc)

	flipped := dc.Topo.FailDevice(leafID)
	for _, lid := range flipped {
		l := dc.Topo.Link(lid)
		a, b := dc.Topo.Device(l.A).Name, dc.Topo.Device(l.B).Name
		if (a == tor && b == leaf) || (a == leaf && b == tor) {
			t.Fatal("FailDevice reported the already-down link as flipped")
		}
	}
	dc.Topo.RestoreLinks(flipped)
	if got := worldSnapshot(t, dc); got != degradedBase {
		t.Error("RestoreLinks(flipped) did not restore the degraded base state exactly")
	}

	// RestoreDevice, by contrast, deliberately resurrects everything.
	dc.Topo.RestoreDevice(leafID)
	if got := worldSnapshot(t, dc); got == degradedBase {
		t.Error("RestoreDevice should have brought the pre-existing failed link back up")
	}
}

// TestExploreFailuresFacade exercises the public certification entry
// point: exploration runs on a clone (the datacenter's own state must
// not move), accounts for the whole k=1 scenario space, and records into
// the facade registry.
func TestExploreFailuresFacade(t *testing.T) {
	dc := roundTripDC(t)
	reg := dc.Metrics()
	base := worldSnapshot(t, dc)

	res, err := dc.ExploreFailures(ExploreOptions{K: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != uint64(res.Universe) {
		t.Errorf("k=1 total %d != universe %d", res.Total, res.Universe)
	}
	if res.Explored == 0 || len(res.Violating) == 0 || len(res.MinimalSets) == 0 {
		t.Errorf("implausibly empty exploration: %d classes, %d violating, %d minimal sets",
			res.Explored, len(res.Violating), len(res.MinimalSets))
	}
	if got := worldSnapshot(t, dc); got != base {
		t.Error("ExploreFailures mutated the datacenter's live state")
	}
	explored := 0.0
	for _, s := range reg.Snapshot() {
		if s.Name == "dcv_explore_scenarios_explored_total" {
			explored = s.Value
		}
	}
	if explored == 0 {
		t.Error("exploration did not record into the facade metrics registry")
	}
}
