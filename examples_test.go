package dcvalidate

import (
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun compiles and runs every example main, asserting clean
// exit — the examples are living documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	examples := []string{
		"quickstart", "linkfailure", "legacyacl", "nsgbackup", "monitoring", "pathcheck",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example %s failed: %v\n%s", ex, err, out)
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", ex)
			}
		})
	}
}
