// Command dcbench regenerates every experiment of the paper reproduction
// (see DESIGN.md's experiment index) and prints paper-style tables.
//
// Usage:
//
//	dcbench              # run all experiments at default scale
//	dcbench -e e2,e4     # run a subset (ids e1..e20, e4s, e7b, e13b, e13c)
//	dcbench -quick       # smaller parameter sweeps (CI-friendly)
//	dcbench -full        # include the 10^4-device E2 point (minutes)
//
// E4, E16, E17, E18, E19, and E20 additionally write their
// machine-readable rows to BENCH_solver.json, BENCH_incremental.json,
// BENCH_explore.json, BENCH_conflint.json, BENCH_serve.json, and
// BENCH_pec.json in the current directory; e4s is the CI solver-perf
// smoke (panics when the SMT engine regresses past a generous per-contract
// ceiling or disagrees with the trie engine); e17 carries its own panic
// gates (pruned-vs-brute divergence, pruning-ratio floor, minimal-set
// replay); e18 is the conflint detection gate (panics on clean-fleet false
// positives, a missed seeded misconfig class, report instability, or
// SMT/interval shadow disagreement); e20 gates the packet-equivalence-
// class engine (panics unless PEC reports — per-device, shared-arena,
// and warm — render byte-identically to the trie engine at every size,
// agree with the SMT engine on a per-role sample, clear a 2x
// shared-arena cold dedup floor at >=2008 devices and a 2x warm-sweep
// speedup floor at the largest size, and trie warm stays <=1.5x cold —
// the make pec-smoke hook). Every run records a
// per-experiment snapshot of the observability registry (validator,
// solver, and synth-cache series plus dcv_experiment_seconds) and writes
// them to -metrics-out as JSON: one entry per experiment holding the
// delta of every series that moved during it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dcvalidate/internal/experiments"
	"dcvalidate/internal/obs"
)

// writeJSON serializes an experiment's machine-readable rows next to the
// human tables; dcbench exits non-zero when the artifact can't be
// written, matching the panic-on-error convention of the experiments.
func writeJSON(path string, rows any) {
	raw, err := json.MarshalIndent(rows, "", "  ")
	if err == nil {
		err = os.WriteFile(path, raw, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
}

// phaseMetrics is one -metrics-out entry: the registry movement
// attributable to a single experiment.
type phaseMetrics struct {
	ID      string       `json:"id"`
	Samples []obs.Sample `json:"samples"`
}

func main() {
	var (
		only       = flag.String("e", "", "comma-separated experiment ids (e1..e16, e7b, e13b, e13c); empty = all")
		quick      = flag.Bool("quick", false, "reduced sweeps")
		full       = flag.Bool("full", false, "include the 10^4-device sweep point")
		metricsOut = flag.String("metrics-out", "BENCH_metrics.json", "write per-experiment metric snapshots to this file (empty = disabled)")
	)
	flag.Parse()

	// Effective-parallelism report up front so speedup columns can be read
	// in context; E2 raises GOMAXPROCS itself for its parallel leg.
	fmt.Printf("dcbench: %d host CPUs, GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if runtime.NumCPU() == 1 {
		fmt.Println("dcbench: WARNING: single-CPU host — parallel speedup columns will read ~1.0x")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[strings.ToLower(id)] }

	e1Sizes := []int{1000, 2000, 4000}
	e2Sizes := []int{500, 1000, 2000, 5000}
	e3Sizes := []int{250, 500, 1000}
	e4Sizes := []int{500, 1000, 2000}
	e4sSize := 500
	e8Sizes := []int{100, 300, 1000, 3000, 5000}
	// E13's store holds every serialized table; 5000 devices (~20M rules)
	// is the single-instance ceiling for an in-memory store on a 16 GB
	// host. The paper's O(10K)-device instances use an external NoSQL
	// store; scale by adding instances (monitor.Service).
	e13Sizes := []int{1000, 2500, 5000}
	e16Sizes := []int{520, 1000, 2008}
	// E16's soundness gate snapshots every table twice; bound it to the
	// small sweep points.
	e16VerifyMax := 600
	claim1Trials := 40
	// E17's 2-pod Clos: 8 ToRs per cluster is ~26k k=2 scenarios before
	// pruning; quick halves the pods' width.
	e17Tors := 8
	e18Sizes := []int{136, 520, 2008}
	e19Sizes := []int{520, 2008}
	e20Sizes := []int{520, 2008, 5080}
	if *quick {
		e1Sizes = []int{500, 1000}
		e2Sizes = []int{250, 500}
		e3Sizes = []int{250}
		e4Sizes = []int{250, 500}
		e4sSize = 250
		e8Sizes = []int{100, 300, 1000}
		e13Sizes = []int{500, 1000}
		e16Sizes = []int{520}
		claim1Trials = 10
		e17Tors = 4
		e18Sizes = []int{136}
		e19Sizes = []int{520}
		e20Sizes = []int{520}
	}
	if *full {
		e2Sizes = append(e2Sizes, 10000)
		e20Sizes = append(e20Sizes, 10160)
	}

	type exp struct {
		id string
		fn func() experiments.Result
	}
	all := []exp{
		{"e1", func() experiments.Result { return experiments.E1PerDevice(e1Sizes, 8) }},
		{"e2", func() experiments.Result { return experiments.E2Sweep(e2Sizes) }},
		{"e3", func() experiments.Result { return experiments.E3LocalVsGlobal(e3Sizes) }},
		{"e4", func() experiments.Result {
			res, rows := experiments.E4SMTVsTrie(e4Sizes)
			writeJSON("BENCH_solver.json", rows)
			return res
		}},
		{"e4s", func() experiments.Result {
			// Generous ceiling: the committed baseline sits around 200µs
			// per contract; 10ms trips only on an order-of-magnitude
			// regression, not on CI-runner noise.
			return experiments.E4SolverGate(e4sSize, 10*time.Millisecond)
		}},
		{"e5", experiments.E5Figure3},
		{"e6", experiments.E6Taxonomy},
		{"e7", experiments.E7Burndown},
		{"e7b", experiments.E7bPipelineBurndown},
		{"e8", func() experiments.Result { return experiments.E8ACLLatency(e8Sizes) }},
		{"e9", experiments.E9Refactor},
		{"e10", experiments.E10NSGIssues},
		{"e11", experiments.E11Firewall},
		{"e12", experiments.E12Precheck},
		{"e13", func() experiments.Result { return experiments.E13Monitor(e13Sizes) }},
		{"e13b", func() experiments.Result { return experiments.E13bIncremental(e13Sizes[0]) }},
		{"e13c", func() experiments.Result { return experiments.E13cDegraded(e13Sizes[0], 4) }},
		{"e14", func() experiments.Result { return experiments.E14Claim1(claim1Trials) }},
		{"e15", experiments.E15Region},
		{"e16", func() experiments.Result {
			res, rows := experiments.E16Incremental(e16Sizes, e16VerifyMax)
			writeJSON("BENCH_incremental.json", rows)
			return res
		}},
		{"e17", func() experiments.Result {
			res, rows := experiments.E17Explore(e17Tors)
			writeJSON("BENCH_explore.json", rows)
			return res
		}},
		{"e18", func() experiments.Result {
			res, rows := experiments.E18Conflint(e18Sizes)
			writeJSON("BENCH_conflint.json", rows)
			return res
		}},
		{"e19", func() experiments.Result {
			res, rows := experiments.E19Serve(e19Sizes)
			writeJSON("BENCH_serve.json", rows)
			return res
		}},
		{"e20", func() experiments.Result {
			res, rows := experiments.E20PEC(e20Sizes)
			writeJSON("BENCH_pec.json", rows)
			return res
		}},
	}
	if *metricsOut != "" {
		experiments.Metrics = obs.NewRegistry()
	}
	ran := 0
	var phases []phaseMetrics
	prev := map[string]float64{}
	for _, e := range all {
		if !run(e.id) {
			continue
		}
		fmt.Println(experiments.Phase(e.id, e.fn))
		ran++
		if experiments.Metrics != nil {
			phases = append(phases, phaseMetrics{
				ID:      e.id,
				Samples: snapshotDelta(experiments.Metrics, prev),
			})
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dcbench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
	if *metricsOut != "" {
		raw, err := json.MarshalIndent(phases, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcbench: writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("dcbench: wrote per-experiment metrics for %d experiment(s) to %s\n", ran, *metricsOut)
	}
}

// snapshotDelta returns the registry samples that moved since the last
// call, updating prev in place. Counters and histogram series are
// cumulative so subtracting the previous value isolates one experiment's
// contribution; dcv_experiment_seconds gauges are set once per id and
// pass through unchanged.
func snapshotDelta(reg *obs.Registry, prev map[string]float64) []obs.Sample {
	var out []obs.Sample
	for _, s := range reg.Snapshot() {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		key := s.Name
		for _, k := range keys {
			key += "\x00" + k + "=" + s.Labels[k]
		}
		d := s.Value - prev[key]
		prev[key] = s.Value
		if d != 0 {
			s.Value = d
			out = append(out, s)
		}
	}
	return out
}
