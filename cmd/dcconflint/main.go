// Command dcconflint is the static-analysis multichecker for device
// configurations (internal/conflint): the devconf counterpart of the
// Go-source dclint. It binds a directory of rendered (or
// production-pulled) configuration files to the intended topology and
// reports misconfigurations — asymmetric sessions, off-plan ASNs,
// dangling route-maps, foreign prefix origination, ECMP divergence,
// shadowed ACL rules — before any convergence or contract sweep runs.
//
// Usage:
//
//	dcconflint -clusters 4 -tors 16 -leaves 4 -spines 2 -rs 4 -rslinks 2 \
//	           confdir/
//	dcconflint -selfcheck
//
// Positional arguments are configuration files or directories of *.conf
// files; the topology flags must describe the intent the configs are
// checked against (same flags as topogen). -selfcheck renders the
// fleet from the topology in-memory and lints it — the all-green
// baseline CI runs. Exit status: 0 clean, 1 findings, 2 errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dcvalidate/internal/conflint"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/topology"
)

func main() {
	var (
		name      = flag.String("name", "dc", "datacenter name")
		clusters  = flag.Int("clusters", 4, "number of clusters")
		tors      = flag.Int("tors", 16, "ToRs per cluster")
		leaves    = flag.Int("leaves", 4, "leaves per cluster (= spine planes)")
		spines    = flag.Int("spines", 2, "spines per plane")
		rs        = flag.Int("rs", 4, "regional spine devices")
		rslinks   = flag.Int("rslinks", 2, "regional spines per spine")
		prefixes  = flag.Int("prefixes", 1, "VLAN prefixes per ToR")
		selfcheck = flag.Bool("selfcheck", false, "render the fleet from the topology and lint it (no config args)")
		quiet     = flag.Bool("q", false, "suppress the summary line; print findings only")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dcconflint [topology flags] <conf file or dir>...\n")
		fmt.Fprintf(os.Stderr, "       dcconflint [topology flags] -selfcheck\n\nanalyzers:\n")
		for _, az := range conflint.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", az.Name, az.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	topo, err := topology.New(topology.Params{
		Name: *name, Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks, PrefixesPerToR: *prefixes,
	})
	if err != nil {
		fatal(err)
	}

	var configs map[string]string
	switch {
	case *selfcheck:
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-selfcheck takes no config arguments"))
		}
		configs, err = devconf.RenderFleet(topo, nil)
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 0:
		flag.Usage()
		os.Exit(2)
	default:
		configs, err = loadConfigs(flag.Args())
		if err != nil {
			fatal(err)
		}
	}

	rep, err := conflint.Lint(topo, configs)
	if err != nil {
		fatal(err)
	}
	os.Stdout.WriteString(rep.String())
	if !*quiet {
		fmt.Fprintf(os.Stderr, "dcconflint: %d device(s), %d finding(s), %d suppressed\n",
			len(configs), len(rep.Findings), rep.Suppressed)
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// loadConfigs reads each argument as a config file, or as a directory
// whose *.conf entries are configs, keyed by file path for error
// attribution.
func loadConfigs(args []string) (map[string]string, error) {
	var files []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		ents, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".conf") {
				files = append(files, filepath.Join(arg, e.Name()))
			}
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no configuration files found in %v", args)
	}
	configs := make(map[string]string, len(files))
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		configs[f] = string(b)
	}
	return configs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcconflint:", err)
	os.Exit(2)
}
