// Command topogen generates a synthetic Clos datacenter (the counterpart
// to the paper's cloud topology generator [29]) and emits its metadata
// facts as JSON, plus optionally the converged routing tables of every
// device in the Figure 2 text format.
//
// Usage:
//
//	topogen -clusters 4 -tors 16 -leaves 4 -spines 2 -rs 4 -rslinks 2 \
//	        -facts facts.json -fibdir fibs/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

func main() {
	var (
		name     = flag.String("name", "dc", "datacenter name")
		clusters = flag.Int("clusters", 4, "number of clusters")
		tors     = flag.Int("tors", 16, "ToRs per cluster")
		leaves   = flag.Int("leaves", 4, "leaves per cluster (= spine planes)")
		spines   = flag.Int("spines", 2, "spines per plane")
		rs       = flag.Int("rs", 4, "regional spine devices")
		rslinks  = flag.Int("rslinks", 2, "regional spines per spine")
		prefixes = flag.Int("prefixes", 1, "VLAN prefixes per ToR")
		factsOut = flag.String("facts", "", "write metadata facts JSON to this file (default stdout)")
		fibDir   = flag.String("fibdir", "", "write every device's routing table (Figure 2 format) into this directory")
		dotOut   = flag.String("dot", "", "write a Graphviz rendering of the topology to this file")
		confDir  = flag.String("confdir", "", "write every device's configuration text into this directory")
	)
	flag.Parse()

	topo, err := topology.New(topology.Params{
		Name: *name, Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks, PrefixesPerToR: *prefixes,
	})
	if err != nil {
		fatal(err)
	}
	facts := metadata.FromTopology(topo)

	out := os.Stdout
	if *factsOut != "" {
		f, err := os.Create(*factsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := facts.WriteJSON(out); err != nil {
		fatal(err)
	}

	if *fibDir != "" {
		if err := os.MkdirAll(*fibDir, 0o755); err != nil {
			fatal(err)
		}
		src := bgp.NewSynth(topo, nil)
		for i := range topo.Devices {
			d := &topo.Devices[i]
			tbl, err := src.Table(d.ID)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*fibDir, d.Name+".rt"))
			if err != nil {
				fatal(err)
			}
			if err := tbl.WriteText(f, topo); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "topogen: wrote %d routing tables to %s\n", len(topo.Devices), *fibDir)
	}
	if *confDir != "" {
		if err := os.MkdirAll(*confDir, 0o755); err != nil {
			fatal(err)
		}
		texts, err := devconf.RenderFleet(topo, nil)
		if err != nil {
			fatal(err)
		}
		for name, text := range texts {
			if err := os.WriteFile(filepath.Join(*confDir, name+".conf"), []byte(text), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "topogen: wrote %d device configs to %s\n", len(texts), *confDir)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		writeDot(f, topo)
		f.Close()
	}
	fmt.Fprintf(os.Stderr, "topogen: %d devices, %d links, %d hosted prefixes\n",
		len(topo.Devices), len(topo.Links), len(topo.HostedPrefixes()))
}

// writeDot renders the Clos topology as ranked Graphviz, one rank per
// tier, dashed edges for dead links.
func writeDot(w *os.File, topo *topology.Topology) {
	fmt.Fprintln(w, "graph datacenter {")
	fmt.Fprintln(w, "  rankdir=BT; node [shape=box, fontsize=10];")
	ranks := map[topology.Role][]string{}
	for i := range topo.Devices {
		d := &topo.Devices[i]
		label := d.Name
		if len(d.HostedPrefixes) > 0 {
			label += "\\n" + d.HostedPrefixes[0].String()
		}
		fmt.Fprintf(w, "  %q [label=%q];\n", d.Name, label)
		ranks[d.Role] = append(ranks[d.Role], d.Name)
	}
	for _, role := range []topology.Role{topology.RoleToR, topology.RoleLeaf,
		topology.RoleSpine, topology.RoleRegionalSpine} {
		fmt.Fprintf(w, "  { rank=same;")
		for _, n := range ranks[role] {
			fmt.Fprintf(w, " %q;", n)
		}
		fmt.Fprintln(w, " }")
	}
	for i := range topo.Links {
		l := &topo.Links[i]
		attrs := ""
		if !l.Live() {
			attrs = ` [style=dashed, color=red]`
		}
		fmt.Fprintf(w, "  %q -- %q%s;\n",
			topo.Device(l.A).Name, topo.Device(l.B).Name, attrs)
	}
	fmt.Fprintln(w, "}")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
