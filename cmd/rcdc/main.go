// Command rcdc runs the Reality Checker for Data Centers over a synthetic
// datacenter: it generates the topology, derives contracts from the
// metadata facts, synthesizes the converged FIBs (optionally with injected
// faults), validates every device locally, and prints the violation report
// with severity classification.
//
// Usage:
//
//	rcdc -clusters 4 -tors 16 -leaves 4 -spines 2 \
//	     -fail dc-c0-t0-0:dc-c0-t1-1,dc-c0-t0-0:dc-c0-t1-2 \
//	     -engine trie -workers 0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func main() {
	var (
		name     = flag.String("name", "dc", "datacenter name")
		clusters = flag.Int("clusters", 4, "number of clusters")
		tors     = flag.Int("tors", 16, "ToRs per cluster")
		leaves   = flag.Int("leaves", 4, "leaves per cluster")
		spines   = flag.Int("spines", 2, "spines per plane")
		rs       = flag.Int("rs", 4, "regional spines")
		rslinks  = flag.Int("rslinks", 2, "regional spines per spine")
		fig3     = flag.Bool("fig3", false, "use the paper's Figure 3 topology")
		fail     = flag.String("fail", "", "comma-separated a:b device-name pairs whose link is down")
		shut     = flag.String("shut", "", "comma-separated a:b pairs whose BGP session is admin shut")
		engine   = flag.String("engine", "trie", "verification engine: trie or smt")
		exact    = flag.Bool("exact", false, "require exact ECMP sets on specific contracts")
		workers  = flag.Int("workers", 0, "validation parallelism (0 = all CPUs)")
		verbose  = flag.Bool("v", false, "print every violation")
		fibDir   = flag.String("fibdir", "", "read routing tables (Figure 2 text, <device>.rt) from this directory instead of synthesizing them")
	)
	flag.Parse()

	params := topology.Params{
		Name: *name, Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks,
	}
	if *fig3 {
		params = topology.Figure3Params()
	}
	topo, err := topology.New(params)
	if err != nil {
		fatal(err)
	}
	applyPairs(topo, *fail, topo.FailLink)
	applyPairs(topo, *shut, topo.ShutSession)

	var checker rcdc.Checker
	switch *engine {
	case "trie":
		checker = rcdc.TrieChecker{Exact: *exact}
	case "smt":
		checker = rcdc.SMTChecker{Exact: *exact}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	facts := metadata.FromTopology(topo)
	var source fib.Source = bgp.NewSynth(topo, nil)
	if *fibDir != "" {
		source = dirSource{dir: *fibDir, topo: topo}
	}
	v := rcdc.Validator{Checker: checker, Workers: *workers}
	rep, err := v.ValidateAll(facts, source)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("rcdc: %d devices, %d contracts checked in %s (%d workers, %s engine)\n",
		len(rep.Devices), rep.Checked, rep.Elapsed.Round(1000), rep.Workers, *engine)
	fmt.Printf("rcdc: %d violations (%d high risk)\n", rep.Failures, rep.HighRisk())
	if *verbose {
		for _, viol := range rep.Violations() {
			fmt.Printf("  %-16s %s\n", topo.Device(viol.Device).Name, viol)
		}
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

func applyPairs(topo *topology.Topology, spec string, apply func(a, b topology.DeviceID) bool) {
	if spec == "" {
		return
	}
	for _, pair := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad pair %q (want a:b)", pair))
		}
		a, ok := topo.ByName(parts[0])
		if !ok {
			fatal(fmt.Errorf("unknown device %q", parts[0]))
		}
		b, ok := topo.ByName(parts[1])
		if !ok {
			fatal(fmt.Errorf("unknown device %q", parts[1]))
		}
		if !apply(a.ID, b.ID) {
			fatal(fmt.Errorf("no link between %q and %q", parts[0], parts[1]))
		}
	}
}

// dirSource serves routing tables from per-device text files, the format
// cmd/topogen -fibdir writes (and the puller of §2.6.1 would collect).
type dirSource struct {
	dir  string
	topo *topology.Topology
}

func (s dirSource) Table(d topology.DeviceID) (*fib.Table, error) {
	name := s.topo.Device(d).Name
	f, err := os.Open(filepath.Join(s.dir, name+".rt"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fib.ParseText(f, d, s.topo)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcdc:", err)
	os.Exit(2)
}
