// Command secguru checks a network connectivity policy — a Cisco IOS-style
// ACL, an NSG JSON file, or a deny-overrides firewall config — against a
// JSON contract suite, printing each violated contract with the offending
// rule and a witness packet.
//
// Usage:
//
//	secguru -policy edge.acl -format ios -contracts suite.json
//	secguru -policy vnet.json -format nsg -contracts suite.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/secguru"
)

func main() {
	var (
		policyPath    = flag.String("policy", "", "policy file (required)")
		format        = flag.String("format", "ios", "policy format: ios or nsg")
		contractsPath = flag.String("contracts", "", "JSON contract suite (required)")
		denyOverrides = flag.Bool("deny-overrides", false, "use deny-overrides semantics (distributed firewalls)")
		suggest       = flag.Bool("suggest", false, "propose verified repairs for failed contracts")
	)
	flag.Parse()
	if *policyPath == "" || *contractsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pf, err := os.Open(*policyPath)
	if err != nil {
		fatal(err)
	}
	defer pf.Close()
	var policy *acl.Policy
	switch *format {
	case "ios":
		policy, err = acl.ParseIOS(*policyPath, pf)
	case "nsg":
		policy, err = acl.ParseNSG(*policyPath, pf)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *denyOverrides {
		policy.Semantics = acl.DenyOverrides
	}

	cf, err := os.Open(*contractsPath)
	if err != nil {
		fatal(err)
	}
	defer cf.Close()
	contracts, err := secguru.ParseContracts(cf)
	if err != nil {
		fatal(err)
	}

	rep, err := secguru.Check(policy, contracts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secguru: %d rules, %d contracts, analyzed in %s\n",
		len(policy.Rules), len(contracts), rep.Elapsed.Round(1000))
	for _, o := range rep.Outcomes {
		status := "PASS"
		if !o.Preserved {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s", status, o.Contract.Name)
		if !o.Preserved {
			fmt.Printf("  rule=%s witness={src=%s:%d dst=%s:%d proto=%d}",
				o.RuleName, o.Witness.SrcIP, o.Witness.SrcPort,
				o.Witness.DstIP, o.Witness.DstPort, o.Witness.Protocol)
		}
		fmt.Println()
		if !o.Preserved && *suggest {
			r, rerr := secguru.SuggestRepair(policy, o, contracts)
			if rerr != nil {
				fmt.Printf("    no safe repair: %v\n", rerr)
			} else {
				fmt.Printf("    suggested repair (verified): %s\n", r)
			}
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secguru:", err)
	os.Exit(2)
}
