// Command dclint is the repository's determinism linter: a multichecker
// that runs the internal/analysis suite (wallclock, sleepsite, mapiter,
// rngseed, panicsite) over the module. CI and `make lint` gate on a
// clean run.
//
// Usage:
//
//	dclint [packages]
//
// where packages are module-relative patterns such as ./... (default),
// ./internal/... or ./cmd/rcdc. Exits 1 if any diagnostic is reported.
//
// Suppressions: a finding is waived by a comment on the same line or
// the line above — `// invariant: <why>` (asserts unreachability on
// untrusted input) or `// dclint:allow <analyzer> <why>`.
package main

import (
	"flag"
	"fmt"
	"os"

	"dcvalidate/internal/analysis"
)

// wallclockAllow lists the sanctioned measurement boundaries: the
// injectable clock package itself, and nothing else. Everything that
// measures elapsed time takes a clock.Clock. sleepsite shares the list:
// clock.Sleep is the single sanctioned raw-sleep site.
var wallclockAllow = []string{
	"dcvalidate/internal/clock",
}

// parserPackages ingest untrusted input (device configs, vendor ACLs,
// DIMACS CNF, SMT-LIB scripts): panics there must be justified as
// invariants or converted to positioned errors.
var parserPackages = []string{
	"dcvalidate/internal/acl",
	"dcvalidate/internal/sat",
	"dcvalidate/internal/bv",
	"dcvalidate/internal/devconf",
}

func main() {
	quiet := flag.Bool("q", false, "print only the diagnostic count")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dclint [-q] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dclint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dclint:", err)
		os.Exit(2)
	}
	if !*quiet {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "dclint: %d issue(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analysis.NewWallclock(wallclockAllow),
		analysis.NewSleepsite(wallclockAllow),
		analysis.NewMapiter(),
		analysis.NewRngseed(),
		analysis.NewPanicsite(parserPackages),
	}
}
