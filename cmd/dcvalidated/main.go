// Command dcvalidated serves the validation plane's query API over HTTP:
// per-device conformance, reachability with counterexample packets, fleet
// summaries, and Prometheus metrics, backed by the engine's
// generation-keyed serving caches — a steady-state repeat query is an
// O(1) cache hit with zero revalidation work (watch
// dcv_serve_cache_hits_total climb on repeats).
//
// With -shards N, full-fleet sweeps are partitioned across N validator
// shards coordinated by consistent hashing over the Clos pod structure
// with work stealing; merged reports are byte-identical to single-engine
// sweeps.
//
// The -engine flag swaps the verification engine behind every sweep —
// trie (default), smt, or pec (packet equivalence classes) — without
// changing any verdict.
//
// Usage:
//
//	dcvalidated -addr :8080 -clusters 6 -tors 12
//	dcvalidated -addr :8080 -shards 4
//
//	curl 'localhost:8080/summary'
//	curl 'localhost:8080/device?name=dc-c0-t0-0'
//	curl 'localhost:8080/reach?src=dc-c0-t0-0&dst=dc-c1-t0-0'
//	curl -X POST 'localhost:8080/link?a=dc-c0-t0-0&b=dc-c0-t1-0&action=fail'
//	curl 'localhost:8080/violations'
//	curl 'localhost:8080/metrics' | grep dcv_serve
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dcvalidate/internal/engine"
	"dcvalidate/internal/serve"
	"dcvalidate/internal/topology"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		clusters = flag.Int("clusters", 4, "clusters")
		tors     = flag.Int("tors", 8, "ToRs per cluster")
		leaves   = flag.Int("leaves", 4, "leaves per cluster")
		spines   = flag.Int("spines", 2, "spines per plane")
		rs       = flag.Int("rs", 4, "regional spines")
		rslinks  = flag.Int("rslinks", 2, "RS links per spine")
		shards   = flag.Int("shards", 0, "partition sweeps across N validator shards (0 = single engine)")
		warm     = flag.Bool("warm", true, "run the first fleet sweep at boot so the first query hits the cache")
		engName  = flag.String("engine", "", "verification engine: trie (default), smt, or pec")
	)
	flag.Parse()
	kind, err := engine.ParseKind(*engName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcvalidated:", err)
		os.Exit(2)
	}

	topo, err := topology.New(topology.Params{
		Name: "dc", Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcvalidated:", err)
		os.Exit(2)
	}
	eng := engine.New(topo, nil)
	eng.Metrics() // instrument before the coordinator is built
	// Set the default engine before sharding so the coordinator inherits it.
	eng.SetDefaultEngine(kind)
	if *shards > 0 {
		eng.EnableSharding(*shards)
	}
	srv := serve.New(eng)
	if *warm {
		sum, err := eng.Summary()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcvalidated: warm sweep:", err)
			os.Exit(2)
		}
		fmt.Printf("dcvalidated: warmed %d devices (%d contracts) across %d shard(s) at generation %d\n",
			sum.Devices, sum.Contracts, sum.Shards, sum.Generation)
	}
	fmt.Printf("dcvalidated: serving %d devices on %s (shards=%d)\n",
		len(topo.Devices), *addr, eng.Shards())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "dcvalidated:", err)
		os.Exit(2)
	}
}
