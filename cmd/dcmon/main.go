// Command dcmon runs the RCDC live-monitoring loop interactively: it
// generates a datacenter, injects a latent-error backlog across the §2.6.2
// taxonomy, then runs monitoring cycles — detection, triage, automatic
// remediation, and a bounded manual-remediation budget draining the
// highest-risk queue first — printing the alert burndown as it happens.
//
// Telemetry faults degrade the pipeline itself: -pullfail injects
// transient pull failures (retried with backoff), -dead kills device
// management planes until remediated, -corrupt mangles store documents.
//
// With -metrics-addr the process serves the observability registry as
// Prometheus text on /metrics plus the standard net/http/pprof profiles
// on /debug/pprof/, and stays up after the run until interrupted. All
// durations dcmon reports come from the instance clock through the
// metrics registry — the command itself never reads the wall clock.
//
// With -explore-k N the run starts by certifying the clean topology
// against every combination of up to N link/device/session failures
// (symmetry-pruned failure-space exploration), printing the violating
// equivalence classes and their minimal failure sets before the
// monitoring loop begins.
//
// The -engine flag swaps the per-device verification engine — trie
// (default), smt, or pec (packet equivalence classes) — without changing
// any verdict.
//
// Usage:
//
//	dcmon -clusters 6 -tors 12 -faults 24 -cycles 14 -fix 4
//	dcmon -faults 10 -pullfail 0.1 -dead 2 -cycles 16
//	dcmon -faults 0 -cycles 3 -metrics-addr :9090
//	dcmon -clusters 2 -tors 4 -faults 0 -cycles 1 -explore-k 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcvalidate/internal/engine"
	"dcvalidate/internal/explore"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

func main() {
	var (
		clusters    = flag.Int("clusters", 6, "clusters")
		tors        = flag.Int("tors", 12, "ToRs per cluster")
		leaves      = flag.Int("leaves", 4, "leaves per cluster")
		spines      = flag.Int("spines", 2, "spines per plane")
		rs          = flag.Int("rs", 4, "regional spines")
		rslinks     = flag.Int("rslinks", 2, "RS links per spine")
		faults      = flag.Int("faults", 24, "latent faults to inject")
		cycles      = flag.Int("cycles", 14, "monitoring cycles to run")
		fix         = flag.Int("fix", 4, "manual remediations per cycle")
		seed        = flag.Int64("seed", 77, "fault-injection seed")
		incr        = flag.Bool("incremental", true, "change-driven cycles: validate only the blast radius of journaled changes")
		sweep       = flag.Int("fullsweep-every", 0, "force a full sweep every N incremental cycles (0 = default)")
		pullfail    = flag.Float64("pullfail", 0, "transient pull-failure rate per attempt (0-1)")
		dead        = flag.Int("dead", 0, "devices with a dead management plane (telemetry loss)")
		corrupt     = flag.Float64("corrupt", 0, "store-document corruption rate per write (0-1)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090) and linger after the run until interrupted")
		exploreK    = flag.Int("explore-k", 0, "before fault injection, certify contracts up to k simultaneous failures (symmetry-pruned failure-space exploration; 0 = off)")
		engineName  = flag.String("engine", "", "verification engine: trie (default), smt, or pec")
	)
	flag.Parse()
	kind, err := engine.ParseKind(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmon:", err)
		os.Exit(2)
	}

	topo, err := topology.New(topology.Params{
		Name: "dcmon", Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmon:", err)
		os.Exit(2)
	}
	reg := obs.NewRegistry()

	// Failure-space certification runs against the clean topology, before
	// any latent faults exist: it answers "which contracts survive any k
	// simultaneous failures" for the intended network, not a broken one.
	if *exploreK > 0 {
		ex := explore.Explorer{Topo: topo, Opts: explore.Options{
			K: *exploreK, Metrics: explore.NewMetrics(reg),
		}}
		res, err := ex.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcmon: explore:", err)
			os.Exit(2)
		}
		fmt.Printf("dcmon: explored failure space up to k=%d: %d scenarios over %d fault sites as %d equivalence classes (%.1fx pruning, %d symmetry generators) in %s\n",
			*exploreK, res.Total, res.Universe, res.Explored,
			res.PruningRatio(), res.Generators, res.Elapsed.Round(time.Millisecond))
		if len(res.Violating) == 0 {
			fmt.Printf("dcmon: all contracts hold under every <=%d-failure scenario\n", *exploreK)
		} else {
			fmt.Printf("dcmon: %d violating class(es) covering %d scenario(s); %d minimal failure set(s):\n",
				len(res.Violating), violatingWeight(res), len(res.MinimalSets))
			for i, ms := range res.MinimalSets {
				if i == 8 {
					fmt.Printf("  ... %d more\n", len(res.MinimalSets)-i)
					break
				}
				var fs []string
				for _, f := range ms.Faults {
					fs = append(fs, f.Describe(topo))
				}
				fmt.Printf("  %s <- {%s}\n", ms.ContractKey, strings.Join(fs, ", "))
			}
		}
		if res.DegradedOnly > 0 {
			fmt.Printf("dcmon: %d class(es) degrade telemetry only (baseline verdict retained)\n", res.DegradedOnly)
		}
		fmt.Println()
	}

	s := workload.NewScenario(topo)
	s.InjectRandom(rand.New(rand.NewSource(*seed)), *faults)
	s.TransientPullRate = *pullfail
	s.CorruptDocRate = *corrupt
	s.FaultSeed = *seed
	for i := 0; i < *dead && i < len(topo.ToRs()); i++ {
		s.InjectTelemetryLoss(topo.ToRs()[i])
	}
	fmt.Printf("dcmon: monitoring %d devices; %d latent faults injected:\n",
		len(topo.Devices), len(s.Injected))
	for _, inj := range s.Injected {
		fmt.Printf("  %s\n", inj)
	}
	fmt.Println()

	in := monitor.NewInstance("dcmon-0", s.Datacenter("dcmon"))
	in.SkipUnchanged = *incr
	in.Incremental = *incr
	in.FullSweepEvery = *sweep
	in.EnableObservability(reg)
	switch kind {
	case engine.KindSMT:
		in.Checker = rcdc.SMTChecker{}
	case engine.KindPEC:
		in.Checker = &pec.Checker{Metrics: pec.NewMetrics(reg)}
	}
	tracker := monitor.NewAlertTracker()

	if *metricsAddr != "" {
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dcmon: metrics server:", err)
				os.Exit(2)
			}
		}()
		fmt.Printf("dcmon: serving /metrics and /debug/pprof on %s\n\n", *metricsAddr)
	}

	fmt.Printf("%5s %5s %8s %6s %8s %10s %8s %8s %7s %6s %9s %8s %9s %9s %9s\n",
		"cycle", "sweep", "devices", "dirty", "carried", "violations", "skipped", "pullFail", "stale", "unmon",
		"openHigh", "openLow", "autoFix", "manualFix", "valTime")
	cleared := false
	for cycle := 1; cycle <= *cycles; cycle++ {
		stats, err := in.RunCycle()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcmon:", err)
			os.Exit(1)
		}
		pt := tracker.ObserveCycle(stats.Cycle, in.Analytics)

		errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
		restored, _ := monitor.AutoRemediate(errs, in.Datacenters, s.Lossy)

		classByDev := map[topology.DeviceID]monitor.ErrorClass{}
		for _, te := range errs {
			if _, ok := classByDev[te.Record.Device]; !ok {
				classByDev[te.Record.Device] = te.Class
			}
		}
		manual := 0
		budget := *fix
		for _, al := range tracker.Open() {
			if budget == 0 {
				break
			}
			if class, ok := classByDev[al.Device]; ok && s.Remediate(class, al.Device) {
				budget--
				manual++
			}
		}
		sweepMark := "-"
		if stats.FullSweep {
			sweepMark = "full"
		}
		fmt.Printf("%5d %5s %8d %6d %8d %10d %8d %8d %7d %6d %9d %8d %9d %9d %9s\n",
			cycle, sweepMark, stats.Devices, stats.DirtyDevices, stats.CarriedForward,
			stats.Violations, stats.Skipped,
			stats.PullFailures, stats.StaleDevices, stats.Unmonitored,
			pt.OpenHigh, pt.OpenLow, restored, manual,
			stats.ValidateTime.Round(time.Microsecond).String())
		// Declaring the network clean requires actually observing it: no
		// open alerts AND every device seen this cycle (no pull failures
		// left unaccounted, nobody unmonitored).
		if pt.OpenHigh+pt.OpenLow == 0 && cycle > 1 &&
			stats.PullFailures == 0 && stats.Unmonitored == 0 &&
			stats.Devices == len(topo.Devices) {
			fmt.Println("\ndcmon: backlog clear — network matches intent")
			cleared = true
			break
		}
	}
	open := len(tracker.Open())
	if !cleared && open > 0 {
		fmt.Printf("\ndcmon: %d alert(s) still open after %d cycles\n", open, *cycles)
	}
	printSummary(reg)
	if *metricsAddr != "" {
		fmt.Printf("\ndcmon: metrics server on %s still up — interrupt to exit\n", *metricsAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	if !cleared && open > 0 {
		os.Exit(1)
	}
}

// violatingWeight sums the scenario counts the violating equivalence
// classes represent (each class validates once for its whole orbit).
func violatingWeight(r *explore.Result) int {
	n := 0
	for _, sc := range r.Violating {
		n += sc.Weight
	}
	return n
}

// printSummary reports the run's aggregate timings straight from the
// metrics registry: the same series /metrics exposes, so the numbers on
// stdout and the scraped numbers can never disagree.
func printSummary(reg *obs.Registry) {
	want := map[string]float64{
		"dcv_monitor_cycle_seconds_sum":        0,
		"dcv_monitor_cycle_seconds_count":      0,
		"dcv_rcdc_device_check_seconds_sum":    0,
		"dcv_rcdc_devices_checked_total":       0,
		"dcv_monitor_modeled_pull_seconds_sum": 0,
	}
	for _, s := range reg.Snapshot() {
		if _, ok := want[s.Name]; ok && len(s.Labels) == 0 {
			want[s.Name] = s.Value
		}
	}
	fmt.Printf("\ndcmon: %.0f cycle(s) in %.3fs; %.0f device checks (%.3fs validating, %.3fs modeled pull)\n",
		want["dcv_monitor_cycle_seconds_count"],
		want["dcv_monitor_cycle_seconds_sum"],
		want["dcv_rcdc_devices_checked_total"],
		want["dcv_rcdc_device_check_seconds_sum"],
		want["dcv_monitor_modeled_pull_seconds_sum"])
	printArenaSummary(reg)
}

// printArenaSummary reports the PEC shared-atom-arena state (engine=pec
// runs only): live shapes, attached devices, cold-check dedup outcomes,
// and detach/evict churn — again straight from the /metrics series.
func printArenaSummary(reg *obs.Registry) {
	arena := map[string]float64{}
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "dcv_pec_shapes", "dcv_pec_shape_refs",
			"dcv_pec_shape_detach_total", "dcv_pec_shape_evict_total":
			arena[s.Name] = s.Value
		case "dcv_pec_shape_total":
			arena[s.Name+":"+s.Labels["result"]] = s.Value
		}
	}
	builds := arena["dcv_pec_shape_total:build"]
	hits := arena["dcv_pec_shape_total:hit"]
	fallbacks := arena["dcv_pec_shape_total:fallback"]
	cold := builds + hits + fallbacks
	if cold == 0 {
		return // arena never exercised (trie/SMT engine, or warm-only run)
	}
	fmt.Printf("dcmon: pec arena: %.0f shapes / %.0f attached devices; cold checks %.0f (%.0f builds, %.0f hits = %.1f%% dedup, %.0f fallbacks); %.0f detaches, %.0f evictions\n",
		arena["dcv_pec_shapes"],
		arena["dcv_pec_shape_refs"],
		cold, builds, hits, 100*hits/cold, fallbacks,
		arena["dcv_pec_shape_detach_total"],
		arena["dcv_pec_shape_evict_total"])
}
