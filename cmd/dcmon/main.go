// Command dcmon runs the RCDC live-monitoring loop interactively: it
// generates a datacenter, injects a latent-error backlog across the §2.6.2
// taxonomy, then runs monitoring cycles — detection, triage, automatic
// remediation, and a bounded manual-remediation budget draining the
// highest-risk queue first — printing the alert burndown as it happens.
//
// Usage:
//
//	dcmon -clusters 6 -tors 12 -faults 24 -cycles 14 -fix 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dcvalidate/internal/monitor"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

func main() {
	var (
		clusters = flag.Int("clusters", 6, "clusters")
		tors     = flag.Int("tors", 12, "ToRs per cluster")
		leaves   = flag.Int("leaves", 4, "leaves per cluster")
		spines   = flag.Int("spines", 2, "spines per plane")
		rs       = flag.Int("rs", 4, "regional spines")
		rslinks  = flag.Int("rslinks", 2, "RS links per spine")
		faults   = flag.Int("faults", 24, "latent faults to inject")
		cycles   = flag.Int("cycles", 14, "monitoring cycles to run")
		fix      = flag.Int("fix", 4, "manual remediations per cycle")
		seed     = flag.Int64("seed", 77, "fault-injection seed")
		incr     = flag.Bool("incremental", true, "skip unchanged devices")
	)
	flag.Parse()

	topo, err := topology.New(topology.Params{
		Name: "dcmon", Clusters: *clusters, ToRsPerCluster: *tors,
		LeavesPerCluster: *leaves, SpinesPerPlane: *spines,
		RegionalSpines: *rs, RSLinksPerSpine: *rslinks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmon:", err)
		os.Exit(2)
	}
	s := workload.NewScenario(topo)
	s.InjectRandom(rand.New(rand.NewSource(*seed)), *faults)
	fmt.Printf("dcmon: monitoring %d devices; %d latent faults injected:\n",
		len(topo.Devices), len(s.Injected))
	for _, inj := range s.Injected {
		fmt.Printf("  %s\n", inj)
	}
	fmt.Println()

	in := monitor.NewInstance("dcmon-0", s.Datacenter("dcmon"))
	in.SkipUnchanged = *incr
	tracker := monitor.NewAlertTracker()

	fmt.Printf("%5s %8s %10s %8s %9s %8s %9s %9s\n",
		"cycle", "devices", "violations", "skipped", "openHigh", "openLow", "autoFix", "manualFix")
	for cycle := 1; cycle <= *cycles; cycle++ {
		stats, err := in.RunCycle()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcmon:", err)
			os.Exit(1)
		}
		pt := tracker.ObserveCycle(stats.Cycle, in.Analytics)

		errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
		restored, _ := monitor.AutoRemediate(errs, in.Datacenters, s.Lossy)

		classByDev := map[topology.DeviceID]monitor.ErrorClass{}
		for _, te := range errs {
			if _, ok := classByDev[te.Record.Device]; !ok {
				classByDev[te.Record.Device] = te.Class
			}
		}
		manual := 0
		budget := *fix
		for _, al := range tracker.Open() {
			if budget == 0 {
				break
			}
			if class, ok := classByDev[al.Device]; ok && s.Remediate(class, al.Device) {
				budget--
				manual++
			}
		}
		fmt.Printf("%5d %8d %10d %8d %9d %8d %9d %9d\n",
			cycle, stats.Devices, stats.Violations, stats.Skipped,
			pt.OpenHigh, pt.OpenLow, restored, manual)
		if pt.OpenHigh+pt.OpenLow == 0 && cycle > 1 {
			fmt.Println("\ndcmon: backlog clear — network matches intent")
			return
		}
	}
	if open := len(tracker.Open()); open > 0 {
		fmt.Printf("\ndcmon: %d alert(s) still open after %d cycles\n", open, *cycles)
		os.Exit(1)
	}
}
