package dcvalidate

// One benchmark per experiment in DESIGN.md's index (E1–E14). Each
// measures the experiment's kernel operation; cmd/dcbench prints the
// full paper-style tables around the same code paths. Run with:
//
//	go test -bench=. -benchmem .

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/emulator"
	"dcvalidate/internal/experiments"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/secguru"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

// torFixture builds a datacenter with the given number of hosted prefixes
// and returns everything needed to validate one ToR.
func torFixture(b *testing.B, prefixes int) (*metadata.Facts, *fib.Table, contracts.DeviceContracts, topology.Role) {
	b.Helper()
	p := experiments.SizedParams("bench", 0)
	p.Clusters = (prefixes + p.ToRsPerCluster - 1) / p.ToRsPerCluster
	topo := topology.MustNew(p)
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	src := bgp.NewSynth(topo, nil)
	tor := topo.ToRs()[0]
	tbl, err := src.Table(tor)
	if err != nil {
		b.Fatal(err)
	}
	return facts, tbl, gen.ForDevice(tor), topology.RoleToR
}

// BenchmarkE1_PerDeviceValidation measures validating all contracts of one
// device (§2.6.3: paper reports 180ms average per device).
func BenchmarkE1_PerDeviceValidation(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("prefixes=%d", n), func(b *testing.B) {
			facts, tbl, dc, _ := torFixture(b, n)
			v := rcdc.Validator{Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.ValidateDevice(facts, tbl, dc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_DatacenterSweep measures whole-datacenter validation on a
// single CPU (§1/§2.6.3: 10^4 routers in <3 minutes).
func BenchmarkE2_DatacenterSweep(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			topo := topology.MustNew(experiments.SizedParams("e2", n))
			facts := metadata.FromTopology(topo)
			src := bgp.NewSynth(topo, nil)
			v := rcdc.Validator{Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := v.ValidateAll(facts, src)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Failures != 0 {
					b.Fatalf("healthy DC had %d failures", rep.Failures)
				}
			}
		})
	}
}

// BenchmarkE2_DatacenterSweepParallel is the all-CPUs ablation of E2.
func BenchmarkE2_DatacenterSweepParallel(b *testing.B) {
	topo := topology.MustNew(experiments.SizedParams("e2p", 2000))
	facts := metadata.FromTopology(topo)
	src := bgp.NewSynth(topo, nil)
	v := rcdc.Validator{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ValidateAll(facts, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_LocalVsGlobal compares local validation (sub-bench "local")
// against the global snapshot baseline (sub-bench "global") on the same
// datacenter (§1, §2.4).
func BenchmarkE3_LocalVsGlobal(b *testing.B) {
	topo := topology.MustNew(experiments.SizedParams("e3", 500))
	facts := metadata.FromTopology(topo)
	src := bgp.NewSynth(topo, nil)
	b.Run("local", func(b *testing.B) {
		v := rcdc.Validator{Workers: 1}
		for i := 0; i < b.N; i++ {
			if _, err := v.ValidateAll(facts, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := rcdc.NewGlobalChecker(topo, src)
			if err != nil {
				b.Fatal(err)
			}
			if fails := g.Check(rcdc.FullRedundancy); len(fails) != 0 {
				b.Fatal("unexpected failures")
			}
		}
	})
}

// BenchmarkE4_SMTVsTrie compares the two verification engines on one
// device (§2.5).
func BenchmarkE4_SMTVsTrie(b *testing.B) {
	for _, n := range []int{500, 1000} {
		_, tbl, dc, role := torFixture(b, n)
		b.Run(fmt.Sprintf("smt/rules=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (rcdc.SMTChecker{}).CheckDevice(tbl, dc, role); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("trie/rules=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (rcdc.TrieChecker{}).CheckDevice(tbl, dc, role); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_Figure3Scenario measures the full running-example pipeline:
// build the Figure 3 topology with failures, converge, validate.
func BenchmarkE5_Figure3Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := topology.MustNew(topology.Figure3Params())
		tor1, tor2 := topo.ClusterToRs(0)[0], topo.ClusterToRs(0)[1]
		leavesA := topo.ClusterLeaves(0)
		topo.FailLink(tor1, leavesA[2])
		topo.FailLink(tor1, leavesA[3])
		topo.FailLink(tor2, leavesA[0])
		topo.FailLink(tor2, leavesA[1])
		facts := metadata.FromTopology(topo)
		v := rcdc.Validator{Workers: 1}
		rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failures != 16 {
			b.Fatalf("violations = %d, want 16", rep.Failures)
		}
	}
}

// BenchmarkE6_ErrorInjectionCycle measures one monitoring cycle detecting
// an injected §2.6.2 error.
func BenchmarkE6_ErrorInjectionCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := workload.NewScenario(topology.MustNew(topology.Figure3Params()))
		s.InjectRIBFIBBug(s.Topo.ToRs()[0], 1)
		in := monitor.NewInstance("b", s.Datacenter("dc"))
		in.Workers = 4
		stats, err := in.RunCycle()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Violations == 0 {
			b.Fatal("not detected")
		}
	}
}

// BenchmarkE7_Burndown measures the Figure 6 remediation-queue simulation.
func BenchmarkE7_Burndown(b *testing.B) {
	cfg := workload.DefaultBurndownConfig()
	for i := 0; i < b.N; i++ {
		pts := workload.SimulateBurndown(cfg)
		if pts[len(pts)-1].TotalFrac > 0.2 {
			b.Fatal("no burndown")
		}
	}
}

// BenchmarkE8_ACLLatency measures a SecGuru contract-suite check against
// Edge-ACL-shaped policies (§3.2: few hundred rules ≈300ms, few thousand
// ≈1s in the paper's setup).
func BenchmarkE8_ACLLatency(b *testing.B) {
	cs := workload.EdgeContracts()
	for _, n := range []int{100, 300, 1000, 3000} {
		params := workload.EdgeACLParams{
			ServiceRules:    n * 8 / 10,
			DuplicateDenies: n / 10,
			ZeroDayDenies:   maxInt(0, n-n*8/10-n/10-15),
			Seed:            7,
		}
		pol := workload.GenerateLegacyEdgeACL(params)
		b.Run(fmt.Sprintf("rules=%d", len(pol.Rules)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := secguru.Check(pol, cs)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("unexpected failures")
				}
			}
		})
	}
}

// BenchmarkE9_Refactor measures one full phased refactoring run with
// prechecks and postchecks (Figure 11).
func BenchmarkE9_Refactor(b *testing.B) {
	params := workload.EdgeACLParams{ServiceRules: 600, DuplicateDenies: 90, ZeroDayDenies: 80, Seed: 7}
	for i := 0; i < b.N; i++ {
		legacy := workload.GenerateLegacyEdgeACL(params)
		pl := &secguru.Plan{
			TestDevice: secguru.NewDevice("t", 0, 0, legacy),
			Devices:    []*secguru.Device{secguru.NewDevice("d", 0, 0, legacy)},
			Contracts:  workload.EdgeContracts(),
		}
		for _, st := range workload.BuildRefactorPlan(legacy) {
			res, err := pl.Apply(st.Change)
			if err != nil {
				b.Fatal(err)
			}
			if !res.PrecheckOK || !res.PostcheckOK {
				b.Fatal("refactor step failed")
			}
		}
	}
}

// BenchmarkE10_NSGIssues measures the Figure 12 simulation (every change
// checked by the real engine).
func BenchmarkE10_NSGIssues(b *testing.B) {
	cfg := workload.NSGIssuesConfig{
		Days: 60, LaunchDay: 5, MaxCustomers: 200, AdoptPerDay: 10,
		ChangeProb: 0.05, BreakProb: 0.3,
		GuardDay: 30, GuardRampDays: 10, MTTRDays: 5, Seed: 99,
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.SimulateNSGIssues(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_FirewallGate measures template generation plus the §3.5
// deployment gate.
func BenchmarkE11_FirewallGate(b *testing.B) {
	infra, _ := ParsePrefix("168.63.129.0/24")
	tenant, _ := ParsePrefix("10.4.0.0/16")
	other, _ := ParsePrefix("10.5.0.0/16")
	tmpl := secguru.FirewallTemplate{
		Infrastructure: []ipnet.Prefix{infra},
		TenantRanges:   []ipnet.Prefix{tenant},
		OtherTenants:   []ipnet.Prefix{other},
	}
	for i := 0; i < b.N; i++ {
		cfg := tmpl.Generate()
		if err := secguru.GateDeployment(cfg, tmpl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_Precheck measures one emulated precheck of a dangerous
// change (Figure 7): clone production, re-converge BGP, validate, diff.
func BenchmarkE12_Precheck(b *testing.B) {
	topo := topology.MustNew(topology.Figure3Params())
	pipe := &emulator.Pipeline{Production: emulator.NewNetwork(topo)}
	leaf := topo.ClusterLeaves(0)[0]
	change := emulator.SetConfig{Device: leaf, Config: bgp.DeviceConfig{RejectDefaultIn: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Precheck(change)
		if err != nil {
			b.Fatal(err)
		}
		if res.Approved {
			b.Fatal("dangerous change approved")
		}
	}
}

// BenchmarkE13_MonitorThroughput measures one monitoring cycle for a
// ~1000-device datacenter (§2.6.1).
func BenchmarkE13_MonitorThroughput(b *testing.B) {
	topo := topology.MustNew(experiments.SizedParams("e13", 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := monitor.NewInstance("inst", monitor.NewDatacenter("dc", topo, nil))
		in.Workers = 16
		stats, err := in.RunCycle()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Violations != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// BenchmarkE13c_DegradedCycle measures one monitoring cycle under fault
// injection: 10% transient pull failures plus a dead device, exercising
// the retry/backoff and stale carry-forward paths.
func BenchmarkE13c_DegradedCycle(b *testing.B) {
	topo := topology.MustNew(experiments.SizedParams("e13c", 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := workload.NewScenario(topo)
		sc.TransientPullRate = 0.10
		sc.FaultSeed = 17
		sc.InjectTelemetryLoss(topo.ToRs()[0])
		in := monitor.NewInstance("inst", sc.Datacenter("dc"))
		in.Workers = 16
		stats, err := in.RunCycle()
		if err != nil {
			b.Fatal(err)
		}
		if stats.PullFailures == 0 {
			b.Fatal("fault injection inactive")
		}
	}
}

// BenchmarkE14_Claim1Trial measures one local-vs-global consistency trial.
func BenchmarkE14_Claim1Trial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		p := topology.Params{
			Name: "c1", Clusters: 2, ToRsPerCluster: 3, LeavesPerCluster: 2,
			SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 2,
		}
		topo := topology.MustNew(p)
		if rng.Intn(2) == 1 {
			topo.Links[rng.Intn(len(topo.Links))].Up = false
		}
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)
		v := rcdc.Validator{Workers: 1}
		rep, err := v.ValidateAll(facts, src)
		if err != nil {
			b.Fatal(err)
		}
		g, err := rcdc.NewGlobalChecker(topo, src)
		if err != nil {
			b.Fatal(err)
		}
		fails := g.Check(rcdc.FullRedundancy)
		if rep.Failures == 0 && len(fails) != 0 {
			b.Fatal("Claim 1 violated")
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblation_SATLearning measures the SAT solver with and without
// clause learning / VSIDS on a policy-shaped query.
func BenchmarkAblation_SATLearning(b *testing.B) {
	pol := workload.GenerateLegacyEdgeACL(workload.EdgeACLParams{
		ServiceRules: 150, DuplicateDenies: 20, ZeroDayDenies: 20, Seed: 7})
	cs := workload.EdgeContracts()
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := secguru.Check(pol, cs); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The no-learning/no-VSIDS ablations live at the sat layer; exercised
	// through its own tests. Here we at least pin the CDCL cost.
}

// BenchmarkAblation_BGPSimVsSynth compares the full path-vector simulation
// against the analytic converged-state synthesizer on the same topology.
func BenchmarkAblation_BGPSimVsSynth(b *testing.B) {
	p := topology.Params{
		Name: "ab", Clusters: 4, ToRsPerCluster: 8, LeavesPerCluster: 4,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
	}
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topo := topology.MustNew(p)
			sim := bgp.NewSim(topo, nil)
			sim.Run()
			if _, err := sim.Table(topo.ToRs()[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("synth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topo := topology.MustNew(p)
			synth := bgp.NewSynth(topo, nil)
			if _, err := synth.Table(topo.ToRs()[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFIBTextFormat measures Figure 2 rendering and parsing.
func BenchmarkFIBTextFormat(b *testing.B) {
	topo := topology.MustNew(experiments.SizedParams("fib", 300))
	src := bgp.NewSynth(topo, nil)
	tbl, err := src.Table(topo.ToRs()[0])
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf, topo); err != nil {
		b.Fatal(err)
	}
	text := buf.String()
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := tbl.WriteText(&buf, topo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fib.ParseText(strings.NewReader(text), tbl.Device, topo); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkACLParsers measures the Figure 8/9 parsers.
func BenchmarkACLParsers(b *testing.B) {
	pol := workload.GenerateLegacyEdgeACL(workload.EdgeACLParams{
		ServiceRules: 800, DuplicateDenies: 100, ZeroDayDenies: 85, Seed: 7})
	var ios bytes.Buffer
	if err := acl.WriteIOS(&ios, pol); err != nil {
		b.Fatal(err)
	}
	iosText := ios.String()
	var nsg bytes.Buffer
	if err := acl.WriteNSG(&nsg, pol); err != nil {
		b.Fatal(err)
	}
	nsgText := nsg.String()
	b.Run("ios", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := acl.ParseIOS("p", strings.NewReader(iosText)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nsg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := acl.ParseNSG("p", strings.NewReader(nsgText)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
