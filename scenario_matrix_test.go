package dcvalidate

import (
	"bytes"
	"fmt"
	"testing"

	"dcvalidate/internal/fib"
)

// The cross-engine differential scenario matrix: every §2.6.2-style error
// class is injected into a fresh Figure 3 datacenter and validated by
// every engine (trie, SMT, PEC), both as a full sweep and as a delta
// sweep spliced into a healthy baseline. Within an engine, full and delta
// reports must render byte-identically; across engines, the violation
// sets must agree on the (device, contract prefix, kind) surface; and the
// trie and PEC engines — which share exact verdict semantics down to
// witness details — must render byte-identically to each other.

// renderMatrixReport is the timing-free byte surface of a report, the
// same shape the E19/E20 identity gates pin.
func renderMatrixReport(rep *Report) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "checked=%d failures=%d\n", rep.Checked, rep.Failures)
	for i := range rep.Devices {
		d := &rep.Devices[i]
		fmt.Fprintf(&buf, "dev=%d name=%s role=%s contracts=%d\n", d.Device, d.Name, d.Role, d.Contracts)
		for _, v := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", v.String())
		}
	}
	return buf.Bytes()
}

// violationSigs reduces a report to the engine-independent identity of
// its violations. Witness details (counterexample addresses, matched rule
// prefixes) are engine-dependent and deliberately excluded — this is the
// same differential surface the trie-vs-SMT oracle tests use.
func violationSigs(rep *Report) map[string]int {
	sigs := make(map[string]int)
	for i := range rep.Devices {
		for _, v := range rep.Devices[i].Violations {
			sigs[fmt.Sprintf("%d|%v|%v", v.Device, v.Contract.Prefix, v.Kind)]++
		}
	}
	return sigs
}

func sameSigs(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// mutatedSource corrupts one device's pulled FIB — the RIB is right, the
// FIB is not (Software Bug 1's shape) — leaving every other device's
// table untouched.
type mutatedSource struct {
	inner  FIBSource
	victim DeviceID
	mutate func(tbl *fib.Table) *fib.Table
}

func (m mutatedSource) Table(id DeviceID) (*fib.Table, error) {
	tbl, err := m.inner.Table(id)
	if err != nil || id != m.victim {
		return tbl, err
	}
	return m.mutate(tbl), nil
}

// dropOneSpecific removes the first non-default, non-connected route — a
// silent blackhole for that prefix.
func dropOneSpecific(tbl *fib.Table) *fib.Table {
	out := fib.NewTable(tbl.Device)
	dropped := false
	for _, e := range tbl.Entries {
		if !dropped && !e.Connected && e.Prefix.Bits != 0 {
			dropped = true
			continue
		}
		out.Add(e)
	}
	return out
}

// selfLoopOneSpecific rewrites the first non-default, non-connected
// route's ECMP set to the device itself — a forwarding loop, so packets
// for that prefix are delivered to the wrong place.
func selfLoopOneSpecific(tbl *fib.Table) *fib.Table {
	out := fib.NewTable(tbl.Device)
	looped := false
	for _, e := range tbl.Entries {
		if !looped && !e.Connected && e.Prefix.Bits != 0 {
			looped = true
			e.NextHops = []DeviceID{tbl.Device}
		}
		out.Add(e)
	}
	return out
}

type matrixScenario struct {
	name string
	// broken: the scenario must produce at least one violation on every
	// engine (and healthy must produce none).
	broken bool
	// apply injects the error through the facade (journaled mutations).
	apply func(t *testing.T, dc *Datacenter)
	// source, when non-nil, additionally corrupts the FIB pull path; the
	// victim device is journaled via NoteDeviceChanged so the delta leg's
	// blast radius covers the corruption, exactly as the telemetry
	// injectors in internal/workload do.
	source func(t *testing.T, dc *Datacenter) FIBSource
}

func matrixScenarios() []matrixScenario {
	name := func(dc *Datacenter, id DeviceID) string { return dc.Topo.Device(id).Name }
	return []matrixScenario{
		{name: "healthy", broken: false, apply: func(t *testing.T, dc *Datacenter) {}},
		{name: "link-blackhole", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			if err := dc.FailLink(name(dc, dc.Topo.ClusterToRs(0)[0]), name(dc, dc.Topo.ClusterLeaves(0)[0])); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "session-shutdown", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			if err := dc.ShutSession(name(dc, dc.Topo.ClusterToRs(0)[0]), name(dc, dc.Topo.ClusterLeaves(0)[1])); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "l2-port-bug", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			if err := dc.SetDeviceConfig(name(dc, dc.Topo.ClusterLeaves(0)[0]), &DeviceConfig{SessionsDisabled: true}); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "reject-default", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			if err := dc.SetDeviceConfig(name(dc, dc.Topo.ClusterLeaves(1)[0]), &DeviceConfig{RejectDefaultIn: true}); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "ecmp-single", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			if err := dc.SetDeviceConfig(name(dc, dc.Topo.ClusterToRs(0)[1]), &DeviceConfig{MaxECMPPaths: 1}); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "asn-clash", broken: true, apply: func(t *testing.T, dc *Datacenter) {
			// A cluster-1 leaf migrated with cluster-0's leaf ASN: BGP loop
			// prevention silently discards its announcements.
			asn := dc.Topo.Device(dc.Topo.ClusterLeaves(0)[0]).ASN
			for _, leaf := range dc.Topo.ClusterLeaves(1) {
				if err := dc.SetDeviceConfig(name(dc, leaf), &DeviceConfig{ASNOverride: asn}); err != nil {
					t.Fatal(err)
				}
			}
		}},
		{name: "rib-fib-blackhole", broken: true,
			apply: func(t *testing.T, dc *Datacenter) {
				dc.Topo.NoteDeviceChanged(dc.Topo.ClusterToRs(0)[0])
			},
			source: func(t *testing.T, dc *Datacenter) FIBSource {
				return mutatedSource{inner: dc.Source(), victim: dc.Topo.ClusterToRs(0)[0], mutate: dropOneSpecific}
			}},
		{name: "fib-self-loop", broken: true,
			apply: func(t *testing.T, dc *Datacenter) {
				dc.Topo.NoteDeviceChanged(dc.Topo.ClusterToRs(0)[0])
			},
			source: func(t *testing.T, dc *Datacenter) FIBSource {
				return mutatedSource{inner: dc.Source(), victim: dc.Topo.ClusterToRs(0)[0], mutate: selfLoopOneSpecific}
			}},
	}
}

func TestScenarioMatrixCrossEngine(t *testing.T) {
	engines := []struct {
		name string
		eng  Engine
	}{
		{"trie", EngineTrie},
		{"smt", EngineSMT},
		{"pec", EnginePEC},
	}
	for _, sc := range matrixScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			fullRender := map[string][]byte{}
			fullSigs := map[string]map[string]int{}
			for _, e := range engines {
				dc, err := NewDatacenter(Figure3Params())
				if err != nil {
					t.Fatal(err)
				}
				opts := ValidateOptions{Engine: e.eng, Workers: 1}
				prev, err := dc.Validate(opts)
				if err != nil {
					t.Fatalf("%s baseline: %v", e.name, err)
				}
				if prev.Failures != 0 {
					t.Fatalf("%s baseline unhealthy: %d failures", e.name, prev.Failures)
				}

				sc.apply(t, dc)
				if sc.source != nil {
					opts.Source = sc.source(t, dc)
				}
				full, err := dc.Validate(opts)
				if err != nil {
					t.Fatalf("%s full: %v", e.name, err)
				}
				delta, err := dc.ValidateDelta(prev, opts)
				if err != nil {
					t.Fatalf("%s delta: %v", e.name, err)
				}

				if (full.Failures > 0) != sc.broken {
					t.Errorf("%s: failures=%d, broken=%v", e.name, full.Failures, sc.broken)
				}
				fr, dr := renderMatrixReport(full), renderMatrixReport(delta)
				if !bytes.Equal(fr, dr) {
					t.Errorf("%s: delta sweep diverges from full sweep\n--- full ---\n%s--- delta ---\n%s", e.name, fr, dr)
				}
				fullRender[e.name] = fr
				fullSigs[e.name] = violationSigs(full)
			}

			// Trie and PEC share exact semantics: byte identity.
			if !bytes.Equal(fullRender["trie"], fullRender["pec"]) {
				t.Errorf("PEC report diverges from trie\n--- trie ---\n%s--- pec ---\n%s",
					fullRender["trie"], fullRender["pec"])
			}
			// All engines agree on the violation identity surface.
			for _, e := range engines[1:] {
				if !sameSigs(fullSigs["trie"], fullSigs[e.name]) {
					t.Errorf("%s violation set diverges from trie:\ntrie: %v\n%s: %v",
						e.name, fullSigs["trie"], e.name, fullSigs[e.name])
				}
			}
		})
	}
}
