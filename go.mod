module dcvalidate

go 1.22
