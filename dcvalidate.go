// Package dcvalidate is a reproduction of "Validating Datacenters At
// Scale" (SIGCOMM 2019): the RCDC dataplane checker that validates every
// device's forwarding table against local contracts derived automatically
// from the datacenter architecture, and the SecGuru policy analyzer that
// validates ACLs, network security groups, and distributed firewalls
// against reachability contracts using bit-vector satisfiability checking.
//
// The package is a facade over the implementation packages. A typical RCDC
// workflow:
//
//	dc, _ := dcvalidate.NewDatacenter(dcvalidate.TopologyParams{
//		Clusters: 4, ToRsPerCluster: 16, LeavesPerCluster: 4,
//		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
//	})
//	dc.FailLink("dc-c0-t0-0", "dc-c0-t1-1") // or discover live state
//	report, _ := dc.Validate(dcvalidate.ValidateOptions{})
//	for _, v := range report.Violations() { fmt.Println(v) }
//
// and a SecGuru workflow:
//
//	policy, _ := dcvalidate.ParseIOSACL("edge", f)
//	report, _ := dcvalidate.CheckPolicy(policy, contracts)
//
// Everything — the CDCL SAT solver, the bit-vector layer, the EBGP
// simulation, the Clos topology generator, the monitoring pipeline — is
// implemented in this module with no dependencies beyond the standard
// library.
package dcvalidate

import (
	"io"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bgp"
	"dcvalidate/internal/conflint"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/emulator"
	"dcvalidate/internal/engine"
	"dcvalidate/internal/explore"
	"dcvalidate/internal/faulty"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/region"
	"dcvalidate/internal/secguru"
	"dcvalidate/internal/topology"
)

// Re-exported core types. The aliases make the full method sets of the
// implementation types part of the public API.
type (
	// TopologyParams sizes a generated Clos datacenter (§2.1).
	TopologyParams = topology.Params
	// Topology is a datacenter network with live link state.
	Topology = topology.Topology
	// DeviceID identifies a device within a topology.
	DeviceID = topology.DeviceID
	// Facts is the metadata snapshot intent derives from (§2.3).
	Facts = metadata.Facts
	// Contract is a local forwarding contract (§2.4).
	Contract = contracts.Contract
	// FIB is one device's forwarding table (§2.2).
	FIB = fib.Table
	// FIBSource produces per-device FIBs without a global snapshot.
	FIBSource = fib.Source
	// Report aggregates a validation run.
	Report = rcdc.Report
	// Violation is one failed local contract.
	Violation = rcdc.Violation
	// DeviceConfig carries route-map/platform knobs (§2.6.2 error classes).
	DeviceConfig = bgp.DeviceConfig
	// MetricsRegistry is the typed metric registry of internal/obs. It
	// serves Prometheus text via WritePrometheus and structured samples
	// via Snapshot; all recording is deterministic under an injected
	// virtual clock.
	MetricsRegistry = obs.Registry
	// MetricSample is one flattened (name, labels, value) exposition row.
	MetricSample = obs.Sample

	// ExploreOptions configures a failure-space exploration run: the
	// fault budget k, the fault universe (links, devices, sessions,
	// telemetry), symmetry pruning, ordered-trace analysis, and worker
	// parallelism.
	ExploreOptions = explore.Options
	// ExploreResult is the outcome of a failure-space exploration:
	// equivalence classes explored, scenarios pruned by symmetry,
	// violating classes with their orbit weights, and minimal
	// per-contract failure sets.
	ExploreResult = explore.Result
	// Fault is one injectable failure (link, device, BGP session, or
	// telemetry blackout) in a failure scenario.
	Fault = explore.Fault
	// MinimalSet is a delta-debugged minimal failure set that still
	// violates a specific contract.
	MinimalSet = explore.MinimalSet
	// FailureScenario is one explored equivalence-class representative
	// with its faults, orbit weight, and validation outcome.
	FailureScenario = explore.Scenario

	// ConflintReport is the deterministic result of statically linting a
	// configuration fleet (internal/conflint).
	ConflintReport = conflint.Report
	// ConflintFinding is one configuration lint diagnostic.
	ConflintFinding = conflint.Finding

	// Policy is an ordered packet-filter rule set (§3.1).
	Policy = acl.Policy
	// PolicyContract pairs a packet filter with a permit/deny expectation.
	PolicyContract = secguru.Contract
	// PolicyReport is the outcome of checking a policy against contracts.
	PolicyReport = secguru.Report

	// Pipeline is the §2.7 precheck workflow over an emulated network.
	Pipeline = emulator.Pipeline
	// MonitorInstance is one horizontally-scaled RCDC service instance.
	MonitorInstance = monitor.Instance
	// FaultySource wraps a FIBSource with deterministic seeded fault
	// injection: transient pull errors, dead devices, slow pulls, and
	// corrupt store documents.
	FaultySource = faulty.Source

	// RefactorPlan is the §3.3 phased change workflow for legacy ACLs:
	// prechecks on a test device, staged group rollout, postchecks,
	// rollback.
	RefactorPlan = secguru.Plan
	// PolicyChange is one step of a refactor plan.
	PolicyChange = secguru.Change
	// PolicyDevice models a production device holding an ACL, with the
	// rule-capacity limitation prechecks must account for.
	PolicyDevice = secguru.Device
	// NSGGuard is the §3.4 change-API validation hook protecting managed
	// database backups.
	NSGGuard = secguru.NSGGuard
	// ManagedInstance locates a managed database and its infrastructure
	// service for the NSG guard.
	ManagedInstance = secguru.ManagedInstance
	// FirewallTemplate generates and validates the §3.5 per-VM firewall.
	FirewallTemplate = secguru.FirewallTemplate
	// Packet is a concrete 5-tuple header.
	Packet = acl.Packet
	// PortRange is an inclusive port interval.
	PortRange = acl.PortRange
)

// Ports returns the inclusive port range [lo, hi].
func Ports(lo, hi uint16) PortRange { return PortRange{Lo: lo, Hi: hi} }

// NewPolicyDevice returns a device pre-configured with an ACL; capacity 0
// means unlimited rules.
func NewPolicyDevice(name string, group, capacity int, p *Policy) *PolicyDevice {
	return secguru.NewDevice(name, group, capacity, p)
}

// BackupContracts derives the §3.4 reachability contracts for a managed
// database instance.
func BackupContracts(mi ManagedInstance) []PolicyContract {
	return secguru.BackupContracts(mi)
}

// GateFirewallDeployment validates a generated firewall configuration
// against its template's contracts (§3.5).
func GateFirewallDeployment(cfg *Policy, t FirewallTemplate) error {
	return secguru.GateDeployment(cfg, t)
}

// Figure3Params returns the scaled-down topology of the paper's Figure 3,
// used by the running example of §2.4.
func Figure3Params() TopologyParams { return topology.Figure3Params() }

// Region models multiple datacenters sharing a regional network, with the
// §2.1 private-ASN stripping at the regional spine tier.
type Region = region.Region

// NewRegion builds a region from per-datacenter parameters; each must
// carry a distinct RegionIndex.
func NewRegion(params []TopologyParams) (*Region, error) {
	return region.New(params)
}

// Datacenter bundles a topology with its metadata facts and a converged
// FIB source — everything RCDC needs. It is a thin client of the
// orchestration engine (internal/engine): every method delegates, so the
// facade, the sharded coordinator, and the dcvalidated query server all
// share one implementation, one set of serving caches, and one lock.
// Datacenter methods are safe for concurrent use; only direct writes to
// the public Topo and Config fields bypass the engine's synchronization.
type Datacenter struct {
	// Topo and Config are the live state the engine operates on — shared,
	// not copied. Reads are always safe; concurrent programs must route
	// mutations through the facade methods (FailLink, SetDeviceConfig, …)
	// rather than writing these directly.
	Topo   *Topology
	Config map[DeviceID]*DeviceConfig

	eng *engine.Engine
}

// NewDatacenter generates a synthetic datacenter from the parameters.
func NewDatacenter(p TopologyParams) (*Datacenter, error) {
	topo, err := topology.New(p)
	if err != nil {
		return nil, err
	}
	cfg := map[DeviceID]*DeviceConfig{}
	return &Datacenter{Topo: topo, Config: cfg, eng: engine.New(topo, cfg)}, nil
}

// Facts returns the metadata snapshot for the datacenter.
//
// The snapshot is cached forever by design, not merely as an
// optimization: facts model intent — the expected architecture — so link
// failures, session shutdowns, and restores MUST NOT alter them.
// Contracts derived from the facts are required to hold across live-state
// fluctuations (§2.4); regenerating facts from degraded link state would
// silently weaken the contracts to match the failure being validated.
// Only an intent edit (devices added or retired, prefixes moved) would
// invalidate the cache, and the facade does not support those on a built
// topology.
func (d *Datacenter) Facts() *Facts { return d.eng.Facts() }

// Metrics returns the datacenter's metric registry, creating it — and
// wiring the per-subsystem instrumentation bundles into every validator,
// solver, FIB source, and blast-radius computation the facade builds —
// on first call. Until then instrumentation is off and costs nothing.
// The registry is safe for concurrent use and its Prometheus exposition
// is byte-deterministic.
func (d *Datacenter) Metrics() *MetricsRegistry { return d.eng.Metrics() }

// Source returns the converged-state FIB source reflecting current link
// state and device configurations. Tables are synthesized lazily per
// device; no global snapshot is formed.
func (d *Datacenter) Source() FIBSource { return d.eng.NewSource() }

// SimulateBGP runs the full EBGP path-vector simulation and returns it as
// a FIB source (higher fidelity than Source; cost scales with the
// datacenter).
func (d *Datacenter) SimulateBGP() FIBSource { return d.eng.SimulateBGP() }

// FailLink marks the link between two named devices operationally down.
func (d *Datacenter) FailLink(a, b string) error {
	return d.eng.Apply(engine.Change{Kind: engine.FailLink, A: a, B: b})
}

// RestoreLink marks the link between two named devices operationally up
// again — the exact inverse of FailLink.
func (d *Datacenter) RestoreLink(a, b string) error {
	return d.eng.Apply(engine.Change{Kind: engine.RestoreLink, A: a, B: b})
}

// ShutSession administratively shuts the BGP session between two named
// devices.
func (d *Datacenter) ShutSession(a, b string) error {
	return d.eng.Apply(engine.Change{Kind: engine.ShutSession, A: a, B: b})
}

// RestoreSession brings the BGP session between two named devices back
// up — the exact inverse of ShutSession.
func (d *Datacenter) RestoreSession(a, b string) error {
	return d.eng.Apply(engine.Change{Kind: engine.RestoreSession, A: a, B: b})
}

// SetDeviceConfig installs (or, with nil, clears) a device's
// configuration and journals the change, so incremental revalidation
// knows the device's converged state may differ. Incremental consumers
// (ValidateDelta, the monitoring service's Incremental mode) require
// config edits to go through this method — writing to the Config map
// directly leaves no journal trace and can yield stale delta reports.
// With the lint gate enabled (EnableLintGate), the candidate fleet —
// current configs plus this change — is rendered and statically linted
// first; a change that introduces findings is rejected with a *LintError
// carrying the report, and nothing is applied or journaled.
func (d *Datacenter) SetDeviceConfig(device string, cfg *DeviceConfig) error {
	return d.eng.Apply(engine.Change{Kind: engine.SetConfig, Device: device, Config: cfg})
}

// EnableLintGate turns on lint-before-apply for SetDeviceConfig: every
// candidate configuration is rendered to device configs and checked by
// the full conflint analyzer suite before it takes effect, catching
// misconfigurations milliseconds before they would cost a re-convergence
// and a contract sweep. Off by default, because the simulator's whole
// purpose often *is* installing a misconfiguration to study (E3, E18).
func (d *Datacenter) EnableLintGate() { d.eng.EnableLintGate() }

// DisableLintGate turns lint-before-apply back off.
func (d *Datacenter) DisableLintGate() { d.eng.DisableLintGate() }

// LintConfigs renders the current fleet and runs the conflint analyzer
// suite over it, recording into the facade registry's conflint bundle
// when Metrics() has been called.
func (d *Datacenter) LintConfigs() (*ConflintReport, error) {
	return d.eng.Lint()
}

// LintError is returned by SetDeviceConfig when the lint gate rejects a
// change; Report carries the findings that would have been introduced.
type LintError = engine.LintError

// Contracts generates the full contract set for every device from the
// metadata facts (§2.4.1–2.4.3).
func (d *Datacenter) Contracts() []contracts.DeviceContracts {
	return d.eng.Contracts()
}

// Engine selects the verification algorithm of §2.5.
type Engine int

const (
	// EngineTrie is the specialized hash-trie algorithm (§2.5.2), RCDC's
	// fast path for the common workload.
	EngineTrie Engine = iota
	// EngineSMT is the bit-vector-logic engine (§2.5.1) discharged to the
	// built-in SAT solver.
	EngineSMT
	// EnginePEC is the packet-equivalence-class engine (internal/pec):
	// per-device atoms of the destination space with interned hop-set
	// IDs, contract checks as constant-time class operations, verdicts
	// byte-identical to EngineTrie (locked by the cross-engine scenario
	// matrix, the E20 gates, and a differential fuzzer).
	EnginePEC
)

// engineKind lowers the facade enum to the engine's Kind vocabulary.
func (e Engine) engineKind() engine.Kind {
	switch e {
	case EngineSMT:
		return engine.KindSMT
	case EnginePEC:
		return engine.KindPEC
	}
	return engine.KindTrie
}

// ValidateOptions configures a validation run.
type ValidateOptions struct {
	Engine Engine
	// Exact extends the exact-ECMP-set requirement to specific contracts
	// (the §2.5.1 all-output-ports variant); the default uses the paper's
	// subset semantics with default-contract equality.
	Exact bool
	// Workers is the parallelism degree (0 = all CPUs, 1 = the paper's
	// single-CPU measurement setup).
	Workers int
	// Source overrides the FIB source (e.g. a corrupted source for fault
	// injection, or SimulateBGP output).
	Source FIBSource
}

// engineOptions lowers the public options to the engine's.
func (o ValidateOptions) engineOptions() engine.Options {
	return engine.Options{
		Engine:  o.Engine.engineKind(),
		SMT:     o.Engine == EngineSMT,
		Exact:   o.Exact,
		Workers: o.Workers,
		Source:  o.Source,
	}
}

// Validate runs local validation over every device of the datacenter.
// The report is stamped with the topology generation observed before
// pulling, so it can seed ValidateDelta.
func (d *Datacenter) Validate(opts ValidateOptions) (*Report, error) {
	return d.eng.Validate(opts.engineOptions())
}

// ValidateDelta revalidates only the blast radius of the topology changes
// journaled since prev was taken (prev.Generation), splicing the fresh
// per-device results into prev. The result is byte-for-byte identical to
// a from-scratch Validate of the current state — just cheaper, since
// devices outside the blast radius provably converge to the tables prev
// already recorded.
//
// It falls back to a full Validate when prev is nil, when the change
// journal no longer reaches back to prev.Generation, or when the blast
// radius is unbounded (a device-config change, or unbounded config knobs
// present anywhere). Either way the returned report is complete and
// stamped with the new generation, ready to be fed back in.
//
// Repeated calls amortize work through a persistent table-cached FIB
// source and a memoized contract generator (unless opts.Source overrides
// the source). Config edits must go through SetDeviceConfig to be seen.
func (d *Datacenter) ValidateDelta(prev *Report, opts ValidateOptions) (*Report, error) {
	return d.eng.ValidateDelta(prev, opts.engineOptions())
}

// CheckGlobalIntent materializes a global snapshot and verifies all-pairs
// ToR reachability along maximally redundant shortest paths — the
// whole-snapshot baseline the local technique replaces; empty result means
// the intent holds.
func (d *Datacenter) CheckGlobalIntent() ([]rcdc.PairResult, error) {
	return d.eng.CheckGlobalIntent()
}

// ExploreFailures model-checks the datacenter's contracts against every
// combination of up to opts.K simultaneous failures. Scenarios related by
// a verified topology automorphism are validated once per equivalence
// class (the class representative carries a "represents N scenarios"
// weight), each class revalidates only the blast radius of its faults
// against a healthy baseline, and every violating class is shrunk to
// minimal per-contract failure sets via delta debugging. Exploration runs
// on a clone: the datacenter's live state is never modified.
//
// With opts.Metrics unset, the run records into the facade registry's
// explorer bundle when Metrics() has been called.
func (d *Datacenter) ExploreFailures(opts ExploreOptions) (*ExploreResult, error) {
	return d.eng.ExploreFailures(opts)
}

// NewPipeline returns the §2.7 precheck pipeline treating this datacenter
// as production.
func (d *Datacenter) NewPipeline() *Pipeline { return d.eng.NewPipeline() }

// NewMonitor returns an RCDC live-monitoring instance watching this
// datacenter (Figure 5).
func (d *Datacenter) NewMonitor(name string) *MonitorInstance {
	return d.eng.NewMonitor(name)
}

// WriteFIB renders a device's routing table in the Figure 2 text format.
func (d *Datacenter) WriteFIB(w io.Writer, device string) error {
	return d.eng.WriteFIB(w, device)
}

// Serving layer: the query API backed by the engine's generation-keyed
// caches. Steady-state repeat queries are O(1) map hits (visible in the
// dcv_serve_cache_hits_total counter once Metrics() has been called);
// after a journaled change only the blast radius revalidates.

// Re-exported query types.
type (
	// DeviceAnswer answers "is device X conformant?".
	DeviceAnswer = engine.DeviceAnswer
	// ReachAnswer answers "can traffic from src reach dst?".
	ReachAnswer = engine.ReachAnswer
	// ReachCounterexample is the concrete packet trajectory demonstrating
	// a failed reachability query.
	ReachCounterexample = engine.Counterexample
	// FleetSummary is the aggregate health of the datacenter.
	FleetSummary = engine.Summary
)

// QueryDevice answers "is device name conformant?" from the serving
// cache; on a hit this is an O(1) lookup with zero revalidation work.
func (d *Datacenter) QueryDevice(name string) (*DeviceAnswer, error) {
	return d.eng.QueryDevice(name)
}

// QueryReach answers "can traffic from src reach dst?" where dst is a
// device name or a hosted CIDR prefix; failing answers carry a
// counterexample packet.
func (d *Datacenter) QueryReach(src, dst string) (*ReachAnswer, error) {
	return d.eng.QueryReach(src, dst)
}

// Summary reports aggregate fleet health from the serving cache.
func (d *Datacenter) Summary() (*FleetSummary, error) { return d.eng.Summary() }

// QueryViolations returns every current violation (deep-copied; callers
// may mutate freely) plus the topology generation it reflects.
func (d *Datacenter) QueryViolations() ([]Violation, uint64, error) {
	return d.eng.QueryViolations()
}

// SetDefaultEngine makes every run that doesn't name an engine in its
// ValidateOptions — including the serving path's cache refreshes — use
// the given one. Call it before EnableSharding so the shard coordinator
// inherits the choice.
func (d *Datacenter) SetDefaultEngine(e Engine) { d.eng.SetDefaultEngine(e.engineKind()) }

// EnableSharding partitions full-fleet sweeps across n validator shards
// coordinated by consistent hashing over the Clos pod structure with
// work stealing. Sharded sweeps are byte-identical (modulo timing) to
// single-engine sweeps. Call Metrics() first to observe the shard
// counters.
func (d *Datacenter) EnableSharding(n int) { d.eng.EnableSharding(n) }

// DisableSharding restores single-engine sweeps.
func (d *Datacenter) DisableSharding() { d.eng.DisableSharding() }

// Shards reports the current sweep partition width (1 when unsharded).
func (d *Datacenter) Shards() int { return d.eng.Shards() }

// SecGuru facade.

// ParseIOSACL parses a Cisco IOS-style access-control list (Figure 8).
func ParseIOSACL(name string, r io.Reader) (*Policy, error) {
	return acl.ParseIOS(name, r)
}

// ParseNSG parses a network security group from JSON (Figure 9).
func ParseNSG(name string, r io.Reader) (*Policy, error) {
	return acl.ParseNSG(name, r)
}

// ParsePolicyContracts reads a JSON contract suite.
func ParsePolicyContracts(r io.Reader) ([]PolicyContract, error) {
	return secguru.ParseContracts(r)
}

// CheckPolicy validates a connectivity policy against contracts with the
// bit-vector engine (§3.2), identifying the violating rule and a witness
// packet for every failed contract.
func CheckPolicy(p *Policy, cs []PolicyContract) (*PolicyReport, error) {
	return secguru.Check(p, cs)
}

// PoliciesEquivalent reports whether two policies admit exactly the same
// traffic, with a distinguishing packet when they do not.
func PoliciesEquivalent(a, b *Policy) (bool, acl.Packet, error) {
	return secguru.Equivalent(a, b)
}

// CheckPolicyPath validates end-to-end contracts against the conjunction
// of the policies along a forwarding path (edge ACL, hypervisor firewall,
// destination NSG, ...), identifying the blocking hop — the cross-device
// extension §3.6 describes.
func CheckPolicyPath(path []*Policy, cs []PolicyContract) (*secguru.PathReport, error) {
	return secguru.CheckPath(path, cs)
}

// ParsePrefix parses IPv4 CIDR notation.
func ParsePrefix(s string) (ipnet.Prefix, error) { return ipnet.ParsePrefix(s) }
