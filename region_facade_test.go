package dcvalidate

import "testing"

func TestFacadeRegion(t *testing.T) {
	a := Figure3Params()
	a.Name = "west"
	b := Figure3Params()
	b.Name = "east"
	b.RegionIndex = 1
	r, err := NewRegion([]TopologyParams{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Converge(); err != nil {
		t.Fatal(err)
	}
	// A ToR in east carries every west prefix.
	east := r.DCs[1].Topo
	tbl, err := r.Table(1, east.ToRs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, hp := range r.DCs[0].Topo.HostedPrefixes() {
		if _, ok := tbl.Get(hp.Prefix); !ok {
			t.Errorf("east ToR missing west prefix %v", hp.Prefix)
		}
	}
}
