package dcvalidate_test

import (
	"fmt"
	"log"
	"strings"

	"dcvalidate"
)

// Example demonstrates the core RCDC workflow: derive intent from the
// architecture, break a link, and read the violations.
func Example() {
	dc, err := dcvalidate.NewDatacenter(dcvalidate.Figure3Params())
	if err != nil {
		log.Fatal(err)
	}
	if err := dc.FailLink("fig3-c0-t0-0", "fig3-c0-t1-0"); err != nil {
		log.Fatal(err)
	}
	rep, err := dc.Validate(dcvalidate.ValidateOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violations:", rep.Failures)
	// Output:
	// violations: 4
}

// ExampleCheckPolicy validates a Cisco-style ACL against a contract suite
// and prints the violating rule with a witness packet.
func ExampleCheckPolicy() {
	policy, err := dcvalidate.ParseIOSACL("edge", strings.NewReader(
		"deny ip 10.0.0.0/8 any\npermit ip any any\n"))
	if err != nil {
		log.Fatal(err)
	}
	suite, err := dcvalidate.ParsePolicyContracts(strings.NewReader(`[
	  {"name":"private-isolated","expected":"deny","src":"10.0.0.0/8"},
	  {"name":"smb-blocked","expected":"deny","protocol":"tcp","dstPorts":"445"}
	]`))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dcvalidate.CheckPolicy(policy, suite)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Preserved {
			fmt.Printf("%s: ok\n", o.Contract.Name)
		} else {
			fmt.Printf("%s: violated by %q\n", o.Contract.Name, o.RuleName)
		}
	}
	// Output:
	// private-isolated: ok
	// smb-blocked: violated by "line 2 ()"
}

// ExampleDatacenter_CheckGlobalIntent shows Claim 1 in action: a healthy
// datacenter passes both local validation and the independently computed
// global intent.
func ExampleDatacenter_CheckGlobalIntent() {
	dc, err := dcvalidate.NewDatacenter(dcvalidate.Figure3Params())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dc.Validate(dcvalidate.ValidateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fails, err := dc.CheckGlobalIntent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local violations: %d, global failures: %d\n", rep.Failures, len(fails))
	// Output:
	// local violations: 0, global failures: 0
}

// ExampleCheckPolicyPath checks an end-to-end contract against the
// conjunction of an edge ACL and a host NSG (§3.6's extension).
func ExampleCheckPolicyPath() {
	edge, _ := dcvalidate.ParseIOSACL("edge", strings.NewReader("permit ip any any\n"))
	nsg, _ := dcvalidate.ParseNSG("nsg", strings.NewReader(`[
	  {"name":"deny-smb","priority":100,"source":"*","sourcePorts":"*",
	   "destination":"*","destinationPorts":"445","protocol":"Tcp","access":"Deny"},
	  {"name":"allow","priority":200,"source":"*","sourcePorts":"*",
	   "destination":"*","destinationPorts":"*","protocol":"*","access":"Allow"}
	]`))
	suite, _ := dcvalidate.ParsePolicyContracts(strings.NewReader(`[
	  {"name":"smb-blocked-end-to-end","expected":"deny","protocol":"tcp","dstPorts":"445"}
	]`))
	rep, err := dcvalidate.CheckPolicyPath([]*dcvalidate.Policy{edge, nsg}, suite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok:", rep.OK())
	// Output:
	// ok: true
}
