// Legacyacl replays the §3.3 case study: a legacy Edge ACL grown to
// thousands of rules is refactored down to its intended goal state through
// a phased plan, with SecGuru prechecks gating every change and catching
// an injected typo before it can reach production.
package main

import (
	"fmt"
	"log"

	"dcvalidate"

	"dcvalidate/internal/workload"
)

func main() {
	legacy := workload.GenerateLegacyEdgeACL(workload.DefaultEdgeACLParams())
	contracts := workload.EdgeContracts()
	fmt.Printf("legacy Edge ACL: %d rules; regression suite: %d contracts\n\n",
		len(legacy.Rules), len(contracts))

	plan := &dcvalidate.RefactorPlan{
		TestDevice: dcvalidate.NewPolicyDevice("testdev", 0, 0, legacy),
		Devices: []*dcvalidate.PolicyDevice{
			dcvalidate.NewPolicyDevice("edge-ash-1", 0, 0, legacy),
			dcvalidate.NewPolicyDevice("edge-ash-2", 0, 0, legacy),
			dcvalidate.NewPolicyDevice("edge-dub-1", 1, 0, legacy),
			dcvalidate.NewPolicyDevice("edge-dub-2", 1, 0, legacy),
		},
		Contracts: contracts,
	}

	fmt.Printf("%-48s %7s %9s %7s\n", "CHANGE", "RULES", "PRECHECK", "GROUPS")
	for _, step := range workload.BuildRefactorPlan(legacy) {
		res, err := plan.Apply(step.Change)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s %7d %9v %7d\n",
			step.Name, res.RuleCount, res.PrecheckOK, res.DeployedGroups)
		if !res.PrecheckOK {
			log.Fatalf("unexpected precheck failure at %q", step.Name)
		}
	}

	// Now fat-finger a prefix in a would-be follow-up change, exactly the
	// §3.3 incident class ("pre-checks detected typos, such as incorrect
	// prefixes, that caused several services to be unreachable").
	final := workload.BuildRefactorPlan(legacy)
	bad := workload.CorruptChange(final[len(final)-1].Change)
	res, err := plan.Apply(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected typo change %q:\n", bad.Name)
	fmt.Printf("  precheck ok: %v, deployed groups: %d\n", res.PrecheckOK, res.DeployedGroups)
	for _, f := range res.PrecheckFails {
		fmt.Printf("  failed contract %q — witness %s:%d -> %s:%d denied by %s\n",
			f.Contract.Name,
			f.Witness.SrcIP, f.Witness.SrcPort, f.Witness.DstIP, f.Witness.DstPort,
			f.RuleName)
	}
	fmt.Println("\nthe change never reached a production device; in the absence " +
		"of prechecks it would have caused an outage (§3.3)")
}
