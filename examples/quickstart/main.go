// Quickstart: generate a small Clos datacenter, validate every device's
// forwarding table against the automatically derived local contracts, break
// a link, and watch RCDC pinpoint the drift.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"dcvalidate"
)

func main() {
	// A 4-cluster datacenter: 16 ToRs and 4 leaves per cluster, 4 spine
	// planes of 2, 4 regional spines.
	dc, err := dcvalidate.NewDatacenter(dcvalidate.TopologyParams{
		Name: "demo", Clusters: 4, ToRsPerCluster: 16, LeavesPerCluster: 4,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d devices hosting %d VLAN prefixes\n",
		len(dc.Topo.Devices), len(dc.Topo.HostedPrefixes()))

	// Intent is derived from the architecture: every device gets a default
	// contract and specific contracts for all hosted prefixes (§2.4).
	total := 0
	for _, set := range dc.Contracts() {
		total += len(set.Contracts)
	}
	fmt.Printf("derived %d local contracts from metadata facts\n", total)

	// A healthy datacenter validates clean.
	rep, err := dc.Validate(dcvalidate.ValidateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy: %d contracts checked in %s, %d violations\n",
		rep.Checked, rep.Elapsed.Round(1000), rep.Failures)

	// Fail two of a ToR's four uplinks (optics fault + admin shut drift).
	must(dc.FailLink("demo-c0-t0-0", "demo-c0-t1-1"))
	must(dc.ShutSession("demo-c0-t0-0", "demo-c0-t1-2"))

	rep, err = dc.Validate(dcvalidate.ValidateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failures: %d violations (%d high risk)\n",
		rep.Failures, rep.HighRisk())
	for i, v := range rep.Violations() {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", rep.Failures-6)
			break
		}
		fmt.Printf("  %s on %s\n", v.Kind, dc.Topo.Device(v.Device).Name)
	}

	// Dump the head of the degraded ToR's routing table (Figure 2 format).
	var buf bytes.Buffer
	if err := dc.WriteFIB(&buf, "demo-c0-t0-0"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrouting table of demo-c0-t0-0 (first lines):")
	for i, line := range strings.SplitAfter(buf.String(), "\n") {
		if i == 12 {
			fmt.Println(" ...")
			break
		}
		fmt.Print(line)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
