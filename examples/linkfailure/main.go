// Linkfailure walks through the paper's running example (§2.4.4,
// Figures 3 & 4): the scaled-down datacenter with four link failures,
// the exact contract violations they cause, and the longer detour route
// through the regional spine that the surviving contracts guarantee.
package main

import (
	"fmt"
	"log"

	"dcvalidate"

	"dcvalidate/internal/rcdc"
)

func main() {
	dc, err := dcvalidate.NewDatacenter(dcvalidate.Figure3Params())
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3's failures: ToR1 loses its uplinks to A3 and A4, ToR2
	// loses its uplinks to A1 and A2.
	for _, pair := range [][2]string{
		{"fig3-c0-t0-0", "fig3-c0-t1-2"},
		{"fig3-c0-t0-0", "fig3-c0-t1-3"},
		{"fig3-c0-t0-1", "fig3-c0-t1-0"},
		{"fig3-c0-t0-1", "fig3-c0-t1-1"},
	} {
		if err := dc.FailLink(pair[0], pair[1]); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := dc.Validate(dcvalidate.ValidateOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("four link failures -> %d contract violations:\n\n", rep.Failures)
	fmt.Printf("%-14s %-14s %-17s %s\n", "DEVICE", "CONTRACT", "KIND", "DETAIL")
	for _, v := range rep.Violations() {
		contract := "default"
		if !v.Contract.Prefix.IsDefault() {
			contract = v.Contract.Prefix.String()
		}
		detail := ""
		if len(v.Missing) > 0 {
			detail = fmt.Sprintf("%d of %d next hops remain", v.Remaining, len(v.Contract.NextHops))
		}
		fmt.Printf("%-14s %-14s %-17s %s\n",
			dc.Topo.Device(v.Device).Name, contract, v.Kind, detail)
	}

	// §2.4.4's punchline: traffic from ToR1 to PrefixB still arrives —
	// via default routes up to the regional spine and specific routes
	// down — but on a 6-hop path instead of 2.
	g, err := rcdc.NewGlobalChecker(dc.Topo, dc.Source())
	if err != nil {
		log.Fatal(err)
	}
	hps := dc.Topo.HostedPrefixes()
	tor1 := dc.Topo.ClusterToRs(0)[0]
	pair := g.CheckPair(tor1, hps[1])
	fmt.Printf("\nToR1 -> PrefixB: reachable=%v hops=%d (intended: 2)\n",
		pair.Reaches, pair.MinHops)
	fmt.Println("the detour exists because the R devices kept their specific " +
		"contracts and no default contract is fully broken (§2.4.4)")
}
