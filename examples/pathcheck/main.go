// Pathcheck demonstrates the cross-device extension §3.6 names: traffic
// from the Internet to a customer VM traverses the Edge ACL, a hypervisor
// firewall, and the VM's NSG. End-to-end reachability contracts are
// validated against the conjunction of all three, and a failure pinpoints
// which hop blocks the traffic.
package main

import (
	"fmt"
	"log"
	"strings"

	"dcvalidate"
)

const edgeACL = `
remark private address isolation
deny ip 10.0.0.0/8 any
deny ip 172.16.0.0/12 any
remark standard port blocks
deny tcp any any eq 445
permit ip any any
`

const vmNSG = `[
  {"name":"AllowWeb","priority":100,"source":"*","sourcePorts":"*",
   "destination":"104.208.40.0/24","destinationPorts":"443","protocol":"Tcp","access":"Allow"},
  {"name":"AllowMgmt","priority":200,"source":"104.208.32.0/20","sourcePorts":"*",
   "destination":"104.208.40.0/24","destinationPorts":"22","protocol":"Tcp","access":"Allow"},
  {"name":"DenyAll","priority":4096,"source":"*","sourcePorts":"*",
   "destination":"*","destinationPorts":"*","protocol":"*","access":"Deny"}
]`

func main() {
	edge, err := dcvalidate.ParseIOSACL("edge", strings.NewReader(edgeACL))
	if err != nil {
		log.Fatal(err)
	}
	nsg, err := dcvalidate.ParseNSG("vm-nsg", strings.NewReader(vmNSG))
	if err != nil {
		log.Fatal(err)
	}

	contracts, err := dcvalidate.ParsePolicyContracts(strings.NewReader(`[
	  {"name":"web-reachable","expected":"permit","protocol":"tcp",
	   "src":"8.0.0.0/8","dst":"104.208.40.0/24","dstPorts":"443"},
	  {"name":"smb-blocked-end-to-end","expected":"deny","protocol":"tcp",
	   "dst":"104.208.40.0/24","dstPorts":"445"},
	  {"name":"ssh-from-internet","expected":"permit","protocol":"tcp",
	   "src":"8.0.0.0/8","dst":"104.208.40.0/24","dstPorts":"22"}
	]`))
	if err != nil {
		log.Fatal(err)
	}

	path := []*dcvalidate.Policy{edge, nsg}
	rep, err := dcvalidate.CheckPolicyPath(path, contracts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path: %v\n\n", rep.Policies)
	for _, o := range rep.Outcomes {
		if o.Preserved {
			fmt.Printf("[PASS] %s\n", o.Contract.Name)
			continue
		}
		hop := "end-to-end"
		if o.BlockingPolicy >= 0 {
			hop = path[o.BlockingPolicy].Name
		}
		fmt.Printf("[FAIL] %s — blocked at %s by %s (witness %s:%d -> %s:%d)\n",
			o.Contract.Name, hop, o.RuleName,
			o.Witness.SrcIP, o.Witness.SrcPort, o.Witness.DstIP, o.Witness.DstPort)
	}
	fmt.Println("\nthe ssh contract fails at the NSG: AllowMgmt only admits the " +
		"management prefix, not the Internet — the conjunction makes that " +
		"visible without reasoning about either policy alone")
}
