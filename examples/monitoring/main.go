// Monitoring runs the RCDC live-monitoring pipeline of §2.6 end to end:
// a datacenter accumulates latent faults across the §2.6.2 taxonomy, the
// service detects them cycle by cycle, the analytics triage classifies
// each error and routes it to a remediation queue, auto-remediation
// unshuts healthy sessions, and the violation count burns down.
package main

import (
	"fmt"
	"log"
	"sort"

	"dcvalidate/internal/monitor"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

func main() {
	topo := topology.MustNew(topology.Params{
		Name: "mon", Clusters: 4, ToRsPerCluster: 12, LeavesPerCluster: 4,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
	})
	s := workload.NewScenario(topo)

	// Latent faults that accumulated before monitoring was deployed.
	l1, _ := topo.LinkBetween(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	s.InjectOpticalFailure(l1.ID)
	l2, _ := topo.LinkBetween(topo.ToRs()[5], topo.ClusterLeaves(0)[1])
	s.InjectOperationDrift(l2.ID, false) // healthy link, forgotten shut
	l3, _ := topo.LinkBetween(topo.ToRs()[6], topo.ClusterLeaves(0)[2])
	s.InjectOperationDrift(l3.ID, true) // genuinely lossy link
	s.InjectRIBFIBBug(topo.ToRs()[20], 1)
	s.InjectPolicyECMPSingle(topo.ToRs()[30])
	// The pipeline itself runs degraded: a few percent of pulls fail
	// transiently (absorbed by retries) and one device's management plane
	// is dead — it ages from stale carry-forward into telemetry loss.
	s.TransientPullRate = 0.05
	s.FaultSeed = 9
	s.InjectTelemetryLoss(topo.ToRs()[40])

	in := monitor.NewInstance("inst-0", s.Datacenter("mon"))
	in.MaxConsecutiveFailures = 2
	fmt.Printf("monitoring %d devices; %d latent faults injected\n\n",
		len(topo.Devices), len(s.Injected))

	for cycle := 1; cycle <= 3; cycle++ {
		stats, err := in.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		high, low := in.Analytics.SeverityCounts(stats.Cycle)
		fmt.Printf("cycle %d: %d devices validated, %d violations (%d high / %d low risk)\n",
			cycle, stats.Devices, stats.Violations, high, low)
		fmt.Printf("  modeled fleet pull time %s, validation %s\n",
			stats.ModeledPullTime.Round(1000000), stats.ValidateTime.Round(1000000))
		if stats.PullFailures+stats.Retries > 0 {
			fmt.Printf("  degraded: %d pull failure(s), %d retries, %d stale carry-forward, %d unmonitored\n",
				stats.PullFailures, stats.Retries, stats.StaleDevices, stats.Unmonitored)
		}

		errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
		queues := map[monitor.RemediationQueueName]int{}
		for _, te := range errs {
			queues[te.Queue]++
		}
		names := make([]monitor.RemediationQueueName, 0, len(queues))
		for q := range queues {
			names = append(names, q)
		}
		sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
		for _, q := range names {
			fmt.Printf("  queue %-22s %d error(s)\n", q, queues[q])
		}

		restored, escalated := monitor.AutoRemediate(errs, in.Datacenters, s.Lossy)
		if restored+len(escalated) > 0 {
			fmt.Printf("  auto-remediation: %d session(s) unshut, %d escalated (lossy)\n",
				restored, len(escalated))
		}
		// Manual remediation between cycles: the cable gets replaced after
		// cycle 2 (datacenter ops worked the replace-cable queue).
		if cycle == 2 {
			l1.Up = true
			fmt.Println("  datacenter ops replaced the faulty cable")
		}
		fmt.Println()
	}
	for _, de := range in.UnmonitoredDevices() {
		fmt.Printf("device %s/%d is unmonitored (telemetry loss) — escalated to the %s queue\n",
			de.Datacenter, de.Device, monitor.QueueDeviceRecovery)
	}
	fmt.Println("remaining violations trace to the faults needing engineering " +
		"investigation (RIB-FIB bug, lossy link, ECMP policy) — the long tail " +
		"of the Figure 6 burndown")
}
