// Nsgbackup replays the §3.4 case study: customers editing their network
// security groups kept blocking the managed database's backup traffic to
// its infrastructure service. Integrating SecGuru into the NSG change API
// rejects such changes with an actionable error naming the offending rule.
package main

import (
	"fmt"
	"log"
	"strings"

	"dcvalidate"
)

const currentNSG = `[
  {"name":"AllowVnet","priority":100,"source":"10.1.0.0/16","sourcePorts":"*",
   "destination":"10.1.0.0/16","destinationPorts":"*","protocol":"*","access":"Allow"},
  {"name":"AllowInfraInbound","priority":200,"source":"40.90.0.0/16","sourcePorts":"*",
   "destination":"10.1.0.0/16","destinationPorts":"*","protocol":"Tcp","access":"Allow"},
  {"name":"AllowOutbound","priority":300,"source":"10.1.0.0/16","sourcePorts":"*",
   "destination":"*","destinationPorts":"*","protocol":"*","access":"Allow"},
  {"name":"DenyAllInbound","priority":4096,"source":"*","sourcePorts":"*",
   "destination":"*","destinationPorts":"*","protocol":"*","access":"Deny"}
]`

// The customer's "security hardening" edit: a high-priority lockdown that
// inadvertently covers the infrastructure service range.
const hardenedNSG = `[
  {"name":"LockdownExternal","priority":50,"source":"*","sourcePorts":"*",
   "destination":"40.0.0.0/8","destinationPorts":"*","protocol":"*","access":"Deny"},
  {"name":"AllowVnet","priority":100,"source":"10.1.0.0/16","sourcePorts":"*",
   "destination":"10.1.0.0/16","destinationPorts":"*","protocol":"*","access":"Allow"},
  {"name":"AllowInfraInbound","priority":200,"source":"40.90.0.0/16","sourcePorts":"*",
   "destination":"10.1.0.0/16","destinationPorts":"*","protocol":"Tcp","access":"Allow"},
  {"name":"AllowOutbound","priority":300,"source":"10.1.0.0/16","sourcePorts":"*",
   "destination":"*","destinationPorts":"*","protocol":"*","access":"Allow"},
  {"name":"DenyAllInbound","priority":4096,"source":"*","sourcePorts":"*",
   "destination":"*","destinationPorts":"*","protocol":"*","access":"Deny"}
]`

func main() {
	instanceSubnet, _ := dcvalidate.ParsePrefix("10.1.2.0/24")
	infraService, _ := dcvalidate.ParsePrefix("40.90.0.0/16")
	mi := dcvalidate.ManagedInstance{
		InstanceSubnet: instanceSubnet,
		InfraService:   infraService,
		InfraPorts:     dcvalidate.Ports(1433, 1434),
	}
	guard := &dcvalidate.NSGGuard{Instance: &mi, Enabled: true}
	fmt.Printf("managed DB at %v must reach infra service %v (auto-added contracts: %d)\n\n",
		mi.InstanceSubnet, mi.InfraService, len(dcvalidate.BackupContracts(mi)))

	// The current policy passes the guard.
	cur, err := dcvalidate.ParseNSG("vnet-nsg", strings.NewReader(currentNSG))
	if err != nil {
		log.Fatal(err)
	}
	if err := guard.ValidateChange(cur); err != nil {
		log.Fatalf("current policy rejected: %v", err)
	}
	fmt.Println("change 1 (current policy): ACCEPTED")

	// The hardening edit is rejected with the precise cause.
	bad, err := dcvalidate.ParseNSG("vnet-nsg", strings.NewReader(hardenedNSG))
	if err != nil {
		log.Fatal(err)
	}
	err = guard.ValidateChange(bad)
	if err == nil {
		log.Fatal("breaking change accepted!")
	}
	fmt.Println("change 2 (lockdown edit): REJECTED")
	fmt.Printf("  %v\n", err)
	fmt.Println("\nwithout the guard this change would have shipped and the next " +
		"periodic backup would have failed — the Figure 12 incident class")
}
