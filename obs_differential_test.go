package dcvalidate

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// The observability layer's core contract: instrumentation must never
// alter validation results. These differential tests run identical
// workloads with metrics on and off and require byte-identical reports —
// timing fields scrubbed under the system clock (they are genuinely
// nondeterministic there), and compared verbatim under a virtual clock.

// scrubTimes returns rep rendered as JSON with every Elapsed zeroed.
func scrubTimes(t *testing.T, rep *Report) []byte {
	t.Helper()
	cp := *rep
	cp.Elapsed = 0
	cp.Devices = append([]rcdc.DeviceReport(nil), rep.Devices...)
	for i := range cp.Devices {
		cp.Devices[i].Elapsed = 0
	}
	raw, err := json.MarshalIndent(&cp, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func diffParams(name string) TopologyParams {
	return TopologyParams{
		Name: name, Clusters: 2, ToRsPerCluster: 3, LeavesPerCluster: 2,
		SpinesPerPlane: 1, RegionalSpines: 2, RSLinksPerSpine: 1,
		PrefixesPerToR: 1,
	}
}

// breakSomething fails the same two links in any datacenter built from
// diffParams, so the compared reports carry real violations.
func breakSomething(topo *Topology) {
	tor := topo.ClusterToRs(0)[0]
	leaves := topo.ClusterLeaves(0)
	topo.FailLink(tor, leaves[0])
	topo.FailLink(tor, leaves[1])
}

func TestInstrumentedValidateMatchesUninstrumented(t *testing.T) {
	for _, engine := range []Engine{EngineTrie, EngineSMT} {
		plain, err := NewDatacenter(diffParams("diff"))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewDatacenter(diffParams("diff"))
		if err != nil {
			t.Fatal(err)
		}
		inst.Metrics() // turn instrumentation on for one of the twins
		breakSomething(plain.Topo)
		breakSomething(inst.Topo)

		opts := ValidateOptions{Engine: engine, Workers: 2}
		prevPlain, err := plain.Validate(opts)
		if err != nil {
			t.Fatal(err)
		}
		prevInst, err := inst.Validate(opts)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := scrubTimes(t, prevPlain), scrubTimes(t, prevInst); !bytes.Equal(a, b) {
			t.Fatalf("engine %v: full-sweep reports differ:\nplain: %s\ninstrumented: %s", engine, a, b)
		}

		// And through the incremental path: same change, delta-validated.
		plain.Topo.FailLink(plain.Topo.ClusterToRs(1)[0], plain.Topo.ClusterLeaves(1)[0])
		inst.Topo.FailLink(inst.Topo.ClusterToRs(1)[0], inst.Topo.ClusterLeaves(1)[0])
		dPlain, err := plain.ValidateDelta(prevPlain, opts)
		if err != nil {
			t.Fatal(err)
		}
		dInst, err := inst.ValidateDelta(prevInst, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := scrubTimes(t, dPlain), scrubTimes(t, dInst); !bytes.Equal(a, b) {
			t.Fatalf("engine %v: delta reports differ:\nplain: %s\ninstrumented: %s", engine, a, b)
		}

		// The instrumented run must actually have recorded something, or
		// the test is comparing two uninstrumented runs.
		found := false
		for _, s := range inst.Metrics().Snapshot() {
			if s.Name == "dcv_rcdc_devices_checked_total" && s.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Fatal("instrumented datacenter recorded no device checks")
		}
	}
}

// Under a virtual clock the timing fields are deterministic too, so the
// whole report must match verbatim — instrumentation reads the clock
// through the same injected source and cannot perturb it.
func TestInstrumentedValidatorIdenticalUnderVirtualClock(t *testing.T) {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	topo := topology.MustNew(diffParams("vdiff"))
	breakSomething(topo)
	facts := metadata.FromTopology(topo)

	run := func(v rcdc.Validator) []byte {
		rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	plain := run(rcdc.Validator{Workers: 1, Clock: clock.NewVirtual(base)})
	reg := obs.NewRegistry()
	vc := clock.NewVirtual(base)
	inst := run(rcdc.Validator{
		Workers: 1, Clock: vc,
		Metrics: rcdc.NewMetrics(reg),
		Tracer:  obs.NewTracer(vc, 16),
	})
	if !bytes.Equal(plain, inst) {
		t.Fatalf("virtual-clock reports differ:\nplain: %s\ninstrumented: %s", plain, inst)
	}
}
