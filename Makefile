GO ?= go

.PHONY: all build vet lint conflint test test-short test-race bench bench-solver bench-smoke solver-smoke metrics-smoke explore-smoke conflint-smoke serve-smoke pec-smoke fuzz experiments experiments-full clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet, the in-tree dclint suite (wallclock,
# sleepsite, mapiter, rngseed, panicsite — see DESIGN.md "Determinism
# invariants"), and the configuration linter's all-green baseline.
lint: vet conflint
	$(GO) run ./cmd/dclint ./...

# Configuration static analysis (internal/conflint): render the default
# fleet from the topology and require a findings-free lint.
conflint:
	$(GO) run ./cmd/dcconflint -selfcheck

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent paths (pull/validate workers,
# store, queue, analytics); -short skips the slow CLI end-to-end runs.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Solver-stack microbenchmarks: policy encode+solve with/without the
# pre-blast rewrite pass (internal/bv) and the incremental-assumption
# session pattern (internal/sat).
bench-solver:
	$(GO) test -run xxx -bench 'BenchmarkBlast' -benchmem ./internal/bv/
	$(GO) test -run xxx -bench 'BenchmarkIncrementalAssumptions' -benchmem ./internal/sat/

# CI gate for incremental validation: runs the E16 experiment at its
# smallest sweep point (520 devices) with the soundness gate on — any
# device whose table changes outside the computed blast radius, or any
# delta report diverging from a full sweep, panics and fails the target.
# The -benchmem leg locks the zero-allocation steady state: a warmed
# sequential ValidateAll must report 0 allocs/op on both the trie and the
# PEC engine (the companion test asserts the same via AllocsPerRun).
bench-smoke:
	$(GO) run ./cmd/dcbench -e e16 -quick
	$(GO) test -run TestValidateAllSteadyStateZeroAlloc -count=1 .
	$(GO) test -run xxx -bench BenchmarkValidateAllSteadyState -benchmem -benchtime 100x .

# CI gate for solver performance: one short E4 point; panics when
# smt/contract exceeds a generous ceiling or the SMT verdicts (sequential
# or parallel) disagree with the trie engine.
solver-smoke:
	$(GO) run ./cmd/dcbench -e e4s -quick

# CI gate for the failure-space explorer: the E17 experiment at its quick
# width, with all three panic gates armed — the symmetry-pruned k=1 sweep
# must report the exact violating scenario set of the brute-force sweep,
# the k=2 pruning ratio must clear its 2x floor, and every minimal
# failure set must still violate its contract on replay.
explore-smoke:
	$(GO) run ./cmd/dcbench -e e17 -quick

# CI gate for the configuration multichecker: the E18 experiment at its
# quick sweep point, panic gates armed — zero findings on the clean
# fleet, 100% detection of every seeded misconfiguration class, a
# byte-identical report across two runs, and acl-shadow's SMT verdicts
# agreeing with the exact interval engine.
conflint-smoke:
	$(GO) run ./cmd/dcbench -e e18 -quick

# CI gate for the serving plane: boot dcvalidated on a small sharded
# topology, issue conformance + reachability queries over HTTP, require
# repeat queries to land as dcv_serve_cache_hits_total increments with
# zero extra sweeps, then run E19 at its quick point with the
# byte-identity gate armed (sharded merged report vs single-engine sweep
# for N in {1,2,5}). See scripts/serve_smoke.sh.
serve-smoke:
	./scripts/serve_smoke.sh

# CI gate for the packet-equivalence-class engine: the E20 experiment at
# its quick point, panic gates armed — the PEC report must render
# byte-identically to the trie engine's (cold and warm), agree with the
# SMT engine on a per-role device sample, and clear the warm-speedup
# floor.
pec-smoke:
	$(GO) run ./cmd/dcbench -e e20 -quick

# CI gate for the observability layer: run a short fault-free dcmon with
# -metrics-addr, curl /metrics, and fail on missing series, non-finite
# values, or a dead pprof endpoint (see scripts/metrics_smoke.sh).
metrics-smoke:
	./scripts/metrics_smoke.sh

# Brief fuzz sessions over every parser (extend -fuzztime for real runs).
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz FuzzParseIOS -fuzztime $(FUZZTIME) ./internal/acl/
	$(GO) test -fuzz FuzzParseNSG -fuzztime $(FUZZTIME) ./internal/acl/
	$(GO) test -fuzz FuzzParseSMTLIB2 -fuzztime $(FUZZTIME) ./internal/bv/
	$(GO) test -fuzz FuzzParseDIMACS -fuzztime $(FUZZTIME) ./internal/sat/
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/devconf/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/devconf/
	$(GO) test -fuzz FuzzPECDifferential -fuzztime $(FUZZTIME) ./internal/pec/
	$(GO) test -fuzz FuzzArenaDifferential -fuzztime $(FUZZTIME) ./internal/pec/

# Regenerate every paper experiment (see DESIGN.md / EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dcbench

experiments-full:
	$(GO) run ./cmd/dcbench -full

clean:
	$(GO) clean ./...
