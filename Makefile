GO ?= go

.PHONY: all build vet test test-short test-race bench fuzz experiments experiments-full clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrent paths (pull/validate workers,
# store, queue, analytics); -short skips the slow CLI end-to-end runs.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Brief fuzz sessions over every parser (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz FuzzParseIOS -fuzztime 15s ./internal/acl/
	$(GO) test -fuzz FuzzParseNSG -fuzztime 15s ./internal/acl/
	$(GO) test -fuzz FuzzParseSMTLIB2 -fuzztime 15s ./internal/bv/
	$(GO) test -fuzz FuzzParseDIMACS -fuzztime 15s ./internal/sat/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/devconf/

# Regenerate every paper experiment (see DESIGN.md / EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dcbench

experiments-full:
	$(GO) run ./cmd/dcbench -full

clean:
	$(GO) clean ./...
