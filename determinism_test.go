package dcvalidate

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/secguru"
)

// TestReportDeterminism locks the invariant DESIGN.md's "Determinism
// invariants" section promises: validation output is a pure function of
// the inputs. It performs two complete, independent runs of the
// report-producing paths — BGP simulation into FIBs, parallel RCDC
// validation, and a SecGuru policy check — over the same degraded
// datacenter and asserts the rendered reports are byte-identical. Map
// iteration order leaking into any of these (the class of bug the
// mapiter analyzer flags, e.g. the RIB-In delivery order in the BGP
// simulator) shows up here as a flaky diff.
func TestReportDeterminism(t *testing.T) {
	first := renderFullRun(t)
	second := renderFullRun(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("reports differ between identical runs:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffWindow(first, second), firstDiffWindow(second, first))
	}
}

// renderFullRun builds a Figure 3 datacenter with a failed link and a
// forgotten-shut session, simulates BGP, validates every device in
// parallel, checks a policy, and renders everything into one buffer.
// Timing is read from a virtual clock so Elapsed fields are fixed.
func renderFullRun(t *testing.T) []byte {
	t.Helper()
	dc, err := NewDatacenter(Figure3Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.FailLink("fig3-c0-t0-0", "fig3-c0-t1-2"); err != nil {
		t.Fatal(err)
	}
	if err := dc.ShutSession("fig3-c0-t0-0", "fig3-c0-t1-3"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer

	// FIBs out of the path-vector simulation (RIB-In order sensitive).
	for _, name := range []string{"fig3-c0-t0-0", "fig3-c0-t1-0", "fig3-c1-t0-0"} {
		dev, ok := dc.Topo.ByName(name)
		if !ok {
			t.Fatalf("unknown device %q", name)
		}
		tbl, err := dc.SimulateBGP().Table(dev.ID)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "== fib %s ==\n", name)
		if err := tbl.WriteText(&buf, dc.Topo); err != nil {
			t.Fatal(err)
		}
	}

	// Parallel local validation with a virtual clock.
	vclk := clock.NewVirtual(time.Date(2019, 8, 19, 0, 0, 0, 0, time.UTC))
	v := rcdc.Validator{Workers: 4, Clock: vclk}
	rep, err := v.ValidateAll(dc.Facts(), dc.SimulateBGP())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "== validation: %d checked, %d failures, %d high-risk ==\n",
		rep.Checked, rep.Failures, rep.HighRisk())
	for i := range rep.Devices {
		d := &rep.Devices[i]
		fmt.Fprintf(&buf, "device %d: %d contracts\n", d.Device, d.Contracts)
		for _, viol := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", viol.String())
		}
	}

	// SecGuru policy check with a virtual clock.
	policy, err := ParseIOSACL("edge", strings.NewReader(detACL))
	if err != nil {
		t.Fatal(err)
	}
	cs := []secguru.Contract{
		{Name: "private-unreachable", Expected: acl.Deny,
			Filter: secguru.Filter{Protocol: acl.AnyProto,
				Src:      ipnet.MustParsePrefix("10.0.0.0/8"),
				SrcPorts: acl.AnyPort, DstPorts: acl.AnyPort}},
		{Name: "web-open", Expected: acl.Permit,
			Filter: secguru.Filter{Protocol: acl.Proto(acl.ProtoTCP),
				Src:      ipnet.MustParsePrefix("8.0.0.0/8"),
				Dst:      ipnet.MustParsePrefix("104.208.33.0/24"),
				SrcPorts: acl.AnyPort, DstPorts: acl.Port(443)}},
		{Name: "ssh-closed", Expected: acl.Deny,
			Filter: secguru.Filter{Protocol: acl.Proto(acl.ProtoTCP),
				SrcPorts: acl.AnyPort, DstPorts: acl.Port(22)}},
	}
	srep, err := secguru.CheckOn(vclk, policy, cs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "== policy %s: elapsed %s ==\n", srep.Policy, srep.Elapsed)
	for _, o := range srep.Outcomes {
		fmt.Fprintf(&buf, "contract %s preserved=%v rule=%d %s\n",
			o.Contract.Name, o.Preserved, o.RuleIndex, o.RuleName)
		if !o.Preserved {
			fmt.Fprintf(&buf, "  witness %v\n", o.Witness)
		}
	}
	return buf.Bytes()
}

const detACL = `
remark isolate private space
deny ip 10.0.0.0/8 any
deny ip 192.168.0.0/16 any
remark web front ends
permit tcp any 104.208.33.0/24 eq 443
permit tcp any 104.208.33.0/24 eq 80
deny ip any any
`

// firstDiffWindow returns a short window of a around its first
// divergence from b, so failures show the unstable region rather than
// two full reports.
func firstDiffWindow(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
