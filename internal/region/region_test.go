package region

import (
	"testing"

	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func twoDCParams() []topology.Params {
	a := topology.Figure3Params()
	a.Name = "dc0"
	a.RegionIndex = 0
	b := topology.Figure3Params()
	b.Name = "dc1"
	b.RegionIndex = 1
	return []topology.Params{a, b}
}

func converged(t *testing.T, strip bool) *Region {
	t.Helper()
	r, err := New(twoDCParams())
	if err != nil {
		t.Fatal(err)
	}
	r.DisableStripping = !strip
	if err := r.Converge(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegionDistinctIdentity(t *testing.T) {
	r, err := New(twoDCParams())
	if err != nil {
		t.Fatal(err)
	}
	dc0, dc1 := r.DCs[0].Topo, r.DCs[1].Topo
	// RS ASNs differ; spine/leaf/ToR ASNs deliberately collide.
	if dc0.Device(dc0.RegionalSpines()[0]).ASN == dc1.Device(dc1.RegionalSpines()[0]).ASN {
		t.Error("RS ASNs collide across datacenters")
	}
	if dc0.Device(dc0.Spines()[0]).ASN != dc1.Device(dc1.Spines()[0]).ASN {
		t.Error("spine ASNs should be reused across datacenters (the §2.1 collision)")
	}
	// Prefix blocks are disjoint.
	p0 := map[string]bool{}
	for _, hp := range dc0.HostedPrefixes() {
		p0[hp.Prefix.String()] = true
	}
	for _, hp := range dc1.HostedPrefixes() {
		if p0[hp.Prefix.String()] {
			t.Fatalf("prefix %v hosted in both datacenters", hp.Prefix)
		}
	}
}

func TestRegionInterDCRoutesWithStripping(t *testing.T) {
	r := converged(t, true)
	dc0, dc1 := r.DCs[0].Topo, r.DCs[1].Topo
	remote := dc0.HostedPrefixes()[0].Prefix

	// DC1's spines, leaves, and ToRs all carry the DC0 prefix.
	for _, dev := range []topology.DeviceID{
		dc1.Spines()[0], dc1.ClusterLeaves(0)[0], dc1.ToRs()[0],
	} {
		tbl, err := r.Table(1, dev)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := tbl.Get(remote)
		if !ok {
			t.Fatalf("%s lacks remote prefix %v", dc1.Device(dev).Name, remote)
		}
		if len(e.NextHops) == 0 {
			t.Fatalf("%s remote route has no next hops", dc1.Device(dev).Name)
		}
	}
	// The ToR's remote route uses all its leaves (full ECMP down the line).
	tbl, _ := r.Table(1, dc1.ToRs()[0])
	e, _ := tbl.Get(remote)
	if len(e.NextHops) != dc1.Params.LeavesPerCluster {
		t.Errorf("remote route fan-out = %d, want %d", len(e.NextHops), dc1.Params.LeavesPerCluster)
	}
}

// TestRegionStrippingNecessary is the design-rule ablation: without
// private-ASN stripping, the reused spine/leaf/ToR ASNs make remote
// datacenters' loop prevention reject every inter-DC route.
func TestRegionStrippingNecessary(t *testing.T) {
	r := converged(t, false)
	dc0, dc1 := r.DCs[0].Topo, r.DCs[1].Topo
	remote := dc0.HostedPrefixes()[0].Prefix

	// The RS relays the unstripped path; the spine (whose ASN appears in
	// it) must reject, so no device below carries the route.
	for _, dev := range []topology.DeviceID{
		dc1.Spines()[0], dc1.ClusterLeaves(0)[0], dc1.ToRs()[0],
	} {
		tbl, err := r.Table(1, dev)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tbl.Get(remote); ok {
			t.Fatalf("%s carries remote prefix despite unstripped private ASNs",
				dc1.Device(dev).Name)
		}
	}
}

// TestRegionLocalValidationUnaffected: the injected regional routes must
// not disturb intra-DC contract validation — remote prefixes fall outside
// every local contract range.
func TestRegionLocalValidationUnaffected(t *testing.T) {
	r := converged(t, true)
	for i, dc := range r.DCs {
		facts := metadata.FromTopology(dc.Topo)
		v := rcdc.Validator{Workers: 2}
		rep, err := v.ValidateAll(facts, r.Source(i))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failures != 0 {
			t.Errorf("dc%d: %d violations with regional routes injected: %v",
				i, rep.Failures, rep.Violations())
		}
	}
}

// TestRegionOriginFailureWithdraws: if the origin datacenter loses a
// prefix at its RS tier entirely, the prefix disappears regionally.
func TestRegionOriginFailureWithdraws(t *testing.T) {
	r, err := New(twoDCParams())
	if err != nil {
		t.Fatal(err)
	}
	dc0 := r.DCs[0].Topo
	hp := dc0.HostedPrefixes()[0]
	// Cut the hosting ToR from all leaves: the prefix vanishes everywhere.
	for _, leaf := range dc0.ClusterLeaves(hp.Cluster) {
		dc0.FailLink(hp.ToR, leaf)
	}
	if err := r.Converge(); err != nil {
		t.Fatal(err)
	}
	tbl, err := r.Table(1, r.DCs[1].Topo.ToRs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(hp.Prefix); ok {
		t.Error("withdrawn prefix still visible in the remote datacenter")
	}
	// Other DC0 prefixes remain visible.
	other := dc0.HostedPrefixes()[1]
	if _, ok := tbl.Get(other.Prefix); !ok {
		t.Error("unrelated prefix lost")
	}
}

func TestRegionValidation(t *testing.T) {
	if _, err := New(twoDCParams()[:1]); err == nil {
		t.Error("single-DC region accepted")
	}
	dup := twoDCParams()
	dup[1].RegionIndex = 0
	if _, err := New(dup); err == nil {
		t.Error("duplicate RegionIndex accepted")
	}
	r, _ := New(twoDCParams())
	if _, err := r.Table(0, 0); err == nil {
		t.Error("Table before Converge accepted")
	}
}
