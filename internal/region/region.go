// Package region models multiple datacenters sharing a regional spine
// network — the setting that motivates two details of the §2.1 design:
// regional spine devices strip private ASNs from the AS_PATH when relaying
// routes between datacenters (otherwise the deliberately reused spine,
// leaf, and ToR ASNs would cause loop-prevention to drop every inter-DC
// route), and datacenters receive each other's prefixes only through the
// regional tier.
//
// The regional network itself is abstracted as a full exchange among the
// datacenters' regional spines: after each datacenter converges
// internally, every prefix reachable at an origin datacenter's RS tier is
// delivered to the other datacenters' regional spines — stripped to the
// origin RS ASN, or verbatim when stripping is disabled for the ablation —
// and the datacenters re-converge with the regional routes injected.
package region

import (
	"fmt"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// DC is one member datacenter.
type DC struct {
	Topo *topology.Topology
	Cfg  map[topology.DeviceID]*bgp.DeviceConfig
	Sim  *bgp.Sim
}

// Region is a set of datacenters on one regional network.
type Region struct {
	DCs []*DC
	// DisableStripping is the ablation: relay inter-DC routes with their
	// private AS paths intact, reproducing the ASN-collision failure the
	// paper's design rule prevents.
	DisableStripping bool

	converged bool
}

// New builds a region from per-datacenter parameters. Each parameter set
// must carry a distinct RegionIndex (which separates RS ASNs and prefix
// blocks).
func New(params []topology.Params) (*Region, error) {
	if len(params) < 2 {
		return nil, fmt.Errorf("region: need at least 2 datacenters")
	}
	seen := map[int]bool{}
	r := &Region{}
	for _, p := range params {
		if seen[p.RegionIndex] {
			return nil, fmt.Errorf("region: duplicate RegionIndex %d", p.RegionIndex)
		}
		seen[p.RegionIndex] = true
		topo, err := topology.New(p)
		if err != nil {
			return nil, err
		}
		r.DCs = append(r.DCs, &DC{Topo: topo, Cfg: map[topology.DeviceID]*bgp.DeviceConfig{}})
	}
	return r, nil
}

// Converge runs every datacenter to convergence, exchanges routes across
// the regional network, and re-converges with the injected regional
// routes. Regional reachability of a prefix requires the origin
// datacenter's RS tier to actually hold a route for it (so origin-side
// failures withdraw the prefix regionally).
func (r *Region) Converge() error {
	// Phase 1: internal convergence.
	for _, dc := range r.DCs {
		dc.Sim = bgp.NewSim(dc.Topo, dc.Cfg)
		dc.Sim.Run()
	}

	// Phase 2: regional exchange. For each origin DC, gather the prefixes
	// present at its RS tier along with a representative (unstripped)
	// path.
	type export struct {
		prefix ipnet.Prefix
		path   []uint32 // as relayed into the regional network
	}
	exports := make([][]export, len(r.DCs))
	for i, dc := range r.DCs {
		seen := map[ipnet.Prefix]bool{}
		for _, rs := range dc.Topo.RegionalSpines() {
			rsASN := dc.Topo.Device(rs).ASN
			tbl, err := dc.Sim.Table(rs)
			if err != nil {
				return err
			}
			for _, e := range tbl.Entries {
				if e.Prefix.IsDefault() || e.Connected || seen[e.Prefix] {
					continue
				}
				seen[e.Prefix] = true
				var path []uint32
				if r.DisableStripping {
					full, _ := dc.Sim.PathOf(rs, e.Prefix)
					path = append([]uint32{rsASN}, full...)
				} else {
					// §2.1: private ASNs stripped; only the origin RS ASN
					// remains on the regional path.
					path = []uint32{rsASN}
				}
				exports[i] = append(exports[i], export{e.Prefix, path})
			}
		}
	}

	// Phase 3: inject and re-converge. Every remote datacenter's RS
	// receives every exported route of every other datacenter.
	for j, dc := range r.DCs {
		var routes []bgp.External
		for i := range r.DCs {
			if i == j {
				continue
			}
			for _, e := range exports[i] {
				routes = append(routes, bgp.External{Prefix: e.prefix, Path: e.path})
			}
		}
		dc.Sim = bgp.NewSim(dc.Topo, dc.Cfg)
		for _, rs := range dc.Topo.RegionalSpines() {
			dc.Sim.SetExternal(rs, routes)
		}
		dc.Sim.Run()
	}
	r.converged = true
	return nil
}

// Table returns the FIB of a device in one datacenter.
func (r *Region) Table(dc int, d topology.DeviceID) (*fib.Table, error) {
	if !r.converged {
		return nil, fmt.Errorf("region: Converge first")
	}
	return r.DCs[dc].Sim.Table(d)
}

// Source returns a fib.Source scoped to one member datacenter, suitable
// for running RCDC validation against it.
func (r *Region) Source(dc int) fib.Source { return regionSource{r, dc} }

type regionSource struct {
	r  *Region
	dc int
}

func (s regionSource) Table(d topology.DeviceID) (*fib.Table, error) {
	return s.r.Table(s.dc, d)
}
