// Package delta computes the blast radius of a topology change set: the
// set of devices whose converged FIBs can differ from before the changes,
// i.e. the only devices incremental revalidation needs to revisit.
//
// This is the change-driven half of the paper's locality argument (§2.4,
// Claim 1): because contracts are local and the EBGP design is a strict
// plane-structured hierarchy, a link state change propagates along a small,
// statically characterizable set of paths. The rules below are derived
// from the converged-state model in internal/bgp (Synth) and are
// deliberately conservative — the computed set is a superset of the
// devices whose tables actually change, never a subset. Changes the rules
// cannot bound (device-level config edits, links outside the recognized
// tiers, configs that alter route acceptance) fall back to the whole
// datacenter, which is always safe: incremental validation then degrades
// to the full sweep it replaces.
//
// Per change type, with l = leaf of cluster c on plane j:
//
//   - ToR–leaf link: the hosting cluster's plane-j leaf is the unique
//     injector of the ToR's prefixes into plane j, so the prefixes appear
//     or vanish across the whole plane and every ToR in the datacenter
//     adjusts its ECMP set for them. Dirty: all ToRs, plane-j leaves,
//     plane-j spines, all regional spines.
//
//   - Leaf–spine link (l — s): the endpoints and every plane-j leaf (their
//     via-spine route sets mention s), plus the regional spines adjacent
//     to s. ToRs are only dragged in when the leaf above them may have
//     gained or lost its *last* path for some remote cluster's prefixes or
//     for the default route — checked per cluster against the alternative
//     spines of the plane.
//
//   - Spine–RS link (s — r): the endpoints; if s has no stable live RS
//     link, its default-route origination may flip, dirtying the plane-j
//     leaves, and any such leaf left without a stable default spine drags
//     in its cluster's ToRs.
//
//   - Everything else (ChangeDevice, unrecognized tiers): whole DC.
//
// All alternative-path tests demand *stable* links: live in the current
// state and untouched by the change window. A stable path existed before
// the window too, so the route availability it witnesses provably did not
// flip — which is what licenses leaving a device out of the dirty set.
// A link that changed mid-window (even back to its original state) never
// counts as an alternative.
package delta

import (
	"sort"

	"dcvalidate/internal/topology"
)

// Set is a blast-radius dirty set: either an explicit device set or the
// conservative whole-datacenter fallback.
type Set struct {
	full bool
	devs map[topology.DeviceID]struct{}
}

// NewSet returns an empty dirty set.
func NewSet() *Set { return &Set{devs: make(map[topology.DeviceID]struct{})} }

// Full reports whether the set degenerated to the whole datacenter.
func (s *Set) Full() bool { return s.full }

// MarkFull degrades the set to the whole-datacenter fallback.
func (s *Set) MarkFull() { s.full = true }

// Add inserts one device.
func (s *Set) Add(d topology.DeviceID) {
	if !s.full {
		s.devs[d] = struct{}{}
	}
}

// AddAll inserts a slice of devices.
func (s *Set) AddAll(ds []topology.DeviceID) {
	for _, d := range ds {
		s.Add(d)
	}
}

// Contains reports whether the device is dirty. A full set contains
// every device.
func (s *Set) Contains(d topology.DeviceID) bool {
	if s.full {
		return true
	}
	_, ok := s.devs[d]
	return ok
}

// Count returns the number of explicitly dirty devices (0 for a full set;
// use Full to distinguish).
func (s *Set) Count() int {
	if s.full {
		return 0
	}
	return len(s.devs)
}

// Devices returns the dirty devices in ascending ID order, or nil for a
// full set.
func (s *Set) Devices() []topology.DeviceID {
	if s.full {
		return nil
	}
	out := make([]topology.DeviceID, 0, len(s.devs))
	for d := range s.devs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Options tunes the blast-radius computation.
type Options struct {
	// UnboundedConfig marks the presence of device configuration that
	// alters route acceptance or session liveness (ASN overrides,
	// default-route rejection, platform-disabled sessions — see
	// bgp.ConfigUnbounded). The structural rules assume topology-level
	// liveness equals routing-level liveness; such configs break that
	// assumption, so any link change degrades to the whole-DC fallback.
	// ECMP truncation (MaxECMPPaths) is safe and does not set this: a
	// truncated set only changes when the untruncated set does.
	UnboundedConfig bool

	// Metrics, when non-nil, records the size of every computed blast
	// radius (or a fallback counter tick when it degrades to full).
	Metrics *Metrics
}

// scope carries the per-window state the blast rules consult: the
// topology and the set of links touched anywhere in the change window.
type scope struct {
	t       *topology.Topology
	changed map[topology.LinkID]bool
}

// Compute returns the blast radius of a journaled change sequence against
// the topology's *current* (post-change) state. The result is a superset
// of the devices whose converged tables differ from before the sequence.
func Compute(t *topology.Topology, changes []topology.Change, opts Options) *Set {
	s := NewSet()
	defer func() { opts.Metrics.observeSet(s) }()
	sc := scope{t: t, changed: make(map[topology.LinkID]bool, len(changes))}
	for _, c := range changes {
		if c.Kind == topology.ChangeDevice || opts.UnboundedConfig {
			s.MarkFull()
			return s
		}
		sc.changed[c.Link] = true
	}
	for _, c := range changes {
		if s.full {
			break
		}
		sc.blastLink(t.Link(c.Link), s)
	}
	return s
}

// blastLink adds the dirty set of one link state change.
func (sc scope) blastLink(l *topology.Link, s *Set) {
	t := sc.t
	a, b := t.Device(l.A), t.Device(l.B)
	if a.Role > b.Role {
		a, b = b, a
	}
	switch {
	case a.Role == topology.RoleToR && b.Role == topology.RoleLeaf:
		sc.blastToRLeaf(b, s)
	case a.Role == topology.RoleLeaf && b.Role == topology.RoleSpine:
		sc.blastLeafSpine(a, b, s)
	case a.Role == topology.RoleSpine && b.Role == topology.RoleRegionalSpine:
		sc.blastSpineRS(a, b, s)
	default:
		// No such link tier exists in generated Clos topologies; keep the
		// fallback anyway so hand-built topologies stay safe.
		s.MarkFull()
	}
}

// blastToRLeaf handles a ToR–leaf link change: the ToR's prefixes are
// (un)injected into the leaf's whole plane, so every ToR in the DC and the
// regional spines adjust their ECMP sets for them.
func (sc scope) blastToRLeaf(leaf *topology.Device, s *Set) {
	t := sc.t
	s.AddAll(t.ToRs())
	s.AddAll(planeLeaves(t, leaf.Plane))
	s.AddAll(planeSpines(t, leaf.Plane))
	s.AddAll(t.RegionalSpines())
}

// blastLeafSpine handles a leaf–spine link change between leaf l (cluster
// c, plane j) and spine sp.
func (sc scope) blastLeafSpine(l, sp *topology.Device, s *Set) {
	t := sc.t
	s.Add(l.ID)
	s.Add(sp.ID)
	s.AddAll(planeLeaves(t, l.Plane))
	for _, r := range neighborsOfRole(t, sp.ID, topology.RoleRegionalSpine) {
		s.Add(r)
	}
	// l's own cluster's ToRs see l in their ECMP sets for every remote
	// prefix and the default route; they are dirty only if l's route
	// *availability* can have flipped, i.e. no stable path witnesses the
	// route independently of the changed links.
	if !sc.leafKeepsAllRoutes(l) {
		s.AddAll(t.ClusterToRs(l.Cluster))
	}
	// Another cluster c2's ToRs see their own plane-j leaf in the ECMP set
	// for cluster c's prefixes; that availability flips only if no stable
	// plane path from that leaf into l remains.
	for c2 := 0; c2 < t.Params.Clusters; c2++ {
		if c2 == l.Cluster {
			continue
		}
		l2 := t.ClusterLeaves(c2)[l.Plane]
		if !sc.hasStableSpinePath(l2, l.ID) {
			s.AddAll(t.ClusterToRs(c2))
		}
	}
}

// blastSpineRS handles a spine–RS link change between spine sp (plane j)
// and regional spine r.
func (sc scope) blastSpineRS(sp, r *topology.Device, s *Set) {
	t := sc.t
	s.Add(sp.ID)
	s.Add(r.ID)
	if sc.spineHasStableRS(sp.ID) {
		return
	}
	// sp's default-route origination may flip: every plane-j leaf's
	// default ECMP set can change, and any leaf left without a stable
	// default-carrying spine flips its own default, dirtying its ToRs.
	leaves := planeLeaves(t, sp.Plane)
	s.AddAll(leaves)
	for _, lf := range leaves {
		if !sc.leafHasStableDefault(t.Device(lf)) {
			s.AddAll(t.ClusterToRs(t.Device(lf).Cluster))
		}
	}
}

// leafKeepsAllRoutes reports whether leaf l retains, over stable links
// only, a live plane path to every other cluster and a default route —
// i.e. whether l's route availability is provably unchanged by the window.
func (sc scope) leafKeepsAllRoutes(l *topology.Device) bool {
	t := sc.t
	for c2 := 0; c2 < t.Params.Clusters; c2++ {
		if c2 == l.Cluster {
			continue
		}
		l2 := t.ClusterLeaves(c2)[l.Plane]
		if !sc.hasStableSpinePath(l.ID, l2) {
			return false
		}
	}
	return sc.leafHasStableDefault(l)
}

// hasStableSpinePath reports whether leaf from reaches leaf to over some
// plane spine with both hops stable.
func (sc scope) hasStableSpinePath(from, to topology.DeviceID) bool {
	for _, k := range planeSpines(sc.t, sc.t.Device(from).Plane) {
		if sc.stable(from, k) && sc.stable(k, to) {
			return true
		}
	}
	return false
}

// leafHasStableDefault reports whether leaf l has a stable link to a plane
// spine that itself has a stable RS link (and hence a stable default).
func (sc scope) leafHasStableDefault(l *topology.Device) bool {
	for _, k := range planeSpines(sc.t, l.Plane) {
		if sc.stable(l.ID, k) && sc.spineHasStableRS(k) {
			return true
		}
	}
	return false
}

// spineHasStableRS reports whether spine sp has a stable live RS link.
func (sc scope) spineHasStableRS(sp topology.DeviceID) bool {
	for _, r := range neighborsOfRole(sc.t, sp, topology.RoleRegionalSpine) {
		if sc.stable(sp, r) {
			return true
		}
	}
	return false
}

// stable reports whether the a—b link exists, is live now, and was not
// touched anywhere in the change window — so it was live throughout.
func (sc scope) stable(a, b topology.DeviceID) bool {
	l, ok := sc.t.LinkBetween(a, b)
	return ok && l.Live() && !sc.changed[l.ID]
}

func planeLeaves(t *topology.Topology, plane int) []topology.DeviceID {
	out := make([]topology.DeviceID, 0, t.Params.Clusters)
	for c := 0; c < t.Params.Clusters; c++ {
		out = append(out, t.ClusterLeaves(c)[plane])
	}
	return out
}

func planeSpines(t *topology.Topology, plane int) []topology.DeviceID {
	spp := t.Params.SpinesPerPlane
	return t.Spines()[plane*spp : (plane+1)*spp]
}

func neighborsOfRole(t *topology.Topology, d topology.DeviceID, role topology.Role) []topology.DeviceID {
	var out []topology.DeviceID
	for _, lid := range t.LinksOf(d) {
		p, _ := t.Link(lid).Peer(d)
		if t.Device(p).Role == role {
			out = append(out, p)
		}
	}
	return out
}
