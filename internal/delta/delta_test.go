package delta_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/topology"
)

// multiSpine is a topology with SpinesPerPlane > 1, so single leaf–spine
// failures leave alternative plane paths and the blast radius can exclude
// ToRs.
func multiSpine(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.MustNew(topology.Params{
		Clusters: 3, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
		PrefixesPerToR: 1,
	})
}

func changesAfter(t *testing.T, topo *topology.Topology, gen uint64) []topology.Change {
	t.Helper()
	cs, ok := topo.ChangesSince(gen)
	if !ok {
		t.Fatal("journal truncated unexpectedly")
	}
	return cs
}

func TestLeafSpineBlastExcludesToRsWithAlternatives(t *testing.T) {
	topo := multiSpine(t)
	leaf := topo.ClusterLeaves(0)[0]
	gen := topo.Generation()
	// Fail the link to one of the leaf's two plane spines.
	var spine topology.DeviceID = -1
	for _, n := range topo.Neighbors(leaf) {
		if topo.Device(n).Role == topology.RoleSpine {
			spine = n
			break
		}
	}
	if !topo.FailLink(leaf, spine) {
		t.Fatal("FailLink failed")
	}
	ds := delta.Compute(topo, changesAfter(t, topo, gen), delta.Options{})
	if ds.Full() {
		t.Fatal("single leaf-spine failure should not degrade to full")
	}
	if !ds.Contains(leaf) || !ds.Contains(spine) {
		t.Fatal("endpoints must be dirty")
	}
	// The second plane spine still carries every route: no ToR is dirty.
	for _, tor := range topo.ToRs() {
		if ds.Contains(tor) {
			t.Fatalf("ToR %s dirty despite alternative spine", topo.Device(tor).Name)
		}
	}
	// All plane leaves are dirty (their via-spine ECMP sets mention the spine).
	for c := 0; c < topo.Params.Clusters; c++ {
		if l2 := topo.ClusterLeaves(c)[topo.Device(leaf).Plane]; !ds.Contains(l2) {
			t.Fatalf("plane leaf %s not dirty", topo.Device(l2).Name)
		}
	}
}

func TestSpineRSBlastIsTinyWithAlternatives(t *testing.T) {
	topo := multiSpine(t)
	spine := topo.Spines()[0]
	var rs topology.DeviceID = -1
	for _, n := range topo.Neighbors(spine) {
		if topo.Device(n).Role == topology.RoleRegionalSpine {
			rs = n
			break
		}
	}
	gen := topo.Generation()
	if !topo.FailLink(spine, rs) {
		t.Fatal("FailLink failed")
	}
	ds := delta.Compute(topo, changesAfter(t, topo, gen), delta.Options{})
	if ds.Full() || ds.Count() != 2 || !ds.Contains(spine) || !ds.Contains(rs) {
		t.Fatalf("spine-RS blast = %v (full=%v), want exactly the endpoints",
			ds.Devices(), ds.Full())
	}
}

func TestToRLeafBlastCoversPlane(t *testing.T) {
	topo := multiSpine(t)
	tor := topo.ToRs()[0]
	leaf := topo.ClusterLeaves(0)[0]
	gen := topo.Generation()
	if !topo.FailLink(tor, leaf) {
		t.Fatal("FailLink failed")
	}
	ds := delta.Compute(topo, changesAfter(t, topo, gen), delta.Options{})
	for _, d := range topo.ToRs() {
		if !ds.Contains(d) {
			t.Fatalf("ToR %s not dirty after ToR-leaf failure", topo.Device(d).Name)
		}
	}
	for _, d := range topo.RegionalSpines() {
		if !ds.Contains(d) {
			t.Fatalf("RS %s not dirty after ToR-leaf failure", topo.Device(d).Name)
		}
	}
}

func TestDeviceChangeAndUnboundedConfigFallBack(t *testing.T) {
	topo := multiSpine(t)
	gen := topo.Generation()
	topo.NoteDeviceChanged(topo.ToRs()[0])
	if ds := delta.Compute(topo, changesAfter(t, topo, gen), delta.Options{}); !ds.Full() {
		t.Fatal("ChangeDevice must degrade to full")
	}

	gen = topo.Generation()
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	opts := delta.Options{UnboundedConfig: true}
	if ds := delta.Compute(topo, changesAfter(t, topo, gen), opts); !ds.Full() {
		t.Fatal("UnboundedConfig with link changes must degrade to full")
	}
}

func TestEmptyWindowIsEmpty(t *testing.T) {
	topo := multiSpine(t)
	ds := delta.Compute(topo, nil, delta.Options{})
	if ds.Full() || ds.Count() != 0 {
		t.Fatalf("empty change window must be empty, got %v full=%v", ds.Devices(), ds.Full())
	}
}

// renderTables snapshots every device's converged table as a comparable
// string.
func renderTables(t *testing.T, topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig) map[topology.DeviceID]string {
	t.Helper()
	s := bgp.NewSynth(topo, cfg)
	out := make(map[topology.DeviceID]string, len(topo.Devices))
	for id := range topo.Devices {
		d := topology.DeviceID(id)
		tbl, err := s.Table(d)
		if err != nil {
			t.Fatal(err)
		}
		c := tbl.Clone()
		c.Sort()
		out[d] = fmt.Sprint(c.Entries)
	}
	return out
}

// TestBlastRadiusIsSuperset is the soundness property: after any random
// sequence of link/session flips — applied to arbitrary (possibly already
// degraded) starting states — every device whose converged table changed
// is inside the computed blast radius.
func TestBlastRadiusIsSuperset(t *testing.T) {
	paramSets := []topology.Params{
		topology.Figure3Params(), // SpinesPerPlane == 1: no alternatives
		{Clusters: 3, ToRsPerCluster: 2, LeavesPerCluster: 2,
			SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2, PrefixesPerToR: 1},
		{Clusters: 4, ToRsPerCluster: 2, LeavesPerCluster: 3,
			SpinesPerPlane: 3, RegionalSpines: 6, RSLinksPerSpine: 2, PrefixesPerToR: 1},
	}
	for pi, p := range paramSets {
		p := p
		t.Run(fmt.Sprintf("params%d", pi), func(t *testing.T) {
			topo := topology.MustNew(p)
			// A safe config knob on a few devices: ECMP truncation must not
			// break the bound (it only changes when the full set does).
			cfg := map[topology.DeviceID]*bgp.DeviceConfig{
				topo.ToRs()[0]:   {MaxECMPPaths: 1},
				topo.Leaves()[1]: {MaxECMPPaths: 2},
			}
			rng := rand.New(rand.NewSource(int64(42 + pi)))
			for trial := 0; trial < 60; trial++ {
				before := renderTables(t, topo, cfg)
				gen := topo.Generation()
				nflips := 1 + rng.Intn(4)
				for i := 0; i < nflips; i++ {
					lid := topology.LinkID(rng.Intn(len(topo.Links)))
					if rng.Intn(2) == 0 {
						topo.SetLinkUp(lid, rng.Intn(2) == 0)
					} else {
						topo.SetSessionUp(lid, rng.Intn(2) == 0)
					}
				}
				ds := delta.Compute(topo, changesAfter(t, topo, gen), delta.Options{})
				if ds.Full() {
					continue // trivially sound
				}
				after := renderTables(t, topo, cfg)
				for id := range topo.Devices {
					d := topology.DeviceID(id)
					if before[d] != after[d] && !ds.Contains(d) {
						cs, _ := topo.ChangesSince(gen)
						t.Fatalf("trial %d: device %s table changed outside blast radius\nchanges: %+v\nblast: %v\nbefore: %s\nafter: %s",
							trial, topo.Device(d).Name, cs, ds.Devices(), before[d], after[d])
					}
				}
			}
		})
	}
}
