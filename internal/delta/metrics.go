package delta

import "dcvalidate/internal/obs"

// Metrics is the blast-radius instrumentation bundle. Compute records
// one observation per call: the dirty-device count for bounded results,
// or a full-fallback counter tick when a rule degrades to the whole-DC
// set. Nil-receiver safe.
type Metrics struct {
	dirty *obs.Histogram // dcv_delta_blast_radius_devices
	full  *obs.Counter   // dcv_delta_full_fallbacks_total
}

// NewMetrics registers the delta metric families in r. Idempotent per
// registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		dirty: r.Histogram("dcv_delta_blast_radius_devices",
			"Dirty devices per bounded blast-radius computation.", obs.SizeBuckets),
		full: r.Counter("dcv_delta_full_fallbacks_total",
			"Blast-radius computations that degraded to the whole-DC set."),
	}
}

func (m *Metrics) observeSet(s *Set) {
	if m == nil {
		return
	}
	if s.full {
		m.full.Inc()
		return
	}
	m.dirty.Observe(float64(len(s.devs)))
}
