package conflint

import "dcvalidate/internal/obs"

// Metrics is the conflint observability bundle. Like every bundle in
// this codebase it is nil-safe: a nil *Metrics records nothing.
type Metrics struct {
	// Runs counts completed lint runs.
	Runs *obs.Counter
	// Findings counts reported (unsuppressed) findings by analyzer.
	Findings *obs.CounterVec
	// Suppressed counts findings waived by conflint:allow comments.
	Suppressed *obs.Counter
	// RunSeconds is the lint wall-time distribution.
	RunSeconds *obs.Histogram
}

// NewMetrics registers the conflint series on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Runs: reg.Counter("dcv_conflint_runs_total",
			"Completed configuration lint runs."),
		Findings: reg.CounterVec("dcv_conflint_findings_total",
			"Configuration lint findings by analyzer.", "analyzer"),
		Suppressed: reg.Counter("dcv_conflint_suppressed_total",
			"Findings waived by conflint:allow suppression comments."),
		RunSeconds: reg.Histogram("dcv_conflint_run_seconds",
			"Wall time of one fleet lint run.", obs.LatencyBuckets),
	}
}

func (m *Metrics) observeAnalyzer(name string, findings int) {
	if m == nil || findings == 0 {
		return
	}
	m.Findings.With(name).Add(uint64(findings))
}

func (m *Metrics) observeRun(rep *Report) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Suppressed.Add(uint64(rep.Suppressed))
	m.RunSeconds.ObserveDuration(rep.Elapsed)
}
