package conflint

import (
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/ipnet"
)

// SessionSymmetry checks that every EBGP session is configured
// coherently on both ends: a neighbor stanza must point at a real
// far-end interface on an adjacent device, the peer must declare the
// session back, remote-as must match the peer's *effective* (configured)
// ASN, and an administrative shutdown must be symmetric — a one-sided
// shutdown is precisely the §2.6.2 "shut one end, forget the other"
// operator error, which converges to a half-dead session that still
// holds up the physical link.
var SessionSymmetry = &Analyzer{
	Name: "session-symmetry",
	Doc: "neighbor stanzas must be symmetric: declared on both ends, " +
		"remote-as matching the peer's configured ASN, shutdown on both " +
		"ends or neither",
	Run: runSessionSymmetry,
}

func runSessionSymmetry(pass *Pass) error {
	topo := pass.Fleet.Topo
	for _, dc := range pass.Fleet.Devices {
		if dc.Spec.NoRouterStanza {
			// No BGP process: nothing declared here. The asymmetry is
			// visible (and reported) from each peer still pointing at us.
			continue
		}
		for i := range dc.Spec.Neighbors {
			nb := &dc.Spec.Neighbors[i]
			peerID, ok := topo.DeviceByAddr(nb.Addr)
			if !ok {
				pass.Reportf(dc, nb.Pos,
					"neighbor %s is not an interface of any device", nb.Addr)
				continue
			}
			link, ok := topo.LinkBetween(dc.ID, peerID)
			if !ok {
				pass.Reportf(dc, nb.Pos,
					"neighbor %s belongs to %s, which has no link to this device",
					nb.Addr, topo.Device(peerID).Name)
				continue
			}
			if nb.RemoteAS == 0 {
				pass.Reportf(dc, nb.Pos,
					"neighbor %s has no remote-as", nb.Addr)
			}
			peer := pass.Fleet.ByID(peerID)
			if peer == nil {
				// Lint invoked on a partial fleet: one-ended checks only.
				continue
			}
			if peer.Spec.NoRouterStanza {
				pass.Reportf(dc, nb.Pos,
					"neighbor %s declared, but %s has no BGP process",
					nb.Addr, peer.Name)
				continue
			}
			if nb.RemoteAS != 0 && nb.RemoteAS != peer.Spec.ASN {
				pass.Reportf(dc, nb.RemoteASPos,
					"neighbor %s remote-as %d, but %s is configured with ASN %d",
					nb.Addr, nb.RemoteAS, peer.Name, peer.Spec.ASN)
			}
			peerNb := findNeighbor(peer.Spec, topo.AddrOf(dc.ID, link))
			if peerNb == nil {
				pass.Reportf(dc, nb.Pos,
					"neighbor %s declared here, but %s has no matching stanza back",
					nb.Addr, peer.Name)
				continue
			}
			if nb.Shutdown && !peerNb.Shutdown {
				pass.Reportf(dc, nb.ShutdownPos,
					"neighbor %s shut down here but not on %s",
					nb.Addr, peer.Name)
			}
		}
	}
	return nil
}

// findNeighbor returns the spec's stanza for the given far-end address,
// or nil when the session is not declared.
func findNeighbor(spec *devconf.Spec, addr ipnet.Addr) *devconf.Neighbor {
	for i := range spec.Neighbors {
		if spec.Neighbors[i].Addr == addr {
			return &spec.Neighbors[i]
		}
	}
	return nil
}
