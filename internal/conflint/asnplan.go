package conflint

// ASNPlan checks each device's configured ASN against the Clos tier
// allocation plan the topology was generated with (§2.1: regional
// spines 4200000000+region, spines 4200000100, leaves 4200001000+cluster,
// ToRs 4210000000+index reused across clusters). A device whose ASN
// deviates from the plan breaks the fabric's loop-prevention assumptions
// — the simulator models this as ASNOverride (Misconfiguration 1), where
// path-hunting after a failure forwards traffic through an unintended
// tier. The analyzer also enforces the E15 region-boundary convention:
// fabric ASNs must be private (RFC 6996), because the regional spine
// strips private ASNs when announcing across the inter-region boundary;
// a public ASN here would leak the fabric's internal path into other
// regions.
var ASNPlan = &Analyzer{
	Name: "asn-plan",
	Doc: "device ASNs must follow the Clos tier allocation plan and stay " +
		"inside the RFC 6996 private ranges stripped at region boundaries",
	Run: runASNPlan,
}

// RFC 6996 private ASN ranges.
const (
	private2ByteLo = 64512
	private2ByteHi = 65534
	private4ByteLo = 4200000000
	private4ByteHi = 4294967294
)

func isPrivateASN(asn uint32) bool {
	return (asn >= private2ByteLo && asn <= private2ByteHi) ||
		(asn >= private4ByteLo && asn <= private4ByteHi)
}

func runASNPlan(pass *Pass) error {
	for _, dc := range pass.Fleet.Devices {
		if dc.Spec.NoRouterStanza {
			continue
		}
		if want := dc.Dev.ASN; dc.Spec.ASN != want {
			pass.Reportf(dc, dc.Spec.RouterPos,
				"ASN %d violates the tier plan: %s %s is allocated %d",
				dc.Spec.ASN, dc.Dev.Role, dc.Name, want)
		}
		if !isPrivateASN(dc.Spec.ASN) {
			pass.Reportf(dc, dc.Spec.RouterPos,
				"ASN %d is not private (RFC 6996): it would survive "+
					"private-ASN stripping at the region boundary and leak",
				dc.Spec.ASN)
		}
	}
	return nil
}
