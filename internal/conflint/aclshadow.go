package conflint

import (
	"fmt"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bv"
	"dcvalidate/internal/ipnet"
)

// ACLShadow is the semantic lint of the suite: rule i of an access-list
// is dead when the union of the earlier rules covers its entire match
// space, so it can never fire regardless of action. Shadowed rules are
// the classic silent ACL bug (§3.3's legacy Edge ACLs grew them for
// years): the intent the rule expresses — often a deny — is simply not
// enforced. Each verdict is decided with the bv/SMT stack
// (sat(r_i ∧ ¬(r_0 ∨ … ∨ r_{i−1})) ⇔ reachable) and cross-checked
// in-pass against an exact interval engine that subtracts 5-dimensional
// header-space boxes, the same differential-oracle discipline the trie
// and SMT dataplane engines use; disagreement is an analyzer error, not
// a finding.
var ACLShadow = &Analyzer{
	Name: "acl-shadow",
	Doc: "access-list rules must be reachable: earlier rules must not " +
		"cover a later rule's entire match space",
	Run: runACLShadow,
}

func runACLShadow(pass *Pass) error {
	for _, dc := range pass.Fleet.Devices {
		for ai := range dc.Spec.ACLs {
			a := &dc.Spec.ACLs[ai]
			if len(a.Rules) < 2 {
				continue
			}
			pol := a.Policy()
			shadowed, err := ShadowedRulesSMT(pol)
			if err != nil {
				return fmt.Errorf("%s: access-list %s: %w", dc.Name, a.Name, err)
			}
			exact := ShadowedRulesInterval(pol)
			for i := range shadowed {
				if shadowed[i] != exact[i] {
					return fmt.Errorf(
						"%s: access-list %s rule %d: SMT and interval engines disagree (smt=%v interval=%v)",
						dc.Name, a.Name, i+1, shadowed[i], exact[i])
				}
			}
			for i, dead := range shadowed {
				if dead {
					pass.Reportf(dc, a.RulePos[i],
						"rule %d (%s) is unreachable: earlier rules cover its entire match space",
						i+1, acl.FormatIOSRule(&a.Rules[i]))
				}
			}
		}
	}
	return nil
}

// ShadowedRulesSMT decides reachability of every rule with the bit-vector
// solver: rule i is shadowed iff r_i ∧ ¬(r_0 ∨ … ∨ r_{i−1}) is
// unsatisfiable. The policy is encoded once and each rule is discharged
// as a retractable assumption query, mirroring the secguru contract
// pattern.
func ShadowedRulesSMT(p *acl.Policy) ([]bool, error) {
	c := bv.NewCtx()
	h := struct{ srcIP, srcPort, dstIP, dstPort, proto bv.Term }{
		srcIP:   c.BVVar("srcIp", 32),
		srcPort: c.BVVar("srcPort", 16),
		dstIP:   c.BVVar("dstIp", 32),
		dstPort: c.BVVar("dstPort", 16),
		proto:   c.BVVar("protocol", 8),
	}
	encode := func(r *acl.Rule) bv.Term {
		var conj []bv.Term
		if !r.Src.IsDefault() {
			rng := ipnet.RangeOf(r.Src)
			conj = append(conj, c.InRange(h.srcIP, uint64(rng.Lo), uint64(rng.Hi)))
		}
		if !r.Dst.IsDefault() {
			rng := ipnet.RangeOf(r.Dst)
			conj = append(conj, c.InRange(h.dstIP, uint64(rng.Lo), uint64(rng.Hi)))
		}
		if !r.SrcPorts.IsAny() {
			conj = append(conj, c.InRange(h.srcPort, uint64(r.SrcPorts.Lo), uint64(r.SrcPorts.Hi)))
		}
		if !r.DstPorts.IsAny() {
			conj = append(conj, c.InRange(h.dstPort, uint64(r.DstPorts.Lo), uint64(r.DstPorts.Hi)))
		}
		if !r.Protocol.Any {
			conj = append(conj, c.Eq(h.proto, c.BVConst(uint64(r.Protocol.Num), 8)))
		}
		return c.And(conj...)
	}
	solver := bv.NewSolver(c)
	shadowed := make([]bool, len(p.Rules))
	earlier := c.False() // r_0 ∨ … ∨ r_{i−1}
	for i := range p.Rules {
		ri := encode(&p.Rules[i])
		res, err := solver.SolveAssuming(c.And(ri, c.Not(earlier)))
		if err != nil {
			return nil, err
		}
		shadowed[i] = !res.Sat
		earlier = c.Or(earlier, ri)
	}
	return shadowed, nil
}

// ShadowedRulesInterval is the exact geometric oracle for the same
// question: each rule is a 5-dimensional box over (srcIP, srcPort,
// dstIP, dstPort, protocol), and rule i is shadowed iff subtracting the
// earlier rules' boxes from its own leaves nothing. Box subtraction is
// exact (it splits the residue along each dimension), so the verdicts
// are ground truth for the SMT engine's differential check.
func ShadowedRulesInterval(p *acl.Policy) []bool {
	shadowed := make([]bool, len(p.Rules))
	boxes := make([]headerBox, len(p.Rules))
	for i := range p.Rules {
		boxes[i] = ruleBox(&p.Rules[i])
	}
	for i := range p.Rules {
		residue := []headerBox{boxes[i]}
		for j := 0; j < i && len(residue) > 0; j++ {
			var next []headerBox
			for _, b := range residue {
				next = append(next, b.subtract(boxes[j])...)
			}
			residue = next
		}
		shadowed[i] = len(residue) == 0
	}
	return shadowed
}

// headerBox is a product of closed intervals over the five header
// dimensions, in the order srcIP, srcPort, dstIP, dstPort, protocol.
type headerBox struct {
	lo, hi [5]uint64
}

func ruleBox(r *acl.Rule) headerBox {
	var b headerBox
	src, dst := ipnet.RangeOf(r.Src), ipnet.RangeOf(r.Dst)
	b.lo[0], b.hi[0] = uint64(src.Lo), uint64(src.Hi)
	b.lo[1], b.hi[1] = uint64(r.SrcPorts.Lo), uint64(r.SrcPorts.Hi)
	b.lo[2], b.hi[2] = uint64(dst.Lo), uint64(dst.Hi)
	b.lo[3], b.hi[3] = uint64(r.DstPorts.Lo), uint64(r.DstPorts.Hi)
	if r.Protocol.Any {
		b.lo[4], b.hi[4] = 0, 255
	} else {
		b.lo[4], b.hi[4] = uint64(r.Protocol.Num), uint64(r.Protocol.Num)
	}
	return b
}

// subtract returns b minus o as disjoint boxes (at most two per
// dimension): the pieces of b hanging outside o's interval along each
// axis, peeled off one dimension at a time.
func (b headerBox) subtract(o headerBox) []headerBox {
	inter := b
	for d := 0; d < 5; d++ {
		if o.lo[d] > inter.lo[d] {
			inter.lo[d] = o.lo[d]
		}
		if o.hi[d] < inter.hi[d] {
			inter.hi[d] = o.hi[d]
		}
		if inter.lo[d] > inter.hi[d] {
			return []headerBox{b} // disjoint: nothing removed
		}
	}
	var out []headerBox
	cur := b
	for d := 0; d < 5; d++ {
		if cur.lo[d] < inter.lo[d] {
			piece := cur
			piece.hi[d] = inter.lo[d] - 1
			out = append(out, piece)
		}
		if cur.hi[d] > inter.hi[d] {
			piece := cur
			piece.lo[d] = inter.hi[d] + 1
			out = append(out, piece)
		}
		cur.lo[d], cur.hi[d] = inter.lo[d], inter.hi[d]
	}
	return out
}
