package conflint

import (
	"math/rand"
	"strings"
	"testing"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/ipnet"
)

func policyOf(t *testing.T, lines ...string) *acl.Policy {
	t.Helper()
	p, err := acl.ParseIOS("test", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	return p
}

func shadowBoth(t *testing.T, p *acl.Policy) []bool {
	t.Helper()
	smt, err := ShadowedRulesSMT(p)
	if err != nil {
		t.Fatalf("ShadowedRulesSMT: %v", err)
	}
	exact := ShadowedRulesInterval(p)
	for i := range smt {
		if smt[i] != exact[i] {
			t.Fatalf("engines disagree on rule %d: smt=%v interval=%v\npolicy: %+v",
				i+1, smt[i], exact[i], p.Rules)
		}
	}
	return smt
}

func TestShadowedRules(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  []bool
	}{
		{
			name: "exact-duplicate",
			lines: []string{
				"permit tcp 10.0.0.0/8 any eq 443",
				"deny tcp 10.0.0.0/8 any eq 443",
				"permit ip any any",
			},
			want: []bool{false, true, false},
		},
		{
			name: "broader-earlier",
			lines: []string{
				"permit ip 10.0.0.0/8 any",
				"deny tcp 10.1.0.0/16 any eq 22",
			},
			want: []bool{false, true},
		},
		{
			name: "narrower-earlier-not-shadowing",
			lines: []string{
				"deny tcp 10.1.0.0/16 any eq 22",
				"permit ip 10.0.0.0/8 any",
			},
			want: []bool{false, false},
		},
		{
			name: "union-covers",
			lines: []string{
				"permit tcp any any range 0 1023",
				"permit tcp any any range 1024 65535",
				"deny tcp any any eq 8080",
			},
			want: []bool{false, false, true},
		},
		{
			name: "protocol-disjoint",
			lines: []string{
				"permit tcp any any",
				"permit udp any any",
			},
			want: []bool{false, false},
		},
		{
			name: "ip-covers-tcp",
			lines: []string{
				"permit ip any any",
				"deny tcp any any",
			},
			want: []bool{false, true},
		},
		{
			name: "split-src-halves",
			lines: []string{
				"permit ip 10.0.0.0/9 host 10.9.9.9",
				"permit ip 10.128.0.0/9 host 10.9.9.9",
				"deny ip 10.0.0.0/8 host 10.9.9.9",
			},
			want: []bool{false, false, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := shadowBoth(t, policyOf(t, tc.lines...))
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("rule %d: shadowed=%v, want %v", i+1, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestShadowEnginesAgreeOnRandomPolicies is the differential property
// test: on seeded-random policies the SMT verdicts and the exact
// interval-subtraction verdicts must be identical rule for rule.
func TestShadowEnginesAgreeOnRandomPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPrefix := func() ipnet.Prefix {
		// Small universe so overlap and shadowing actually occur.
		bits := uint8([]int{0, 6, 7, 8, 8, 9}[rng.Intn(6)])
		return ipnet.PrefixFrom(ipnet.Addr(rng.Uint32()), bits)
	}
	randPorts := func() acl.PortRange {
		switch rng.Intn(3) {
		case 0:
			return acl.AnyPort
		case 1:
			return acl.Port(uint16(rng.Intn(4)))
		default:
			lo := uint16(rng.Intn(3))
			return acl.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(65530))}
		}
	}
	randProto := func() acl.ProtoMatch {
		if rng.Intn(2) == 0 {
			return acl.AnyProto
		}
		return acl.Proto([]uint8{acl.ProtoTCP, acl.ProtoUDP}[rng.Intn(2)])
	}
	for trial := 0; trial < 40; trial++ {
		p := &acl.Policy{Name: "rand", Semantics: acl.FirstApplicable}
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			action := acl.Permit
			if rng.Intn(2) == 0 {
				action = acl.Deny
			}
			p.Rules = append(p.Rules, acl.Rule{
				Action:   action,
				Protocol: randProto(),
				Src:      randPrefix(),
				Dst:      randPrefix(),
				SrcPorts: randPorts(),
				DstPorts: randPorts(),
				Priority: i + 1,
				Line:     i + 1,
			})
		}
		shadowBoth(t, p)
	}
}
