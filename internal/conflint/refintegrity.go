package conflint

// RefIntegrity checks routing-policy reference integrity within each
// device: every `neighbor ... route-map <name> in` must resolve to a
// `route-map <name> ...` definition on the same device, and every
// defined route-map must be referenced by some session. A dangling
// reference is the classic fail-open: most BGP implementations treat a
// missing policy as permit-all (or deny-all, depending on vendor — both
// wrong), so the §2.6.2 reject-default policy silently stops filtering.
// An unused definition is dead configuration that rots until someone
// re-attaches it to the wrong session.
var RefIntegrity = &Analyzer{
	Name: "ref-integrity",
	Doc: "route-maps referenced by neighbor stanzas must be defined " +
		"on-device, and defined route-maps must be referenced",
	Run: runRefIntegrity,
}

func runRefIntegrity(pass *Pass) error {
	for _, dc := range pass.Fleet.Devices {
		defined := map[string]bool{}
		for _, rm := range dc.Spec.RouteMaps {
			defined[rm.Name] = true
		}
		referenced := map[string]bool{}
		for i := range dc.Spec.Neighbors {
			nb := &dc.Spec.Neighbors[i]
			if nb.RouteMapIn == "" {
				continue
			}
			referenced[nb.RouteMapIn] = true
			if !defined[nb.RouteMapIn] {
				pass.Reportf(dc, nb.RouteMapInPos,
					"route-map %q referenced but not defined on this device",
					nb.RouteMapIn)
			}
		}
		for _, rm := range dc.Spec.RouteMaps {
			if !referenced[rm.Name] {
				pass.Reportf(dc, rm.Pos,
					"route-map %q defined but never referenced", rm.Name)
			}
		}
	}
	return nil
}
