package conflint

import (
	"fmt"
	"sort"

	"dcvalidate/internal/topology"
)

// ECMPConsistency checks that maximum-paths agrees across every device
// of a tier scope (ToRs and leaves per cluster, spines and regional
// spines fleet-wide). The Clos design load-balances by hashing flows
// over equal-cost BGP paths; one device with a lower multipath limit
// (Misconfiguration 2, MaxECMPPaths) concentrates its share of traffic
// onto a subset of uplinks and congests them — a capacity contract
// violation the simulator only exposes after convergence. The analyzer
// flags every device whose setting deviates from its tier's consensus
// (the most common value, unset counting as a value of its own).
var ECMPConsistency = &Analyzer{
	Name: "ecmp-consistency",
	Doc: "maximum-paths must agree across each tier scope (per-cluster " +
		"for ToRs and leaves, fleet-wide for spines and regional spines)",
	Run: runECMPConsistency,
}

type ecmpScope struct {
	role    topology.Role
	cluster int // -1 for fleet-wide tiers
}

func (s ecmpScope) String() string {
	if s.cluster >= 0 {
		return fmt.Sprintf("%s tier of cluster %d", s.role, s.cluster)
	}
	return fmt.Sprintf("%s tier", s.role)
}

func runECMPConsistency(pass *Pass) error {
	groups := map[ecmpScope][]*DeviceConf{}
	var scopes []ecmpScope
	for _, dc := range pass.Fleet.Devices {
		if dc.Spec.NoRouterStanza {
			continue
		}
		s := ecmpScope{role: dc.Dev.Role, cluster: dc.Dev.Cluster}
		if _, ok := groups[s]; !ok {
			scopes = append(scopes, s)
		}
		groups[s] = append(groups[s], dc)
	}
	sort.Slice(scopes, func(i, j int) bool {
		if scopes[i].role != scopes[j].role {
			return scopes[i].role < scopes[j].role
		}
		return scopes[i].cluster < scopes[j].cluster
	})
	for _, s := range scopes {
		dcs := groups[s]
		if len(dcs) < 2 {
			continue
		}
		// Consensus: most common maximum-paths value; ties go to the
		// smaller value so the verdict is deterministic.
		votes := map[int]int{}
		for _, dc := range dcs {
			votes[dc.Spec.MaxPaths]++
		}
		consensus, best := 0, -1
		vals := make([]int, 0, len(votes))
		for v := range votes {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		for _, v := range vals {
			if votes[v] > best {
				consensus, best = v, votes[v]
			}
		}
		if len(votes) == 1 {
			continue
		}
		for _, dc := range dcs {
			if dc.Spec.MaxPaths == consensus {
				continue
			}
			pos := dc.Spec.MaxPathsPos
			if pos.IsZero() {
				pos = dc.Spec.RouterPos
			}
			pass.Reportf(dc, pos,
				"maximum-paths %s diverges from the %s consensus %s",
				ecmpValue(dc.Spec.MaxPaths), s, ecmpValue(consensus))
		}
	}
	return nil
}

func ecmpValue(v int) string {
	if v == 0 {
		return "unset"
	}
	return fmt.Sprintf("%d", v)
}
