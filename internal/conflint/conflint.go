// Package conflint is a static-analysis multichecker for device
// configurations: the configuration-language counterpart of
// internal/analysis (which lints this repo's Go sources). Where the
// simulator and the SMT engine catch misconfigurations *after* BGP
// re-convergence and a full contract sweep, conflint flags whole bug
// classes in milliseconds by inspecting parsed devconf specs against the
// intended topology — the Plankton/ACORN argument that many datacenter
// outages are visible in the configs themselves, before any dataplane
// exists.
//
// The architecture mirrors internal/analysis deliberately: small
// Analyzer values with a Run(*Pass) hook, positioned findings, in-config
// suppression comments, byte-deterministic reports, and golden tests.
// The unit of analysis is a Fleet: every device's parsed Spec bound to
// its topology.Device, so analyzers can reason about both ends of a
// session, tier-wide conventions, and fleet-wide prefix origination.
//
// A finding is suppressed by a comment line in the device's own
// configuration, immediately above the offending stanza:
//
//	! conflint:allow session-symmetry planned maintenance on t0-3
//	neighbor 100.64.0.7 shutdown
//
// Suppressed findings are excluded from the report and surfaced in the
// Suppressed count (and dcv_conflint_suppressed_total metric) so a quiet
// report is never silently quiet.
package conflint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/topology"
)

// An Analyzer describes one configuration lint pass.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppression comments
	// (lower-case, hyphenated).
	Name string
	// Doc is a one-paragraph description: what it flags and why that is
	// a bug worth catching before convergence.
	Doc string
	// Run inspects the fleet via pass.Fleet and reports findings with
	// pass.Reportf.
	Run func(pass *Pass) error
}

// DeviceConf is one device's configuration bound to the topology.
type DeviceConf struct {
	// Name is the configured hostname.
	Name string
	// Spec is the parsed configuration.
	Spec *devconf.Spec
	// ID is the topology device this configuration belongs to.
	ID topology.DeviceID
	// Dev is the topology view of the device (the *intent*: planned ASN,
	// hosted prefixes, links).
	Dev *topology.Device

	// allow[line] holds analyzer names waived on that line by a
	// `! conflint:allow <name>` comment on the preceding line.
	allow map[int][]string
}

func (dc *DeviceConf) allowed(line int, analyzer string) bool {
	for _, a := range dc.allow[line] {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Fleet is the unit of analysis: every device configuration parsed and
// bound to its topology device.
type Fleet struct {
	Topo *topology.Topology
	// Devices is sorted by hostname so every iteration in every analyzer
	// is deterministic.
	Devices []*DeviceConf

	byID map[topology.DeviceID]*DeviceConf
}

// ByID returns the configuration of a topology device, or nil when the
// fleet has none for it.
func (f *Fleet) ByID(id topology.DeviceID) *DeviceConf { return f.byID[id] }

// suppressPrefix introduces an in-config suppression comment.
const suppressPrefix = "! conflint:allow "

// scanSuppressions collects `! conflint:allow <analyzer> [reason]`
// comments: each waives the named analyzer on the following line.
func scanSuppressions(text string) map[int][]string {
	var allow map[int][]string
	lineNo := 0
	for _, raw := range strings.Split(text, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, suppressPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, suppressPrefix))
		if len(fields) == 0 {
			continue
		}
		if allow == nil {
			allow = map[int][]string{}
		}
		allow[lineNo+1] = append(allow[lineNo+1], fields[0])
	}
	return allow
}

// NewFleet parses every configuration and binds it to the topology.
// The map key is a source label (file name or hostname) used only in
// error messages; the binding key is the configured hostname. Configs
// for unknown devices and duplicate configs are errors — lint needs the
// intent, and a config that matches no intent cannot be linted.
func NewFleet(topo *topology.Topology, configs map[string]string) (*Fleet, error) {
	labels := make([]string, 0, len(configs))
	for label := range configs {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	f := &Fleet{Topo: topo, byID: make(map[topology.DeviceID]*DeviceConf, len(configs))}
	for _, label := range labels {
		text := configs[label]
		spec, err := devconf.Parse(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("conflint: %s: %w", label, err)
		}
		dev, ok := topo.ByName(spec.Hostname)
		if !ok {
			return nil, fmt.Errorf("conflint: %s: hostname %q not in topology", label, spec.Hostname)
		}
		if f.byID[dev.ID] != nil {
			return nil, fmt.Errorf("conflint: %s: duplicate configuration for %q", label, spec.Hostname)
		}
		dc := &DeviceConf{
			Name:  spec.Hostname,
			Spec:  spec,
			ID:    dev.ID,
			Dev:   dev,
			allow: scanSuppressions(text),
		}
		f.byID[dev.ID] = dc
		f.Devices = append(f.Devices, dc)
	}
	sort.Slice(f.Devices, func(i, j int) bool { return f.Devices[i].Name < f.Devices[j].Name })
	return f, nil
}

// A Finding is one diagnostic: a device, a position in its config, the
// analyzer that produced it, and the message.
type Finding struct {
	Device   string
	Pos      devconf.Pos
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Device, f.Pos.Line, f.Pos.Col, f.Analyzer, f.Message)
}

// Pass carries one analyzer's run over a fleet.
type Pass struct {
	Analyzer *Analyzer
	Fleet    *Fleet

	findings   []Finding
	suppressed int
}

// Reportf records a finding against a device at the given config
// position, unless a suppression comment waives it.
func (p *Pass) Reportf(dc *DeviceConf, pos devconf.Pos, format string, args ...any) {
	if dc.allowed(pos.Line, p.Analyzer.Name) {
		p.suppressed++
		return
	}
	p.findings = append(p.findings, Finding{
		Device:   dc.Name,
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report is the deterministic result of linting one fleet.
type Report struct {
	// Findings is sorted by (device, line, col, analyzer, message).
	Findings []Finding
	// Suppressed counts findings waived by conflint:allow comments.
	Suppressed int
	// Elapsed is the lint wall time on the runner's clock. It is not
	// part of String(), which must be byte-identical across runs.
	Elapsed time.Duration
}

// String renders one line per finding; the empty report renders the
// empty string. Byte-identical across runs on the same fleet.
func (r *Report) String() string {
	var sb strings.Builder
	for _, f := range r.Findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ByAnalyzer returns finding counts keyed by analyzer name.
func (r *Report) ByAnalyzer() map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Analyzer]++
	}
	return out
}

// Runner executes a set of analyzers over fleets.
type Runner struct {
	// Analyzers defaults to All() when nil.
	Analyzers []*Analyzer
	// Metrics is optional (nil-safe, like every obs bundle).
	Metrics *Metrics
	// Clock times the run; nil means the system clock.
	Clock clock.Clock
}

// Run lints the fleet with every analyzer and returns the sorted report.
// An analyzer error (not a finding — an inability to analyze) aborts the
// run.
func (r *Runner) Run(fleet *Fleet) (*Report, error) {
	start := clock.Or(r.Clock).Now()
	azs := r.Analyzers
	if azs == nil {
		azs = All()
	}
	rep := &Report{}
	for _, az := range azs {
		pass := &Pass{Analyzer: az, Fleet: fleet}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("conflint: %s: %w", az.Name, err)
		}
		rep.Findings = append(rep.Findings, pass.findings...)
		rep.Suppressed += pass.suppressed
		r.Metrics.observeAnalyzer(az.Name, len(pass.findings))
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	rep.Elapsed = clock.Since(r.Clock, start)
	r.Metrics.observeRun(rep)
	return rep, nil
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		ACLShadow,
		ASNPlan,
		ECMPConsistency,
		PrefixOrigin,
		RefIntegrity,
		SessionSymmetry,
	}
}

// Lint is the one-call convenience: parse, bind, and run the full suite.
func Lint(topo *topology.Topology, configs map[string]string) (*Report, error) {
	fleet, err := NewFleet(topo, configs)
	if err != nil {
		return nil, err
	}
	return (&Runner{}).Run(fleet)
}
