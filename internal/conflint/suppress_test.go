package conflint

import (
	"strings"
	"testing"

	"dcvalidate/internal/devconf"
	"dcvalidate/internal/obs"
)

// insertAbove adds a line immediately before the first line containing
// the marker substring.
func insertAbove(t *testing.T, text, marker, inserted string) string {
	t.Helper()
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, marker) {
			out := append([]string{}, lines[:i]...)
			out = append(out, inserted)
			out = append(out, lines[i:]...)
			return strings.Join(out, "\n")
		}
	}
	t.Fatalf("marker %q not found in:\n%s", marker, text)
	return ""
}

func TestSuppressionCommentWaivesFinding(t *testing.T) {
	topo, configs := fig3Fleet(t)
	mutate(t, configs, "fig3-c0-t0-0", func(s *devconf.Spec) {
		s.Neighbors[0].Shutdown = true // asymmetric: peer not shut
	})

	// Unsuppressed: the one-sided shutdown is reported.
	rep, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if got := rep.ByAnalyzer()["session-symmetry"]; got == 0 {
		t.Fatalf("expected session-symmetry finding, report:\n%s", rep)
	}
	if rep.Suppressed != 0 {
		t.Fatalf("Suppressed = %d before any comment", rep.Suppressed)
	}
	baseline := len(rep.Findings)

	// Suppressed: an allow comment above the shutdown stanza waives it,
	// the report shrinks by exactly one, and the metric records it.
	configs["fig3-c0-t0-0"] = insertAbove(t, configs["fig3-c0-t0-0"], "shutdown",
		"! conflint:allow session-symmetry draining for maintenance")
	fleet, err := NewFleet(topo, configs)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	reg := obs.NewRegistry()
	runner := &Runner{Metrics: NewMetrics(reg)}
	rep, err = runner.Run(fleet)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Findings) != baseline-1 {
		t.Fatalf("findings %d, want %d after suppression; report:\n%s",
			len(rep.Findings), baseline-1, rep)
	}
	for _, f := range rep.Findings {
		if strings.Contains(f.Message, "shut down here") {
			t.Fatalf("suppressed finding still reported: %s", f)
		}
	}
	if rep.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", rep.Suppressed)
	}
	if got := runner.Metrics.Suppressed.Value(); got != 1 {
		t.Fatalf("dcv_conflint_suppressed_total = %d, want 1", got)
	}
	if got := runner.Metrics.Runs.Value(); got != 1 {
		t.Fatalf("dcv_conflint_runs_total = %d, want 1", got)
	}
}

func TestSuppressionIsAnalyzerScoped(t *testing.T) {
	topo, configs := fig3Fleet(t)
	mutate(t, configs, "fig3-c0-t0-0", func(s *devconf.Spec) {
		s.Neighbors[0].Shutdown = true
	})
	// A comment naming a different analyzer must not waive the finding.
	configs["fig3-c0-t0-0"] = insertAbove(t, configs["fig3-c0-t0-0"], "shutdown",
		"! conflint:allow asn-plan wrong analyzer")
	rep, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if rep.Suppressed != 0 {
		t.Fatalf("Suppressed = %d, want 0", rep.Suppressed)
	}
	if got := rep.ByAnalyzer()["session-symmetry"]; got == 0 {
		t.Fatalf("finding vanished without a matching suppression:\n%s", rep)
	}
}
