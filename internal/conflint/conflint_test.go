package conflint

import (
	"strings"
	"testing"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

func fig3Fleet(t *testing.T) (*topology.Topology, map[string]string) {
	t.Helper()
	topo := topology.MustNew(topology.Figure3Params())
	configs, err := devconf.RenderFleet(topo, nil)
	if err != nil {
		t.Fatalf("RenderFleet: %v", err)
	}
	return topo, configs
}

// mutate re-writes one device's configuration through parse → edit →
// canonical Write, the same path E18 uses to seed misconfigurations.
func mutate(t *testing.T, configs map[string]string, host string, fn func(*devconf.Spec)) {
	t.Helper()
	spec, err := devconf.Parse(strings.NewReader(configs[host]))
	if err != nil {
		t.Fatalf("parse %s: %v", host, err)
	}
	fn(spec)
	configs[host] = spec.Text()
}

func mustRule(t *testing.T, line string) acl.Rule {
	t.Helper()
	r, err := acl.ParseIOSRule(strings.Fields(line), 1)
	if err != nil {
		t.Fatalf("rule %q: %v", line, err)
	}
	return r
}

func TestCleanFleetHasNoFindings(t *testing.T) {
	topo, configs := fig3Fleet(t)
	rep, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean fleet produced findings:\n%s", rep)
	}
	if rep.String() != "" {
		t.Fatalf("empty report must render empty, got %q", rep.String())
	}
}

// TestSeededMisconfigs drives every analyzer: each case plants one
// misconfiguration class into the clean rendered fleet and expects at
// least one finding from the matching analyzer on the expected device.
func TestSeededMisconfigs(t *testing.T) {
	cases := []struct {
		name     string
		host     string // mutated device
		analyzer string
		onDevice string // where the finding must appear
		contains string
		fn       func(*devconf.Spec)
	}{
		{
			name: "remote-as-mismatch", host: "fig3-c0-t0-0",
			analyzer: "session-symmetry", onDevice: "fig3-c0-t0-0",
			contains: "remote-as",
			fn:       func(s *devconf.Spec) { s.Neighbors[0].RemoteAS++ },
		},
		{
			name: "one-sided-declaration", host: "fig3-c0-t0-0",
			analyzer: "session-symmetry", onDevice: "fig3-c0-t1-0",
			contains: "no matching stanza back",
			fn:       func(s *devconf.Spec) { s.Neighbors = s.Neighbors[1:] },
		},
		{
			name: "asymmetric-shutdown", host: "fig3-c0-t0-0",
			analyzer: "session-symmetry", onDevice: "fig3-c0-t0-0",
			contains: "shut down here but not on",
			fn:       func(s *devconf.Spec) { s.Neighbors[0].Shutdown = true },
		},
		{
			name: "asn-off-plan", host: "fig3-c0-t1-1",
			analyzer: "asn-plan", onDevice: "fig3-c0-t1-1",
			contains: "violates the tier plan",
			fn:       func(s *devconf.Spec) { s.ASN = 65000 },
		},
		{
			name: "asn-public-leak", host: "fig3-c0-t1-1",
			analyzer: "asn-plan", onDevice: "fig3-c0-t1-1",
			contains: "not private",
			fn:       func(s *devconf.Spec) { s.ASN = 3320 },
		},
		{
			name: "route-map-undefined", host: "fig3-c0-t0-1",
			analyzer: "ref-integrity", onDevice: "fig3-c0-t0-1",
			contains: "referenced but not defined",
			fn:       func(s *devconf.Spec) { s.Neighbors[0].RouteMapIn = "NO-SUCH-MAP" },
		},
		{
			name: "route-map-unused", host: "fig3-c0-t0-1",
			analyzer: "ref-integrity", onDevice: "fig3-c0-t0-1",
			contains: "never referenced",
			fn: func(s *devconf.Spec) {
				s.RouteMaps = append(s.RouteMaps, devconf.RouteMap{Name: "STALE", Seq: 10})
			},
		},
		{
			name: "foreign-origination", host: "fig3-c1-t0-0",
			analyzer: "prefix-origin", onDevice: "fig3-c1-t0-0",
			contains: "is hosted by fig3-c0-t0-0",
			fn: func(s *devconf.Spec) {
				// fig3-c0-t0-0 hosts the first VLAN prefix of the region.
				s.Networks = append(s.Networks, ipnet.MustParsePrefix("10.0.0.0/24"))
			},
		},
		{
			name: "missing-origination", host: "fig3-c0-t0-0",
			analyzer: "prefix-origin", onDevice: "fig3-c0-t0-0",
			contains: "has no network stanza",
			fn:       func(s *devconf.Spec) { s.Networks = nil },
		},
		{
			name: "duplicate-network", host: "fig3-c0-t0-0",
			analyzer: "prefix-origin", onDevice: "fig3-c0-t0-0",
			contains: "duplicate network stanza",
			fn:       func(s *devconf.Spec) { s.Networks = append(s.Networks, s.Networks[0]) },
		},
		{
			name: "ecmp-divergence", host: "fig3-c0-t1-2",
			analyzer: "ecmp-consistency", onDevice: "fig3-c0-t1-2",
			contains: "diverges from the leaf tier of cluster 0 consensus",
			fn:       func(s *devconf.Spec) { s.MaxPaths = 1 },
		},
		{
			name: "acl-shadowed-rule", host: "fig3-rs-0",
			analyzer: "acl-shadow", onDevice: "fig3-rs-0",
			contains: "unreachable",
			fn: func(s *devconf.Spec) {
				s.ACLs = append(s.ACLs, devconf.ACL{
					Name: "EDGE-IN",
					Rules: []acl.Rule{
						mustRule(t, "permit tcp 10.0.0.0/8 any eq 443"),
						mustRule(t, "deny tcp 10.0.0.0/8 any eq 443"),
						mustRule(t, "permit ip any any"),
					},
					RulePos: make([]devconf.Pos, 3),
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, configs := fig3Fleet(t)
			mutate(t, configs, tc.host, tc.fn)
			rep, err := Lint(topo, configs)
			if err != nil {
				t.Fatalf("Lint: %v", err)
			}
			for _, f := range rep.Findings {
				if f.Analyzer == tc.analyzer && f.Device == tc.onDevice &&
					strings.Contains(f.Message, tc.contains) {
					if f.Pos.Line == 0 {
						t.Errorf("finding lacks a position: %s", f)
					}
					return
				}
			}
			t.Fatalf("no %s finding on %s containing %q; report:\n%s",
				tc.analyzer, tc.onDevice, tc.contains, rep)
		})
	}
}

// TestReportByteStable lints a multi-bug fleet twice and demands
// byte-identical reports — the determinism contract of every report in
// this codebase.
func TestReportByteStable(t *testing.T) {
	topo, configs := fig3Fleet(t)
	mutate(t, configs, "fig3-c0-t0-0", func(s *devconf.Spec) {
		s.Neighbors[0].RemoteAS++
		s.Networks = nil
	})
	mutate(t, configs, "fig3-c1-t1-3", func(s *devconf.Spec) {
		s.MaxPaths = 2
		s.RouteMaps = append(s.RouteMaps, devconf.RouteMap{Name: "STALE", Seq: 5})
	})
	first, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(first.Findings) == 0 {
		t.Fatal("seeded fleet produced no findings")
	}
	second, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if first.String() != second.String() {
		t.Fatalf("reports differ between runs:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestGoldenReport pins the exact diagnostic format on a hand-written
// two-device sub-fleet (lint accepts partial fleets).
func TestGoldenReport(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	clean, err := devconf.RenderFleet(topo, nil)
	if err != nil {
		t.Fatalf("RenderFleet: %v", err)
	}
	configs := map[string]string{
		"fig3-c0-t0-0": clean["fig3-c0-t0-0"],
	}
	mutate(t, configs, "fig3-c0-t0-0", func(s *devconf.Spec) {
		s.Neighbors[0].RouteMapIn = "MISSING"
	})
	rep, err := Lint(topo, configs)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	want := "fig3-c0-t0-0:6:3: ref-integrity: route-map \"MISSING\" referenced but not defined on this device\n"
	if rep.String() != want {
		t.Fatalf("golden mismatch:\nwant: %q\ngot:  %q\nconfig:\n%s",
			want, rep.String(), configs["fig3-c0-t0-0"])
	}
}

func TestFleetRejectsUnknownAndDuplicateHosts(t *testing.T) {
	topo, configs := fig3Fleet(t)
	bad := map[string]string{"x": "hostname not-a-device\nrouter bgp 1\n!\n"}
	if _, err := NewFleet(topo, bad); err == nil {
		t.Fatal("unknown hostname accepted")
	}
	dup := map[string]string{
		"a": configs["fig3-rs-0"],
		"b": configs["fig3-rs-0"],
	}
	if _, err := NewFleet(topo, dup); err == nil {
		t.Fatal("duplicate hostname accepted")
	}
}
