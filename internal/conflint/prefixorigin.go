package conflint

import "dcvalidate/internal/ipnet"

// PrefixOrigin checks that `network` stanzas agree with the topology's
// prefix-hosting plan (§2.1: each VLAN prefix lives on exactly one ToR).
// Originating a prefix the device does not host is anycast-by-accident:
// once both announcements converge, ECMP splits the prefix's traffic
// between the real host and the impostor and a fraction of flows
// blackholes — the validator only notices after convergence, as a
// reachability-contract violation. The inverse bug, a hosted prefix with
// no network stanza, silently withdraws a VLAN from the entire fabric.
var PrefixOrigin = &Analyzer{
	Name: "prefix-origin",
	Doc: "network stanzas must originate exactly the prefixes the device " +
		"hosts: no foreign or duplicate origination, no missing stanza",
	Run: runPrefixOrigin,
}

func runPrefixOrigin(pass *Pass) error {
	// The intended origin of every prefix, from the topology.
	intended := map[ipnet.Prefix]string{}
	for _, hp := range pass.Fleet.Topo.HostedPrefixes() {
		intended[hp.Prefix] = pass.Fleet.Topo.Device(hp.ToR).Name
	}
	for _, dc := range pass.Fleet.Devices {
		if dc.Spec.NoRouterStanza {
			continue
		}
		hosted := map[ipnet.Prefix]bool{}
		for _, p := range dc.Dev.HostedPrefixes {
			hosted[p] = true
		}
		originated := map[ipnet.Prefix]bool{}
		for i, p := range dc.Spec.Networks {
			pos := dc.Spec.NetworkPos[i]
			if originated[p] {
				pass.Reportf(dc, pos, "duplicate network stanza for %s", p)
				continue
			}
			originated[p] = true
			if hosted[p] {
				continue
			}
			if host, ok := intended[p]; ok {
				pass.Reportf(dc, pos,
					"network %s is hosted by %s: originating it here splits "+
						"its traffic across both devices", p, host)
			} else {
				pass.Reportf(dc, pos,
					"network %s is not hosted by any device in the topology", p)
			}
		}
		for _, p := range dc.Dev.HostedPrefixes {
			if !originated[p] {
				pass.Reportf(dc, dc.Spec.RouterPos,
					"hosted prefix %s has no network stanza: the VLAN is "+
						"unreachable fabric-wide", p)
			}
		}
	}
	return nil
}
