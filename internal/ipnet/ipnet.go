// Package ipnet provides compact IPv4 address, prefix, and range types used
// throughout the datacenter validation stack.
//
// Addresses are represented as uint32 in host order so that prefix
// containment, range arithmetic, and bit-vector encoding are cheap and
// allocation-free. The package also provides a binary prefix trie keyed by
// address prefix, which backs both the FIB longest-prefix-match lookup and
// the RCDC trie-based contract checker.
package ipnet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation ("10.3.129.224").
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipnet: invalid address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil || v > 255 || tok == "" || (len(tok) > 1 && tok[0] == '0') {
			return 0, fmt.Errorf("ipnet: invalid address %q", s)
		}
		parts[i] = uint32(v)
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 CIDR prefix: the top Bits bits of Addr are significant.
// The zero value is 0.0.0.0/0, the default route.
type Prefix struct {
	Addr Addr
	Bits uint8
}

// ParsePrefix parses CIDR notation ("10.3.129.224/28"). A bare address is
// treated as a /32.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Prefix{}, err
		}
		return Prefix{a, 32}, nil
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("ipnet: invalid prefix length in %q", s)
	}
	p := Prefix{a, uint8(bits)}
	if p.Addr&^p.netmask() != 0 {
		return Prefix{}, fmt.Errorf("ipnet: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFrom returns the prefix of the given length containing a, with host
// bits cleared.
func PrefixFrom(a Addr, bits uint8) Prefix {
	if bits > 32 {
		bits = 32
	}
	p := Prefix{Bits: bits}
	p.Addr = a & p.netmask()
	return p
}

func (p Prefix) netmask() Addr {
	if p.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Mask returns the netmask of the prefix as an address.
func (p Prefix) Mask() Addr { return p.netmask() }

// First returns the lowest address in the prefix.
func (p Prefix) First() Addr { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Addr | ^p.netmask() }

// Contains reports whether a is inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&p.netmask() == p.Addr }

// ContainsPrefix reports whether q is a (non-strict) sub-prefix of p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Bits >= p.Bits && p.Contains(q.Addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// IsDefault reports whether p is the default route 0.0.0.0/0.
func (p Prefix) IsDefault() bool { return p == Prefix{} }

// Children returns the two halves of p. Panics on a /32.
func (p Prefix) Children() (left, right Prefix) {
	if p.Bits >= 32 {
		panic("ipnet: Children of /32")
	}
	left = Prefix{p.Addr, p.Bits + 1}
	right = Prefix{p.Addr | (1 << (31 - p.Bits)), p.Bits + 1}
	return left, right
}

// Bit returns bit i of the prefix address counting from the most significant
// bit (bit 0 is the top bit). Only bits < p.Bits are meaningful.
func (p Prefix) Bit(i uint8) byte {
	return byte(p.Addr >> (31 - i) & 1)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Compare orders prefixes by address then by length (shorter first). Returns
// -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return 0
}

// Range is an inclusive IPv4 address interval [Lo, Hi].
type Range struct {
	Lo, Hi Addr
}

// RangeOf returns the range covered by a prefix.
func RangeOf(p Prefix) Range { return Range{p.First(), p.Last()} }

// Contains reports whether a is inside the range.
func (r Range) Contains(a Addr) bool { return r.Lo <= a && a <= r.Hi }

// ContainsRange reports whether s is fully inside r.
func (r Range) ContainsRange(s Range) bool { return r.Lo <= s.Lo && s.Hi <= r.Hi }

// Overlaps reports whether the two ranges share any address.
func (r Range) Overlaps(s Range) bool { return r.Lo <= s.Hi && s.Lo <= r.Hi }

// Empty reports whether the range contains no addresses (Lo > Hi).
func (r Range) Empty() bool { return r.Lo > r.Hi }

// Size returns the number of addresses in the range (0 if empty).
func (r Range) Size() uint64 {
	if r.Empty() {
		return 0
	}
	return uint64(r.Hi) - uint64(r.Lo) + 1
}

// Intersect returns the overlap of two ranges; the result is Empty if they
// are disjoint.
func (r Range) Intersect(s Range) Range {
	lo, hi := r.Lo, r.Hi
	if s.Lo > lo {
		lo = s.Lo
	}
	if s.Hi < hi {
		hi = s.Hi
	}
	return Range{lo, hi}
}

func (r Range) String() string {
	return r.Lo.String() + "-" + r.Hi.String()
}

// Prefixes decomposes the range into the minimal list of CIDR prefixes that
// exactly cover it, in ascending address order.
func (r Range) Prefixes() []Prefix {
	if r.Empty() {
		return nil
	}
	var out []Prefix
	lo, hi := uint64(r.Lo), uint64(r.Hi)
	for lo <= hi {
		// Largest power-of-two block aligned at lo that fits in [lo,hi].
		bits := uint8(32)
		for bits > 0 {
			nb := bits - 1
			size := uint64(1) << (32 - nb)
			if lo&(size-1) != 0 || lo+size-1 > hi {
				break
			}
			bits = nb
		}
		out = append(out, Prefix{Addr(lo), bits})
		lo += uint64(1) << (32 - bits)
	}
	return out
}

// SubtractPrefixes returns r minus the union of the given prefixes, as a
// sorted list of disjoint ranges. Used to compute the address space left to
// a default route once all specific routes are removed.
func (r Range) SubtractPrefixes(ps []Prefix) []Range {
	holes := make([]Range, 0, len(ps))
	for _, p := range ps {
		h := r.Intersect(RangeOf(p))
		if !h.Empty() {
			holes = append(holes, h)
		}
	}
	sortRanges(holes)
	var out []Range
	cur := r.Lo
	done := false
	for _, h := range holes {
		if done {
			break
		}
		if h.Hi < cur {
			continue
		}
		if h.Lo > cur {
			out = append(out, Range{cur, h.Lo - 1})
		}
		if h.Hi == ^Addr(0) {
			done = true
			break
		}
		if h.Hi+1 > cur {
			cur = h.Hi + 1
		}
		if cur > r.Hi {
			done = true
		}
	}
	if !done && cur <= r.Hi {
		out = append(out, Range{cur, r.Hi})
	}
	return out
}

func sortRanges(rs []Range) {
	// Insertion sort: hole lists are short and often nearly sorted.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
