package ipnet

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTrieInsertGet(t *testing.T) {
	var tr Trie[int]
	ps := []string{"0.0.0.0/0", "10.0.0.0/8", "10.20.0.0/16", "10.20.20.0/24", "192.168.1.0/24"}
	for i, s := range ps {
		if replaced := tr.Insert(MustParsePrefix(s), i); replaced {
			t.Errorf("Insert(%s) reported replaced on first insert", s)
		}
	}
	if tr.Len() != len(ps) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(ps))
	}
	for i, s := range ps {
		v, ok := tr.Get(MustParsePrefix(s))
		if !ok || v != i {
			t.Errorf("Get(%s) = %d,%v", s, v, ok)
		}
	}
	if _, ok := tr.Get(MustParsePrefix("10.30.0.0/16")); ok {
		t.Error("Get of absent prefix succeeded")
	}
	if replaced := tr.Insert(MustParsePrefix("10.0.0.0/8"), 99); !replaced {
		t.Error("re-insert did not report replaced")
	}
	if v, _ := tr.Get(MustParsePrefix("10.0.0.0/8")); v != 99 {
		t.Errorf("after replace Get = %d", v)
	}
	if tr.Len() != len(ps) {
		t.Errorf("Len after replace = %d", tr.Len())
	}
}

func TestTrieDelete(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	if !tr.Delete(p) {
		t.Error("Delete of present prefix failed")
	}
	if tr.Delete(p) {
		t.Error("Delete of absent prefix succeeded")
	}
	if _, ok := tr.Get(p); ok {
		t.Error("Get after Delete succeeded")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieLookupLPM(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tr.Insert(MustParsePrefix("10.20.0.0/16"), "ten-twenty")
	cases := []struct {
		addr, want string
	}{
		{"10.20.1.1", "ten-twenty"},
		{"10.21.1.1", "ten"},
		{"11.0.0.1", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.addr, v, ok, c.want)
		}
	}

	var empty Trie[string]
	if _, _, ok := empty.Lookup(0); ok {
		t.Error("Lookup in empty trie succeeded")
	}
}

func TestTrieLookupHostRoute(t *testing.T) {
	var tr Trie[int]
	a := MustParseAddr("10.0.0.1")
	tr.Insert(Prefix{a, 32}, 7)
	p, v, ok := tr.Lookup(a)
	if !ok || v != 7 || p.Bits != 32 {
		t.Errorf("Lookup host route = %v,%d,%v", p, v, ok)
	}
	if _, _, ok := tr.Lookup(a + 1); ok {
		t.Error("adjacent address matched host route")
	}
}

func TestTrieAncestorsDescendants(t *testing.T) {
	var tr Trie[int]
	all := []string{"0.0.0.0/0", "10.0.0.0/8", "10.20.0.0/16", "10.20.20.0/24", "10.20.20.0/28", "192.168.0.0/16"}
	for i, s := range all {
		tr.Insert(MustParsePrefix(s), i)
	}

	var anc []string
	tr.Ancestors(MustParsePrefix("10.20.20.0/24"), func(p Prefix, _ int) bool {
		anc = append(anc, p.String())
		return true
	})
	wantAnc := []string{"0.0.0.0/0", "10.0.0.0/8", "10.20.0.0/16", "10.20.20.0/24"}
	if !eqStrings(anc, wantAnc) {
		t.Errorf("Ancestors = %v, want %v", anc, wantAnc)
	}

	var desc []string
	tr.Descendants(MustParsePrefix("10.20.0.0/16"), func(p Prefix, _ int) bool {
		desc = append(desc, p.String())
		return true
	})
	wantDesc := []string{"10.20.0.0/16", "10.20.20.0/24", "10.20.20.0/28"}
	if !eqStrings(desc, wantDesc) {
		t.Errorf("Descendants = %v, want %v", desc, wantDesc)
	}

	var rel []string
	tr.Related(MustParsePrefix("10.20.0.0/16"), func(p Prefix, _ int) bool {
		rel = append(rel, p.String())
		return true
	})
	wantRel := []string{"0.0.0.0/0", "10.0.0.0/8", "10.20.0.0/16", "10.20.20.0/24", "10.20.20.0/28"}
	if !eqStrings(rel, wantRel) {
		t.Errorf("Related = %v, want %v", rel, wantRel)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ins := []string{"192.168.0.0/16", "10.0.0.0/8", "10.20.0.0/16", "0.0.0.0/0"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.20.0.0/16", "192.168.0.0/16"}
	if !eqStrings(got, want) {
		t.Errorf("Walk = %v, want %v", got, want)
	}
}

func TestTrieEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i := 0; i < 10; i++ {
		tr.Insert(PrefixFrom(Addr(i)<<24, 8), i)
	}
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

// TestTrieLookupMatchesLinearScan cross-checks trie LPM against a brute-force
// longest-prefix scan on random rule sets.
func TestTrieLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		var tr Trie[int]
		var rules []Prefix
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33)))
			if _, dup := tr.Get(p); dup {
				continue
			}
			tr.Insert(p, len(rules))
			rules = append(rules, p)
		}
		for s := 0; s < 100; s++ {
			a := Addr(rng.Uint32())
			// Brute force: longest containing prefix.
			best, bestIdx := -1, -1
			for i, p := range rules {
				if p.Contains(a) && int(p.Bits) > best {
					best, bestIdx = int(p.Bits), i
				}
			}
			_, v, ok := tr.Lookup(a)
			if (bestIdx >= 0) != ok {
				t.Fatalf("iter %d: Lookup(%v) ok=%v want %v", iter, a, ok, bestIdx >= 0)
			}
			if ok && v != bestIdx {
				// Same length is impossible: prefixes of equal Bits containing
				// a are identical, and duplicates were skipped.
				t.Fatalf("iter %d: Lookup(%v) = rule %d, want %d", iter, a, v, bestIdx)
			}
		}
	}
}

// TestTrieRelatedMatchesLinearScan cross-checks Related against brute force.
func TestTrieRelatedMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 100; iter++ {
		var tr Trie[int]
		var rules []Prefix
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(25))) // bias to shorter
			if _, dup := tr.Get(p); dup {
				continue
			}
			tr.Insert(p, len(rules))
			rules = append(rules, p)
		}
		q := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33)))
		var got []string
		tr.Related(q, func(p Prefix, _ int) bool {
			got = append(got, p.String())
			return true
		})
		var want []string
		for _, p := range rules {
			if p.ContainsPrefix(q) || q.ContainsPrefix(p) {
				want = append(want, p.String())
			}
		}
		sort.Strings(got)
		sort.Strings(want)
		if !eqStrings(got, want) {
			t.Fatalf("iter %d: Related(%v) = %v, want %v", iter, q, got, want)
		}
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHasStrictDescendant(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.20.0.0/16"), 2)
	cases := []struct {
		q    string
		want bool
	}{
		{"10.0.0.0/8", true},    // /16 below
		{"10.20.0.0/16", false}, // nothing strictly below
		{"10.0.0.0/9", true},    // /16 is inside the /9
		{"10.128.0.0/9", false}, // other half is empty
		{"0.0.0.0/0", true},
		{"11.0.0.0/8", false},
		{"10.20.0.0/24", false},
	}
	for _, c := range cases {
		if got := tr.HasStrictDescendant(MustParsePrefix(c.q)); got != c.want {
			t.Errorf("HasStrictDescendant(%s) = %v, want %v", c.q, got, c.want)
		}
	}

	// Delete clears the value but not the node: the unset node must not
	// count as a descendant.
	tr.Delete(MustParsePrefix("10.20.0.0/16"))
	if tr.HasStrictDescendant(MustParsePrefix("10.0.0.0/8")) {
		t.Error("deleted entry still reported as descendant")
	}
}

func TestHasStrictDescendantMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 100; iter++ {
		var tr Trie[int]
		var rules []Prefix
		for i := 0; i < 1+rng.Intn(20); i++ {
			p := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(20)))
			if _, dup := tr.Get(p); !dup {
				tr.Insert(p, i)
				rules = append(rules, p)
			}
		}
		for s := 0; s < 30; s++ {
			q := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(22)))
			want := false
			for _, p := range rules {
				if p != q && q.ContainsPrefix(p) {
					want = true
					break
				}
			}
			if got := tr.HasStrictDescendant(q); got != want {
				t.Fatalf("iter %d: HasStrictDescendant(%v) = %v, want %v", iter, q, got, want)
			}
		}
	}
}
