package ipnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.3.129.224", 0x0a0381e0, true},
		{"1.2.3.4", 0x01020304, true},
		{"192.168.0.1", 0xc0a80001, true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false}, // leading zero rejected
		{"1.2.3.-4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		bits uint8
	}{
		{"10.0.0.0/8", true, 8},
		{"0.0.0.0/0", true, 0},
		{"10.3.129.224/28", true, 28},
		{"1.2.3.4", true, 32}, // bare address is /32
		{"10.0.0.1/8", false, 0},
		{"10.0.0.0/33", false, 0},
		{"10.0.0.0/x", false, 0},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.Bits != c.bits {
			t.Errorf("ParsePrefix(%q).Bits = %d, want %d", c.in, p.Bits, c.bits)
		}
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(a uint32, b uint8) bool {
		p := PrefixFrom(Addr(a), b%33)
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("10.20.20.0/24")
	if p.First() != MustParseAddr("10.20.20.0") {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MustParseAddr("10.20.20.255") {
		t.Errorf("Last = %v", p.Last())
	}
	d := Prefix{}
	if d.First() != 0 || d.Last() != 0xffffffff {
		t.Errorf("default route range = %v-%v", d.First(), d.Last())
	}
	host := MustParsePrefix("1.2.3.4/32")
	if host.First() != host.Last() {
		t.Errorf("host route First != Last")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.255.255")) {
		t.Error("10/8 should contain 10.255.255.255")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.20.0.0/16")
	p16b := MustParsePrefix("11.20.0.0/16")
	if !p8.ContainsPrefix(p16) {
		t.Error("10/8 should contain 10.20/16")
	}
	if p16.ContainsPrefix(p8) {
		t.Error("10.20/16 should not contain 10/8")
	}
	if !p8.ContainsPrefix(p8) {
		t.Error("prefix should contain itself")
	}
	if p8.ContainsPrefix(p16b) {
		t.Error("10/8 should not contain 11.20/16")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.20.0.0/16")
	c := MustParsePrefix("172.16.0.0/12")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.20/16 overlap")
	}
	if a.Overlaps(c) {
		t.Error("10/8 and 172.16/12 do not overlap")
	}
}

func TestPrefixChildren(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	l, r := p.Children()
	if l != MustParsePrefix("10.0.0.0/9") || r != MustParsePrefix("10.128.0.0/9") {
		t.Errorf("Children = %v, %v", l, r)
	}
	// Children partition the parent.
	if l.Last()+1 != r.First() || l.First() != p.First() || r.Last() != p.Last() {
		t.Error("children do not partition parent")
	}
}

func TestPrefixCompare(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.1.0.0/16"),
	}
	for i := range ps {
		for j := range ps {
			got := ps[i].Compare(ps[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ps[i], ps[j], got, want)
			}
		}
	}
}

func TestRangeBasics(t *testing.T) {
	r := RangeOf(MustParsePrefix("10.0.0.0/8"))
	if !r.Contains(MustParseAddr("10.128.0.0")) {
		t.Error("range should contain 10.128.0.0")
	}
	if r.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("range should not contain 11.0.0.0")
	}
	if r.Size() != 1<<24 {
		t.Errorf("Size = %d", r.Size())
	}
	empty := Range{10, 5}
	if !empty.Empty() || empty.Size() != 0 {
		t.Error("inverted range should be empty")
	}
}

func TestRangeIntersect(t *testing.T) {
	a := Range{10, 20}
	b := Range{15, 30}
	got := a.Intersect(b)
	if got != (Range{15, 20}) {
		t.Errorf("Intersect = %v", got)
	}
	c := Range{21, 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint ranges should intersect to empty")
	}
}

func TestRangePrefixes(t *testing.T) {
	// A full prefix decomposes to itself.
	p := MustParsePrefix("10.0.0.0/8")
	ps := RangeOf(p).Prefixes()
	if len(ps) != 1 || ps[0] != p {
		t.Errorf("Prefixes(10/8) = %v", ps)
	}
	// 10.0.0.1 - 10.0.0.6 = .1/32 .2/31 .4/31 .6/32
	r := Range{MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.6")}
	ps = r.Prefixes()
	want := []string{"10.0.0.1/32", "10.0.0.2/31", "10.0.0.4/31", "10.0.0.6/32"}
	if len(ps) != len(want) {
		t.Fatalf("Prefixes(%v) = %v", r, ps)
	}
	for i, w := range want {
		if ps[i].String() != w {
			t.Errorf("Prefixes[%d] = %v, want %s", i, ps[i], w)
		}
	}
}

func TestRangePrefixesProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		lo, hi := Addr(a), Addr(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := Range{lo, hi}
		ps := r.Prefixes()
		// Union of prefixes must exactly tile the range, in order, disjoint.
		var total uint64
		cur := lo
		for i, p := range ps {
			if p.First() != cur {
				return false
			}
			total += p.NumAddrs()
			if i < len(ps)-1 {
				cur = p.Last() + 1
			} else if p.Last() != hi {
				return false
			}
		}
		return total == r.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubtractPrefixes(t *testing.T) {
	full := Range{0, ^Addr(0)}
	out := full.SubtractPrefixes([]Prefix{MustParsePrefix("10.0.0.0/8")})
	if len(out) != 2 {
		t.Fatalf("SubtractPrefixes = %v", out)
	}
	if out[0] != (Range{0, MustParseAddr("9.255.255.255")}) {
		t.Errorf("out[0] = %v", out[0])
	}
	if out[1] != (Range{MustParseAddr("11.0.0.0"), ^Addr(0)}) {
		t.Errorf("out[1] = %v", out[1])
	}

	// Subtracting everything leaves nothing.
	out = full.SubtractPrefixes([]Prefix{{}})
	if len(out) != 0 {
		t.Errorf("subtracting default route left %v", out)
	}

	// Subtracting nothing leaves the full range.
	out = full.SubtractPrefixes(nil)
	if len(out) != 1 || out[0] != full {
		t.Errorf("subtracting nothing = %v", out)
	}

	// Overlapping and unsorted holes.
	out = full.SubtractPrefixes([]Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.20.0.0/16"),
		MustParsePrefix("9.0.0.0/8"),
	})
	if len(out) != 2 {
		t.Fatalf("SubtractPrefixes overlapping = %v", out)
	}
	if out[0].Hi != MustParseAddr("8.255.255.255") || out[1].Lo != MustParseAddr("11.0.0.0") {
		t.Errorf("SubtractPrefixes overlapping = %v", out)
	}
}

func TestSubtractPrefixesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		full := Range{0, ^Addr(0)}
		var holes []Prefix
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			holes = append(holes, PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33))))
		}
		out := full.SubtractPrefixes(holes)
		// Sample addresses and verify membership agrees with direct check.
		for s := 0; s < 50; s++ {
			a := Addr(rng.Uint32())
			inHole := false
			for _, h := range holes {
				if h.Contains(a) {
					inHole = true
					break
				}
			}
			inOut := false
			for _, r := range out {
				if r.Contains(a) {
					inOut = true
					break
				}
			}
			if inHole == inOut {
				t.Fatalf("iter %d: addr %v inHole=%v inOut=%v holes=%v out=%v",
					iter, a, inHole, inOut, holes, out)
			}
		}
	}
}

func TestRangeAndPrefixHelpers(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.Mask() != MustParseAddr("255.0.0.0") {
		t.Errorf("Mask = %v", p.Mask())
	}
	if !(Prefix{}).IsDefault() || p.IsDefault() {
		t.Error("IsDefault wrong")
	}
	r := Range{10, 20}
	if !r.ContainsRange(Range{12, 18}) || r.ContainsRange(Range{12, 25}) {
		t.Error("ContainsRange wrong")
	}
	if !r.Overlaps(Range{20, 30}) || r.Overlaps(Range{21, 30}) {
		t.Error("Range.Overlaps wrong")
	}
	if r.String() != "0.0.0.10-0.0.0.20" {
		t.Errorf("Range.String = %q", r.String())
	}
}
