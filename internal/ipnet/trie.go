package ipnet

// Trie is a binary prefix trie mapping Prefix keys to arbitrary values.
// It supports exact insert/lookup, longest-prefix match on addresses, and
// the covering/covered queries the RCDC trie-based checker needs:
// enumerating every stored prefix that contains, or is contained in, a query
// prefix.
//
// The zero value is an empty trie ready to use.
type Trie[V any] struct {
	root *trieNode[V]
	size int
	slab []trieNode[V]
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// newNode hands out nodes from a chunked slab: one bulk allocation per
// chunk instead of one per node, which is what keeps table-trie builds
// off the allocator's hot path when whole fleets are revalidated.
// Pointers into a chunk stay valid forever — exhausting a chunk re-points
// the slab at a fresh one and never moves old nodes; make() zeroes the
// chunk so every handed-out node starts as the zero trieNode.
func (t *Trie[V]) newNode() *trieNode[V] {
	if len(t.slab) == 0 {
		t.slab = make([]trieNode[V], 256)
	}
	n := &t.slab[0]
	t.slab = t.slab[1:]
	return n
}

// Insert stores val under p, replacing any existing value. It reports
// whether the prefix was already present.
func (t *Trie[V]) Insert(p Prefix, val V) (replaced bool) {
	if t.root == nil {
		t.root = t.newNode()
	}
	n := t.root
	for i := uint8(0); i < p.Bits; i++ {
		b := p.Bit(i)
		if n.child[b] == nil {
			n.child[b] = t.newNode()
		}
		n = n.child[b]
	}
	replaced = n.set
	n.val, n.set = val, true
	if !replaced {
		t.size++
	}
	return replaced
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for i := uint8(0); n != nil && i < p.Bits; i++ {
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the entry exactly at p, reporting whether it was present.
// Nodes are not pruned; tries in this codebase are built once and queried.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	for i := uint8(0); n != nil && i < p.Bits; i++ {
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Lookup returns the value for the longest stored prefix containing a.
func (t *Trie[V]) Lookup(a Addr) (p Prefix, v V, ok bool) {
	n := t.root
	for i := uint8(0); n != nil; i++ {
		if n.set {
			p, v, ok = PrefixFrom(a, i), n.val, true
		}
		if i == 32 {
			break
		}
		n = n.child[a>>(31-i)&1]
	}
	return p, v, ok
}

// Ancestors calls fn for every stored prefix that contains q (including q
// itself if stored), from shortest to longest. fn returning false stops the
// walk early.
func (t *Trie[V]) Ancestors(q Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for i := uint8(0); n != nil; i++ {
		if n.set {
			if !fn(PrefixFrom(q.Addr, i), n.val) {
				return
			}
		}
		if i == q.Bits {
			return
		}
		n = n.child[q.Bit(i)]
	}
}

// Descendants calls fn for every stored prefix contained in q (including q
// itself if stored), in lexicographic order. fn returning false stops the
// walk early.
func (t *Trie[V]) Descendants(q Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for i := uint8(0); n != nil && i < q.Bits; i++ {
		n = n.child[q.Bit(i)]
	}
	if n != nil {
		walkTrie(n, q, fn)
	}
}

// Related calls fn for every stored prefix that either contains or is
// contained in q — exactly the candidate rule set of the RCDC trie-based
// algorithm (§2.5.2). Ancestors are visited first (shortest to longest),
// then descendants.
func (t *Trie[V]) Related(q Prefix, fn func(Prefix, V) bool) {
	stop := false
	t.Ancestors(q, func(p Prefix, v V) bool {
		if p == q {
			return true // reported by Descendants to avoid duplication
		}
		if !fn(p, v) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	t.Descendants(q, fn)
}

// HasStrictDescendant reports whether any stored prefix is strictly longer
// than q and contained in it. For the common case (no sub-routes under a
// contract range) this is O(len(q)) with no allocation.
func (t *Trie[V]) HasStrictDescendant(q Prefix) bool {
	n := t.root
	for i := uint8(0); n != nil && i < q.Bits; i++ {
		n = n.child[q.Bit(i)]
	}
	if n == nil {
		return false
	}
	// Any set node strictly below n. Nodes exist only along insert paths,
	// but Delete clears values without pruning, so confirm a set node.
	// Package-level recursion rather than a recursive closure: the
	// closure's self-reference forced a heap allocation per call on the
	// checker fast path, which the zero-alloc steady-state gate flags.
	return hasSetNode(n.child[0]) || hasSetNode(n.child[1])
}

func hasSetNode[V any](m *trieNode[V]) bool {
	if m == nil {
		return false
	}
	if m.set {
		return true
	}
	return hasSetNode(m.child[0]) || hasSetNode(m.child[1])
}

// Walk visits all stored prefixes in lexicographic order.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if t.root != nil {
		walkTrie(t.root, Prefix{}, fn)
	}
}

func walkTrie[V any](n *trieNode[V], p Prefix, fn func(Prefix, V) bool) bool {
	if n.set {
		if !fn(p, n.val) {
			return false
		}
	}
	if p.Bits == 32 {
		return true
	}
	l, r := p.Children()
	if n.child[0] != nil && !walkTrie(n.child[0], l, fn) {
		return false
	}
	if n.child[1] != nil && !walkTrie(n.child[1], r, fn) {
		return false
	}
	return true
}
