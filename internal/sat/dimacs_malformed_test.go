package sat

import (
	"strings"
	"testing"
)

// TestParseDIMACSMalformed feeds ParseDIMACS invalid CNF inputs. Every
// case must return an error that names the offending line — never panic.
func TestParseDIMACSMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty input", "", "missing problem line"},
		{"comments only", "c nothing here\nc still nothing\n", "missing problem line"},
		{"clause before header", "1 2 0\n", "line 1: clause before problem line"},
		{"short problem line", "p cnf 3\n", "line 1: bad problem line"},
		{"wrong format tag", "p sat 3 1\n1 0\n", "line 1: bad problem line"},
		{"negative var count", "p cnf -3 1\n1 0\n", "line 1: bad problem line"},
		{"non-numeric literal", "p cnf 2 1\n1 x 0\n", `line 2: bad literal "x"`},
		{"literal out of range", "p cnf 2 1\n1 3 0\n", "line 2: literal 3 exceeds"},
		{"unterminated clause", "p cnf 2 1\n1 2\n", "unterminated clause"},
		{"clause count mismatch", "p cnf 2 3\n1 0\n", "declared 3 clauses, found 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseDIMACS(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseDIMACS accepted malformed input, solver=%v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
