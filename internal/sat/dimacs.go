package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Comment lines (c ...) are ignored; the problem line (p cnf V C) sizes the
// variable space. Clauses are terminated by 0 and may span lines.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var s *Solver
	var clause []Lit
	clauses := 0
	wantClauses := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: bad problem line %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(f[2])
			nc, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("sat: line %d: bad problem line %q", lineNo, line)
			}
			s = New(nv)
			wantClauses = nc
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("sat: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				clauses++
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > s.NumVars() {
				return nil, fmt.Errorf("sat: line %d: literal %d exceeds declared variables", lineNo, v)
			}
			clause = append(clause, NewLit(v, neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if len(clause) != 0 {
		return nil, fmt.Errorf("sat: unterminated clause")
	}
	if wantClauses >= 0 && clauses != wantClauses {
		return nil, fmt.Errorf("sat: declared %d clauses, found %d", wantClauses, clauses)
	}
	return s, nil
}

// WriteDIMACS serializes a clause list in DIMACS format. It is the inverse
// of ParseDIMACS for formulas that have not yet been solved (learned
// clauses and top-level assignments are not emitted).
func WriteDIMACS(w io.Writer, nVars int, clauses [][]Lit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", nVars, len(clauses))
	for _, c := range clauses {
		for _, l := range c {
			v := l.Var()
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintf(bw, "0\n")
	}
	return bw.Flush()
}
