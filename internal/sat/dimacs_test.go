package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a simple satisfiable formula
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 4 0\n"
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Clauses != 1 {
		t.Errorf("clauses = %d", st.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"",                       // no problem line
		"1 2 0\n",                // clause before problem line
		"p cnf x 1\n1 0\n",       // bad var count
		"p dnf 2 1\n1 0\n",       // not cnf
		"p cnf 2 1\n1 x 0\n",     // bad literal
		"p cnf 2 1\n3 0\n",       // literal out of range
		"p cnf 2 1\n1\n",         // unterminated clause
		"p cnf 2 2\n1 0\n",       // clause count mismatch
		"p cnf 2 1\n1 0\n-2 0\n", // clause count mismatch (extra)
	}
	for i, in := range bad {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		nVars := 3 + rng.Intn(8)
		cls := randomCNF(rng, nVars, 1+rng.Intn(20), 4)
		var lits [][]Lit
		for _, c := range cls {
			var l []Lit
			for _, x := range c {
				l = append(l, lit(x))
			}
			lits = append(lits, l)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, nVars, lits); err != nil {
			t.Fatal(err)
		}
		s, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want := brute(nVars, cls)
		if got != want {
			t.Fatalf("iter %d: round-tripped solve = %v, brute = %v", iter, got, want)
		}
	}
}
