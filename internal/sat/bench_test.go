package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

func pigeonholeClauses(n int) (int, [][]int) {
	nVars := (n + 1) * n
	v := func(p, h int) int { return p*n + h + 1 }
	var cls [][]int
	for p := 0; p <= n; p++ {
		c := make([]int, n)
		for h := 0; h < n; h++ {
			c[h] = v(p, h)
		}
		cls = append(cls, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				cls = append(cls, []int{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return nVars, cls
}

// BenchmarkAblation_Pigeonhole compares the full CDCL configuration
// against the no-learning and no-VSIDS ablations on PHP(n+1, n) — the
// DESIGN.md SAT-level ablation.
func BenchmarkAblation_Pigeonhole(b *testing.B) {
	n := 6
	nVars, cls := pigeonholeClauses(n)
	run := func(b *testing.B, configure func(*Solver)) {
		for i := 0; i < b.N; i++ {
			s := New(nVars)
			configure(s)
			addAll(s, cls)
			ok, err := s.Solve()
			if err != nil || ok {
				b.Fatalf("PHP should be unsat: %v %v", ok, err)
			}
		}
	}
	b.Run("cdcl", func(b *testing.B) { run(b, func(*Solver) {}) })
	b.Run("no-vsids", func(b *testing.B) { run(b, func(s *Solver) { s.DisableVSIDS = true }) })
	b.Run("no-learning", func(b *testing.B) {
		n := 5 // chronological backtracking needs a smaller instance
		nVars, cls := pigeonholeClauses(n)
		for i := 0; i < b.N; i++ {
			s := New(nVars)
			s.DisableLearning = true
			addAll(s, cls)
			ok, err := s.Solve()
			if err != nil || ok {
				b.Fatalf("PHP should be unsat: %v %v", ok, err)
			}
		}
	})
}

// BenchmarkRandom3SAT measures solving near-threshold random 3-SAT.
func BenchmarkRandom3SAT(b *testing.B) {
	for _, nVars := range []int{50, 100} {
		b.Run(fmt.Sprintf("vars=%d", nVars), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			nClauses := int(4.1 * float64(nVars))
			for i := 0; i < b.N; i++ {
				s := New(nVars)
				for j := 0; j < nClauses; j++ {
					var c []Lit
					for k := 0; k < 3; k++ {
						c = append(c, NewLit(1+rng.Intn(nVars), rng.Intn(2) == 0))
					}
					s.AddClause(c...)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalAssumptions measures the SecGuru query pattern: one
// large shared encoding, many retractable assumption queries against it.
// The learned-clause budget must survive across calls (it grows with the
// session instead of resetting), so later queries reuse earlier ones'
// work — this bench regresses if SolveAssuming ever goes back to
// recomputing maxLearned per entry.
func BenchmarkIncrementalAssumptions(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewSource(7))
	build := func() *Solver {
		s := New(n)
		// An implication ladder plus random ternary constraints: enough
		// structure that assumption queries propagate deeply and learn.
		for v := 1; v < n; v++ {
			s.AddClause(NewLit(v, true), NewLit(v+1, false))
		}
		for j := 0; j < 3*n; j++ {
			s.AddClause(
				NewLit(1+rng.Intn(n), rng.Intn(2) == 0),
				NewLit(1+rng.Intn(n), rng.Intn(2) == 0),
				NewLit(1+rng.Intn(n), rng.Intn(2) == 0))
		}
		return s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := build()
		for q := 0; q < 64; q++ {
			v := 1 + (q*31)%n
			// Alternate sat-leaning single assumptions with unsat ladder
			// contradictions (x_1 ∧ ¬x_k forces a failed-assumption core).
			var as []Lit
			if q%2 == 0 {
				as = []Lit{NewLit(v, false)}
			} else {
				as = []Lit{NewLit(1, false), NewLit(v, true)}
			}
			if _, err := s.SolveAssuming(as); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPropagation measures raw unit propagation on a long implication
// chain.
func BenchmarkPropagation(b *testing.B) {
	const n = 10000
	for i := 0; i < b.N; i++ {
		s := New(n)
		for v := 1; v < n; v++ {
			s.AddClause(NewLit(v, true), NewLit(v+1, false))
		}
		s.AddClause(NewLit(1, false))
		ok, err := s.Solve()
		if err != nil || !ok {
			b.Fatal("chain should be sat")
		}
	}
}
