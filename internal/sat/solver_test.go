package sat

import (
	"math/rand"
	"testing"
)

func lit(x int) Lit {
	if x < 0 {
		return NewLit(-x, true)
	}
	return NewLit(x, false)
}

func addAll(s *Solver, cls [][]int) bool {
	for _, c := range cls {
		ls := make([]Lit, len(c))
		for i, x := range c {
			ls[i] = lit(x)
		}
		if !s.AddClause(ls...) {
			return false
		}
	}
	return true
}

func TestLitEncoding(t *testing.T) {
	l := NewLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Errorf("positive literal wrong: %v %v", l.Var(), l.Neg())
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Errorf("negated literal wrong")
	}
	if n.Not() != l {
		t.Errorf("double negation")
	}
}

func TestTrivialSAT(t *testing.T) {
	s := New(2)
	addAll(s, [][]int{{1}, {2}})
	ok, err := s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = %v, %v", ok, err)
	}
	if !s.Value(1) || !s.Value(2) {
		t.Errorf("model: v1=%v v2=%v", s.Value(1), s.Value(2))
	}
}

func TestTrivialUNSAT(t *testing.T) {
	s := New(1)
	if addAll(s, [][]int{{1}, {-1}}) {
		t.Fatal("expected AddClause to detect unsat")
	}
	ok, _ := s.Solve()
	if ok {
		t.Error("unsat formula reported sat")
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	s := New(1)
	if s.AddClause() {
		t.Error("empty clause should yield false")
	}
	ok, _ := s.Solve()
	if ok {
		t.Error("should be unsat")
	}
}

func TestNoClausesSAT(t *testing.T) {
	s := New(3)
	ok, _ := s.Solve()
	if !ok {
		t.Error("empty formula should be sat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New(1)
	s.AddClause(lit(1), lit(-1))
	ok, _ := s.Solve()
	if !ok {
		t.Error("tautology-only formula should be sat")
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ (x2→x3) ∧ ... forces all true.
	const n = 50
	s := New(n)
	s.AddClause(lit(1))
	for i := 1; i < n; i++ {
		s.AddClause(lit(-i), lit(i+1))
	}
	ok, _ := s.Solve()
	if !ok {
		t.Fatal("chain should be sat")
	}
	for i := 1; i <= n; i++ {
		if !s.Value(i) {
			t.Fatalf("v%d should be true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons, n holes — classic UNSAT requiring real search.
	for _, n := range []int{3, 4, 5} {
		s := New((n + 1) * n)
		v := func(p, h int) int { return p*n + h + 1 }
		for p := 0; p <= n; p++ {
			cl := make([]Lit, n)
			for h := 0; h < n; h++ {
				cl[h] = lit(v(p, h))
			}
			s.AddClause(cl...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(lit(-v(p1, h)), lit(-v(p2, h)))
				}
			}
		}
		ok, err := s.Solve()
		if err != nil {
			t.Fatalf("PHP(%d): %v", n, err)
		}
		if ok {
			t.Errorf("PHP(%d) reported sat", n)
		}
	}
}

func TestPigeonholeSATVariant(t *testing.T) {
	// n pigeons, n holes is satisfiable.
	n := 5
	s := New(n * n)
	v := func(p, h int) int { return p*n + h + 1 }
	for p := 0; p < n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = lit(v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(lit(-v(p1, h)), lit(-v(p2, h)))
			}
		}
	}
	ok, _ := s.Solve()
	if !ok {
		t.Fatal("PHP(n,n) should be sat")
	}
	// Verify the model is a valid assignment.
	for p := 0; p < n; p++ {
		cnt := 0
		for h := 0; h < n; h++ {
			if s.Value(v(p, h)) {
				cnt++
			}
		}
		if cnt < 1 {
			t.Errorf("pigeon %d unplaced", p)
		}
	}
}

func TestAssumptions(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3)
	s := New(3)
	addAll(s, [][]int{{1, 2}, {-1, 3}})

	ok, _ := s.SolveAssuming([]Lit{lit(1), lit(-3)})
	if ok {
		t.Error("assuming x1 ∧ ¬x3 should be unsat")
	}
	// Solver must be reusable after a failed assumption set.
	ok, _ = s.SolveAssuming([]Lit{lit(1)})
	if !ok {
		t.Error("assuming x1 should be sat")
	}
	if !s.Value(3) {
		t.Error("x3 must be true when x1 assumed")
	}
	ok, _ = s.SolveAssuming([]Lit{lit(-1), lit(-2)})
	if ok {
		t.Error("assuming ¬x1 ∧ ¬x2 should be unsat")
	}
	ok, _ = s.Solve()
	if !ok {
		t.Error("formula itself is sat")
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := New(2)
	s.AddClause(lit(1), lit(2))
	ok, _ := s.SolveAssuming([]Lit{lit(1), lit(-1)})
	if ok {
		t.Error("contradictory assumptions should be unsat")
	}
}

func TestFailedAssumptions(t *testing.T) {
	// Ladder x1 → x2 → x3 → x4, plus an unconstrained x5.
	s := New(5)
	addAll(s, [][]int{{-1, 2}, {-2, 3}, {-3, 4}})

	has := func(ls []Lit, want Lit) bool {
		for _, l := range ls {
			if l == want {
				return true
			}
		}
		return false
	}

	ok, _ := s.SolveAssuming([]Lit{lit(5), lit(1), lit(-4)})
	if ok {
		t.Fatal("x1 ∧ ¬x4 should be unsat under the ladder")
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("no failed assumptions on assumption-driven unsat")
	}
	// The core must implicate the contradiction and exclude the
	// irrelevant assumption x5.
	if has(failed, lit(5)) {
		t.Errorf("x5 is irrelevant but appears in the core %v", failed)
	}
	if !has(failed, lit(1)) && !has(failed, lit(-4)) {
		t.Errorf("core %v names neither x1 nor ¬x4", failed)
	}

	// Satisfiable call: the failed set must reset to empty.
	if ok, _ = s.SolveAssuming([]Lit{lit(1)}); !ok {
		t.Fatal("x1 alone should be sat")
	}
	if got := s.FailedAssumptions(); len(got) != 0 {
		t.Errorf("failed set after sat call = %v, want empty", got)
	}

	// Contradiction discovered at re-assertion (both polarities assumed):
	// the core is the contradicting pair, found without search.
	if ok, _ = s.SolveAssuming([]Lit{lit(2), lit(-2)}); ok {
		t.Fatal("x2 ∧ ¬x2 should be unsat")
	}
	failed = s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("no failed assumptions on contradictory pair")
	}
}

func TestLearnedBudgetCarriesAcrossCalls(t *testing.T) {
	// A session of incremental calls on a hard instance must not shrink
	// the learned-clause budget between calls: each entry may only raise
	// it to the size floor, so growth earned by reduceDB survives.
	n := 5
	nVars, cls := pigeonholeClauses(n)
	s := New(nVars)
	addAll(s, cls)
	if ok, _ := s.SolveAssuming(nil); ok {
		t.Fatal("PHP should be unsat")
	}
	grown := s.maxLearned
	if floor := len(s.clauses)/3 + 500; grown < floor {
		t.Fatalf("budget %d below the entry floor %d", grown, floor)
	}
	for i := 0; i < 3; i++ {
		if ok, _ := s.SolveAssuming([]Lit{lit(1)}); ok {
			t.Fatal("PHP should stay unsat under assumptions")
		}
		if s.maxLearned < grown {
			t.Fatalf("call %d shrank the budget: %d < %d", i, s.maxLearned, grown)
		}
		grown = s.maxLearned
	}
}

func TestAddVar(t *testing.T) {
	s := New(1)
	v := s.AddVar()
	if v != 2 {
		t.Fatalf("AddVar = %d", v)
	}
	s.AddClause(lit(1))
	s.AddClause(NewLit(v, true))
	ok, _ := s.Solve()
	if !ok {
		t.Fatal("should be sat")
	}
	if !s.Value(1) || s.Value(v) {
		t.Error("wrong model after AddVar")
	}
}

// brute enumerates all assignments to check satisfiability.
func brute(nVars int, cls [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range cls {
			cok := false
			for _, x := range c {
				v := x
				if v < 0 {
					v = -v
				}
				val := m>>(v-1)&1 == 1
				if (x > 0) == val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(s *Solver, cls [][]int) bool {
	for _, c := range cls {
		ok := false
		for _, x := range c {
			v := x
			if v < 0 {
				v = -v
			}
			if (x > 0) == s.Value(v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func randomCNF(rng *rand.Rand, nVars, nClauses, maxLen int) [][]int {
	cls := make([][]int, nClauses)
	for i := range cls {
		n := 1 + rng.Intn(maxLen)
		c := make([]int, n)
		for j := range c {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		cls[i] = c
	}
	return cls
}

// TestRandomVsBrute cross-checks the solver against exhaustive enumeration
// on thousands of small random formulas, and verifies returned models.
func TestRandomVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(30)
		cls := randomCNF(rng, nVars, nClauses, 4)
		want := brute(nVars, cls)
		s := New(nVars)
		addAll(s, cls) // on top-level unsat, Solve also reports false
		got, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cls=%v", iter, got, want, cls)
		}
		if got && !modelSatisfies(s, cls) {
			t.Fatalf("iter %d: model does not satisfy formula: %v", iter, cls)
		}
	}
}

// TestRandomAblations runs the learning/VSIDS ablation modes on the same
// random formulas to confirm they remain sound and complete.
func TestRandomAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		nVars := 3 + rng.Intn(7)
		cls := randomCNF(rng, nVars, 1+rng.Intn(25), 4)
		want := brute(nVars, cls)

		for mode := 0; mode < 3; mode++ {
			s := New(nVars)
			switch mode {
			case 1:
				s.DisableVSIDS = true
			case 2:
				s.DisableLearning = true
			}
			if !addAll(s, cls) {
				if want {
					t.Fatalf("iter %d mode %d: AddClause unsat but brute sat", iter, mode)
				}
				continue
			}
			got, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iter %d mode %d: solver=%v brute=%v cls=%v", iter, mode, got, want, cls)
			}
		}
	}
}

// TestRandomAssumptionsVsBrute checks SolveAssuming against brute force with
// the assumptions added as unit clauses.
func TestRandomAssumptionsVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 800; iter++ {
		nVars := 3 + rng.Intn(7)
		cls := randomCNF(rng, nVars, 1+rng.Intn(20), 4)
		s := New(nVars)
		if !addAll(s, cls) {
			continue
		}
		var asm []Lit
		var asmInts [][]int
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			v := 1 + rng.Intn(nVars)
			neg := rng.Intn(2) == 0
			asm = append(asm, NewLit(v, neg))
			x := v
			if neg {
				x = -v
			}
			asmInts = append(asmInts, []int{x})
		}
		want := brute(nVars, append(append([][]int{}, cls...), asmInts...))
		got, err := s.SolveAssuming(asm)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cls=%v asm=%v", iter, got, want, cls, asmInts)
		}
		// Solver must remain reusable: base formula is sat (we skipped
		// formulas that failed at AddClause, but Solve may still be unsat).
		baseWant := brute(nVars, cls)
		baseGot, _ := s.Solve()
		if baseGot != baseWant {
			t.Fatalf("iter %d: after assumptions solver=%v brute=%v", iter, baseGot, baseWant)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(int64(i)); g != w {
			t.Errorf("luby(%d) = %d, want %d", i, g, w)
		}
	}
}

func TestStats(t *testing.T) {
	s := New(5)
	addAll(s, [][]int{{1, 2}, {-1, 3}, {-3, -2, 4}})
	s.Solve()
	st := s.Stats()
	if st.Clauses != 3 {
		t.Errorf("Clauses = %d", st.Clauses)
	}
}

func TestConflictLimit(t *testing.T) {
	// A hard pigeonhole with a tiny conflict budget must return ErrLimit.
	n := 8
	s := New((n + 1) * n)
	v := func(p, h int) int { return p*n + h + 1 }
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = lit(v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(lit(-v(p1, h)), lit(-v(p2, h)))
			}
		}
	}
	s.MaxConflicts = 10
	_, err := s.Solve()
	if err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
}
