package sat

import (
	"strings"
	"testing"
)

func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n-1 0\n")
	f.Add("p cnf 0 0\n")
	f.Add("1 0\n")
	f.Add("p cnf 3 1\n1 2\n3 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if s.NumVars() > 64 || s.Stats().Clauses > 256 {
			return // keep fuzz iterations cheap
		}
		if _, err := s.Solve(); err != nil {
			t.Fatalf("solve failed on accepted formula: %v", err)
		}
	})
}
