// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver over propositional CNF formulas.
//
// It is the decision procedure underneath internal/bv, which bit-blasts
// quantifier-free bit-vector formulas — the fragment the paper discharges to
// Z3 — into CNF. The solver implements the standard modern architecture:
// two-watched-literal unit propagation, VSIDS-style activity-based decision
// ordering, first-UIP conflict analysis with clause learning, phase saving,
// Luby-sequence restarts, and learned-clause garbage collection.
package sat

import (
	"errors"
	"sort"
)

// Lit is a literal: variable index v (1-based) encoded as 2v for the
// positive literal and 2v+1 for the negation.
type Lit uint32

// NewLit returns the literal for variable v (1-based), negated if neg.
func NewLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the 1-based variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) not() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
	lbd     int32  // literal block distance (glue) at learning time, refined on reuse
	id      uint32 // creation sequence number; deterministic sort tie-break
}

type watcher struct {
	c       *clause
	blocker Lit // a literal of c; if true, the clause is satisfied
}

// binWatch is the specialized watch entry for binary clauses: the
// implied literal is stored inline, so propagation over binaries never
// dereferences the clause or rewrites watch lists.
type binWatch struct {
	other Lit
	c     *clause
}

type varState struct {
	assign   lbool
	level    int32
	reason   *clause // nil for decisions and top-level facts
	act      float64
	phase    bool // saved polarity: last assigned value was true
	heapIdx  int32
	trailPos int32
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	vars       []varState // 1-based; vars[0] unused
	clauses    []*clause
	learned    []*clause
	watches    [][]watcher  // indexed by Lit; clauses of length ≥ 3
	binWatches [][]binWatch // indexed by Lit; binary clauses

	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	heap      []int32 // max-heap of variables ordered by activity
	varInc    float64
	clauseInc float64

	ok           bool // false once UNSAT is derived at level 0
	conflicts    int64
	decisions    int64
	propagations int64
	restarts     int64

	// maxLearned is the learned-clause budget. It is seeded from the
	// problem size on first use and then carried across incremental
	// SolveAssuming calls, so a long assumption session keeps the budget
	// it has grown into instead of thrashing reduceDB.
	maxLearned int
	clauseSeq  uint32 // next clause id

	// Options.
	DisableLearning bool  // ablation: chronological backtracking, no learned clauses
	DisableVSIDS    bool  // ablation: pick lowest-index unassigned var
	MaxConflicts    int64 // 0 = unlimited

	seen     []bool // scratch for conflict analysis
	analyzeL []Lit
	lbdStamp []int64 // scratch for LBD computation, indexed by level
	lbdGen   int64
	failed   []Lit // failing assumption subset of the last SolveAssuming
}

// New returns a solver with nVars variables (numbered 1..nVars). More
// variables may be added later with AddVar.
func New(nVars int) *Solver {
	s := &Solver{
		vars:       make([]varState, nVars+1),
		watches:    make([][]watcher, 2*(nVars+1)),
		binWatches: make([][]binWatch, 2*(nVars+1)),
		varInc:     1,
		clauseInc:  1,
		ok:         true,
		seen:       make([]bool, nVars+1),
	}
	for v := 1; v <= nVars; v++ {
		s.vars[v].heapIdx = -1
		s.heapInsert(int32(v))
	}
	return s
}

// AddVar adds a fresh variable and returns its index.
func (s *Solver) AddVar() int {
	s.vars = append(s.vars, varState{heapIdx: -1})
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.seen = append(s.seen, false)
	v := len(s.vars) - 1
	s.heapInsert(int32(v))
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// ErrLimit is returned by Solve when MaxConflicts is exceeded.
var ErrLimit = errors.New("sat: conflict limit exceeded")

func (s *Solver) value(l Lit) lbool {
	v := s.vars[l.Var()].assign
	if l.Neg() {
		return v.not()
	}
	return v
}

// AddClause adds a clause (a disjunction of literals). It returns false if
// the formula is already unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		// invariant: API misuse by the caller, not reachable from input —
		// ParseDIMACS only adds clauses to a fresh, unsearched solver.
		panic("sat: AddClause after search started")
	}
	// Normalize: drop duplicate and false literals, detect tautology.
	norm := make([]Lit, 0, len(lits))
outer:
	for _, l := range lits {
		if l.Var() <= 0 || l.Var() >= len(s.vars) {
			// invariant: encoder bug, not reachable from input —
			// ParseDIMACS bounds-checks every literal against the declared
			// variable count before constructing a Lit.
			panic("sat: literal out of range")
		}
		switch s.value(l) {
		case lTrue:
			return true // clause already satisfied
		case lFalse:
			continue // drop
		}
		for _, m := range norm {
			if m == l {
				continue outer
			}
			if m == l.Not() {
				return true // tautology
			}
		}
		norm = append(norm, l)
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(norm[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: norm, id: s.nextClauseID()}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *Solver) nextClauseID() uint32 {
	s.clauseSeq++
	return s.clauseSeq
}

func (s *Solver) watchClause(c *clause) {
	// Watch the negations of the first two literals: when one becomes
	// false we visit the clause. Binary clauses go to the specialized
	// inline watch lists instead; they are never moved or removed.
	if len(c.lits) == 2 {
		w0 := c.lits[0].Not()
		w1 := c.lits[1].Not()
		s.binWatches[w0] = append(s.binWatches[w0], binWatch{c.lits[1], c})
		s.binWatches[w1] = append(s.binWatches[w1], binWatch{c.lits[0], c})
		return
	}
	w0 := c.lits[0].Not()
	w1 := c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c, c.lits[0]})
}

func (s *Solver) enqueue(l Lit, reason *clause) {
	vs := &s.vars[l.Var()]
	if l.Neg() {
		vs.assign = lFalse
	} else {
		vs.assign = lTrue
	}
	vs.phase = !l.Neg()
	vs.level = int32(len(s.trailLim))
	vs.reason = reason
	vs.trailPos = int32(len(s.trail))
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause, or
// nil if no conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		// Binary clauses first: the implied literal is inline in the
		// watch entry, so this loop touches no clause memory and never
		// rewrites the list.
		for _, bw := range s.binWatches[l] {
			switch s.value(bw.other) {
			case lFalse:
				s.qhead = len(s.trail)
				return bw.c
			case lUndef:
				s.enqueue(bw.other, bw.c)
			}
		}
		ws := s.watches[l]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal (l.Not()) is at position 1.
			if c.lits[0] == l.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
			} else {
				s.enqueue(first, c)
			}
		}
		s.watches[l] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.vars[v].assign = lUndef
		s.vars[v].reason = nil
		if s.vars[v].heapIdx < 0 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	s.analyzeL = s.analyzeL[:0]
	s.analyzeL = append(s.analyzeL, 0) // placeholder for asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit
	c := conflict

	for {
		for _, q := range c.lits {
			if c != conflict && q == p {
				continue // skip the literal this reason clause asserted
			}
			v := q.Var()
			if s.seen[v] || s.vars[v].level == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.vars[v].level) == s.decisionLevel() {
				counter++
			} else {
				s.analyzeL = append(s.analyzeL, q)
			}
		}
		if c.learned {
			s.bumpClause(c)
			// Glucose-style refinement: a reused learned clause whose
			// current glue is lower than at learning time is promoted.
			if nl := s.computeLBD(c.lits); nl < c.lbd {
				c.lbd = nl
			}
		}
		// Find next literal on the trail at the current level that is seen.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		if counter <= 0 {
			break
		}
		s.seen[p.Var()] = false
		c = s.vars[p.Var()].reason
	}
	s.analyzeL[0] = p.Not()
	// Note: seen[p] stays set through minimization and is cleared below.

	// Minimize: drop literals implied by the rest of the clause (simple
	// self-subsumption via reason clauses). seen flags of dropped literals
	// must still be cleared afterwards, so remember the full set first.
	toClear := make([]Lit, len(s.analyzeL))
	copy(toClear, s.analyzeL)
	out := s.analyzeL[:1]
	for _, q := range s.analyzeL[1:] {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	s.analyzeL = out

	// Backtrack level = second-highest level in the clause.
	btLevel := 0
	if len(s.analyzeL) > 1 {
		maxI := 1
		for i := 2; i < len(s.analyzeL); i++ {
			if s.vars[s.analyzeL[i].Var()].level > s.vars[s.analyzeL[maxI].Var()].level {
				maxI = i
			}
		}
		s.analyzeL[1], s.analyzeL[maxI] = s.analyzeL[maxI], s.analyzeL[1]
		btLevel = int(s.vars[s.analyzeL[1].Var()].level)
	}

	for _, q := range toClear {
		s.seen[q.Var()] = false
	}
	s.seen[p.Var()] = false
	learned := make([]Lit, len(s.analyzeL))
	copy(learned, s.analyzeL)
	return learned, btLevel
}

// redundant reports whether literal q in a learned clause is implied by the
// remaining literals: q's reason exists and all its literals are already
// seen or at level 0.
func (s *Solver) redundant(q Lit) bool {
	r := s.vars[q.Var()].reason
	if r == nil {
		return false
	}
	for _, x := range r.lits {
		if x.Var() == q.Var() {
			continue
		}
		if !s.seen[x.Var()] && s.vars[x.Var()].level != 0 {
			return false
		}
	}
	return true
}

// computeLBD returns the literal block distance of a clause under the
// current assignment: the number of distinct decision levels among its
// literals (Audemard & Simon). Lower glue predicts higher reuse. All
// literals must be assigned.
func (s *Solver) computeLBD(lits []Lit) int32 {
	if need := s.decisionLevel() + 1; len(s.lbdStamp) < need {
		s.lbdStamp = append(s.lbdStamp, make([]int64, need-len(s.lbdStamp))...)
	}
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lvl := s.vars[l.Var()].level
		if int(lvl) < len(s.lbdStamp) && s.lbdStamp[lvl] != s.lbdGen {
			s.lbdStamp[lvl] = s.lbdGen
			n++
		}
	}
	return n
}

func (s *Solver) bumpVar(v int) {
	s.vars[v].act += s.varInc
	if s.vars[v].act > 1e100 {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].act *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.vars[v].heapIdx >= 0 {
		s.heapUp(s.vars[v].heapIdx)
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.clauseInc
	if c.act > 1e20 {
		for _, lc := range s.learned {
			lc.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// pickBranch selects the next decision variable, or 0 if all assigned.
func (s *Solver) pickBranch() int {
	if s.DisableVSIDS {
		for v := 1; v < len(s.vars); v++ {
			if s.vars[v].assign == lUndef {
				return v
			}
		}
		return 0
	}
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.vars[v].assign == lUndef {
			return int(v)
		}
	}
	return 0
}

// Solve determines satisfiability of the clause set. On SAT it returns
// true and the model is readable via Value.
func (s *Solver) Solve() (bool, error) {
	return s.SolveAssuming(nil)
}

// SolveAssuming solves under the given assumption literals. Assumptions are
// treated as temporary unit decisions; the clause database is unchanged, so
// the solver can be reused with different assumptions. When the result is
// false because of the assumptions, FailedAssumptions reports a subset
// responsible.
func (s *Solver) SolveAssuming(assumptions []Lit) (bool, error) {
	s.failed = nil
	if !s.ok {
		return false, nil
	}
	defer s.backtrack(0)

	restartBase := int64(100)
	lubyIdx := int64(0)
	// Seed the learned-clause budget from the problem size, but never
	// shrink a budget grown during earlier incremental calls.
	if floor := len(s.clauses)/3 + 500; s.maxLearned < floor {
		s.maxLearned = floor
	}
	var conflictsAtStart = s.conflicts

	for {
		budget := restartBase * luby(lubyIdx)
		res := s.search(budget, assumptions)
		switch res {
		case lTrue:
			return true, nil
		case lFalse:
			return false, nil
		}
		if s.MaxConflicts > 0 && s.conflicts-conflictsAtStart >= s.MaxConflicts {
			return false, ErrLimit
		}
		lubyIdx++
		s.restarts++
		s.backtrack(0)
	}
}

// search runs CDCL until a result, a conflict budget is exhausted (returns
// lUndef to signal restart), or an assumption fails.
func (s *Solver) search(budget int64, assumptions []Lit) lbool {
	var conflictC int64
	for {
		conf := s.propagate()
		if conf != nil {
			s.conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse
			}
			if s.DisableLearning {
				// Chronological backtracking: flip the most recent decision.
				lvl := s.decisionLevel()
				d := s.trail[s.trailLim[lvl-1]]
				s.backtrack(lvl - 1)
				s.enqueue(d.Not(), nil)
				// The flipped literal has no reason; if it conflicts again at
				// level 0 the loop above catches it.
				continue
			}
			learned, btLevel := s.analyze(conf)
			lbd := s.computeLBD(learned)
			// Assumptions live below the backtrack level only if btLevel
			// respects them; clamp handled by caller re-asserting.
			s.backtrack(btLevel)
			if len(learned) == 1 {
				s.enqueue(learned[0], nil)
			} else {
				c := &clause{lits: learned, learned: true, act: s.clauseInc,
					lbd: lbd, id: s.nextClauseID()}
				s.learned = append(s.learned, c)
				s.watchClause(c)
				s.enqueue(learned[0], c)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999
			if len(s.learned) > s.maxLearned {
				s.reduceDB()
				s.maxLearned += s.maxLearned / 10
			}
			continue
		}
		if conflictC >= budget {
			return lUndef
		}
		if s.MaxConflicts > 0 && conflictC >= s.MaxConflicts {
			return lUndef
		}
		// Re-assert assumptions at successive levels.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level to keep indices aligned
				continue
			case lFalse:
				s.analyzeFinal(a) // ¬a implied by earlier assumptions
				return lFalse
			}
			s.newDecisionLevel()
			s.enqueue(a, nil)
			continue
		}
		v := s.pickBranch()
		if v == 0 {
			return lTrue // all variables assigned, no conflict
		}
		s.decisions++
		s.newDecisionLevel()
		s.enqueue(NewLit(v, !s.vars[v].phase), nil)
	}
}

// analyzeFinal records the subset of the current assumptions responsible
// for forcing ¬p: it walks the implication graph from p's complement back
// to assumption decisions. The result (including p itself) lands in
// s.failed for FailedAssumptions. Valid for the standard configuration;
// the DisableLearning ablation flips decisions without reasons and is not
// analyzed.
func (s *Solver) analyzeFinal(p Lit) {
	s.failed = []Lit{p}
	if s.decisionLevel() == 0 {
		return // ¬p is a top-level fact: p fails on its own
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		s.seen[v] = false
		if r := s.vars[v].reason; r != nil {
			for _, l := range r.lits {
				if l.Var() != v && s.vars[l.Var()].level > 0 {
					s.seen[l.Var()] = true
				}
			}
		} else {
			// A reasonless literal above the root level is an assumption
			// decision (unit learned clauses are always enqueued at level
			// 0, below trailLim[0]).
			s.failed = append(s.failed, s.trail[i])
		}
	}
	s.seen[p.Var()] = false
}

// FailedAssumptions returns the subset of the assumptions passed to the
// last SolveAssuming call that made it unsatisfiable: their conjunction
// with the clause database is already unsat. Valid until the next solve
// call. It is empty when the formula is unsatisfiable regardless of
// assumptions (or the last result was SAT). Callers use it to skip later
// queries whose assumption sets are supersets of a failed core.
func (s *Solver) FailedAssumptions() []Lit {
	return append([]Lit(nil), s.failed...)
}

// reduceDB garbage-collects the learned-clause database using a two-tier
// LBD policy (Audemard & Simon): glue clauses (lbd ≤ 2), binary clauses,
// and clauses locked as reasons are kept unconditionally; the rest is
// ranked worst-first by (higher lbd, lower activity) and the worst half
// removed. Ties break on clause id, keeping the pass deterministic.
func (s *Solver) reduceDB() {
	if len(s.learned) == 0 {
		return
	}
	locked := make(map[*clause]bool)
	for _, l := range s.trail {
		if r := s.vars[l.Var()].reason; r != nil {
			locked[r] = true
		}
	}
	kept := make([]*clause, 0, len(s.learned))
	var cand []*clause
	for _, c := range s.learned {
		if len(c.lits) == 2 || c.lbd <= 2 || locked[c] {
			kept = append(kept, c)
		} else {
			cand = append(cand, c)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].lbd != cand[j].lbd {
			return cand[i].lbd > cand[j].lbd
		}
		if cand[i].act != cand[j].act {
			return cand[i].act < cand[j].act
		}
		return cand[i].id > cand[j].id
	})
	drop := len(cand) / 2
	removed := make(map[*clause]bool, drop)
	for _, c := range cand[:drop] {
		removed[c] = true
	}
	kept = append(kept, cand[drop:]...)
	if len(removed) == 0 {
		s.learned = kept
		return
	}
	for li := range s.watches {
		ws := s.watches[li]
		out := ws[:0]
		for _, w := range ws {
			if !removed[w.c] {
				out = append(out, w)
			}
		}
		s.watches[li] = out
	}
	s.learned = kept
}

// Value returns the assigned value of variable v in the current model.
// Valid after Solve returns true. Unassigned variables report false.
func (s *Solver) Value(v int) bool {
	// During Solve's successful return path the trail still holds the model;
	// Solve defers backtrack(0), so we snapshot into phase: phase holds the
	// last assigned polarity, which for a full model is the model value.
	return s.vars[v].phase
}

// Stats reports cumulative search statistics.
type Stats struct {
	Conflicts, Decisions, Propagations, Restarts int64
	Clauses, Learned                             int
}

// Stats returns a snapshot of solver statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts: s.conflicts, Decisions: s.decisions,
		Propagations: s.propagations, Restarts: s.restarts,
		Clauses: len(s.clauses), Learned: len(s.learned),
	}
}

// luby returns the i'th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	size, seq := int64(1), 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) >> 1
		seq--
		i %= size
	}
	return 1 << seq
}

// Heap operations: max-heap over variable activity.

func (s *Solver) heapLess(a, b int32) bool {
	return s.vars[a].act > s.vars[b].act // max-heap
}

func (s *Solver) heapInsert(v int32) {
	s.vars[v].heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(s.vars[v].heapIdx)
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.vars[s.heap[i]].heapIdx = i
		i = p
	}
	s.heap[i] = v
	s.vars[v].heapIdx = i
}

func (s *Solver) heapPop() int32 {
	top := s.heap[0]
	s.vars[top].heapIdx = -1
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.vars[last].heapIdx = 0
		s.heapDown(0)
	}
	return top
}

func (s *Solver) heapDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.vars[s.heap[i]].heapIdx = i
		i = c
	}
	s.heap[i] = v
	s.vars[v].heapIdx = i
}
