package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dcvalidate/internal/engine"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/topology"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	topo, err := topology.New(topology.Params{
		Name: "dc", Clusters: 2, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(topo, nil)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

// get decodes a JSON response into out and returns the status code.
func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func post(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding POST %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// sample reads a metric value from the registry; labels are alternating
// key/value pairs that must all match.
func sample(reg *obs.Registry, name string, labels ...string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return 0
}

func TestServeEndpoints(t *testing.T) {
	ts, eng := newTestServer(t)
	reg := eng.Metrics()
	tor := "dc-c0-t0-0"
	leaf := "dc-c0-t1-0"
	remote := "dc-c1-t0-0"

	// Liveness first: no sweep has run yet.
	var hz struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Shards     int    `json:"shards"`
	}
	if code := get(t, ts.URL+"/healthz", &hz); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if hz.Status != "ok" || hz.Shards != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	// Cold device query sweeps the fleet; repeats are cache hits.
	var dev struct {
		Device     string   `json:"device"`
		Role       string   `json:"role"`
		Conformant bool     `json:"conformant"`
		Cached     bool     `json:"cached"`
		Violations []string `json:"violations"`
	}
	if code := get(t, ts.URL+"/device?name="+tor, &dev); code != 200 {
		t.Fatalf("/device = %d", code)
	}
	if dev.Device != tor || !dev.Conformant || len(dev.Violations) != 0 {
		t.Fatalf("device answer = %+v", dev)
	}
	if misses := sample(reg, "dcv_serve_cache_misses_total"); misses != 1 {
		t.Fatalf("cache misses after cold query = %v, want 1", misses)
	}
	hitsBefore := sample(reg, "dcv_serve_cache_hits_total")
	for i := 0; i < 3; i++ {
		var repeat struct {
			Cached bool `json:"cached"`
		}
		get(t, ts.URL+"/device?name="+tor, &repeat)
		if !repeat.Cached {
			t.Fatalf("repeat query %d not served from cache", i)
		}
	}
	if hits := sample(reg, "dcv_serve_cache_hits_total"); hits != hitsBefore+3 {
		t.Fatalf("cache hits = %v, want %v", hits, hitsBefore+3)
	}
	if sweeps := sample(reg, "dcv_serve_sweeps_total", "mode", "single"); sweeps != 1 {
		t.Fatalf("sweeps after repeats = %v, want 1 (cached queries must not revalidate)", sweeps)
	}

	// Fleet summary agrees with the healthy topology.
	var sum struct {
		Devices   int  `json:"devices"`
		Healthy   int  `json:"healthy"`
		Violating int  `json:"violating"`
		Cached    bool `json:"cached"`
	}
	if code := get(t, ts.URL+"/summary", &sum); code != 200 {
		t.Fatalf("/summary = %d", code)
	}
	if sum.Violating != 0 || sum.Healthy != sum.Devices || !sum.Cached {
		t.Fatalf("summary = %+v", sum)
	}

	// Healthy reachability between clusters.
	var reach struct {
		Reaches bool `json:"reaches"`
		MinHops int  `json:"min_hops"`
	}
	if code := get(t, ts.URL+"/reach?src="+tor+"&dst="+remote, &reach); code != 200 {
		t.Fatalf("/reach = %d", code)
	}
	if !reach.Reaches || reach.MinHops < 2 {
		t.Fatalf("reach = %+v", reach)
	}

	// Failing a link through the API bumps the generation and invalidates
	// the serving cache: the next device query must re-sweep.
	var applied struct {
		Applied    string `json:"applied"`
		Generation uint64 `json:"generation"`
	}
	if code := post(t, ts.URL+"/link?a="+tor+"&b="+leaf+"&action=fail", &applied); code != 200 {
		t.Fatalf("POST /link = %d", code)
	}
	if applied.Applied != "fail" || applied.Generation == 0 {
		t.Fatalf("apply = %+v", applied)
	}
	var after struct {
		Cached     bool     `json:"cached"`
		Violations []string `json:"violations"`
	}
	get(t, ts.URL+"/device?name="+tor, &after)
	if after.Cached {
		t.Fatal("query after mutation claimed to be cached")
	}
	if sample(reg, "dcv_serve_cache_misses_total") != 2 {
		t.Fatal("mutation did not invalidate the serving cache")
	}

	// The violations feed renders canonical strings.
	var viol struct {
		Generation uint64   `json:"generation"`
		Count      int      `json:"count"`
		Violations []string `json:"violations"`
	}
	if code := get(t, ts.URL+"/violations", &viol); code != 200 {
		t.Fatalf("/violations = %d", code)
	}
	if viol.Count != len(viol.Violations) || viol.Generation != applied.Generation {
		t.Fatalf("violations = %+v", viol)
	}

	// Restore via the session/link endpoints; fleet converges healthy again.
	if code := post(t, ts.URL+"/link?a="+tor+"&b="+leaf+"&action=restore", nil); code != 200 {
		t.Fatalf("POST /link restore = %d", code)
	}
	if code := post(t, ts.URL+"/session?a="+tor+"&b="+leaf+"&action=shut", nil); code != 200 {
		t.Fatalf("POST /session shut = %d", code)
	}
	if code := post(t, ts.URL+"/session?a="+tor+"&b="+leaf+"&action=restore", nil); code != 200 {
		t.Fatalf("POST /session restore = %d", code)
	}
	get(t, ts.URL+"/summary", &sum)
	if sum.Violating != 0 {
		t.Fatalf("restored fleet still violating: %+v", sum)
	}

	// /metrics serves Prometheus text including the serve series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	for _, want := range []string{"dcv_serve_cache_hits_total", "dcv_serve_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	tor := "dc-c0-t0-0"

	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/device", 400},                                   // missing name
		{"GET", "/device?name=ghost", 404},                        // unknown device
		{"GET", "/reach?src=" + tor, 400},                         // missing dst
		{"GET", "/reach?src=" + tor + "&dst=not-a-prefix", 400},   // unresolvable dst
		{"GET", "/reach?src=" + tor + "&dst=203.0.113.0/24", 404}, // unhosted prefix
		{"GET", "/reach?src=ghost&dst=" + tor, 404},               // unknown src
		{"POST", "/link?a=" + tor, 400},                           // missing operands
		{"POST", "/link?a=" + tor + "&b=" + tor + "&action=melt", 400},
		{"POST", "/link?a=ghost&b=" + tor + "&action=fail", 404},         // unknown device
		{"POST", "/session?a=" + tor + "&b=dc-c1-t1-0&action=shut", 400}, // no link between
	}
	for _, c := range cases {
		var code int
		var errBody struct {
			Error string `json:"error"`
		}
		if c.method == "GET" {
			code = get(t, ts.URL+c.path, &errBody)
		} else {
			code = post(t, ts.URL+c.path, &errBody)
		}
		if code != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, code, c.want)
		}
		if errBody.Error == "" {
			t.Errorf("%s %s: no error message in body", c.method, c.path)
		}
	}

	// Wrong method on a registered path is 405 from the mux.
	resp, err := http.Post(ts.URL+"/summary", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /summary = %d, want 405", resp.StatusCode)
	}
}

func TestServeRequestAccounting(t *testing.T) {
	ts, eng := newTestServer(t)
	reg := eng.Metrics()

	for i := 0; i < 2; i++ {
		get(t, ts.URL+"/healthz", nil)
	}
	get(t, ts.URL+"/device?name=ghost", nil)

	if n := sample(reg, "dcv_serve_requests_total", "path", "/healthz", "code", "200"); n != 2 {
		t.Fatalf("requests{/healthz,200} = %v, want 2", n)
	}
	if n := sample(reg, "dcv_serve_requests_total", "path", "/device", "code", "404"); n != 1 {
		t.Fatalf("requests{/device,404} = %v, want 1", n)
	}
}

func TestServeSharded(t *testing.T) {
	topo, err := topology.New(topology.Params{
		Name: "dc", Clusters: 2, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(topo, nil)
	eng.Metrics()
	eng.EnableSharding(3)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	var hz struct {
		Shards int `json:"shards"`
	}
	get(t, ts.URL+"/healthz", &hz)
	if hz.Shards != 3 {
		t.Fatalf("shards = %d, want 3", hz.Shards)
	}
	var sum struct {
		Devices   int `json:"devices"`
		Violating int `json:"violating"`
		Shards    int `json:"shards"`
	}
	if code := get(t, ts.URL+"/summary", &sum); code != 200 {
		t.Fatalf("/summary = %d", code)
	}
	if sum.Shards != 3 || sum.Violating != 0 || sum.Devices != len(topo.Devices) {
		t.Fatalf("sharded summary = %+v", sum)
	}
	if n := sample(eng.Metrics(), "dcv_shard_sweeps_total", "mode", "full"); n != 1 {
		t.Fatalf("shard sweeps = %v, want 1", n)
	}
}
