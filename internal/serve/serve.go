// Package serve exposes the validation engine's query API over HTTP —
// the dcvalidated server. It is a thin, stdlib-only shim: every question
// is answered by the engine's generation-keyed serving caches, so the
// handlers add JSON encoding and request accounting, nothing more.
//
// Endpoints:
//
//	GET  /healthz                     liveness + topology generation
//	GET  /summary                     fleet health aggregate
//	GET  /device?name=X               per-device conformance + violations
//	GET  /reach?src=X&dst=Y           reachability (dst: device or prefix)
//	GET  /violations                  every current violation
//	GET  /metrics                     Prometheus text exposition
//	POST /link?a=X&b=Y&action=fail|restore       flip a link
//	POST /session?a=X&b=Y&action=shut|restore    flip a BGP session
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"dcvalidate/internal/engine"
	"dcvalidate/internal/obs"
)

// Server answers validation queries over HTTP. Create one with New; it
// implements http.Handler and is safe for concurrent use (the engine
// serializes internally; cached queries run concurrently).
type Server struct {
	eng      *engine.Engine
	mux      *http.ServeMux
	requests *obs.CounterVec // dcv_serve_requests_total{path,code}
}

// New wires a server over the engine, instrumenting requests into the
// engine's metric registry (created on demand).
func New(eng *engine.Engine) *Server {
	reg := eng.Metrics()
	s := &Server{
		eng: eng,
		requests: reg.CounterVec("dcv_serve_requests_total",
			"HTTP requests served by path and status code.", "path", "code"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /summary", s.handleSummary)
	s.mux.HandleFunc("GET /device", s.handleDevice)
	s.mux.HandleFunc("GET /reach", s.handleReach)
	s.mux.HandleFunc("GET /violations", s.handleViolations)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("POST /link", s.handleLink)
	s.mux.HandleFunc("POST /session", s.handleSession)
	return s
}

// statusWriter captures the response code for request accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.requests.With(r.URL.Path, fmt.Sprintf("%d", sw.code)).Inc()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps engine errors onto status codes: unresolvable operands
// are 404, malformed requests 400, everything else 500.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown device") ||
		strings.Contains(msg, "no ToR hosts") ||
		strings.Contains(msg, "hosts no prefixes"):
		code = http.StatusNotFound
	case strings.Contains(msg, "neither a device nor a prefix") ||
		strings.Contains(msg, "no link between"):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.eng.Topo().Generation(),
		"shards":     s.eng.Shards(),
	})
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	sum, err := s.eng.Summary()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		badRequest(w, "missing ?name= parameter")
		return
	}
	ans, err := s.eng.QueryDevice(name)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Violations render as their canonical strings: the structured form
	// leaks internal device IDs and prefix encodings that mean nothing to
	// an HTTP caller.
	out := struct {
		*engine.DeviceAnswer
		Violations []string `json:"violations,omitempty"`
	}{DeviceAnswer: ans}
	for _, v := range ans.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, dst := q.Get("src"), q.Get("dst")
	if src == "" || dst == "" {
		badRequest(w, "missing ?src= or ?dst= parameter")
		return
	}
	ans, err := s.eng.QueryReach(src, dst)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleViolations(w http.ResponseWriter, _ *http.Request) {
	vs, gen, err := s.eng.QueryViolations()
	if err != nil {
		writeErr(w, err)
		return
	}
	out := struct {
		Generation uint64   `json:"generation"`
		Count      int      `json:"count"`
		Violations []string `json:"violations,omitempty"`
	}{Generation: gen, Count: len(vs)}
	for _, v := range vs {
		out.Violations = append(out.Violations, v.String())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLink flips a link: POST /link?a=X&b=Y&action=fail|restore.
func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	s.applyChange(w, r, map[string]engine.ChangeKind{
		"fail": engine.FailLink, "restore": engine.RestoreLink,
	})
}

// handleSession flips a BGP session: POST /session?a=X&b=Y&action=shut|restore.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	s.applyChange(w, r, map[string]engine.ChangeKind{
		"shut": engine.ShutSession, "restore": engine.RestoreSession,
	})
}

func (s *Server) applyChange(w http.ResponseWriter, r *http.Request, kinds map[string]engine.ChangeKind) {
	q := r.URL.Query()
	a, b, action := q.Get("a"), q.Get("b"), q.Get("action")
	kind, ok := kinds[action]
	if a == "" || b == "" || !ok {
		allowed := make([]string, 0, len(kinds))
		for k := range kinds {
			allowed = append(allowed, k)
		}
		sort.Strings(allowed) // map iteration order must not leak into responses
		badRequest(w, "need ?a=&b=&action= (action: %s)", strings.Join(allowed, "|"))
		return
	}
	if err := s.eng.Apply(engine.Change{Kind: kind, A: a, B: b}); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied":    action,
		"generation": s.eng.Topo().Generation(),
	})
}
