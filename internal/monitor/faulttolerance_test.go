package monitor

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dcvalidate/internal/faulty"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/topology"
)

// faultyInstance builds a fig3 instance whose source is wrapped in the
// fault injector, returning both.
func faultyInstance(t *testing.T, topo *topology.Topology, mutate func(*faulty.Source)) (*Instance, *faulty.Source) {
	t.Helper()
	dc := NewDatacenter("fig3", topo, nil)
	fs := &faulty.Source{Inner: dc.Source, Seed: 5}
	if mutate != nil {
		mutate(fs)
	}
	dc.Source = fs
	in := NewInstance("ft", dc)
	in.Workers = 4
	return in, fs
}

// TestDegradedModeAcceptance is the issue's acceptance scenario: ≥10%
// transient pull failures plus one persistently dead device over several
// cycles. Healthy-device violations must still be detected, the dead
// device must surface as Unmonitored in CycleStats and the alert queue,
// no cycle may fail fatally, and the aggregated errors must enumerate
// every individual failure.
func TestDegradedModeAcceptance(t *testing.T) {
	const cycles = 4

	// Control: same injected contract violation, no pull faults.
	ctrlTopo := topology.MustNew(topology.Figure3Params())
	ctrlTopo.FailLink(ctrlTopo.ToRs()[0], ctrlTopo.ClusterLeaves(0)[0])
	ctrl := NewInstance("ctrl", NewDatacenter("fig3", ctrlTopo, nil))
	ctrl.Workers = 4
	var ctrlLast CycleStats
	for i := 0; i < cycles; i++ {
		st, err := ctrl.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		ctrlLast = st
	}

	topo := topology.MustNew(topology.Figure3Params())
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	dead := topo.ToRs()[3] // healthy forwarding, dead management plane
	in, fs := faultyInstance(t, topo, func(fs *faulty.Source) {
		fs.TransientRate = 0.15
	})
	fs.KillDevice(dead)
	in.MaxConsecutiveFailures = 2

	tracker := NewAlertTracker()
	var last CycleStats
	totalRetries := 0
	for i := 0; i < cycles; i++ {
		st, err := in.RunCycle()
		if err != nil {
			t.Fatalf("cycle %d returned fatal error: %v", i+1, err) // (c)
		}
		tracker.ObserveCycle(st.Cycle, in.Analytics)
		totalRetries += st.Retries

		// (d) every individual failure is enumerated: the dead device
		// appears each cycle, and the error count matches the failure
		// stats (pull failures produce exactly one error each; bad docs
		// and messages would add more).
		if st.PullFailures < 1 {
			t.Fatalf("cycle %d: dead device not counted in PullFailures", i+1)
		}
		if len(st.Errs) != st.PullFailures {
			t.Errorf("cycle %d: %d errors for %d pull failures", i+1, len(st.Errs), st.PullFailures)
		}
		joined := st.Err()
		if joined == nil || !strings.Contains(joined.Error(), "unreachable") {
			t.Errorf("cycle %d: aggregated error missing dead device: %v", i+1, joined)
		}
		last = st
	}
	if totalRetries == 0 {
		t.Error("15% transient rate produced no retries")
	}

	// (a) detection parity: the healthy devices' contract violations are
	// all still present in the final cycle.
	want := map[topology.DeviceID]int{}
	for _, r := range ctrl.Analytics.UnhealthyInCycle(ctrlLast.Cycle) {
		want[r.Device] = len(r.Violations)
	}
	got := map[topology.DeviceID]int{}
	for _, r := range in.Analytics.UnhealthyInCycle(last.Cycle) {
		if !r.Unmonitored {
			got[r.Device] = len(r.Violations)
		}
	}
	if len(want) == 0 {
		t.Fatal("control run detected nothing")
	}
	for dev, n := range want {
		if got[dev] != n {
			t.Errorf("device %d: %d violations under faults, want %d", dev, got[dev], n)
		}
	}

	// (b) the dead device is Unmonitored in CycleStats and in the alert
	// queue.
	if last.Unmonitored < 1 {
		t.Fatalf("Unmonitored = %d in final cycle", last.Unmonitored)
	}
	foundAlert := false
	for _, al := range tracker.Open() {
		if al.Unmonitored && al.Device == dead {
			foundAlert = true
		}
	}
	if !foundAlert {
		t.Error("dead device has no open telemetry-loss alert")
	}
	um := in.UnmonitoredDevices()
	if len(um) != 1 || um[0].Device != dead {
		t.Errorf("UnmonitoredDevices = %+v, want the dead device", um)
	}
	// Triage routes it to the recovery queue at high risk.
	foundTriage := false
	for _, te := range in.Analytics.Triage(last.Cycle, in.Datacenters) {
		if te.Record.Device == dead && te.Class == ClassTelemetryLoss && te.Queue == QueueDeviceRecovery {
			foundTriage = true
		}
	}
	if !foundTriage {
		t.Error("dead device not triaged to the device-recovery queue")
	}
}

func TestBadQueueMessagesDrainFully(t *testing.T) {
	in, _ := healthyInstance(t)
	if _, err := in.GenerateContracts(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.PullTables(); err != nil {
		t.Fatal(err)
	}
	in.Queue.Push("garbage-no-slash")
	in.Queue.Push("fig3/notanumber")
	in.Queue.Push("nosuchdc/3")

	vs, err := in.ValidateQueued()
	if err == nil {
		t.Fatal("malformed messages produced no error")
	}
	for _, frag := range []string{"garbage-no-slash", "notanumber", "nosuchdc"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregated error missing %q: %v", frag, err)
		}
	}
	if vs.Devices != 20 {
		t.Errorf("devices = %d, want 20 despite bad messages", vs.Devices)
	}
	if in.Queue.Len() != 0 {
		t.Errorf("queue not fully drained: %d left", in.Queue.Len())
	}
	// Nothing leaks into the next pass.
	vs2, err := in.ValidateQueued()
	if err != nil || vs2.Devices != 0 {
		t.Errorf("leftover messages leaked: devices=%d err=%v", vs2.Devices, err)
	}
}

func TestPullFailureStaleCarryForwardThenUnmonitored(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	// A real violation on the device that will go dark: its last-known
	// result must survive while stale.
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	victim := topo.ToRs()[0]
	in, fs := faultyInstance(t, topo, nil)

	s1, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Violations == 0 {
		t.Fatal("violation not detected while healthy")
	}

	fs.KillDevice(victim)
	s2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s2.PullFailures != 1 {
		t.Errorf("pull failures = %d, want 1", s2.PullFailures)
	}
	if s2.Devices != 20 {
		t.Errorf("devices = %d: the failed device silently dropped", s2.Devices)
	}
	if s2.StaleDevices != 1 {
		t.Errorf("stale devices = %d, want 1", s2.StaleDevices)
	}
	if s2.Violations != s1.Violations {
		t.Errorf("carried-forward violations drifted: %d -> %d", s1.Violations, s2.Violations)
	}
	stale := false
	for _, r := range in.Analytics.UnhealthyInCycle(s2.Cycle) {
		if r.Device == victim && r.Stale {
			stale = true
		}
	}
	if !stale {
		t.Error("carried-forward record not flagged stale")
	}
	h, ok := in.Health("fig3", victim)
	if !ok || h.ConsecutiveFailures != 1 || h.Unmonitored {
		t.Errorf("health = %+v after first failure", h)
	}

	// Failures 2 and 3: the default threshold (3) marks it Unmonitored.
	in.RunCycle()
	s4, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s4.Unmonitored != 1 {
		t.Errorf("unmonitored = %d, want 1", s4.Unmonitored)
	}
	if s4.StaleDevices != 0 {
		t.Errorf("stale = %d: unmonitored device still carried forward", s4.StaleDevices)
	}

	// Recovery clears the state and fresh validation resumes.
	fs.ReviveDevice(victim)
	s5, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s5.Unmonitored != 0 || s5.PullFailures != 0 {
		t.Errorf("recovery failed: %+v", s5)
	}
	h, _ = in.Health("fig3", victim)
	if h.Unmonitored || h.ConsecutiveFailures != 0 {
		t.Errorf("health not reset after recovery: %+v", h)
	}
	if len(in.UnmonitoredDevices()) != 0 {
		t.Error("device still listed unmonitored after recovery")
	}
}

func TestMissingStoreDocuments(t *testing.T) {
	in, _ := healthyInstance(t)
	if _, err := in.GenerateContracts(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.PullTables(); err != nil {
		t.Fatal(err)
	}
	in.Queue.Push("fig3/9999") // no documents for this device
	vs, err := in.ValidateQueued()
	if err == nil || !strings.Contains(err.Error(), "missing documents") {
		t.Fatalf("missing documents not reported: %v", err)
	}
	if vs.Devices != 20 {
		t.Errorf("devices = %d: missing-doc message stopped the pass", vs.Devices)
	}
}

// corruptOnce corrupts the stored document of one device while armed.
type corruptOnce struct {
	fib.Source
	dev   topology.DeviceID
	armed bool
}

func (c *corruptOnce) CorruptDoc(dev topology.DeviceID, raw []byte) ([]byte, bool) {
	if !c.armed || dev != c.dev {
		return raw, false
	}
	return raw[:len(raw)/2], true
}

func TestCorruptDocumentFailsThenRecovers(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	dc := NewDatacenter("fig3", topo, nil)
	victim := topo.ToRs()[2]
	cs := &corruptOnce{Source: dc.Source, dev: victim}
	dc.Source = cs
	in := NewInstance("corrupt", dc)
	in.Workers = 4
	in.SkipUnchanged = true

	if _, err := in.RunCycle(); err != nil {
		t.Fatal(err)
	}
	cs.armed = true
	s2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s2.StaleDevices != 1 {
		t.Errorf("stale = %d after corrupt document", s2.StaleDevices)
	}
	if s2.Err() == nil || !strings.Contains(s2.Err().Error(), "validate fig3/") {
		t.Errorf("corrupt document error not aggregated: %v", s2.Err())
	}
	h, _ := in.Health("fig3", victim)
	if h.ConsecutiveFailures != 1 {
		t.Errorf("consecutive failures = %d", h.ConsecutiveFailures)
	}

	// The device recovers: its good document hashes equal to the memo, so
	// the SkipUnchanged path must still reset its health.
	cs.armed = false
	s3, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s3.StaleDevices != 0 || s3.Err() != nil {
		t.Errorf("recovery cycle degraded: stale=%d err=%v", s3.StaleDevices, s3.Err())
	}
	if s3.Skipped != s3.Devices {
		t.Errorf("skipped %d of %d on unchanged cycle", s3.Skipped, s3.Devices)
	}
	h, _ = in.Health("fig3", victim)
	if h.ConsecutiveFailures != 0 || h.LastGoodCycle != s3.Cycle {
		t.Errorf("health not reset by skip path: %+v", h)
	}
}

func TestModeledPullTimeDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		topo := topology.MustNew(topology.Figure3Params())
		in, _ := faultyInstance(t, topo, func(fs *faulty.Source) {
			fs.TransientRate = 0.2
		})
		in.Workers = 8
		ps, _ := in.PullTables()
		return ps.Modeled, ps.Retries
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 {
		t.Errorf("modeled pull time nondeterministic: %v vs %v", m1, m2)
	}
	if r1 != r2 {
		t.Errorf("retries nondeterministic: %d vs %d", r1, r2)
	}
}

func TestFailedPullsConsumeModeledLatency(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	in, fs := faultyInstance(t, topo, nil)
	for i := range topo.Devices {
		fs.KillDevice(topology.DeviceID(i))
	}
	in.Workers = 1
	in.MaxPullRetries = 0
	ps, err := in.PullTables()
	if err == nil {
		t.Fatal("all-dead fleet reported no error")
	}
	if len(ps.Failed) != 20 {
		t.Fatalf("failed = %d, want 20", len(ps.Failed))
	}
	// 20 failed attempts at >= 200ms each must still be accounted.
	if ps.Modeled < 4*time.Second {
		t.Errorf("failed pulls consumed no modeled latency: %v", ps.Modeled)
	}
}

func TestSlowPullsTimeOut(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	in, _ := faultyInstance(t, topo, func(fs *faulty.Source) {
		fs.SlowRate = 1.0
		fs.SlowDelay = 10 * time.Second
	})
	in.MaxPullRetries = 0
	in.PullTimeout = 2 * time.Second
	ps, err := in.PullTables()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("slow pulls did not time out: %v", err)
	}
	if len(ps.Failed) != 20 {
		t.Errorf("failed = %d, want all 20", len(ps.Failed))
	}
	// Each attempt spends exactly the timeout budget on the virtual clock.
	if ps.Modeled < 20*2*time.Second/time.Duration(in.workers()) {
		t.Errorf("timeout budget not accounted: %v", ps.Modeled)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	dc := NewDatacenter("fig3", topo, nil)
	dc.Source = &failFirstSource{Source: dc.Source, failed: map[topology.DeviceID]bool{}}
	in := NewInstance("retry", dc)
	in.Workers = 4
	ps, err := in.PullTables()
	if err != nil {
		t.Fatalf("retries did not absorb transient failures: %v", err)
	}
	if ps.Retries != 20 {
		t.Errorf("retries = %d, want one per device", ps.Retries)
	}
	if len(ps.Failed) != 0 {
		t.Errorf("failed = %d", len(ps.Failed))
	}
}

// failFirstSource fails each device's first pull, then succeeds.
type failFirstSource struct {
	fib.Source
	mu     sync.Mutex
	failed map[topology.DeviceID]bool
}

func (s *failFirstSource) Table(dev topology.DeviceID) (*fib.Table, error) {
	s.mu.Lock()
	first := !s.failed[dev]
	s.failed[dev] = true
	s.mu.Unlock()
	if first {
		return nil, fmt.Errorf("flaky rpc to device %d", dev)
	}
	return s.Source.Table(dev)
}

// Ensure the bgp synth still refreshes through the fault wrapper: a link
// failure after instance construction must be observed.
func TestRefreshForwardsThroughFaultInjector(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	in, _ := faultyInstance(t, topo, nil)
	s1, err := in.RunCycle()
	if err != nil || s1.Violations != 0 {
		t.Fatalf("healthy baseline: %v %d", err, s1.Violations)
	}
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	s2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Violations == 0 {
		t.Error("link failure invisible through fault injector (Refresh not forwarded)")
	}
}
