package monitor

import (
	"fmt"
	"sort"

	"dcvalidate/internal/topology"
)

// Per-device health tracking: the monitoring service runs against O(10K)
// flaky production devices (§2.6.1), so a failed observation must degrade
// rather than discard. A device that fails a cycle keeps its last-known-
// good validation result alive (flagged stale) for a bounded number of
// cycles; a device that fails persistently is marked Unmonitored and
// escalated into the alert queue as telemetry loss — monitoring blindness
// is itself an error condition worth triaging.

// DeviceHealth tracks one device's monitoring liveness across cycles.
type DeviceHealth struct {
	// ConsecutiveFailures counts failed cycles since the last successful
	// fresh validation.
	ConsecutiveFailures int
	// LastGoodCycle is the last cycle with a successful validation (0 if
	// the device never succeeded).
	LastGoodCycle int
	// Unmonitored is set once ConsecutiveFailures reaches the instance
	// threshold; it clears on the next successful observation.
	Unmonitored bool
	// LastErr is the most recent failure (nil while healthy).
	LastErr error
}

// DeviceError is one per-device failure attributed to its datacenter.
type DeviceError struct {
	Datacenter string
	Device     topology.DeviceID
	Err        error
}

func (e DeviceError) Error() string {
	return fmt.Sprintf("monitor: device %s/%d: %v", e.Datacenter, e.Device, e.Err)
}

func (e DeviceError) Unwrap() error { return e.Err }

// noteFailure records one failed device observation: it advances the
// consecutive-failure count, carries the last-known-good result forward
// (flagged stale) while within the staleness bound, and past the failure
// threshold marks the device Unmonitored and emits the telemetry-loss
// record the alert tracker and triage escalate. Callers hold the
// validator's stats lock.
func (in *Instance) noteFailure(vs *ValidateStats, dcName string, dev topology.DeviceID, err error) {
	vs.Errs = append(vs.Errs, err)
	key := memoKey(dcName, int32(dev))
	h := in.health[key]
	if h == nil {
		h = &DeviceHealth{}
		in.health[key] = h
	}
	h.ConsecutiveFailures++
	h.LastErr = err
	if h.ConsecutiveFailures >= in.maxConsecutive() {
		h.Unmonitored = true
	}
	if h.Unmonitored {
		vs.Unmonitored++
		in.Analytics.Ingest(Record{
			Cycle: in.cycle, Datacenter: dcName, Device: dev, Unmonitored: true,
		})
		return
	}
	if prev, ok := in.memo[key]; ok && h.LastGoodCycle > 0 && in.cycle-h.LastGoodCycle <= in.staleBound() {
		rec := prev.record
		rec.Cycle = in.cycle
		rec.Stale = true
		vs.Devices++
		vs.Stale++
		vs.Violations += len(rec.Violations)
		in.Analytics.Ingest(rec)
	}
}

// noteSuccess resets a device's health after a successful observation
// (fresh validation or an unchanged-document skip). Callers hold the
// validator's stats lock.
func (in *Instance) noteSuccess(key string) {
	h := in.health[key]
	if h == nil {
		h = &DeviceHealth{}
		in.health[key] = h
	}
	h.ConsecutiveFailures = 0
	h.LastGoodCycle = in.cycle
	h.Unmonitored = false
	h.LastErr = nil
}

// Health returns a snapshot of a device's health record. The zero value
// (and ok=false) means the device has never been observed failing or
// succeeding. Call between cycles; not synchronized with a running one.
func (in *Instance) Health(dc string, dev topology.DeviceID) (DeviceHealth, bool) {
	h, ok := in.health[memoKey(dc, int32(dev))]
	if !ok {
		return DeviceHealth{}, false
	}
	return *h, true
}

// UnmonitoredDevices lists the devices currently past the failure
// threshold, ordered for stable output. Call between cycles.
func (in *Instance) UnmonitoredDevices() []DeviceError {
	var out []DeviceError
	for _, dc := range in.Datacenters {
		for i := range dc.Facts.Devices {
			dev := dc.Facts.Devices[i].ID
			if h, ok := in.health[memoKey(dc.Name, int32(dev))]; ok && h.Unmonitored {
				out = append(out, DeviceError{Datacenter: dc.Name, Device: dev, Err: h.LastErr})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Datacenter != out[j].Datacenter {
			return out[i].Datacenter < out[j].Datacenter
		}
		return out[i].Device < out[j].Device
	})
	return out
}
