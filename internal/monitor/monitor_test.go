package monitor

import (
	"testing"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func healthyInstance(t *testing.T) (*Instance, *topology.Topology) {
	t.Helper()
	topo := topology.MustNew(topology.Figure3Params())
	in := NewInstance("inst-0", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	return in, topo
}

func TestCycleOnHealthyDatacenter(t *testing.T) {
	in, _ := healthyInstance(t)
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Devices != 20 {
		t.Errorf("devices = %d, want 20", stats.Devices)
	}
	if stats.Contracts != 92 {
		t.Errorf("contracts = %d, want 92", stats.Contracts)
	}
	if stats.Violations != 0 {
		t.Errorf("violations = %d", stats.Violations)
	}
	if stats.ModeledPullTime <= 0 {
		t.Error("modeled pull time not accounted")
	}
	if in.Queue.Len() != 0 {
		t.Error("queue not drained")
	}
	if got := in.Store.Len("tables"); got != 20 {
		t.Errorf("stored tables = %d", got)
	}
}

func TestCycleDetectsLinkFailure(t *testing.T) {
	in, topo := healthyInstance(t)
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	// Reflect the live state in the source (synth reads topology state).
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations == 0 {
		t.Fatal("link failure not detected")
	}
	high, low := in.Analytics.SeverityCounts(stats.Cycle)
	if high+low != stats.Violations {
		t.Errorf("severity counts %d+%d != %d", high, low, stats.Violations)
	}
	unhealthy := in.Analytics.UnhealthyInCycle(stats.Cycle)
	if len(unhealthy) == 0 {
		t.Error("no unhealthy records in analytics")
	}
}

func TestModeledPullTimeScalesWithWorkers(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	in1 := NewInstance("one", NewDatacenter("fig3", topo, nil))
	in1.Workers = 1
	p1, err := in1.PullTables()
	if err != nil {
		t.Fatal(err)
	}
	in8 := NewInstance("eight", NewDatacenter("fig3", topo, nil))
	in8.Workers = 8
	p8, err := in8.PullTables()
	if err != nil {
		t.Fatal(err)
	}
	m1, m8 := p1.Modeled, p8.Modeled
	// 20 devices at 200-800ms each: a single worker needs >= 20*200ms.
	if m1 < 4*time.Second {
		t.Errorf("single-worker modeled time = %v", m1)
	}
	if m8 >= m1/2 {
		t.Errorf("8 workers modeled %v, 1 worker %v — no speedup", m8, m1)
	}
}

func TestTriageClassification(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	cfg := map[topology.DeviceID]*bgp.DeviceConfig{}
	l2dev := topo.ClusterLeaves(1)[0]
	cfg[l2dev] = &bgp.DeviceConfig{SessionsDisabled: true}
	polDev := topo.ClusterLeaves(1)[1]
	cfg[polDev] = &bgp.DeviceConfig{RejectDefaultIn: true}

	dc := NewDatacenter("fig3", topo, cfg)
	// Hardware failure and operation drift.
	hwTor := topo.ToRs()[0]
	topo.FailLink(hwTor, topo.ClusterLeaves(0)[0])
	driftTor := topo.ToRs()[1]
	topo.ShutSession(driftTor, topo.ClusterLeaves(0)[1])

	in := NewInstance("inst", dc)
	in.Workers = 4
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
	if len(errs) == 0 {
		t.Fatal("no triaged errors")
	}
	classOf := map[topology.DeviceID]ErrorClass{}
	queueOf := map[topology.DeviceID]RemediationQueueName{}
	for _, te := range errs {
		classOf[te.Record.Device] = te.Class
		queueOf[te.Record.Device] = te.Queue
	}
	if classOf[l2dev] != ClassL2PortBug || queueOf[l2dev] != QueueInvestigation {
		t.Errorf("l2 device: %v %v", classOf[l2dev], queueOf[l2dev])
	}
	if classOf[polDev] != ClassPolicyError || queueOf[polDev] != QueueConfigReview {
		t.Errorf("policy device: %v %v", classOf[polDev], queueOf[polDev])
	}
	if classOf[hwTor] != ClassHardwareFailure || queueOf[hwTor] != QueueReplaceCable {
		t.Errorf("hw tor: %v %v", classOf[hwTor], queueOf[hwTor])
	}
	if classOf[driftTor] != ClassOperationDrift || queueOf[driftTor] != QueueAutoUnshut {
		t.Errorf("drift tor: %v %v", classOf[driftTor], queueOf[driftTor])
	}
	// High-risk errors come first (§2.6.4).
	seenLow := false
	for _, te := range errs {
		if te.Severity == rcdc.LowRisk {
			seenLow = true
		} else if seenLow {
			t.Fatal("high-risk error after low-risk in triage order")
		}
	}
}

func TestAutoRemediation(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	dc := NewDatacenter("fig3", topo, nil)
	tor := topo.ToRs()[0]
	leafGood := topo.ClusterLeaves(0)[0]
	leafLossy := topo.ClusterLeaves(0)[1]
	topo.ShutSession(tor, leafGood)
	topo.ShutSession(tor, leafLossy)
	lossyLink, _ := topo.LinkBetween(tor, leafLossy)
	lossy := map[topology.LinkID]bool{lossyLink.ID: true}

	in := NewInstance("inst", dc)
	in.Workers = 2
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
	restored, escalated := AutoRemediate(errs, in.Datacenters, lossy)
	if restored != 1 {
		t.Errorf("restored = %d, want 1", restored)
	}
	if len(escalated) == 0 {
		t.Error("lossy link not escalated")
	}
	goodLink, _ := topo.LinkBetween(tor, leafGood)
	if !goodLink.SessionUp {
		t.Error("healthy session not unshut")
	}
	if lossyLink.SessionUp {
		t.Error("lossy session wrongly unshut")
	}

	// After remediation the next cycle shows fewer violations.
	stats2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Violations >= stats.Violations {
		t.Errorf("violations did not decrease: %d -> %d", stats.Violations, stats2.Violations)
	}
}

func TestRIBFIBTriage(t *testing.T) {
	// A device whose FIB lost default hops with healthy links classifies
	// as RIB-FIB inconsistency. Build via a corrupting source.
	topo := topology.MustNew(topology.Figure3Params())
	dc := NewDatacenter("fig3", topo, nil)
	victim := topo.ToRs()[2]
	dc.Source = truncatingSource{inner: dc.Source, dev: victim, keep: 1}

	in := NewInstance("inst", dc)
	in.Workers = 2
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
	found := false
	for _, te := range errs {
		if te.Record.Device == victim {
			found = true
			if te.Class != ClassRIBFIBBug {
				t.Errorf("class = %v", te.Class)
			}
			if te.Severity != rcdc.HighRisk {
				t.Error("single-hop default should be high risk")
			}
		}
	}
	if !found {
		t.Fatal("RIB-FIB corruption not detected")
	}
}

type truncatingSource struct {
	inner fib.Source
	dev   topology.DeviceID
	keep  int
}

func (s truncatingSource) Table(d topology.DeviceID) (*fib.Table, error) {
	t, err := s.inner.Table(d)
	if err != nil || d != s.dev {
		return t, err
	}
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.Prefix.IsDefault() && len(e.NextHops) > s.keep {
			e.NextHops = e.NextHops[:s.keep]
		}
	}
	return t, nil
}
