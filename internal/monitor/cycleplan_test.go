package monitor

import (
	"testing"

	"dcvalidate/internal/faulty"
	"dcvalidate/internal/topology"
)

func incrementalInstance(t *testing.T) (*Instance, *topology.Topology) {
	t.Helper()
	topo := topology.MustNew(topology.Params{
		Clusters: 3, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
		PrefixesPerToR: 1,
	})
	in := NewInstance("inc", NewDatacenter("dc", topo, nil))
	in.Workers = 4
	in.Incremental = true
	in.FullSweepEvery = 100
	return in, topo
}

func TestIncrementalCycles(t *testing.T) {
	in, topo := incrementalInstance(t)
	n := len(topo.Devices)

	// Cycle 1 is always a full sweep.
	s1, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if !s1.FullSweep || s1.Devices != n || s1.CarriedForward != 0 {
		t.Fatalf("cycle 1 = %+v, want full sweep over %d devices", s1, n)
	}

	// Steady state: nothing changed, nothing pulled, everything carried.
	s2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s2.FullSweep || s2.DirtyDevices != 0 || s2.CarriedForward != n || s2.Devices != n {
		t.Fatalf("steady-state cycle = %+v, want 0 dirty / %d carried", s2, n)
	}
	if s2.Violations != s1.Violations {
		t.Fatalf("steady-state violations %d != full-sweep %d", s2.Violations, s1.Violations)
	}

	// A link failure dirties its blast radius only.
	topo.FailLink(topo.ClusterLeaves(0)[0], topo.Spines()[0])
	s3, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s3.FullSweep || s3.DirtyDevices == 0 || s3.DirtyDevices >= n {
		t.Fatalf("post-failure cycle = %+v, want a proper dirty subset", s3)
	}
	if s3.Devices != n {
		t.Fatalf("post-failure cycle covers %d devices, want %d", s3.Devices, n)
	}

	// A forced full sweep over the unchanged state agrees on violations.
	in.FullSweepEvery = 1
	s4, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if !s4.FullSweep {
		t.Fatalf("cycle = %+v, want safety-net full sweep", s4)
	}
	if s4.Violations != s3.Violations {
		t.Fatalf("incremental violations %d != full-sweep violations %d",
			s3.Violations, s4.Violations)
	}
}

func TestIncrementalKeepsRetryingFailingDevices(t *testing.T) {
	in, topo := incrementalInstance(t)
	dc := in.Datacenters[0]
	fs := &faulty.Source{Inner: dc.Source, Seed: 7}
	dc.Source = fs
	dead := topo.ToRs()[0]

	if _, err := in.RunCycle(); err != nil {
		t.Fatal(err)
	}
	fs.KillDevice(dead)
	// The failure cycle: the device is outside any blast radius, but its
	// pull was never attempted last cycle either — kill only shows up once
	// the device is pulled. Force one observation via the safety net.
	in.FullSweepEvery = 1
	s2, err := in.RunCycle() // forced full sweep, sees the failure
	if err != nil {
		t.Fatal(err)
	}
	if s2.PullFailures != 1 {
		t.Fatalf("full sweep saw %d pull failures, want 1", s2.PullFailures)
	}
	in.FullSweepEvery = 100
	// Incremental cycles must keep re-attempting the failing device even
	// with an empty blast radius.
	s3, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s3.FullSweep || s3.DirtyDevices != 1 || s3.PullFailures != 1 {
		t.Fatalf("cycle 3 = %+v, want the failing device re-attempted", s3)
	}
	fs.ReviveDevice(dead)
	s4, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s4.PullFailures != 0 || s4.DirtyDevices != 1 {
		t.Fatalf("cycle 4 = %+v, want the revived device freshly validated", s4)
	}
	if h, ok := in.Health("dc", dead); !ok || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after revival = %+v", h)
	}
	// Fully recovered: back to zero-work steady state.
	s5, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s5.DirtyDevices != 0 || s5.CarriedForward != len(topo.Devices) {
		t.Fatalf("cycle 5 = %+v, want steady state", s5)
	}
}
