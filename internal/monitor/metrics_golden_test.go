package monitor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsGoldenExposition runs a fixed monitoring scenario — full
// sweep, quiet delta cycle, link-repair delta cycle — entirely on a
// virtual clock and compares the registry's Prometheus exposition
// byte-for-byte against testdata/metrics_golden.prom. Everything that
// feeds the registry is deterministic here: the pull latency model is
// pre-seeded per job, the modeled makespan is computed over a pinned
// worker count, and the virtual clock never advances, so any diff means
// recording or exposition changed behavior. Regenerate with
// `go test ./internal/monitor -run Golden -update`.
func TestMetricsGoldenExposition(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	in := NewInstance("golden", NewDatacenter("fig3", topo, nil))
	// Workers is part of the golden contract: the modeled pull makespan
	// depends on the pool size, so it must not float with GOMAXPROCS.
	in.Workers = 2
	in.Clock = clock.NewVirtual(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	in.SkipUnchanged = true
	in.Incremental = true
	reg := obs.NewRegistry()
	in.EnableObservability(reg)

	for cycle := 1; cycle <= 2; cycle++ {
		if _, err := in.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	topo.RestoreAll() // journaled link repair -> bounded delta cycle
	if _, err := in.RunCycle(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("exposition is not byte-deterministic across writes")
	}

	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
