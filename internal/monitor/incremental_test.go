package monitor

import (
	"testing"

	"dcvalidate/internal/topology"
)

func TestSkipUnchangedCarriesResultsForward(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	in := NewInstance("inc", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	in.SkipUnchanged = true

	s1, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Skipped != 0 {
		t.Errorf("first cycle skipped %d", s1.Skipped)
	}
	if s1.Violations == 0 {
		t.Fatal("failure not detected")
	}

	// Nothing changed: the second cycle skips every device but reports the
	// same violations, and analytics still shows the unhealthy records.
	s2, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Skipped != s2.Devices {
		t.Errorf("skipped %d of %d devices", s2.Skipped, s2.Devices)
	}
	if s2.Violations != s1.Violations {
		t.Errorf("violations drifted: %d -> %d", s1.Violations, s2.Violations)
	}
	if got := len(in.Analytics.UnhealthyInCycle(s2.Cycle)); got == 0 {
		t.Error("carried-forward records missing from analytics")
	}

	// Repair the link: only the affected devices revalidate.
	topo.RestoreAll()
	s3, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if s3.Violations != 0 {
		t.Errorf("violations after repair: %d", s3.Violations)
	}
	if s3.Skipped == 0 || s3.Skipped == s3.Devices {
		t.Errorf("expected partial skip, got %d of %d", s3.Skipped, s3.Devices)
	}
}

func TestSkipUnchangedOffRevalidatesEverything(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	in := NewInstance("all", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	for i := 0; i < 2; i++ {
		stats, err := in.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Skipped != 0 {
			t.Errorf("cycle %d skipped %d without SkipUnchanged", i, stats.Skipped)
		}
	}
}

func TestServicePartitioning(t *testing.T) {
	var dcs []*Datacenter
	for i := 0; i < 3; i++ {
		p := topology.Figure3Params()
		p.Name = "dc" + string(rune('a'+i))
		topo := topology.MustNew(p)
		if i == 1 {
			topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
		}
		dcs = append(dcs, NewDatacenter(p.Name, topo, nil))
	}
	svc := NewService(2, dcs...)
	if len(svc.Instances) != 2 {
		t.Fatalf("instances = %d", len(svc.Instances))
	}
	if len(svc.Instances[0].Datacenters)+len(svc.Instances[1].Datacenters) != 3 {
		t.Fatal("datacenters not partitioned")
	}
	stats, err := svc.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatal("stats per instance missing")
	}
	total := 0
	for _, st := range stats {
		total += st.Devices
	}
	if total != 3*20 {
		t.Errorf("total devices = %d", total)
	}
	if TotalViolations(stats) == 0 {
		t.Error("failure in dcb not detected by the service")
	}
	errs := svc.Triage()
	if len(errs) == 0 {
		t.Error("service-level triage empty")
	}
	// High-risk first across instances.
	seenLow := false
	for _, te := range errs {
		if te.Severity == 0 {
			seenLow = true
		} else if seenLow {
			t.Fatal("triage not ordered by severity")
		}
	}
}

func TestServiceSingleInstanceClamp(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	svc := NewService(5, NewDatacenter("only", topo, nil))
	if len(svc.Instances) != 1 {
		t.Errorf("instances = %d, want clamp to 1", len(svc.Instances))
	}
	if _, err := svc.RunCycle(); err != nil {
		t.Fatal(err)
	}
}
