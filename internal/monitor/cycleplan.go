package monitor

import (
	"fmt"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/topology"
)

// Incremental cycle planning: steady-state monitoring cycles see very few
// topology changes, so instead of re-pulling the whole fleet the instance
// consumes each datacenter's change journal, computes the blast radius of
// the window (internal/delta), and schedules only those devices — plus
// any device currently failing, whose retry loop must keep running.
// Everything else provably converged to the same tables it had last
// cycle, so the previous results are carried forward wholesale.

func (in *Instance) fullSweepEvery() int {
	if in.FullSweepEvery > 0 {
		return in.FullSweepEvery
	}
	return 16
}

// cyclePlan decides what this cycle pulls. It returns (nil, true) for a
// full sweep — always without Incremental, and with it on the first
// cycle, on the periodic safety net, when a journal was truncated past
// the last observed generation, or when the blast radius is unbounded.
// Otherwise it returns the per-DC dirty device lists (ascending device
// order) and false.
func (in *Instance) cyclePlan() (map[string][]topology.DeviceID, bool) {
	if !in.Incremental || in.lastGen == nil {
		return nil, true
	}
	if in.cycle-in.lastFullSweep >= in.fullSweepEvery() {
		return nil, true
	}
	plan := make(map[string][]topology.DeviceID, len(in.Datacenters))
	for _, dc := range in.Datacenters {
		changes, ok := dc.Topo.ChangesSince(in.lastGen[dc.Name])
		if !ok {
			return nil, true // journal truncated: can't bound the blast
		}
		ds := delta.Compute(dc.Topo, changes, delta.Options{
			UnboundedConfig: bgp.ConfigUnbounded(dc.Cfg),
			Metrics:         in.deltaM,
		})
		if ds.Full() {
			return nil, true
		}
		dirty := make(map[topology.DeviceID]bool, ds.Count())
		for _, d := range ds.Devices() {
			dirty[d] = true
		}
		var devs []topology.DeviceID
		for i := range dc.Facts.Devices {
			id := dc.Facts.Devices[i].ID
			if dirty[id] {
				devs = append(devs, id)
				continue
			}
			// Failing devices stay in the plan regardless of the blast
			// radius: their retry/backoff and Unmonitored escalation must
			// keep running until they recover.
			if h := in.health[memoKey(dc.Name, int32(id))]; h != nil &&
				(h.ConsecutiveFailures > 0 || h.Unmonitored) {
				devs = append(devs, id)
			}
		}
		plan[dc.Name] = devs
	}
	return plan, false
}

// carryForward re-ingests the previous result of every device the cycle
// did not attempt. Those devices are outside every journaled change's
// blast radius, so their converged tables are provably identical to last
// cycle's: the carried record counts as a successful observation (it
// keeps analytics streaks and staleness bookkeeping continuous). Called
// between ValidateQueued and the end of the cycle; no cycle work is
// concurrent with it.
func (in *Instance) carryForward(stats *CycleStats) {
	for _, dc := range in.Datacenters {
		for i := range dc.Facts.Devices {
			id := dc.Facts.Devices[i].ID
			key := memoKey(dc.Name, int32(id))
			if in.observed[key] {
				continue
			}
			m, ok := in.memo[key]
			if !ok {
				// Unreachable in a healthy instance: a device with no
				// memoized result has never validated, so its health
				// record keeps it in every plan. Surface it rather than
				// letting the device silently vanish from the cycle.
				stats.Errs = append(stats.Errs,
					fmt.Errorf("monitor: no prior result to carry forward for %s/%d", dc.Name, id))
				continue
			}
			rec := m.record
			rec.Cycle = in.cycle
			in.Analytics.Ingest(rec)
			in.noteSuccess(key)
			stats.Devices++
			stats.CarriedForward++
			stats.Violations += len(rec.Violations)
		}
	}
}
