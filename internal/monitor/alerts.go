package monitor

import (
	"fmt"
	"sort"

	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Alert lifecycle tracking (§2.6.4: "Validation reports are used to derive
// automatic alerts, that in turn trigger an automated triaging process").
// Violations are deduplicated into alerts keyed by (datacenter, device,
// contract, kind); an alert opens when its violation first appears in a
// cycle and resolves when a later cycle no longer reports it. The open
// counts per cycle are the real-pipeline version of the Figure 6 burndown.

// AlertState is the lifecycle stage of an alert.
type AlertState uint8

const (
	AlertOpen AlertState = iota
	AlertResolved
)

func (s AlertState) String() string {
	if s == AlertResolved {
		return "resolved"
	}
	return "open"
}

// Alert is one deduplicated, tracked violation — or, for Unmonitored
// alerts, a device the pipeline has lost sight of (telemetry loss).
type Alert struct {
	Key        string
	Datacenter string
	Device     topology.DeviceID
	Violation  rcdc.Violation
	Severity   rcdc.Severity
	State      AlertState
	FirstCycle int
	LastCycle  int // last cycle the violation was observed
	// ResolvedCycle is set when the alert resolves.
	ResolvedCycle int
	// Unmonitored marks a telemetry-loss alert: the Violation field is
	// zero because no fresh observation of the device exists.
	Unmonitored bool
}

// AlertTracker folds per-cycle validation records into alert lifecycles.
type AlertTracker struct {
	alerts map[string]*Alert
	// series records (cycle, open-high, open-low).
	series []AlertPoint
}

// AlertPoint is one cycle of the burndown series.
type AlertPoint struct {
	Cycle             int
	OpenHigh, OpenLow int
	Opened, Resolved  int
}

// NewAlertTracker returns an empty tracker.
func NewAlertTracker() *AlertTracker {
	return &AlertTracker{alerts: map[string]*Alert{}}
}

func alertKey(dc string, v rcdc.Violation) string {
	return fmt.Sprintf("%s|%d|%s|%v|%v", dc, v.Device, v.Contract.Kind, v.Contract.Prefix, v.Kind)
}

func alertKeyUnmonitored(dc string, dev topology.DeviceID) string {
	return fmt.Sprintf("%s|%d|telemetry-loss", dc, dev)
}

// ObserveCycle ingests one cycle's analytics records: present violations
// open or refresh alerts; open alerts without a matching violation
// resolve. Returns that cycle's burndown point.
func (t *AlertTracker) ObserveCycle(cycle int, a *Analytics) AlertPoint {
	seen := map[string]bool{}
	pt := AlertPoint{Cycle: cycle}
	for _, r := range a.UnhealthyInCycle(cycle) {
		if r.Unmonitored {
			// Telemetry loss: the device is unobservable, which is an
			// alert in its own right (a dead device cannot report its
			// violations). High risk until monitoring recovers.
			k := alertKeyUnmonitored(r.Datacenter, r.Device)
			seen[k] = true
			al, ok := t.alerts[k]
			if !ok || al.State == AlertResolved {
				t.alerts[k] = &Alert{
					Key: k, Datacenter: r.Datacenter, Device: r.Device,
					Severity: rcdc.HighRisk, Unmonitored: true,
					State: AlertOpen, FirstCycle: cycle, LastCycle: cycle,
				}
				pt.Opened++
				continue
			}
			al.LastCycle = cycle
			continue
		}
		for _, v := range r.Violations {
			k := alertKey(r.Datacenter, v)
			seen[k] = true
			al, ok := t.alerts[k]
			if !ok || al.State == AlertResolved {
				t.alerts[k] = &Alert{
					Key: k, Datacenter: r.Datacenter, Device: v.Device,
					Violation: v, Severity: v.Severity,
					State: AlertOpen, FirstCycle: cycle, LastCycle: cycle,
				}
				pt.Opened++
				continue
			}
			al.LastCycle = cycle
		}
	}
	for _, al := range t.alerts {
		if al.State == AlertOpen && !seen[al.Key] {
			al.State = AlertResolved
			al.ResolvedCycle = cycle
			pt.Resolved++
		}
	}
	for _, al := range t.alerts {
		if al.State != AlertOpen {
			continue
		}
		if al.Severity == rcdc.HighRisk {
			pt.OpenHigh++
		} else {
			pt.OpenLow++
		}
	}
	t.series = append(t.series, pt)
	return pt
}

// Open returns the open alerts, high risk first, oldest first within a
// severity (the remediation priority order of §2.6.4).
func (t *AlertTracker) Open() []*Alert {
	var out []*Alert
	for _, al := range t.alerts {
		if al.State == AlertOpen {
			out = append(out, al)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].FirstCycle != out[j].FirstCycle {
			return out[i].FirstCycle < out[j].FirstCycle
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Series returns the per-cycle burndown points observed so far.
func (t *AlertTracker) Series() []AlertPoint { return t.series }
