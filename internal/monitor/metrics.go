package monitor

import (
	"time"

	"dcvalidate/internal/delta"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
)

// Metrics is the monitoring-pipeline instrumentation bundle: one
// observation set per RunCycle, covering throughput (devices,
// violations), the fault-tolerance machinery (retries, pull failures,
// stale carry-forward, Unmonitored escalation), and the incremental
// planner (dirty-set sizes, carried-forward counts). All recording is
// nil-receiver safe so call sites stay unconditional.
type Metrics struct {
	cycles     *obs.CounterVec // dcv_monitor_cycles_total{sweep}
	cycleDur   *obs.Histogram  // dcv_monitor_cycle_seconds
	pullDur    *obs.Histogram  // dcv_monitor_modeled_pull_seconds
	devices    *obs.Counter    // dcv_monitor_devices_total
	violations *obs.Counter    // dcv_monitor_violations_total
	skipped    *obs.Counter    // dcv_monitor_skipped_total
	retries    *obs.Counter    // dcv_monitor_pull_retries_total
	pullFails  *obs.Counter    // dcv_monitor_pull_failures_total
	stale      *obs.Counter    // dcv_monitor_stale_devices_total
	carried    *obs.Counter    // dcv_monitor_carried_forward_total
	unmon      *obs.Gauge      // dcv_monitor_unmonitored_devices
	dirty      *obs.Histogram  // dcv_monitor_dirty_devices
}

// NewMetrics registers the monitor metric families in r. Idempotent per
// registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		cycles: r.CounterVec("dcv_monitor_cycles_total",
			"Completed monitoring cycles by sweep kind.", "sweep"),
		cycleDur: r.Histogram("dcv_monitor_cycle_seconds",
			"End-to-end RunCycle duration on the instance clock.", obs.LatencyBuckets),
		pullDur: r.Histogram("dcv_monitor_modeled_pull_seconds",
			"Modeled wall time of the cycle's table pulls.", obs.LatencyBuckets),
		devices: r.Counter("dcv_monitor_devices_total",
			"Devices accounted per cycle (validated, skipped, or carried)."),
		violations: r.Counter("dcv_monitor_violations_total",
			"Contract violations reported across cycles."),
		skipped: r.Counter("dcv_monitor_skipped_total",
			"Devices skipped because table and contracts were unchanged."),
		retries: r.Counter("dcv_monitor_pull_retries_total",
			"Pull retry attempts across the fleet."),
		pullFails: r.Counter("dcv_monitor_pull_failures_total",
			"Devices whose pull failed after exhausting retries."),
		stale: r.Counter("dcv_monitor_stale_devices_total",
			"Results carried forward stale after a failed observation."),
		carried: r.Counter("dcv_monitor_carried_forward_total",
			"Clean carry-forwards outside the incremental dirty set."),
		unmon: r.Gauge("dcv_monitor_unmonitored_devices",
			"Devices currently past the consecutive-failure threshold."),
		dirty: r.Histogram("dcv_monitor_dirty_devices",
			"Devices scheduled for revalidation per cycle.", obs.SizeBuckets),
	}
}

func (m *Metrics) observeCycle(s *CycleStats, dur time.Duration) {
	if m == nil {
		return
	}
	sweep := "delta"
	if s.FullSweep {
		sweep = "full"
	}
	m.cycles.With(sweep).Inc()
	m.cycleDur.ObserveDuration(dur)
	m.pullDur.ObserveDuration(s.ModeledPullTime)
	m.devices.Add(uint64(s.Devices))
	m.violations.Add(uint64(s.Violations))
	m.skipped.Add(uint64(s.Skipped))
	m.retries.Add(uint64(s.Retries))
	m.pullFails.Add(uint64(s.PullFailures))
	m.stale.Add(uint64(s.StaleDevices))
	m.carried.Add(uint64(s.CarriedForward))
	m.unmon.Set(float64(s.Unmonitored))
	m.dirty.Observe(float64(s.DirtyDevices))
}

// EnableObservability wires the instance — and the validators and
// blast-radius computations it runs — to record into r, and attaches a
// tracer (on the instance clock) whose ring holds the most recent cycle
// spans. Call before the first cycle; calling again with the same
// registry is harmless (registration is idempotent).
func (in *Instance) EnableObservability(r *obs.Registry) {
	in.Metrics = NewMetrics(r)
	in.rcdcM = rcdc.NewMetrics(r)
	in.deltaM = delta.NewMetrics(r)
	if in.Tracer == nil {
		in.Tracer = obs.NewTracer(in.Clock, 256)
	}
}
