// Package monitor implements the RCDC live-monitoring service of §2.6:
// three micro-services (device contract generator, routing table puller,
// routing table validator) glued by a NoSQL store and a cloud queue
// (Figure 5), feeding a stream-analytics system that drives alerts,
// automated triage, and remediation queues (§2.6.4). The storage and
// queueing substrates are in-memory stand-ins with the same interfaces and
// data flow; the paper's claims concern the validation pipeline, not the
// storage backend.
package monitor

import (
	"fmt"
	"sync"
)

// Store is the NoSQL document store substitute: namespaced key-value
// buckets, safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{buckets: make(map[string]map[string][]byte)}
}

// Put stores a document.
func (s *Store) Put(bucket, key string, doc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[bucket]
	if b == nil {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	b[key] = cp
}

// Get retrieves a document.
func (s *Store) Get(bucket, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc, ok := s.buckets[bucket][key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	return cp, true
}

// Len reports how many documents a bucket holds.
func (s *Store) Len(bucket string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buckets[bucket])
}

// Queue is the cloud-queue substitute: an unbounded FIFO of notification
// messages, safe for concurrent use.
type Queue struct {
	mu    sync.Mutex
	items []string
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Push appends a message.
func (q *Queue) Push(msg string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, msg)
}

// Pop removes and returns the oldest message.
func (q *Queue) Pop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return "", false
	}
	msg := q.items[0]
	q.items = q.items[1:]
	return msg, true
}

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// bucket and key naming helpers shared by the micro-services.
func contractsKey(dc string, dev int32) string { return fmt.Sprintf("%s/contracts/%d", dc, dev) }
func tableKey(dc string, dev int32) string     { return fmt.Sprintf("%s/table/%d", dc, dev) }
