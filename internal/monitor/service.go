package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Datacenter is one monitored datacenter: its metadata facts, the device
// fleet to pull routing tables from, and (for triage) the live topology
// and device configurations.
type Datacenter struct {
	Name   string
	Topo   *topology.Topology
	Facts  *metadata.Facts
	Source fib.Source
	Cfg    map[topology.DeviceID]*bgp.DeviceConfig
}

// NewDatacenter bundles a topology with its derived facts and a synthesized
// FIB source honoring cfg.
func NewDatacenter(name string, topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig) *Datacenter {
	return &Datacenter{
		Name: name, Topo: topo, Facts: metadata.FromTopology(topo),
		Source: bgp.NewSynth(topo, cfg), Cfg: cfg,
	}
}

// Instance is one horizontally-scaled service instance (§2.6.1): it
// monitors the devices of a set of datacenters, chosen so that the store
// and queue are close to the devices. Production instances watch O(10K)
// devices, any of which may be flaky: pulls are retried with backoff,
// failing devices degrade to carried-forward state instead of vanishing,
// and persistently dead devices are escalated as Unmonitored.
type Instance struct {
	Name        string
	Datacenters []*Datacenter
	Store       *Store
	Queue       *Queue
	Analytics   *Analytics

	// Workers bounds pull/validate parallelism (0 = GOMAXPROCS).
	Workers int
	// Checker selects the per-device verification engine (nil = the
	// prefix-trie checker). dcmon's -engine flag installs the SMT or
	// packet-equivalence-class checker here; all three produce identical
	// verdicts, so the choice only moves the time/space trade-off.
	Checker rcdc.Checker
	// Clock times the real (not modeled) phases of a cycle, e.g.
	// CycleStats.ValidateTime; nil means the system clock. Tests inject
	// a clock.Virtual for reproducible stats.
	Clock clock.Clock
	// SkipUnchanged enables incremental validation: devices whose stored
	// table and contract documents are unchanged since their last
	// validation are skipped and their previous result carried forward.
	SkipUnchanged bool
	// Incremental enables journal-driven delta cycles: after an initial
	// full sweep, each cycle consumes the topology change journal, computes
	// the blast radius of the changes (internal/delta), and pulls/validates
	// only those devices plus any currently failing ones. Every other
	// device's previous result is carried forward. Cycles fall back to a
	// full sweep whenever the blast radius is unbounded or the journal was
	// truncated; FullSweepEvery adds a periodic safety net on top.
	Incremental bool
	// FullSweepEvery forces a full sweep every N cycles while Incremental
	// is set, bounding the damage of any blast-radius underestimate
	// (0 = default 16).
	FullSweepEvery int
	// PullLatencyMin/Max model the 200–800ms per-device routing table
	// fetch of §2.6.1. Latencies are accounted virtually (no sleeping) and
	// reported in CycleStats.ModeledPullTime.
	PullLatencyMin, PullLatencyMax time.Duration

	// MaxPullRetries bounds the retry attempts after a failed pull (a
	// device gets 1+MaxPullRetries attempts per cycle).
	MaxPullRetries int
	// PullRetryBase is the backoff before the first retry; it doubles per
	// retry with deterministic jitter, accounted on the virtual clock.
	PullRetryBase time.Duration
	// PullTimeout is the per-attempt latency budget: an attempt whose
	// modeled latency exceeds it is abandoned (the budget is still spent)
	// and counts as a failure. 0 disables the budget. Raise it alongside
	// PullLatencyMax when using a slower latency model.
	PullTimeout time.Duration
	// MaxConsecutiveFailures marks a device Unmonitored after that many
	// consecutive failed cycles, escalating it to the alert queue
	// (0 = default 3).
	MaxConsecutiveFailures int
	// StaleCycles bounds last-known-good carry-forward: a failing device's
	// previous validation result is re-ingested (flagged stale) for up to
	// this many cycles past its last success (0 = default 3).
	StaleCycles int

	// Metrics, when non-nil, records per-cycle pipeline metrics; Tracer,
	// when non-nil, records a span per cycle with pull/validate children.
	// EnableObservability wires both plus the per-subsystem bundles below.
	Metrics *Metrics
	Tracer  *obs.Tracer

	rcdcM  *rcdc.Metrics  // instruments the per-device validators
	deltaM *delta.Metrics // instruments cyclePlan's blast radii

	rng        *rand.Rand
	cycle      int
	memo       map[string]deviceMemo    // incremental-validation cache
	health     map[string]*DeviceHealth // per-device liveness tracking
	pullFailed []DeviceError            // latest pull pass's casualties

	// Incremental-cycle bookkeeping (see cyclePlan / carryForward).
	lastGen        map[string]uint64 // per-DC topology generation at the last cycle's pull
	lastFullSweep  int               // cycle number of the last full sweep
	lastFactsGen   uint64            // summed facts generation at the last contract push
	contractsTotal int               // contract count from the last push
	observed       map[string]bool   // devices attempted (pulled) this cycle
}

// NewInstance creates a service instance with the §2.6.1 default latency
// model and the default fault-tolerance policy.
func NewInstance(name string, dcs ...*Datacenter) *Instance {
	return &Instance{
		Name: name, Datacenters: dcs,
		Store: NewStore(), Queue: NewQueue(), Analytics: NewAnalytics(),
		PullLatencyMin:         200 * time.Millisecond,
		PullLatencyMax:         800 * time.Millisecond,
		MaxPullRetries:         2,
		PullRetryBase:          50 * time.Millisecond,
		PullTimeout:            2 * time.Second,
		MaxConsecutiveFailures: 3,
		StaleCycles:            3,
		rng:                    rand.New(rand.NewSource(1)),
	}
}

func (in *Instance) workers() int {
	if in.Workers > 0 {
		return in.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (in *Instance) maxConsecutive() int {
	if in.MaxConsecutiveFailures > 0 {
		return in.MaxConsecutiveFailures
	}
	return 3
}

func (in *Instance) staleBound() int {
	if in.StaleCycles > 0 {
		return in.StaleCycles
	}
	return 3
}

// CycleStats reports one monitoring cycle.
type CycleStats struct {
	Cycle      int
	Devices    int
	Contracts  int
	Violations int
	// Skipped counts devices whose validation was skipped because their
	// table and contracts were unchanged (SkipUnchanged).
	Skipped int
	// PullFailures counts devices whose table pull failed after
	// exhausting retries this cycle.
	PullFailures int
	// Retries counts pull retry attempts across the fleet.
	Retries int
	// StaleDevices counts devices whose result was carried forward from
	// their last good validation because this cycle's observation failed.
	StaleDevices int
	// Unmonitored counts devices past the consecutive-failure threshold;
	// each is escalated into the alert queue as telemetry loss.
	Unmonitored int
	// FullSweep reports whether this cycle pulled and validated the whole
	// fleet (always true without Incremental; with it, true on the first
	// cycle, on the FullSweepEvery safety net, and on unbounded-blast or
	// journal-truncation fallbacks).
	FullSweep bool
	// DirtyDevices counts the devices scheduled for revalidation this
	// cycle: the blast radius of the journaled changes plus currently
	// failing devices (equals Devices on a full sweep).
	DirtyDevices int
	// CarriedForward counts devices outside the dirty set whose previous
	// result was re-ingested unchanged (Incremental cycles only).
	CarriedForward int
	// ModeledPullTime is the wall time the table pulls would take given
	// the per-device fetch latency model (including failed attempts and
	// retry backoff) and the worker parallelism.
	ModeledPullTime time.Duration
	// ValidateTime is the actual CPU-side validation wall time.
	ValidateTime time.Duration
	// Errs enumerates every per-device and per-message failure of the
	// cycle. The cycle degrades gracefully instead of aborting: RunCycle
	// only returns an error for faults that stop the whole pipeline.
	Errs []error
}

// Err joins the cycle's accumulated per-device errors (nil when clean).
func (s *CycleStats) Err() error { return errors.Join(s.Errs...) }

// document types persisted in the store.

type contractDoc struct {
	Kind     contracts.Kind      `json:"kind"`
	Prefix   string              `json:"prefix"`
	NextHops []topology.DeviceID `json:"nextHops"`
}

type tableDoc struct {
	Entries []entryDoc `json:"entries"`
}

type entryDoc struct {
	Prefix    string              `json:"prefix"`
	NextHops  []topology.DeviceID `json:"nextHops,omitempty"`
	Connected bool                `json:"connected,omitempty"`
}

// GenerateContracts is the device contract generator micro-service: it
// consumes metadata facts, generates the comprehensive contract set for
// each device, and pushes them to the store.
func (in *Instance) GenerateContracts() (int, error) {
	total := 0
	for _, dc := range in.Datacenters {
		gen := contracts.NewGenerator(dc.Facts)
		for i := range dc.Facts.Devices {
			id := dc.Facts.Devices[i].ID
			set := gen.ForDevice(id)
			docs := make([]contractDoc, len(set.Contracts))
			for j, c := range set.Contracts {
				docs[j] = contractDoc{Kind: c.Kind, Prefix: c.Prefix.String(), NextHops: c.NextHops}
			}
			raw, err := json.Marshal(docs)
			if err != nil {
				return total, err
			}
			in.Store.Put("contracts", contractsKey(dc.Name, int32(id)), raw)
			total += len(docs)
		}
	}
	return total, nil
}

// refresher is implemented by FIB sources whose derived state must be
// recomputed from live topology before a pull cycle (e.g. bgp.Synth).
type refresher interface{ Refresh() }

// pullDelayer is implemented by fault-injecting sources that add modeled
// latency to a pull attempt (slow-pull injection); the puller adds it to
// the sampled fetch latency on the virtual clock.
type pullDelayer interface {
	LastPullDelay(topology.DeviceID) time.Duration
}

// docCorrupter is implemented by fault-injecting sources that corrupt a
// marshaled table document between serialization and the store write.
type docCorrupter interface {
	CorruptDoc(topology.DeviceID, []byte) ([]byte, bool)
}

// PullStats reports one pass of the routing table puller.
type PullStats struct {
	// Modeled is the virtual wall time of the pass: the makespan of the
	// per-device attempt latencies — failed attempts and retry backoff
	// included — over the worker pool.
	Modeled time.Duration
	// Retries counts retry attempts across all devices.
	Retries int
	// Failed lists devices whose pull failed after exhausting retries;
	// their previous store documents are left in place and flagged stale
	// by the validator rather than silently reused.
	Failed []DeviceError
}

// PullTables is the routing table puller micro-service: it fetches every
// device's routing table with retry/backoff, stores it, and posts a
// notification to the queue. Fetch latency is sampled per device and
// accounted virtually. The returned error aggregates every device that
// failed after retries (also listed in PullStats.Failed); the pass itself
// always completes.
func (in *Instance) PullTables() (PullStats, error) {
	return in.pullDevices(nil)
}

// pullDevices runs one pull pass over the planned device set (per-DC
// device lists keyed by datacenter name; nil means every device of every
// datacenter). Sources are always refreshed — derived converged state is
// cheap to recompute and must reflect the live topology even for devices
// outside the plan.
func (in *Instance) pullDevices(plan map[string][]topology.DeviceID) (PullStats, error) {
	for _, dc := range in.Datacenters {
		if r, ok := dc.Source.(refresher); ok {
			r.Refresh()
		}
	}
	type job struct {
		dc  *Datacenter
		dev topology.DeviceID
		rng *rand.Rand
	}
	var list []job
	for _, dc := range in.Datacenters {
		if plan != nil {
			for _, dev := range plan[dc.Name] {
				list = append(list, job{dc: dc, dev: dev})
			}
			continue
		}
		for i := range dc.Facts.Devices {
			list = append(list, job{dc: dc, dev: dc.Facts.Devices[i].ID})
		}
	}
	if in.observed != nil {
		for _, j := range list {
			in.observed[memoKey(j.dc.Name, int32(j.dev))] = true
		}
	}
	// Pre-seed a per-job RNG in dispatch order: every latency and jitter
	// draw is then independent of worker scheduling, so ModeledPullTime is
	// deterministic across runs for identical seeds.
	for i := range list {
		list[i].rng = rand.New(rand.NewSource(in.rng.Int63()))
	}
	times := make([]time.Duration, len(list))
	retries := make([]int, len(list))
	fails := make([]error, len(list))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < in.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				j := list[idx]
				times[idx], retries[idx], fails[idx] = in.pullOne(j.dc, j.dev, j.rng)
			}
		}()
	}
	for i := range list {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var ps PullStats
	var errs []error
	for i, j := range list {
		ps.Retries += retries[i]
		if fails[i] != nil {
			de := DeviceError{Datacenter: j.dc.Name, Device: j.dev, Err: fails[i]}
			ps.Failed = append(ps.Failed, de)
			errs = append(errs, de)
		}
	}
	// The modeled wall time is the makespan of the per-device pull times
	// over the worker pool (greedy least-loaded assignment in dispatch
	// order), independent of actual goroutine scheduling.
	busy := make([]time.Duration, in.workers())
	for _, t := range times {
		least := 0
		for w := 1; w < len(busy); w++ {
			if busy[w] < busy[least] {
				least = w
			}
		}
		busy[least] += t
	}
	for _, b := range busy {
		if b > ps.Modeled {
			ps.Modeled = b
		}
	}
	in.pullFailed = ps.Failed
	return ps, errors.Join(errs...)
}

// pullOne fetches one device's table under the virtual latency model,
// retrying with exponential backoff + jitter, and stores the document on
// success. It returns the modeled time spent (every attempt and backoff
// counts, succeeded or not) and the retry count.
func (in *Instance) pullOne(dc *Datacenter, dev topology.DeviceID, rng *rand.Rand) (spent time.Duration, retried int, err error) {
	for attempt := 0; ; attempt++ {
		lat := in.PullLatencyMin
		if span := in.PullLatencyMax - in.PullLatencyMin; span > 0 {
			lat += time.Duration(rng.Int63n(int64(span)))
		}
		var tbl *fib.Table
		tbl, err = dc.Source.Table(dev)
		if d, ok := dc.Source.(pullDelayer); ok {
			lat += d.LastPullDelay(dev)
		}
		if in.PullTimeout > 0 && lat > in.PullTimeout {
			// The attempt is abandoned at the budget; the budget is spent.
			lat = in.PullTimeout
			if err == nil {
				err = fmt.Errorf("monitor: pull of %s/%d timed out after %v", dc.Name, dev, in.PullTimeout)
			}
		}
		spent += lat
		if err == nil {
			err = in.storeTable(dc, dev, tbl)
		}
		if err == nil {
			return spent, retried, nil
		}
		if attempt >= in.MaxPullRetries {
			return spent, retried, err
		}
		back := in.PullRetryBase << attempt
		if back > 0 {
			back += time.Duration(rng.Int63n(int64(back)/2 + 1))
		}
		spent += back
		retried++
	}
}

// storeTable serializes a pulled table into the store and notifies the
// validator queue.
func (in *Instance) storeTable(dc *Datacenter, dev topology.DeviceID, tbl *fib.Table) error {
	doc := tableDoc{}
	for _, e := range tbl.Entries {
		doc.Entries = append(doc.Entries, entryDoc{
			Prefix: e.Prefix.String(), NextHops: e.NextHops, Connected: e.Connected,
		})
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if c, ok := dc.Source.(docCorrupter); ok {
		if bad, did := c.CorruptDoc(dev, raw); did {
			raw = bad
		}
	}
	in.Store.Put("tables", tableKey(dc.Name, int32(dev)), raw)
	in.Queue.Push(fmt.Sprintf("%s/%d", dc.Name, dev))
	return nil
}

// ValidateStats reports one pass of the routing table validator.
type ValidateStats struct {
	Devices, Violations, Skipped int
	// Stale counts devices validated by carrying the last-known-good
	// result forward after a failed observation.
	Stale int
	// Unmonitored counts devices past the consecutive-failure threshold.
	Unmonitored int
	// Errs enumerates every per-message and per-device failure.
	Errs []error
}

// ValidateQueued is the routing table validator micro-service: it drains
// the notification queue completely, loads each device's table and
// contracts from the store, validates them, and pushes the results to the
// analytics stream. Malformed messages and per-device failures (missing or
// corrupt documents) are recorded and the rest keeps validating; failed
// devices fall back to their last-known-good result (flagged stale) and
// are escalated as Unmonitored once persistently failing. With
// SkipUnchanged set, devices whose documents hash identically to their
// last validated state are skipped and the previous result carried
// forward (re-ingested under the current cycle). Devices reported failed
// by the preceding PullTables pass are accounted here too, so they never
// silently vanish from the cycle.
func (in *Instance) ValidateQueued() (ValidateStats, error) {
	dcByName := make(map[string]*Datacenter, len(in.Datacenters))
	for _, dc := range in.Datacenters {
		dcByName[dc.Name] = dc
	}
	type msgT struct {
		dc  *Datacenter
		dev topology.DeviceID
	}
	var vs ValidateStats
	var msgs []msgT
	// Drain the queue fully even past malformed messages: a partial drain
	// would leak messages into the next cycle and double-count devices.
	for {
		m, ok := in.Queue.Pop()
		if !ok {
			break
		}
		i := lastSlash(m)
		if i < 0 {
			vs.Errs = append(vs.Errs, fmt.Errorf("monitor: bad message %q", m))
			continue
		}
		dev, err := strconv.Atoi(m[i+1:])
		if err != nil {
			vs.Errs = append(vs.Errs, fmt.Errorf("monitor: bad message %q", m))
			continue
		}
		dc, ok := dcByName[m[:i]]
		if !ok {
			vs.Errs = append(vs.Errs, fmt.Errorf("monitor: unknown datacenter %q", m[:i]))
			continue
		}
		msgs = append(msgs, msgT{dc, topology.DeviceID(dev)})
	}

	if in.memo == nil {
		in.memo = make(map[string]deviceMemo)
	}
	if in.health == nil {
		in.health = make(map[string]*DeviceHealth)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, in.workers())
	for _, m := range msgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(m msgT) {
			defer wg.Done()
			defer func() { <-sem }()
			rawT, okT := in.Store.Get("tables", tableKey(m.dc.Name, int32(m.dev)))
			rawC, okC := in.Store.Get("contracts", contractsKey(m.dc.Name, int32(m.dev)))
			if !okT || !okC {
				mu.Lock()
				in.noteFailure(&vs, m.dc.Name, m.dev,
					fmt.Errorf("monitor: missing documents for %s/%d", m.dc.Name, m.dev))
				mu.Unlock()
				return
			}
			key := memoKey(m.dc.Name, int32(m.dev))
			h := hashDocs(rawT, rawC)
			if in.SkipUnchanged {
				mu.Lock()
				prev, ok := in.memo[key]
				mu.Unlock()
				if ok && prev.hash == h {
					rec := prev.record
					rec.Cycle = in.cycle
					mu.Lock()
					vs.Devices++
					vs.Skipped++
					vs.Violations += len(rec.Violations)
					in.Analytics.Ingest(rec)
					in.noteSuccess(key)
					mu.Unlock()
					return
				}
			}
			rep, verr := in.validateDocs(m.dc, m.dev, rawT, rawC)
			mu.Lock()
			defer mu.Unlock()
			if verr != nil {
				in.noteFailure(&vs, m.dc.Name, m.dev,
					fmt.Errorf("monitor: validate %s/%d: %w", m.dc.Name, m.dev, verr))
				return
			}
			rec := Record{
				Cycle: in.cycle, Datacenter: m.dc.Name, Device: m.dev,
				Name: rep.Name, Role: rep.Role, Violations: rep.Violations,
			}
			vs.Devices++
			vs.Violations += len(rep.Violations)
			in.Analytics.Ingest(rec)
			in.memo[key] = deviceMemo{hash: h, record: rec}
			in.noteSuccess(key)
		}(m)
	}
	wg.Wait()
	// Devices whose pull failed were never queued: account them here so
	// they don't silently drop out of the cycle.
	mu.Lock()
	for _, f := range in.pullFailed {
		in.noteFailure(&vs, f.Datacenter, f.Device, f)
	}
	in.pullFailed = nil
	mu.Unlock()
	return vs, errors.Join(vs.Errs...)
}

func (in *Instance) validateDocs(dc *Datacenter, dev topology.DeviceID, rawT, rawC []byte) (rcdc.DeviceReport, error) {
	var tdoc tableDoc
	if err := json.Unmarshal(rawT, &tdoc); err != nil {
		return rcdc.DeviceReport{}, err
	}
	var cdocs []contractDoc
	if err := json.Unmarshal(rawC, &cdocs); err != nil {
		return rcdc.DeviceReport{}, err
	}
	tbl := fib.NewTable(dev)
	for _, e := range tdoc.Entries {
		p, err := ipnet.ParsePrefix(e.Prefix)
		if err != nil {
			return rcdc.DeviceReport{}, err
		}
		tbl.Add(fib.Entry{Prefix: p, NextHops: e.NextHops, Connected: e.Connected})
	}
	set := contracts.DeviceContracts{Device: dev}
	for _, d := range cdocs {
		p, err := ipnet.ParsePrefix(d.Prefix)
		if err != nil {
			return rcdc.DeviceReport{}, err
		}
		set.Contracts = append(set.Contracts, contracts.Contract{
			Device: dev, Kind: d.Kind, Prefix: p, NextHops: d.NextHops,
		})
	}
	v := rcdc.Validator{Checker: in.Checker, Workers: 1, Clock: in.Clock, Metrics: in.rcdcM}
	return v.ValidateDevice(dc.Facts, tbl, set)
}

// RunCycle performs one monitoring cycle: regenerate contracts if the
// intent changed, pull and validate either the whole fleet (full sweep)
// or, with Incremental set, just the blast radius of the topology changes
// journaled since the previous cycle — every untouched device's previous
// result is carried forward, so the cycle still accounts for the full
// fleet. Per-device failures degrade the cycle (stale carry-forward,
// Unmonitored escalation) and are enumerated in CycleStats.Errs; the
// returned error is reserved for faults that stop the pipeline itself.
func (in *Instance) RunCycle() (CycleStats, error) {
	in.cycle++
	sp := in.Tracer.Start("monitor.RunCycle")
	defer sp.End()
	sp.SetAttr("cycle", strconv.Itoa(in.cycle))
	cycleStart := clock.Or(in.Clock).Now()
	stats := CycleStats{Cycle: in.cycle}
	plan, full := in.cyclePlan()
	stats.FullSweep = full

	// Contracts derive from intent, not link state: regenerate only when
	// some datacenter's facts changed (or on the first push).
	factsGen := uint64(0)
	for _, dc := range in.Datacenters {
		factsGen += dc.Facts.Generation()
	}
	if in.contractsTotal == 0 || factsGen != in.lastFactsGen {
		n, err := in.GenerateContracts()
		if err != nil {
			return stats, err
		}
		in.contractsTotal = n
		in.lastFactsGen = factsGen
	}
	stats.Contracts = in.contractsTotal

	// Snapshot generations before pulling: a change that lands mid-cycle
	// may or may not be visible to this cycle's pulls, but it stays in the
	// next cycle's journal window either way (at-least-once revalidation).
	gens := make(map[string]uint64, len(in.Datacenters))
	for _, dc := range in.Datacenters {
		gens[dc.Name] = dc.Topo.Generation()
	}
	in.observed = make(map[string]bool)
	pullSp := sp.Child("monitor.pull")
	ps, _ := in.pullDevices(plan)
	pullSp.End()
	stats.ModeledPullTime = ps.Modeled
	stats.Retries = ps.Retries
	stats.PullFailures = len(ps.Failed)
	start := clock.Or(in.Clock).Now()
	valSp := sp.Child("monitor.validate")
	vs, _ := in.ValidateQueued()
	valSp.End()
	stats.Devices = vs.Devices
	stats.Violations = vs.Violations
	stats.Skipped = vs.Skipped
	stats.StaleDevices = vs.Stale
	stats.Unmonitored = vs.Unmonitored
	stats.Errs = vs.Errs
	stats.DirtyDevices = len(in.observed)
	if !full {
		in.carryForward(&stats)
	}
	in.observed = nil
	stats.ValidateTime = clock.Since(in.Clock, start)
	in.lastGen = gens
	if full {
		in.lastFullSweep = in.cycle
	}
	in.Metrics.observeCycle(&stats, clock.Since(in.Clock, cycleStart))
	return stats, nil
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
