package monitor

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Datacenter is one monitored datacenter: its metadata facts, the device
// fleet to pull routing tables from, and (for triage) the live topology
// and device configurations.
type Datacenter struct {
	Name   string
	Topo   *topology.Topology
	Facts  *metadata.Facts
	Source fib.Source
	Cfg    map[topology.DeviceID]*bgp.DeviceConfig
}

// NewDatacenter bundles a topology with its derived facts and a synthesized
// FIB source honoring cfg.
func NewDatacenter(name string, topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig) *Datacenter {
	return &Datacenter{
		Name: name, Topo: topo, Facts: metadata.FromTopology(topo),
		Source: bgp.NewSynth(topo, cfg), Cfg: cfg,
	}
}

// Instance is one horizontally-scaled service instance (§2.6.1): it
// monitors the devices of a set of datacenters, chosen so that the store
// and queue are close to the devices. Production instances watch O(10K)
// devices each.
type Instance struct {
	Name        string
	Datacenters []*Datacenter
	Store       *Store
	Queue       *Queue
	Analytics   *Analytics

	// Workers bounds pull/validate parallelism (0 = GOMAXPROCS).
	Workers int
	// SkipUnchanged enables incremental validation: devices whose stored
	// table and contract documents are unchanged since their last
	// validation are skipped and their previous result carried forward.
	SkipUnchanged bool
	// PullLatencyMin/Max model the 200–800ms per-device routing table
	// fetch of §2.6.1. Latencies are accounted virtually (no sleeping) and
	// reported in CycleStats.ModeledPullTime.
	PullLatencyMin, PullLatencyMax time.Duration

	rng   *rand.Rand
	cycle int
	memo  map[string]deviceMemo // incremental-validation cache
}

// NewInstance creates a service instance with the §2.6.1 default latency
// model.
func NewInstance(name string, dcs ...*Datacenter) *Instance {
	return &Instance{
		Name: name, Datacenters: dcs,
		Store: NewStore(), Queue: NewQueue(), Analytics: NewAnalytics(),
		PullLatencyMin: 200 * time.Millisecond,
		PullLatencyMax: 800 * time.Millisecond,
		rng:            rand.New(rand.NewSource(1)),
	}
}

func (in *Instance) workers() int {
	if in.Workers > 0 {
		return in.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CycleStats reports one monitoring cycle.
type CycleStats struct {
	Cycle      int
	Devices    int
	Contracts  int
	Violations int
	// Skipped counts devices whose validation was skipped because their
	// table and contracts were unchanged (SkipUnchanged).
	Skipped int
	// ModeledPullTime is the wall time the table pulls would take given
	// the per-device fetch latency model and the worker parallelism.
	ModeledPullTime time.Duration
	// ValidateTime is the actual CPU-side validation wall time.
	ValidateTime time.Duration
}

// document types persisted in the store.

type contractDoc struct {
	Kind     contracts.Kind      `json:"kind"`
	Prefix   string              `json:"prefix"`
	NextHops []topology.DeviceID `json:"nextHops"`
}

type tableDoc struct {
	Entries []entryDoc `json:"entries"`
}

type entryDoc struct {
	Prefix    string              `json:"prefix"`
	NextHops  []topology.DeviceID `json:"nextHops,omitempty"`
	Connected bool                `json:"connected,omitempty"`
}

// GenerateContracts is the device contract generator micro-service: it
// consumes metadata facts, generates the comprehensive contract set for
// each device, and pushes them to the store.
func (in *Instance) GenerateContracts() (int, error) {
	total := 0
	for _, dc := range in.Datacenters {
		gen := contracts.NewGenerator(dc.Facts)
		for i := range dc.Facts.Devices {
			id := dc.Facts.Devices[i].ID
			set := gen.ForDevice(id)
			docs := make([]contractDoc, len(set.Contracts))
			for j, c := range set.Contracts {
				docs[j] = contractDoc{Kind: c.Kind, Prefix: c.Prefix.String(), NextHops: c.NextHops}
			}
			raw, err := json.Marshal(docs)
			if err != nil {
				return total, err
			}
			in.Store.Put("contracts", contractsKey(dc.Name, int32(id)), raw)
			total += len(docs)
		}
	}
	return total, nil
}

// refresher is implemented by FIB sources whose derived state must be
// recomputed from live topology before a pull cycle (e.g. bgp.Synth).
type refresher interface{ Refresh() }

// PullTables is the routing table puller micro-service: it fetches every
// device's routing table, stores it, and posts a notification to the
// queue. Fetch latency is sampled per device and accounted virtually.
func (in *Instance) PullTables() (time.Duration, error) {
	for _, dc := range in.Datacenters {
		if r, ok := dc.Source.(refresher); ok {
			r.Refresh()
		}
	}
	var mu sync.Mutex
	var modeled time.Duration
	var firstErr error

	type job struct {
		dc  *Datacenter
		dev topology.DeviceID
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var latencies []time.Duration
	for w := 0; w < in.workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				tbl, err := j.dc.Source.Table(j.dev)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				doc := tableDoc{}
				for _, e := range tbl.Entries {
					doc.Entries = append(doc.Entries, entryDoc{
						Prefix: e.Prefix.String(), NextHops: e.NextHops, Connected: e.Connected,
					})
				}
				raw, err := json.Marshal(doc)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				in.Store.Put("tables", tableKey(j.dc.Name, int32(j.dev)), raw)
				in.Queue.Push(fmt.Sprintf("%s/%d", j.dc.Name, j.dev))
				lat := in.PullLatencyMin
				mu.Lock()
				if span := in.PullLatencyMax - in.PullLatencyMin; span > 0 {
					lat += time.Duration(in.rng.Int63n(int64(span)))
				}
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}(w)
	}
	for _, dc := range in.Datacenters {
		for i := range dc.Facts.Devices {
			jobs <- job{dc, dc.Facts.Devices[i].ID}
		}
	}
	close(jobs)
	wg.Wait()
	// The modeled wall time is the makespan of the sampled fetch latencies
	// over the worker pool (greedy least-loaded assignment), independent of
	// actual goroutine scheduling.
	busy := make([]time.Duration, in.workers())
	for _, lat := range latencies {
		least := 0
		for w := 1; w < len(busy); w++ {
			if busy[w] < busy[least] {
				least = w
			}
		}
		busy[least] += lat
	}
	for _, b := range busy {
		if b > modeled {
			modeled = b
		}
	}
	return modeled, firstErr
}

// ValidateQueued is the routing table validator micro-service: it drains
// the notification queue, loads each device's table and contracts from the
// store, validates them, and pushes the results to the analytics stream.
// With SkipUnchanged set, devices whose documents hash identically to
// their last validated state are skipped and the previous result carried
// forward (re-ingested under the current cycle).
func (in *Instance) ValidateQueued() (devices, violations, skipped int, err error) {
	dcByName := make(map[string]*Datacenter, len(in.Datacenters))
	for _, dc := range in.Datacenters {
		dcByName[dc.Name] = dc
	}
	type msgT struct {
		dc  *Datacenter
		dev topology.DeviceID
	}
	var msgs []msgT
	for {
		m, ok := in.Queue.Pop()
		if !ok {
			break
		}
		i := lastSlash(m)
		if i < 0 {
			return devices, violations, skipped, fmt.Errorf("monitor: bad message %q", m)
		}
		dcName := m[:i]
		dev, err := strconv.Atoi(m[i+1:])
		if err != nil {
			return devices, violations, skipped, fmt.Errorf("monitor: bad message %q", m)
		}
		dc, ok := dcByName[dcName]
		if !ok {
			return devices, violations, skipped, fmt.Errorf("monitor: unknown datacenter %q", dcName)
		}
		msgs = append(msgs, msgT{dc, topology.DeviceID(dev)})
	}

	if in.memo == nil {
		in.memo = make(map[string]deviceMemo)
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, in.workers())
	for _, m := range msgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(m msgT) {
			defer wg.Done()
			defer func() { <-sem }()
			rawT, okT := in.Store.Get("tables", tableKey(m.dc.Name, int32(m.dev)))
			rawC, okC := in.Store.Get("contracts", contractsKey(m.dc.Name, int32(m.dev)))
			if !okT || !okC {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("monitor: missing documents for %s/%d", m.dc.Name, m.dev)
				}
				mu.Unlock()
				return
			}
			key := memoKey(m.dc.Name, int32(m.dev))
			h := hashDocs(rawT, rawC)
			if in.SkipUnchanged {
				mu.Lock()
				prev, ok := in.memo[key]
				mu.Unlock()
				if ok && prev.hash == h {
					rec := prev.record
					rec.Cycle = in.cycle
					mu.Lock()
					devices++
					skipped++
					violations += len(rec.Violations)
					in.Analytics.Ingest(rec)
					mu.Unlock()
					return
				}
			}
			rep, verr := in.validateDocs(m.dc, m.dev, rawT, rawC)
			mu.Lock()
			defer mu.Unlock()
			if verr != nil {
				if firstErr == nil {
					firstErr = verr
				}
				return
			}
			rec := Record{
				Cycle: in.cycle, Datacenter: m.dc.Name, Device: m.dev,
				Name: rep.Name, Role: rep.Role, Violations: rep.Violations,
			}
			devices++
			violations += len(rep.Violations)
			in.Analytics.Ingest(rec)
			in.memo[key] = deviceMemo{hash: h, record: rec}
		}(m)
	}
	wg.Wait()
	return devices, violations, skipped, firstErr
}

func (in *Instance) validateDocs(dc *Datacenter, dev topology.DeviceID, rawT, rawC []byte) (rcdc.DeviceReport, error) {
	var tdoc tableDoc
	if err := json.Unmarshal(rawT, &tdoc); err != nil {
		return rcdc.DeviceReport{}, err
	}
	var cdocs []contractDoc
	if err := json.Unmarshal(rawC, &cdocs); err != nil {
		return rcdc.DeviceReport{}, err
	}
	tbl := fib.NewTable(dev)
	for _, e := range tdoc.Entries {
		p, err := ipnet.ParsePrefix(e.Prefix)
		if err != nil {
			return rcdc.DeviceReport{}, err
		}
		tbl.Add(fib.Entry{Prefix: p, NextHops: e.NextHops, Connected: e.Connected})
	}
	set := contracts.DeviceContracts{Device: dev}
	for _, d := range cdocs {
		p, err := ipnet.ParsePrefix(d.Prefix)
		if err != nil {
			return rcdc.DeviceReport{}, err
		}
		set.Contracts = append(set.Contracts, contracts.Contract{
			Device: dev, Kind: d.Kind, Prefix: p, NextHops: d.NextHops,
		})
	}
	v := rcdc.Validator{Workers: 1}
	return v.ValidateDevice(dc.Facts, tbl, set)
}

// RunCycle performs one full monitoring cycle: regenerate contracts, pull
// all tables, validate everything that was notified.
func (in *Instance) RunCycle() (CycleStats, error) {
	in.cycle++
	stats := CycleStats{Cycle: in.cycle}
	n, err := in.GenerateContracts()
	if err != nil {
		return stats, err
	}
	stats.Contracts = n
	modeled, err := in.PullTables()
	if err != nil {
		return stats, err
	}
	stats.ModeledPullTime = modeled
	start := time.Now()
	devs, viols, skipped, err := in.ValidateQueued()
	if err != nil {
		return stats, err
	}
	stats.Devices = devs
	stats.Violations = viols
	stats.Skipped = skipped
	stats.ValidateTime = time.Since(start)
	return stats, nil
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
