package monitor

import (
	"fmt"
	"sync"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Record is one device validation result in the analytics stream.
type Record struct {
	Cycle      int
	Datacenter string
	Device     topology.DeviceID
	Name       string
	Role       topology.Role
	Violations []rcdc.Violation
	// Stale marks a result carried forward from the device's last good
	// validation because this cycle's observation failed.
	Stale bool
	// Unmonitored marks a device past the consecutive-failure threshold:
	// no fresh result exists and the carry-forward bound is exhausted.
	Unmonitored bool
}

// Analytics is the stream-analytics substitute (§2.6.1): it ingests
// validation results and offers the interactive query interface the
// alerting and remediation rules are written against.
type Analytics struct {
	mu      sync.RWMutex
	records []Record
}

// NewAnalytics returns an empty stream.
func NewAnalytics() *Analytics { return &Analytics{} }

// Ingest appends a record to the stream.
func (a *Analytics) Ingest(r Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records = append(a.records, r)
}

// Query returns the records satisfying the predicate.
func (a *Analytics) Query(pred func(*Record) bool) []Record {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []Record
	for i := range a.records {
		if pred(&a.records[i]) {
			out = append(out, a.records[i])
		}
	}
	return out
}

// UnhealthyInCycle returns the records needing attention in a given
// cycle: contract violations and unmonitored (telemetry-dead) devices.
func (a *Analytics) UnhealthyInCycle(cycle int) []Record {
	return a.Query(func(r *Record) bool {
		return r.Cycle == cycle && (len(r.Violations) > 0 || r.Unmonitored)
	})
}

// SeverityCounts tallies violations by severity for one cycle.
func (a *Analytics) SeverityCounts(cycle int) (high, low int) {
	for _, r := range a.UnhealthyInCycle(cycle) {
		for _, v := range r.Violations {
			if v.Severity == rcdc.HighRisk {
				high++
			} else {
				low++
			}
		}
	}
	return high, low
}

// ErrorClass is the §2.6.2 root-cause taxonomy.
type ErrorClass uint8

const (
	ClassUnknown ErrorClass = iota
	// ClassRIBFIBBug: Software Bug 1 — RIB-FIB inconsistency, fewer next
	// hops in the FIB default route than expected with all links healthy.
	ClassRIBFIBBug
	// ClassL2PortBug: Software Bug 2 — interfaces treated as layer-2
	// ports, no BGP sessions on the device at all.
	ClassL2PortBug
	// ClassHardwareFailure: optical faults, links operationally down.
	ClassHardwareFailure
	// ClassOperationDrift: BGP sessions administratively shut and never
	// remediated.
	ClassOperationDrift
	// ClassMigration: ASN misconfiguration during infrastructure
	// migration.
	ClassMigration
	// ClassPolicyError: route-map or ECMP configuration errors.
	ClassPolicyError
	// ClassTelemetryLoss: the device itself may be fine but the
	// monitoring pipeline cannot observe it — every table pull fails.
	// The paper's pipeline treats monitoring blindness as an error
	// condition in its own right.
	ClassTelemetryLoss
)

func (c ErrorClass) String() string {
	switch c {
	case ClassRIBFIBBug:
		return "rib-fib-inconsistency"
	case ClassL2PortBug:
		return "l2-port-bug"
	case ClassHardwareFailure:
		return "hardware-failure"
	case ClassOperationDrift:
		return "operation-drift"
	case ClassMigration:
		return "migration-misconfig"
	case ClassPolicyError:
		return "policy-error"
	case ClassTelemetryLoss:
		return "telemetry-loss"
	}
	return "unknown"
}

// RemediationQueueName routes a triaged error to the right team/automation
// (§2.6.1: cabling faults to datacenter operations, admin-shut sessions to
// automatic unshut, the rest to engineering investigation).
type RemediationQueueName string

const (
	QueueReplaceCable   RemediationQueueName = "replace-cable"
	QueueAutoUnshut     RemediationQueueName = "auto-unshut"
	QueueConfigReview   RemediationQueueName = "config-review"
	QueueInvestigation  RemediationQueueName = "device-investigation"
	QueueDeviceRecovery RemediationQueueName = "device-recovery"
)

// TriagedError is one classified violation with its remediation routing.
type TriagedError struct {
	Record   Record
	Class    ErrorClass
	Queue    RemediationQueueName
	Severity rcdc.Severity
	Detail   string
}

// Triage classifies each unhealthy record of a cycle by correlating the
// violations with device configuration and link state, mirroring the
// §2.6.1 query rules, and returns the errors ordered high-risk first
// (§2.6.4: address errors in order of severity).
func (a *Analytics) Triage(cycle int, dcs []*Datacenter) []TriagedError {
	byName := map[string]*Datacenter{}
	for _, dc := range dcs {
		byName[dc.Name] = dc
	}
	var out []TriagedError
	for _, r := range a.UnhealthyInCycle(cycle) {
		dc := byName[r.Datacenter]
		if dc == nil {
			continue
		}
		te := classify(r, dc)
		out = append(out, te)
	}
	// High-risk first, stable within class.
	var ordered []TriagedError
	for _, sev := range []rcdc.Severity{rcdc.HighRisk, rcdc.LowRisk} {
		for _, te := range out {
			if te.Severity == sev {
				ordered = append(ordered, te)
			}
		}
	}
	return ordered
}

func classify(r Record, dc *Datacenter) TriagedError {
	if r.Unmonitored {
		return TriagedError{
			Record: r, Class: ClassTelemetryLoss, Queue: QueueDeviceRecovery,
			Severity: rcdc.HighRisk,
			Detail:   "device unreachable: consecutive pull failures exhausted the staleness bound",
		}
	}
	te := TriagedError{Record: r}
	for _, v := range r.Violations {
		if v.Severity == rcdc.HighRisk {
			te.Severity = rcdc.HighRisk
		}
	}
	te.Class, te.Queue, te.Detail = ClassifyDevice(dc.Topo, dc.Cfg, r.Device, r.Violations)
	return te
}

// ClassifyDevice runs the §2.6.1 triage query rules for one unhealthy
// device: correlate its contract violations with device configuration and
// link state to assign a §2.6.2 root-cause class and remediation queue.
// It is the classification kernel behind Triage, shared with the failure
// explorer so per-scenario findings route through the same taxonomy.
func ClassifyDevice(topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig,
	dev topology.DeviceID, viols []rcdc.Violation) (ErrorClass, RemediationQueueName, string) {
	c := cfg[dev]
	switch {
	case c != nil && c.SessionsDisabled:
		return ClassL2PortBug, QueueInvestigation, "no BGP session on any interface"
	case c != nil && c.ASNOverride != 0:
		return ClassMigration, QueueConfigReview, fmt.Sprintf("ASN override %d", c.ASNOverride)
	case c != nil && (c.RejectDefaultIn || c.MaxECMPPaths > 0):
		return ClassPolicyError, QueueConfigReview, "route-map/ECMP configuration deviates"
	}
	// Correlate with link state.
	var down, shut int
	for _, lid := range topo.LinksOf(dev) {
		l := topo.Link(lid)
		switch {
		case !l.Up:
			down++
		case !l.SessionUp:
			shut++
		}
	}
	switch {
	case down > 0:
		return ClassHardwareFailure, QueueReplaceCable, fmt.Sprintf("%d links operationally down", down)
	case shut > 0:
		return ClassOperationDrift, QueueAutoUnshut, fmt.Sprintf("%d sessions administratively shut", shut)
	default:
		// All links healthy yet the FIB deviates: RIB-FIB inconsistency.
		for _, v := range viols {
			if v.Kind == rcdc.DefaultMismatch && len(v.Missing) > 0 {
				return ClassRIBFIBBug, QueueInvestigation, "FIB default route missing next hops with healthy links"
			}
		}
	}
	return ClassUnknown, QueueInvestigation, ""
}

// AutoRemediate executes the automated §2.6.1 remediation for operation
// drift: administratively shut sessions are unshut and monitored; sessions
// on links marked lossy turn unhealthy again and are re-shut and escalated
// to investigation. It returns the number of sessions restored and the
// escalated errors.
func AutoRemediate(errs []TriagedError, dcs []*Datacenter, lossy map[topology.LinkID]bool) (restored int, escalated []TriagedError) {
	byName := map[string]*Datacenter{}
	for _, dc := range dcs {
		byName[dc.Name] = dc
	}
	for _, te := range errs {
		if te.Queue != QueueAutoUnshut {
			continue
		}
		dc := byName[te.Record.Datacenter]
		if dc == nil {
			continue
		}
		for _, lid := range dc.Topo.LinksOf(te.Record.Device) {
			l := dc.Topo.Link(lid)
			if !l.Up || l.SessionUp {
				continue
			}
			if lossy[lid] {
				// Unshut, observed unhealthy, shut again, escalate.
				esc := te
				esc.Queue = QueueInvestigation
				esc.Detail = fmt.Sprintf("link %d lossy: re-shut after unshut", lid)
				escalated = append(escalated, esc)
				continue
			}
			dc.Topo.SetSessionUp(lid, true)
			restored++
		}
	}
	return restored, escalated
}
