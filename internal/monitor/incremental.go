package monitor

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Incremental validation: most devices' routing tables are identical from
// cycle to cycle, so the validator can skip devices whose stored table and
// contract documents are unchanged since their last validation, carrying
// the previous result forward. This is the monitoring-loop analogue of the
// incremental techniques the paper cites ([21], [50]) — cheap because the
// store already holds the serialized documents.

type deviceMemo struct {
	hash   uint64
	record Record
}

// memoKey identifies a device across cycles.
func memoKey(dc string, dev int32) string { return contractsKey(dc, dev) }

func hashDocs(docs ...[]byte) uint64 {
	h := fnv.New64a()
	for _, d := range docs {
		h.Write(d)
	}
	return h.Sum64()
}

// Service is a horizontally scaled deployment (§2.6.1): the monitored
// datacenters are partitioned across instances, each with its own store
// and queue "chosen to have minimal latency from the set of devices being
// monitored". Instances run their cycles in parallel.
type Service struct {
	Instances []*Instance
}

// NewService partitions the datacenters round-robin across n instances.
func NewService(n int, dcs ...*Datacenter) *Service {
	if n < 1 {
		n = 1
	}
	if n > len(dcs) {
		n = len(dcs)
	}
	svc := &Service{}
	for i := 0; i < n; i++ {
		svc.Instances = append(svc.Instances, NewInstance(instName(i)))
	}
	for i, dc := range dcs {
		in := svc.Instances[i%n]
		in.Datacenters = append(in.Datacenters, dc)
	}
	return svc
}

func instName(i int) string { return fmt.Sprintf("instance-%d", i) }

// RunCycle runs one cycle on every instance concurrently and returns the
// per-instance stats in instance order.
func (s *Service) RunCycle() ([]CycleStats, error) {
	stats := make([]CycleStats, len(s.Instances))
	errs := make([]error, len(s.Instances))
	var wg sync.WaitGroup
	for i, in := range s.Instances {
		wg.Add(1)
		go func(i int, in *Instance) {
			defer wg.Done()
			stats[i], errs[i] = in.RunCycle()
		}(i, in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// TotalViolations sums violations across instances for a set of stats.
func TotalViolations(stats []CycleStats) int {
	n := 0
	for _, st := range stats {
		n += st.Violations
	}
	return n
}

// Triage aggregates triage across all instances' current cycles, ordered
// high-risk first.
func (s *Service) Triage() []TriagedError {
	var out []TriagedError
	for _, in := range s.Instances {
		out = append(out, in.Analytics.Triage(in.cycle, in.Datacenters)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}
