package monitor

import (
	"testing"

	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func TestAlertLifecycle(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor := topo.ToRs()[0]
	leaf := topo.ClusterLeaves(0)[0]
	topo.FailLink(tor, leaf)
	in := NewInstance("a", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	tracker := NewAlertTracker()

	s1, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	p1 := tracker.ObserveCycle(s1.Cycle, in.Analytics)
	if p1.Opened == 0 || p1.OpenHigh+p1.OpenLow != p1.Opened {
		t.Fatalf("first cycle point = %+v", p1)
	}
	open1 := len(tracker.Open())
	if open1 != p1.Opened {
		t.Errorf("Open() = %d, point %d", open1, p1.Opened)
	}

	// Same state: alerts persist, nothing new opens or resolves.
	s2, _ := in.RunCycle()
	p2 := tracker.ObserveCycle(s2.Cycle, in.Analytics)
	if p2.Opened != 0 || p2.Resolved != 0 || p2.OpenHigh+p2.OpenLow != open1 {
		t.Fatalf("steady-state point = %+v", p2)
	}
	for _, al := range tracker.Open() {
		if al.LastCycle != s2.Cycle {
			t.Errorf("alert %s not refreshed", al.Key)
		}
	}

	// Repair: everything resolves.
	topo.RestoreAll()
	s3, _ := in.RunCycle()
	p3 := tracker.ObserveCycle(s3.Cycle, in.Analytics)
	if p3.OpenHigh+p3.OpenLow != 0 || p3.Resolved != open1 {
		t.Fatalf("post-repair point = %+v", p3)
	}
	if len(tracker.Open()) != 0 {
		t.Error("alerts still open after repair")
	}
	if len(tracker.Series()) != 3 {
		t.Errorf("series length = %d", len(tracker.Series()))
	}
}

func TestAlertReopenCountsAsNew(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor := topo.ToRs()[0]
	leaf := topo.ClusterLeaves(0)[0]
	in := NewInstance("a", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	tracker := NewAlertTracker()

	topo.FailLink(tor, leaf)
	s1, _ := in.RunCycle()
	tracker.ObserveCycle(s1.Cycle, in.Analytics)
	topo.RestoreAll()
	s2, _ := in.RunCycle()
	tracker.ObserveCycle(s2.Cycle, in.Analytics)
	// The same link fails again: a fresh alert opens.
	topo.FailLink(tor, leaf)
	s3, _ := in.RunCycle()
	p3 := tracker.ObserveCycle(s3.Cycle, in.Analytics)
	if p3.Opened == 0 {
		t.Error("re-failure did not open a new alert")
	}
	for _, al := range tracker.Open() {
		if al.FirstCycle != s3.Cycle {
			t.Errorf("reopened alert kept old FirstCycle: %+v", al)
		}
	}
}

func TestAlertPriorityOrder(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	// A high-risk error (single default hop) and low-risk errors.
	tor := topo.ToRs()[0]
	leaves := topo.ClusterLeaves(0)
	topo.FailLink(tor, leaves[1])
	topo.FailLink(tor, leaves[2])
	topo.FailLink(tor, leaves[3])
	in := NewInstance("a", NewDatacenter("fig3", topo, nil))
	in.Workers = 4
	tracker := NewAlertTracker()
	s1, _ := in.RunCycle()
	tracker.ObserveCycle(s1.Cycle, in.Analytics)
	open := tracker.Open()
	if len(open) == 0 {
		t.Fatal("no alerts")
	}
	seenLow := false
	for _, al := range open {
		if al.Severity == rcdc.LowRisk {
			seenLow = true
		} else if seenLow {
			t.Fatal("high-risk alert after low-risk in priority order")
		}
	}
	if open[0].Severity != rcdc.HighRisk {
		t.Error("first alert not high risk")
	}
}
