package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheus locks the exposition format and its deterministic
// ordering: families by name, series by label values, histogram buckets
// ascending with cumulative counts, _sum and _count last.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcv_b_total", "a counter").Add(7)
	r.Gauge("dcv_c_ratio", "a gauge").Set(0.5)
	cv := r.CounterVec("dcv_a_runs_total", "labeled counter", "mode")
	cv.With("full").Add(2)
	cv.With("delta").Add(5)
	h := r.Histogram("dcv_d_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dcv_a_runs_total labeled counter
# TYPE dcv_a_runs_total counter
dcv_a_runs_total{mode="delta"} 5
dcv_a_runs_total{mode="full"} 2
# HELP dcv_b_total a counter
# TYPE dcv_b_total counter
dcv_b_total 7
# HELP dcv_c_ratio a gauge
# TYPE dcv_c_ratio gauge
dcv_c_ratio 0.5
# HELP dcv_d_seconds a histogram
# TYPE dcv_d_seconds histogram
dcv_d_seconds_bucket{le="0.1"} 2
dcv_d_seconds_bucket{le="1"} 3
dcv_d_seconds_bucket{le="+Inf"} 4
dcv_d_seconds_sum 3.6
dcv_d_seconds_count 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Two writes are byte-identical (ordering is deterministic).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("two expositions of the same registry differ")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcv_x_total", "x").Add(3)
	h := r.Histogram("dcv_y_seconds", "y", []float64{1})
	h.Observe(0.5)
	samples := r.Snapshot()
	byName := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		if le, ok := s.Labels["le"]; ok {
			key += ":" + le
		}
		byName[key] = s.Value
	}
	checks := map[string]float64{
		"dcv_x_total":            3,
		"dcv_y_seconds_bucket:1": 1, "dcv_y_seconds_bucket:+Inf": 1,
		"dcv_y_seconds_sum": 0.5, "dcv_y_seconds_count": 1,
	}
	for k, want := range checks {
		if got, ok := byName[k]; !ok || got != want {
			t.Errorf("sample %s = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("dcv_esc_total", "escapes", "path").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}
