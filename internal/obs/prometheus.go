package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) and a JSON-able snapshot of
// the same data. Output is fully deterministic: families sort by name,
// series by label values, histogram buckets ascending — so a fixed
// virtual-clock run exposes byte-identical text (the golden test's
// contract).

// Sample is one exposed series value, the unit of Snapshot. Histograms
// expand into _bucket/_sum/_count samples exactly as in the text format.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every exposed series as flat samples, in exposition
// order. Counters are widened to float64 (exact below 2^53, far beyond
// any count this stack produces in a run).
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		out = append(out, f.samples()...)
	}
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedKeys returns the series keys in deterministic order under the
// family lock.
func (f *family) sortedKeys() []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	return keys
}

func (f *family) get(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[key]
}

// labelPairs renders {k="v",...} for a series key, with extra appended
// last (the histogram le label).
func (f *family) labelPairs(key string, extra ...string) string {
	var vals []string
	if key != "" || len(f.labels) > 0 {
		vals = strings.Split(key, "\x00")
	}
	var b strings.Builder
	n := 0
	emit := func(k, v string) {
		if n == 0 {
			b.WriteByte('{')
		} else {
			b.WriteByte(',')
		}
		n++
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i, lv := range vals {
		if i < len(f.labels) {
			emit(f.labels[i], lv)
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	if n > 0 {
		b.WriteByte('}')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
		return err
	}
	for _, key := range f.sortedKeys() {
		s := f.get(key)
		lp := f.labelPairs(key)
		var err error
		switch m := s.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, lp, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, lp, formatFloat(m.Value()))
		case *Histogram:
			var cum uint64
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, f.labelPairs(key, "le", formatFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += m.counts[len(m.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, f.labelPairs(key, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name, lp, formatFloat(m.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, lp, cum)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (f *family) samples() []Sample {
	var out []Sample
	for _, key := range f.sortedKeys() {
		s := f.get(key)
		labels := f.labelMap(key)
		switch m := s.(type) {
		case *Counter:
			out = append(out, Sample{Name: f.name, Labels: labels, Value: float64(m.Value())})
		case *Gauge:
			out = append(out, Sample{Name: f.name, Labels: labels, Value: m.Value()})
		case *Histogram:
			var cum uint64
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				out = append(out, Sample{Name: f.name + "_bucket",
					Labels: withLabel(labels, "le", formatFloat(b)), Value: float64(cum)})
			}
			cum += m.counts[len(m.bounds)].Load()
			out = append(out, Sample{Name: f.name + "_bucket",
				Labels: withLabel(labels, "le", "+Inf"), Value: float64(cum)})
			out = append(out, Sample{Name: f.name + "_sum", Labels: labels, Value: m.Sum()})
			out = append(out, Sample{Name: f.name + "_count", Labels: labels, Value: float64(cum)})
		}
	}
	return out
}

func (f *family) labelMap(key string) map[string]string {
	if len(f.labels) == 0 {
		return nil
	}
	vals := strings.Split(key, "\x00")
	m := make(map[string]string, len(f.labels))
	for i, lv := range vals {
		if i < len(f.labels) {
			m[f.labels[i]] = lv
		}
	}
	return m
}

func withLabel(m map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for mk, mv := range m {
		out[mk] = mv
	}
	out[k] = v
	return out
}
