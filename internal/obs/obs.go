// Package obs is the observability layer of the validation stack: a
// stdlib-only, allocation-light metrics registry (counters, gauges,
// histograms with fixed bucket layouts) plus lightweight trace spans for
// validation cycles (trace.go) and a Prometheus text exposition
// (prometheus.go).
//
// Design constraints, in priority order:
//
//   - Determinism: metrics must not perturb validation results, and under
//     an injected clock.Virtual every metric value of a fixed run is
//     bit-reproducible (the golden exposition test locks this). Nothing in
//     this package reads the wall clock; all timing flows through
//     injectable clock.Clock values owned by the instrumented subsystems.
//   - Hot-path cost: recording is a handful of atomic operations — no
//     locks, no allocation, no map lookups. Handles are resolved once at
//     registration and kept on the instrumented structs.
//   - Nil-safety: instrumentation is optional everywhere. Subsystem
//     metric bundles (rcdc.Metrics, monitor.Metrics, ...) use nil-receiver
//     no-op methods so call sites stay unconditional.
//
// Metric naming follows the Prometheus conventions with a dcv_ prefix and
// a subsystem token: dcv_<subsystem>_<what>_<unit> (see DESIGN.md
// "Observability").
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the metric families a registry can hold.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds named metric families. It is safe for concurrent use;
// registration is idempotent (registering an existing name with the same
// shape returns the existing handles), so independently wired subsystems
// can share one registry without coordination.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and, for
// histograms, a fixed bucket layout. Unlabeled metrics are a family with
// a single series under the empty key.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram
}

// lookup returns the family for name, creating it on first registration
// and validating the shape on re-registration. A name re-registered with
// a different type, label schema, or bucket layout is a programming
// error: observability wiring is static, so this panics rather than
// returning errors every hot-path call site would have to thread.
func (r *Registry) lookup(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: k,
			labels: append([]string(nil), labels...),
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]any),
		}
		r.families[name] = f
		return f
	}
	if f.kind != k || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d label(s), was %s with %d",
			name, k, len(labels), f.kind, len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %s re-registered with label %q, was %q", name, labels[i], f.labels[i]))
		}
	}
	if k == histogramKind && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
	}
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with returns the series for the given label values, creating it with
// mk on first use.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing event count. The value wraps
// modulo 2^64 on overflow — like a hardware event counter, and like
// Prometheus client counters backed by integers, rate computation over a
// wrap is the scraper's problem; the counter itself never saturates or
// panics (locked by TestCounterOverflowWraps).
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed bucket layout chosen at
// registration. Bucket semantics follow Prometheus: bucket i counts
// observations v with v <= bounds[i] (upper bounds are inclusive); an
// implicit +Inf bucket catches the rest. Counts are stored per bucket and
// cumulated at exposition time.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits of the sum, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the inclusive bucket; all bounds < v → +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, counterKind, nil, nil)
	return f.with(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, gaugeKind, nil, nil)
	return f.with(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit; do not include it).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, histogramKind, nil, bounds)
	return f.with(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, counterKind, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve handles once outside hot loops.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, gaugeKind, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values; every
// series shares the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, histogramKind, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Fixed bucket layouts shared across the stack, so the same quantity is
// comparable across subsystems and the golden exposition stays stable.

// LatencyBuckets covers 100µs..30s, the observed spread from a trie
// per-device check (sub-millisecond) through a full-fleet validation
// cycle: 0.0001 to 25.6 doubling, roughly.
var LatencyBuckets = ExponentialBuckets(0.0001, 2, 19)

// SizeBuckets covers set sizes (blast radii, dirty-device counts) from
// single devices to 100K-device fleets.
var SizeBuckets = ExponentialBuckets(1, 4, 10)

// RoundBuckets covers small iteration counts (BGP convergence rounds).
var RoundBuckets = LinearBuckets(1, 1, 16)

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n ascending bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
