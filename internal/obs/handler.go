package obs

import "net/http"

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format (version 0.0.4) — the one line every metrics
// endpoint in the repo would otherwise duplicate.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
