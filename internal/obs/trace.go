package obs

import (
	"sync"
	"time"

	"dcvalidate/internal/clock"
)

// Lightweight trace spans for validation cycles. A Tracer hands out
// spans (cycle → device → contract/solver call), timestamps them on its
// injected clock.Clock, and keeps the most recent completed spans in a
// fixed ring buffer — an in-process exporter for debugging and tests, not
// a wire protocol. All methods are nil-receiver safe so instrumented code
// never branches on whether tracing is enabled.

// SpanData is one completed span as recorded in the ring.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for roots
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Duration is the span's elapsed time on the tracer's clock.
func (s *SpanData) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Tracer allocates spans and retains the most recent completed ones.
// Safe for concurrent use.
type Tracer struct {
	clk clock.Clock

	mu   sync.Mutex
	ring []SpanData
	next int    // ring write position
	n    int    // filled entries (≤ len(ring))
	seq  uint64 // span id source
}

// NewTracer returns a tracer timestamping on clk (nil = system clock)
// retaining the last capacity completed spans.
func NewTracer(clk clock.Clock, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{clk: clock.Or(clk), ring: make([]SpanData, capacity)}
}

// Span is an in-flight span. End completes it into the tracer's ring.
type Span struct {
	t    *Tracer
	data SpanData
}

// Start opens a root span. Safe on a nil tracer (returns nil; all Span
// methods are no-ops on nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	id := t.seq
	t.mu.Unlock()
	return &Span{t: t, data: SpanData{ID: id, Name: name, Start: t.clk.Now()}}
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.t.Start(name)
	c.data.Parent = s.data.ID
	return c
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// End stamps the span's end time and records it in the tracer's ring,
// evicting the oldest span when full.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.End = s.t.clk.Now()
	t := s.t
	t.mu.Lock()
	t.ring[t.next] = s.data
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
