package obs

import (
	"testing"
	"time"

	"dcvalidate/internal/clock"
)

func TestTracerSpansVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1000, 0))
	tr := NewTracer(vc, 8)

	cycle := tr.Start("cycle")
	cycle.SetAttr("instance", "test-0")
	vc.Advance(10 * time.Millisecond)
	dev := cycle.Child("device")
	vc.Advance(5 * time.Millisecond)
	dev.End()
	vc.Advance(time.Millisecond)
	cycle.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completed in End order: child first.
	if spans[0].Name != "device" || spans[1].Name != "cycle" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if got := spans[0].Duration(); got != 5*time.Millisecond {
		t.Fatalf("device span duration = %v, want 5ms", got)
	}
	if got := spans[1].Duration(); got != 16*time.Millisecond {
		t.Fatalf("cycle span duration = %v, want 16ms", got)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "instance" {
		t.Fatalf("cycle attrs = %v", spans[1].Attrs)
	}
}

// TestTracerRingEviction: the ring keeps only the most recent completed
// spans, oldest first in Spans.
func TestTracerRingEviction(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	tr := NewTracer(vc, 3)
	for i := 0; i < 5; i++ {
		sp := tr.Start(string(rune('a' + i)))
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, want := range []string{"c", "d", "e"} {
		if spans[i].Name != want {
			t.Errorf("span[%d] = %s, want %s", i, spans[i].Name, want)
		}
	}
}

// TestTracerNilSafety: a nil tracer and its nil spans are inert, so
// instrumented code never branches on tracing being enabled.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("cycle")
	if sp != nil {
		t.Fatal("nil tracer Start returned a span")
	}
	sp.SetAttr("k", "v") // must not panic
	child := sp.Child("device")
	if child != nil {
		t.Fatal("nil span Child returned a span")
	}
	child.End()
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
}
