package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Registration is idempotent: same name returns the same handle.
	if r.Counter("test_events_total", "events") != c {
		t.Fatal("re-registration returned a different handle")
	}
}

// TestCounterOverflowWraps locks the documented overflow contract: a
// counter wraps modulo 2^64 instead of saturating or panicking.
func TestCounterOverflowWraps(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64)
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("counter = %d, want MaxUint64", got)
	}
	c.Inc() // wraps
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after overflow = %d, want 0", got)
	}
	c.Add(math.MaxUint64) // 0 + (2^64-1) ≡ -1
	c.Add(5)
	if got := c.Value(); got != 4 {
		t.Fatalf("counter after wrapped adds = %d, want 4", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_temp", "temperature")
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

// TestHistogramBucketBoundaries locks the Prometheus le semantics: upper
// bounds are inclusive, and a value above every bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	obs := []float64{
		0.05, // < first bound        → bucket le=0.1
		0.1,  // exactly first bound  → bucket le=0.1 (inclusive)
		0.5,  // between              → bucket le=1
		1.0,  // exactly second bound → bucket le=1
		10.0, // exactly last bound   → bucket le=10
		99.9, // above all bounds     → +Inf
	}
	wantSum := 0.0
	for _, v := range obs {
		h.Observe(v)
		wantSum += v // same accumulation order as the histogram
	}
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	hr := r.Histogram("test_dur_seconds", "d", []float64{1})
	hr.ObserveDuration(1500 * time.Millisecond)
	if got := hr.Sum(); got != 1.5 {
		t.Fatalf("sum = %v, want 1.5", got)
	}
	if got := hr.counts[1].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1 (1.5s > le=1)", got)
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_runs_total", "runs by mode", "mode")
	cv.With("full").Add(3)
	cv.With("delta").Inc()
	if got := cv.With("full").Value(); got != 3 {
		t.Fatalf("full = %d, want 3", got)
	}
	gv := r.GaugeVec("test_util", "utilization", "worker")
	gv.With("0").Set(0.5)
	if got := gv.With("0").Value(); got != 0.5 {
		t.Fatalf("gauge = %v, want 0.5", got)
	}
	hv := r.HistogramVec("test_hv_seconds", "latency by phase", []float64{1}, "phase")
	hv.With("pull").Observe(0.5)
	if got := hv.With("pull").Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "concurrent adds")
	h := r.Histogram("test_conc_seconds", "concurrent observes", LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				// Concurrent registration of the same families must be safe
				// and idempotent.
				r.Counter("test_conc_total", "concurrent adds").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestBucketLayouts(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	for _, bs := range [][]float64{LatencyBuckets, SizeBuckets, RoundBuckets} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("bucket layout not ascending: %v", bs)
			}
		}
	}
}
