// Package clock provides the injectable time source used by every
// measurement and simulation path in the validation stack.
//
// Determinism invariant (see DESIGN.md): production and simulation code
// must not read the wall clock directly. Instead it takes a Clock, so
// that tests and the monitoring simulator can substitute a Virtual
// clock and obtain bit-identical runs. The `wallclock` analyzer in
// internal/analysis enforces this mechanically: this package is the
// single allowlisted call site of time.Now.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current reading of a monotonic-enough time source.
// Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Time
}

// System is the real wall clock. It is the measurement boundary: the
// only sanctioned place the codebase calls time.Now.
type System struct{}

// Now returns the current wall-clock time.
func (System) Now() time.Time { return time.Now() }

// Func adapts a plain function to the Clock interface.
type Func func() time.Time

// Now invokes the wrapped function.
func (f Func) Now() time.Time { return f() }

// Since returns the time elapsed on c since t. It is the Clock-aware
// replacement for time.Since.
func Since(c Clock, t time.Time) time.Duration {
	return Or(c).Now().Sub(t)
}

// Sleep pauses for d on the given clock: a Virtual clock advances
// instantly (keeping simulated runs deterministic and fast), anything
// else falls through to a real sleep. It is the Clock-aware replacement
// for time.Sleep; the `sleepsite` analyzer in internal/analysis makes
// this package the single sanctioned call site.
func Sleep(c Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if v, ok := Or(c).(*Virtual); ok {
		v.Advance(d)
		return
	}
	time.Sleep(d)
}

// Or returns c if non-nil and the System clock otherwise, so struct
// fields of type Clock can default to real time when left unset.
func Or(c Clock) Clock {
	if c != nil {
		return c
	}
	return System{}
}

// Virtual is a manually advanced clock for deterministic tests and
// simulation. The zero value starts at the zero time; use New or Set to
// pick an epoch.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a Virtual clock reading t.
func NewVirtual(t time.Time) *Virtual {
	return &Virtual{now: t}
}

// Now returns the clock's current reading.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d (d may be negative in tests that
// model skew) and returns the new reading.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
	return v.now
}

// Set jumps the clock to t.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = t
}
