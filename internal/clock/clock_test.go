package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemNow(t *testing.T) {
	before := time.Now()
	got := System{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestVirtualAdvance(t *testing.T) {
	epoch := time.Date(2019, 8, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	v.Advance(90 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(90 * time.Second)) {
		t.Fatalf("after Advance: Now() = %v", got)
	}
	if d := Since(v, epoch); d != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", d)
	}
	v.Set(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("after Set: Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(8, 0)) {
		t.Fatalf("after 8000 1ms advances: Now() = %v, want %v", got, time.Unix(8, 0))
	}
}

func TestOrDefaultsToSystem(t *testing.T) {
	if _, ok := Or(nil).(System); !ok {
		t.Fatalf("Or(nil) = %T, want clock.System", Or(nil))
	}
	v := NewVirtual(time.Unix(42, 0))
	if Or(v) != Clock(v) {
		t.Fatalf("Or(v) did not pass through the given clock")
	}
}

func TestFuncAdapter(t *testing.T) {
	fixed := time.Unix(1234, 0)
	c := Func(func() time.Time { return fixed })
	if got := c.Now(); !got.Equal(fixed) {
		t.Fatalf("Func.Now() = %v, want %v", got, fixed)
	}
}
