package engine

import (
	"time"

	"dcvalidate/internal/obs"
)

// Metrics is the serving-layer instrumentation bundle: query-cache
// effectiveness and query latency. All recording methods are
// nil-receiver-safe no-ops, matching every other subsystem bundle, so an
// Engine without observability pays only nil checks.
type Metrics struct {
	cacheHits     *obs.Counter      // dcv_serve_cache_hits_total
	cacheMisses   *obs.Counter      // dcv_serve_cache_misses_total
	snapshotHits  *obs.Counter      // dcv_serve_snapshot_hits_total
	snapshotMiss  *obs.Counter      // dcv_serve_snapshot_misses_total
	querySeconds  *obs.HistogramVec // dcv_serve_query_seconds{kind}
	queries       *obs.CounterVec   // dcv_serve_queries_total{kind}
	sweeps        *obs.CounterVec   // dcv_serve_sweeps_total{mode}
	reportDevices *obs.Gauge        // dcv_serve_report_devices
}

// NewMetrics registers the serving metric families in r and returns the
// recording handles. Idempotent, like every bundle constructor.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		cacheHits: r.Counter("dcv_serve_cache_hits_total",
			"Queries answered from the generation-keyed report cache with no revalidation work."),
		cacheMisses: r.Counter("dcv_serve_cache_misses_total",
			"Queries that found the report cache stale and triggered a revalidation."),
		snapshotHits: r.Counter("dcv_serve_snapshot_hits_total",
			"Reachability queries answered from the cached global snapshot."),
		snapshotMiss: r.Counter("dcv_serve_snapshot_misses_total",
			"Reachability queries that rematerialized the global snapshot."),
		querySeconds: r.HistogramVec("dcv_serve_query_seconds",
			"Query latency by kind (device, reach, summary).", obs.LatencyBuckets, "kind"),
		queries: r.CounterVec("dcv_serve_queries_total",
			"Queries served by kind.", "kind"),
		sweeps: r.CounterVec("dcv_serve_sweeps_total",
			"Report-cache refreshes by mode (single, sharded).", "mode"),
		reportDevices: r.Gauge("dcv_serve_report_devices",
			"Devices covered by the cached report."),
	}
}

func (m *Metrics) hit() {
	if m != nil {
		m.cacheHits.Inc()
	}
}

func (m *Metrics) miss() {
	if m != nil {
		m.cacheMisses.Inc()
	}
}

func (m *Metrics) snapshot(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.snapshotHits.Inc()
	} else {
		m.snapshotMiss.Inc()
	}
}

func (m *Metrics) observeQuery(kind string, d time.Duration) {
	if m == nil {
		return
	}
	m.queries.With(kind).Inc()
	m.querySeconds.With(kind).ObserveDuration(d)
}

func (m *Metrics) observeSweep(mode string, devices int) {
	if m == nil {
		return
	}
	m.sweeps.With(mode).Inc()
	m.reportDevices.Set(float64(devices))
}
