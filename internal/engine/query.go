package engine

import (
	"fmt"
	"sort"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// The Query API: the serving-layer questions the paper's monitoring
// pipeline answers continuously — "is device X conformant?", "can prefix
// A reach B?", "how healthy is the fleet?" — backed by two
// generation-keyed caches so steady-state repeat queries are O(1) map
// hits with zero revalidation work:
//
//   - the report cache (last complete sweep + a device-name index),
//     refreshed through the sharded Sweeper when one is installed and
//     through the blast-radius delta path otherwise;
//   - the global snapshot cache behind reachability queries, which also
//     derives counterexample packets for failing trajectories.
//
// Cached queries take only the read lock, so they proceed concurrently
// with each other; a stale cache upgrades to the write lock, re-checks
// (another query may have refreshed meanwhile — that still counts as a
// hit), and revalidates only the journaled blast radius.

// DeviceAnswer answers "is device X conformant?".
type DeviceAnswer struct {
	Device     string           `json:"device"`
	Role       string           `json:"role"`
	Conformant bool             `json:"conformant"`
	Contracts  int              `json:"contracts"`
	Violations []rcdc.Violation `json:"violations,omitempty"`
	Generation uint64           `json:"generation"`
	Cached     bool             `json:"cached"`
}

// Counterexample is a concrete packet demonstrating a failed reachability
// query: a header addressed into the destination prefix plus the
// hop-by-hop trajectory ending where the packet dies.
type Counterexample struct {
	SrcIP   string   `json:"src_ip,omitempty"`
	DstIP   string   `json:"dst_ip"`
	Path    []string `json:"path"`
	DropsAt string   `json:"drops_at"`
	Reason  string   `json:"reason"` // no-route, wrong-delivery, loop
}

// ReachAnswer answers "can traffic from src reach dst?". When dst is a
// device hosting several prefixes, the answer aggregates over all of
// them: Reaches means every prefix is reached on every ECMP branch.
type ReachAnswer struct {
	Src            string          `json:"src"`
	Dst            string          `json:"dst"`
	Prefixes       []string        `json:"prefixes"`
	Reaches        bool            `json:"reaches"`
	Dropped        bool            `json:"dropped"`
	MinHops        int             `json:"min_hops"`
	MaxHops        int             `json:"max_hops"`
	Paths          int             `json:"paths"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
	Generation     uint64          `json:"generation"`
	Cached         bool            `json:"cached"`
}

// Summary answers "how healthy is the fleet?".
type Summary struct {
	Devices    int    `json:"devices"`
	Healthy    int    `json:"healthy"`
	Violating  int    `json:"violating"`
	Contracts  int    `json:"contracts"`
	Violations int    `json:"violations"`
	HighRisk   int    `json:"high_risk"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Cached     bool   `json:"cached"`
}

// ensureReportLocked returns a report reflecting the current topology
// generation, refreshing the cache when stale. Caller holds the write
// lock. The bool reports whether the cache answered (a hit).
func (e *Engine) ensureReportLocked() (*rcdc.Report, bool, error) {
	gen := e.topo.Generation()
	if e.report != nil && e.report.Generation == gen {
		e.serveM.hit()
		return e.report, true, nil
	}
	e.serveM.miss()
	mode := "single"
	var rep *rcdc.Report
	var err error
	if e.sweeper != nil {
		mode = "sharded"
		rep, err = e.sweeper.Sweep()
	} else {
		rep, err = e.validateDeltaLocked(e.report, Options{})
	}
	if err != nil {
		return nil, false, err
	}
	idx := make(map[string]int, len(rep.Devices))
	for i := range rep.Devices {
		idx[rep.Devices[i].Name] = i
	}
	e.report = rep
	e.reportIdx = idx
	e.serveM.observeSweep(mode, len(rep.Devices))
	return rep, false, nil
}

// ensureGlobalLocked returns a global snapshot checker for the current
// generation, rematerializing when stale. Caller holds the write lock.
func (e *Engine) ensureGlobalLocked() (*rcdc.GlobalChecker, bool, error) {
	gen := e.topo.Generation()
	if e.global != nil && e.globalGen == gen {
		e.serveM.snapshot(true)
		return e.global, true, nil
	}
	e.serveM.snapshot(false)
	g, err := rcdc.NewGlobalChecker(e.topo, e.cachedSourceLocked())
	if err != nil {
		return nil, false, err
	}
	e.global = g
	e.globalGen = gen
	return g, false, nil
}

func deviceAnswer(rep *rcdc.Report, i int, cached bool) *DeviceAnswer {
	dr := &rep.Devices[i]
	ans := &DeviceAnswer{
		Device:     dr.Name,
		Role:       dr.Role.String(),
		Conformant: dr.Healthy(),
		Contracts:  dr.Contracts,
		Generation: rep.Generation,
		Cached:     cached,
	}
	for _, v := range dr.Violations {
		ans.Violations = append(ans.Violations, v.Clone())
	}
	return ans
}

// QueryDevice answers "is device name conformant?" from the report
// cache. On a hit this is an O(1) index lookup under the read lock; on a
// miss only the journaled blast radius is revalidated first.
func (e *Engine) QueryDevice(name string) (*DeviceAnswer, error) {
	e.mu.RLock()
	c := clock.Or(e.clk)
	start := c.Now()
	if e.report != nil && e.report.Generation == e.topo.Generation() {
		if i, ok := e.reportIdx[name]; ok {
			ans := deviceAnswer(e.report, i, true)
			e.serveM.hit()
			e.mu.RUnlock()
			e.serveM.observeQuery("device", clock.Since(c, start))
			return ans, nil
		}
		e.mu.RUnlock()
		return nil, fmt.Errorf("dcvalidate: unknown device %q", name)
	}
	e.mu.RUnlock()

	e.mu.Lock()
	rep, cached, err := e.ensureReportLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	i, ok := e.reportIdx[name]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("dcvalidate: unknown device %q", name)
	}
	ans := deviceAnswer(rep, i, cached)
	e.mu.Unlock()
	e.serveM.observeQuery("device", clock.Since(c, start))
	return ans, nil
}

// Summary answers "how healthy is the fleet?" from the report cache.
func (e *Engine) Summary() (*Summary, error) {
	e.mu.RLock()
	c := clock.Or(e.clk)
	start := c.Now()
	if e.report != nil && e.report.Generation == e.topo.Generation() {
		s := e.summaryFrom(e.report, true)
		e.serveM.hit()
		e.mu.RUnlock()
		e.serveM.observeQuery("summary", clock.Since(c, start))
		return s, nil
	}
	e.mu.RUnlock()

	e.mu.Lock()
	rep, cached, err := e.ensureReportLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	s := e.summaryFrom(rep, cached)
	e.mu.Unlock()
	e.serveM.observeQuery("summary", clock.Since(c, start))
	return s, nil
}

// summaryFrom derives the fleet summary; caller holds at least the read
// lock (for the sweeper width).
func (e *Engine) summaryFrom(rep *rcdc.Report, cached bool) *Summary {
	s := &Summary{
		Devices:    len(rep.Devices),
		Contracts:  rep.Checked,
		Violations: rep.Failures,
		HighRisk:   rep.HighRisk(),
		Generation: rep.Generation,
		Shards:     1,
		Cached:     cached,
	}
	if e.sweeper != nil {
		s.Shards = e.sweeper.Shards()
	}
	for i := range rep.Devices {
		if rep.Devices[i].Healthy() {
			s.Healthy++
		} else {
			s.Violating++
		}
	}
	return s
}

// QueryViolations returns every current violation (deep-copied, so
// callers may mutate freely) plus the generation it reflects.
func (e *Engine) QueryViolations() ([]rcdc.Violation, uint64, error) {
	e.mu.Lock()
	rep, _, err := e.ensureReportLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, 0, err
	}
	vs := rep.Violations()
	gen := rep.Generation
	e.mu.Unlock()
	return vs, gen, nil
}

// reachTargets resolves the dst operand of a reachability query: a
// device name (all its hosted prefixes) or a CIDR prefix.
func reachTargets(topo *topology.Topology, dst string) ([]topology.HostedPrefix, error) {
	if dev, ok := topo.ByName(dst); ok {
		if len(dev.HostedPrefixes) == 0 {
			return nil, fmt.Errorf("dcvalidate: device %q hosts no prefixes", dst)
		}
		var hps []topology.HostedPrefix
		for _, hp := range topo.HostedPrefixes() {
			if hp.ToR == dev.ID {
				hps = append(hps, hp)
			}
		}
		return hps, nil
	}
	pfx, err := ipnet.ParsePrefix(dst)
	if err != nil {
		return nil, fmt.Errorf("dcvalidate: destination %q is neither a device nor a prefix", dst)
	}
	want := pfx.String()
	for _, hp := range topo.HostedPrefixes() {
		if hp.Prefix.String() == want {
			return []topology.HostedPrefix{hp}, nil
		}
	}
	return nil, fmt.Errorf("dcvalidate: no ToR hosts prefix %s", want)
}

// reachAnswer traces every target prefix through the snapshot and
// aggregates. Pure reads on g; safe under the read lock.
func (e *Engine) reachAnswer(g *rcdc.GlobalChecker, src *topology.Device, dst string, hps []topology.HostedPrefix, gen uint64, cached bool) *ReachAnswer {
	ans := &ReachAnswer{
		Src: src.Name, Dst: dst,
		Reaches:    true,
		MinHops:    -1,
		Generation: gen,
		Cached:     cached,
	}
	var srcIP string
	if len(src.HostedPrefixes) > 0 {
		srcIP = src.HostedPrefixes[0].First().String()
	}
	for _, hp := range hps {
		ans.Prefixes = append(ans.Prefixes, hp.Prefix.String())
		r := g.CheckPair(src.ID, hp)
		if !r.Reaches {
			ans.Reaches = false
		}
		if r.Dropped {
			ans.Dropped = true
		}
		if r.Reaches {
			if ans.MinHops < 0 || r.MinHops < ans.MinHops {
				ans.MinHops = r.MinHops
			}
			if r.MaxHops > ans.MaxHops {
				ans.MaxHops = r.MaxHops
			}
			if ans.Paths == 0 || r.Paths < ans.Paths {
				ans.Paths = r.Paths
			}
		}
		if ans.Counterexample == nil && (!r.Reaches || r.Dropped) {
			if path, reason, ok := g.CounterexamplePath(src.ID, hp); ok {
				ce := &Counterexample{
					SrcIP:  srcIP,
					DstIP:  hp.Prefix.First().String(),
					Reason: reason,
				}
				for _, d := range path {
					ce.Path = append(ce.Path, e.topo.Device(d).Name)
				}
				ce.DropsAt = ce.Path[len(ce.Path)-1]
				ans.Counterexample = ce
			}
		}
	}
	sort.Strings(ans.Prefixes)
	return ans
}

// QueryReach answers "can traffic from src reach dst?" where dst is a
// device name or a CIDR prefix. On a hit the trace runs against the
// cached global snapshot under the read lock; a failing answer carries a
// counterexample packet — the concrete header and hop-by-hop trajectory
// ending where it is dropped, looped, or misdelivered.
func (e *Engine) QueryReach(src, dst string) (*ReachAnswer, error) {
	e.mu.RLock()
	c := clock.Or(e.clk)
	start := c.Now()
	if e.global != nil && e.globalGen == e.topo.Generation() {
		ans, err := e.reachLocked(e.global, src, dst, true)
		if err == nil {
			e.serveM.snapshot(true)
		}
		e.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		e.serveM.observeQuery("reach", clock.Since(c, start))
		return ans, nil
	}
	e.mu.RUnlock()

	e.mu.Lock()
	g, cached, err := e.ensureGlobalLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	ans, err := e.reachLocked(g, src, dst, cached)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	e.serveM.observeQuery("reach", clock.Since(c, start))
	return ans, nil
}

// reachLocked resolves operands and traces; caller holds a lock.
func (e *Engine) reachLocked(g *rcdc.GlobalChecker, src, dst string, cached bool) (*ReachAnswer, error) {
	sdev, ok := e.topo.ByName(src)
	if !ok {
		return nil, fmt.Errorf("dcvalidate: unknown device %q", src)
	}
	hps, err := reachTargets(e.topo, dst)
	if err != nil {
		return nil, err
	}
	return e.reachAnswer(g, sdev, dst, hps, e.topo.Generation(), cached), nil
}
