// Package engine is the orchestration core of the validation plane: the
// logic that used to be inlined in the dcvalidate facade — topology +
// change journal + FIB synthesis + rcdc validation + blast-radius delta
// planning + lint gating + observability wiring — extracted behind a
// narrow interface (Validate, ValidateDelta, Query, Apply) so it can be
// driven by three different frontends without duplication:
//
//   - the public dcvalidate.Datacenter facade (a thin, source-compatible
//     client of this package),
//   - the sharded coordinator (internal/shard), which partitions sweeps
//     across N validator shards and plugs back in as a Sweeper,
//   - the dcvalidated HTTP server (internal/serve), which exposes the
//     Query API over the wire.
//
// The Engine owns the serving caches the paper's production pipeline
// implies (Figure 5): a generation-keyed report cache (steady-state
// conformance queries are O(1) map hits with zero revalidation work) and
// a generation-keyed global snapshot for reachability queries. It is safe
// for concurrent use: mutations (Apply) and validations take the write
// lock, cached queries take the read lock only.
package engine

import (
	"fmt"
	"io"
	"sync"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/bv"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/conflint"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/emulator"
	"dcvalidate/internal/explore"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/shard"
	"dcvalidate/internal/topology"
)

// Options configures one validation run (the engine-level mirror of the
// facade's ValidateOptions).
type Options struct {
	// Engine selects the verification engine for this run. KindDefault
	// defers to the SMT flag below, then the engine-wide default
	// (SetDefaultEngine), then trie.
	Engine Kind
	// SMT selects the bit-vector-logic engine (§2.5.1); default is the
	// specialized trie engine (§2.5.2). Subsumed by Engine; kept because
	// the facade's ValidateOptions predates engine kinds.
	SMT bool
	// Exact extends the exact-ECMP-set requirement to specific contracts.
	Exact bool
	// Workers is the parallelism degree (0 = all CPUs).
	Workers int
	// Source overrides the FIB source (fault injection, SimulateBGP).
	Source fib.Source
}

// Sweeper produces a complete, generation-stamped fleet report — the
// hook the sharded coordinator implements. A Sweeper must return reports
// byte-identical (modulo timing) to a single-engine full sweep of the
// same topology state; the shard equivalence tests lock that contract.
type Sweeper interface {
	Sweep() (*rcdc.Report, error)
	Shards() int
}

// Engine bundles a topology with its metadata facts, converged FIB
// synthesis, incremental-validation state, serving caches, and
// observability wiring. Create one with New; zero values are not usable.
type Engine struct {
	mu   sync.RWMutex
	topo *topology.Topology
	cfg  map[topology.DeviceID]*bgp.DeviceConfig
	clk  clock.Clock

	facts *metadata.Facts // regenerated lazily if nil

	// Incremental-validation state: a persistent FIB source with
	// generation-keyed table caching and a memoized contract generator.
	synth *bgp.Synth
	cgen  *contracts.Generator

	// Serving caches, all keyed on the topology generation. report is the
	// last complete sweep; reportIdx indexes it by device name for O(1)
	// conformance answers. global is the materialized snapshot behind
	// reachability queries.
	report    *rcdc.Report
	reportIdx map[string]int
	global    *rcdc.GlobalChecker
	globalGen uint64

	// sweeper, when set, routes report-cache refreshes through the
	// sharded coordinator instead of the single-engine delta path.
	sweeper Sweeper

	// lintGate makes Apply(SetConfig) render and statically lint the
	// candidate fleet, rejecting changes that introduce findings.
	lintGate bool

	// defaultKind routes runs that don't name an engine; pec/pecExact are
	// the engine-lifetime packet-equivalence-class checkers (created
	// lazily so non-PEC engines never pay for them) whose atomization
	// caches the delta path invalidates by blast radius. Engine-lifetime
	// also scopes the shared atom arena: shapes interned on the first
	// sweep keep serving ShapeHits across later sweeps and deltas, with
	// Invalidate detaching (and at zero refs evicting) rewritten devices.
	defaultKind Kind
	pec         *pec.Checker
	pecExact    *pec.Checker

	// Observability: nil — and every call site a no-op — until Metrics()
	// is first called.
	reg       *obs.Registry
	rcdcM     *rcdc.Metrics
	bvM       *bv.Metrics
	bgpM      *bgp.Metrics
	deltaM    *delta.Metrics
	exploreM  *explore.Metrics
	conflintM *conflint.Metrics
	pecM      *pec.Metrics
	serveM    *Metrics
}

// New returns an engine over the topology and device-configuration map.
// The map is shared, not copied: the facade exposes it as a public field,
// so both layers must observe the same storage. A nil cfg gets a fresh
// empty map.
func New(topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig) *Engine {
	if cfg == nil {
		cfg = map[topology.DeviceID]*bgp.DeviceConfig{}
	}
	return &Engine{topo: topo, cfg: cfg}
}

// Topo returns the engine's topology. Direct mutation bypasses the
// engine's locking; concurrent callers must go through Apply.
func (e *Engine) Topo() *topology.Topology { return e.topo }

// Config returns the shared device-configuration map. Concurrent callers
// must mutate it through Apply (SetConfig), never directly.
func (e *Engine) Config() map[topology.DeviceID]*bgp.DeviceConfig { return e.cfg }

// SetClock injects the time source used for query-latency observation;
// nil (the default) means the system clock.
func (e *Engine) SetClock(c clock.Clock) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clk = c
}

// SetSweeper routes full-fleet report refreshes through s (the sharded
// coordinator); nil restores the single-engine path. The report cache is
// dropped so the next query re-derives it through the new path.
func (e *Engine) SetSweeper(s Sweeper) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweeper = s
	e.report = nil
	e.reportIdx = nil
}

// EnableSharding partitions full-fleet sweeps across n validator shards
// via a consistent-hash coordinator over the Clos pod structure. When
// the engine's registry exists (Metrics() was called), the coordinator
// is instrumented into it; call Metrics() first to observe shard
// counters. The report cache is dropped so the next query re-derives it
// through the coordinator.
func (e *Engine) EnableSharding(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var m *shard.Metrics
	if e.reg != nil {
		m = shard.NewMetrics(e.reg)
	}
	e.sweeper = shard.New(e.topo, e.cfg, n, shard.Options{
		SMT:          e.defaultKind == KindSMT,
		PEC:          e.defaultKind == KindPEC,
		PECMetrics:   e.pecM,
		Metrics:      m,
		DeltaMetrics: e.deltaM,
		Clock:        e.clk,
	})
	e.report = nil
	e.reportIdx = nil
}

// DisableSharding restores single-engine sweeps.
func (e *Engine) DisableSharding() { e.SetSweeper(nil) }

// Shards reports the partition width of the active sweeper (1 when
// sweeps run single-engine).
func (e *Engine) Shards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sweeper == nil {
		return 1
	}
	return e.sweeper.Shards()
}

// Facts returns the metadata snapshot, generated on first call and then
// cached forever by design: facts model intent, so link failures and
// session shutdowns MUST NOT alter them (§2.4) — only intent edits would,
// and the engine does not support those on a built topology.
func (e *Engine) Facts() *metadata.Facts {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.factsLocked()
}

func (e *Engine) factsLocked() *metadata.Facts {
	if e.facts == nil {
		e.facts = metadata.FromTopology(e.topo)
	}
	return e.facts
}

// Metrics returns the engine's metric registry, creating it — and wiring
// the per-subsystem instrumentation bundles into every validator, solver,
// FIB source, and blast-radius computation the engine builds — on first
// call. Until then instrumentation is off and costs nothing.
func (e *Engine) Metrics() *obs.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reg == nil {
		e.reg = obs.NewRegistry()
		e.rcdcM = rcdc.NewMetrics(e.reg)
		e.bvM = bv.NewMetrics(e.reg)
		e.bgpM = bgp.NewMetrics(e.reg)
		e.deltaM = delta.NewMetrics(e.reg)
		e.exploreM = explore.NewMetrics(e.reg)
		e.conflintM = conflint.NewMetrics(e.reg)
		e.pecM = pec.NewMetrics(e.reg)
		e.serveM = NewMetrics(e.reg)
		if e.synth != nil {
			e.synth.Metrics = e.bgpM
		}
		if e.pec != nil {
			e.pec.Metrics = e.pecM
		}
		if e.pecExact != nil {
			e.pecExact.Metrics = e.pecM
		}
	}
	return e.reg
}

// Contracts generates the full contract set for every device from the
// metadata facts (§2.4.1–2.4.3).
func (e *Engine) Contracts() []contracts.DeviceContracts {
	e.mu.Lock()
	defer e.mu.Unlock()
	return contracts.NewGenerator(e.factsLocked()).All()
}

// NewSource returns a fresh converged-state FIB source reflecting current
// link state and device configurations.
func (e *Engine) NewSource() fib.Source {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.newSourceLocked()
}

func (e *Engine) newSourceLocked() *bgp.Synth {
	s := bgp.NewSynth(e.topo, e.cfg)
	s.Metrics = e.bgpM
	return s
}

// SimulateBGP runs the full EBGP path-vector simulation and returns it as
// a FIB source (higher fidelity than NewSource; cost scales with the
// datacenter).
func (e *Engine) SimulateBGP() fib.Source {
	e.mu.Lock()
	defer e.mu.Unlock()
	sim := bgp.NewSim(e.topo, e.cfg)
	sim.Metrics = e.bgpM
	sim.Run()
	return sim
}

// cachedSourceLocked returns the persistent generation-cached FIB source
// used by incremental validation and the serving caches, refreshed
// against the live topology.
func (e *Engine) cachedSourceLocked() *bgp.Synth {
	if e.synth == nil {
		e.synth = bgp.NewSynth(e.topo, e.cfg)
		e.synth.EnableTableCache()
		e.synth.Metrics = e.bgpM
	}
	e.synth.Refresh()
	return e.synth
}

// ChangeKind enumerates the mutations Apply supports.
type ChangeKind int

const (
	// FailLink marks the link between A and B physically down.
	FailLink ChangeKind = iota
	// RestoreLink marks the link between A and B physically up again.
	RestoreLink
	// ShutSession administratively shuts the BGP session between A and B.
	ShutSession
	// RestoreSession brings the BGP session between A and B back up.
	RestoreSession
	// SetConfig installs (or, with a nil Config, clears) Device's
	// configuration, journaling the change; subject to the lint gate.
	SetConfig
	// RestoreAll returns every link and session to the healthy state.
	RestoreAll
)

// Change is one mutation for Apply: link/session flips between named
// devices A and B, a device-config install on Device, or a fleet-wide
// restore.
type Change struct {
	Kind   ChangeKind
	A, B   string
	Device string
	Config *bgp.DeviceConfig
}

// Apply performs one topology or configuration mutation under the write
// lock, journaling it so incremental revalidation and the serving caches
// observe it. Error strings keep the facade's "dcvalidate:" namespace —
// they surface verbatim through the public API.
func (e *Engine) Apply(c Change) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch c.Kind {
	case FailLink, RestoreLink, ShutSession, RestoreSession:
		da, db, err := e.pairLocked(c.A, c.B)
		if err != nil {
			return err
		}
		var ok bool
		switch c.Kind {
		case FailLink:
			ok = e.topo.FailLink(da, db)
		case RestoreLink:
			ok = e.topo.RestoreLink(da, db)
		case ShutSession:
			ok = e.topo.ShutSession(da, db)
		default: // RestoreSession
			if l, found := e.topo.LinkBetween(da, db); found {
				e.topo.SetSessionUp(l.ID, true)
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("dcvalidate: no link between %s and %s", c.A, c.B)
		}
		return nil
	case SetConfig:
		return e.setConfigLocked(c.Device, c.Config)
	case RestoreAll:
		e.topo.RestoreAll()
		return nil
	}
	return fmt.Errorf("dcvalidate: unknown change kind %d", c.Kind)
}

func (e *Engine) pairLocked(a, b string) (topology.DeviceID, topology.DeviceID, error) {
	da, ok := e.topo.ByName(a)
	if !ok {
		return 0, 0, fmt.Errorf("dcvalidate: unknown device %q", a)
	}
	db, ok := e.topo.ByName(b)
	if !ok {
		return 0, 0, fmt.Errorf("dcvalidate: unknown device %q", b)
	}
	return da.ID, db.ID, nil
}

func (e *Engine) setConfigLocked(device string, cfg *bgp.DeviceConfig) error {
	dev, ok := e.topo.ByName(device)
	if !ok {
		return fmt.Errorf("dcvalidate: unknown device %q", device)
	}
	if e.lintGate {
		candidate := make(map[topology.DeviceID]*bgp.DeviceConfig, len(e.cfg)+1)
		for id, c := range e.cfg {
			candidate[id] = c
		}
		if cfg == nil {
			delete(candidate, dev.ID)
		} else {
			candidate[dev.ID] = cfg
		}
		rep, err := e.lintLocked(candidate)
		if err != nil {
			return err
		}
		if len(rep.Findings) > 0 {
			return &LintError{Device: device, Report: rep}
		}
	}
	if cfg == nil {
		delete(e.cfg, dev.ID)
	} else {
		e.cfg[dev.ID] = cfg
	}
	e.topo.NoteDeviceChanged(dev.ID)
	return nil
}

// EnableLintGate turns on lint-before-apply for SetConfig changes.
func (e *Engine) EnableLintGate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lintGate = true
}

// DisableLintGate turns lint-before-apply back off.
func (e *Engine) DisableLintGate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lintGate = false
}

// Lint renders the current fleet and runs the conflint analyzer suite
// over it.
func (e *Engine) Lint() (*conflint.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lintLocked(e.cfg)
}

func (e *Engine) lintLocked(cfgs map[topology.DeviceID]*bgp.DeviceConfig) (*conflint.Report, error) {
	texts, err := devconf.RenderFleet(e.topo, cfgs)
	if err != nil {
		return nil, err
	}
	fleet, err := conflint.NewFleet(e.topo, texts)
	if err != nil {
		return nil, err
	}
	return (&conflint.Runner{Metrics: e.conflintM}).Run(fleet)
}

// LintError is returned by Apply(SetConfig) when the lint gate rejects a
// change; Report carries the findings that would have been introduced.
type LintError struct {
	Device string
	Report *conflint.Report
}

func (e *LintError) Error() string {
	return fmt.Sprintf("dcvalidate: lint gate rejected config change on %s: %d finding(s)\n%s",
		e.Device, len(e.Report.Findings), e.Report)
}

// checkerLocked builds the verification engine for one run, threading the
// per-engine instrumentation (nil until Metrics() is called) into the SMT
// and PEC paths — the trie engine never allocates a solver. PEC checkers
// are persistent (see pecLocked) so their atomization caches amortize
// across runs.
func (e *Engine) checkerLocked(o Options) rcdc.Checker {
	switch e.resolveKindLocked(o) {
	case KindSMT:
		return rcdc.SMTChecker{Exact: o.Exact, Metrics: e.bvM}
	case KindPEC:
		return e.pecLocked(o.Exact)
	}
	return rcdc.TrieChecker{Exact: o.Exact}
}

// Validate runs local validation over every device. The report is stamped
// with the topology generation observed before pulling, so it can seed
// ValidateDelta.
func (e *Engine) Validate(opts Options) (*rcdc.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.validateLocked(opts)
}

func (e *Engine) validateLocked(opts Options) (*rcdc.Report, error) {
	gen := e.topo.Generation()
	src := opts.Source
	if src == nil {
		src = e.newSourceLocked()
	}
	v := rcdc.Validator{Checker: e.checkerLocked(opts), Workers: opts.Workers, Metrics: e.rcdcM}
	rep, err := v.ValidateAll(e.factsLocked(), src)
	if rep != nil {
		rep.Generation = gen
	}
	return rep, err
}

// ValidateDelta revalidates only the blast radius of the topology changes
// journaled since prev was taken, splicing the fresh per-device results
// into prev — byte-for-byte identical to a from-scratch Validate of the
// current state. It falls back to a full Validate when prev is nil, the
// journal no longer reaches back, or the blast radius is unbounded.
func (e *Engine) ValidateDelta(prev *rcdc.Report, opts Options) (*rcdc.Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.validateDeltaLocked(prev, opts)
}

func (e *Engine) validateDeltaLocked(prev *rcdc.Report, opts Options) (*rcdc.Report, error) {
	if opts.Source == nil {
		opts.Source = e.cachedSourceLocked()
	}
	if prev == nil {
		return e.validateLocked(opts)
	}
	changes, ok := e.topo.ChangesSince(prev.Generation)
	if !ok {
		return e.validateLocked(opts)
	}
	ds := delta.Compute(e.topo, changes, delta.Options{
		UnboundedConfig: bgp.ConfigUnbounded(e.cfg),
		Metrics:         e.deltaM,
	})
	if ds.Full() {
		return e.validateLocked(opts)
	}
	e.pecInvalidateLocked(ds.Devices())
	gen := e.topo.Generation()
	if e.cgen == nil {
		e.cgen = contracts.NewGenerator(e.factsLocked())
		e.cgen.EnableMemo()
	}
	v := rcdc.Validator{Checker: e.checkerLocked(opts), Workers: opts.Workers, Metrics: e.rcdcM}
	rep, err := v.ValidateDelta(prev, e.factsLocked(), e.cgen, opts.Source, ds.Devices())
	if rep != nil {
		rep.Generation = gen
	}
	return rep, err
}

// CheckGlobalIntent materializes a global snapshot and verifies all-pairs
// ToR reachability along maximally redundant shortest paths; empty result
// means the intent holds.
func (e *Engine) CheckGlobalIntent() ([]rcdc.PairResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := rcdc.NewGlobalChecker(e.topo, e.newSourceLocked())
	if err != nil {
		return nil, err
	}
	return g.Check(rcdc.FullRedundancy), nil
}

// ExploreFailures model-checks the contracts against every combination of
// up to opts.K simultaneous failures on a clone of the topology.
func (e *Engine) ExploreFailures(opts explore.Options) (*explore.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if opts.Metrics == nil {
		opts.Metrics = e.exploreM
	}
	return (&explore.Explorer{Topo: e.topo, Cfg: e.cfg, Opts: opts}).Run()
}

// NewPipeline returns the §2.7 precheck pipeline treating this engine's
// datacenter as production.
func (e *Engine) NewPipeline() *emulator.Pipeline {
	e.mu.Lock()
	defer e.mu.Unlock()
	net := emulator.NewNetwork(e.topo)
	net.Cfg = e.cfg
	return &emulator.Pipeline{Production: net}
}

// NewMonitor returns an RCDC live-monitoring instance watching this
// datacenter (Figure 5), wired into the engine's registry when Metrics()
// has been called.
func (e *Engine) NewMonitor(name string) *monitor.Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	dc := monitor.NewDatacenter(e.topo.Params.Name, e.topo, e.cfg)
	dc.Source = e.newSourceLocked()
	in := monitor.NewInstance(name, dc)
	if e.reg != nil {
		in.EnableObservability(e.reg)
	}
	return in
}

// WriteFIB renders a device's routing table in the Figure 2 text format.
func (e *Engine) WriteFIB(w io.Writer, device string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	dev, ok := e.topo.ByName(device)
	if !ok {
		return fmt.Errorf("dcvalidate: unknown device %q", device)
	}
	tbl, err := e.newSourceLocked().Table(dev.ID)
	if err != nil {
		return err
	}
	return tbl.WriteText(w, e.topo)
}
