package engine

import (
	"fmt"
	"strings"

	"dcvalidate/internal/pec"
	"dcvalidate/internal/topology"
)

// Kind names a verification engine. Runs resolve it in this order: an
// explicit Options.Engine wins; the legacy Options.SMT flag comes next
// (kept for facade compatibility); then the engine-wide default set by
// SetDefaultEngine; trie last.
type Kind int

const (
	// KindDefault defers to the engine-wide default (trie unless
	// SetDefaultEngine says otherwise).
	KindDefault Kind = iota
	// KindTrie is the specialized prefix-trie engine (§2.5.2).
	KindTrie
	// KindSMT is the bit-vector-logic engine (§2.5.1).
	KindSMT
	// KindPEC is the packet-equivalence-class engine (internal/pec):
	// per-device atoms with interned hop-set IDs, verdicts byte-identical
	// to the trie engine, content-hash cached and blast-radius
	// invalidated.
	KindPEC
)

func (k Kind) String() string {
	switch k {
	case KindTrie:
		return "trie"
	case KindSMT:
		return "smt"
	case KindPEC:
		return "pec"
	}
	return "default"
}

// ParseKind parses an -engine flag value. The empty string means
// KindDefault so binaries can pass flags through untouched.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return KindDefault, nil
	case "trie":
		return KindTrie, nil
	case "smt":
		return KindSMT, nil
	case "pec":
		return KindPEC, nil
	}
	return KindDefault, fmt.Errorf("dcvalidate: unknown engine %q (want trie, smt, or pec)", s)
}

// SetDefaultEngine sets the checker used by runs that don't name one
// (Options.Engine == KindDefault and SMT unset) — including the serving
// path's cache refreshes, which is how dcvalidated's -engine flag takes
// effect. Call it before EnableSharding so the coordinator inherits the
// choice; the report caches are dropped either way, so the next query
// revalidates through the new engine.
func (e *Engine) SetDefaultEngine(k Kind) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defaultKind = k
	e.report = nil
	e.reportIdx = nil
}

// DefaultEngine reports the engine-wide default kind.
func (e *Engine) DefaultEngine() Kind {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.defaultKind
}

// resolveKindLocked applies the Options → SMT flag → engine default →
// trie precedence.
func (e *Engine) resolveKindLocked(o Options) Kind {
	switch {
	case o.Engine != KindDefault:
		return o.Engine
	case o.SMT:
		return KindSMT
	case e.defaultKind != KindDefault:
		return e.defaultKind
	}
	return KindTrie
}

// pecLocked returns the engine-lifetime PEC checker for the given
// semantics, creating it on first use. Persistence is the point: the
// checker's content-hash atomization cache survives across runs, and
// pecInvalidateLocked keeps it consistent with the blast-radius dirty
// sets of the delta path.
func (e *Engine) pecLocked(exact bool) *pec.Checker {
	p := &e.pec
	if exact {
		p = &e.pecExact
	}
	if *p == nil {
		*p = &pec.Checker{Exact: exact, Clock: e.clk, Metrics: e.pecM}
	}
	return *p
}

// pecInvalidateLocked forwards a blast-radius dirty set to the
// persistent PEC checkers: dirty devices re-atomize on their next check,
// every other device's cached verdict survives the delta run untouched.
func (e *Engine) pecInvalidateLocked(devs []topology.DeviceID) {
	if e.pec != nil {
		e.pec.Invalidate(devs)
	}
	if e.pecExact != nil {
		e.pecExact.Invalidate(devs)
	}
}
