package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func testParams() topology.Params {
	return topology.Params{
		Clusters: 2, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 1,
		PrefixesPerToR: 1,
	}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	topo, err := topology.New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, nil)
}

// renderReport renders the semantic content of a report — device identity
// and violations, excluding timing — for byte-identity comparison.
func renderReport(rep *rcdc.Report) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "checked=%d failures=%d\n", rep.Checked, rep.Failures)
	for i := range rep.Devices {
		d := &rep.Devices[i]
		fmt.Fprintf(&buf, "dev=%d name=%s role=%s contracts=%d\n", d.Device, d.Name, d.Role, d.Contracts)
		for _, v := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", v.String())
		}
	}
	return buf.Bytes()
}

func sample(r *obs.Registry, name string, labels ...string) float64 {
	for _, s := range r.Snapshot() {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	return 0
}

// TestApplyDeltaEquivalence: a sequence of Apply mutations revalidated
// incrementally must render byte-identically to a from-scratch engine
// over the same state.
func TestApplyDeltaEquivalence(t *testing.T) {
	e := newTestEngine(t)
	rep, err := e.Validate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := []Change{
		{Kind: FailLink, A: "dc-c0-t0-0", B: "dc-c0-t1-0"},
		{Kind: ShutSession, A: "dc-c1-t0-0", B: "dc-c1-t1-1"},
		{Kind: RestoreLink, A: "dc-c0-t0-0", B: "dc-c0-t1-0"},
		{Kind: RestoreSession, A: "dc-c1-t0-0", B: "dc-c1-t1-1"},
		{Kind: FailLink, A: "dc-c0-t0-1", B: "dc-c0-t1-0"},
		{Kind: RestoreAll},
	}
	for i, c := range steps {
		if err := e.Apply(c); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		rep, err = e.ValidateDelta(rep, Options{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Fresh engine over a topology in the same state.
		fresh := newTestEngine(t)
		for _, cc := range steps[:i+1] {
			if err := fresh.Apply(cc); err != nil {
				t.Fatalf("step %d replay: %v", i, err)
			}
		}
		want, err := fresh.Validate(Options{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !bytes.Equal(renderReport(rep), renderReport(want)) {
			t.Fatalf("step %d: delta report diverged from full validate\n--- delta ---\n%s--- full ---\n%s",
				i, renderReport(rep), renderReport(want))
		}
		if rep.Generation != e.Topo().Generation() {
			t.Fatalf("step %d: report generation %d, topology %d", i, rep.Generation, e.Topo().Generation())
		}
	}
}

func TestApplyErrors(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Apply(Change{Kind: FailLink, A: "nope", B: "dc-c0-t1-0"}); err == nil ||
		!strings.Contains(err.Error(), `unknown device "nope"`) {
		t.Fatalf("want unknown-device error, got %v", err)
	}
	// Two existing devices with no link between them.
	if err := e.Apply(Change{Kind: FailLink, A: "dc-c0-t0-0", B: "dc-c1-t0-0"}); err == nil ||
		!strings.Contains(err.Error(), "no link between") {
		t.Fatalf("want no-link error, got %v", err)
	}
	if err := e.Apply(Change{Kind: RestoreSession, A: "dc-c0-t0-0", B: "dc-c1-t0-0"}); err == nil {
		t.Fatal("want no-link error for RestoreSession across clusters")
	}
}

// TestQueryDeviceCache: repeat queries at an unchanged generation are
// cache hits with no revalidation; a mutation invalidates exactly once.
func TestQueryDeviceCache(t *testing.T) {
	e := newTestEngine(t)
	reg := e.Metrics()

	a1, err := e.QueryDevice("dc-c0-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cached {
		t.Fatal("first query reported cached")
	}
	if !a1.Conformant || a1.Contracts == 0 {
		t.Fatalf("healthy fleet: %+v", a1)
	}
	if got := sample(reg, "dcv_serve_cache_misses_total"); got != 1 {
		t.Fatalf("misses after cold query = %v, want 1", got)
	}

	for i := 0; i < 3; i++ {
		a, err := e.QueryDevice("dc-c0-t0-0")
		if err != nil {
			t.Fatal(err)
		}
		if !a.Cached {
			t.Fatalf("repeat query %d not cached", i)
		}
	}
	if got := sample(reg, "dcv_serve_cache_hits_total"); got != 3 {
		t.Fatalf("hits after 3 repeats = %v, want 3", got)
	}
	if got := sample(reg, "dcv_serve_cache_misses_total"); got != 1 {
		t.Fatalf("misses after repeats = %v, want 1", got)
	}
	// A fleet sweep ran exactly once, in single mode.
	if got := sample(reg, "dcv_serve_sweeps_total", "mode", "single"); got != 1 {
		t.Fatalf("single sweeps = %v, want 1", got)
	}

	// Mutate: next query misses, revalidates, then hits again.
	if err := e.Apply(Change{Kind: FailLink, A: "dc-c0-t0-0", B: "dc-c0-t1-0"}); err != nil {
		t.Fatal(err)
	}
	a2, err := e.QueryDevice("dc-c0-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Cached {
		t.Fatal("post-mutation query reported cached")
	}
	if a2.Conformant {
		t.Fatal("ToR with failed uplink reported conformant")
	}
	if len(a2.Violations) == 0 {
		t.Fatal("no violations on non-conformant answer")
	}
	if got := sample(reg, "dcv_serve_cache_misses_total"); got != 2 {
		t.Fatalf("misses after mutation = %v, want 2", got)
	}

	if _, err := e.QueryDevice("ghost"); err == nil {
		t.Fatal("want error for unknown device")
	}
}

// TestQueryViolationsMutationSafe: vandalizing the returned slice must
// not corrupt the engine's cached report.
func TestQueryViolationsMutationSafe(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Apply(Change{Kind: FailLink, A: "dc-c0-t0-0", B: "dc-c0-t1-0"}); err != nil {
		t.Fatal(err)
	}
	vs, gen, err := e.QueryViolations()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("expected violations after link failure")
	}
	if gen != e.Topo().Generation() {
		t.Fatalf("violations generation %d, topology %d", gen, e.Topo().Generation())
	}
	a1, err := e.QueryDevice("dc-c0-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	before := fmt.Sprintf("%v", a1.Violations)
	for i := range vs {
		vs[i].Device = -99
		for j := range vs[i].Missing {
			vs[i].Missing[j] = -1
		}
		for j := range vs[i].Contract.NextHops {
			vs[i].Contract.NextHops[j] = -1
		}
	}
	a2, err := e.QueryDevice("dc-c0-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	if after := fmt.Sprintf("%v", a2.Violations); before != after {
		t.Fatalf("mutating QueryViolations() corrupted the cached report:\n%s\nvs\n%s", before, after)
	}
}

func TestSummary(t *testing.T) {
	e := newTestEngine(t)
	s, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	n := len(e.Topo().Devices)
	if s.Devices != n || s.Healthy != n || s.Violating != 0 || s.Violations != 0 {
		t.Fatalf("healthy fleet summary: %+v", s)
	}
	if s.Shards != 1 {
		t.Fatalf("shards = %d, want 1", s.Shards)
	}
	if err := e.Apply(Change{Kind: FailLink, A: "dc-c0-t0-0", B: "dc-c0-t1-0"}); err != nil {
		t.Fatal(err)
	}
	s2, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Violating == 0 || s2.Violations == 0 {
		t.Fatalf("post-failure summary: %+v", s2)
	}
	if s2.Cached {
		t.Fatal("post-mutation summary reported cached")
	}
	s3, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Cached {
		t.Fatal("repeat summary not cached")
	}
}

// TestQueryReach: healthy reach, then a destination isolated by failing
// all its uplinks must yield a counterexample trajectory.
func TestQueryReach(t *testing.T) {
	e := newTestEngine(t)
	a, err := e.QueryReach("dc-c0-t0-0", "dc-c1-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reaches || a.Dropped || a.Counterexample != nil {
		t.Fatalf("healthy reach: %+v", a)
	}
	if a.MinHops != 4 || a.MaxHops != 4 {
		t.Fatalf("inter-cluster hops = %d..%d, want 4..4", a.MinHops, a.MaxHops)
	}
	if len(a.Prefixes) == 0 {
		t.Fatal("no prefixes resolved")
	}

	// Same query by prefix instead of device name.
	ap, err := e.QueryReach("dc-c0-t0-0", a.Prefixes[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Reaches {
		t.Fatalf("reach by prefix: %+v", ap)
	}

	// Cached snapshot: repeat query is a hit.
	if !ap.Cached {
		t.Fatal("repeat reach query not cached")
	}

	// Isolate the destination ToR.
	for _, leaf := range []string{"dc-c1-t1-0", "dc-c1-t1-1"} {
		if err := e.Apply(Change{Kind: FailLink, A: "dc-c1-t0-0", B: leaf}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := e.QueryReach("dc-c0-t0-0", "dc-c1-t0-0")
	if err != nil {
		t.Fatal(err)
	}
	if b.Reaches {
		t.Fatal("isolated destination still reachable")
	}
	if b.Cached {
		t.Fatal("post-mutation reach reported cached")
	}
	ce := b.Counterexample
	if ce == nil {
		t.Fatal("no counterexample for unreachable destination")
	}
	if ce.Reason == "" || len(ce.Path) == 0 || ce.DropsAt != ce.Path[len(ce.Path)-1] {
		t.Fatalf("malformed counterexample: %+v", ce)
	}
	if ce.DstIP == "" {
		t.Fatal("counterexample missing destination address")
	}

	if _, err := e.QueryReach("dc-c0-t0-0", "10.99.99.0/24"); err == nil {
		t.Fatal("want error for unhosted prefix")
	}
	if _, err := e.QueryReach("ghost", "dc-c1-t0-0"); err == nil {
		t.Fatal("want error for unknown source")
	}
}

// fakeSweeper returns a canned report and counts invocations.
type fakeSweeper struct {
	rep   *rcdc.Report
	calls int
}

func (f *fakeSweeper) Sweep() (*rcdc.Report, error) { f.calls++; return f.rep, nil }
func (f *fakeSweeper) Shards() int                  { return 3 }

// TestSweeperHook: with a Sweeper installed, report refreshes route
// through it and the summary reports its width.
func TestSweeperHook(t *testing.T) {
	e := newTestEngine(t)
	want, err := e.Validate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeSweeper{rep: want}
	e.SetSweeper(fs)
	s, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if fs.calls != 1 {
		t.Fatalf("sweeper calls = %d, want 1", fs.calls)
	}
	if s.Shards != 3 {
		t.Fatalf("shards = %d, want 3", s.Shards)
	}
	if _, err := e.Summary(); err != nil {
		t.Fatal(err)
	}
	if fs.calls != 1 {
		t.Fatalf("cached summary re-ran sweeper: calls = %d", fs.calls)
	}
	if e.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", e.Shards())
	}
}

// TestLintGate: engine-level lint gating mirrors the facade contract.
func TestLintGate(t *testing.T) {
	e := newTestEngine(t)
	e.EnableLintGate()
	// A clean (nil) config change passes the gate.
	if err := e.Apply(Change{Kind: SetConfig, Device: "dc-c0-t0-0", Config: nil}); err != nil {
		t.Fatal(err)
	}
	e.DisableLintGate()
	if _, err := e.Lint(); err != nil {
		t.Fatal(err)
	}
}
