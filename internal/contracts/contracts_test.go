package contracts

import (
	"testing"

	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

func fig3Gen(t *testing.T) (*topology.Topology, *Generator, []topology.HostedPrefix) {
	t.Helper()
	topo := topology.MustNew(topology.Figure3Params())
	g := NewGenerator(metadata.FromTopology(topo))
	return topo, g, topo.HostedPrefixes()
}

func find(dc DeviceContracts, p ipnet.Prefix, k Kind) (Contract, bool) {
	for _, c := range dc.Contracts {
		if c.Kind == k && c.Prefix == p {
			return c, true
		}
	}
	return Contract{}, false
}

// TestFigure4ToR1 checks the exact contract table of Figure 4 for ToR1.
func TestFigure4ToR1(t *testing.T) {
	topo, g, hps := fig3Gen(t)
	tor1 := topo.ClusterToRs(0)[0]
	dc := g.ForDevice(tor1)

	// 1 default + 3 specific (PrefixB, PrefixC, PrefixD).
	if len(dc.Contracts) != 4 {
		t.Fatalf("ToR1 contracts = %d, want 4", len(dc.Contracts))
	}
	leaves := topo.ClusterLeaves(0)
	def, ok := find(dc, ipnet.Prefix{}, Default)
	if !ok || len(def.NextHops) != 4 {
		t.Fatalf("ToR1 default contract = %+v", def)
	}
	for i, nh := range def.NextHops {
		if nh != leaves[i] {
			t.Errorf("default next hop %d = %v", i, nh)
		}
	}
	for _, hp := range hps[1:] {
		c, ok := find(dc, hp.Prefix, Specific)
		if !ok {
			t.Errorf("missing specific contract for %v", hp.Prefix)
			continue
		}
		if len(c.NextHops) != 4 {
			t.Errorf("contract %v next hops = %v", hp.Prefix, c.NextHops)
		}
	}
	// No contract for the ToR's own hosted prefix.
	if _, ok := find(dc, hps[0].Prefix, Specific); ok {
		t.Error("ToR has a contract for its own prefix")
	}
}

// TestFigure4A1 checks the Figure 4 contract table for leaf A1.
func TestFigure4A1(t *testing.T) {
	topo, g, hps := fig3Gen(t)
	a1 := topo.ClusterLeaves(0)[0]
	d1 := topo.Spines()[0]
	dc := g.ForDevice(a1)
	if len(dc.Contracts) != 5 {
		t.Fatalf("A1 contracts = %d, want 5", len(dc.Contracts))
	}
	def, _ := find(dc, ipnet.Prefix{}, Default)
	if len(def.NextHops) != 1 || def.NextHops[0] != d1 {
		t.Errorf("A1 default contract = %v", def.NextHops)
	}
	// PrefixA -> ToR1, PrefixB -> ToR2 (direct to hosting ToR).
	for i, wantToR := range []topology.DeviceID{topo.ClusterToRs(0)[0], topo.ClusterToRs(0)[1]} {
		c, _ := find(dc, hps[i].Prefix, Specific)
		if len(c.NextHops) != 1 || c.NextHops[0] != wantToR {
			t.Errorf("A1 %v contract = %v", hps[i].Prefix, c.NextHops)
		}
	}
	// PrefixC, PrefixD -> D1.
	for _, i := range []int{2, 3} {
		c, _ := find(dc, hps[i].Prefix, Specific)
		if len(c.NextHops) != 1 || c.NextHops[0] != d1 {
			t.Errorf("A1 %v contract = %v", hps[i].Prefix, c.NextHops)
		}
	}
}

// TestFigure4D1 checks the Figure 4 contract table for spine D1.
func TestFigure4D1(t *testing.T) {
	topo, g, hps := fig3Gen(t)
	d1 := topo.Spines()[0]
	dc := g.ForDevice(d1)
	if len(dc.Contracts) != 5 {
		t.Fatalf("D1 contracts = %d, want 5", len(dc.Contracts))
	}
	r1, r3 := topo.RegionalSpines()[0], topo.RegionalSpines()[2]
	def, _ := find(dc, ipnet.Prefix{}, Default)
	if len(def.NextHops) != 2 || def.NextHops[0] != r1 || def.NextHops[1] != r3 {
		t.Errorf("D1 default contract = %v", def.NextHops)
	}
	a1, b1 := topo.ClusterLeaves(0)[0], topo.ClusterLeaves(1)[0]
	for i, want := range []topology.DeviceID{a1, a1, b1, b1} {
		c, _ := find(dc, hps[i].Prefix, Specific)
		if len(c.NextHops) != 1 || c.NextHops[0] != want {
			t.Errorf("D1 %v contract = %v, want [%v]", hps[i].Prefix, c.NextHops, want)
		}
	}
}

func TestRegionalSpineContracts(t *testing.T) {
	topo, g, hps := fig3Gen(t)
	r1 := topo.RegionalSpines()[0]
	dc := g.ForDevice(r1)
	// Specific contracts only — no default contract.
	if _, ok := find(dc, ipnet.Prefix{}, Default); ok {
		t.Error("RS has a default contract")
	}
	if len(dc.Contracts) != len(hps) {
		t.Fatalf("RS contracts = %d, want %d", len(dc.Contracts), len(hps))
	}
	// Next hops: the two spines connected to R1 (D1 and D3).
	d1, d3 := topo.Spines()[0], topo.Spines()[2]
	for _, hp := range hps {
		c, _ := find(dc, hp.Prefix, Specific)
		if len(c.NextHops) != 2 || c.NextHops[0] != d1 || c.NextHops[1] != d3 {
			t.Errorf("R1 %v contract = %v", hp.Prefix, c.NextHops)
		}
	}
}

func TestContractsIgnoreLinkState(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	before := NewGenerator(metadata.FromTopology(topo)).ForDevice(topo.ToRs()[0])
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	after := NewGenerator(metadata.FromTopology(topo)).ForDevice(topo.ToRs()[0])
	if len(before.Contracts) != len(after.Contracts) {
		t.Fatal("contract count changed with link state")
	}
	for i := range before.Contracts {
		b, a := before.Contracts[i], after.Contracts[i]
		if b.Prefix != a.Prefix || len(b.NextHops) != len(a.NextHops) {
			t.Fatal("contracts changed with link state")
		}
	}
}

func TestAllAndCount(t *testing.T) {
	topo, g, _ := fig3Gen(t)
	all := g.All()
	if len(all) != len(topo.Devices) {
		t.Fatalf("All = %d device sets", len(all))
	}
	total := 0
	for _, dc := range all {
		total += len(dc.Contracts)
	}
	if g.Count() != total {
		t.Errorf("Count = %d, sum = %d", g.Count(), total)
	}
	// fig3: 4 ToRs × 4 + 8 leaves × 5 + 4 spines × 5 + 4 RS × 4 = 92.
	if total != 92 {
		t.Errorf("total contracts = %d, want 92", total)
	}
}

func TestNextHopsSorted(t *testing.T) {
	_, g, _ := fig3Gen(t)
	for _, dc := range g.All() {
		for _, c := range dc.Contracts {
			for i := 1; i < len(c.NextHops); i++ {
				if c.NextHops[i-1] >= c.NextHops[i] {
					t.Fatalf("unsorted next hops in %+v", c)
				}
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Specific.String() != "specific" || Default.String() != "default" {
		t.Error("Kind.String wrong")
	}
}
