// Package contracts implements the device contract generator of §2.4: the
// automatic derivation of per-device forwarding intent from architectural
// metadata. A local forwarding contract names a destination prefix and the
// exact set of ECMP next hops every packet matching that prefix must be
// forwarded to. Contracts come in two kinds:
//
//   - A specific contract covers one hosted VLAN prefix and requires a
//     non-default route with exactly the expected next hops. Packets that
//     would fall through to the default route violate it — this is what
//     flags the missing specific announcements in the §2.6.2 migration
//     incident even though default routing still delivered the traffic.
//
//   - A default contract covers 0.0.0.0/0, i.e. the complement of all
//     specific prefixes, and requires the device's default route to carry
//     exactly the expected (fully redundant) uplink set.
//
// Contracts are generated from the expected topology recorded in the
// metadata service and deliberately ignore current link state (§2.4):
// correctness must hold across state fluctuations, and deviations are
// exactly what RCDC is built to flag.
package contracts

import (
	"sort"
	"sync"

	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

// Kind distinguishes default from specific contracts.
type Kind uint8

const (
	// Specific contracts state expectations for concrete hosted prefixes.
	Specific Kind = iota
	// Default contracts state expectations for the default route.
	Default
)

func (k Kind) String() string {
	if k == Default {
		return "default"
	}
	return "specific"
}

// Contract is a local forwarding contract for one device (§2.4).
type Contract struct {
	Device   topology.DeviceID
	Kind     Kind
	Prefix   ipnet.Prefix // 0.0.0.0/0 for default contracts
	NextHops []topology.DeviceID
}

// DeviceContracts bundles every contract of one device.
type DeviceContracts struct {
	Device    topology.DeviceID
	Contracts []Contract
}

// Generator derives contracts from metadata facts.
type Generator struct {
	facts *metadata.Facts

	// Opt-in per-device memoization keyed on the facts' intent generation:
	// intent edits invalidate, link-state changes do not (facts never see
	// them). Off by default — the full-sweep paths generate transiently so
	// memory stays O(one device); long-lived incremental generators enable
	// it to amortize repeated ForDevice calls on the same dirty devices.
	mu      sync.Mutex
	memo    map[topology.DeviceID]DeviceContracts
	memoGen uint64
}

// NewGenerator returns a contract generator over the given facts snapshot.
func NewGenerator(f *metadata.Facts) *Generator {
	return &Generator{facts: f}
}

// EnableMemo turns on per-device memoization of ForDevice results. Safe
// for concurrent ForDevice callers. Memory grows to one contract set per
// distinct device generated since the last intent change.
func (g *Generator) EnableMemo() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.memo = make(map[topology.DeviceID]DeviceContracts)
	g.memoGen = g.facts.Generation()
}

// ForDevice generates the comprehensive contract set for one device,
// implementing the rules of §2.4.1 (ToR), §2.4.2 (leaf), §2.4.3 (spine),
// plus the regional-spine specific contracts §2.4.4 relies on.
//
// Next-hop slices are sorted once and shared between the contracts that
// expect the same set (a ToR expects its leaves for every prefix); treat
// Contract.NextHops as immutable. With memoization enabled the whole
// DeviceContracts value is shared across calls under the same invariant.
func (g *Generator) ForDevice(id topology.DeviceID) DeviceContracts {
	if g.memo != nil {
		g.mu.Lock()
		if gen := g.facts.Generation(); gen != g.memoGen {
			g.memo = make(map[topology.DeviceID]DeviceContracts)
			g.memoGen = gen
		}
		if dc, ok := g.memo[id]; ok {
			g.mu.Unlock()
			return dc
		}
		g.mu.Unlock()
		dc := g.generate(id)
		g.mu.Lock()
		g.memo[id] = dc
		g.mu.Unlock()
		return dc
	}
	return g.generate(id)
}

// generate derives one device's contracts from the facts.
func (g *Generator) generate(id topology.DeviceID) DeviceContracts {
	df := g.facts.Device(id)
	dc := DeviceContracts{Device: id}

	uplinks := devIDs(df.Uplinks)
	switch df.Role {
	case topology.RoleToR:
		// Default contract: all neighboring leaves.
		dc.add(Contract{Device: id, Kind: Default, NextHops: uplinks})
		// Specific contract for every datacenter prefix not hosted here,
		// next hops the neighboring leaves.
		hosted := prefixSet(df.HostedPrefixes)
		dc.grow(len(g.facts.Prefixes))
		for _, p := range g.facts.Prefixes {
			if hosted[p.Prefix] {
				continue
			}
			dc.add(Contract{Device: id, Kind: Specific, Prefix: p.Prefix, NextHops: uplinks})
		}

	case topology.RoleLeaf:
		// Default contract: the neighboring spines.
		dc.add(Contract{Device: id, Kind: Default, NextHops: uplinks})
		// Specific contracts: same-cluster prefixes go straight to the
		// hosting ToR; everything else goes to the spines.
		dc.grow(len(g.facts.Prefixes))
		for _, p := range g.facts.Prefixes {
			if p.Cluster == df.Cluster {
				dc.add(Contract{Device: id, Kind: Specific, Prefix: p.Prefix,
					NextHops: []topology.DeviceID{p.ToR}})
			} else {
				dc.add(Contract{Device: id, Kind: Specific, Prefix: p.Prefix, NextHops: uplinks})
			}
		}

	case topology.RoleSpine:
		// Default contract: the neighboring regional spines.
		dc.add(Contract{Device: id, Kind: Default, NextHops: uplinks})
		// Specific contracts: the neighboring leaves of the hosting
		// cluster (with the plane structure, exactly one per cluster).
		downByCluster := make(map[int][]topology.DeviceID)
		for _, n := range df.Downlinks {
			downByCluster[n.Cluster] = append(downByCluster[n.Cluster], n.Device)
		}
		for c, hops := range downByCluster {
			downByCluster[c] = sortedCopy(hops)
		}
		dc.grow(len(g.facts.Prefixes))
		for _, p := range g.facts.Prefixes {
			dc.add(Contract{Device: id, Kind: Specific, Prefix: p.Prefix,
				NextHops: downByCluster[p.Cluster]})
		}

	case topology.RoleRegionalSpine:
		// No default contract: the regional spine's default points into
		// the regional network, outside the datacenter model. Specific
		// contracts expect every neighboring spine, since each spine
		// reaches every cluster through its plane leaf.
		downs := devIDs(df.Downlinks)
		dc.grow(len(g.facts.Prefixes))
		for _, p := range g.facts.Prefixes {
			dc.add(Contract{Device: id, Kind: Specific, Prefix: p.Prefix, NextHops: downs})
		}
	}
	return dc
}

// All generates contracts for every device in the datacenter.
func (g *Generator) All() []DeviceContracts {
	out := make([]DeviceContracts, 0, len(g.facts.Devices))
	for i := range g.facts.Devices {
		out = append(out, g.ForDevice(g.facts.Devices[i].ID))
	}
	return out
}

// Count returns the total number of contracts across all devices; the
// paper's "billions of reachability invariants" reduce to this many local
// checks.
func (g *Generator) Count() int {
	n := 0
	for i := range g.facts.Devices {
		n += len(g.ForDevice(g.facts.Devices[i].ID).Contracts)
	}
	return n
}

func (dc *DeviceContracts) add(c Contract) {
	if len(c.NextHops) == 0 {
		// A device with no expected next hops toward a prefix (possible in
		// degenerate topologies) has no forwarding obligation.
		return
	}
	dc.Contracts = append(dc.Contracts, c)
}

func (dc *DeviceContracts) grow(n int) {
	if cap(dc.Contracts)-len(dc.Contracts) < n {
		next := make([]Contract, len(dc.Contracts), len(dc.Contracts)+n)
		copy(next, dc.Contracts)
		dc.Contracts = next
	}
}

func sortedCopy(hops []topology.DeviceID) []topology.DeviceID {
	out := append([]topology.DeviceID(nil), hops...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func devIDs(ns []metadata.Neighbor) []topology.DeviceID {
	out := make([]topology.DeviceID, len(ns))
	for i, n := range ns {
		out[i] = n.Device
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func prefixSet(ps []ipnet.Prefix) map[ipnet.Prefix]bool {
	m := make(map[ipnet.Prefix]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}
