package analysis

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the package time functions that read or block on
// the wall clock. Pure conversions and constructors (time.Duration,
// time.Date, time.Unix, time.Parse) are deterministic and allowed.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// NewWallclock returns the `wallclock` analyzer: it flags direct reads
// of the wall clock (time.Now, time.Sleep, time.Since, ...) outside the
// allowlist, enforcing that simulation, monitoring, and measurement
// paths go through an injectable internal/clock.Clock.
//
// allow entries are either whole package paths ("dcvalidate/internal/clock")
// or fully-qualified functions ("dcvalidate/internal/metadata.Stamp" or
// "dcvalidate/internal/monitor.Instance.RunCycle") naming sanctioned
// measurement boundaries.
func NewWallclock(allow []string) *Analyzer {
	allowPkg := map[string]bool{}
	allowFunc := map[string]bool{}
	for _, a := range allow {
		i := strings.LastIndexByte(a, '/')
		if strings.ContainsRune(a[i+1:], '.') {
			allowFunc[a] = true
		} else {
			allowPkg[a] = true
		}
	}
	a := &Analyzer{
		Name: "wallclock",
		Doc: "flags direct wall-clock reads (time.Now/Sleep/Since/...) outside " +
			"the measurement-boundary allowlist; use internal/clock instead",
	}
	a.Run = func(pass *Pass) error {
		if allowPkg[pass.PkgPath()] {
			return nil
		}
		for _, file := range pass.Files {
			var fns funcStack
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					fns.push(n)
					if n.Body != nil {
						ast.Inspect(n.Body, walk)
					}
					fns.pop()
					return false
				case *ast.SelectorExpr:
					id, ok := n.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn := pkgNameOf(pass.TypesInfo, id)
					if pn == nil || pn.Imported().Path() != "time" {
						return true
					}
					if !wallclockFuncs[n.Sel.Name] {
						return true
					}
					qual := pass.PkgPath() + "." + fns.current()
					if allowFunc[qual] {
						return true
					}
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock; inject a clock.Clock (internal/clock) or allowlist %s as a measurement boundary",
						n.Sel.Name, qual)
				}
				return true
			}
			ast.Inspect(file, walk)
		}
		return nil
	}
	return a
}
