package analysis

import (
	"go/ast"
	"go/types"
)

// rngConstructors are the math/rand functions that build an explicit,
// locally-owned generator; everything else at package level draws from
// the shared global source, whose seed (and, under concurrency, whose
// sequence) is not reproducible.
var rngConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NewRngseed returns the `rngseed` analyzer. It flags (1) calls to the
// global math/rand top-level functions (rand.Intn, rand.Shuffle, ...)
// in non-test code — results then depend on process-global state — and
// (2) rand.NewSource / rand.New seed expressions that read the clock,
// which defeats run-to-run reproducibility.
func NewRngseed() *Analyzer {
	a := &Analyzer{
		Name: "rngseed",
		Doc: "flags global math/rand usage and clock-derived RNG seeds; " +
			"use rand.New(rand.NewSource(seed)) with an explicit seed",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on an explicit *rand.Rand are fine
				}
				if !rngConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand for reproducible runs",
						fn.Name())
					return true
				}
				if fn.Name() == "NewSource" && len(call.Args) == 1 && readsClock(pass.TypesInfo, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"RNG seeded from the wall clock is not reproducible; derive the seed from configuration")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// readsClock reports whether the expression contains a call into
// package time (e.g. time.Now().UnixNano()).
func readsClock(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn := pkgNameOf(info, id); pn != nil && pn.Imported().Path() == "time" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
