// Package wallclock is golden-file input for the wallclock analyzer.
package wallclock

import "time"

// bad reads the wall clock from ordinary code.
func bad() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

func badLine10() {
	time.Sleep(time.Second)   // want "time.Sleep reads the wall clock"
	<-time.After(time.Second) // want "time.After reads the wall clock"
}

// MeasureBoundary is allowlisted by the test configuration: a sanctioned
// measurement boundary may read real time.
func MeasureBoundary() time.Time {
	return time.Now()
}

type sampler struct{}

// Sample is allowlisted as wallclock.sampler.Sample.
func (s *sampler) Sample() time.Time {
	return time.Now()
}

func suppressed() time.Time {
	// invariant: startup banner only, never inside the simulation
	return time.Now()
}

func suppressedInline() time.Time {
	return time.Now() // dclint:allow wallclock CLI timing display only
}

// deterministic uses only pure time constructors: no findings.
func deterministic() time.Time {
	d := 3 * time.Second
	_ = d
	return time.Date(2019, 8, 1, 0, 0, 0, 0, time.UTC)
}
