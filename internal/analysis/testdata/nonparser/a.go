// Package nonparser is golden-file input for the panicsite analyzer:
// it is NOT configured as a parser package, so panics here are allowed
// (no findings expected in this file).
package nonparser

// Invariant panics outside parser/decoder packages are out of scope.
func mustPositive(n int) int {
	if n <= 0 {
		panic("nonparser: n must be positive")
	}
	return n
}
