// Package mapiter is golden-file input for the mapiter analyzer.
package mapiter

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// badCollect appends map-derived values with no subsequent sort.
func badCollect(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want "names accumulates map-iteration results in nondeterministic order"
	}
	return names
}

// badPrint writes inside the loop: no later sort can fix emission order.
func badPrint(w io.Writer, m map[string]int) {
	for name, n := range m {
		fmt.Fprintf(w, "%s=%d\n", name, n) // want "map iteration writes output in nondeterministic order"
	}
}

// badHash feeds a hash in iteration order.
func badHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want "feeds a writer/hash"
	}
	return h.Sum64()
}

// badConcat builds a string across iterations.
func badConcat(m map[string]bool) string {
	s := ""
	for k := range m {
		s += k // want "string built up across map iteration"
	}
	return s
}

// goodSorted collects then sorts: deterministic.
func goodSorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// goodSortSlice sorts with sort.Slice after collecting structs.
func goodSortSlice(m map[string]int) []kv {
	var out []kv
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type kv struct {
	k string
	v int
}

// goodAggregate folds into order-independent accumulators.
func goodAggregate(m map[string]int) (int, map[int]int) {
	total := 0
	hist := map[int]int{}
	for _, v := range m {
		total += v
		hist[v]++
	}
	return total, hist
}

// goodSliceRange ranges over a slice, not a map: ordered already.
func goodSliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// suppressed documents an intentional unordered dump.
func suppressed(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // dclint:allow mapiter debug dump, order irrelevant
	}
}
