// Package panicsite is golden-file input for the panicsite analyzer:
// the test configures it as a parser package.
package panicsite

import "fmt"

// Parse decodes untrusted input and must not panic on bad data.
func Parse(b []byte) (int, error) {
	if len(b) == 0 {
		panic("empty input") // want "panic in a parser/decoder package"
	}
	if b[0] == '!' {
		return 0, fmt.Errorf("parse: unexpected %q at offset 0", b[0])
	}
	return int(b[0]), nil
}

func internalInvariant(state int) {
	if state < 0 {
		// invariant: state is a package-internal counter, never derived from input
		panic("negative state")
	}
}

func inlineInvariant(state int) {
	if state > 1<<20 {
		panic("state overflow") // invariant: bounded by construction in New
	}
}

func suppressedAllow(state int) {
	if state == 42 {
		panic("unlucky") // dclint:allow panicsite demo of targeted suppression
	}
}
