// Package rngseed is golden-file input for the rngseed analyzer.
package rngseed

import (
	"math/rand"
	"time"
)

func bad() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand"
	return rand.Intn(10)               // want "rand.Intn draws from the global math/rand source"
}

func badSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "RNG seeded from the wall clock"
}

func good(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 4)
	for i := range out {
		out[i] = rng.Intn(100) // methods on an explicit *rand.Rand are fine
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func suppressed() int {
	return rand.Int() // dclint:allow rngseed prototype only
}
