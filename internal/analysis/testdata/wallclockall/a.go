// Package wallclockall is golden-file input for the wallclock analyzer
// with the whole package allowlisted: no findings expected.
package wallclockall

import "time"

// Now is a measurement boundary; the test allowlists the package.
func Now() time.Time { return time.Now() }

// Elapsed may use time.Since freely here.
func Elapsed(t time.Time) time.Duration { return time.Since(t) }
