// Package sleepsiteall mirrors the sanctioned sleep site: the whole
// package is allowlisted in the test, so the raw Sleep below carries no
// `// want` annotation.
package sleepsiteall

import "time"

// Sleep stands in for clock.Sleep: the one place allowed to block on
// real time when no virtual clock is injected.
func Sleep(d time.Duration) {
	time.Sleep(d)
}
