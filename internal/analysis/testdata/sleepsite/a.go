// Package sleepsite is golden-file input for the sleepsite analyzer.
package sleepsite

import (
	"time"
	tm "time"
)

// bad blocks an OS thread on real time from production code.
func bad() {
	time.Sleep(time.Millisecond) // want "time.Sleep blocks on real time"
}

// badAliased hides the import behind an alias; type info still resolves it.
func badAliased() {
	tm.Sleep(tm.Second) // want "time.Sleep blocks on real time"
}

// reads of the clock are wallclock's business, not sleepsite's.
func readsOnly() time.Time {
	return time.Now()
}

// notTimePackage has a local type whose Sleep method must not be flagged.
type throttle struct{}

func (throttle) Sleep(time.Duration) {}

func methodCall() {
	var t throttle
	t.Sleep(time.Second)
}

func suppressed() {
	time.Sleep(time.Second) // dclint:allow sleepsite backoff in the retry CLI only
}
