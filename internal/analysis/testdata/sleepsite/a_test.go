package sleepsite

import "time"

// Test files are exempt: tests may legitimately block on real time.
func sleepInTest() {
	time.Sleep(time.Millisecond)
}
