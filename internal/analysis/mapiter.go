package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewMapiter returns the `mapiter` analyzer: Go randomizes map
// iteration order per range statement, so any loop over a map whose
// body appends to an outer slice, concatenates into an outer string, or
// writes to an io.Writer/hash is a run-to-run nondeterminism bug unless
// the collected slice is sorted afterwards (in the same function) or
// the site is annotated. This is the classic source of unstable FIB and
// contract aggregation reports.
func NewMapiter() *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc: "flags map iteration whose order leaks into slices, output, or " +
			"hashes without a subsequent sort",
	}
	a.Run = func(pass *Pass) error {
		m := &mapiter{pass: pass}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					m.scanBlock(fd.Body.List, nil)
					return false
				}
				return true
			})
		}
		return nil
	}
	return a
}

type mapiter struct {
	pass *Pass
}

// scanBlock walks a statement list. after is the stack of statement
// suffixes that execute following the current statement, innermost
// last: it is the search space for "is this slice sorted later".
func (m *mapiter) scanBlock(stmts []ast.Stmt, after [][]ast.Stmt) {
	for i, s := range stmts {
		following := append(after[:len(after):len(after)], stmts[i+1:])
		m.scanStmt(s, following)
	}
}

func (m *mapiter) scanStmt(s ast.Stmt, after [][]ast.Stmt) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if m.isMapRange(s) {
			m.checkMapRange(s, after)
		}
		m.scanBlock(s.Body.List, after)
	case *ast.BlockStmt:
		m.scanBlock(s.List, after)
	case *ast.IfStmt:
		m.scanBlock(s.Body.List, after)
		if s.Else != nil {
			m.scanStmt(s.Else, after)
		}
	case *ast.ForStmt:
		m.scanBlock(s.Body.List, after)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				m.scanBlock(cc.Body, after)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				m.scanBlock(cc.Body, after)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				m.scanBlock(cc.Body, after)
			}
		}
	case *ast.LabeledStmt:
		m.scanStmt(s.Stmt, after)
	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
		// Function literals inside any statement get their own scan.
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				m.scanBlock(fl.Body.List, nil)
				return false
			}
			return true
		})
	}
}

func (m *mapiter) isMapRange(s *ast.RangeStmt) bool {
	tv, ok := m.pass.TypesInfo.Types[s.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func (m *mapiter) checkMapRange(rng *ast.RangeStmt, after [][]ast.Stmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := m.pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			m.checkAssign(rng, n, loopVars, after)
		case *ast.CallExpr:
			m.checkSinkCall(rng, n, loopVars)
		}
		return true
	})
}

// checkAssign flags `outer = append(outer, ...loop vars...)` with no
// later sort, and `outerString += ...loop vars...`.
func (m *mapiter) checkAssign(rng *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool, after [][]ast.Stmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		obj := m.objOf(as.Lhs[0])
		if obj != nil && !m.declaredWithin(obj, rng) && isString(obj.Type()) && m.mentionsAny(as.Rhs[0], loopVars) {
			m.pass.Reportf(as.Pos(),
				"string built up across map iteration: order is nondeterministic; collect and sort keys first")
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, ok := m.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			continue
		}
		target := m.objOf(as.Lhs[i])
		if target == nil || m.declaredWithin(target, rng) {
			continue
		}
		// Appending something derived from the loop variables?
		ordered := false
		for _, arg := range call.Args[1:] {
			if m.mentionsAny(arg, loopVars) {
				ordered = true
			}
		}
		if !ordered {
			continue
		}
		if m.sortedLater(target, after) {
			continue
		}
		m.pass.Reportf(as.Pos(),
			"%s accumulates map-iteration results in nondeterministic order; sort it before use (or annotate with // dclint:allow mapiter)",
			target.Name())
	}
}

// sinkCalls that serialize data in call order: any content derived from
// the loop variables reaching one of these inside a map range is
// emitted in nondeterministic order, and no later sort can repair it.
func (m *mapiter) checkSinkCall(rng *ast.RangeStmt, call *ast.CallExpr, loopVars map[types.Object]bool) {
	kind := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn := pkgNameOf(m.pass.TypesInfo, id); pn != nil {
				switch pn.Imported().Path() {
				case "fmt":
					if name == "Fprintf" || name == "Fprintln" || name == "Fprint" ||
						name == "Printf" || name == "Println" || name == "Print" {
						kind = "writes output"
					}
				case "encoding/binary":
					if name == "Write" {
						kind = "feeds a writer"
					}
				case "io":
					if name == "WriteString" {
						kind = "feeds a writer"
					}
				}
			}
		}
		if kind == "" && m.pass.TypesInfo.Selections[fun] != nil {
			switch name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
				kind = "feeds a writer/hash"
			}
		}
	}
	if kind == "" {
		return
	}
	for _, arg := range call.Args {
		if m.mentionsAny(arg, loopVars) {
			m.pass.Reportf(call.Pos(),
				"map iteration %s in nondeterministic order; iterate over sorted keys instead", kind)
			return
		}
	}
}

// sortedLater reports whether any statement executing after the loop
// passes obj to a sort (sort.* or slices.Sort*) call.
func (m *mapiter) sortedLater(obj types.Object, after [][]ast.Stmt) bool {
	for _, suffix := range after {
		for _, s := range suffix {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(m.pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
					return true
				}
				for _, arg := range call.Args {
					if m.objOf(arg) == obj || m.mentionsObj(arg, obj) {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

func (m *mapiter) objOf(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := m.pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return m.pass.TypesInfo.Defs[id]
	}
	return nil
}

func (m *mapiter) declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

func (m *mapiter) mentionsAny(e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := m.pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (m *mapiter) mentionsObj(e ast.Expr, obj types.Object) bool {
	return m.mentionsAny(e, map[types.Object]bool{obj: true})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
