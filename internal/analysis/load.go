package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
// Test files (_test.go) are excluded: the determinism invariants govern
// production code, and tests legitimately panic and read wall time.
type Package struct {
	Path      string // import path, e.g. dcvalidate/internal/monitor
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader parses and type-checks packages of a single module without
// external dependencies: module-internal imports are resolved by
// directory, standard-library imports through the compiler's source
// importer (offline, no export data needed).
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package // by import path
	errs   []error
}

// NewLoader locates the enclosing module starting at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modpath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		loaded:     map[string]*Package{},
	}, nil
}

// Load expands the given patterns ("./...", "./internal/...", or plain
// package directories relative to the module root) and returns the
// matched packages, type-checked. Type errors in the target code are
// returned as an error: the analyzers need sound type information.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(l.errs) > 0 {
		return nil, fmt.Errorf("analysis: type errors: %v", l.errs[0])
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = l.ModuleRoot
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathOf maps a directory under the module root to its import path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.loaded[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error: func(err error) {
			l.errs = append(l.errs, err)
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal import paths by directory and
// everything else via the source importer. It is the Loader itself
// under a different method set, so the package cache is shared.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
