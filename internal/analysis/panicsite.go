package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewPanicsite returns the `panicsite` analyzer: inside packages that
// parse or decode untrusted input (device configs, DIMACS, SMT-LIB,
// ACLs), panic is not an acceptable response to bad data — parsers must
// return errors with position information. Panics that guard genuine
// programmer-error invariants are kept, but each must carry an explicit
// `// invariant:` comment stating why untrusted input cannot reach it.
//
// pkgs lists the parser/decoder packages, matched as full import paths
// or path suffixes (e.g. "internal/acl").
func NewPanicsite(pkgs []string) *Analyzer {
	a := &Analyzer{
		Name: "panicsite",
		Doc: "flags panic calls in parser/decoder packages that ingest untrusted " +
			"input; return positioned errors, or annotate with // invariant:",
	}
	a.Run = func(pass *Pass) error {
		if !matchesPkg(pass.PkgPath(), pkgs) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					return true // shadowed panic
				}
				pass.Reportf(call.Pos(),
					"panic in a parser/decoder package: return an error with position info, or justify with an // invariant: comment")
				return true
			})
		}
		return nil
	}
	return a
}

func matchesPkg(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasSuffix(path, "/"+strings.TrimPrefix(p, "/")) {
			return true
		}
	}
	return false
}
