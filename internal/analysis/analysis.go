// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository carries no external dependencies.
//
// It exists to machine-check the determinism invariants the validation
// stack depends on (see DESIGN.md "Determinism invariants"):
//
//   - wallclock: simulation and measurement paths use internal/clock,
//     never time.Now/time.Sleep/time.Since directly;
//   - sleepsite: raw time.Sleep is banned outside tests even at
//     measurement boundaries; delays go through clock.Sleep;
//   - mapiter:   map iteration order never leaks into reports or hashes;
//   - rngseed:   randomness comes from explicitly seeded *rand.Rand;
//   - panicsite: parsers of untrusted input return errors, never panic.
//
// cmd/dclint runs the suite over the module; `make lint` and CI gate on
// a clean run. Violations that are genuinely unreachable invariants can
// be suppressed with a trailing or preceding comment:
//
//	// invariant: <why this cannot fire on untrusted input>
//	// dclint:allow <analyzer> <why>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "dclint:allow <name>" suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	suppressed int
}

// PkgPath returns the import path of the package under analysis.
func (p *Pass) PkgPath() string { return p.Pkg.Path() }

// Reportf records a diagnostic at pos unless a suppression comment
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		p.suppressed++
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressedAt reports whether a suppression comment covers the line of
// pos: either on the same line (trailing), or anywhere in a comment
// group whose last line is immediately above it (leading, possibly
// multi-line).
func (p *Pass) suppressedAt(pos token.Position) bool {
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if name != pos.Filename {
			continue
		}
		for _, cg := range f.Comments {
			groupEnd := p.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				if !suppresses(c.Text, p.Analyzer.Name) {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				if line == pos.Line || groupEnd == pos.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// suppresses reports whether comment text waives findings of the named
// analyzer. "// invariant:" waives every analyzer (it asserts the code
// is unreachable on untrusted input); "// dclint:allow <name>" waives
// one.
func suppresses(comment, analyzer string) bool {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if strings.HasPrefix(text, "invariant:") {
		return true
	}
	if rest, ok := strings.CutPrefix(text, "dclint:allow "); ok {
		fields := strings.Fields(rest)
		return len(fields) > 0 && fields[0] == analyzer
	}
	return false
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies each analyzer to each loaded package and returns all
// diagnostics sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pkgNameOf resolves an identifier to the package it names, if it is a
// package qualifier (e.g. the `time` in time.Now).
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the package-level function
// or method it invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// enclosingFuncs returns, for each AST node visited by walk, the
// fully-qualified name of the function declaration enclosing it:
// "Func" or "Type.Method" (pointer receivers included as "Type.Method").
type funcStack struct {
	names []string
}

func (s *funcStack) push(fd *ast.FuncDecl) {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		name = recvTypeName(fd.Recv.List[0].Type) + "." + name
	}
	s.names = append(s.names, name)
}

func (s *funcStack) pop() { s.names = s.names[:len(s.names)-1] }
func (s *funcStack) current() string {
	if len(s.names) == 0 {
		return ""
	}
	return s.names[len(s.names)-1]
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)
