package analysis

import (
	"go/ast"
	"strings"
)

// NewSleepsite returns the `sleepsite` analyzer: it flags every raw
// time.Sleep call outside test files. Production delays must go through
// clock.Sleep(c, d) with the injected internal/clock.Clock so that
// virtual-time runs (simulations, deterministic tests, replay) advance
// instantly instead of blocking an OS thread.
//
// It overlaps wallclock on purpose but is stricter: wallclock's
// per-function measurement-boundary waivers do not apply here — a
// sanctioned boundary may read time.Now, but nothing outside the
// allowlisted packages may block on real time. allow entries are whole
// package paths only (in dclint: dcvalidate/internal/clock, the single
// sanctioned sleep site).
func NewSleepsite(allow []string) *Analyzer {
	allowPkg := map[string]bool{}
	for _, a := range allow {
		allowPkg[a] = true
	}
	a := &Analyzer{
		Name: "sleepsite",
		Doc: "flags raw time.Sleep outside tests; delays must use clock.Sleep " +
			"with the injected clock.Clock so virtual-time runs don't block",
	}
	a.Run = func(pass *Pass) error {
		if allowPkg[pass.PkgPath()] {
			return nil
		}
		for _, file := range pass.Files {
			if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Sleep" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn := pkgNameOf(pass.TypesInfo, id)
				if pn == nil || pn.Imported().Path() != "time" {
					return true
				}
				pass.Reportf(n.Pos(),
					"time.Sleep blocks on real time; use clock.Sleep with the injected clock.Clock (internal/clock)")
				return true
			})
		}
		return nil
	}
	return a
}
