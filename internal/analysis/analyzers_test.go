package analysis_test

import (
	"path/filepath"
	"testing"

	"dcvalidate/internal/analysis"
	"dcvalidate/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	a := analysis.NewWallclock([]string{
		"dclint.test/wallclock.MeasureBoundary",
		"dclint.test/wallclock.sampler.Sample",
	})
	analysistest.Run(t, filepath.Join("testdata", "wallclock"), a)
}

func TestWallclockAllowsWholePackage(t *testing.T) {
	// The same files produce no findings when the package itself is the
	// allowlisted measurement boundary (as internal/clock is in dclint).
	a := analysis.NewWallclock([]string{"dclint.test/wallclockall"})
	analysistest.Run(t, filepath.Join("testdata", "wallclockall"), a)
}

func TestSleepsite(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "sleepsite"), analysis.NewSleepsite(nil))
}

func TestSleepsiteAllowsClockPackage(t *testing.T) {
	// The same offending call produces no findings when the package is
	// allowlisted (as internal/clock is in dclint: clock.Sleep is the one
	// sanctioned raw-sleep site).
	a := analysis.NewSleepsite([]string{"dclint.test/sleepsiteall"})
	analysistest.Run(t, filepath.Join("testdata", "sleepsiteall"), a)
}

func TestMapiter(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "mapiter"), analysis.NewMapiter())
}

func TestRngseed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "rngseed"), analysis.NewRngseed())
}

func TestPanicsite(t *testing.T) {
	a := analysis.NewPanicsite([]string{"dclint.test/panicsite"})
	analysistest.Run(t, filepath.Join("testdata", "panicsite"), a)
}

func TestPanicsiteIgnoresNonParserPackages(t *testing.T) {
	a := analysis.NewPanicsite([]string{"dclint.test/panicsite"})
	analysistest.Run(t, filepath.Join("testdata", "nonparser"), a)
}
