// Package analysistest runs an analyzer over a golden testdata package
// and checks its diagnostics against `// want "regexp"` annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest but with no
// external dependencies.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dcvalidate/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run type-checks the Go package in dir (testdata files importing only
// the standard library), applies the analyzer, and fails the test on
// any mismatch between reported diagnostics and the `// want "re"`
// annotations: a diagnostic must occur on every annotated line and
// match the regexp, and no unannotated line may produce one.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	wants := map[string]*regexp.Regexp{} // "file:line" -> pattern
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", path, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			mm := wantRe.FindStringSubmatch(line)
			if mm == nil {
				continue
			}
			pat, err := regexp.Compile(strings.ReplaceAll(mm[1], `\"`, `"`))
			if err != nil {
				t.Fatalf("analysistest: %s:%d: bad want pattern: %v", path, i+1, err)
			}
			wants[fmt.Sprintf("%s:%d", path, i+1)] = pat
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	pkgPath := "dclint.test/" + filepath.Base(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-check %s: %v", dir, err)
	}

	pkg := &analysis.Package{
		Path: pkgPath, Dir: dir, Fset: fset, Files: files,
		Types: tpkg, TypesInfo: info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	matched := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		pat, ok := wants[key]
		switch {
		case !ok:
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		case !pat.MatchString(d.Message):
			t.Errorf("diagnostic at %s does not match %q: %s", key, pat, d.Message)
		default:
			matched[key] = true
		}
	}
	var missing []string
	for key := range wants {
		if !matched[key] {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	for _, key := range missing {
		t.Errorf("missing diagnostic at %s (want %q)", key, wants[key])
	}
}
