package workload

import (
	"math/rand"

	"dcvalidate/internal/monitor"
	"dcvalidate/internal/topology"
)

// Real-pipeline burndown: unlike SimulateBurndown (a seeded queue model of
// the Figure 6 telemetry), this runs the actual loop — inject a latent
// error backlog, monitor with RCDC, triage, auto-remediate drift, spend a
// bounded remediation budget on the highest-priority alerts each cycle —
// and reports the alert tracker's open counts. The downward, high-first
// curve emerges from the pipeline itself.

// PipelineBurndownConfig sizes the closed-loop run.
type PipelineBurndownConfig struct {
	Params topology.Params
	// Faults is the latent error backlog injected before monitoring
	// starts.
	Faults int
	// Cycles to run; FixPerCycle is the manual-remediation budget (the
	// §2.6.4 queues drain highest risk first).
	Cycles, FixPerCycle int
	Seed                int64
}

// DefaultPipelineBurndownConfig exercises a mid-sized datacenter.
func DefaultPipelineBurndownConfig() PipelineBurndownConfig {
	return PipelineBurndownConfig{
		Params: topology.Params{
			Name: "pb", Clusters: 6, ToRsPerCluster: 12, LeavesPerCluster: 4,
			SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
		},
		Faults: 24, Cycles: 14, FixPerCycle: 4, Seed: 77,
	}
}

// SimulatePipelineBurndown runs the closed loop and returns the per-cycle
// alert series.
func SimulatePipelineBurndown(cfg PipelineBurndownConfig) ([]monitor.AlertPoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := topology.MustNew(cfg.Params)
	s := NewScenario(topo)
	s.InjectRandom(rng, cfg.Faults)

	in := monitor.NewInstance("pb-0", s.Datacenter(cfg.Params.Name))
	tracker := monitor.NewAlertTracker()

	var series []monitor.AlertPoint
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		stats, err := in.RunCycle()
		if err != nil {
			return nil, err
		}
		pt := tracker.ObserveCycle(stats.Cycle, in.Analytics)
		series = append(series, pt)

		// Automated remediation first (§2.6.1): unshut healthy sessions.
		errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
		monitor.AutoRemediate(errs, in.Datacenters, s.Lossy)

		// Manual queues: spend the budget on open alerts, highest risk and
		// oldest first; the triage class tells the fixer what to do.
		classByDev := map[topology.DeviceID]monitor.ErrorClass{}
		for _, te := range errs {
			if _, ok := classByDev[te.Record.Device]; !ok {
				classByDev[te.Record.Device] = te.Class
			}
		}
		budget := cfg.FixPerCycle
		for _, al := range tracker.Open() {
			if budget == 0 {
				break
			}
			class, ok := classByDev[al.Device]
			if !ok {
				continue
			}
			if s.Remediate(class, al.Device) {
				budget--
			}
		}
	}
	return series, nil
}
