package workload

import (
	"fmt"
	"math/rand"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/secguru"
)

// This file synthesizes the §3.3 legacy Edge ACL scenario: an ACL grown
// inorganically to thousands of rules (service-specific whitelists,
// zero-day blocks, duplicated protections) and the phased refactoring plan
// that shrinks it below 1000 rules — the Figure 11 series — with SecGuru
// prechecks guarding every step.

// EdgeACLParams sizes the synthetic legacy ACL.
type EdgeACLParams struct {
	// ServiceRules is the number of service-specific whitelist rules;
	// each is redundant with the broad §5-style permits, which is what
	// makes the refactoring semantics-preserving.
	ServiceRules int
	// DuplicateDenies is the number of redundant deny rules duplicating
	// the private-address and anti-spoofing sections.
	DuplicateDenies int
	// ZeroDayDenies is the number of /32 deny rules interspersed over the
	// years to mitigate attacks (all inside ranges already denied or
	// outside any permit, hence removable).
	ZeroDayDenies int
	Seed          int64
}

// DefaultEdgeACLParams produces a ~3000-rule legacy ACL.
func DefaultEdgeACLParams() EdgeACLParams {
	return EdgeACLParams{ServiceRules: 2400, DuplicateDenies: 300, ZeroDayDenies: 260, Seed: 7}
}

// edgeSkeleton is the intended goal-state ACL: private-address isolation,
// anti-spoofing, and protections common to all services (§3.3).
func edgeSkeleton() []acl.Rule {
	mk := func(action acl.Action, proto acl.ProtoMatch, src, dst string, dport acl.PortRange, remark string) acl.Rule {
		r := acl.NewRule(action, proto, pfxOrAny(src), pfxOrAny(dst), acl.AnyPort, dport)
		r.Remark = remark
		return r
	}
	return []acl.Rule{
		mk(acl.Deny, acl.AnyProto, "0.0.0.0/32", "", acl.AnyPort, "Isolating private addresses"),
		mk(acl.Deny, acl.AnyProto, "10.0.0.0/8", "", acl.AnyPort, ""),
		mk(acl.Deny, acl.AnyProto, "172.16.0.0/12", "", acl.AnyPort, ""),
		mk(acl.Deny, acl.AnyProto, "192.168.0.0/16", "", acl.AnyPort, ""),
		mk(acl.Deny, acl.AnyProto, "104.208.32.0/20", "", acl.AnyPort, "Anti spoofing"),
		mk(acl.Deny, acl.AnyProto, "168.61.144.0/20", "", acl.AnyPort, ""),
		mk(acl.Permit, acl.AnyProto, "", "104.208.32.0/24", acl.AnyPort, "permits without port blocks"),
		mk(acl.Deny, acl.Proto(acl.ProtoTCP), "", "", acl.Port(445), "standard port and protocol blocks"),
		mk(acl.Deny, acl.Proto(acl.ProtoUDP), "", "", acl.Port(445), ""),
		mk(acl.Deny, acl.Proto(acl.ProtoTCP), "", "", acl.Port(593), ""),
		mk(acl.Deny, acl.Proto(acl.ProtoUDP), "", "", acl.Port(593), ""),
		mk(acl.Deny, acl.Proto(53), "", "", acl.AnyPort, ""),
		mk(acl.Deny, acl.Proto(55), "", "", acl.AnyPort, ""),
		mk(acl.Permit, acl.AnyProto, "", "104.208.32.0/20", acl.AnyPort, "permits with port blocks"),
		mk(acl.Permit, acl.AnyProto, "", "168.61.144.0/20", acl.AnyPort, ""),
	}
}

func pfxOrAny(s string) ipnet.Prefix {
	if s == "" {
		return ipnet.Prefix{}
	}
	return ipnet.MustParsePrefix(s)
}

// GenerateLegacyEdgeACL builds the inorganically grown ACL: the skeleton
// interleaved with service whitelists (redundant permits inside the broad
// /20s), duplicated denies, and zero-day /32 blocks inside already-denied
// ranges.
func GenerateLegacyEdgeACL(p EdgeACLParams) *acl.Policy {
	rng := rand.New(rand.NewSource(p.Seed))
	skel := edgeSkeleton()
	pol := &acl.Policy{Name: "edge-legacy", Semantics: acl.FirstApplicable}

	// Head of the skeleton: isolation + anti-spoofing (first 6 rules).
	pol.Rules = append(pol.Rules, skel[:6]...)

	// Zero-day /32 denies inside private ranges (already denied — they
	// were added in emergencies and never cleaned up).
	for i := 0; i < p.ZeroDayDenies; i++ {
		a := ipnet.Addr(0x0a000000 | rng.Uint32()&0x00ffffff)
		r := acl.NewRule(acl.Deny, acl.AnyProto,
			ipnet.Prefix{Addr: a, Bits: 32}, ipnet.Prefix{}, acl.AnyPort, acl.AnyPort)
		r.Remark = fmt.Sprintf("zero-day mitigation %d", i)
		pol.Rules = append(pol.Rules, r)
	}

	// Duplicate protections (exact copies of skeleton denies).
	for i := 0; i < p.DuplicateDenies; i++ {
		pol.Rules = append(pol.Rules, skel[rng.Intn(6)])
	}

	// Middle of the skeleton: the no-port-block permit and port blocks.
	pol.Rules = append(pol.Rules, skel[6:13]...)

	// Service-specific whitelist rules: hosts inside the broad /20
	// permits, so each is shadowed by the tail permits.
	base := ipnet.MustParsePrefix("104.208.32.0/20")
	for i := 0; i < p.ServiceRules; i++ {
		host := base.Addr + ipnet.Addr(rng.Uint32()%(1<<12))
		port := []uint16{80, 443, 1433, 8080}[rng.Intn(4)]
		r := acl.NewRule(acl.Permit, acl.Proto(acl.ProtoTCP),
			ipnet.Prefix{}, ipnet.Prefix{Addr: host, Bits: 32}, acl.AnyPort, acl.Port(port))
		r.Remark = fmt.Sprintf("service whitelist %d", i)
		pol.Rules = append(pol.Rules, r)
	}

	// Tail of the skeleton: the broad permits.
	pol.Rules = append(pol.Rules, skel[13:]...)

	for i := range pol.Rules {
		pol.Rules[i].Line = i + 1
		pol.Rules[i].Priority = i + 1
	}
	return pol
}

// EdgeContracts is the regression-test suite for the Edge ACL (§3.3: each
// contract is a reachability invariant such as "private datacenter
// addresses must not be reachable from the Internet" or "services must be
// reachable on 80/443").
func EdgeContracts() []secguru.Contract {
	pfx := ipnet.MustParsePrefix
	return []secguru.Contract{
		{Name: "private-10-isolated", Expected: acl.Deny, Filter: secguru.Filter{
			Protocol: acl.AnyProto, Src: pfx("10.0.0.0/8"), SrcPorts: acl.AnyPort, DstPorts: acl.AnyPort}},
		{Name: "private-172-isolated", Expected: acl.Deny, Filter: secguru.Filter{
			Protocol: acl.AnyProto, Src: pfx("172.16.0.0/12"), SrcPorts: acl.AnyPort, DstPorts: acl.AnyPort}},
		{Name: "anti-spoof", Expected: acl.Deny, Filter: secguru.Filter{
			Protocol: acl.AnyProto, Src: pfx("104.208.32.0/20"), SrcPorts: acl.AnyPort, DstPorts: acl.AnyPort}},
		{Name: "services-80", Expected: acl.Permit, Filter: secguru.Filter{
			Protocol: acl.Proto(acl.ProtoTCP), Src: pfx("8.0.0.0/8"), Dst: pfx("104.208.40.0/24"),
			SrcPorts: acl.AnyPort, DstPorts: acl.Port(80)}},
		{Name: "services-443", Expected: acl.Permit, Filter: secguru.Filter{
			Protocol: acl.Proto(acl.ProtoTCP), Src: pfx("8.0.0.0/8"), Dst: pfx("168.61.144.0/24"),
			SrcPorts: acl.AnyPort, DstPorts: acl.Port(443)}},
		{Name: "smb-blocked", Expected: acl.Deny, Filter: secguru.Filter{
			Protocol: acl.Proto(acl.ProtoTCP), Src: pfx("8.0.0.0/8"), Dst: pfx("104.208.40.0/24"),
			SrcPorts: acl.AnyPort, DstPorts: acl.Port(445)}},
		{Name: "proto-53-blocked", Expected: acl.Deny, Filter: secguru.Filter{
			Protocol: acl.Proto(53), Src: pfx("8.0.0.0/8"), Dst: pfx("168.61.144.0/24"),
			SrcPorts: acl.AnyPort, DstPorts: acl.AnyPort}},
	}
}

// RefactorStep describes one planned change of the Figure 11 series.
type RefactorStep struct {
	Name   string
	Change secguru.Change
}

// BuildRefactorPlan produces the phased plan: each step deletes a class of
// unnecessary rules, ending at the goal-state skeleton (<1000 rules).
func BuildRefactorPlan(legacy *acl.Policy) []RefactorStep {
	drop := func(p *acl.Policy, pred func(*acl.Rule) bool) *acl.Policy {
		out := p.Clone()
		kept := out.Rules[:0]
		for i := range out.Rules {
			if !pred(&out.Rules[i]) {
				kept = append(kept, out.Rules[i])
			}
		}
		out.Rules = kept
		return out
	}
	hasRemark := func(sub string) func(*acl.Rule) bool {
		return func(r *acl.Rule) bool {
			return len(r.Remark) >= len(sub) && r.Remark[:min(len(r.Remark), len(sub))] == sub
		}
	}

	var steps []RefactorStep
	cur := legacy

	// Step 1: retire zero-day mitigations shadowed by the private denies.
	cur = drop(cur, hasRemark("zero-day"))
	steps = append(steps, RefactorStep{"remove zero-day mitigations", secguru.Change{Name: "rm-zero-day", NewACL: cur}})

	// Step 2: deduplicate protections (exact duplicates of earlier rules).
	cur = dedupe(cur)
	steps = append(steps, RefactorStep{"deduplicate protections", secguru.Change{Name: "dedupe", NewACL: cur}})

	// Steps 3-5: move service whitelists to host firewalls, in thirds
	// (§3.3: deploy in groups, limiting blast radius).
	for part := 1; part <= 3; part++ {
		part := part
		cur = drop(cur, func(r *acl.Rule) bool {
			if !hasRemark("service whitelist")(r) {
				return false
			}
			var n int
			fmt.Sscanf(r.Remark, "service whitelist %d", &n)
			return n%3 == part-1
		})
		steps = append(steps, RefactorStep{
			fmt.Sprintf("move service whitelists to host firewalls (%d/3)", part),
			secguru.Change{Name: fmt.Sprintf("rm-services-%d", part), NewACL: cur},
		})
	}
	return steps
}

func dedupe(p *acl.Policy) *acl.Policy {
	out := p.Clone()
	seen := map[string]bool{}
	kept := out.Rules[:0]
	for i := range out.Rules {
		r := out.Rules[i]
		key := fmt.Sprintf("%v|%v|%v|%v|%v|%v", r.Action, r.Protocol, r.Src, r.Dst, r.SrcPorts, r.DstPorts)
		if seen[key] && r.Action == acl.Deny {
			continue
		}
		seen[key] = true
		kept = append(kept, r)
	}
	out.Rules = kept
	return out
}

// CorruptChange injects the §3.3 typo scenario: an incorrect prefix on a
// broad permit, which prechecks must catch.
func CorruptChange(ch secguru.Change) secguru.Change {
	bad := ch.NewACL.Clone()
	for i := range bad.Rules {
		r := &bad.Rules[i]
		if r.Action == acl.Permit && r.Dst == ipnet.MustParsePrefix("104.208.32.0/20") {
			r.Dst = ipnet.MustParsePrefix("105.208.32.0/20") // fat-fingered octet
			break
		}
	}
	return secguru.Change{Name: ch.Name + "-typo", NewACL: bad}
}
