package workload

import (
	"math/rand"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/secguru"
)

// This file models the Figure 12 series: customer-reported issues caused
// by NSG changes that block managed-database backups. The simulation runs
// customer NSG changes through the real SecGuru NSG guard: before the
// guard rollout every breaking change ships and becomes an incident; after
// the rollout (ramping adoption), guarded changes are rejected at the API
// instead.

// NSGIssuesConfig parameterizes the customer-population model.
type NSGIssuesConfig struct {
	Days int
	// LaunchDay is when the managed database service launches; adoption
	// grows linearly afterwards up to MaxCustomers.
	LaunchDay    int
	MaxCustomers int
	AdoptPerDay  int
	// ChangeProb is the daily probability a customer edits their NSG;
	// BreakProb is the probability an edit blocks the backup path.
	ChangeProb, BreakProb float64
	// GuardDay is when SecGuru validation is integrated into the change
	// API (day ~100 in Figure 12); GuardRampDays is how long until all
	// regions/customers are covered.
	GuardDay, GuardRampDays int
	// MTTRDays is how long a deployed breaking change keeps generating a
	// reported incident before the customer fixes it.
	MTTRDays int
	Seed     int64
}

// DefaultNSGIssuesConfig reproduces the Figure 12 shape over 200 days.
func DefaultNSGIssuesConfig() NSGIssuesConfig {
	return NSGIssuesConfig{
		Days: 200, LaunchDay: 10, MaxCustomers: 4000, AdoptPerDay: 40,
		ChangeProb: 0.03, BreakProb: 0.25,
		GuardDay: 100, GuardRampDays: 25, MTTRDays: 6,
		Seed: 99,
	}
}

// NSGIssuePoint is one day of the series.
type NSGIssuePoint struct {
	Day             int
	Customers       int
	ChangesAttempts int
	Rejected        int // breaking changes blocked by the guard
	NewIncidents    int
	OpenIncidents   int // customer-reported issues outstanding
}

// standardVnetNSG is the healthy customer policy: allow vnet-internal and
// managed-backup traffic, deny other inbound.
func standardVnetNSG() *acl.Policy {
	mk := func(name string, prio int, a acl.Action, src, dst ipnet.Prefix) acl.Rule {
		r := acl.NewRule(a, acl.AnyProto, src, dst, acl.AnyPort, acl.AnyPort)
		r.Name = name
		r.Priority = prio
		return r
	}
	anyP := ipnet.Prefix{}
	vnet := ipnet.MustParsePrefix("10.1.0.0/16")
	return &acl.Policy{Name: "vnet-nsg", Semantics: acl.FirstApplicable, Rules: []acl.Rule{
		mk("allow-vnet", 100, acl.Permit, vnet, vnet),
		mk("allow-outbound", 200, acl.Permit, vnet, anyP),
		mk("allow-infra-inbound", 300, acl.Permit, ipnet.MustParsePrefix("40.90.0.0/16"), vnet),
		mk("deny-inbound", 4000, acl.Deny, anyP, anyP),
	}}
}

// breakingChange inserts a high-priority deny that blocks the backup
// path — the inadvertent customer misconfiguration of §3.4.
func breakingChange(p *acl.Policy, rng *rand.Rand) *acl.Policy {
	out := p.Clone()
	blocked := []string{"40.0.0.0/8", "40.90.0.0/16", "0.0.0.0/0"}[rng.Intn(3)]
	r := acl.NewRule(acl.Deny, acl.AnyProto, ipnet.Prefix{}, ipnet.MustParsePrefix(blocked), acl.AnyPort, acl.AnyPort)
	r.Name = "lockdown"
	r.Priority = 50
	out.Rules = append([]acl.Rule{r}, out.Rules...)
	return out
}

// benignChange adds a narrow permit that does not affect backups.
func benignChange(p *acl.Policy, rng *rand.Rand) *acl.Policy {
	out := p.Clone()
	r := acl.NewRule(acl.Permit, acl.Proto(acl.ProtoTCP),
		ipnet.PrefixFrom(ipnet.Addr(rng.Uint32()), 24), ipnet.MustParsePrefix("10.1.0.0/16"),
		acl.AnyPort, acl.Port(443))
	r.Name = "app-allow"
	r.Priority = 150 + rng.Intn(40)
	out.Rules = append(out.Rules, r)
	return out
}

// SimulateNSGIssues runs the customer-population model, discharging every
// candidate change through the real SecGuru guard when it is enabled for
// that customer. It returns the daily series.
func SimulateNSGIssues(cfg NSGIssuesConfig) ([]NSGIssuePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mi := secguru.ManagedInstance{
		InstanceSubnet: ipnet.MustParsePrefix("10.1.2.0/24"),
		InfraService:   ipnet.MustParsePrefix("40.90.0.0/16"),
		InfraPorts:     acl.PortRange{Lo: 1433, Hi: 1434},
	}
	base := standardVnetNSG()

	customers := 0
	// openUntil[day] incidents resolve; track open incident expiry days.
	var openExpiry []int
	var out []NSGIssuePoint

	for day := 0; day < cfg.Days; day++ {
		if day >= cfg.LaunchDay && customers < cfg.MaxCustomers {
			customers += cfg.AdoptPerDay
			if customers > cfg.MaxCustomers {
				customers = cfg.MaxCustomers
			}
		}
		// Guard coverage ramps linearly after GuardDay.
		coverage := 0.0
		if day >= cfg.GuardDay {
			coverage = float64(day-cfg.GuardDay) / float64(cfg.GuardRampDays)
			if coverage > 1 {
				coverage = 1
			}
		}

		pt := NSGIssuePoint{Day: day, Customers: customers}
		nChanges := binomial(rng, customers, cfg.ChangeProb)
		pt.ChangesAttempts = nChanges
		for i := 0; i < nChanges; i++ {
			breaking := rng.Float64() < cfg.BreakProb
			var candidate *acl.Policy
			if breaking {
				candidate = breakingChange(base, rng)
			} else {
				candidate = benignChange(base, rng)
			}
			guard := &secguru.NSGGuard{Instance: &mi, Enabled: rng.Float64() < coverage}
			err := guard.ValidateChange(candidate)
			if err != nil {
				pt.Rejected++
				continue // change blocked at the API; no incident
			}
			// Change deployed. An incident occurs iff backups really
			// break — determined by the actual contracts, not the intent
			// of the simulation.
			rep, cerr := secguru.Check(candidate, secguru.BackupContracts(mi))
			if cerr != nil {
				return nil, cerr
			}
			if !rep.OK() {
				pt.NewIncidents++
				openExpiry = append(openExpiry, day+cfg.MTTRDays)
			}
		}
		open := 0
		for _, e := range openExpiry {
			if e > day {
				open++
			}
		}
		pt.OpenIncidents = open
		out = append(out, pt)
	}
	return out, nil
}

func binomial(rng *rand.Rand, n int, p float64) int {
	// Normal-free approximation: for small n·p just sample; cap the loop
	// for large n by sampling a Poisson with mean n·p.
	if n <= 0 || p <= 0 {
		return 0
	}
	if n > 200 {
		return poisson(rng, float64(n)*p)
	}
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}
