// Package workload synthesizes the scenarios behind the paper's
// experience sections: the six §2.6.2 error classes injected into healthy
// datacenters (E6), the Figure 6 error burndown, the Figure 11 legacy ACL
// refactoring series, and the Figure 12 NSG customer-issue series. All
// generators are deterministic under a caller-provided seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/faulty"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/topology"
)

// Scenario is a datacenter with injected faults: topology state, device
// configurations, FIB-level corruptions, and the ground-truth list of what
// was injected (for asserting detection).
type Scenario struct {
	Topo  *topology.Topology
	Cfg   map[topology.DeviceID]*bgp.DeviceConfig
	Lossy map[topology.LinkID]bool
	// ribFibKeep[d] = n truncates device d's FIB default route to n next
	// hops after synthesis (Software Bug 1: the RIB is right, the FIB is
	// not).
	ribFibKeep map[topology.DeviceID]int

	// Telemetry fault knobs (the seventh injectable error class): set
	// before calling Source/Datacenter. Rates are per pull attempt /
	// per stored document; dead devices come from InjectTelemetryLoss.
	TransientPullRate float64
	SlowPullRate      float64
	SlowPullDelay     time.Duration
	CorruptDocRate    float64
	FaultSeed         int64
	dead              map[topology.DeviceID]bool

	Injected []Injection
}

// Injection records one injected fault and the device(s) it targets.
type Injection struct {
	Class   monitor.ErrorClass
	Devices []topology.DeviceID
	Link    topology.LinkID
}

func (i Injection) String() string {
	return fmt.Sprintf("%s devices=%v link=%d", i.Class, i.Devices, i.Link)
}

// NewScenario wraps a healthy topology.
func NewScenario(topo *topology.Topology) *Scenario {
	return &Scenario{
		Topo:       topo,
		Cfg:        map[topology.DeviceID]*bgp.DeviceConfig{},
		Lossy:      map[topology.LinkID]bool{},
		ribFibKeep: map[topology.DeviceID]int{},
		dead:       map[topology.DeviceID]bool{},
	}
}

func (s *Scenario) cfg(d topology.DeviceID) *bgp.DeviceConfig {
	c := s.Cfg[d]
	if c == nil {
		c = &bgp.DeviceConfig{}
		s.Cfg[d] = c
	}
	return c
}

// InjectRIBFIBBug makes device d's FIB default route carry only keep next
// hops while the routing protocol state is healthy (Software Bug 1). The
// corruption happens at FIB extraction, invisible to the topology, so the
// change journal gets an explicit device event.
func (s *Scenario) InjectRIBFIBBug(d topology.DeviceID, keep int) {
	s.ribFibKeep[d] = keep
	s.Topo.NoteDeviceChanged(d)
	s.record(monitor.ClassRIBFIBBug, d, -1)
}

// InjectL2PortBug disables every BGP session of device d (Software Bug 2).
func (s *Scenario) InjectL2PortBug(d topology.DeviceID) {
	s.cfg(d).SessionsDisabled = true
	s.Topo.NoteDeviceChanged(d)
	s.record(monitor.ClassL2PortBug, d, -1)
}

// InjectOpticalFailure takes a link operationally down (Hardware Failure).
func (s *Scenario) InjectOpticalFailure(l topology.LinkID) {
	lk := s.Topo.Link(l)
	s.Topo.SetLinkUp(l, false)
	s.Injected = append(s.Injected, Injection{
		Class: monitor.ClassHardwareFailure, Devices: []topology.DeviceID{lk.A, lk.B}, Link: l,
	})
}

// InjectOperationDrift administratively shuts a session (lossy-link
// mitigation never remediated). If lossy, auto-remediation will re-shut it.
func (s *Scenario) InjectOperationDrift(l topology.LinkID, lossy bool) {
	lk := s.Topo.Link(l)
	s.Topo.SetSessionUp(l, false)
	if lossy {
		s.Lossy[l] = true
	}
	s.Injected = append(s.Injected, Injection{
		Class: monitor.ClassOperationDrift, Devices: []topology.DeviceID{lk.A, lk.B}, Link: l,
	})
}

// InjectMigrationClash configures cluster b's leaves with cluster a's leaf
// ASN (the §2.6.2 migration misconfiguration).
func (s *Scenario) InjectMigrationClash(a, b int) {
	asn := s.Topo.Device(s.Topo.ClusterLeaves(a)[0]).ASN
	var devs []topology.DeviceID
	for _, leaf := range s.Topo.ClusterLeaves(b) {
		s.cfg(leaf).ASNOverride = asn
		s.Topo.NoteDeviceChanged(leaf)
		devs = append(devs, leaf)
	}
	s.Injected = append(s.Injected, Injection{Class: monitor.ClassMigration, Devices: devs, Link: -1})
}

// InjectPolicyRejectDefault applies the route-map error rejecting default
// routes on device d (Policy Error 1).
func (s *Scenario) InjectPolicyRejectDefault(d topology.DeviceID) {
	s.cfg(d).RejectDefaultIn = true
	s.Topo.NoteDeviceChanged(d)
	s.record(monitor.ClassPolicyError, d, -1)
}

// InjectPolicyECMPSingle applies the ECMP misconfiguration using a single
// next hop on device d (Policy Error 2).
func (s *Scenario) InjectPolicyECMPSingle(d topology.DeviceID) {
	s.cfg(d).MaxECMPPaths = 1
	s.Topo.NoteDeviceChanged(d)
	s.record(monitor.ClassPolicyError, d, -1)
}

// InjectTelemetryLoss kills device d's management plane: every table pull
// fails until remediation revives it (the seventh error class — the
// device may forward fine, but the pipeline is blind to it).
func (s *Scenario) InjectTelemetryLoss(d topology.DeviceID) {
	s.dead[d] = true
	s.record(monitor.ClassTelemetryLoss, d, -1)
}

func (s *Scenario) record(c monitor.ErrorClass, d topology.DeviceID, l topology.LinkID) {
	s.Injected = append(s.Injected, Injection{Class: c, Devices: []topology.DeviceID{d}, Link: l})
}

// InjectRandom injects n faults of random classes on random targets.
func (s *Scenario) InjectRandom(rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			tor := s.Topo.ToRs()[rng.Intn(len(s.Topo.ToRs()))]
			s.InjectRIBFIBBug(tor, 1)
		case 1:
			leaf := s.Topo.Leaves()[rng.Intn(len(s.Topo.Leaves()))]
			s.InjectL2PortBug(leaf)
		case 2:
			s.InjectOpticalFailure(topology.LinkID(rng.Intn(len(s.Topo.Links))))
		case 3:
			s.InjectOperationDrift(topology.LinkID(rng.Intn(len(s.Topo.Links))), rng.Intn(4) == 0)
		case 4:
			s.InjectPolicyRejectDefault(s.Topo.Leaves()[rng.Intn(len(s.Topo.Leaves()))])
		default:
			s.InjectPolicyECMPSingle(s.Topo.ToRs()[rng.Intn(len(s.Topo.ToRs()))])
		}
	}
}

// Remediate applies the ground-truth fix for a triaged error class on a
// device: replace the cable, clear the misconfiguration, reload the FIB,
// re-enable the ports. It reports whether anything was fixed. This is the
// remediation side of the §2.6.4 loop that drives the burndown.
func (s *Scenario) Remediate(class monitor.ErrorClass, dev topology.DeviceID) bool {
	fixed := false
	switch class {
	case monitor.ClassRIBFIBBug:
		if _, ok := s.ribFibKeep[dev]; ok {
			delete(s.ribFibKeep, dev) // FIB reprogrammed from the healthy RIB
			s.Topo.NoteDeviceChanged(dev)
			fixed = true
		}
	case monitor.ClassL2PortBug:
		if c := s.Cfg[dev]; c != nil && c.SessionsDisabled {
			c.SessionsDisabled = false
			s.Topo.NoteDeviceChanged(dev)
			fixed = true
		}
	case monitor.ClassHardwareFailure:
		for _, lid := range s.Topo.LinksOf(dev) {
			if !s.Topo.Link(lid).Up {
				s.Topo.SetLinkUp(lid, true) // cable replaced
				delete(s.Lossy, lid)
				fixed = true
			}
		}
	case monitor.ClassOperationDrift:
		for _, lid := range s.Topo.LinksOf(dev) {
			l := s.Topo.Link(lid)
			if l.Up && !l.SessionUp {
				if s.Lossy[lid] {
					// A lossy link needs its optics replaced before the
					// session can stay up.
					delete(s.Lossy, lid)
				}
				s.Topo.SetSessionUp(lid, true)
				fixed = true
			}
		}
	case monitor.ClassMigration, monitor.ClassPolicyError:
		if c := s.Cfg[dev]; c != nil {
			if c.ASNOverride != 0 || c.RejectDefaultIn || c.MaxECMPPaths != 0 {
				c.ASNOverride = 0
				c.RejectDefaultIn = false
				c.MaxECMPPaths = 0
				s.Topo.NoteDeviceChanged(dev)
				fixed = true
			}
		}
	case monitor.ClassTelemetryLoss:
		if s.dead[dev] {
			delete(s.dead, dev) // management plane restored
			fixed = true
		}
	}
	return fixed
}

// Source returns the FIB source for the scenario: synthesized converged
// state under the injected topology/config faults, with the RIB-FIB
// corruption applied at FIB extraction, wrapped in the telemetry fault
// injector. The dead-device set is shared with the scenario, so
// Remediate(ClassTelemetryLoss) revives devices on an already-built
// source.
func (s *Scenario) Source() fib.Source {
	return &faulty.Source{
		Inner: &corruptedSource{
			inner: bgp.NewSynth(s.Topo, s.Cfg),
			keep:  s.ribFibKeep,
		},
		Seed:          s.FaultSeed,
		TransientRate: s.TransientPullRate,
		SlowRate:      s.SlowPullRate,
		SlowDelay:     s.SlowPullDelay,
		CorruptRate:   s.CorruptDocRate,
		Dead:          s.dead,
	}
}

// Datacenter packages the scenario for the monitoring service.
func (s *Scenario) Datacenter(name string) *monitor.Datacenter {
	dc := monitor.NewDatacenter(name, s.Topo, s.Cfg)
	dc.Source = s.Source()
	return dc
}

// corruptedSource applies Software Bug 1 on top of an honest source.
type corruptedSource struct {
	inner fib.Source
	keep  map[topology.DeviceID]int
}

// Refresh forwards live-state refresh to the wrapped source (bgp.Synth).
func (c *corruptedSource) Refresh() {
	if r, ok := c.inner.(interface{ Refresh() }); ok {
		r.Refresh()
	}
}

func (c *corruptedSource) Table(d topology.DeviceID) (*fib.Table, error) {
	t, err := c.inner.Table(d)
	if err != nil {
		return nil, err
	}
	n, ok := c.keep[d]
	if !ok {
		return t, nil
	}
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.Prefix.IsDefault() && len(e.NextHops) > n {
			e.NextHops = e.NextHops[:n]
		}
	}
	return t, nil
}
