package workload

import (
	"math"
	"math/rand"
)

// This file models the Figure 6 burndown of routing intent-drift errors.
// The paper's narrative: RCDC deploys near day 5 into a network carrying a
// latent-error backlog; validation reports drive remediation queues where
// high-risk errors are fixed with priority (§2.6.4); the proportion of
// errors relative to the initial total trends down, high-risk fastest.

// BurndownConfig parameterizes the remediation-queue simulation.
type BurndownConfig struct {
	Days int
	// DeployDay is when RCDC starts detecting (day 5 in Figure 6).
	DeployDay int
	// InitialHigh/InitialLow is the latent backlog present at deployment
	// ("initial reports identified a few hundred latent bugs").
	InitialHigh, InitialLow int
	// FixCapacityPerDay is how many errors remediation can retire daily;
	// high-risk errors are always retired first.
	FixCapacityPerDay int
	// ArrivalHigh/ArrivalLow are mean new errors per day (Poisson-ish).
	ArrivalHigh, ArrivalLow float64
	Seed                    int64
}

// DefaultBurndownConfig reproduces the Figure 6 shape.
func DefaultBurndownConfig() BurndownConfig {
	return BurndownConfig{
		Days: 60, DeployDay: 5,
		InitialHigh: 90, InitialLow: 210,
		FixCapacityPerDay: 12,
		ArrivalHigh:       0.4, ArrivalLow: 1.2,
		Seed: 42,
	}
}

// BurndownPoint is one day of the Figure 6 series: proportions are
// relative to the total backlog at its peak.
type BurndownPoint struct {
	Day                 int
	High, Low           int
	HighFrac, LowFrac   float64
	TotalFrac           float64
	RemediatedSoFar     int
	HighRemediatedSoFar int
}

// SimulateBurndown runs the remediation-queue model and returns the daily
// series.
func SimulateBurndown(cfg BurndownConfig) []BurndownPoint {
	rng := rand.New(rand.NewSource(cfg.Seed))
	high, low := cfg.InitialHigh, cfg.InitialLow
	peak := high + low
	if peak == 0 {
		peak = 1
	}
	var out []BurndownPoint
	remediated, highRemediated := 0, 0
	for day := 0; day < cfg.Days; day++ {
		// New latent errors keep arriving regardless of monitoring.
		high += poisson(rng, cfg.ArrivalHigh)
		low += poisson(rng, cfg.ArrivalLow)
		if high+low > peak {
			peak = high + low
		}
		// Before deployment nothing is detected, so nothing burns down.
		if day >= cfg.DeployDay {
			budget := cfg.FixCapacityPerDay
			fixH := min(budget, high)
			high -= fixH
			budget -= fixH
			fixL := min(budget, low)
			low -= fixL
			remediated += fixH + fixL
			highRemediated += fixH
		}
		out = append(out, BurndownPoint{
			Day: day, High: high, Low: low,
			HighFrac:            float64(high) / float64(peak),
			LowFrac:             float64(low) / float64(peak),
			TotalFrac:           float64(high+low) / float64(peak),
			RemediatedSoFar:     remediated,
			HighRemediatedSoFar: highRemediated,
		})
	}
	return out
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; means here are tiny.
	l := 1.0
	threshold := math.Exp(-mean)
	k := 0
	for {
		l *= rng.Float64()
		if l <= threshold {
			return k
		}
		k++
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
