package workload

import (
	"math/rand"
	"testing"

	"dcvalidate/internal/monitor"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/secguru"
	"dcvalidate/internal/topology"
)

func fig3Scenario() *Scenario {
	return NewScenario(topology.MustNew(topology.Figure3Params()))
}

func runMonitor(t *testing.T, s *Scenario) (*monitor.Instance, monitor.CycleStats) {
	t.Helper()
	in := monitor.NewInstance("t", s.Datacenter("dc"))
	in.Workers = 4
	stats, err := in.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	return in, stats
}

// TestErrorTaxonomyDetection is experiment E6: each §2.6.2 error class is
// injected, detected by RCDC, and triaged to its class and queue.
func TestErrorTaxonomyDetection(t *testing.T) {
	cases := []struct {
		name      string
		inject    func(s *Scenario) topology.DeviceID
		wantClass monitor.ErrorClass
		wantQueue monitor.RemediationQueueName
	}{
		{"rib-fib", func(s *Scenario) topology.DeviceID {
			d := s.Topo.ToRs()[0]
			s.InjectRIBFIBBug(d, 1)
			return d
		}, monitor.ClassRIBFIBBug, monitor.QueueInvestigation},
		{"l2-port", func(s *Scenario) topology.DeviceID {
			d := s.Topo.ClusterLeaves(0)[0]
			s.InjectL2PortBug(d)
			return d
		}, monitor.ClassL2PortBug, monitor.QueueInvestigation},
		{"optical", func(s *Scenario) topology.DeviceID {
			l, _ := s.Topo.LinkBetween(s.Topo.ToRs()[0], s.Topo.ClusterLeaves(0)[0])
			s.InjectOpticalFailure(l.ID)
			return s.Topo.ToRs()[0]
		}, monitor.ClassHardwareFailure, monitor.QueueReplaceCable},
		{"drift", func(s *Scenario) topology.DeviceID {
			l, _ := s.Topo.LinkBetween(s.Topo.ToRs()[1], s.Topo.ClusterLeaves(0)[1])
			s.InjectOperationDrift(l.ID, false)
			return s.Topo.ToRs()[1]
		}, monitor.ClassOperationDrift, monitor.QueueAutoUnshut},
		{"migration", func(s *Scenario) topology.DeviceID {
			s.InjectMigrationClash(0, 1)
			return s.Topo.ClusterLeaves(1)[0]
		}, monitor.ClassMigration, monitor.QueueConfigReview},
		{"policy-default", func(s *Scenario) topology.DeviceID {
			d := s.Topo.ClusterLeaves(1)[2]
			s.InjectPolicyRejectDefault(d)
			return d
		}, monitor.ClassPolicyError, monitor.QueueConfigReview},
		{"policy-ecmp", func(s *Scenario) topology.DeviceID {
			d := s.Topo.ToRs()[3]
			s.InjectPolicyECMPSingle(d)
			return d
		}, monitor.ClassPolicyError, monitor.QueueConfigReview},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := fig3Scenario()
			dev := c.inject(s)
			in, stats := runMonitor(t, s)
			if stats.Violations == 0 {
				t.Fatal("injection produced no violations")
			}
			errs := in.Analytics.Triage(stats.Cycle, in.Datacenters)
			var got *monitor.TriagedError
			for i := range errs {
				if errs[i].Record.Device == dev {
					got = &errs[i]
					break
				}
			}
			if got == nil {
				t.Fatalf("device %d not triaged; errors: %+v", dev, errs)
			}
			if got.Class != c.wantClass {
				t.Errorf("class = %v, want %v", got.Class, c.wantClass)
			}
			if got.Queue != c.wantQueue {
				t.Errorf("queue = %v, want %v", got.Queue, c.wantQueue)
			}
		})
	}
}

// TestMigrationLatentRisk asserts the paper's account of the migration
// error (§2.6.2): there are no reachability issues — traffic follows
// default routes to the correct destination, and in a healthy fabric the
// default path coincides with the shortest paths, so even the full global
// intent holds — yet RCDC flags the missing specific routes, because one
// additional link failure turns them into longer paths.
func TestMigrationLatentRisk(t *testing.T) {
	s := fig3Scenario()
	s.InjectMigrationClash(0, 1)
	g, err := rcdc.NewGlobalChecker(s.Topo, s.Source())
	if err != nil {
		t.Fatal(err)
	}
	// The global checker is blind to the latent problem.
	if fails := g.Check(rcdc.FullRedundancy); len(fails) != 0 {
		t.Errorf("global intent should still hold under ASN clash: %v", fails)
	}
	// RCDC is not: the specific contracts are violated.
	_, stats := runMonitor(t, s)
	if stats.Violations == 0 {
		t.Fatal("RCDC missed the latent migration risk")
	}

	// Materialize the risk: one more failure (a spine losing its cluster-1
	// leaf link) forces cluster-0 traffic through the regional spine — a
	// 6-hop path where the intended network would still be at 4 hops.
	spine0 := s.Topo.Spines()[0]
	leafB0 := s.Topo.ClusterLeaves(1)[0]
	s.Topo.FailLink(spine0, leafB0)
	g2, err := rcdc.NewGlobalChecker(s.Topo, s.Source())
	if err != nil {
		t.Fatal(err)
	}
	if fails := g2.Check(rcdc.ShortestPaths); len(fails) == 0 {
		t.Error("longer path did not materialize under the extra failure")
	}
	// Without the clash, the same extra failure keeps shortest paths.
	clean := NewScenario(topology.MustNew(topology.Figure3Params()))
	clean.Topo.FailLink(clean.Topo.Spines()[0], clean.Topo.ClusterLeaves(1)[0])
	g3, err := rcdc.NewGlobalChecker(clean.Topo, clean.Source())
	if err != nil {
		t.Fatal(err)
	}
	if fails := g3.Check(rcdc.ShortestPaths); len(fails) != 0 {
		t.Errorf("intended network degraded to longer paths: %v", fails)
	}
}

func TestInjectRandomProducesDetectableErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := fig3Scenario()
	s.InjectRandom(rng, 4)
	if len(s.Injected) != 4 {
		t.Fatalf("injected = %d", len(s.Injected))
	}
	_, stats := runMonitor(t, s)
	if stats.Violations == 0 {
		t.Error("random injections produced no violations")
	}
}

func TestBurndownShape(t *testing.T) {
	cfg := DefaultBurndownConfig()
	pts := SimulateBurndown(cfg)
	if len(pts) != cfg.Days {
		t.Fatalf("points = %d", len(pts))
	}
	// Backlog holds (or grows) before deployment.
	if pts[cfg.DeployDay-1].TotalFrac < 0.9 {
		t.Errorf("backlog burned down before deployment: %v", pts[cfg.DeployDay-1].TotalFrac)
	}
	// Clear downward trend after deployment.
	if pts[len(pts)-1].TotalFrac > 0.2 {
		t.Errorf("no burndown: final frac %v", pts[len(pts)-1].TotalFrac)
	}
	// High-risk burns to zero before low-risk does.
	highZero, lowZero := -1, -1
	for _, p := range pts {
		if highZero < 0 && p.High == 0 {
			highZero = p.Day
		}
		if lowZero < 0 && p.Low == 0 {
			lowZero = p.Day
		}
	}
	if highZero < 0 {
		t.Fatal("high-risk errors never reach zero")
	}
	if lowZero >= 0 && lowZero < highZero {
		t.Error("low-risk errors cleared before high-risk")
	}
	// Fractions are consistent.
	for _, p := range pts {
		if p.TotalFrac < p.HighFrac || p.TotalFrac < p.LowFrac {
			t.Fatalf("inconsistent fractions at day %d", p.Day)
		}
	}
	// Determinism.
	pts2 := SimulateBurndown(cfg)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("burndown not deterministic")
		}
	}
}

func TestLegacyACLGeneration(t *testing.T) {
	p := DefaultEdgeACLParams()
	pol := GenerateLegacyEdgeACL(p)
	want := 15 + p.ServiceRules + p.DuplicateDenies + p.ZeroDayDenies
	if len(pol.Rules) != want {
		t.Fatalf("rules = %d, want %d", len(pol.Rules), want)
	}
	// The legacy ACL satisfies the contract suite as-is.
	rep, err := secguru.Check(pol, EdgeContracts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("legacy ACL violates its contract suite: %+v", rep.Failed())
	}
	// Determinism.
	pol2 := GenerateLegacyEdgeACL(p)
	if len(pol2.Rules) != len(pol.Rules) {
		t.Error("generation not deterministic")
	}
}

// TestRefactorSeries is the Figure 11 experiment core: the phased plan
// shrinks the ACL below 1000 rules with every precheck passing, and an
// injected typo is caught.
func TestRefactorSeries(t *testing.T) {
	params := EdgeACLParams{ServiceRules: 600, DuplicateDenies: 90, ZeroDayDenies: 80, Seed: 7}
	legacy := GenerateLegacyEdgeACL(params)
	steps := BuildRefactorPlan(legacy)
	if len(steps) != 5 {
		t.Fatalf("steps = %d", len(steps))
	}

	pl := &secguru.Plan{
		TestDevice: secguru.NewDevice("testdev", 0, 0, legacy),
		Devices: []*secguru.Device{
			secguru.NewDevice("edge-1", 0, 0, legacy),
			secguru.NewDevice("edge-2", 1, 0, legacy),
		},
		Contracts: EdgeContracts(),
	}
	prev := len(legacy.Rules)
	for _, st := range steps {
		res, err := pl.Apply(st.Change)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PrecheckOK {
			t.Fatalf("step %q precheck failed: %+v", st.Name, res.PrecheckFails)
		}
		if !res.PostcheckOK {
			t.Fatalf("step %q postcheck failed", st.Name)
		}
		if res.RuleCount >= prev {
			t.Errorf("step %q did not shrink the ACL: %d -> %d", st.Name, prev, res.RuleCount)
		}
		prev = res.RuleCount
	}
	if prev >= 1000 {
		t.Errorf("final ACL has %d rules, want < 1000", prev)
	}

	// Every retired rule set is semantically redundant: the final ACL is
	// equivalent to the legacy one.
	eq, w, err := secguru.Equivalent(legacy, steps[len(steps)-1].Change.NewACL)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("refactoring changed semantics, witness %+v", w)
	}

	// A typo'd change must fail prechecks and never deploy.
	bad := CorruptChange(steps[len(steps)-1].Change)
	res, err := pl.Apply(bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrecheckOK {
		t.Error("typo change passed prechecks")
	}
	if res.DeployedGroups != 0 {
		t.Error("typo change reached production")
	}
}

// TestNSGIssuesShape is the Figure 12 experiment core: incidents rise
// after launch and fall after the SecGuru guard rollout.
func TestNSGIssuesShape(t *testing.T) {
	cfg := NSGIssuesConfig{
		Days: 80, LaunchDay: 5, MaxCustomers: 300, AdoptPerDay: 15,
		ChangeProb: 0.05, BreakProb: 0.3,
		GuardDay: 40, GuardRampDays: 10, MTTRDays: 5,
		Seed: 99,
	}
	pts, err := SimulateNSGIssues(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != cfg.Days {
		t.Fatalf("points = %d", len(pts))
	}
	avg := func(lo, hi int) float64 {
		sum := 0
		for _, p := range pts[lo:hi] {
			sum += p.OpenIncidents
		}
		return float64(sum) / float64(hi-lo)
	}
	preLaunch := avg(0, cfg.LaunchDay)
	peak := avg(cfg.GuardDay-10, cfg.GuardDay)
	tail := avg(cfg.Days-10, cfg.Days)
	if preLaunch != 0 {
		t.Errorf("incidents before launch: %v", preLaunch)
	}
	if peak <= 1 {
		t.Errorf("no incident buildup before guard: %v", peak)
	}
	if tail >= peak/2 {
		t.Errorf("guard did not reduce incidents: peak %v tail %v", peak, tail)
	}
	// After full coverage, breaking changes are rejected, not deployed.
	rejectedTail := 0
	for _, p := range pts[cfg.Days-10:] {
		rejectedTail += p.Rejected
	}
	if rejectedTail == 0 {
		t.Error("guard never rejected a change at full coverage")
	}
}
