package workload

import (
	"testing"

	"dcvalidate/internal/topology"
)

// TestPipelineBurndown runs the closed detection→triage→remediation loop
// and asserts the Figure 6 shape emerges from the real pipeline: alerts
// open early, burn down under the per-cycle budget, and high-risk alerts
// clear no later than the backlog as a whole.
func TestPipelineBurndown(t *testing.T) {
	cfg := PipelineBurndownConfig{
		Params: topology.Params{
			Name: "pbt", Clusters: 3, ToRsPerCluster: 6, LeavesPerCluster: 4,
			SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
		},
		Faults: 10, Cycles: 12, FixPerCycle: 3, Seed: 77,
	}
	series, err := SimulatePipelineBurndown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != cfg.Cycles {
		t.Fatalf("series = %d points", len(series))
	}
	first, last := series[0], series[len(series)-1]
	if first.OpenHigh+first.OpenLow == 0 {
		t.Fatal("no alerts opened from the injected backlog")
	}
	if got, was := last.OpenHigh+last.OpenLow, first.OpenHigh+first.OpenLow; got >= was {
		t.Errorf("no burndown: %d -> %d open alerts", was, got)
	}
	if last.OpenHigh != 0 {
		t.Errorf("high-risk alerts still open at the end: %d", last.OpenHigh)
	}
	// High-risk clears no later than the total: find first zero-high cycle
	// and first zero-total cycle.
	firstHighZero, firstTotalZero := -1, -1
	for _, p := range series {
		if firstHighZero < 0 && p.OpenHigh == 0 {
			firstHighZero = p.Cycle
		}
		if firstTotalZero < 0 && p.OpenHigh+p.OpenLow == 0 {
			firstTotalZero = p.Cycle
		}
	}
	if firstTotalZero >= 0 && firstHighZero > firstTotalZero {
		t.Errorf("high-risk outlived the backlog: high zero at %d, total at %d",
			firstHighZero, firstTotalZero)
	}
	// Determinism.
	series2, err := SimulatePipelineBurndown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if series[i] != series2[i] {
			t.Fatal("pipeline burndown not deterministic")
		}
	}
}
