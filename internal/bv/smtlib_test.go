package bv

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteSMTLIB2Shape(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("dstIp", 32)
	p := c.BoolVar("nhA")
	f := c.And(c.InRange(x, 10, 20), p)
	var buf bytes.Buffer
	if err := WriteSMTLIB2(&buf, c, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"(set-logic QF_BV)",
		"(declare-const dstIp (_ BitVec 32))",
		"(declare-const nhA Bool)",
		"(assert ",
		"bvule",
		"(check-sat)",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

func TestParseSMTLIB2Basic(t *testing.T) {
	in := `
; a comment
(set-logic QF_BV)
(set-info :source "test")
(declare-const x (_ BitVec 8))
(declare-const p Bool)
(assert (and p (bvule (_ bv10 8) x) (bvule x #x14)))
(check-sat)
(exit)
`
	sc, err := ParseSMTLIB2(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(sc.Ctx, sc.Formula())
	if err != nil || !res.Sat {
		t.Fatalf("Solve = %v %v", res.Sat, err)
	}
	v := res.Model.BVs["x"]
	if v < 10 || v > 0x14 {
		t.Errorf("x = %d", v)
	}
	if !res.Model.Bools["p"] {
		t.Error("p must hold")
	}
}

func TestParseSMTLIB2BinaryLiteralAndExtract(t *testing.T) {
	in := `
(declare-const x (_ BitVec 8))
(assert (= ((_ extract 7 4) x) #b1010))
(assert (= ((_ extract 3 0) x) #b0101))
`
	sc, err := ParseSMTLIB2(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(sc.Ctx, sc.Formula())
	if err != nil || !res.Sat {
		t.Fatal("should be sat")
	}
	if res.Model.BVs["x"] != 0xa5 {
		t.Errorf("x = %#x", res.Model.BVs["x"])
	}
}

func TestParseSMTLIB2Errors(t *testing.T) {
	bad := []string{
		"(assert x)",                      // unknown symbol
		"(declare-const x (_ BitVec 99))", // width out of range
		"(frobnicate)",                    // unknown command
		"(assert (bvadd #b1 #b1))",        // non-boolean assert
		"(declare-const x (_ BitVec 8)) (assert (bvshl x x))", // variable shift
		"(assert (and",           // unbalanced
		"(declare-const x Real)", // unsupported sort
	}
	for i, in := range bad {
		if _, err := ParseSMTLIB2(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

// TestSMTLIB2RoundTrip: random formulas survive write→parse with identical
// satisfiability and, when satisfiable, cross-valid models.
func TestSMTLIB2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const w = 4
	for iter := 0; iter < 150; iter++ {
		c := NewCtx()
		var f Term
		if iter%2 == 0 {
			f = randomTerm(c, rng, 2, w)
		} else {
			f = c.Eq(randomBVExpr(c, rng, 2, w), randomBVExpr(c, rng, 2, w))
		}
		var buf bytes.Buffer
		if err := WriteSMTLIB2(&buf, c, f); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		sc, err := ParseSMTLIB2(strings.NewReader(text))
		if err != nil {
			t.Fatalf("iter %d: parse: %v\n%s", iter, err, text)
		}
		r1, err := Solve(c, f)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Solve(sc.Ctx, sc.Formula())
		if err != nil {
			t.Fatal(err)
		}
		if r1.Sat != r2.Sat {
			t.Fatalf("iter %d: satisfiability changed across round trip\n%s", iter, text)
		}
	}
}
