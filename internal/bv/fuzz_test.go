package bv

import (
	"strings"
	"testing"
)

func FuzzParseSMTLIB2(f *testing.F) {
	f.Add("(set-logic QF_BV)\n(declare-const x (_ BitVec 8))\n(assert (bvule x #x10))\n(check-sat)")
	f.Add("(declare-const p Bool)(assert (and p (not p)))")
	f.Add("(assert (= #b1010 ((_ extract 3 0) #x5a)))")
	f.Add("((((")
	f.Add("(assert)")
	f.Add("; just a comment")
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseSMTLIB2(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted scripts must be solvable without panic; bound the work.
		f := sc.Formula()
		s := NewSolver(sc.Ctx)
		if _, err := s.Solve(f); err != nil {
			// Conflict limits are not configured here, so any error is a
			// bug.
			t.Fatalf("solve failed on accepted script: %v", err)
		}
	})
}
