package bv

import (
	"strings"
	"testing"
)

func FuzzParseSMTLIB2(f *testing.F) {
	f.Add("(set-logic QF_BV)\n(declare-const x (_ BitVec 8))\n(assert (bvule x #x10))\n(check-sat)")
	f.Add("(declare-const p Bool)(assert (and p (not p)))")
	f.Add("(assert (= #b1010 ((_ extract 3 0) #x5a)))")
	f.Add("((((")
	f.Add("(assert)")
	f.Add("; just a comment")
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseSMTLIB2(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted scripts must be solvable without panic; bound the work.
		// Both blasting pipelines run — the default simplified one and the
		// direct ablation — and must agree on satisfiability, with the
		// simplified pipeline's model satisfying the original formula.
		f := sc.Formula()
		s := NewSolver(sc.Ctx)
		res, err := s.Solve(f)
		if err != nil {
			// Conflict limits are not configured here, so any error is a
			// bug.
			t.Fatalf("solve failed on accepted script: %v", err)
		}
		d := NewSolver(sc.Ctx)
		d.DisableSimplify = true
		dres, err := d.Solve(f)
		if err != nil {
			t.Fatalf("direct solve failed on accepted script: %v", err)
		}
		if res.Sat != dres.Sat {
			t.Fatalf("simplified sat=%v, direct sat=%v on %q", res.Sat, dres.Sat, in)
		}
		if res.Sat && !sc.Ctx.Eval(f, res.Model) {
			t.Fatalf("model does not satisfy original formula for %q", in)
		}
	})
}
