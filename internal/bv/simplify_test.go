package bv

import (
	"fmt"
	"math/rand"
	"testing"
)

// Unit tests: one per rewrite rule. Hash-consing makes rewrites directly
// observable — structurally equal terms are the same handle, so expected
// shapes compare with ==.

func TestSimplifyIteConstantBranches(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	cases := []struct {
		name     string
		in, want Term
	}{
		{"then-true", c.Ite(p, c.True(), q), c.Or(p, q)},
		{"then-false", c.Ite(p, c.False(), q), c.And(c.Not(p), q)},
		{"else-true", c.Ite(p, q, c.True()), c.Or(c.Not(p), q)},
		{"else-false", c.Ite(p, q, c.False()), c.And(p, q)},
	}
	for _, tc := range cases {
		if got := c.Simplify(tc.in); got != tc.want {
			t.Errorf("%s: Simplify(%s) = %s, want %s",
				tc.name, c.String(tc.in), c.String(got), c.String(tc.want))
		}
	}
}

func TestSimplifyFusesRangePair(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 32)
	// 10.1.16.0/20 → the pair fuses to extract(x,31,12) = prefix.
	lo, hi := uint64(0x0A011000), uint64(0x0A011FFF)
	in := c.And(c.Ule(c.BVConst(lo, 32), x), c.Ule(x, c.BVConst(hi, 32)))
	want := c.Eq(c.Extract(x, 31, 12), c.BVConst(lo>>12, 20))
	if got := c.Simplify(in); got != want {
		t.Errorf("Simplify(%s) = %s, want %s", c.String(in), c.String(got), c.String(want))
	}
	// A /32 (single address) fuses to plain equality.
	one := c.And(c.Ule(c.BVConst(lo, 32), x), c.Ule(x, c.BVConst(lo, 32)))
	if got, want := c.Simplify(one), c.Eq(x, c.BVConst(lo, 32)); got != want {
		t.Errorf("single-address range: got %s, want %s", c.String(got), c.String(want))
	}
}

func TestSimplifyFusesAnchoredSingleBound(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 16)
	// x ≤ 0x0FFF is the block [0, 0x0FFF]: top four bits zero.
	if got, want := c.Simplify(c.Ule(x, c.BVConst(0x0FFF, 16))), c.Eq(c.Extract(x, 15, 12), c.BVConst(0, 4)); got != want {
		t.Errorf("upper anchored: got %s, want %s", c.String(got), c.String(want))
	}
	// 0xF000 ≤ x is the block [0xF000, 0xFFFF]: top four bits one.
	if got, want := c.Simplify(c.Ule(c.BVConst(0xF000, 16), x)), c.Eq(c.Extract(x, 15, 12), c.BVConst(0xF, 4)); got != want {
		t.Errorf("lower anchored: got %s, want %s", c.String(got), c.String(want))
	}
}

func TestSimplifyLeavesNonBlockRange(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 16)
	// [5, 10] is not a binary block; the comparison pair must survive.
	in := c.And(c.Ule(c.BVConst(5, 16), x), c.Ule(x, c.BVConst(10, 16)))
	if got := c.Simplify(in); got != in {
		t.Errorf("non-block range rewritten: %s → %s", c.String(in), c.String(got))
	}
}

func TestSimplifyFoldsThroughIteChain(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	p := c.BoolVar("p")
	// The innermost policy Ite always terminates in false (drop), so the
	// chain collapses into nested And/Or with the range tests fused.
	chain := c.Ite(c.InRange(x, 0x10, 0x1F), p, c.False())
	want := c.And(c.Eq(c.Extract(x, 7, 4), c.BVConst(1, 4)), p)
	if got := c.Simplify(chain); got != want {
		t.Errorf("Simplify(%s) = %s, want %s", c.String(chain), c.String(got), c.String(want))
	}
}

func TestSimplifyIdempotentAndMemoized(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 32)
	f := c.Ite(c.InRange(x, 0x0A000000, 0x0AFFFFFF), c.BoolVar("p"), c.False())
	once := c.Simplify(f)
	if twice := c.Simplify(once); twice != once {
		t.Errorf("not idempotent: %s vs %s", c.String(once), c.String(twice))
	}
}

func TestBlockSuffix(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		k      int
		ok     bool
	}{
		{0x0A011000, 0x0A011FFF, 12, true},
		{7, 7, 0, true},
		{0, 0xFFFF, 16, true},
		{5, 10, 0, false},      // not an all-ones suffix
		{0x10, 0x2F, 0, false}, // suffix ones but lo's free bits misaligned crossing
		{0x18, 0x1F, 3, true},
		{10, 5, 0, false}, // inverted
	}
	for _, tc := range cases {
		k, ok := blockSuffix(tc.lo, tc.hi)
		if ok != tc.ok || (ok && k != tc.k) {
			t.Errorf("blockSuffix(%#x, %#x) = (%d, %v), want (%d, %v)", tc.lo, tc.hi, k, ok, tc.k, tc.ok)
		}
	}
}

// randomPolicyFormula builds an RCDC-shaped contract query: an ITE policy
// chain over random prefix ranges (a deliberate mix of exact CIDR blocks
// and non-block spans) conjoined with a range assumption and a negated
// hop set — the Definition 2.1 query shape.
func randomPolicyFormula(c *Ctx, rng *rand.Rand) Term {
	dst := c.BVVar("dstIp", 32)
	policy := c.False()
	for i := 0; i < 4+rng.Intn(8); i++ {
		var lo, hi uint64
		if rng.Intn(2) == 0 {
			bits := 8 + rng.Intn(17)
			lo = uint64(rng.Uint32()) &^ (1<<(32-bits) - 1)
			hi = lo | (1<<(32-bits) - 1)
		} else {
			a, b := uint64(rng.Uint32()), uint64(rng.Uint32())
			if a > b {
				a, b = b, a
			}
			lo, hi = a, b
		}
		hops := c.Or(
			c.BoolVar(fmt.Sprintf("nh%d", rng.Intn(4))),
			c.BoolVar(fmt.Sprintf("nh%d", rng.Intn(4))),
		)
		policy = c.Ite(c.InRange(dst, lo, hi), hops, policy)
	}
	want := c.BoolVar(fmt.Sprintf("nh%d", rng.Intn(4)))
	lo := uint64(rng.Uint32()) &^ 0xFFF
	return c.And(c.InRange(dst, lo, lo|0xFFF), policy, c.Not(want))
}

// randomACLFormula builds a SecGuru-shaped filter: conjunctions of header
// field ranges combined first-match through the allow/deny chain.
func randomACLFormula(c *Ctx, rng *rand.Rand) Term {
	src := c.BVVar("srcIp", 32)
	dstPort := c.BVVar("dstPort", 16)
	proto := c.BVVar("protocol", 8)
	formula := c.False()
	for i := 0; i < 3+rng.Intn(6); i++ {
		bits := 8 + rng.Intn(17)
		lo := uint64(rng.Uint32()) &^ (1<<(32-bits) - 1)
		match := c.And(
			c.InRange(src, lo, lo|(1<<(32-bits)-1)),
			c.InRange(dstPort, uint64(rng.Intn(1000)), uint64(1000+rng.Intn(60000))),
			c.Eq(proto, c.BVConst(uint64(6+11*rng.Intn(2)), 8)),
		)
		if rng.Intn(2) == 0 {
			formula = c.Or(match, formula)
		} else {
			formula = c.And(c.Not(match), formula)
		}
	}
	return formula
}

// TestSimplifyEquisatisfiable is the rewrite-pass property test: on
// RCDC- and SecGuru-shaped encodings, the simplified-then-blasted and
// directly-blasted pipelines must agree on satisfiability, and each
// pipeline's extracted model must satisfy both the original and the
// simplified formula under the reference evaluator — models stay
// interchangeable across the rewrite.
func TestSimplifyEquisatisfiable(t *testing.T) {
	gens := []struct {
		name string
		gen  func(*Ctx, *rand.Rand) Term
	}{
		{"rcdc-policy", randomPolicyFormula},
		{"secguru-acl", randomACLFormula},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 60; trial++ {
				c := NewCtx()
				f := g.gen(c, rng)
				simp := NewSolver(c)
				direct := NewSolver(c)
				direct.DisableSimplify = true
				rs, err := simp.Solve(f)
				if err != nil {
					t.Fatal(err)
				}
				rd, err := direct.Solve(f)
				if err != nil {
					t.Fatal(err)
				}
				if rs.Sat != rd.Sat {
					t.Fatalf("trial %d: simplified sat=%v, direct sat=%v on %s",
						trial, rs.Sat, rd.Sat, c.String(f))
				}
				if !rs.Sat {
					continue
				}
				sf := c.Simplify(f)
				for _, m := range []struct {
					name  string
					model Model
				}{{"simplified-pipeline", rs.Model}, {"direct-pipeline", rd.Model}} {
					if !c.Eval(f, m.model) {
						t.Fatalf("trial %d: %s model fails the original formula", trial, m.name)
					}
					if !c.Eval(sf, m.model) {
						t.Fatalf("trial %d: %s model fails the simplified formula", trial, m.name)
					}
				}
			}
		})
	}
}

// TestSimplifyEquivalentExhaustive checks full semantic equivalence (not
// just equisatisfiability) by enumerating every assignment of narrow
// random formulas.
func TestSimplifyEquivalentExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		c := NewCtx()
		x := c.BVVar("x", 4)
		p := c.BoolVar("p")
		f := c.False()
		for i := 0; i < 1+rng.Intn(3); i++ {
			a, b := uint64(rng.Intn(16)), uint64(rng.Intn(16))
			if a > b {
				a, b = b, a
			}
			f = c.Ite(c.InRange(x, a, b), c.Or(p, f), f)
		}
		sf := c.Simplify(f)
		for xv := uint64(0); xv < 16; xv++ {
			for _, pv := range []bool{false, true} {
				m := Model{Bools: map[string]bool{"p": pv}, BVs: map[string]uint64{"x": xv}}
				if c.Eval(f, m) != c.Eval(sf, m) {
					t.Fatalf("trial %d: differ at x=%d p=%v:\n  f  = %s\n  sf = %s",
						trial, xv, pv, c.String(f), c.String(sf))
				}
			}
		}
	}
}
