package bv

// This file completes the quantifier-free bit-vector fragment §3.2
// attributes to the solver: "modular addition, subtraction,
// multiplication, bit-wise logical operations, and comparisons" plus the
// structural operations (extract, concat, shifts) SMT-LIB's QF_BV offers.
// The policy encodings only need comparisons, but the engine is a general
// substrate and downstream users (checksum reasoning, header rewriting)
// need the rest.

import "fmt"

const (
	kBVNot kind = iota + 64 // keep clear of the boolean kinds
	kBVAnd
	kBVOr
	kBVXor
	kBVAdd
	kBVSub
	kBVMul
	kBVNeg
	kBVShl     // shift left by constant (in val)
	kBVLshr    // logical shift right by constant (in val)
	kBVExtract // bits [val>>8 : val&0xff] inclusive, lsb-indexed
	kBVConcat  // args[0] is the high part
	kBVIte     // bit-vector ite(cond, a, b)
	kSle       // signed <=
)

func (c *Ctx) bvBinary(k kind, a, b Term, op string) Term {
	c.checkBVPair(a, b, op)
	return c.intern(node{kind: k, width: c.n(a).width, args: []Term{a, b}})
}

func (c *Ctx) constFold2(a, b Term, f func(x, y uint64) uint64) (Term, bool) {
	na, nb := c.n(a), c.n(b)
	if na.kind == kBVConst && nb.kind == kBVConst {
		return c.BVConst(f(na.val, nb.val), int(na.width)), true
	}
	return 0, false
}

// BVNot returns the bitwise complement of a.
func (c *Ctx) BVNot(a Term) Term {
	n := c.n(a)
	if n.width == 0 {
		panic("bv: BVNot of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if n.kind == kBVConst {
		return c.BVConst(^n.val, int(n.width))
	}
	if n.kind == kBVNot {
		return n.args[0]
	}
	return c.intern(node{kind: kBVNot, width: n.width, args: []Term{a}})
}

// BVAnd returns the bitwise conjunction a & b.
func (c *Ctx) BVAnd(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x & y }); ok {
		return t
	}
	if a == b {
		return a
	}
	return c.bvBinary(kBVAnd, a, b, "BVAnd")
}

// BVOr returns the bitwise disjunction a | b.
func (c *Ctx) BVOr(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x | y }); ok {
		return t
	}
	if a == b {
		return a
	}
	return c.bvBinary(kBVOr, a, b, "BVOr")
}

// BVXor returns a ^ b.
func (c *Ctx) BVXor(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x ^ y }); ok {
		return t
	}
	if a == b {
		return c.BVConst(0, int(c.n(a).width))
	}
	return c.bvBinary(kBVXor, a, b, "BVXor")
}

// Add returns a + b modulo 2^width.
func (c *Ctx) Add(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x + y }); ok {
		return t
	}
	if v, isC := c.isConstTerm(b); isC && v == 0 {
		return a
	}
	if v, isC := c.isConstTerm(a); isC && v == 0 {
		return b
	}
	return c.bvBinary(kBVAdd, a, b, "Add")
}

// Sub returns a - b modulo 2^width.
func (c *Ctx) Sub(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x - y }); ok {
		return t
	}
	if a == b {
		return c.BVConst(0, int(c.n(a).width))
	}
	if v, isC := c.isConstTerm(b); isC && v == 0 {
		return a
	}
	return c.bvBinary(kBVSub, a, b, "Sub")
}

// Mul returns a * b modulo 2^width.
func (c *Ctx) Mul(a, b Term) Term {
	if t, ok := c.constFold2(a, b, func(x, y uint64) uint64 { return x * y }); ok {
		return t
	}
	if v, isC := c.isConstTerm(b); isC {
		switch v {
		case 0:
			return c.BVConst(0, int(c.n(a).width))
		case 1:
			return a
		}
	}
	if v, isC := c.isConstTerm(a); isC {
		switch v {
		case 0:
			return c.BVConst(0, int(c.n(b).width))
		case 1:
			return b
		}
	}
	return c.bvBinary(kBVMul, a, b, "Mul")
}

// Neg returns -a (two's complement).
func (c *Ctx) Neg(a Term) Term {
	n := c.n(a)
	if n.width == 0 {
		panic("bv: Neg of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if n.kind == kBVConst {
		return c.BVConst(-n.val, int(n.width))
	}
	return c.intern(node{kind: kBVNeg, width: n.width, args: []Term{a}})
}

// Shl returns a << k for a constant shift k.
func (c *Ctx) Shl(a Term, k int) Term {
	n := c.n(a)
	if n.width == 0 {
		panic("bv: Shl of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if k < 0 || k > int(n.width) {
		panic("bv: shift amount out of range") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if k == 0 {
		return a
	}
	if n.kind == kBVConst {
		if k >= 64 {
			return c.BVConst(0, int(n.width))
		}
		return c.BVConst(n.val<<k, int(n.width))
	}
	return c.intern(node{kind: kBVShl, width: n.width, val: uint64(k), args: []Term{a}})
}

// Lshr returns a >> k (logical) for a constant shift k.
func (c *Ctx) Lshr(a Term, k int) Term {
	n := c.n(a)
	if n.width == 0 {
		panic("bv: Lshr of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if k < 0 || k > int(n.width) {
		panic("bv: shift amount out of range") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if k == 0 {
		return a
	}
	if n.kind == kBVConst {
		if k >= 64 {
			return c.BVConst(0, int(n.width))
		}
		return c.BVConst(n.val>>k, int(n.width))
	}
	return c.intern(node{kind: kBVLshr, width: n.width, val: uint64(k), args: []Term{a}})
}

// Extract returns bits hi..lo of a (inclusive, lsb-indexed) as a
// bit-vector of width hi-lo+1.
func (c *Ctx) Extract(a Term, hi, lo int) Term {
	n := c.n(a)
	if n.width == 0 {
		panic("bv: Extract of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if lo < 0 || hi < lo || hi >= int(n.width) {
		panic(fmt.Sprintf("bv: Extract [%d:%d] out of range for width %d", hi, lo, n.width)) // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	w := hi - lo + 1
	if n.kind == kBVConst {
		return c.BVConst(n.val>>lo, w)
	}
	if lo == 0 && hi == int(n.width)-1 {
		return a
	}
	return c.intern(node{kind: kBVExtract, width: uint8(w),
		val: uint64(hi)<<8 | uint64(lo), args: []Term{a}})
}

// Concat returns the concatenation hi ++ lo (hi becomes the most
// significant part).
func (c *Ctx) Concat(hi, lo Term) Term {
	nh, nl := c.n(hi), c.n(lo)
	if nh.width == 0 || nl.width == 0 {
		panic("bv: Concat of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	w := int(nh.width) + int(nl.width)
	if w > 64 {
		panic("bv: Concat result exceeds 64 bits") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if nh.kind == kBVConst && nl.kind == kBVConst {
		return c.BVConst(nh.val<<nl.width|nl.val, w)
	}
	return c.intern(node{kind: kBVConcat, width: uint8(w), args: []Term{hi, lo}})
}

// BVIte returns if cond then a else b for bit-vector a, b.
func (c *Ctx) BVIte(cond, a, b Term) Term {
	c.checkBVPair(a, b, "BVIte")
	switch c.n(cond).kind {
	case kTrue:
		return a
	case kFalse:
		return b
	}
	if a == b {
		return a
	}
	return c.intern(node{kind: kBVIte, width: c.n(a).width, args: []Term{cond, a, b}})
}

// Sle returns the signed comparison a ≤ b (two's complement).
func (c *Ctx) Sle(a, b Term) Term {
	c.checkBVPair(a, b, "Sle")
	na, nb := c.n(a), c.n(b)
	if na.kind == kBVConst && nb.kind == kBVConst {
		w := na.width
		sa := signExtend(na.val, w)
		sb := signExtend(nb.val, w)
		if sa <= sb {
			return c.True()
		}
		return c.False()
	}
	if a == b {
		return c.True()
	}
	return c.intern(node{kind: kSle, args: []Term{a, b}})
}

// Slt returns the signed comparison a < b.
func (c *Ctx) Slt(a, b Term) Term { return c.Not(c.Sle(b, a)) }

func signExtend(v uint64, w uint8) int64 {
	if w == 64 {
		return int64(v)
	}
	sign := uint64(1) << (w - 1)
	if v&sign != 0 {
		v |= ^uint64(0) << w
	}
	return int64(v)
}

func (c *Ctx) isConstTerm(t Term) (uint64, bool) {
	n := c.n(t)
	if n.kind == kBVConst {
		return n.val, true
	}
	return 0, false
}
