package bv

import (
	"math/rand"
	"strings"
	"testing"
)

func TestConstFolding(t *testing.T) {
	c := NewCtx()
	if c.And() != c.True() {
		t.Error("empty And != true")
	}
	if c.Or() != c.False() {
		t.Error("empty Or != false")
	}
	x := c.BoolVar("x")
	if c.And(x, c.True()) != x {
		t.Error("And(x, true) != x")
	}
	if c.And(x, c.False()) != c.False() {
		t.Error("And(x, false) != false")
	}
	if c.Or(x, c.True()) != c.True() {
		t.Error("Or(x, true) != true")
	}
	if c.Or(x, c.False()) != x {
		t.Error("Or(x, false) != x")
	}
	if c.Not(c.Not(x)) != x {
		t.Error("double negation not folded")
	}
	if c.And(x, c.Not(x)) != c.False() {
		t.Error("And(x, ¬x) != false")
	}
	if c.Or(x, c.Not(x)) != c.True() {
		t.Error("Or(x, ¬x) != true")
	}
	if c.And(x, x) != x {
		t.Error("And(x, x) != x")
	}
}

func TestConstComparisons(t *testing.T) {
	c := NewCtx()
	a := c.BVConst(5, 8)
	b := c.BVConst(9, 8)
	if c.Eq(a, b) != c.False() || c.Eq(a, a) != c.True() {
		t.Error("const Eq not folded")
	}
	if c.Ule(a, b) != c.True() || c.Ule(b, a) != c.False() {
		t.Error("const Ule not folded")
	}
	x := c.BVVar("x", 8)
	if c.Ule(c.BVConst(0, 8), x) != c.True() {
		t.Error("0 <= x not folded")
	}
	if c.Ule(x, c.BVConst(255, 8)) != c.True() {
		t.Error("x <= max not folded")
	}
}

func TestHashConsing(t *testing.T) {
	c := NewCtx()
	x1 := c.BVVar("x", 32)
	x2 := c.BVVar("x", 32)
	if x1 != x2 {
		t.Error("same var interned twice")
	}
	a := c.And(c.BoolVar("p"), c.BoolVar("q"))
	b := c.And(c.BoolVar("p"), c.BoolVar("q"))
	if a != b {
		t.Error("structurally equal terms not shared")
	}
}

func TestSortMismatchPanics(t *testing.T) {
	c := NewCtx()
	defer func() {
		if recover() == nil {
			t.Error("Eq of mismatched widths did not panic")
		}
	}()
	c.Eq(c.BVVar("a", 8), c.BVVar("b", 16))
}

func TestSolveSimple(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	f := c.And(c.Uge(x, c.BVConst(10, 8)), c.Ule(x, c.BVConst(12, 8)))
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatalf("Solve = %+v, %v", res, err)
	}
	v := res.Model.BVs["x"]
	if v < 10 || v > 12 {
		t.Errorf("model x = %d, want in [10,12]", v)
	}
}

func TestSolveUNSATRange(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	f := c.And(c.Uge(x, c.BVConst(200, 8)), c.Ule(x, c.BVConst(100, 8)))
	res, err := Solve(c, f)
	if err != nil || res.Sat {
		t.Fatalf("expected unsat, got %+v, %v", res, err)
	}
}

func TestSolveEquality(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 16)
	y := c.BVVar("y", 16)
	f := c.And(c.Eq(x, y), c.Eq(x, c.BVConst(445, 16)))
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatalf("Solve = %+v, %v", res, err)
	}
	if res.Model.BVs["x"] != 445 || res.Model.BVs["y"] != 445 {
		t.Errorf("model = %v", res.Model.BVs)
	}
}

func TestValid(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	// x <= 100 → x <= 200 is valid.
	f := c.Implies(c.Ule(x, c.BVConst(100, 8)), c.Ule(x, c.BVConst(200, 8)))
	ok, _, err := Valid(c, f)
	if err != nil || !ok {
		t.Errorf("valid implication rejected: %v %v", ok, err)
	}
	// The converse is invalid, counterexample in (100, 200].
	g := c.Implies(c.Ule(x, c.BVConst(200, 8)), c.Ule(x, c.BVConst(100, 8)))
	ok, m, err := Valid(c, g)
	if err != nil || ok {
		t.Fatalf("invalid implication accepted")
	}
	cx := m.BVs["x"]
	if cx <= 100 || cx > 200 {
		t.Errorf("counterexample x = %d not in (100,200]", cx)
	}
}

func TestPrefixRangeAtom(t *testing.T) {
	// The predicate of §2.5.1 eq (1): 10.20.20.0/24.
	c := NewCtx()
	x := c.BVVar("dstIp", 32)
	lo := uint64(0x0a141400)
	hi := uint64(0x0a1414ff)
	f := c.InRange(x, lo, hi)
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatal("prefix range should be sat")
	}
	v := res.Model.BVs["dstIp"]
	if v < lo || v > hi {
		t.Errorf("model %#x outside range", v)
	}
	// Conjunction with exclusion of the whole range is unsat.
	g := c.And(f, c.Not(c.InRange(x, lo, hi)))
	res, _ = Solve(c, g)
	if res.Sat {
		t.Error("range ∧ ¬range sat")
	}
}

func TestIte(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	a := c.BoolVar("a")
	b := c.BoolVar("b")
	// ite(p,a,b) ∧ p ∧ ¬a is unsat.
	f := c.And(c.Ite(p, a, b), p, c.Not(a))
	res, _ := Solve(c, f)
	if res.Sat {
		t.Error("ite contradiction sat")
	}
	// ite(p,a,b) ∧ ¬p ∧ ¬b is unsat.
	f2 := c.And(c.Ite(p, a, b), c.Not(p), c.Not(b))
	res, _ = Solve(c, f2)
	if res.Sat {
		t.Error("ite else contradiction sat")
	}
	// ite(p,a,b) ∧ ¬p ∧ b is sat.
	f3 := c.And(c.Ite(p, a, b), c.Not(p), b)
	res, _ = Solve(c, f3)
	if !res.Sat {
		t.Error("consistent ite unsat")
	}
	// Ite simplifications.
	if c.Ite(c.True(), a, b) != a || c.Ite(c.False(), a, b) != b || c.Ite(p, a, a) != a {
		t.Error("Ite not simplified")
	}
}

// eval interprets a term under an assignment, the independent semantics used
// to cross-check the bit-blaster.
func eval(c *Ctx, t Term, bools map[string]bool, bvs map[string]uint64) bool {
	n := c.n(t)
	switch n.kind {
	case kTrue:
		return true
	case kFalse:
		return false
	case kBoolVar:
		return bools[n.name]
	case kNot:
		return !eval(c, n.args[0], bools, bvs)
	case kAnd:
		for _, a := range n.args {
			if !eval(c, a, bools, bvs) {
				return false
			}
		}
		return true
	case kOr:
		for _, a := range n.args {
			if eval(c, a, bools, bvs) {
				return true
			}
		}
		return false
	case kIte:
		if eval(c, n.args[0], bools, bvs) {
			return eval(c, n.args[1], bools, bvs)
		}
		return eval(c, n.args[2], bools, bvs)
	case kEq:
		return evalBV(c, n.args[0], bvs) == evalBV(c, n.args[1], bvs)
	case kUle:
		return evalBV(c, n.args[0], bvs) <= evalBV(c, n.args[1], bvs)
	}
	panic("eval: bad kind")
}

func evalBV(c *Ctx, t Term, bvs map[string]uint64) uint64 {
	n := c.n(t)
	switch n.kind {
	case kBVConst:
		return n.val
	case kBVVar:
		return bvs[n.name]
	}
	panic("evalBV: bad kind")
}

// randomTerm builds a random boolean term over small-width variables.
func randomTerm(c *Ctx, rng *rand.Rand, depth int, width int) Term {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return c.BoolVar([]string{"p", "q", "r"}[rng.Intn(3)])
		case 1:
			v := c.BVVar([]string{"x", "y"}[rng.Intn(2)], width)
			return c.Eq(v, c.BVConst(uint64(rng.Intn(1<<width)), width))
		case 2:
			v := c.BVVar([]string{"x", "y"}[rng.Intn(2)], width)
			return c.Ule(v, c.BVConst(uint64(rng.Intn(1<<width)), width))
		default:
			a := c.BVVar("x", width)
			b := c.BVVar("y", width)
			if rng.Intn(2) == 0 {
				return c.Ule(a, b)
			}
			return c.Eq(a, b)
		}
	}
	switch rng.Intn(5) {
	case 0:
		return c.Not(randomTerm(c, rng, depth-1, width))
	case 1:
		return c.And(randomTerm(c, rng, depth-1, width), randomTerm(c, rng, depth-1, width))
	case 2:
		return c.Or(randomTerm(c, rng, depth-1, width), randomTerm(c, rng, depth-1, width))
	case 3:
		return c.Ite(randomTerm(c, rng, depth-1, width),
			randomTerm(c, rng, depth-1, width), randomTerm(c, rng, depth-1, width))
	default:
		a := c.BVVar("x", width)
		lo := uint64(rng.Intn(1 << width))
		hi := uint64(rng.Intn(1 << width))
		return c.InRange(a, lo, hi)
	}
}

// bruteSat enumerates all assignments over the fixed variable universe.
func bruteSat(c *Ctx, t Term, width int) bool {
	boolNames := []string{"p", "q", "r"}
	for bm := 0; bm < 8; bm++ {
		bools := map[string]bool{}
		for i, n := range boolNames {
			bools[n] = bm>>i&1 == 1
		}
		for x := 0; x < 1<<width; x++ {
			for y := 0; y < 1<<width; y++ {
				if eval(c, t, bools, map[string]uint64{"x": uint64(x), "y": uint64(y)}) {
					return true
				}
			}
		}
	}
	return false
}

// TestSolverVsBrute cross-checks the bit-blaster + SAT pipeline against
// exhaustive evaluation on hundreds of random formulas.
func TestSolverVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 4
	for iter := 0; iter < 400; iter++ {
		c := NewCtx()
		f := randomTerm(c, rng, 2+rng.Intn(3), width)
		want := bruteSat(c, f, width)
		res, err := Solve(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != want {
			t.Fatalf("iter %d: solver=%v brute=%v term=%s", iter, res.Sat, want, c.String(f))
		}
		if res.Sat {
			// The returned model must actually satisfy the formula.
			bools := map[string]bool{"p": res.Model.Bools["p"], "q": res.Model.Bools["q"], "r": res.Model.Bools["r"]}
			bvs := map[string]uint64{"x": res.Model.BVs["x"], "y": res.Model.BVs["y"]}
			if !eval(c, f, bools, bvs) {
				t.Fatalf("iter %d: model does not satisfy term %s (model %v %v)",
					iter, c.String(f), bools, bvs)
			}
		}
	}
}

// TestSolverVsBruteWide repeats the cross-check at width 8 with fewer
// iterations, exercising longer comparison chains.
func TestSolverVsBruteWide(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const width = 8
	for iter := 0; iter < 60; iter++ {
		c := NewCtx()
		f := randomTerm(c, rng, 2, width)
		want := bruteSat(c, f, width)
		res, err := Solve(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != want {
			t.Fatalf("iter %d: solver=%v brute=%v term=%s", iter, res.Sat, want, c.String(f))
		}
	}
}

func TestSolve32BitBoundaries(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 32)
	// Exactly one value: x = 0xffffffff.
	f := c.Uge(x, c.BVConst(0xffffffff, 32))
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatal("boundary sat failed")
	}
	if res.Model.BVs["x"] != 0xffffffff {
		t.Errorf("x = %#x", res.Model.BVs["x"])
	}
	// x < 0 impossible.
	g := c.Ult(x, c.BVConst(0, 32))
	res, _ = Solve(c, g)
	if res.Sat {
		t.Error("x < 0 sat")
	}
}

func TestSolve64BitWidth(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 64)
	f := c.And(
		c.Uge(x, c.BVConst(1<<63, 64)),
		c.Ule(x, c.BVConst(1<<63|1, 64)),
	)
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatal("64-bit range unsat")
	}
	v := res.Model.BVs["x"]
	if v != 1<<63 && v != 1<<63|1 {
		t.Errorf("x = %#x", v)
	}
}

func TestBooleanConvenience(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	if c.Iff(p, p) != c.True() {
		t.Error("Iff(p,p) != true")
	}
	// Iff(p,q) ∧ p ∧ ¬q is unsat.
	res, err := Solve(c, c.And(c.Iff(p, q), p, c.Not(q)))
	if err != nil || res.Sat {
		t.Error("Iff contradiction sat")
	}
	// Ugt: x > 254 over 8 bits pins x = 255.
	x := c.BVVar("x", 8)
	res, err = Solve(c, c.Ugt(x, c.BVConst(254, 8)))
	if err != nil || !res.Sat || res.Model.BVs["x"] != 255 {
		t.Errorf("Ugt solve = %+v, %v", res, err)
	}
}

func TestStringRendering(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	f := c.And(c.BoolVar("p"), c.Not(c.Ule(x, c.BVConst(3, 8))), c.Sle(x, c.Neg(x)))
	s := c.String(f)
	for _, w := range []string{"and", "p", "bvule", "x", "3", "bvsle", "bvneg"} {
		if !strings.Contains(s, w) {
			t.Errorf("String %q missing %q", s, w)
		}
	}
	g := c.Eq(c.Extract(c.Shl(x, 2), 7, 4), c.BVConst(1, 4))
	s = c.String(g)
	for _, w := range []string{"extract", "bvshl"} {
		if !strings.Contains(s, w) {
			t.Errorf("String %q missing %q", s, w)
		}
	}
}

func TestSolveAssumingReuse(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	s := NewSolver(c)
	// Mutually exclusive assumptions against shared structure.
	lo := c.Ule(x, c.BVConst(10, 8))
	hi := c.Uge(x, c.BVConst(200, 8))
	r1, err := s.SolveAssuming(lo)
	if err != nil || !r1.Sat || r1.Model.BVs["x"] > 10 {
		t.Fatalf("r1 = %+v, %v", r1, err)
	}
	r2, err := s.SolveAssuming(hi)
	if err != nil || !r2.Sat || r2.Model.BVs["x"] < 200 {
		t.Fatalf("r2 = %+v, %v", r2, err)
	}
	r3, err := s.SolveAssuming(lo, hi)
	if err != nil || r3.Sat {
		t.Fatalf("contradictory assumptions sat")
	}
	// The solver is still usable after UNSAT-under-assumptions.
	r4, err := s.SolveAssuming(lo)
	if err != nil || !r4.Sat {
		t.Fatalf("solver unusable after unsat assumptions")
	}
}
