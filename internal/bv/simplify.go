package bv

// This file implements the pre-blast term-rewriting pass. Construction
// through Ctx already folds constants and flattens one level at a time;
// Simplify re-normalizes a whole DAG bottom-up, which (a) re-runs those
// smart constructors so constants discovered deep in an Ite/And/Or chain
// fold all the way out, (b) dedups structurally equal subterms through the
// intern table, and (c) applies the rewrites that matter for the policy
// workload: boolean if-then-else against constant branches collapses into
// And/Or, and constant comparison pairs that describe an exact CIDR block
// (the dominant atom shape in packet filters, §2.5/§3.2) are fused into a
// single per-bit prefix equality. The fused form bit-blasts to one aux
// variable and one clause per prefix bit, instead of two lexicographic
// comparison chains of ~3 aux variables and ~9 clauses per bit — the bulk
// of the E4/E8 speedup happens here, before the SAT core ever runs.

import "math/bits"

// Simplify returns a term equivalent to t (same value under every
// assignment, hence equisatisfiable with identical models over t's
// variables) rewritten by the simplification pass. Results are memoized on
// the context, so repeated queries sharing structure — a policy encoding
// asserted under many contracts — pay for each subterm once.
func (c *Ctx) Simplify(t Term) Term {
	if c.simplified == nil {
		c.simplified = make(map[Term]Term)
	}
	r := c.simp(t)
	// A bare top-level comparison gets the anchored-block rewrite here;
	// inside conjunctions fuseRanges owns it, and it must not run during
	// the bottom-up walk or it would pre-empt pair fusion (x ≤ hi fusing
	// alone before its matching lo ≤ x is seen).
	if c.n(r).kind == kUle {
		r = c.simpUle(r)
	}
	return r
}

func (c *Ctx) simp(t Term) Term {
	if r, ok := c.simplified[t]; ok {
		return r
	}
	// Copy the node: recursive construction below may grow c.nodes and
	// invalidate interior pointers.
	n := c.nodes[t]
	var r Term
	switch n.kind {
	case kTrue, kFalse, kBoolVar, kBVVar, kBVConst:
		r = t
	case kNot:
		r = c.Not(c.simp(n.args[0]))
	case kAnd:
		r = c.simpNary(n.args, c.And)
		r = c.fuseRanges(r)
	case kOr:
		r = c.simpNary(n.args, c.Or)
	case kIte:
		r = c.simpIte(n.args[0], n.args[1], n.args[2])
	case kEq:
		r = c.Eq(c.simp(n.args[0]), c.simp(n.args[1]))
	case kUle:
		r = c.Ule(c.simp(n.args[0]), c.simp(n.args[1]))
	case kSle:
		r = c.Sle(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVNot:
		r = c.BVNot(c.simp(n.args[0]))
	case kBVAnd:
		r = c.BVAnd(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVOr:
		r = c.BVOr(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVXor:
		r = c.BVXor(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVAdd:
		r = c.Add(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVSub:
		r = c.Sub(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVMul:
		r = c.Mul(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVNeg:
		r = c.Neg(c.simp(n.args[0]))
	case kBVShl:
		r = c.Shl(c.simp(n.args[0]), int(n.val))
	case kBVLshr:
		r = c.Lshr(c.simp(n.args[0]), int(n.val))
	case kBVExtract:
		r = c.Extract(c.simp(n.args[0]), int(n.val>>8), int(n.val&0xff))
	case kBVConcat:
		r = c.Concat(c.simp(n.args[0]), c.simp(n.args[1]))
	case kBVIte:
		cond := c.simp(n.args[0])
		r = c.BVIte(cond, c.simp(n.args[1]), c.simp(n.args[2]))
	default:
		panic("bv: Simplify of invalid term") // invariant: exhaustive kind switch — new kinds must extend the simplifier
	}
	c.simplified[t] = r
	c.simplified[r] = r // simplification is idempotent
	return r
}

// simpNary simplifies each argument and rebuilds through the flattening,
// deduplicating, constant-folding smart constructor.
func (c *Ctx) simpNary(args []Term, build func(...Term) Term) Term {
	out := make([]Term, len(args))
	for i, a := range args {
		out[i] = c.simp(a)
	}
	return build(out...)
}

// simpIte simplifies a boolean if-then-else, collapsing constant branches:
//
//	ite(c, true, e)  → c ∨ e        ite(c, t, true)  → ¬c ∨ t
//	ite(c, false, e) → ¬c ∧ e       ite(c, t, false) → c ∧ t
//
// The policy chain of Definition 2.1 terminates in false, so its innermost
// node always collapses, and every contract whose constant folding reaches
// a branch keeps collapsing outward.
func (c *Ctx) simpIte(cond, a, b Term) Term {
	sc, sa, sb := c.simp(cond), c.simp(a), c.simp(b)
	switch c.n(sa).kind {
	case kTrue:
		return c.Or(sc, sb)
	case kFalse:
		return c.And(c.Not(sc), sb)
	}
	switch c.n(sb).kind {
	case kTrue:
		return c.Or(c.Not(sc), sa)
	case kFalse:
		return c.fuseRanges(c.And(sc, sa))
	}
	return c.Ite(sc, sa, sb)
}

// cmpConst deconstructs a simplified Ule into (term, bound, isUpper):
// x ≤ hi or lo ≤ x with a constant bound. Ule's constructor has already
// folded the trivial bounds (0 ≤ x, x ≤ max) to true.
func (c *Ctx) cmpConst(t Term) (x Term, bound uint64, upper, ok bool) {
	n := c.n(t)
	if n.kind != kUle {
		return 0, 0, false, false
	}
	a, b := c.n(n.args[0]), c.n(n.args[1])
	if b.kind == kBVConst && a.kind != kBVConst {
		return n.args[0], b.val, true, true
	}
	if a.kind == kBVConst && b.kind != kBVConst {
		return n.args[1], a.val, false, true
	}
	return 0, 0, false, false
}

// prefixEq returns the per-bit test for "x lies in the CIDR block whose
// free suffix is k bits and whose fixed prefix is lo >> k":
// extract(x, w-1, k) = lo>>k. For k = 0 this is plain equality with lo.
func (c *Ctx) prefixEq(x Term, lo uint64, k int) Term {
	w := c.Width(x)
	return c.Eq(c.Extract(x, w-1, k), c.BVConst(lo>>k, w-k))
}

// fuseRanges rewrites constant-bound comparison pairs inside a conjunction
// into per-bit prefix tests. A pair lo ≤ x ∧ x ≤ hi where [lo, hi] is an
// exact CIDR block (hi = lo | suffix-ones, lo's suffix zero) becomes a
// single equality on the fixed prefix bits. Unpaired bounds whose range is
// a block anchored at 0 or at the top of the space fuse on their own.
// Non-block ranges (arbitrary port spans) are left to the comparison-chain
// encoding. The walk is slice-ordered, so the rewrite is deterministic.
func (c *Ctx) fuseRanges(t Term) Term {
	if c.n(t).kind != kAnd {
		return t
	}
	args := c.n(t).args
	type bound struct {
		argIdx int
		val    uint64
	}
	lower := make(map[Term]bound)
	upper := make(map[Term]bound)
	order := make([]Term, 0, len(args))
	for i, a := range args {
		x, v, isUpper, ok := c.cmpConst(a)
		if !ok {
			continue
		}
		m := lower
		if isUpper {
			m = upper
		}
		if _, dup := m[x]; dup {
			continue // keep only the first bound of each side
		}
		m[x] = bound{argIdx: i, val: v}
		order = append(order, x)
	}
	replace := make(map[int]Term) // arg index → fused term (or True to drop)
	seenX := make(map[Term]bool)
	for _, x := range order {
		if seenX[x] {
			continue
		}
		seenX[x] = true
		lo, hasLo := lower[x]
		hi, hasHi := upper[x]
		w := c.Width(x)
		max := c.maxVal(x)
		switch {
		case hasLo && hasHi:
			if k, ok := blockSuffix(lo.val, hi.val); ok {
				fused := c.prefixEq(x, lo.val, k)
				replace[lo.argIdx] = fused
				replace[hi.argIdx] = c.True()
			}
		case hasHi:
			// x ≤ hi with hi+1 a power of two: the block [0, hi].
			if k, ok := blockSuffix(0, hi.val); ok && k < w {
				replace[hi.argIdx] = c.prefixEq(x, 0, k)
			}
		case hasLo:
			// lo ≤ x with [lo, max] a block: fixed all-ones prefix.
			if k, ok := blockSuffix(lo.val, max); ok && k < w {
				replace[lo.argIdx] = c.prefixEq(x, lo.val, k)
			}
		}
	}
	if len(replace) == 0 {
		return t
	}
	out := make([]Term, len(args))
	for i, a := range args {
		if r, ok := replace[i]; ok {
			out[i] = r
		} else {
			out[i] = a
		}
	}
	return c.And(out...)
}

// blockSuffix reports whether [lo, hi] is an exact binary block: hi differs
// from lo in a suffix of k free bits that are zero in lo and one in hi.
// Returns the suffix length k (0 for a single value).
func blockSuffix(lo, hi uint64) (int, bool) {
	if lo > hi {
		return 0, false
	}
	diff := lo ^ hi
	if diff&(diff+1) != 0 { // not an all-ones suffix
		return 0, false
	}
	if lo&diff != 0 { // lo's free bits must be zero
		return 0, false
	}
	return bits.Len64(diff), true
}

// simpUle rewrites a single comparison against a constant when the
// described range is an exact block anchored at an end of the space —
// the standalone halves InRange leaves behind after its trivial side
// folds away.
func (c *Ctx) simpUle(t Term) Term {
	x, v, isUpper, ok := c.cmpConst(t)
	if !ok {
		return t
	}
	w := c.Width(x)
	if isUpper {
		if k, ok := blockSuffix(0, v); ok && k < w {
			return c.prefixEq(x, 0, k)
		}
		return t
	}
	if k, ok := blockSuffix(v, c.maxVal(x)); ok && k < w {
		return c.prefixEq(x, v, k)
	}
	return t
}
