package bv

import (
	"math/rand"
	"testing"
)

func TestArithConstFolding(t *testing.T) {
	c := NewCtx()
	a := c.BVConst(200, 8)
	b := c.BVConst(100, 8)
	cases := []struct {
		got  Term
		want uint64
	}{
		{c.Add(a, b), 44}, // 300 mod 256
		{c.Sub(b, a), 156},
		{c.Mul(a, b), (200 * 100) % 256},
		{c.BVAnd(a, b), 200 & 100},
		{c.BVOr(a, b), 200 | 100},
		{c.BVXor(a, b), 200 ^ 100},
		{c.BVNot(a), 0xff &^ 200},
		{c.Neg(b), 156},
		{c.Shl(b, 2), (100 << 2) % 256},
		{c.Lshr(a, 3), 200 >> 3},
		{c.Extract(a, 7, 4), 200 >> 4},
		{c.Concat(c.BVConst(0xab, 8), c.BVConst(0xcd, 8)), 0xabcd},
	}
	for i, cs := range cases {
		n := c.n(cs.got)
		if n.kind != kBVConst || n.val != cs.want {
			t.Errorf("case %d: got kind=%v val=%d, want const %d", i, n.kind, n.val, cs.want)
		}
	}
	if c.Sle(c.BVConst(0xff, 8), c.BVConst(0, 8)) != c.True() {
		t.Error("-1 <=s 0 should fold to true")
	}
	if c.Sle(c.BVConst(1, 8), c.BVConst(0xff, 8)) != c.False() {
		t.Error("1 <=s -1 should fold to false")
	}
}

func TestArithIdentities(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	zero := c.BVConst(0, 8)
	one := c.BVConst(1, 8)
	if c.Add(x, zero) != x || c.Add(zero, x) != x {
		t.Error("x+0 != x")
	}
	if c.Sub(x, zero) != x || c.Sub(x, x) != zero {
		t.Error("sub identities")
	}
	if c.Mul(x, one) != x || c.Mul(one, x) != x || c.Mul(x, zero) != zero {
		t.Error("mul identities")
	}
	if c.BVNot(c.BVNot(x)) != x {
		t.Error("double complement")
	}
	if c.BVXor(x, x) != zero {
		t.Error("x^x != 0")
	}
	if c.BVAnd(x, x) != x || c.BVOr(x, x) != x {
		t.Error("idempotence")
	}
	if c.Shl(x, 0) != x || c.Lshr(x, 0) != x {
		t.Error("zero shift")
	}
	if c.Extract(x, 7, 0) != x {
		t.Error("full extract")
	}
	if c.BVIte(c.True(), x, zero) != x || c.BVIte(c.False(), x, zero) != zero {
		t.Error("BVIte const folding")
	}
}

func TestArithSolveBasics(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	y := c.BVVar("y", 8)
	// x + y = 10 ∧ x - y = 4 → x=7, y=3.
	f := c.And(
		c.Eq(c.Add(x, y), c.BVConst(10, 8)),
		c.Eq(c.Sub(x, y), c.BVConst(4, 8)),
	)
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatalf("Solve: %v %v", res.Sat, err)
	}
	if res.Model.BVs["x"] != 7 || res.Model.BVs["y"] != 3 {
		t.Errorf("model = %v", res.Model.BVs)
	}

	// x * 3 = 21 has solutions x=7 and x=7+256/gcd... mod 256: 3 invertible,
	// unique solution 7... plus overflow wraps: 3x ≡ 21 (mod 256) → x ≡ 7·3^{-1}·3 = 7.
	g := c.Eq(c.Mul(x, c.BVConst(3, 8)), c.BVConst(21, 8))
	res, err = Solve(c, g)
	if err != nil || !res.Sat {
		t.Fatal("mul unsat")
	}
	if v := res.Model.BVs["x"]; v*3%256 != 21 {
		t.Errorf("x = %d", v)
	}
}

// evalBVFull extends the interpreter to the arithmetic kinds.
func evalBVFull(c *Ctx, t Term, bvs map[string]uint64) uint64 {
	n := c.n(t)
	mask := ^uint64(0)
	if n.width < 64 {
		mask = (1 << n.width) - 1
	}
	switch n.kind {
	case kBVConst:
		return n.val
	case kBVVar:
		return bvs[n.name] & mask
	case kBVNot:
		return ^evalBVFull(c, n.args[0], bvs) & mask
	case kBVAnd:
		return evalBVFull(c, n.args[0], bvs) & evalBVFull(c, n.args[1], bvs)
	case kBVOr:
		return evalBVFull(c, n.args[0], bvs) | evalBVFull(c, n.args[1], bvs)
	case kBVXor:
		return evalBVFull(c, n.args[0], bvs) ^ evalBVFull(c, n.args[1], bvs)
	case kBVAdd:
		return (evalBVFull(c, n.args[0], bvs) + evalBVFull(c, n.args[1], bvs)) & mask
	case kBVSub:
		return (evalBVFull(c, n.args[0], bvs) - evalBVFull(c, n.args[1], bvs)) & mask
	case kBVMul:
		return (evalBVFull(c, n.args[0], bvs) * evalBVFull(c, n.args[1], bvs)) & mask
	case kBVNeg:
		return (-evalBVFull(c, n.args[0], bvs)) & mask
	case kBVShl:
		return (evalBVFull(c, n.args[0], bvs) << n.val) & mask
	case kBVLshr:
		return evalBVFull(c, n.args[0], bvs) >> n.val
	case kBVExtract:
		return (evalBVFull(c, n.args[0], bvs) >> (n.val & 0xff)) & mask
	case kBVConcat:
		lo := c.n(n.args[1])
		return evalBVFull(c, n.args[0], bvs)<<lo.width | evalBVFull(c, n.args[1], bvs)
	}
	panic("evalBVFull: bad kind")
}

// randomBVExpr builds a random arithmetic expression over x, y of width w.
func randomBVExpr(c *Ctx, rng *rand.Rand, depth, w int) Term {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return c.BVVar("x", w)
		case 1:
			return c.BVVar("y", w)
		default:
			return c.BVConst(uint64(rng.Intn(1<<w)), w)
		}
	}
	a := randomBVExpr(c, rng, depth-1, w)
	b := randomBVExpr(c, rng, depth-1, w)
	switch rng.Intn(8) {
	case 0:
		return c.Add(a, b)
	case 1:
		return c.Sub(a, b)
	case 2:
		return c.Mul(a, b)
	case 3:
		return c.BVAnd(a, b)
	case 4:
		return c.BVOr(a, b)
	case 5:
		return c.BVXor(a, b)
	case 6:
		return c.BVNot(a)
	default:
		return c.Shl(a, rng.Intn(w))
	}
}

// TestArithSolverVsBrute cross-checks the arithmetic bit-blasting against
// exhaustive evaluation: for random expressions e1, e2 the formula
// e1 = e2 must be satisfiable exactly when some (x, y) satisfies it, and
// returned models must check out.
func TestArithSolverVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const w = 4
	for iter := 0; iter < 250; iter++ {
		c := NewCtx()
		e1 := randomBVExpr(c, rng, 1+rng.Intn(2), w)
		e2 := randomBVExpr(c, rng, 1+rng.Intn(2), w)
		f := c.Eq(e1, e2)

		want := false
		for x := uint64(0); x < 1<<w && !want; x++ {
			for y := uint64(0); y < 1<<w; y++ {
				bvs := map[string]uint64{"x": x, "y": y}
				if evalBVFull(c, e1, bvs) == evalBVFull(c, e2, bvs) {
					want = true
					break
				}
			}
		}
		res, err := Solve(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != want {
			t.Fatalf("iter %d: solver=%v brute=%v f=%s", iter, res.Sat, want, c.String(f))
		}
		if res.Sat {
			bvs := map[string]uint64{"x": res.Model.BVs["x"], "y": res.Model.BVs["y"]}
			if evalBVFull(c, e1, bvs) != evalBVFull(c, e2, bvs) {
				t.Fatalf("iter %d: model invalid for %s", iter, c.String(f))
			}
		}
	}
}

// TestSleVsBrute cross-checks signed comparison.
func TestSleVsBrute(t *testing.T) {
	const w = 4
	for x := uint64(0); x < 1<<w; x++ {
		for y := uint64(0); y < 1<<w; y++ {
			c := NewCtx()
			xv := c.BVVar("x", w)
			yv := c.BVVar("y", w)
			f := c.And(
				c.Eq(xv, c.BVConst(x, w)),
				c.Eq(yv, c.BVConst(y, w)),
				c.Sle(xv, yv),
			)
			res, err := Solve(c, f)
			if err != nil {
				t.Fatal(err)
			}
			want := signExtend(x, w) <= signExtend(y, w)
			if res.Sat != want {
				t.Fatalf("Sle(%d, %d) solver=%v want %v", x, y, res.Sat, want)
			}
		}
	}
}

func TestSltSolve(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	// x <s 0 ∧ x >=s -3  → x in {-3, -2, -1} = {253, 254, 255}.
	f := c.And(
		c.Slt(x, c.BVConst(0, 8)),
		c.Sle(c.BVConst(0xfd, 8), x),
	)
	res, err := Solve(c, f)
	if err != nil || !res.Sat {
		t.Fatal("signed range unsat")
	}
	v := res.Model.BVs["x"]
	if v < 253 {
		t.Errorf("x = %d", v)
	}
}

func TestConcatExtractRoundTrip(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 12)
	hi := c.Extract(x, 11, 8)
	lo := c.Extract(x, 7, 0)
	f := c.Not(c.Eq(c.Concat(hi, lo), x))
	res, err := Solve(c, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Error("concat(extract_hi, extract_lo) != x should be unsat")
	}
}

func TestAdderCommutesAssociates(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 16)
	y := c.BVVar("y", 16)
	z := c.BVVar("z", 16)
	// (x+y)+z != x+(y+z) must be unsat.
	f := c.Not(c.Eq(c.Add(c.Add(x, y), z), c.Add(x, c.Add(y, z))))
	res, err := Solve(c, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Error("addition not associative under blasting")
	}
	// x - y = x + (-y) must hold.
	g := c.Not(c.Eq(c.Sub(x, y), c.Add(x, c.Neg(y))))
	res, err = Solve(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Error("sub != add of negation")
	}
}

func TestBVIteSolve(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	x := c.BVVar("x", 8)
	r := c.BVIte(p, c.BVConst(10, 8), c.BVConst(20, 8))
	f := c.And(c.Eq(r, c.BVConst(10, 8)), c.Not(p))
	res, err := Solve(c, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Error("BVIte contradiction sat")
	}
	f2 := c.And(c.Eq(r, x), p)
	res, err = Solve(c, f2)
	if err != nil || !res.Sat {
		t.Fatal("BVIte consistent case unsat")
	}
	if res.Model.BVs["x"] != 10 {
		t.Errorf("x = %d", res.Model.BVs["x"])
	}
}

func TestArithPanics(t *testing.T) {
	c := NewCtx()
	x := c.BVVar("x", 8)
	for i, fn := range []func(){
		func() { c.Extract(x, 8, 0) },
		func() { c.Extract(x, 3, 5) },
		func() { c.Shl(x, -1) },
		func() { c.Shl(x, 9) },
		func() { c.BVNot(c.BoolVar("p")) },
		func() { c.Concat(c.BVVar("a", 40), c.BVVar("b", 40)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
