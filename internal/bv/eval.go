package bv

// Eval evaluates a boolean-sorted term under a model, treating absent
// boolean variables as false and absent bit-vector variables as zero. It
// is the reference semantics the simplifier and blaster are tested
// against: for any model extracted from a satisfiable query, the asserted
// formula must evaluate to true — simplified or not.
func (c *Ctx) Eval(t Term, m Model) bool {
	n := c.n(t)
	switch n.kind {
	case kTrue:
		return true
	case kFalse:
		return false
	case kBoolVar:
		return m.Bools[n.name]
	case kNot:
		return !c.Eval(n.args[0], m)
	case kAnd:
		for _, a := range n.args {
			if !c.Eval(a, m) {
				return false
			}
		}
		return true
	case kOr:
		for _, a := range n.args {
			if c.Eval(a, m) {
				return true
			}
		}
		return false
	case kIte:
		if c.Eval(n.args[0], m) {
			return c.Eval(n.args[1], m)
		}
		return c.Eval(n.args[2], m)
	case kEq:
		return c.EvalBV(n.args[0], m) == c.EvalBV(n.args[1], m)
	case kUle:
		return c.EvalBV(n.args[0], m) <= c.EvalBV(n.args[1], m)
	case kSle:
		w := c.n(n.args[0]).width
		return signExtend(c.EvalBV(n.args[0], m), w) <= signExtend(c.EvalBV(n.args[1], m), w)
	}
	panic("bv: Eval of non-boolean term") // invariant: caller passes boolean-sorted terms — same precondition as litFor
}

// EvalBV evaluates a bit-vector-sorted term under a model, truncated to
// the term's width.
func (c *Ctx) EvalBV(t Term, m Model) uint64 {
	n := c.n(t)
	mask := c.maxVal(t)
	switch n.kind {
	case kBVConst:
		return n.val
	case kBVVar:
		return m.BVs[n.name] & mask
	case kBVNot:
		return ^c.EvalBV(n.args[0], m) & mask
	case kBVAnd:
		return c.EvalBV(n.args[0], m) & c.EvalBV(n.args[1], m)
	case kBVOr:
		return c.EvalBV(n.args[0], m) | c.EvalBV(n.args[1], m)
	case kBVXor:
		return c.EvalBV(n.args[0], m) ^ c.EvalBV(n.args[1], m)
	case kBVAdd:
		return (c.EvalBV(n.args[0], m) + c.EvalBV(n.args[1], m)) & mask
	case kBVSub:
		return (c.EvalBV(n.args[0], m) - c.EvalBV(n.args[1], m)) & mask
	case kBVMul:
		return (c.EvalBV(n.args[0], m) * c.EvalBV(n.args[1], m)) & mask
	case kBVNeg:
		return -c.EvalBV(n.args[0], m) & mask
	case kBVShl:
		return c.EvalBV(n.args[0], m) << n.val & mask
	case kBVLshr:
		return c.EvalBV(n.args[0], m) >> n.val
	case kBVExtract:
		lo := n.val & 0xff
		return c.EvalBV(n.args[0], m) >> lo & mask
	case kBVConcat:
		lw := c.n(n.args[1]).width
		return c.EvalBV(n.args[0], m)<<lw | c.EvalBV(n.args[1], m)
	case kBVIte:
		if c.Eval(n.args[0], m) {
			return c.EvalBV(n.args[1], m)
		}
		return c.EvalBV(n.args[2], m)
	}
	panic("bv: EvalBV of non-bit-vector term") // invariant: caller passes bit-vector-sorted terms — same precondition as bits()
}
