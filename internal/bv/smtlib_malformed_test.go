package bv

import (
	"strings"
	"testing"
)

// TestParseSMTLIB2Malformed feeds ParseSMTLIB2 scripts that are
// syntactically or sort-wise invalid. Every case must come back as a
// returned error carrying position info — never a panic. Several of the
// cases (mismatched = sorts, out-of-range extract, oversized literal
// widths, bvule on booleans) used to escape into the term constructors,
// which panic on invariant violations.
func TestParseSMTLIB2Malformed(t *testing.T) {
	const prelude = "(set-logic QF_BV)\n" +
		"(declare-const x (_ BitVec 8))\n" +
		"(declare-const y (_ BitVec 4))\n" +
		"(declare-const p Bool)\n" +
		"(declare-const q Bool)\n"
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"unbalanced open", "(assert", "unbalanced parentheses"},
		{"stray close", "(set-logic QF_BV))", "unexpected )"},
		{"unterminated string", `(set-info :source "oops`, "unterminated string"},
		{"toplevel atom", "hello", "unexpected toplevel"},
		{"unknown command", "(frobnicate x)", `unsupported command "frobnicate"`},
		{"bad decl width", "(declare-const z (_ BitVec 0))", "unsupported width"},
		{"huge decl width", "(declare-const z (_ BitVec 65))", "unsupported width"},
		{"bad sort", "(declare-const z Int)", "unsupported sort"},
		{"arity declare-fun", "(declare-fun f ((_ BitVec 8)) Bool)", "zero-arity"},
		{"unknown symbol", prelude + "(assert unknownvar)", `unknown symbol "unknownvar"`},
		{"assert non-boolean", prelude + "(assert x)", "non-boolean"},
		{"malformed assert", prelude + "(assert x x)", "malformed assert"},
		{"eq mismatched widths", prelude + "(assert (= x y))", "mismatched sorts"},
		{"eq bool vs bv", prelude + "(assert (= x p))", "mismatched sorts"},
		{"extract out of range", prelude + "(assert (= ((_ extract 99 0) x) x))", "out of range"},
		{"extract reversed", prelude + "(assert (= ((_ extract 0 3) x) x))", "out of range"},
		{"extract of bool", prelude + "(assert (= ((_ extract 1 0) p) y))", "boolean operand"},
		{"indexed literal width", prelude + "(assert (= x (_ bv5 99)))", "out of range"},
		{"indexed literal zero width", prelude + "(assert (= x (_ bv5 0)))", "out of range"},
		{"binary literal too wide", prelude +
			"(assert (= x #b" + strings.Repeat("0", 65) + "))", "1..64 digits"},
		{"hex literal too wide", prelude +
			"(assert (= x #x" + strings.Repeat("0", 17) + "))", "1..16 digits"},
		{"empty binary literal", prelude + "(assert (= x #b))", "1..64 digits"},
		{"bvule on booleans", prelude + "(assert (bvule p q))", "boolean operand"},
		{"bvadd mismatched widths", prelude + "(assert (= x (bvadd x y)))", "mismatched widths"},
		{"and on bitvectors", prelude + "(assert (and x y))", "non-boolean operand"},
		{"not of bitvector", prelude + "(assert (not x))", "non-boolean operand"},
		{"bvnot of boolean", prelude + "(assert (= p (bvnot p)))", "boolean operand"},
		{"ite non-bool cond", prelude + "(assert (= x (ite x x x)))", "condition must be boolean"},
		{"ite mismatched branches", prelude + "(assert (= x (ite p x y)))", "mismatched sorts"},
		{"concat too wide", prelude +
			"(declare-const a (_ BitVec 33))\n(declare-const b (_ BitVec 33))\n" +
			"(assert (bvule (concat a b) (concat a b)))", "exceeds 64"},
		{"variable shift", prelude + "(assert (= x (bvshl x y)))", "constant shift"},
		{"unsupported op", prelude + "(assert (bvudiv x x))", `unsupported operator "bvudiv"`},
		{"empty application", prelude + "(assert ())", "empty application"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseSMTLIB2(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseSMTLIB2 accepted malformed input, script=%v", sc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSMTLIB2ErrorPositions spot-checks that parse errors point at
// the offending line and column.
func TestParseSMTLIB2ErrorPositions(t *testing.T) {
	in := "(set-logic QF_BV)\n" +
		"(declare-const x (_ BitVec 8))\n" +
		"(assert (bvule x #b101))\n"
	_, err := ParseSMTLIB2(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected width-mismatch error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error %q does not carry line 3 position", err)
	}
}
