package bv

import (
	"fmt"
	"testing"
)

// benchPolicy builds a routing-policy-shaped formula: an ITE chain of
// CIDR-range conditions selecting next-hop disjunctions, exactly the
// Definition 2.1 shape rcdc's SMT engine encodes. Rules are synthesized
// deterministically (/20 blocks walking a 10.0.0.0/8 pool).
func benchPolicy(c *Ctx, rules int) (dst, policy, covered Term) {
	dst = c.BVVar("dstIp", 32)
	policy = c.False()
	conds := make([]Term, 0, rules)
	for i := 0; i < rules; i++ {
		lo := uint64(10<<24 | i<<12)
		hi := lo | (1<<12 - 1)
		cond := c.InRange(dst, lo, hi)
		conds = append(conds, cond)
		hops := c.Or(
			c.BoolVar(fmt.Sprintf("nh%d", i%8)),
			c.BoolVar(fmt.Sprintf("nh%d", (i+1)%8)),
		)
		policy = c.Ite(cond, hops, policy)
	}
	return dst, policy, c.Or(conds...)
}

// benchBlast encodes the policy and discharges one contract-shaped query
// per iteration: range ∧ policy ∧ ¬expected-hops.
func benchBlast(b *testing.B, rules int, disableSimplify bool) {
	for i := 0; i < b.N; i++ {
		c := NewCtx()
		dst, policy, _ := benchPolicy(c, rules)
		s := NewSolver(c)
		s.DisableSimplify = disableSimplify
		q := c.And(
			c.InRange(dst, uint64(10<<24), uint64(10<<24|1<<12-1)),
			policy,
			c.Not(c.Or(c.BoolVar("nh0"), c.BoolVar("nh1"))),
		)
		res, err := s.Solve(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sat {
			b.Fatal("rule 0's hops are exactly {nh0, nh1}; query should be unsat")
		}
	}
}

// BenchmarkBlastSimplified and BenchmarkBlastDirect measure the policy
// encode+solve path with and without the pre-blast rewrite pass — the
// headline ablation for the term-rewriting layer (make bench-solver).
func BenchmarkBlastSimplified(b *testing.B) {
	for _, rules := range []int{128, 512} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) { benchBlast(b, rules, false) })
	}
}

func BenchmarkBlastDirect(b *testing.B) {
	for _, rules := range []int{128, 512} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) { benchBlast(b, rules, true) })
	}
}

// BenchmarkBlastAssumptions measures the shared-encoding incremental
// pattern at the bv layer: blast the policy once, then many per-contract
// assumption queries against it.
func BenchmarkBlastAssumptions(b *testing.B) {
	const rules = 256
	for i := 0; i < b.N; i++ {
		c := NewCtx()
		dst, policy, covered := benchPolicy(c, rules)
		s := NewSolver(c)
		for q := 0; q < rules; q += 8 {
			lo := uint64(10<<24 | q<<12)
			hi := lo | (1<<12 - 1)
			inRange := c.InRange(dst, lo, hi)
			if _, err := s.SolveAssuming(inRange, c.Not(covered)); err != nil {
				b.Fatal(err)
			}
			want := c.Or(c.BoolVar(fmt.Sprintf("nh%d", q%8)), c.BoolVar(fmt.Sprintf("nh%d", (q+1)%8)))
			if _, err := s.SolveAssuming(c.And(inRange, policy, c.Not(want))); err != nil {
				b.Fatal(err)
			}
		}
	}
}
