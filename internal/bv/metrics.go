package bv

import (
	"time"

	"dcvalidate/internal/obs"
	"dcvalidate/internal/sat"
)

// Metrics is the solver-pipeline instrumentation bundle: per-query CDCL
// search work (conflicts, decisions, propagations deltas from the
// underlying sat.Solver) and the wall time of each Solve/SolveAssuming
// call, bit-blasting included. Nil-receiver safe; recording is a handful
// of atomic adds per query.
type Metrics struct {
	queries      *obs.Counter   // dcv_bv_queries_total
	conflicts    *obs.Counter   // dcv_bv_conflicts_total
	decisions    *obs.Counter   // dcv_bv_decisions_total
	propagations *obs.Counter   // dcv_bv_propagations_total
	solveSeconds *obs.Histogram // dcv_bv_solve_seconds
}

// NewMetrics registers the bit-vector solver metric families in r.
// Idempotent per registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		queries: r.Counter("dcv_bv_queries_total",
			"Satisfiability queries discharged (Solve + SolveAssuming)."),
		conflicts: r.Counter("dcv_bv_conflicts_total",
			"CDCL conflicts across all queries."),
		decisions: r.Counter("dcv_bv_decisions_total",
			"CDCL decisions across all queries."),
		propagations: r.Counter("dcv_bv_propagations_total",
			"Unit propagations across all queries."),
		solveSeconds: r.Histogram("dcv_bv_solve_seconds",
			"Per-query solve wall time, bit-blasting included.", obs.LatencyBuckets),
	}
}

// observeSolve records one query: the search-statistics delta between
// the pre- and post-query snapshots plus the elapsed blast+search time.
func (m *Metrics) observeSolve(prev, cur sat.Stats, d time.Duration) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.conflicts.Add(uint64(cur.Conflicts - prev.Conflicts))
	m.decisions.Add(uint64(cur.Decisions - prev.Decisions))
	m.propagations.Add(uint64(cur.Propagations - prev.Propagations))
	m.solveSeconds.ObserveDuration(d)
}
