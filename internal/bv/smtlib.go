package bv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SMT-LIB 2 interchange for the QF_BV fragment this package implements.
// WriteSMTLIB2 serializes a formula so it can be cross-checked against a
// full SMT solver (the paper's Z3); ParseSMTLIB2 reads the same fragment
// back, so externally produced benchmarks can be discharged by the
// built-in engine.

// WriteSMTLIB2 emits a complete script: set-logic, declarations for every
// free variable of f, a single assert, and check-sat.
func WriteSMTLIB2(w io.Writer, c *Ctx, f Term) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "(set-logic QF_BV)")

	// Collect free variables deterministically.
	type decl struct {
		name  string
		width int // 0 = Bool
	}
	seen := map[Term]bool{}
	var decls []decl
	var walk func(t Term)
	walk = func(t Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		n := c.n(t)
		switch n.kind {
		case kBoolVar:
			decls = append(decls, decl{n.name, 0})
		case kBVVar:
			decls = append(decls, decl{n.name, int(n.width)})
		}
		for _, a := range n.args {
			walk(a)
		}
	}
	walk(f)
	sort.Slice(decls, func(i, j int) bool { return decls[i].name < decls[j].name })
	for _, d := range decls {
		if d.width == 0 {
			fmt.Fprintf(bw, "(declare-const %s Bool)\n", d.name)
		} else {
			fmt.Fprintf(bw, "(declare-const %s (_ BitVec %d))\n", d.name, d.width)
		}
	}
	fmt.Fprintf(bw, "(assert %s)\n", c.smt2(f))
	fmt.Fprintln(bw, "(check-sat)")
	return bw.Flush()
}

// smt2 renders a term in SMT-LIB 2 concrete syntax.
func (c *Ctx) smt2(t Term) string {
	n := c.n(t)
	switch n.kind {
	case kTrue:
		return "true"
	case kFalse:
		return "false"
	case kBoolVar, kBVVar:
		return n.name
	case kBVConst:
		return fmt.Sprintf("(_ bv%d %d)", n.val, n.width)
	case kBVExtract:
		return fmt.Sprintf("((_ extract %d %d) %s)", n.val>>8, n.val&0xff, c.smt2(n.args[0]))
	case kBVShl, kBVLshr:
		// Constant shifts are stored with the amount in val; emit the
		// standard binary operator with a constant operand.
		op := "bvshl"
		if n.kind == kBVLshr {
			op = "bvlshr"
		}
		return fmt.Sprintf("(%s %s (_ bv%d %d))", op, c.smt2(n.args[0]), n.val, n.width)
	}
	op, ok := map[kind]string{
		kNot: "not", kAnd: "and", kOr: "or", kIte: "ite", kEq: "=",
		kUle: "bvule", kSle: "bvsle", kBVNot: "bvnot", kBVAnd: "bvand",
		kBVOr: "bvor", kBVXor: "bvxor", kBVAdd: "bvadd", kBVSub: "bvsub",
		kBVMul: "bvmul", kBVNeg: "bvneg", kBVConcat: "concat", kBVIte: "ite",
	}[n.kind]
	if !ok {
		panic(fmt.Sprintf("bv: smt2 of kind %d", n.kind))
	}
	parts := make([]string, 0, len(n.args)+1)
	parts = append(parts, op)
	for _, a := range n.args {
		parts = append(parts, c.smt2(a))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// sexpr is a parsed S-expression: either an atom or a list.
type sexpr struct {
	atom string
	list []sexpr
}

func (s sexpr) isAtom() bool { return s.list == nil }

// Script is a parsed SMT-LIB 2 script restricted to our fragment.
type Script struct {
	Ctx *Ctx
	// Asserts are the asserted formulas, in order; their conjunction is
	// the script's satisfiability query.
	Asserts []Term
}

// Formula returns the conjunction of the script's assertions.
func (s *Script) Formula() Term { return s.Ctx.And(s.Asserts...) }

// ParseSMTLIB2 reads a QF_BV script containing set-logic/set-info,
// declare-const/declare-fun (zero arity), assert, check-sat, and exit
// commands over the operator fragment this package supports.
func ParseSMTLIB2(r io.Reader) (*Script, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := tokenizeSMT(string(raw))
	if err != nil {
		return nil, err
	}
	var exprs []sexpr
	for len(toks) > 0 {
		var e sexpr
		e, toks, err = parseSexpr(toks)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}

	sc := &Script{Ctx: NewCtx()}
	vars := map[string]Term{}
	for _, e := range exprs {
		if e.isAtom() || len(e.list) == 0 || !e.list[0].isAtom() {
			return nil, fmt.Errorf("bv: unexpected toplevel %v", e)
		}
		switch e.list[0].atom {
		case "set-logic", "set-info", "set-option", "check-sat", "exit", "get-model":
			continue
		case "declare-const", "declare-fun":
			t, name, err := parseDecl(sc.Ctx, e)
			if err != nil {
				return nil, err
			}
			vars[name] = t
		case "assert":
			if len(e.list) != 2 {
				return nil, fmt.Errorf("bv: malformed assert")
			}
			t, err := buildTerm(sc.Ctx, vars, e.list[1])
			if err != nil {
				return nil, err
			}
			if sc.Ctx.n(t).width != 0 {
				return nil, fmt.Errorf("bv: assert of non-boolean term")
			}
			sc.Asserts = append(sc.Asserts, t)
		default:
			return nil, fmt.Errorf("bv: unsupported command %q", e.list[0].atom)
		}
	}
	return sc, nil
}

func tokenizeSMT(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == ';': // comment to end of line
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case ch == '(' || ch == ')':
			toks = append(toks, string(ch))
			i++
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '"': // string literal (set-info); skip
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("bv: unterminated string")
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune("() \t\n\r;", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseSexpr(toks []string) (sexpr, []string, error) {
	if len(toks) == 0 {
		return sexpr{}, nil, fmt.Errorf("bv: unexpected end of input")
	}
	switch toks[0] {
	case "(":
		rest := toks[1:]
		var list []sexpr
		for {
			if len(rest) == 0 {
				return sexpr{}, nil, fmt.Errorf("bv: unbalanced parentheses")
			}
			if rest[0] == ")" {
				return sexpr{list: append([]sexpr{}, list...)}, rest[1:], nil
			}
			var e sexpr
			var err error
			e, rest, err = parseSexpr(rest)
			if err != nil {
				return sexpr{}, nil, err
			}
			list = append(list, e)
		}
	case ")":
		return sexpr{}, nil, fmt.Errorf("bv: unexpected )")
	default:
		return sexpr{atom: toks[0]}, toks[1:], nil
	}
}

func parseDecl(c *Ctx, e sexpr) (Term, string, error) {
	// (declare-const name sort) or (declare-fun name () sort)
	args := e.list[1:]
	if e.list[0].atom == "declare-fun" {
		if len(args) != 3 || !args[1].isAtom() && len(args[1].list) != 0 {
			return 0, "", fmt.Errorf("bv: only zero-arity declare-fun supported")
		}
		args = []sexpr{args[0], args[2]}
	}
	if len(args) != 2 || !args[0].isAtom() {
		return 0, "", fmt.Errorf("bv: malformed declaration")
	}
	name := args[0].atom
	sortE := args[1]
	if sortE.isAtom() && sortE.atom == "Bool" {
		return c.BoolVar(name), name, nil
	}
	// (_ BitVec w)
	if !sortE.isAtom() && len(sortE.list) == 3 &&
		sortE.list[0].atom == "_" && sortE.list[1].atom == "BitVec" {
		w, err := strconv.Atoi(sortE.list[2].atom)
		if err != nil || w < 1 || w > 64 {
			return 0, "", fmt.Errorf("bv: unsupported width in declaration of %s", name)
		}
		return c.BVVar(name, w), name, nil
	}
	return 0, "", fmt.Errorf("bv: unsupported sort for %s", name)
}

func buildTerm(c *Ctx, vars map[string]Term, e sexpr) (Term, error) {
	if e.isAtom() {
		switch e.atom {
		case "true":
			return c.True(), nil
		case "false":
			return c.False(), nil
		}
		if t, ok := vars[e.atom]; ok {
			return t, nil
		}
		if strings.HasPrefix(e.atom, "#b") {
			v, err := strconv.ParseUint(e.atom[2:], 2, 64)
			if err != nil {
				return 0, fmt.Errorf("bv: bad binary literal %q", e.atom)
			}
			return c.BVConst(v, len(e.atom)-2), nil
		}
		if strings.HasPrefix(e.atom, "#x") {
			v, err := strconv.ParseUint(e.atom[2:], 16, 64)
			if err != nil {
				return 0, fmt.Errorf("bv: bad hex literal %q", e.atom)
			}
			return c.BVConst(v, 4*(len(e.atom)-2)), nil
		}
		return 0, fmt.Errorf("bv: unknown symbol %q", e.atom)
	}
	if len(e.list) == 0 {
		return 0, fmt.Errorf("bv: empty application")
	}
	// (_ bvN w)
	if e.list[0].isAtom() && e.list[0].atom == "_" {
		if len(e.list) == 3 && strings.HasPrefix(e.list[1].atom, "bv") {
			v, err1 := strconv.ParseUint(e.list[1].atom[2:], 10, 64)
			w, err2 := strconv.Atoi(e.list[2].atom)
			if err1 != nil || err2 != nil {
				return 0, fmt.Errorf("bv: bad indexed literal")
			}
			return c.BVConst(v, w), nil
		}
		return 0, fmt.Errorf("bv: unsupported indexed identifier")
	}
	// ((_ extract hi lo) x)
	if !e.list[0].isAtom() {
		h := e.list[0]
		if len(h.list) == 4 && h.list[0].atom == "_" && h.list[1].atom == "extract" {
			hi, err1 := strconv.Atoi(h.list[2].atom)
			lo, err2 := strconv.Atoi(h.list[3].atom)
			if err1 != nil || err2 != nil || len(e.list) != 2 {
				return 0, fmt.Errorf("bv: malformed extract")
			}
			arg, err := buildTerm(c, vars, e.list[1])
			if err != nil {
				return 0, err
			}
			return c.Extract(arg, hi, lo), nil
		}
		return 0, fmt.Errorf("bv: unsupported head %v", h)
	}

	op := e.list[0].atom
	args := make([]Term, 0, len(e.list)-1)
	for _, a := range e.list[1:] {
		t, err := buildTerm(c, vars, a)
		if err != nil {
			return 0, err
		}
		args = append(args, t)
	}
	bin := func(f func(a, b Term) Term) (Term, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("bv: %s wants 2 arguments", op)
		}
		return f(args[0], args[1]), nil
	}
	switch op {
	case "not":
		if len(args) != 1 {
			return 0, fmt.Errorf("bv: not wants 1 argument")
		}
		return c.Not(args[0]), nil
	case "and":
		return c.And(args...), nil
	case "or":
		return c.Or(args...), nil
	case "=>":
		return bin(c.Implies)
	case "xor":
		return bin(func(a, b Term) Term { return c.Not(c.Iff(a, b)) })
	case "=":
		if len(args) != 2 {
			return 0, fmt.Errorf("bv: = wants 2 arguments")
		}
		if c.n(args[0]).width == 0 {
			return c.Iff(args[0], args[1]), nil
		}
		return c.Eq(args[0], args[1]), nil
	case "ite":
		if len(args) != 3 {
			return 0, fmt.Errorf("bv: ite wants 3 arguments")
		}
		if c.n(args[1]).width == 0 {
			return c.Ite(args[0], args[1], args[2]), nil
		}
		return c.BVIte(args[0], args[1], args[2]), nil
	case "bvule":
		return bin(c.Ule)
	case "bvult":
		return bin(c.Ult)
	case "bvuge":
		return bin(c.Uge)
	case "bvugt":
		return bin(c.Ugt)
	case "bvsle":
		return bin(c.Sle)
	case "bvslt":
		return bin(c.Slt)
	case "bvand":
		return bin(c.BVAnd)
	case "bvor":
		return bin(c.BVOr)
	case "bvxor":
		return bin(c.BVXor)
	case "bvadd":
		return bin(c.Add)
	case "bvsub":
		return bin(c.Sub)
	case "bvmul":
		return bin(c.Mul)
	case "bvnot":
		if len(args) != 1 {
			return 0, fmt.Errorf("bv: bvnot wants 1 argument")
		}
		return c.BVNot(args[0]), nil
	case "bvneg":
		if len(args) != 1 {
			return 0, fmt.Errorf("bv: bvneg wants 1 argument")
		}
		return c.Neg(args[0]), nil
	case "concat":
		return bin(c.Concat)
	case "bvshl", "bvlshr":
		if len(args) != 2 {
			return 0, fmt.Errorf("bv: %s wants 2 arguments", op)
		}
		k, ok := c.isConstTerm(args[1])
		if !ok {
			return 0, fmt.Errorf("bv: only constant shift amounts supported")
		}
		w := c.Width(args[0])
		if k > uint64(w) {
			k = uint64(w)
		}
		if op == "bvshl" {
			return c.Shl(args[0], int(k)), nil
		}
		return c.Lshr(args[0], int(k)), nil
	}
	return 0, fmt.Errorf("bv: unsupported operator %q", op)
}
