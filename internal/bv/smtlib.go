package bv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SMT-LIB 2 interchange for the QF_BV fragment this package implements.
// WriteSMTLIB2 serializes a formula so it can be cross-checked against a
// full SMT solver (the paper's Z3); ParseSMTLIB2 reads the same fragment
// back, so externally produced benchmarks can be discharged by the
// built-in engine.

// WriteSMTLIB2 emits a complete script: set-logic, declarations for every
// free variable of f, a single assert, and check-sat.
func WriteSMTLIB2(w io.Writer, c *Ctx, f Term) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "(set-logic QF_BV)")

	// Collect free variables deterministically.
	type decl struct {
		name  string
		width int // 0 = Bool
	}
	seen := map[Term]bool{}
	var decls []decl
	var walk func(t Term)
	walk = func(t Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		n := c.n(t)
		switch n.kind {
		case kBoolVar:
			decls = append(decls, decl{n.name, 0})
		case kBVVar:
			decls = append(decls, decl{n.name, int(n.width)})
		}
		for _, a := range n.args {
			walk(a)
		}
	}
	walk(f)
	sort.Slice(decls, func(i, j int) bool { return decls[i].name < decls[j].name })
	for _, d := range decls {
		if d.width == 0 {
			fmt.Fprintf(bw, "(declare-const %s Bool)\n", d.name)
		} else {
			fmt.Fprintf(bw, "(declare-const %s (_ BitVec %d))\n", d.name, d.width)
		}
	}
	fmt.Fprintf(bw, "(assert %s)\n", c.smt2(f))
	fmt.Fprintln(bw, "(check-sat)")
	return bw.Flush()
}

// smt2 renders a term in SMT-LIB 2 concrete syntax.
func (c *Ctx) smt2(t Term) string {
	n := c.n(t)
	switch n.kind {
	case kTrue:
		return "true"
	case kFalse:
		return "false"
	case kBoolVar, kBVVar:
		return n.name
	case kBVConst:
		return fmt.Sprintf("(_ bv%d %d)", n.val, n.width)
	case kBVExtract:
		return fmt.Sprintf("((_ extract %d %d) %s)", n.val>>8, n.val&0xff, c.smt2(n.args[0]))
	case kBVShl, kBVLshr:
		// Constant shifts are stored with the amount in val; emit the
		// standard binary operator with a constant operand.
		op := "bvshl"
		if n.kind == kBVLshr {
			op = "bvlshr"
		}
		return fmt.Sprintf("(%s %s (_ bv%d %d))", op, c.smt2(n.args[0]), n.val, n.width)
	}
	op, ok := map[kind]string{
		kNot: "not", kAnd: "and", kOr: "or", kIte: "ite", kEq: "=",
		kUle: "bvule", kSle: "bvsle", kBVNot: "bvnot", kBVAnd: "bvand",
		kBVOr: "bvor", kBVXor: "bvxor", kBVAdd: "bvadd", kBVSub: "bvsub",
		kBVMul: "bvmul", kBVNeg: "bvneg", kBVConcat: "concat", kBVIte: "ite",
	}[n.kind]
	if !ok {
		panic(fmt.Sprintf("bv: smt2 of kind %d", n.kind)) // invariant: exhaustive kind switch — new kinds must extend the renderer
	}
	parts := make([]string, 0, len(n.args)+1)
	parts = append(parts, op)
	for _, a := range n.args {
		parts = append(parts, c.smt2(a))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// sexpr is a parsed S-expression: either an atom or a list. line/col
// locate the atom (or the opening parenthesis) in the input, so parse
// errors on untrusted scripts carry position info.
type sexpr struct {
	atom      string
	list      []sexpr
	line, col int
}

func (s sexpr) isAtom() bool { return s.list == nil }

// errf builds a parse error anchored at the expression's position.
func (s sexpr) errf(format string, args ...any) error {
	return fmt.Errorf("bv: %d:%d: %s", s.line, s.col, fmt.Sprintf(format, args...))
}

// tok is one SMT-LIB token with its source position.
type tok struct {
	text      string
	line, col int
}

// Script is a parsed SMT-LIB 2 script restricted to our fragment.
type Script struct {
	Ctx *Ctx
	// Asserts are the asserted formulas, in order; their conjunction is
	// the script's satisfiability query.
	Asserts []Term
}

// Formula returns the conjunction of the script's assertions.
func (s *Script) Formula() Term { return s.Ctx.And(s.Asserts...) }

// ParseSMTLIB2 reads a QF_BV script containing set-logic/set-info,
// declare-const/declare-fun (zero arity), assert, check-sat, and exit
// commands over the operator fragment this package supports.
func ParseSMTLIB2(r io.Reader) (retSc *Script, retErr error) {
	// buildTerm validates sorts and ranges before calling the term
	// constructors, so a constructor panic here means a validation gap;
	// degrade it to an error rather than crashing on untrusted input.
	defer func() {
		if p := recover(); p != nil {
			retSc, retErr = nil, fmt.Errorf("bv: invalid script: %v", p)
		}
	}()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := tokenizeSMT(string(raw))
	if err != nil {
		return nil, err
	}
	var exprs []sexpr
	for len(toks) > 0 {
		var e sexpr
		e, toks, err = parseSexpr(toks)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}

	sc := &Script{Ctx: NewCtx()}
	vars := map[string]Term{}
	for _, e := range exprs {
		if e.isAtom() || len(e.list) == 0 || !e.list[0].isAtom() {
			return nil, e.errf("unexpected toplevel form")
		}
		switch e.list[0].atom {
		case "set-logic", "set-info", "set-option", "check-sat", "exit", "get-model":
			continue
		case "declare-const", "declare-fun":
			t, name, err := parseDecl(sc.Ctx, e)
			if err != nil {
				return nil, err
			}
			vars[name] = t
		case "assert":
			if len(e.list) != 2 {
				return nil, e.errf("malformed assert")
			}
			t, err := buildTerm(sc.Ctx, vars, e.list[1])
			if err != nil {
				return nil, err
			}
			if sc.Ctx.n(t).width != 0 {
				return nil, e.errf("assert of non-boolean term")
			}
			sc.Asserts = append(sc.Asserts, t)
		default:
			return nil, e.errf("unsupported command %q", e.list[0].atom)
		}
	}
	return sc, nil
}

func tokenizeSMT(s string) ([]tok, error) {
	var toks []tok
	i, line, col := 0, 1, 1
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if s[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == ';': // comment to end of line
			for i < len(s) && s[i] != '\n' {
				advance(1)
			}
		case ch == '(' || ch == ')':
			toks = append(toks, tok{string(ch), line, col})
			advance(1)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			advance(1)
		case ch == '"': // string literal (set-info); skip
			startLine, startCol := line, col
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("bv: %d:%d: unterminated string", startLine, startCol)
			}
			toks = append(toks, tok{s[i : j+1], startLine, startCol})
			advance(j + 1 - i)
		default:
			startLine, startCol := line, col
			j := i
			for j < len(s) && !strings.ContainsRune("() \t\n\r;", rune(s[j])) {
				j++
			}
			toks = append(toks, tok{s[i:j], startLine, startCol})
			advance(j - i)
		}
	}
	return toks, nil
}

func parseSexpr(toks []tok) (sexpr, []tok, error) {
	if len(toks) == 0 {
		return sexpr{}, nil, fmt.Errorf("bv: unexpected end of input")
	}
	switch toks[0].text {
	case "(":
		open := toks[0]
		rest := toks[1:]
		list := []sexpr{}
		for {
			if len(rest) == 0 {
				return sexpr{}, nil, fmt.Errorf("bv: %d:%d: unbalanced parentheses", open.line, open.col)
			}
			if rest[0].text == ")" {
				return sexpr{list: list, line: open.line, col: open.col}, rest[1:], nil
			}
			var e sexpr
			var err error
			e, rest, err = parseSexpr(rest)
			if err != nil {
				return sexpr{}, nil, err
			}
			list = append(list, e)
		}
	case ")":
		return sexpr{}, nil, fmt.Errorf("bv: %d:%d: unexpected )", toks[0].line, toks[0].col)
	default:
		return sexpr{atom: toks[0].text, line: toks[0].line, col: toks[0].col}, toks[1:], nil
	}
}

func parseDecl(c *Ctx, e sexpr) (Term, string, error) {
	// (declare-const name sort) or (declare-fun name () sort)
	args := e.list[1:]
	if e.list[0].atom == "declare-fun" {
		if len(args) != 3 || args[1].isAtom() || len(args[1].list) != 0 {
			return 0, "", e.errf("only zero-arity declare-fun supported")
		}
		args = []sexpr{args[0], args[2]}
	}
	if len(args) != 2 || !args[0].isAtom() {
		return 0, "", e.errf("malformed declaration")
	}
	name := args[0].atom
	sortE := args[1]
	if sortE.isAtom() && sortE.atom == "Bool" {
		return c.BoolVar(name), name, nil
	}
	// (_ BitVec w)
	if !sortE.isAtom() && len(sortE.list) == 3 &&
		sortE.list[0].isAtom() && sortE.list[0].atom == "_" &&
		sortE.list[1].isAtom() && sortE.list[1].atom == "BitVec" &&
		sortE.list[2].isAtom() {
		w, err := strconv.Atoi(sortE.list[2].atom)
		if err != nil || w < 1 || w > 64 {
			return 0, "", sortE.errf("unsupported width in declaration of %s (want 1..64)", name)
		}
		return c.BVVar(name, w), name, nil
	}
	return 0, "", sortE.errf("unsupported sort for %s", name)
}

// widthOf returns the sort of a built term: 0 for Bool, 1..64 for a
// bit-vector. It lets buildTerm validate operand sorts before invoking
// the term constructors, whose panics are programmer-error invariants
// that untrusted scripts must never reach.
func widthOf(c *Ctx, t Term) int { return int(c.n(t).width) }

// needBV checks that every operand is a bit-vector of one common width.
func needBV(c *Ctx, e sexpr, op string, args []Term) (int, error) {
	if len(args) == 0 {
		return 0, e.errf("%s wants bit-vector arguments", op)
	}
	w := widthOf(c, args[0])
	if w == 0 {
		return 0, e.errf("%s applied to a boolean operand", op)
	}
	for _, a := range args[1:] {
		if widthOf(c, a) != w {
			return 0, e.errf("%s applied to mismatched widths (%d vs %d)", op, w, widthOf(c, a))
		}
	}
	return w, nil
}

// needBool checks that every operand is boolean.
func needBool(c *Ctx, e sexpr, op string, args []Term) error {
	for _, a := range args {
		if widthOf(c, a) != 0 {
			return e.errf("%s applied to a non-boolean operand", op)
		}
	}
	return nil
}

func buildTerm(c *Ctx, vars map[string]Term, e sexpr) (Term, error) {
	if e.isAtom() {
		switch e.atom {
		case "true":
			return c.True(), nil
		case "false":
			return c.False(), nil
		}
		if t, ok := vars[e.atom]; ok {
			return t, nil
		}
		if strings.HasPrefix(e.atom, "#b") {
			digits := len(e.atom) - 2
			if digits < 1 || digits > 64 {
				return 0, e.errf("binary literal %q must have 1..64 digits", e.atom)
			}
			v, err := strconv.ParseUint(e.atom[2:], 2, 64)
			if err != nil {
				return 0, e.errf("bad binary literal %q", e.atom)
			}
			return c.BVConst(v, digits), nil
		}
		if strings.HasPrefix(e.atom, "#x") {
			digits := len(e.atom) - 2
			if digits < 1 || digits > 16 {
				return 0, e.errf("hex literal %q must have 1..16 digits", e.atom)
			}
			v, err := strconv.ParseUint(e.atom[2:], 16, 64)
			if err != nil {
				return 0, e.errf("bad hex literal %q", e.atom)
			}
			return c.BVConst(v, 4*digits), nil
		}
		return 0, e.errf("unknown symbol %q", e.atom)
	}
	if len(e.list) == 0 {
		return 0, e.errf("empty application")
	}
	// (_ bvN w)
	if e.list[0].isAtom() && e.list[0].atom == "_" {
		if len(e.list) == 3 && e.list[1].isAtom() && e.list[2].isAtom() &&
			strings.HasPrefix(e.list[1].atom, "bv") {
			v, err1 := strconv.ParseUint(e.list[1].atom[2:], 10, 64)
			w, err2 := strconv.Atoi(e.list[2].atom)
			if err1 != nil || err2 != nil {
				return 0, e.errf("bad indexed literal")
			}
			if w < 1 || w > 64 {
				return 0, e.errf("indexed literal width %d out of range (want 1..64)", w)
			}
			return c.BVConst(v, w), nil
		}
		return 0, e.errf("unsupported indexed identifier")
	}
	// ((_ extract hi lo) x)
	if !e.list[0].isAtom() {
		h := e.list[0]
		if len(h.list) == 4 &&
			h.list[0].isAtom() && h.list[0].atom == "_" &&
			h.list[1].isAtom() && h.list[1].atom == "extract" &&
			h.list[2].isAtom() && h.list[3].isAtom() {
			hi, err1 := strconv.Atoi(h.list[2].atom)
			lo, err2 := strconv.Atoi(h.list[3].atom)
			if err1 != nil || err2 != nil || len(e.list) != 2 {
				return 0, e.errf("malformed extract")
			}
			arg, err := buildTerm(c, vars, e.list[1])
			if err != nil {
				return 0, err
			}
			w := widthOf(c, arg)
			if w == 0 {
				return 0, e.errf("extract applied to a boolean operand")
			}
			if lo < 0 || hi < lo || hi >= w {
				return 0, e.errf("extract [%d:%d] out of range for width %d", hi, lo, w)
			}
			return c.Extract(arg, hi, lo), nil
		}
		return 0, e.errf("unsupported head %v", h)
	}

	op := e.list[0].atom
	args := make([]Term, 0, len(e.list)-1)
	for _, a := range e.list[1:] {
		t, err := buildTerm(c, vars, a)
		if err != nil {
			return 0, err
		}
		args = append(args, t)
	}
	// binBV discharges a binary bit-vector operator after checking both
	// operands are bit-vectors of the same width.
	binBV := func(f func(a, b Term) Term) (Term, error) {
		if len(args) != 2 {
			return 0, e.errf("%s wants 2 arguments", op)
		}
		if _, err := needBV(c, e, op, args); err != nil {
			return 0, err
		}
		return f(args[0], args[1]), nil
	}
	binBool := func(f func(a, b Term) Term) (Term, error) {
		if len(args) != 2 {
			return 0, e.errf("%s wants 2 arguments", op)
		}
		if err := needBool(c, e, op, args); err != nil {
			return 0, err
		}
		return f(args[0], args[1]), nil
	}
	switch op {
	case "not":
		if len(args) != 1 {
			return 0, e.errf("not wants 1 argument")
		}
		if err := needBool(c, e, op, args); err != nil {
			return 0, err
		}
		return c.Not(args[0]), nil
	case "and":
		if err := needBool(c, e, op, args); err != nil {
			return 0, err
		}
		return c.And(args...), nil
	case "or":
		if err := needBool(c, e, op, args); err != nil {
			return 0, err
		}
		return c.Or(args...), nil
	case "=>":
		return binBool(c.Implies)
	case "xor":
		return binBool(func(a, b Term) Term { return c.Not(c.Iff(a, b)) })
	case "=":
		if len(args) != 2 {
			return 0, e.errf("= wants 2 arguments")
		}
		wa, wb := widthOf(c, args[0]), widthOf(c, args[1])
		if wa != wb {
			return 0, e.errf("= applied to mismatched sorts (widths %d, %d)", wa, wb)
		}
		if wa == 0 {
			return c.Iff(args[0], args[1]), nil
		}
		return c.Eq(args[0], args[1]), nil
	case "ite":
		if len(args) != 3 {
			return 0, e.errf("ite wants 3 arguments")
		}
		if widthOf(c, args[0]) != 0 {
			return 0, e.errf("ite condition must be boolean")
		}
		wa, wb := widthOf(c, args[1]), widthOf(c, args[2])
		if wa != wb {
			return 0, e.errf("ite branches have mismatched sorts (widths %d, %d)", wa, wb)
		}
		if wa == 0 {
			return c.Ite(args[0], args[1], args[2]), nil
		}
		return c.BVIte(args[0], args[1], args[2]), nil
	case "bvule":
		return binBV(c.Ule)
	case "bvult":
		return binBV(c.Ult)
	case "bvuge":
		return binBV(c.Uge)
	case "bvugt":
		return binBV(c.Ugt)
	case "bvsle":
		return binBV(c.Sle)
	case "bvslt":
		return binBV(c.Slt)
	case "bvand":
		return binBV(c.BVAnd)
	case "bvor":
		return binBV(c.BVOr)
	case "bvxor":
		return binBV(c.BVXor)
	case "bvadd":
		return binBV(c.Add)
	case "bvsub":
		return binBV(c.Sub)
	case "bvmul":
		return binBV(c.Mul)
	case "bvnot":
		if len(args) != 1 {
			return 0, e.errf("bvnot wants 1 argument")
		}
		if _, err := needBV(c, e, op, args); err != nil {
			return 0, err
		}
		return c.BVNot(args[0]), nil
	case "bvneg":
		if len(args) != 1 {
			return 0, e.errf("bvneg wants 1 argument")
		}
		if _, err := needBV(c, e, op, args); err != nil {
			return 0, err
		}
		return c.Neg(args[0]), nil
	case "concat":
		if len(args) != 2 {
			return 0, e.errf("concat wants 2 arguments")
		}
		wa, wb := widthOf(c, args[0]), widthOf(c, args[1])
		if wa == 0 || wb == 0 {
			return 0, e.errf("concat applied to a boolean operand")
		}
		if wa+wb > 64 {
			return 0, e.errf("concat result width %d exceeds 64 bits", wa+wb)
		}
		return c.Concat(args[0], args[1]), nil
	case "bvshl", "bvlshr":
		if len(args) != 2 {
			return 0, e.errf("%s wants 2 arguments", op)
		}
		if widthOf(c, args[0]) == 0 {
			return 0, e.errf("%s applied to a boolean operand", op)
		}
		k, ok := c.isConstTerm(args[1])
		if !ok {
			return 0, e.errf("only constant shift amounts supported")
		}
		w := c.Width(args[0])
		if k > uint64(w) {
			k = uint64(w)
		}
		if op == "bvshl" {
			return c.Shl(args[0], int(k)), nil
		}
		return c.Lshr(args[0], int(k)), nil
	}
	return 0, e.errf("unsupported operator %q", op)
}
