// Package bv implements a decision procedure for quantifier-free bit-vector
// logic — the fragment of SMT the paper discharges to Z3 (§2.5.1, §3.2).
//
// Formulas are built through a Ctx, which hash-conses terms into a DAG and
// applies structural simplifications at construction time. Satisfiability is
// decided by bit-blasting the DAG into CNF (Tseitin encoding, with
// specialized compact encodings for comparisons against constants, the
// dominant atom shape in packet-filter policies) and running the CDCL solver
// in internal/sat. Models assign concrete values to bit-vector variables
// (packet header fields) and Boolean variables (next-hop interfaces),
// yielding counterexample packets.
package bv

import (
	"fmt"
	"strconv"
	"strings"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/sat"
)

// Term is a handle to a hash-consed term in a Ctx. Boolean-sorted terms are
// used as formulas; bit-vector-sorted terms appear under comparisons.
type Term int32

type kind uint8

const (
	kInvalid kind = iota
	kTrue
	kFalse
	kBoolVar
	kNot
	kAnd
	kOr
	kIte // ite(cond, then, else), boolean sorted
	kEq  // bit-vector equality
	kUle // unsigned <=
	kBVVar
	kBVConst
)

type node struct {
	kind  kind
	width uint8 // bit-vector width for kBVVar/kBVConst; 0 for booleans
	val   uint64
	args  []Term
	name  string
}

// Ctx is a term context. All terms passed to a Ctx's methods must have been
// created by the same Ctx.
type Ctx struct {
	nodes      []node
	memo       map[string]Term
	keyBuf     []byte
	simplified map[Term]Term // Simplify memo; rewrite results are fixpoints
}

// NewCtx returns an empty term context with True and False preallocated.
func NewCtx() *Ctx {
	c := &Ctx{memo: make(map[string]Term)}
	c.nodes = append(c.nodes, node{kind: kInvalid})
	c.nodes = append(c.nodes, node{kind: kTrue}, node{kind: kFalse})
	return c
}

// True and False return the boolean constants.
func (c *Ctx) True() Term  { return 1 }
func (c *Ctx) False() Term { return 2 }

func (c *Ctx) intern(n node) Term {
	buf := c.keyBuf[:0]
	buf = append(buf, byte(n.kind), n.width)
	buf = strconv.AppendUint(buf, n.val, 16)
	buf = append(buf, '|')
	buf = append(buf, n.name...)
	for _, a := range n.args {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(a), 16)
	}
	c.keyBuf = buf
	if t, ok := c.memo[string(buf)]; ok {
		return t
	}
	c.nodes = append(c.nodes, n)
	t := Term(len(c.nodes) - 1)
	c.memo[string(buf)] = t
	return t
}

func (c *Ctx) n(t Term) *node { return &c.nodes[t] }

// Width returns the bit-vector width of t, or 0 if boolean sorted.
func (c *Ctx) Width(t Term) int { return int(c.n(t).width) }

// BoolVar returns the boolean variable with the given name, creating it on
// first use.
func (c *Ctx) BoolVar(name string) Term {
	return c.intern(node{kind: kBoolVar, name: name})
}

// BVVar returns the bit-vector variable with the given name and width,
// creating it on first use. Width must be 1..64.
func (c *Ctx) BVVar(name string, width int) Term {
	if width < 1 || width > 64 {
		panic("bv: width out of range") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	return c.intern(node{kind: kBVVar, width: uint8(width), name: name})
}

// BVConst returns the width-bit constant val (truncated to width bits).
func (c *Ctx) BVConst(val uint64, width int) Term {
	if width < 1 || width > 64 {
		panic("bv: width out of range") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	if width < 64 {
		val &= (1 << width) - 1
	}
	return c.intern(node{kind: kBVConst, width: uint8(width), val: val})
}

// Not returns the negation of boolean term t.
func (c *Ctx) Not(t Term) Term {
	switch c.n(t).kind {
	case kTrue:
		return c.False()
	case kFalse:
		return c.True()
	case kNot:
		return c.n(t).args[0]
	}
	return c.intern(node{kind: kNot, args: []Term{t}})
}

// And returns the conjunction of the given boolean terms, flattening nested
// conjunctions and folding constants.
func (c *Ctx) And(ts ...Term) Term {
	out := make([]Term, 0, len(ts))
	seen := make(map[Term]bool)
	for _, t := range ts {
		switch c.n(t).kind {
		case kTrue:
			continue
		case kFalse:
			return c.False()
		case kAnd:
			for _, a := range c.n(t).args {
				if seen[c.Not(a)] {
					return c.False()
				}
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
			continue
		}
		if seen[c.Not(t)] {
			return c.False()
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return c.True()
	case 1:
		return out[0]
	}
	return c.intern(node{kind: kAnd, args: out})
}

// Or returns the disjunction of the given boolean terms.
func (c *Ctx) Or(ts ...Term) Term {
	out := make([]Term, 0, len(ts))
	seen := make(map[Term]bool)
	for _, t := range ts {
		switch c.n(t).kind {
		case kFalse:
			continue
		case kTrue:
			return c.True()
		case kOr:
			for _, a := range c.n(t).args {
				if seen[c.Not(a)] {
					return c.True()
				}
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
			continue
		}
		if seen[c.Not(t)] {
			return c.True()
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return c.False()
	case 1:
		return out[0]
	}
	return c.intern(node{kind: kOr, args: out})
}

// Implies returns a → b.
func (c *Ctx) Implies(a, b Term) Term { return c.Or(c.Not(a), b) }

// Iff returns a ↔ b.
func (c *Ctx) Iff(a, b Term) Term {
	if a == b {
		return c.True()
	}
	return c.And(c.Implies(a, b), c.Implies(b, a))
}

// Ite returns if cond then a else b (all boolean sorted).
func (c *Ctx) Ite(cond, a, b Term) Term {
	switch c.n(cond).kind {
	case kTrue:
		return a
	case kFalse:
		return b
	}
	if a == b {
		return a
	}
	return c.intern(node{kind: kIte, args: []Term{cond, a, b}})
}

func (c *Ctx) checkBVPair(a, b Term, op string) {
	na, nb := c.n(a), c.n(b)
	if na.width == 0 || nb.width == 0 || na.width != nb.width {
		panic(fmt.Sprintf("bv: %s of mismatched sorts (widths %d, %d)", op, na.width, nb.width)) // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
}

// Eq returns the bit-vector equality a = b.
func (c *Ctx) Eq(a, b Term) Term {
	c.checkBVPair(a, b, "Eq")
	if a == b {
		return c.True()
	}
	na, nb := c.n(a), c.n(b)
	if na.kind == kBVConst && nb.kind == kBVConst {
		if na.val == nb.val {
			return c.True()
		}
		return c.False()
	}
	if na.kind == kBVConst { // normalize: constant on the right
		a, b = b, a
	}
	return c.intern(node{kind: kEq, args: []Term{a, b}})
}

// Ule returns the unsigned comparison a ≤ b.
func (c *Ctx) Ule(a, b Term) Term {
	c.checkBVPair(a, b, "Ule")
	if a == b {
		return c.True()
	}
	na, nb := c.n(a), c.n(b)
	if na.kind == kBVConst && nb.kind == kBVConst {
		if na.val <= nb.val {
			return c.True()
		}
		return c.False()
	}
	if na.kind == kBVConst && na.val == 0 {
		return c.True() // 0 <= b
	}
	if nb.kind == kBVConst && nb.val == c.maxVal(b) {
		return c.True() // a <= max
	}
	return c.intern(node{kind: kUle, args: []Term{a, b}})
}

func (c *Ctx) maxVal(t Term) uint64 {
	w := c.n(t).width
	if w == 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// Ult returns a < b (unsigned).
func (c *Ctx) Ult(a, b Term) Term { return c.Not(c.Ule(b, a)) }

// Uge returns a ≥ b (unsigned).
func (c *Ctx) Uge(a, b Term) Term { return c.Ule(b, a) }

// Ugt returns a > b (unsigned).
func (c *Ctx) Ugt(a, b Term) Term { return c.Not(c.Ule(a, b)) }

// InRange returns lo ≤ t ≤ hi for a bit-vector term t and constant bounds.
// This is the predicate shape of equations (1) and r_3/r_13 in the paper.
func (c *Ctx) InRange(t Term, lo, hi uint64) Term {
	w := c.Width(t)
	if w == 0 {
		panic("bv: InRange of boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	return c.And(c.Ule(c.BVConst(lo, w), t), c.Ule(t, c.BVConst(hi, w)))
}

// String renders the term for diagnostics.
func (c *Ctx) String(t Term) string {
	n := c.n(t)
	switch n.kind {
	case kTrue:
		return "true"
	case kFalse:
		return "false"
	case kBoolVar, kBVVar:
		return n.name
	case kBVConst:
		return fmt.Sprintf("%d", n.val)
	case kNot:
		return "(not " + c.String(n.args[0]) + ")"
	case kBVExtract:
		return fmt.Sprintf("((_ extract %d %d) %s)", n.val>>8, n.val&0xff, c.String(n.args[0]))
	case kBVShl, kBVLshr:
		op := "bvshl"
		if n.kind == kBVLshr {
			op = "bvlshr"
		}
		return fmt.Sprintf("(%s %s %d)", op, c.String(n.args[0]), n.val)
	}
	op, ok := map[kind]string{
		kAnd: "and", kOr: "or", kIte: "ite", kEq: "=", kUle: "bvule",
		kSle: "bvsle", kBVNot: "bvnot", kBVAnd: "bvand", kBVOr: "bvor",
		kBVXor: "bvxor", kBVAdd: "bvadd", kBVSub: "bvsub", kBVMul: "bvmul",
		kBVNeg: "bvneg", kBVConcat: "concat", kBVIte: "ite",
	}[n.kind]
	if !ok {
		return "?"
	}
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = c.String(a)
	}
	return "(" + op + " " + strings.Join(parts, " ") + ")"
}

// Model maps variable names to values after a satisfiable query.
type Model struct {
	Bools map[string]bool
	BVs   map[string]uint64
}

// Result is the outcome of a Solve call.
type Result struct {
	Sat   bool
	Model Model // valid only if Sat
	Stats sat.Stats
}

// Solver bit-blasts formulas from one Ctx into an internal/sat instance.
// Terms are encoded incrementally and shared across queries; use Solve for
// a one-shot assertion or SolveAssuming for repeated retractable queries
// against shared structure.
type Solver struct {
	ctx  *Ctx
	sat  *sat.Solver
	tlit sat.Lit // literal that is constrained true

	boolVars map[Term]sat.Lit
	bvBits   map[Term][]sat.Lit // lsb first
	blasted  map[Term]sat.Lit   // memoized boolean encodings

	// Metrics, when non-nil, receives per-query search-work deltas and
	// solve latencies. Clock times those latencies (nil = system clock);
	// neither is read unless Metrics is set, so uninstrumented solves
	// never touch a time source.
	Metrics *Metrics
	Clock   clock.Clock

	// DisableSimplify skips the pre-blast rewrite pass (Ctx.Simplify) on
	// asserted and assumed formulas — the ablation knob the equivalence
	// property tests and the BenchmarkBlast* benches flip.
	DisableSimplify bool

	// Last SolveAssuming call's assumption terms and their literals, for
	// mapping FailedAssumptions back to terms.
	lastAssumpTerms []Term
	lastAssumpLits  []sat.Lit
}

// NewSolver returns a solver for formulas of ctx.
func NewSolver(ctx *Ctx) *Solver {
	s := &Solver{
		ctx:      ctx,
		sat:      sat.New(1),
		boolVars: make(map[Term]sat.Lit),
		bvBits:   make(map[Term][]sat.Lit),
		blasted:  make(map[Term]sat.Lit),
	}
	s.tlit = sat.NewLit(1, false)
	s.sat.AddClause(s.tlit)
	return s
}

func (s *Solver) freshLit() sat.Lit { return sat.NewLit(s.sat.AddVar(), false) }

// litFor returns the SAT literal encoding boolean term t, emitting Tseitin
// clauses as needed.
func (s *Solver) litFor(t Term) sat.Lit {
	if l, ok := s.blasted[t]; ok {
		return l
	}
	n := s.ctx.n(t)
	var l sat.Lit
	switch n.kind {
	case kTrue:
		l = s.tlit
	case kFalse:
		l = s.tlit.Not()
	case kBoolVar:
		l = s.freshLit()
		s.boolVars[t] = l
	case kNot:
		l = s.litFor(n.args[0]).Not()
	case kAnd:
		lits := make([]sat.Lit, len(n.args))
		for i, a := range n.args {
			lits[i] = s.litFor(a)
		}
		l = s.defineAnd(lits)
	case kOr:
		lits := make([]sat.Lit, len(n.args))
		for i, a := range n.args {
			lits[i] = s.litFor(a).Not()
		}
		l = s.defineAnd(lits).Not()
	case kIte:
		cl := s.litFor(n.args[0])
		tl := s.litFor(n.args[1])
		el := s.litFor(n.args[2])
		l = s.freshLit()
		// l ↔ ite(c,t,e)
		s.sat.AddClause(cl.Not(), tl.Not(), l)
		s.sat.AddClause(cl.Not(), tl, l.Not())
		s.sat.AddClause(cl, el.Not(), l)
		s.sat.AddClause(cl, el, l.Not())
	case kEq:
		l = s.blastEq(n.args[0], n.args[1])
	case kUle:
		l = s.blastUle(n.args[0], n.args[1])
	case kSle:
		// a ≤s b ⟺ (a ⊕ signbit) ≤u (b ⊕ signbit): flip each operand's
		// msb and compare unsigned.
		ab := append([]sat.Lit(nil), s.bits(n.args[0])...)
		bb := append([]sat.Lit(nil), s.bits(n.args[1])...)
		ab[len(ab)-1] = ab[len(ab)-1].Not()
		bb[len(bb)-1] = bb[len(bb)-1].Not()
		l = s.uleBits(ab, bb)
	default:
		panic("bv: litFor of non-boolean term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
	}
	s.blasted[t] = l
	return l
}

// defineAnd returns a literal g with g ↔ AND(lits).
func (s *Solver) defineAnd(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return s.tlit
	case 1:
		return lits[0]
	}
	g := s.freshLit()
	long := make([]sat.Lit, 0, len(lits)+1)
	for _, l := range lits {
		s.sat.AddClause(g.Not(), l) // g → l
		long = append(long, l.Not())
	}
	long = append(long, g)
	s.sat.AddClause(long...) // (∧ lits) → g
	return g
}

// bits returns the SAT literals of a bit-vector term, lsb first. Constant
// bits are the true/false literal.
func (s *Solver) bits(t Term) []sat.Lit {
	if b, ok := s.bvBits[t]; ok {
		return b
	}
	n := s.ctx.n(t)
	var out []sat.Lit
	switch n.kind {
	case kBVVar:
		out = make([]sat.Lit, n.width)
		for i := range out {
			out[i] = s.freshLit()
		}
	case kBVConst:
		out = make([]sat.Lit, n.width)
		for i := range out {
			if n.val>>i&1 == 1 {
				out[i] = s.tlit
			} else {
				out[i] = s.tlit.Not()
			}
		}
	default:
		if n.width == 0 {
			panic("bv: bits of non-bit-vector term") // invariant: constructor precondition — ParseSMTLIB2 and all in-tree encoders validate sorts and ranges first
		}
		out = s.blastBV(t)
	}
	s.bvBits[t] = out
	return out
}

func (s *Solver) isConst(t Term) (uint64, bool) {
	n := s.ctx.n(t)
	if n.kind == kBVConst {
		return n.val, true
	}
	return 0, false
}

// blastEq encodes a = b. When b is constant the encoding needs one aux
// variable and width+1 clauses.
func (s *Solver) blastEq(a, b Term) sat.Lit {
	ab := s.bits(a)
	if cv, ok := s.isConst(b); ok {
		g := s.freshLit()
		long := make([]sat.Lit, 0, len(ab)+1)
		for i, bit := range ab {
			want := bit
			if cv>>i&1 == 0 {
				want = bit.Not()
			}
			s.sat.AddClause(g.Not(), want) // g → bit matches
			long = append(long, want.Not())
		}
		long = append(long, g)
		s.sat.AddClause(long...) // all bits match → g
		return g
	}
	bb := s.bits(b)
	eqs := make([]sat.Lit, len(ab))
	for i := range ab {
		e := s.freshLit()
		x, y := ab[i], bb[i]
		s.sat.AddClause(e.Not(), x.Not(), y)
		s.sat.AddClause(e.Not(), x, y.Not())
		s.sat.AddClause(e, x.Not(), y.Not())
		s.sat.AddClause(e, x, y)
		eqs[i] = e
	}
	return s.defineAnd(eqs)
}

// blastUle encodes a ≤ b (unsigned). Constant operands get the compact
// chain encoding with constant propagation; for a CIDR range bound this
// collapses to a handful of clauses per prefix bit.
func (s *Solver) blastUle(a, b Term) sat.Lit {
	if cv, ok := s.isConst(b); ok {
		return s.blastCmpConst(s.bits(a), cv, true)
	}
	if cv, ok := s.isConst(a); ok {
		return s.blastCmpConst(s.bits(b), cv, false)
	}
	// General case: lexicographic chain over the bit slices.
	return s.uleBits(s.bits(a), s.bits(b))
}

// blastCmpConst encodes x ≤ c (le=true) or x ≥ c (le=false) walking from
// lsb to msb with constant propagation.
func (s *Solver) blastCmpConst(xb []sat.Lit, c uint64, le bool) sat.Lit {
	// g over the empty suffix: equality holds, so both ≤ and ≥ are true.
	g := s.tlit
	gConst, gVal := true, true
	for i := 0; i < len(xb); i++ {
		x := xb[i]
		cb := c>>i&1 == 1
		var ng sat.Lit
		var ngConst, ngVal bool
		if le {
			if cb {
				// x_i=0 → true; x_i=1 → g.
				if gConst && gVal {
					ngConst, ngVal = true, true
				} else if gConst && !gVal {
					ng = x.Not()
				} else {
					ng = s.defineAnd([]sat.Lit{x, g.Not()}).Not() // ¬x ∨ g
				}
			} else {
				// x_i=1 → false; x_i=0 → g.
				if gConst && !gVal {
					ngConst, ngVal = true, false
				} else if gConst && gVal {
					ng = x.Not()
				} else {
					ng = s.defineAnd([]sat.Lit{x.Not(), g})
				}
			}
		} else {
			if !cb {
				// c_i=0: x_i=1 → true; x_i=0 → g.
				if gConst && gVal {
					ngConst, ngVal = true, true
				} else if gConst && !gVal {
					ng = x
				} else {
					ng = s.defineAnd([]sat.Lit{x.Not(), g.Not()}).Not() // x ∨ g
				}
			} else {
				// c_i=1: x_i=0 → false; x_i=1 → g.
				if gConst && !gVal {
					ngConst, ngVal = true, false
				} else if gConst && gVal {
					ng = x
				} else {
					ng = s.defineAnd([]sat.Lit{x, g})
				}
			}
		}
		g, gConst, gVal = ng, ngConst, ngVal
		if gConst {
			if gVal {
				g = s.tlit
			} else {
				g = s.tlit.Not()
			}
			gConst = true
		}
	}
	return g
}

// prep runs the pre-blast simplification pass unless disabled. The
// rewritten term is equivalent over the original variables, so results
// and extracted models are unchanged; only the CNF gets smaller.
func (s *Solver) prep(f Term) Term {
	if s.DisableSimplify {
		return f
	}
	return s.ctx.Simplify(f)
}

// Solve asserts the boolean term f permanently and decides satisfiability,
// returning a model over all variables appearing in f when satisfiable.
func (s *Solver) Solve(f Term) (Result, error) {
	finish := s.startQuery()
	root := s.litFor(s.prep(f))
	s.sat.AddClause(root)
	ok, err := s.sat.Solve()
	finish()
	if err != nil {
		return Result{}, err
	}
	return s.result(ok), nil
}

// startQuery snapshots search statistics (and, only when instrumented,
// the clock) before a query; the returned func records the query.
func (s *Solver) startQuery() func() {
	if s.Metrics == nil {
		return func() {}
	}
	prev := s.sat.Stats()
	start := clock.Or(s.Clock).Now()
	return func() {
		s.Metrics.observeSolve(prev, s.sat.Stats(), clock.Since(s.Clock, start))
	}
}

// SolveAssuming decides satisfiability under the conjunction of the given
// terms as retractable assumptions. The solver stays reusable afterwards:
// expensive shared structure (a large policy encoding) is bit-blasted once
// and many queries are discharged against it — the pattern SecGuru uses to
// check a contract suite against one ACL.
func (s *Solver) SolveAssuming(assumptions ...Term) (Result, error) {
	finish := s.startQuery()
	lits := make([]sat.Lit, len(assumptions))
	for i, f := range assumptions {
		lits[i] = s.litFor(s.prep(f))
	}
	s.lastAssumpTerms = append(s.lastAssumpTerms[:0], assumptions...)
	s.lastAssumpLits = append(s.lastAssumpLits[:0], lits...)
	ok, err := s.sat.SolveAssuming(lits)
	finish()
	if err != nil {
		return Result{}, err
	}
	return s.result(ok), nil
}

// FailedAssumptions returns the subset of the last SolveAssuming call's
// assumption terms whose conjunction already makes the query unsatisfiable
// (the SAT core's assumption failure analysis mapped back to terms). Empty
// when the last query was satisfiable or unsat independent of assumptions.
// Callers use it to prune later queries: an assumption set disjoint from
// the failed core cannot be the reason a query became unsat.
func (s *Solver) FailedAssumptions() []Term {
	var out []Term
	for _, l := range s.sat.FailedAssumptions() {
		for i, al := range s.lastAssumpLits {
			if al == l {
				out = append(out, s.lastAssumpTerms[i])
				break
			}
		}
	}
	return out
}

func (s *Solver) result(ok bool) Result {
	res := Result{Sat: ok, Stats: s.sat.Stats()}
	if !ok {
		return res
	}
	res.Model = Model{Bools: make(map[string]bool), BVs: make(map[string]uint64)}
	for t, l := range s.boolVars {
		v := s.sat.Value(l.Var())
		if l.Neg() {
			v = !v
		}
		res.Model.Bools[s.ctx.n(t).name] = v
	}
	for t, bits := range s.bvBits {
		n := s.ctx.n(t)
		if n.kind != kBVVar {
			continue
		}
		var val uint64
		for i, bl := range bits {
			bitv := s.sat.Value(bl.Var())
			if bl.Neg() {
				bitv = !bitv
			}
			if bitv {
				val |= 1 << i
			}
		}
		res.Model.BVs[n.name] = val
	}
	return res
}

// Solve is a convenience one-shot: decide satisfiability of f in ctx.
func Solve(ctx *Ctx, f Term) (Result, error) {
	return NewSolver(ctx).Solve(f)
}

// Valid reports whether f is valid (its negation is unsatisfiable). On
// invalidity the returned model is a counterexample.
func Valid(ctx *Ctx, f Term) (bool, Model, error) {
	res, err := Solve(ctx, ctx.Not(f))
	if err != nil {
		return false, Model{}, err
	}
	return !res.Sat, res.Model, nil
}
