package bv

import "dcvalidate/internal/sat"

// Bit-blasting circuits for the arithmetic/structural operations. The
// boolean-side encodings live in bv.go; everything here produces bit
// slices (lsb first) from composite bit-vector terms.

// blastBV dispatches composite bit-vector kinds; called from bits().
func (s *Solver) blastBV(t Term) []sat.Lit {
	n := s.ctx.n(t)
	switch n.kind {
	case kBVNot:
		in := s.bits(n.args[0])
		out := make([]sat.Lit, len(in))
		for i, l := range in {
			out[i] = l.Not()
		}
		return out
	case kBVAnd, kBVOr, kBVXor:
		a, b := s.bits(n.args[0]), s.bits(n.args[1])
		out := make([]sat.Lit, len(a))
		for i := range a {
			switch n.kind {
			case kBVAnd:
				out[i] = s.defineAnd([]sat.Lit{a[i], b[i]})
			case kBVOr:
				out[i] = s.defineAnd([]sat.Lit{a[i].Not(), b[i].Not()}).Not()
			default:
				out[i] = s.defineXor(a[i], b[i])
			}
		}
		return out
	case kBVAdd:
		a, b := s.bits(n.args[0]), s.bits(n.args[1])
		sum, _ := s.adder(a, b, s.tlit.Not())
		return sum
	case kBVSub:
		// a - b = a + ^b + 1.
		a, b := s.bits(n.args[0]), s.bits(n.args[1])
		nb := make([]sat.Lit, len(b))
		for i, l := range b {
			nb[i] = l.Not()
		}
		sum, _ := s.adder(a, nb, s.tlit)
		return sum
	case kBVNeg:
		a := s.bits(n.args[0])
		na := make([]sat.Lit, len(a))
		for i, l := range a {
			na[i] = l.Not()
		}
		zero := make([]sat.Lit, len(a))
		for i := range zero {
			zero[i] = s.tlit.Not()
		}
		sum, _ := s.adder(na, zero, s.tlit)
		return sum
	case kBVMul:
		return s.multiplier(s.bits(n.args[0]), s.bits(n.args[1]))
	case kBVShl:
		in := s.bits(n.args[0])
		k := int(n.val)
		out := make([]sat.Lit, len(in))
		for i := range out {
			if i < k {
				out[i] = s.tlit.Not()
			} else {
				out[i] = in[i-k]
			}
		}
		return out
	case kBVLshr:
		in := s.bits(n.args[0])
		k := int(n.val)
		out := make([]sat.Lit, len(in))
		for i := range out {
			if i+k < len(in) {
				out[i] = in[i+k]
			} else {
				out[i] = s.tlit.Not()
			}
		}
		return out
	case kBVExtract:
		in := s.bits(n.args[0])
		hi, lo := int(n.val>>8), int(n.val&0xff)
		out := make([]sat.Lit, hi-lo+1)
		copy(out, in[lo:hi+1])
		return out
	case kBVConcat:
		hi, lo := s.bits(n.args[0]), s.bits(n.args[1])
		out := make([]sat.Lit, 0, len(hi)+len(lo))
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case kBVIte:
		cl := s.litFor(n.args[0])
		a, b := s.bits(n.args[1]), s.bits(n.args[2])
		out := make([]sat.Lit, len(a))
		for i := range a {
			r := s.freshLit()
			s.sat.AddClause(cl.Not(), a[i].Not(), r)
			s.sat.AddClause(cl.Not(), a[i], r.Not())
			s.sat.AddClause(cl, b[i].Not(), r)
			s.sat.AddClause(cl, b[i], r.Not())
			out[i] = r
		}
		return out
	}
	panic("bv: blastBV of unsupported kind") // invariant: exhaustive kind switch — new kinds must extend the blaster
}

// defineXor returns a literal e with e ↔ a ⊕ b.
func (s *Solver) defineXor(a, b sat.Lit) sat.Lit {
	e := s.freshLit()
	s.sat.AddClause(e.Not(), a, b)
	s.sat.AddClause(e.Not(), a.Not(), b.Not())
	s.sat.AddClause(e, a.Not(), b)
	s.sat.AddClause(e, a, b.Not())
	return e
}

// adder builds a ripple-carry adder, returning the sum bits and carry-out.
func (s *Solver) adder(a, b []sat.Lit, cin sat.Lit) (sum []sat.Lit, cout sat.Lit) {
	sum = make([]sat.Lit, len(a))
	c := cin
	for i := range a {
		sum[i] = s.defineXor(s.defineXor(a[i], b[i]), c)
		// cout ↔ majority(a, b, c).
		m := s.freshLit()
		x, y, z := a[i], b[i], c
		s.sat.AddClause(m, x.Not(), y.Not())
		s.sat.AddClause(m, x.Not(), z.Not())
		s.sat.AddClause(m, y.Not(), z.Not())
		s.sat.AddClause(m.Not(), x, y)
		s.sat.AddClause(m.Not(), x, z)
		s.sat.AddClause(m.Not(), y, z)
		c = m
	}
	return sum, c
}

// multiplier builds a shift-add multiplier modulo 2^w.
func (s *Solver) multiplier(a, b []sat.Lit) []sat.Lit {
	w := len(a)
	acc := make([]sat.Lit, w)
	for i := range acc {
		acc[i] = s.tlit.Not() // zero
	}
	for i := 0; i < w; i++ {
		// Partial product: (a << i) gated by b[i].
		pp := make([]sat.Lit, w)
		for j := range pp {
			if j < i {
				pp[j] = s.tlit.Not()
			} else {
				pp[j] = s.defineAnd([]sat.Lit{a[j-i], b[i]})
			}
		}
		acc, _ = s.adder(acc, pp, s.tlit.Not())
	}
	return acc
}

// uleBits encodes unsigned ≤ over raw bit slices (lexicographic chain).
func (s *Solver) uleBits(a, b []sat.Lit) sat.Lit {
	g := s.tlit // equal so far ⇒ ≤ holds
	for i := 0; i < len(a); i++ {
		x, y := a[i], b[i]
		lt := s.defineAnd([]sat.Lit{x.Not(), y})
		e := s.defineXor(x, y).Not()
		t := s.defineAnd([]sat.Lit{e, g})
		g = s.defineAnd([]sat.Lit{lt.Not(), t.Not()}).Not() // lt ∨ (eq ∧ g)
	}
	return g
}
