// Package shard partitions the validation plane: a Coordinator spreads
// the fleet across N validator shards by consistent hashing over the
// Clos pod structure, sweeps them with a work-stealing worker pool, and
// merges the per-shard partial reports into a single fleet report that
// is byte-identical (modulo timing) to a single-engine sweep — the
// horizontal-scaling story of the paper's Figure 5 deployment, where
// RCDC instances divide the datacenter between them.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per shard on the ring. More
// virtual nodes smooth the partition sizes; 64 keeps the spread within a
// few percent for the shard counts the serving layer uses.
const defaultReplicas = 64

// Ring is a consistent-hash ring mapping partition keys to shards.
// Adding or removing one shard moves only the keys adjacent to its
// virtual nodes, so a resharded coordinator revalidates a fraction of
// the fleet rather than all of it.
type Ring struct {
	points []ringPoint // ascending by hash
	shards int
}

type ringPoint struct {
	hash  uint32
	shard int
}

// NewRing builds a ring of n shards with the given virtual-node count
// per shard (0 means the default).
func NewRing(n, replicas int) *Ring {
	if n < 1 {
		n = 1
	}
	if replicas < 1 {
		replicas = defaultReplicas
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*replicas)}
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("shard-%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a partition key to its owning shard: the first virtual
// node at or clockwise of the key's hash.
func (r *Ring) Shard(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
