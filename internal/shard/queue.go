package shard

import (
	"sync"

	"dcvalidate/internal/topology"
)

// chunk is one unit of sweep work: a run of devices all owned by one
// shard, validated against that shard's FIB source regardless of which
// worker executes it.
type chunk struct {
	owner int
	devs  []topology.DeviceID
}

// chunkSize bounds a chunk: small enough that stealing rebalances a
// skewed partition, large enough that queue traffic stays negligible
// next to validation work.
const chunkSize = 16

// deque is the per-shard work queue of the stealing pool. The owning
// worker pops from the bottom (LIFO, cache-warm most-recent work);
// thieves steal from the top (FIFO, the oldest — and for a
// just-populated queue, largest-remaining — run of work). A plain
// mutex-guarded deque: contention is one lock per chunk, and chunks are
// device-validation-sized, so a lock-free Chase-Lev deque would buy
// nothing measurable here.
type deque struct {
	mu    sync.Mutex
	items []chunk
}

func (d *deque) push(c chunk) {
	d.mu.Lock()
	d.items = append(d.items, c)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed chunk (owner path).
func (d *deque) popBottom() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return chunk{}, false
	}
	c := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return c, true
}

// stealTop removes the oldest chunk (thief path).
func (d *deque) stealTop() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return chunk{}, false
	}
	c := d.items[0]
	d.items = d.items[1:]
	return c, true
}

// chunked splits devs into owner-tagged chunks.
func chunked(owner int, devs []topology.DeviceID) []chunk {
	var out []chunk
	for len(devs) > 0 {
		n := chunkSize
		if n > len(devs) {
			n = len(devs)
		}
		out = append(out, chunk{owner: owner, devs: devs[:n]})
		devs = devs[n:]
	}
	return out
}
