package shard

import (
	"strconv"
	"time"

	"dcvalidate/internal/obs"
)

// Metrics is the coordinator instrumentation bundle. All recording
// methods are nil-receiver-safe no-ops, matching the other subsystem
// bundles.
type Metrics struct {
	sweeps       *obs.CounterVec   // dcv_shard_sweeps_total{mode}
	steals       *obs.Counter      // dcv_shard_steals_total
	devices      *obs.GaugeVec     // dcv_shard_devices{shard}
	sweepSeconds *obs.Histogram    // dcv_shard_sweep_seconds
	shardSeconds *obs.HistogramVec // dcv_shard_partial_seconds{shard}
}

// NewMetrics registers the coordinator metric families in r and returns
// the recording handles. Idempotent, like every bundle constructor.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		sweeps: r.CounterVec("dcv_shard_sweeps_total",
			"Coordinator sweeps by mode (full, delta, cached).", "mode"),
		steals: r.Counter("dcv_shard_steals_total",
			"Work chunks executed by a worker other than the owning shard's."),
		devices: r.GaugeVec("dcv_shard_devices",
			"Devices assigned to each shard by the consistent-hash ring.", "shard"),
		sweepSeconds: r.Histogram("dcv_shard_sweep_seconds",
			"End-to-end coordinator sweep latency.", obs.LatencyBuckets),
		shardSeconds: r.HistogramVec("dcv_shard_partial_seconds",
			"Per-shard busy time within a sweep.", obs.LatencyBuckets, "shard"),
	}
}

func (m *Metrics) observeSweep(mode string, d time.Duration) {
	if m == nil {
		return
	}
	m.sweeps.With(mode).Inc()
	if mode != "cached" {
		m.sweepSeconds.ObserveDuration(d)
	}
}

func (m *Metrics) observeAssignment(shard, devices int) {
	if m != nil {
		m.devices.With(strconv.Itoa(shard)).Set(float64(devices))
	}
}

func (m *Metrics) steal() {
	if m != nil {
		m.steals.Inc()
	}
}

func (m *Metrics) observeShard(shard int, d time.Duration) {
	if m != nil {
		m.shardSeconds.With(strconv.Itoa(shard)).ObserveDuration(d)
	}
}
