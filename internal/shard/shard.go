package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Options configures a Coordinator.
type Options struct {
	// SMT selects the bit-vector engine; Exact the exact-ECMP semantics.
	// Defaults match the engine's defaults (trie, subset semantics), so a
	// default coordinator is byte-equivalent to a default single sweep.
	SMT, Exact bool
	// PEC selects the packet-equivalence-class engine (internal/pec) and
	// wins over SMT when both are set. The coordinator owns one
	// persistent checker shared by all shards, so per-device atomization
	// caches amortize across sweeps and delta passes invalidate exactly
	// the dirty devices.
	PEC bool
	// PECMetrics, when non-nil, instruments the PEC checker.
	PECMetrics *pec.Metrics
	// Workers is the stealing-pool size; 0 means one worker per shard.
	Workers int
	// Replicas is the virtual-node count per shard on the hash ring; 0
	// means the package default.
	Replicas int
	// Clock times sweeps; nil means the system clock.
	Clock clock.Clock
	// Metrics, when non-nil, receives coordinator counters.
	Metrics *Metrics
	// DeltaMetrics, when non-nil, instruments blast-radius computations.
	DeltaMetrics *delta.Metrics
}

// shardState is one validator shard: its slice of the fleet (ascending
// device order) and its own generation-cached FIB source. The source is
// mutex-guarded, so a thief worker can validate this shard's devices
// through it concurrently with the owner.
type shardState struct {
	devices []topology.DeviceID
	synth   *bgp.Synth
}

// Coordinator partitions the fleet across N validator shards by
// consistent hashing over the Clos pod structure — whole pods (and spine
// planes, and regional spines) land on one shard, preserving the table
// locality the per-shard FIB caches exploit — and sweeps them with a
// work-stealing pool. Merged reports are cached keyed on the topology
// generation: a steady-state repeat Sweep is an O(1) hit, and after a
// bounded change only the blast radius revalidates, on whichever shards
// it touches.
//
// Coordinator implements the engine's Sweeper hook. It is safe for
// concurrent use.
type Coordinator struct {
	topo  *topology.Topology
	cfg   map[topology.DeviceID]*bgp.DeviceConfig
	opts  Options
	ring  *Ring
	facts *metadata.Facts
	cgen  *contracts.Generator

	// pec is shared by every shard (non-nil iff Options.PEC): the
	// checker is safe for concurrent CheckDevice calls, and one
	// fleet-wide instance means the shared atom arena dedupes shapes
	// across shard boundaries — a ToR's shape built by shard 0 is a
	// ShapeHit for the clone validated by shard 3.
	shards []*shardState
	pec    *pec.Checker

	mu     sync.Mutex
	merged *rcdc.Report // last merge, keyed by merged.Generation
}

// New builds a coordinator of n shards over the topology and config map.
// The config map is shared with the caller (the engine mutates it under
// its own lock; sweeps observe it through the journaled generation).
func New(topo *topology.Topology, cfg map[topology.DeviceID]*bgp.DeviceConfig, n int, opts Options) *Coordinator {
	c := &Coordinator{
		topo: topo, cfg: cfg, opts: opts,
		ring:  NewRing(n, opts.Replicas),
		facts: metadata.FromTopology(topo),
	}
	c.cgen = contracts.NewGenerator(c.facts)
	c.cgen.EnableMemo()
	if opts.PEC {
		c.pec = &pec.Checker{Exact: opts.Exact, Clock: opts.Clock, Metrics: opts.PECMetrics}
	}
	c.shards = make([]*shardState, c.ring.Shards())
	for i := range c.shards {
		synth := bgp.NewSynth(topo, cfg)
		synth.EnableTableCache()
		c.shards[i] = &shardState{synth: synth}
	}
	for i := range topo.Devices {
		d := &topo.Devices[i]
		s := c.ring.Shard(PartitionKey(d))
		c.shards[s].devices = append(c.shards[s].devices, d.ID)
	}
	for i, s := range c.shards {
		opts.Metrics.observeAssignment(i, len(s.devices))
	}
	return c
}

// PartitionKey returns the ring key a device is placed by: its pod for
// ToRs and leaves, its plane for spines, its index for regional spines.
// Hashing structural units instead of devices keeps each pod's FIBs —
// which share most of their routes — on one shard's table cache.
func PartitionKey(d *topology.Device) string {
	switch d.Role {
	case topology.RoleToR, topology.RoleLeaf:
		return fmt.Sprintf("pod-%d", d.Cluster)
	case topology.RoleSpine:
		return fmt.Sprintf("plane-%d", d.Plane)
	default:
		return fmt.Sprintf("rs-%d", d.Index)
	}
}

// Shards returns the partition width (the engine.Sweeper hook).
func (c *Coordinator) Shards() int { return c.ring.Shards() }

// Devices returns shard i's slice of the fleet in ascending device order.
func (c *Coordinator) Devices(i int) []topology.DeviceID {
	return append([]topology.DeviceID(nil), c.shards[i].devices...)
}

func (c *Coordinator) checker() rcdc.Checker {
	switch {
	case c.pec != nil:
		return c.pec
	case c.opts.SMT:
		return rcdc.SMTChecker{Exact: c.opts.Exact}
	}
	return rcdc.TrieChecker{Exact: c.opts.Exact}
}

func (c *Coordinator) workers() int {
	if c.opts.Workers > 0 {
		return c.opts.Workers
	}
	return len(c.shards)
}

// Sweep produces a complete fleet report for the current topology
// generation (the engine.Sweeper hook). Repeat sweeps at an unchanged
// generation return the cached merge; after journaled changes only the
// blast radius revalidates; otherwise every shard sweeps in full. The
// merged report renders byte-identically to a single-engine sweep of the
// same state: per-device results are content-equal, ascending by device,
// with Checked/Failures recomputed from the merge.
func (c *Coordinator) Sweep() (*rcdc.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := clock.Or(c.opts.Clock).Now()
	gen := c.topo.Generation()
	if c.merged != nil && c.merged.Generation == gen {
		c.opts.Metrics.observeSweep("cached", 0)
		return c.merged, nil
	}
	mode := "full"
	var dirty []topology.DeviceID
	if c.merged != nil {
		if changes, ok := c.topo.ChangesSince(c.merged.Generation); ok {
			ds := delta.Compute(c.topo, changes, delta.Options{
				UnboundedConfig: bgp.ConfigUnbounded(c.cfg),
				Metrics:         c.opts.DeltaMetrics,
			})
			if !ds.Full() {
				mode = "delta"
				dirty = ds.Devices()
			}
		}
	}
	if c.pec != nil && mode == "delta" {
		// Blast-radius invalidation: dirty devices re-atomize, everyone
		// else stays a content-hash cache hit inside the PEC checker.
		c.pec.Invalidate(dirty)
	}

	queues := make([]*deque, len(c.shards))
	for i, s := range c.shards {
		s.synth.Refresh()
		work := s.devices
		if mode == "delta" {
			work = intersect(dirty, s.devices)
		}
		queues[i] = &deque{}
		for _, ch := range chunked(i, work) {
			queues[i].push(ch)
		}
	}

	fresh, errs := c.run(queues)

	var devs []rcdc.DeviceReport
	if mode == "delta" {
		// Splice fresh results into the previous merge, exactly as
		// rcdc.ValidateDelta splices into a previous report: an errored
		// dirty device keeps its previous result.
		devs = append([]rcdc.DeviceReport(nil), c.merged.Devices...)
		pos := make(map[topology.DeviceID]int, len(devs))
		for i := range devs {
			pos[devs[i].Device] = i
		}
		for _, fr := range fresh {
			if i, ok := pos[fr.Device]; ok {
				devs[i] = fr
			} else {
				devs = append(devs, fr)
			}
		}
	} else {
		devs = fresh
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].Device < devs[j].Device })
	rep := &rcdc.Report{Devices: devs, Workers: c.workers(), Generation: gen}
	for i := range devs {
		rep.Checked += devs[i].Contracts
		rep.Failures += len(devs[i].Violations)
	}
	rep.Elapsed = clock.Since(c.opts.Clock, start)
	c.opts.Metrics.observeSweep(mode, rep.Elapsed)
	if len(errs) > 0 {
		return rep, errors.Join(errs...)
	}
	c.merged = rep
	return rep, nil
}

// run drains the per-shard queues with the stealing pool: worker i owns
// queue i (popping newest-first), and when its queue drains it steals
// oldest-first from the other shards, so a skewed partition or a slow
// shard cannot serialize the sweep. Every chunk is validated against its
// owning shard's FIB source — the sources and the shared memoizing
// contract generator are mutex-guarded, so cross-shard execution is safe.
func (c *Coordinator) run(queues []*deque) ([]rcdc.DeviceReport, []error) {
	v := &rcdc.Validator{Checker: c.checker(), Workers: 1, Clock: c.opts.Clock}
	var (
		outMu sync.Mutex
		reps  []rcdc.DeviceReport
		errs  []error
	)
	var wg sync.WaitGroup
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			home := w % len(queues)
			for {
				ch, ok := queues[home].popBottom()
				for off := 1; !ok && off < len(queues); off++ {
					ch, ok = queues[(home+off)%len(queues)].stealTop()
				}
				if !ok {
					return
				}
				if ch.owner != home {
					c.opts.Metrics.steal()
				}
				chunkStart := clock.Or(c.opts.Clock).Now()
				src := c.shards[ch.owner].synth
				for _, id := range ch.devs {
					tbl, err := src.Table(id)
					if err != nil {
						outMu.Lock()
						errs = append(errs, fmt.Errorf("rcdc: pulling table for device %d: %w", id, err))
						outMu.Unlock()
						continue
					}
					rep, err := v.ValidateDevice(c.facts, tbl, c.cgen.ForDevice(id))
					outMu.Lock()
					if err != nil {
						errs = append(errs, err)
					} else {
						reps = append(reps, rep)
					}
					outMu.Unlock()
				}
				c.opts.Metrics.observeShard(ch.owner, clock.Since(c.opts.Clock, chunkStart))
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(reps, func(i, j int) bool { return reps[i].Device < reps[j].Device })
	return reps, errs
}

// intersect returns the elements common to two ascending device lists.
func intersect(a, b []topology.DeviceID) []topology.DeviceID {
	var out []topology.DeviceID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
