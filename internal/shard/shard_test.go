package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func testParams() topology.Params {
	return topology.Params{
		Clusters: 3, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 1,
		PrefixesPerToR: 1,
	}
}

// renderReport renders the semantic content of a report, excluding
// timing and worker counts — the byte-identity surface of the
// shard-equivalence contract.
func renderReport(rep *rcdc.Report) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "checked=%d failures=%d\n", rep.Checked, rep.Failures)
	for i := range rep.Devices {
		d := &rep.Devices[i]
		fmt.Fprintf(&buf, "dev=%d name=%s role=%s contracts=%d\n", d.Device, d.Name, d.Role, d.Contracts)
		for _, v := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", v.String())
		}
	}
	return buf.Bytes()
}

// groundTruth is a from-scratch single-engine full sweep.
func groundTruth(t *testing.T, topo *topology.Topology) *rcdc.Report {
	t.Helper()
	v := rcdc.Validator{Workers: 2}
	rep, err := v.ValidateAll(metadata.FromTopology(topo), bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRingDeterministicAndComplete(t *testing.T) {
	r := NewRing(5, 0)
	if r.Shards() != 5 {
		t.Fatalf("Shards() = %d", r.Shards())
	}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("pod-%d", i)
		s := r.Shard(key)
		if s < 0 || s >= 5 {
			t.Fatalf("key %s → shard %d out of range", key, s)
		}
		if s2 := r.Shard(key); s2 != s {
			t.Fatalf("key %s unstable: %d then %d", key, s, s2)
		}
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Fatalf("1000 keys landed on only %d/5 shards", len(seen))
	}
	// A clamped ring still works.
	if NewRing(0, 0).Shard("x") != 0 {
		t.Fatal("single-shard ring must map everything to shard 0")
	}
}

func TestDequeOrder(t *testing.T) {
	d := &deque{}
	for i := 0; i < 3; i++ {
		d.push(chunk{owner: i})
	}
	if c, ok := d.popBottom(); !ok || c.owner != 2 {
		t.Fatalf("popBottom = %+v, want owner 2 (LIFO)", c)
	}
	if c, ok := d.stealTop(); !ok || c.owner != 0 {
		t.Fatalf("stealTop = %+v, want owner 0 (FIFO)", c)
	}
	if c, ok := d.popBottom(); !ok || c.owner != 1 {
		t.Fatalf("popBottom = %+v, want owner 1", c)
	}
	if _, ok := d.popBottom(); ok {
		t.Fatal("empty deque popped")
	}
	if _, ok := d.stealTop(); ok {
		t.Fatal("empty deque stolen from")
	}
}

func TestChunked(t *testing.T) {
	devs := make([]topology.DeviceID, 37)
	for i := range devs {
		devs[i] = topology.DeviceID(i)
	}
	chunks := chunked(4, devs)
	if len(chunks) != 3 {
		t.Fatalf("37 devices → %d chunks, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		if c.owner != 4 {
			t.Fatalf("owner = %d, want 4", c.owner)
		}
		total += len(c.devs)
	}
	if total != 37 {
		t.Fatalf("chunks cover %d devices, want 37", total)
	}
	if chunked(0, nil) != nil {
		t.Fatal("empty device list must produce no chunks")
	}
}

// TestPartitionCoversFleet: every device lands on exactly one shard, and
// pod-mates land together.
func TestPartitionCoversFleet(t *testing.T) {
	topo := topology.MustNew(testParams())
	c := New(topo, nil, 3, Options{})
	owner := make(map[topology.DeviceID]int)
	for s := 0; s < c.Shards(); s++ {
		for _, id := range c.Devices(s) {
			if prev, dup := owner[id]; dup {
				t.Fatalf("device %d on shards %d and %d", id, prev, s)
			}
			owner[id] = s
		}
	}
	if len(owner) != len(topo.Devices) {
		t.Fatalf("assigned %d devices, fleet has %d", len(owner), len(topo.Devices))
	}
	podShard := map[string]int{}
	for i := range topo.Devices {
		d := &topo.Devices[i]
		key := PartitionKey(d)
		if s, ok := podShard[key]; ok && s != owner[d.ID] {
			t.Fatalf("partition key %s split across shards %d and %d", key, s, owner[d.ID])
		}
		podShard[key] = owner[d.ID]
	}
}

// TestSweepEquivalence: a coordinator sweep renders byte-identically to
// a single-engine full sweep, for every shard width, healthy and failed.
func TestSweepEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		topo := topology.MustNew(testParams())
		c := New(topo, nil, n, Options{})
		want := renderReport(groundTruth(t, topo))
		rep, err := c.Sweep()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := renderReport(rep); !bytes.Equal(got, want) {
			t.Fatalf("n=%d: sharded sweep diverged from single engine\n--- sharded ---\n%s--- single ---\n%s", n, got, want)
		}
		// Degrade and re-sweep (delta path).
		topo.FailLink(topo.ClusterToRs(0)[0], topo.ClusterLeaves(0)[0])
		rep2, err := c.Sweep()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep2.Failures == 0 {
			t.Fatalf("n=%d: no violations after link failure", n)
		}
		if got := renderReport(rep2); !bytes.Equal(got, renderReport(groundTruth(t, topo))) {
			t.Fatalf("n=%d: delta sweep diverged from single engine", n)
		}
	}
}

// TestSweepCached: a repeat sweep at an unchanged generation returns the
// cached merge without revalidating.
func TestSweepCached(t *testing.T) {
	topo := topology.MustNew(testParams())
	reg := obs.NewRegistry()
	c := New(topo, nil, 2, Options{Metrics: NewMetrics(reg)})
	r1, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("repeat sweep did not return the cached merge")
	}
	var cached, full float64
	for _, s := range reg.Snapshot() {
		if s.Name == "dcv_shard_sweeps_total" {
			switch s.Labels["mode"] {
			case "cached":
				cached = s.Value
			case "full":
				full = s.Value
			}
		}
	}
	if full != 1 || cached != 1 {
		t.Fatalf("sweeps full=%v cached=%v, want 1/1", full, cached)
	}
}

// TestShardProperty is the 40-step randomized equivalence property:
// mutations interleaved with sweeps and repeat (cached) sweeps, with the
// merged report compared byte-for-byte against a from-scratch
// single-engine sweep at every step, for N ∈ {1, 2, 5} simultaneously.
func TestShardProperty(t *testing.T) {
	topo := topology.MustNew(testParams())
	rng := rand.New(rand.NewSource(42))
	coords := map[int]*Coordinator{}
	for _, n := range []int{1, 2, 5} {
		coords[n] = New(topo, nil, n, Options{})
	}
	links := len(topo.Links)
	for step := 0; step < 40; step++ {
		l := topology.LinkID(rng.Intn(links))
		switch op := rng.Intn(6); op {
		case 0:
			topo.SetLinkUp(l, false)
		case 1:
			topo.SetLinkUp(l, true)
		case 2:
			topo.SetSessionUp(l, false)
		case 3:
			topo.SetSessionUp(l, true)
		case 4:
			topo.RestoreAll()
		case 5:
			// No mutation: this step exercises the cached-sweep path.
		}
		want := renderReport(groundTruth(t, topo))
		for _, n := range []int{1, 2, 5} {
			rep, err := coords[n].Sweep()
			if err != nil {
				t.Fatalf("step %d n=%d: %v", step, n, err)
			}
			if rep.Generation != topo.Generation() {
				t.Fatalf("step %d n=%d: report generation %d, topology %d",
					step, n, rep.Generation, topo.Generation())
			}
			if got := renderReport(rep); !bytes.Equal(got, want) {
				t.Fatalf("step %d n=%d: sharded sweep diverged from single engine\n--- sharded ---\n%s--- single ---\n%s",
					step, n, got, want)
			}
		}
	}
}
