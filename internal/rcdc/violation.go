// Package rcdc implements the Reality Checker for Data Centers: the
// verification engine of §2.5, the local-validation runner of §2.4, the
// severity model of §2.6.4, and the global all-pairs reachability checker
// used both as the scalability baseline (§1) and to validate Claim 1
// (local contracts imply global reachability).
package rcdc

import (
	"fmt"
	"sort"
	"strings"

	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// ViolationKind classifies how a contract failed.
type ViolationKind uint8

const (
	// MissingRoute: no specific route covers (part of) the contract range;
	// packets fall through to the default route (§2.4.4).
	MissingRoute ViolationKind = iota
	// WrongNextHops: a covering route exists but its ECMP set differs from
	// the contract's expected set.
	WrongNextHops
	// DefaultMismatch: the default route's next hops differ from the
	// default contract (including too few hops — the §2.6.2 RIB-FIB bug).
	DefaultMismatch
	// MissingDefault: the device has no default route at all.
	MissingDefault
)

func (k ViolationKind) String() string {
	switch k {
	case MissingRoute:
		return "missing-route"
	case WrongNextHops:
		return "wrong-next-hops"
	case DefaultMismatch:
		return "default-mismatch"
	case MissingDefault:
		return "missing-default"
	}
	return "unknown"
}

// Severity is the remediation priority of a violation (§2.6.4).
type Severity uint8

const (
	LowRisk Severity = iota
	HighRisk
)

func (s Severity) String() string {
	if s == HighRisk {
		return "high"
	}
	return "low"
}

// Violation is one failed contract check on one device.
type Violation struct {
	Device   topology.DeviceID
	Contract contracts.Contract
	Kind     ViolationKind
	Severity Severity

	// RulePrefix is the offending routing rule, when one exists.
	RulePrefix ipnet.Prefix
	// Missing are expected next hops the rule lacks; Unexpected are next
	// hops the rule has beyond the contract.
	Missing, Unexpected []topology.DeviceID
	// Remaining is the number of next hops actually in use; a value <= 1
	// on a default route means one more failure isolates the device.
	Remaining int
}

// Clone returns a deep copy of the violation: the Missing/Unexpected
// sets and the contract's NextHops get fresh backing arrays, so mutating
// the copy cannot corrupt a cached report or the shared contract sets a
// memoizing generator hands out.
func (v Violation) Clone() Violation {
	cp := v
	cp.Contract.NextHops = append([]topology.DeviceID(nil), v.Contract.NextHops...)
	cp.Missing = append([]topology.DeviceID(nil), v.Missing...)
	cp.Unexpected = append([]topology.DeviceID(nil), v.Unexpected...)
	return cp
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dev=%d %s contract=%s kind=%s sev=%s",
		v.Device, v.Contract.Kind, v.Contract.Prefix, v.Kind, v.Severity)
	if len(v.Missing) > 0 {
		fmt.Fprintf(&b, " missing=%v", v.Missing)
	}
	if len(v.Unexpected) > 0 {
		fmt.Fprintf(&b, " unexpected=%v", v.Unexpected)
	}
	return b.String()
}

// classify assigns the §2.6.4 risk level: errors that leave a device one
// additional fault from isolation, and errors on high-blast-radius devices
// (spine and regional tiers, which many servers depend on for the longer
// detour paths), are high risk.
func classify(v *Violation, role topology.Role) {
	switch {
	case v.Contract.Kind == contracts.Default && v.Remaining <= 1:
		v.Severity = HighRisk
	case role == topology.RoleSpine || role == topology.RoleRegionalSpine:
		v.Severity = HighRisk
	default:
		v.Severity = LowRisk
	}
}

// DiffHops is the exported form of diffHops for sibling engines (the
// packet-equivalence-class checker in internal/pec) that must emit
// violations field-identical to the trie engine: same missing/unexpected
// content, order, and nil-vs-empty shape.
func DiffHops(expected, actual []topology.DeviceID) (missing, unexpected []topology.DeviceID) {
	return diffHops(expected, actual)
}

// Classify assigns the §2.6.4 severity exactly as the in-package engines
// do; exported for sibling engines that construct Violations directly.
func Classify(v *Violation, role topology.Role) { classify(v, role) }

// diffHops computes missing/unexpected sets between expected and actual
// next hops (both need not be sorted).
func diffHops(expected, actual []topology.DeviceID) (missing, unexpected []topology.DeviceID) {
	em := make(map[topology.DeviceID]bool, len(expected))
	for _, e := range expected {
		em[e] = true
	}
	am := make(map[topology.DeviceID]bool, len(actual))
	for _, a := range actual {
		am[a] = true
		if !em[a] {
			unexpected = append(unexpected, a)
		}
	}
	for _, e := range expected {
		if !am[e] {
			missing = append(missing, e)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	sort.Slice(unexpected, func(i, j int) bool { return unexpected[i] < unexpected[j] })
	return missing, unexpected
}

func sameHops(expected, actual []topology.DeviceID) bool {
	m, u := diffHops(expected, actual)
	return len(m) == 0 && len(u) == 0
}

// hopsOKSorted is the allocation-free satisfaction check used by the trie
// checker's fast path. It requires both slices sorted ascending (contracts
// are generated sorted; the FIB sources emit sorted ECMP sets) and reports
// false whenever that precondition fails, sending the caller to the
// general map-based path — so it can only under-approve, never mis-approve.
// exact requires set equality; otherwise actual ⊆ expected suffices.
func hopsOKSorted(expected, actual []topology.DeviceID, exact bool) bool {
	if exact && len(expected) != len(actual) {
		return false
	}
	j := 0
	var prev topology.DeviceID = -1
	for _, a := range actual {
		if a <= prev {
			return false // unsorted or duplicate: take the general path
		}
		prev = a
		for j < len(expected) && expected[j] < a {
			if exact {
				return false // expected hop missing from actual
			}
			j++
		}
		if j >= len(expected) || expected[j] != a {
			return false // unexpected hop
		}
		j++
	}
	if exact && j != len(expected) {
		return false
	}
	return true
}

// Checker verifies a device's FIB against its contracts and returns the
// violations found (§2.5: "produces a list of rules in P that violate the
// contract; the list is empty if P satisfies C").
type Checker interface {
	CheckDevice(tbl *fib.Table, dc contracts.DeviceContracts, role topology.Role) ([]Violation, error)
}
