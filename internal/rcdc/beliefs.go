package rcdc

import (
	"fmt"

	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

// Network beliefs: the intro contrasts RCDC's architecture-derived intent
// with the approach of labelling networks with template properties, a.k.a.
// beliefs ([30], "Checking Beliefs in Dynamic Networks"). This file
// implements that alternative so the two can be compared: beliefs are
// generic per-role templates an operator writes down, checked against each
// device's table. They are easy to state and catch gross drift, but —
// unlike contracts — they do not know which specific next hops the
// architecture intends, so they miss misdirected-but-plausible forwarding
// (see TestBeliefsVsContracts).

// Belief is one template property instantiated per device.
type Belief interface {
	// Name identifies the template in reports.
	Name() string
	// Check returns violation descriptions for one device (empty = holds).
	Check(facts *metadata.Facts, dev *metadata.DeviceFacts, tbl *fib.Table) []string
}

// DefaultFanoutAtLeast believes every device of the role has a default
// route with at least Min next hops.
type DefaultFanoutAtLeast struct {
	Role topology.Role
	Min  int
}

func (b DefaultFanoutAtLeast) Name() string {
	return fmt.Sprintf("default-fanout(%v)>=%d", b.Role, b.Min)
}

func (b DefaultFanoutAtLeast) Check(_ *metadata.Facts, dev *metadata.DeviceFacts, tbl *fib.Table) []string {
	if dev.Role != b.Role {
		return nil
	}
	def, ok := tbl.Default()
	if !ok {
		return []string{"no default route"}
	}
	if len(def.NextHops) < b.Min {
		return []string{fmt.Sprintf("default route has %d next hops, believe >= %d",
			len(def.NextHops), b.Min)}
	}
	return nil
}

// HasSpecificRouteForAllPrefixes believes every device of the role carries
// a specific route for every hosted prefix it does not own.
type HasSpecificRouteForAllPrefixes struct {
	Role topology.Role
}

func (b HasSpecificRouteForAllPrefixes) Name() string {
	return fmt.Sprintf("specific-routes(%v)", b.Role)
}

func (b HasSpecificRouteForAllPrefixes) Check(facts *metadata.Facts, dev *metadata.DeviceFacts, tbl *fib.Table) []string {
	if dev.Role != b.Role {
		return nil
	}
	hosted := map[string]bool{}
	for _, p := range dev.HostedPrefixes {
		hosted[p.String()] = true
	}
	var out []string
	for _, p := range facts.Prefixes {
		if hosted[p.Prefix.String()] {
			continue
		}
		if _, ok := tbl.Get(p.Prefix); !ok {
			out = append(out, fmt.Sprintf("no specific route for %v", p.Prefix))
		}
	}
	return out
}

// NextHopsPointUpward believes a device of the role only uses devices of
// the expected neighbor role as default-route next hops.
type NextHopsPointUpward struct {
	Role     topology.Role
	NextRole topology.Role
}

func (b NextHopsPointUpward) Name() string {
	return fmt.Sprintf("default-points(%v->%v)", b.Role, b.NextRole)
}

func (b NextHopsPointUpward) Check(facts *metadata.Facts, dev *metadata.DeviceFacts, tbl *fib.Table) []string {
	if dev.Role != b.Role {
		return nil
	}
	def, ok := tbl.Default()
	if !ok {
		return nil // covered by DefaultFanoutAtLeast
	}
	var out []string
	for _, nh := range def.NextHops {
		if facts.Device(nh).Role != b.NextRole {
			out = append(out, fmt.Sprintf("default next hop %d is a %v, believe %v",
				nh, facts.Device(nh).Role, b.NextRole))
		}
	}
	return out
}

// StandardBeliefs is the belief set an operator would plausibly write for
// the §2.1 architecture without consulting the topology database.
func StandardBeliefs(p topology.Params) []Belief {
	return []Belief{
		DefaultFanoutAtLeast{topology.RoleToR, p.LeavesPerCluster},
		DefaultFanoutAtLeast{topology.RoleLeaf, p.SpinesPerPlane},
		DefaultFanoutAtLeast{topology.RoleSpine, p.RSLinksPerSpine},
		HasSpecificRouteForAllPrefixes{topology.RoleToR},
		HasSpecificRouteForAllPrefixes{topology.RoleSpine},
		NextHopsPointUpward{topology.RoleToR, topology.RoleLeaf},
		NextHopsPointUpward{topology.RoleLeaf, topology.RoleSpine},
		NextHopsPointUpward{topology.RoleSpine, topology.RoleRegionalSpine},
	}
}

// BeliefViolation is one failed belief on one device.
type BeliefViolation struct {
	Device topology.DeviceID
	Belief string
	Detail string
}

// CheckBeliefs validates every device against the belief set.
func CheckBeliefs(facts *metadata.Facts, source fib.Source, beliefs []Belief) ([]BeliefViolation, error) {
	var out []BeliefViolation
	for i := range facts.Devices {
		dev := &facts.Devices[i]
		tbl, err := source.Table(dev.ID)
		if err != nil {
			return nil, err
		}
		for _, b := range beliefs {
			for _, d := range b.Check(facts, dev, tbl) {
				out = append(out, BeliefViolation{Device: dev.ID, Belief: b.Name(), Detail: d})
			}
		}
	}
	return out, nil
}
