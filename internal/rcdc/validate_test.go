package rcdc

import (
	"errors"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

type failingSource struct {
	inner fib.Source
	bad   topology.DeviceID
}

var errPull = errors.New("device unreachable")

func (s failingSource) Table(d topology.DeviceID) (*fib.Table, error) {
	if d == s.bad {
		return nil, errPull
	}
	return s.inner.Table(d)
}

func TestValidateAllPropagatesSourceErrors(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	src := failingSource{inner: bgp.NewSynth(topo, nil), bad: topo.ToRs()[1]}
	v := Validator{Workers: 4}
	_, err := v.ValidateAll(facts, src)
	if err == nil || !errors.Is(err, errPull) {
		t.Fatalf("err = %v, want wrapped errPull", err)
	}
}

func TestReportAccessors(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	facts := metadata.FromTopology(topo)
	v := Validator{Workers: 1}
	rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations()) != rep.Failures {
		t.Error("Violations() length != Failures")
	}
	healthy := 0
	for i := range rep.Devices {
		if rep.Devices[i].Healthy() {
			healthy++
		}
	}
	if healthy+4 != len(rep.Devices) {
		t.Errorf("healthy = %d of %d", healthy, len(rep.Devices))
	}
	if rep.Workers != 1 {
		t.Errorf("Workers = %d", rep.Workers)
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestValidatorDefaultsToTrie(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	v := Validator{} // zero value: trie engine, all CPUs
	rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Errorf("failures = %d", rep.Failures)
	}
	if rep.Workers < 1 {
		t.Errorf("workers = %d", rep.Workers)
	}
}

func TestHopsOKSortedEdgeCases(t *testing.T) {
	type ids = []topology.DeviceID
	cases := []struct {
		expected, actual ids
		exact, want      bool
	}{
		{ids{1, 2, 3}, ids{1, 2, 3}, true, true},
		{ids{1, 2, 3}, ids{1, 3}, false, true},  // subset ok
		{ids{1, 2, 3}, ids{1, 3}, true, false},  // exact: missing 2
		{ids{1, 2, 3}, ids{1, 4}, false, false}, // unexpected hop
		{ids{1, 2, 3}, ids{3, 1}, false, false}, // unsorted: defer to general path
		{ids{1, 2, 3}, ids{2, 2}, false, false}, // duplicate: defer
		{ids{1, 2, 3}, ids{}, true, false},      // exact: all missing
		{ids{1, 2, 3}, ids{}, false, true},      // empty subset (caller guards emptiness)
		{ids{}, ids{1}, false, false},           // nothing expected
	}
	for i, c := range cases {
		if got := hopsOKSorted(c.expected, c.actual, c.exact); got != c.want {
			t.Errorf("case %d: hopsOKSorted(%v, %v, %v) = %v, want %v",
				i, c.expected, c.actual, c.exact, got, c.want)
		}
	}
}
