package rcdc

import (
	"time"

	"dcvalidate/internal/obs"
)

// Metrics is the validator's instrumentation bundle (see DESIGN.md
// "Observability"). All recording methods are nil-receiver safe no-ops,
// so a Validator without metrics pays only a nil check; with metrics the
// cost is a few atomic operations per device. Metrics never feed back
// into validation results — the differential test locks that
// instrumented and uninstrumented runs produce byte-identical reports.
type Metrics struct {
	deviceSeconds *obs.Histogram  // dcv_rcdc_device_check_seconds
	devices       *obs.Counter    // dcv_rcdc_devices_checked_total
	violations    *obs.Counter    // dcv_rcdc_violations_total
	runs          *obs.CounterVec // dcv_rcdc_validate_runs_total{mode}
	dirty         *obs.Histogram  // dcv_rcdc_delta_dirty_devices
	utilization   *obs.Gauge      // dcv_rcdc_worker_utilization_ratio
}

// NewMetrics registers the validator metric families in r and returns
// the recording handles. Idempotent: a second call against the same
// registry returns handles to the same series.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		deviceSeconds: r.Histogram("dcv_rcdc_device_check_seconds",
			"Per-device contract check latency.", obs.LatencyBuckets),
		devices: r.Counter("dcv_rcdc_devices_checked_total",
			"Devices validated (all runs and modes)."),
		violations: r.Counter("dcv_rcdc_violations_total",
			"Contract violations found."),
		runs: r.CounterVec("dcv_rcdc_validate_runs_total",
			"Validation runs by mode.", "mode"),
		dirty: r.Histogram("dcv_rcdc_delta_dirty_devices",
			"Dirty-set size per delta validation run.", obs.SizeBuckets),
		utilization: r.Gauge("dcv_rcdc_worker_utilization_ratio",
			"Sum of per-device check time over workers x run wall time, last run."),
	}
}

// observeDevice records one completed device check.
func (m *Metrics) observeDevice(rep *DeviceReport) {
	if m == nil {
		return
	}
	m.deviceSeconds.ObserveDuration(rep.Elapsed)
	m.devices.Inc()
	m.violations.Add(uint64(len(rep.Violations)))
}

// observeRun records a completed ValidateAll ("full") or ValidateDelta
// ("delta") run. dirty is the scheduled dirty-set size (recorded for
// delta runs only) and busy the summed check time of the devices this
// run actually validated (carried-forward delta results excluded). Worker
// utilization is the busy fraction of the pool: busy over workers times
// the run's wall time — 0 when the wall time is zero (virtual clocks).
func (m *Metrics) observeRun(mode string, rep *Report, dirty int, busy time.Duration) {
	if m == nil {
		return
	}
	m.runs.With(mode).Inc()
	if mode == "delta" {
		m.dirty.Observe(float64(dirty))
	}
	util := 0.0
	if rep.Elapsed > 0 && rep.Workers > 0 {
		util = float64(busy) / (float64(rep.Workers) * float64(rep.Elapsed))
	}
	m.utilization.Set(util)
}

// busyTime sums the per-device check time of a report slice.
func busyTime(reps []DeviceReport) time.Duration {
	var busy time.Duration
	for i := range reps {
		busy += reps[i].Elapsed
	}
	return busy
}
