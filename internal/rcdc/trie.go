package rcdc

import (
	"sync"

	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// walkScratch pools the candidate and coverage slices of the general
// specific-contract path. TrieChecker is a stateless value, so the pool
// is package-level; pooling replaces the three per-walk slice
// allocations the benchmem gate used to flag. The report-byte-identity
// regression test pins that pooling changed no output.
type walkScratch struct {
	candidates []int
	ancestors  []int
	covered    []ipnet.Prefix
}

var walkPool = sync.Pool{New: func() any { return &walkScratch{} }}

// TrieChecker is the specialized algorithm of §2.5.2: it exploits the fact
// that both contract ranges and routing rules are proper address prefixes,
// representing the policy as a hash-trie and limiting each contract check
// to the rules whose prefix contains or is contained in the contract range.
// It is the engine RCDC uses for the common workload, scaling validation to
// thousands of devices on modest CPU (§2.5).
//
// Specific contracts are checked with subset semantics, matching the
// outcome table of §2.4.4 (R1 keeps Prefix_B through D3 alone and is clean;
// ToR1's degraded-but-correct Prefix_C route is clean): a specific route
// must cover the contract range and must not forward to any next hop
// outside the expected set. Loss of redundancy is surfaced through the
// default contracts, which require the exact expected ECMP set. Setting
// Exact extends the exact-set requirement to specific contracts — the
// "agrees with a contract with respect to all output ports" variant of
// §2.5.1.
type TrieChecker struct {
	Exact bool
}

// CheckDevice implements Checker.
func (t TrieChecker) CheckDevice(tbl *fib.Table, dc contracts.DeviceContracts, role topology.Role) ([]Violation, error) {
	var out []Violation
	tr := tbl.Trie()
	for _, c := range dc.Contracts {
		if c.Kind == contracts.Default {
			out = appendDefaultViolations(out, tbl, c, role)
			continue
		}
		out = appendSpecificViolations(out, tbl, tr, c, role, t.Exact)
	}
	return out, nil
}

// appendDefaultViolations validates a default-route contract by direct
// comparison of the default rule's next hops — the special case of §2.5.1.
func appendDefaultViolations(out []Violation, tbl *fib.Table, c contracts.Contract, role topology.Role) []Violation {
	def, ok := tbl.Default()
	if !ok {
		v := Violation{Device: c.Device, Contract: c, Kind: MissingDefault, Remaining: 0}
		classify(&v, role)
		return append(out, v)
	}
	if hopsOKSorted(c.NextHops, def.NextHops, true) || sameHops(c.NextHops, def.NextHops) {
		return out
	}
	missing, unexpected := diffHops(c.NextHops, def.NextHops)
	v := Violation{
		Device: c.Device, Contract: c, Kind: DefaultMismatch,
		RulePrefix: def.Prefix, Missing: missing, Unexpected: unexpected,
		Remaining: len(def.NextHops),
	}
	classify(&v, role)
	return append(out, v)
}

// appendSpecificViolations walks the candidate rules of §2.5.2 — every rule
// whose prefix contains or is contained in the contract range, excluding
// the default route — in descending prefix-length order, flagging rules
// whose next hops differ from the contract, until the accumulated rule
// prefixes cover the contract range. Any uncovered remainder would be
// handled by the default route and is reported as a missing specific route.
func appendSpecificViolations(out []Violation, tbl *fib.Table, tr *ipnet.Trie[int], c contracts.Contract, role topology.Role, exact bool) []Violation {
	// Fast path for the dominant healthy case: a rule exactly at the
	// contract prefix, no more-specific rules beneath it, next hops
	// satisfying the contract. No allocation, O(prefix length).
	if idx, ok := tr.Get(c.Prefix); ok && !tr.HasStrictDescendant(c.Prefix) {
		r := &tbl.Entries[idx]
		if len(r.NextHops) > 0 && hopsOKSorted(c.NextHops, r.NextHops, exact) {
			return out
		}
	}
	// Candidates: descendants first (they are longer), then ancestors from
	// longest to shortest. The trie yields ancestors shortest-first, so
	// collect and reverse; descendants are already at least as long as the
	// contract range.
	ws := walkPool.Get().(*walkScratch)
	candidates, ancestors, covered := ws.candidates[:0], ws.ancestors[:0], ws.covered[:0]
	defer func() {
		ws.candidates, ws.ancestors, ws.covered = candidates, ancestors, covered
		walkPool.Put(ws)
	}()
	tr.Descendants(c.Prefix, func(_ ipnet.Prefix, idx int) bool {
		candidates = append(candidates, idx)
		return true
	})
	// Descendants walk is lexicographic; sort by descending prefix length
	// (stable order for equal lengths doesn't matter: equal-length
	// prefixes under one range are disjoint).
	sortByPrefixLenDesc(tbl, candidates)
	tr.Ancestors(c.Prefix, func(p ipnet.Prefix, idx int) bool {
		if p.IsDefault() || p == c.Prefix {
			return true // default handled separately; exact match is in descendants
		}
		ancestors = append(ancestors, idx)
		return true
	})
	for i := len(ancestors) - 1; i >= 0; i-- {
		candidates = append(candidates, ancestors[i])
	}

	rng := ipnet.RangeOf(c.Prefix)
	for _, idx := range candidates {
		r := &tbl.Entries[idx]
		missing, unexpected := diffHops(c.NextHops, r.NextHops)
		bad := len(unexpected) > 0 || len(r.NextHops) == 0
		if exact {
			bad = bad || len(missing) > 0
		}
		if bad {
			v := Violation{
				Device: c.Device, Contract: c, Kind: WrongNextHops,
				RulePrefix: r.Prefix, Missing: missing, Unexpected: unexpected,
				Remaining: len(r.NextHops),
			}
			classify(&v, role)
			out = append(out, v)
		}
		covered = append(covered, r.Prefix)
		if len(rng.SubtractPrefixes(covered)) == 0 {
			return out // contract range fully covered by specific rules
		}
	}
	// Remainder falls to the default route: missing specific route.
	def, _ := tbl.Default()
	remaining := 0
	if def != nil {
		remaining = len(def.NextHops)
	}
	v := Violation{
		Device: c.Device, Contract: c, Kind: MissingRoute, Remaining: remaining,
	}
	classify(&v, role)
	return append(out, v)
}

func sortByPrefixLenDesc(tbl *fib.Table, idxs []int) {
	// Insertion sort: candidate lists are tiny (usually 1).
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && tbl.Entries[idxs[j]].Prefix.Bits > tbl.Entries[idxs[j-1]].Prefix.Bits; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}
