package rcdc

import (
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

func TestBeliefsHealthyDatacenter(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	vs, err := CheckBeliefs(facts, bgp.NewSynth(topo, nil), StandardBeliefs(topo.Params))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("healthy datacenter fails beliefs: %v", vs)
	}
}

func TestBeliefsCatchGrossDrift(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor1 := topo.ClusterToRs(0)[0]
	topo.FailLink(tor1, topo.ClusterLeaves(0)[2])
	topo.FailLink(tor1, topo.ClusterLeaves(0)[3])
	facts := metadata.FromTopology(topo)
	vs, err := CheckBeliefs(facts, bgp.NewSynth(topo, nil), StandardBeliefs(topo.Params))
	if err != nil {
		t.Fatal(err)
	}
	var fanout, missing bool
	for _, v := range vs {
		if v.Device == tor1 {
			switch {
			case v.Belief == "default-fanout(tor)>=4":
				fanout = true
			case v.Belief == "specific-routes(tor)":
				missing = true
			}
		}
	}
	if !fanout {
		t.Errorf("degraded default fan-out not believed broken: %v", vs)
	}
	// With only ToR1's links failed, ToR1 keeps all specific routes (the
	// leaves keep theirs); PrefixB routes at ToR1 survive via A1/A2.
	_ = missing
}

// TestBeliefsVsContracts demonstrates the intro's positioning: beliefs are
// satisfied by a table that forwards a prefix through entirely wrong — but
// role-plausible — next hops, while the architecture-derived contracts
// catch it.
func TestBeliefsVsContracts(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	hps := topo.HostedPrefixes()
	a1 := topo.ClusterLeaves(0)[0]
	d1 := topo.Spines()[0]

	// A1's real table, except PrefixA (which should go straight to ToR1)
	// is misdirected up to the spine — role-wise plausible, semantically a
	// needless detour the architecture forbids (leaf must send
	// same-cluster traffic directly to the hosting ToR, §2.4.2).
	src := bgp.NewSynth(topo, nil)
	tbl, err := src.Table(a1)
	if err != nil {
		t.Fatal(err)
	}
	bad := fib.NewTable(a1)
	for _, e := range tbl.Entries {
		if e.Prefix == hps[0].Prefix {
			bad.Add(fib.Entry{Prefix: e.Prefix, NextHops: []topology.DeviceID{d1}})
			continue
		}
		bad.Add(e)
	}

	// Beliefs: all pass (default fan-out intact, specific routes exist,
	// default points at the spine).
	devFacts := facts.Device(a1)
	for _, b := range StandardBeliefs(topo.Params) {
		if got := b.Check(facts, devFacts, bad); len(got) != 0 {
			t.Fatalf("belief %s unexpectedly caught the detour: %v", b.Name(), got)
		}
	}

	// Contracts: the misdirected next hop is flagged.
	gen := contractsForDevice(t, facts, a1)
	vs, err := (TrieChecker{}).CheckDevice(bad, gen, topology.RoleLeaf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range vs {
		if v.Contract.Prefix == hps[0].Prefix && v.Kind == WrongNextHops {
			found = true
		}
	}
	if !found {
		t.Fatalf("contracts missed the detour: %v", vs)
	}
}

func TestBeliefNoDefaultRoute(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	tor := topo.ToRs()[0]
	empty := fib.NewTable(tor)
	empty.Add(fib.Entry{Prefix: ipnet.MustParsePrefix("10.0.0.0/24"), Connected: true})
	b := DefaultFanoutAtLeast{topology.RoleToR, 4}
	if got := b.Check(facts, facts.Device(tor), empty); len(got) != 1 {
		t.Errorf("missing default not believed broken: %v", got)
	}
	// Wrong role: belief does not apply.
	leaf := topo.ClusterLeaves(0)[0]
	if got := b.Check(facts, facts.Device(leaf), empty); len(got) != 0 {
		t.Errorf("belief applied to wrong role: %v", got)
	}
}

func contractsForDevice(t *testing.T, facts *metadata.Facts, d topology.DeviceID) contracts.DeviceContracts {
	t.Helper()
	return contracts.NewGenerator(facts).ForDevice(d)
}
