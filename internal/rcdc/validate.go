package rcdc

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/topology"
)

// DeviceReport is the validation outcome for one device.
type DeviceReport struct {
	Device     topology.DeviceID
	Name       string
	Role       topology.Role
	Contracts  int
	Violations []Violation
	Elapsed    time.Duration
}

// Healthy reports whether the device passed all its contracts.
func (r *DeviceReport) Healthy() bool { return len(r.Violations) == 0 }

// Report aggregates a validation run over a set of devices.
type Report struct {
	Devices  []DeviceReport
	Elapsed  time.Duration
	Workers  int
	Checked  int // total contracts checked
	Failures int // total violations
	// Generation is caller-maintained bookkeeping: the topology generation
	// the report reflects, recorded by callers that feed the report back
	// into ValidateDelta (the validator itself never reads it).
	Generation uint64
}

// HighRisk returns the number of high-risk violations (§2.6.4).
func (r *Report) HighRisk() int {
	n := 0
	for i := range r.Devices {
		for _, v := range r.Devices[i].Violations {
			if v.Severity == HighRisk {
				n++
			}
		}
	}
	return n
}

// Violations flattens all violations across devices. The returned slice
// is a deep copy: callers may sort it, truncate it, or edit the next-hop
// sets of individual violations without corrupting the report — or the
// cached per-device results the serving and shard layers splice reports
// from, or the memoized contract generator whose NextHops slices the
// violations would otherwise alias.
func (r *Report) Violations() []Violation {
	var out []Violation
	for i := range r.Devices {
		for _, v := range r.Devices[i].Violations {
			out = append(out, v.Clone())
		}
	}
	return out
}

// Validator runs local validation: each device is checked against its own
// contracts in isolation, so devices can be validated in parallel and no
// global snapshot is ever formed (§2.4).
type Validator struct {
	// Checker is the verification engine; defaults to TrieChecker.
	Checker Checker
	// Workers is the parallelism degree; 0 means GOMAXPROCS, 1 models the
	// paper's single-CPU measurements.
	Workers int
	// Clock times the per-device and whole-run measurements; nil means
	// the system clock. Tests inject a clock.Virtual for reproducible
	// Elapsed fields.
	Clock clock.Clock
	// Metrics, when non-nil, receives per-device check latencies and
	// per-run counters (see NewMetrics). Instrumentation never alters
	// validation results.
	Metrics *Metrics
	// Tracer, when non-nil, records a span per validation run.
	Tracer *obs.Tracer
	// Contracts, when non-nil, supplies the generator ValidateAll uses
	// instead of building a transient one per run. Pair it with a
	// memoizing generator (EnableMemo) so repeated sweeps reuse the same
	// contract sets — one of the two ingredients of the zero-allocation
	// steady state the -benchmem gate locks.
	Contracts *contracts.Generator
	// Scratch, when non-nil and Workers is 1, switches ValidateAll to a
	// sequential path that reuses the scratch's backing arrays instead of
	// spinning up the channel worker pool: allocation-free once warm. The
	// returned report and its device slice are views into the scratch,
	// valid only until the next ValidateAll on the same validator.
	Scratch *Scratch
}

// Scratch holds the reusable backing arrays of the sequential
// ValidateAll path. One scratch serves one validator at a time.
type Scratch struct {
	reps []DeviceReport
	errs []error
	rep  Report
}

func (v *Validator) checker() Checker {
	if v.Checker != nil {
		return v.Checker
	}
	return TrieChecker{}
}

// ValidateDevice checks one device's table against its contracts.
func (v *Validator) ValidateDevice(facts *metadata.Facts, tbl *fib.Table, dc contracts.DeviceContracts) (DeviceReport, error) {
	df := facts.Device(dc.Device)
	start := clock.Or(v.Clock).Now()
	viols, err := v.checker().CheckDevice(tbl, dc, df.Role)
	if err != nil {
		return DeviceReport{}, err
	}
	rep := DeviceReport{
		Device: dc.Device, Name: df.Name, Role: df.Role,
		Contracts: len(dc.Contracts), Violations: viols,
		Elapsed: clock.Since(v.Clock, start),
	}
	v.Metrics.observeDevice(&rep)
	return rep, nil
}

func (v *Validator) workers() int {
	if v.Workers > 0 {
		return v.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// validateSet runs the worker pool over one device set, pulling each FIB
// from the source and validating it against gen's contracts. It returns
// the per-device reports in ascending device order together with every
// per-device error (the two are disjoint: an errored device produces no
// report).
func (v *Validator) validateSet(facts *metadata.Facts, gen *contracts.Generator,
	source fib.Source, devs []topology.DeviceID) ([]DeviceReport, []error) {
	type result struct {
		rep DeviceReport
		err error
	}
	ids := make(chan topology.DeviceID)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < v.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				tbl, err := source.Table(id)
				if err != nil {
					results <- result{err: fmt.Errorf("rcdc: pulling table for device %d: %w", id, err)}
					continue
				}
				rep, err := v.ValidateDevice(facts, tbl, gen.ForDevice(id))
				results <- result{rep: rep, err: err}
			}
		}()
	}
	go func() {
		for _, id := range devs {
			ids <- id
		}
		close(ids)
		wg.Wait()
		close(results)
	}()

	var reps []DeviceReport
	var errs []error
	for r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		reps = append(reps, r.rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Device < reps[j].Device })
	return reps, errs
}

// ValidateAll checks every device, pulling each FIB from the source and
// generating its contracts on the fly. FIBs are not retained: memory stays
// O(one device) per worker regardless of datacenter size.
//
// Per-device failures degrade rather than abort: the returned report
// covers every device that validated, alongside an errors.Join of the
// devices that did not — mirroring the monitor's graceful-degradation
// policy. Callers that need all-or-nothing semantics should treat a
// non-nil error as fatal; callers that can tolerate partial coverage get
// the partial report either way.
func (v *Validator) ValidateAll(facts *metadata.Facts, source fib.Source) (*Report, error) {
	sp := v.Tracer.Start("rcdc.ValidateAll")
	defer sp.End()
	if v.Scratch != nil && v.workers() == 1 {
		return v.validateAllSeq(facts, source)
	}
	start := clock.Or(v.Clock).Now()
	devs := make([]topology.DeviceID, len(facts.Devices))
	for i := range facts.Devices {
		devs[i] = facts.Devices[i].ID
	}
	reps, errs := v.validateSet(facts, v.gen(facts), source, devs)
	rep := &Report{Workers: v.workers(), Devices: reps}
	for i := range reps {
		rep.Checked += reps[i].Contracts
		rep.Failures += len(reps[i].Violations)
	}
	rep.Elapsed = clock.Since(v.Clock, start)
	v.Metrics.observeRun("full", rep, len(devs), busyTime(reps))
	return rep, errors.Join(errs...)
}

func (v *Validator) gen(facts *metadata.Facts) *contracts.Generator {
	if v.Contracts != nil {
		return v.Contracts
	}
	return contracts.NewGenerator(facts)
}

// validateAllSeq is the sequential twin of ValidateAll for Workers==1
// with a Scratch: no channels, no goroutines, no per-run slices. Device
// results land directly in scratch order — facts.Devices is ascending by
// ID, so the report order matches the worker-pool path's sorted order
// and the two paths stay byte-identical (the sort below only runs for
// sources that renumber devices).
func (v *Validator) validateAllSeq(facts *metadata.Facts, source fib.Source) (*Report, error) {
	start := clock.Or(v.Clock).Now()
	gen := v.gen(facts)
	s := v.Scratch
	s.reps = s.reps[:0]
	s.errs = s.errs[:0]
	sorted := true
	for i := range facts.Devices {
		id := facts.Devices[i].ID
		tbl, err := source.Table(id)
		if err != nil {
			s.errs = append(s.errs, fmt.Errorf("rcdc: pulling table for device %d: %w", id, err))
			continue
		}
		dr, err := v.ValidateDevice(facts, tbl, gen.ForDevice(id))
		if err != nil {
			s.errs = append(s.errs, err)
			continue
		}
		if n := len(s.reps); n > 0 && s.reps[n-1].Device > dr.Device {
			sorted = false
		}
		s.reps = append(s.reps, dr)
	}
	if !sorted {
		sort.Slice(s.reps, func(i, j int) bool { return s.reps[i].Device < s.reps[j].Device })
	}
	rep := &s.rep
	*rep = Report{Workers: 1, Devices: s.reps}
	for i := range s.reps {
		rep.Checked += s.reps[i].Contracts
		rep.Failures += len(s.reps[i].Violations)
	}
	rep.Elapsed = clock.Since(v.Clock, start)
	v.Metrics.observeRun("full", rep, len(facts.Devices), busyTime(s.reps))
	return rep, errors.Join(s.errs...)
}

// ValidateDelta revalidates only the dirty devices (a blast-radius set
// from internal/delta) and splices the fresh results into prev, carrying
// every other device's result forward unchanged. The spliced report keeps
// the sorted-by-device order, so a delta report over an accurate dirty set
// is byte-identical to a from-scratch full sweep under a fixed clock — the
// determinism invariant the equivalence test locks.
//
// prev must be a complete report over the same device set (typically from
// ValidateAll or an earlier ValidateDelta); it is not mutated. gen may be
// nil for a transient generator, or a shared memoizing generator to
// amortize contract generation across repeated delta validations.
// Per-device failures degrade as in ValidateAll: a failed dirty device
// keeps its previous result, and the error return enumerates the failures.
func (v *Validator) ValidateDelta(prev *Report, facts *metadata.Facts, gen *contracts.Generator,
	source fib.Source, dirty []topology.DeviceID) (*Report, error) {
	if prev == nil {
		return nil, fmt.Errorf("rcdc: ValidateDelta requires a previous report")
	}
	sp := v.Tracer.Start("rcdc.ValidateDelta")
	defer sp.End()
	start := clock.Or(v.Clock).Now()
	if gen == nil {
		gen = v.gen(facts)
	}
	fresh, errs := v.validateSet(facts, gen, source, dirty)

	rep := &Report{Workers: v.workers()}
	rep.Devices = append([]DeviceReport(nil), prev.Devices...)
	pos := make(map[topology.DeviceID]int, len(rep.Devices))
	for i := range rep.Devices {
		pos[rep.Devices[i].Device] = i
	}
	for _, fr := range fresh {
		if i, ok := pos[fr.Device]; ok {
			rep.Devices[i] = fr
		} else {
			rep.Devices = append(rep.Devices, fr)
		}
	}
	sort.Slice(rep.Devices, func(i, j int) bool { return rep.Devices[i].Device < rep.Devices[j].Device })
	for i := range rep.Devices {
		rep.Checked += rep.Devices[i].Contracts
		rep.Failures += len(rep.Devices[i].Violations)
	}
	rep.Elapsed = clock.Since(v.Clock, start)
	v.Metrics.observeRun("delta", rep, len(dirty), busyTime(fresh))
	return rep, errors.Join(errs...)
}
