package rcdc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

// DeviceReport is the validation outcome for one device.
type DeviceReport struct {
	Device     topology.DeviceID
	Name       string
	Role       topology.Role
	Contracts  int
	Violations []Violation
	Elapsed    time.Duration
}

// Healthy reports whether the device passed all its contracts.
func (r *DeviceReport) Healthy() bool { return len(r.Violations) == 0 }

// Report aggregates a validation run over a set of devices.
type Report struct {
	Devices  []DeviceReport
	Elapsed  time.Duration
	Workers  int
	Checked  int // total contracts checked
	Failures int // total violations
}

// HighRisk returns the number of high-risk violations (§2.6.4).
func (r *Report) HighRisk() int {
	n := 0
	for i := range r.Devices {
		for _, v := range r.Devices[i].Violations {
			if v.Severity == HighRisk {
				n++
			}
		}
	}
	return n
}

// Violations flattens all violations across devices.
func (r *Report) Violations() []Violation {
	var out []Violation
	for i := range r.Devices {
		out = append(out, r.Devices[i].Violations...)
	}
	return out
}

// Validator runs local validation: each device is checked against its own
// contracts in isolation, so devices can be validated in parallel and no
// global snapshot is ever formed (§2.4).
type Validator struct {
	// Checker is the verification engine; defaults to TrieChecker.
	Checker Checker
	// Workers is the parallelism degree; 0 means GOMAXPROCS, 1 models the
	// paper's single-CPU measurements.
	Workers int
	// Clock times the per-device and whole-run measurements; nil means
	// the system clock. Tests inject a clock.Virtual for reproducible
	// Elapsed fields.
	Clock clock.Clock
}

func (v *Validator) checker() Checker {
	if v.Checker != nil {
		return v.Checker
	}
	return TrieChecker{}
}

// ValidateDevice checks one device's table against its contracts.
func (v *Validator) ValidateDevice(facts *metadata.Facts, tbl *fib.Table, dc contracts.DeviceContracts) (DeviceReport, error) {
	df := facts.Device(dc.Device)
	start := clock.Or(v.Clock).Now()
	viols, err := v.checker().CheckDevice(tbl, dc, df.Role)
	if err != nil {
		return DeviceReport{}, err
	}
	return DeviceReport{
		Device: dc.Device, Name: df.Name, Role: df.Role,
		Contracts: len(dc.Contracts), Violations: viols,
		Elapsed: clock.Since(v.Clock, start),
	}, nil
}

// ValidateAll checks every device, pulling each FIB from the source and
// generating its contracts on the fly. FIBs are not retained: memory stays
// O(one device) per worker regardless of datacenter size.
func (v *Validator) ValidateAll(facts *metadata.Facts, source fib.Source) (*Report, error) {
	gen := contracts.NewGenerator(facts)
	workers := v.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := clock.Or(v.Clock).Now()

	type result struct {
		rep DeviceReport
		err error
	}
	ids := make(chan topology.DeviceID)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				tbl, err := source.Table(id)
				if err != nil {
					results <- result{err: fmt.Errorf("rcdc: pulling table for device %d: %w", id, err)}
					continue
				}
				rep, err := v.ValidateDevice(facts, tbl, gen.ForDevice(id))
				results <- result{rep: rep, err: err}
			}
		}()
	}
	go func() {
		for i := range facts.Devices {
			ids <- facts.Devices[i].ID
		}
		close(ids)
		wg.Wait()
		close(results)
	}()

	rep := &Report{Workers: workers}
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		rep.Devices = append(rep.Devices, r.rep)
		rep.Checked += r.rep.Contracts
		rep.Failures += len(r.rep.Violations)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(rep.Devices, func(i, j int) bool { return rep.Devices[i].Device < rep.Devices[j].Device })
	rep.Elapsed = clock.Since(v.Clock, start)
	return rep, nil
}
