package rcdc

import (
	"bytes"
	"sync"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/topology"
)

// TestValidatorRaceStress hammers one Validator — high worker count, a
// small topology so runs are short and frequent — from many goroutines
// interleaving ValidateAll and ValidateDelta against a shared cached
// synth, a shared memoizing contract generator, and a shared metrics
// registry and tracer, while other goroutines concurrently read the
// registry's exposition. Its job is to give `make test-race` (which runs
// with -short, so no skip here) a workload covering every shared
// structure the observability layer added; correctness of the results is
// locked by a final deterministic counter check.
func TestValidatorRaceStress(t *testing.T) {
	topo := topology.MustNew(topology.Params{
		Clusters: 2, ToRsPerCluster: 3, LeavesPerCluster: 2,
		SpinesPerPlane: 1, RegionalSpines: 2, RSLinksPerSpine: 1,
		PrefixesPerToR: 1,
	})
	facts := metadata.FromTopology(topo)

	reg := obs.NewRegistry()
	gen := contracts.NewGenerator(facts)
	gen.EnableMemo()
	synth := bgp.NewSynth(topo, nil)
	synth.EnableTableCache()
	synth.Metrics = bgp.NewMetrics(reg)

	v := &Validator{Workers: 16, Metrics: NewMetrics(reg), Tracer: obs.NewTracer(nil, 64)}
	prev, err := v.ValidateAll(facts, synth)
	if err != nil {
		t.Fatal(err)
	}
	dirty := []topology.DeviceID{topo.ToRs()[0], topo.ToRs()[1], topo.ClusterLeaves(0)[0]}

	const goroutines, iters = 8, 4
	fullRuns, deltaRuns := 0, 0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < iters; i++ {
			if (g+i)%2 == 0 {
				fullRuns++
			} else {
				deltaRuns++
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (g+i)%2 == 0 {
					if _, err := v.ValidateAll(facts, synth); err != nil {
						t.Error(err)
					}
				} else {
					rep, err := v.ValidateDelta(prev, facts, gen, synth, dirty)
					if err != nil {
						t.Error(err)
					} else if len(rep.Devices) != len(prev.Devices) {
						t.Errorf("delta report covers %d devices, want %d",
							len(rep.Devices), len(prev.Devices))
					}
				}
				// Read the shared registry and tracer while runs are in
				// flight: the exposition path takes the same locks the
				// recording path does.
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
				}
				v.Tracer.Spans()
			}
		}(g)
	}
	wg.Wait()

	wantDevices := float64((1+fullRuns)*len(topo.Devices) + deltaRuns*len(dirty))
	for _, s := range reg.Snapshot() {
		if s.Name == "dcv_rcdc_devices_checked_total" {
			if s.Value != wantDevices {
				t.Fatalf("devices_checked_total = %v, want %v", s.Value, wantDevices)
			}
			return
		}
	}
	t.Fatal("dcv_rcdc_devices_checked_total missing from snapshot")
}
