package rcdc

import (
	"fmt"
	"math/rand"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

func TestFormalHealthyDatacenter(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := NewFormalChecker(topo)
	vs, err := f.CheckAll(bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("healthy datacenter fails §2.4.5 obligations: %v", vs)
	}
}

func TestFormalRanks(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := NewFormalChecker(topo)
	hps := topo.HostedPrefixes()
	hpA := hps[0] // cluster 0
	cases := []struct {
		dev  topology.DeviceID
		want int
	}{
		{hpA.ToR, 0},
		{topo.ClusterToRs(0)[1], 2},
		{topo.ClusterToRs(1)[0], 4},
		{topo.ClusterLeaves(0)[0], 1},
		{topo.ClusterLeaves(1)[0], 3},
		{topo.Spines()[0], 2},
		{topo.RegionalSpines()[0], 3},
	}
	for _, c := range cases {
		if got := f.Rank(c.dev, hpA); got != c.want {
			t.Errorf("Rank(%s) = %d, want %d", topo.Device(c.dev).Name, got, c.want)
		}
	}
}

// TestFormalRankDecreaseImpliesLoopFreedom: δ-validity of all FIBs implies
// every forwarding walk terminates at the hosting ToR in exactly δ steps —
// the §2.4.5 argument, checked against the global path tracer.
func TestFormalRankDecreaseImpliesLoopFreedom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 20; iter++ {
		p := topology.Params{
			Name:     fmt.Sprintf("f%d", iter),
			Clusters: 1 + rng.Intn(3), ToRsPerCluster: 1 + rng.Intn(3),
			LeavesPerCluster: 1 + rng.Intn(3), SpinesPerPlane: 1 + rng.Intn(2),
			RegionalSpines: 2, RSLinksPerSpine: 2,
		}
		topo := topology.MustNew(p)
		src := bgp.NewSynth(topo, nil)
		f := NewFormalChecker(topo)
		vs, err := f.CheckAll(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("iter %d: healthy DC has formal violations: %v", iter, vs)
		}
		// δ-valid ⇒ the global tracer sees exact shortest-path lengths.
		g, err := NewGlobalChecker(topo, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, hp := range topo.HostedPrefixes() {
			for _, src := range topo.ToRs() {
				if src == hp.ToR {
					continue
				}
				r := g.CheckPair(src, hp)
				want := f.Rank(src, hp)
				if !r.Reaches || r.MinHops != want || r.MaxHops != want {
					t.Fatalf("iter %d: pair %d->%v hops [%d,%d], δ=%d",
						iter, src, hp.Prefix, r.MinHops, r.MaxHops, want)
				}
			}
		}
	}
}

func TestFormalDetectsRankViolation(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := NewFormalChecker(topo)
	hps := topo.HostedPrefixes()
	tor1 := topo.ClusterToRs(0)[0]
	// A "route" from ToR1 for PrefixC pointing at another ToR: ranks 4 -> 4,
	// not a decrease.
	tbl := fib.NewTable(tor1)
	tbl.Add(fib.Entry{Prefix: hps[2].Prefix, NextHops: []topology.DeviceID{topo.ClusterToRs(0)[1]}})
	vs := f.CheckDevice(tbl)
	foundRank, foundCard := false, false
	for _, v := range vs {
		switch v.Kind {
		case "rank":
			foundRank = true
		case "cardinality":
			foundCard = true
		}
	}
	if !foundRank {
		t.Errorf("rank violation not detected: %v", vs)
	}
	// Fan-out 1 < LeavesPerCluster also fails the cardinality bound.
	if !foundCard {
		t.Errorf("cardinality violation not detected: %v", vs)
	}
}

func TestFormalDetectsMissingRoute(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor1 := topo.ClusterToRs(0)[0]
	topo.FailLink(tor1, topo.ClusterLeaves(0)[2])
	topo.FailLink(tor1, topo.ClusterLeaves(0)[3])
	topo.FailLink(topo.ClusterToRs(0)[1], topo.ClusterLeaves(0)[0])
	topo.FailLink(topo.ClusterToRs(0)[1], topo.ClusterLeaves(0)[1])
	f := NewFormalChecker(topo)
	vs, err := f.CheckAll(bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("Figure 3 failures produce no formal violations")
	}
	// ToR1 has no specific route for PrefixB: fan-out 0.
	hps := topo.HostedPrefixes()
	found := false
	for _, v := range vs {
		if v.Device == tor1 && v.Prefix == hps[1].Prefix && v.Kind == "cardinality" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing ToR1/PrefixB cardinality violation: %v", vs)
	}
}

// TestFormalAgreesWithContracts: on random failure scenarios, the formal
// checker and the contract checker agree on whether the datacenter is
// fully healthy (both are complete local characterizations of the intact
// intent).
func TestFormalAgreesWithContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 30; iter++ {
		topo := topology.MustNew(topology.Figure3Params())
		nf := rng.Intn(3)
		for i := 0; i < nf; i++ {
			topo.Links[rng.Intn(len(topo.Links))].Up = false
		}
		src := bgp.NewSynth(topo, nil)
		facts := metadata.FromTopology(topo)
		v := Validator{Workers: 1}
		rep, err := v.ValidateAll(facts, src)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFormalChecker(topo)
		fvs, err := f.CheckAll(src)
		if err != nil {
			t.Fatal(err)
		}
		// Contracts also police the default route, which the formal model
		// does not; so formal-clean may still have contract violations,
		// but contract-clean must be formal-clean.
		if rep.Failures == 0 && len(fvs) != 0 {
			t.Fatalf("iter %d: contracts clean but formal violations: %v", iter, fvs)
		}
	}
}

func TestFormalViolationString(t *testing.T) {
	v := FormalViolation{Device: 3, Kind: "rank", Detail: "x"}
	if v.String() == "" {
		t.Error("empty string")
	}
}
