package rcdc

import (
	"errors"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

// reportsEquivalent compares two reports ignoring timing fields.
func reportsEquivalent(t *testing.T, got, want *Report) {
	t.Helper()
	if got.Checked != want.Checked || got.Failures != want.Failures {
		t.Fatalf("totals differ: checked %d/%d failures %d/%d",
			got.Checked, want.Checked, got.Failures, want.Failures)
	}
	if len(got.Devices) != len(want.Devices) {
		t.Fatalf("device counts differ: %d vs %d", len(got.Devices), len(want.Devices))
	}
	for i := range got.Devices {
		g, w := got.Devices[i], want.Devices[i]
		if g.Device != w.Device || g.Name != w.Name || g.Role != w.Role ||
			g.Contracts != w.Contracts || len(g.Violations) != len(w.Violations) {
			t.Fatalf("device %d differs:\n got %+v\nwant %+v", i, g, w)
		}
		for j := range g.Violations {
			if g.Violations[j].String() != w.Violations[j].String() {
				t.Fatalf("device %d violation %d differs: %s vs %s",
					i, j, g.Violations[j], w.Violations[j])
			}
		}
	}
}

func TestValidateAllReturnsPartialReportOnError(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	bad := topo.ToRs()[1]
	src := failingSource{inner: bgp.NewSynth(topo, nil), bad: bad}
	v := Validator{Workers: 4}
	rep, err := v.ValidateAll(facts, src)
	if err == nil || !errors.Is(err, errPull) {
		t.Fatalf("err = %v, want wrapped errPull", err)
	}
	if rep == nil {
		t.Fatal("partial report must be returned alongside the error")
	}
	if got, want := len(rep.Devices), len(topo.Devices)-1; got != want {
		t.Fatalf("partial report covers %d devices, want %d", got, want)
	}
	for _, dr := range rep.Devices {
		if dr.Device == bad {
			t.Fatal("failed device must not appear in the partial report")
		}
	}
}

func TestValidateDeltaMatchesFullSweep(t *testing.T) {
	topo := topology.MustNew(topology.Params{
		Clusters: 3, ToRsPerCluster: 4, LeavesPerCluster: 2,
		SpinesPerPlane: 2, RegionalSpines: 4, RSLinksPerSpine: 2,
		PrefixesPerToR: 1,
	})
	facts := metadata.FromTopology(topo)
	v := Validator{Workers: 2}
	prev, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}

	gen := topo.Generation()
	topo.FailLink(topo.ClusterLeaves(0)[0], topo.Spines()[0])
	changes, ok := topo.ChangesSince(gen)
	if !ok {
		t.Fatal("journal truncated")
	}
	ds := delta.Compute(topo, changes, delta.Options{})
	if ds.Full() {
		t.Fatal("expected a bounded blast radius")
	}

	src := bgp.NewSynth(topo, nil)
	got, err := v.ValidateDelta(prev, facts, nil, src, ds.Devices())
	if err != nil {
		t.Fatal(err)
	}
	want, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	reportsEquivalent(t, got, want)
}

func TestValidateDeltaRequiresPrev(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	v := Validator{Workers: 1}
	if _, err := v.ValidateDelta(nil, facts, nil, bgp.NewSynth(topo, nil), nil); err == nil {
		t.Fatal("nil prev must error")
	}
}

func TestValidateDeltaKeepsPrevResultOnError(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	v := Validator{Workers: 2}
	prev, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	bad := topo.ToRs()[0]
	src := failingSource{inner: bgp.NewSynth(topo, nil), bad: bad}
	gen := contracts.NewGenerator(facts)
	rep, err := v.ValidateDelta(prev, facts, gen, src, []topology.DeviceID{bad})
	if err == nil || !errors.Is(err, errPull) {
		t.Fatalf("err = %v, want wrapped errPull", err)
	}
	if len(rep.Devices) != len(prev.Devices) {
		t.Fatalf("report covers %d devices, want %d", len(rep.Devices), len(prev.Devices))
	}
	found := false
	for _, dr := range rep.Devices {
		if dr.Device == bad {
			found = true
		}
	}
	if !found {
		t.Fatal("failed dirty device must keep its previous result")
	}
}
