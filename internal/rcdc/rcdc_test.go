package rcdc

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

func healthyFig3(t *testing.T) (*topology.Topology, *metadata.Facts, fib.Source) {
	t.Helper()
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	return topo, facts, bgp.NewSynth(topo, nil)
}

func validateAll(t *testing.T, facts *metadata.Facts, src fib.Source, ck Checker) *Report {
	t.Helper()
	v := Validator{Checker: ck}
	rep, err := v.ValidateAll(facts, src)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestHealthyDatacenterHasNoViolations(t *testing.T) {
	_, facts, src := healthyFig3(t)
	for _, ck := range []Checker{TrieChecker{}, SMTChecker{}} {
		rep := validateAll(t, facts, src, ck)
		if rep.Failures != 0 {
			t.Errorf("%T: healthy datacenter has %d violations: %v",
				ck, rep.Failures, rep.Violations())
		}
		if rep.Checked != 92 {
			t.Errorf("%T: checked %d contracts, want 92", ck, rep.Checked)
		}
	}
}

// TestFigure3Scenario is experiment E5: the four link failures of Figure 3
// must produce exactly the violation set §2.4.4 describes.
func TestFigure3Scenario(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	hps := topo.HostedPrefixes()
	prefixA, prefixB := hps[0].Prefix, hps[1].Prefix
	tor1, tor2 := topo.ClusterToRs(0)[0], topo.ClusterToRs(0)[1]
	leavesA := topo.ClusterLeaves(0)
	spines := topo.Spines()
	topo.FailLink(tor1, leavesA[2])
	topo.FailLink(tor1, leavesA[3])
	topo.FailLink(tor2, leavesA[0])
	topo.FailLink(tor2, leavesA[1])

	facts := metadata.FromTopology(topo)
	src := bgp.NewSynth(topo, nil)

	for _, ck := range []Checker{TrieChecker{}, SMTChecker{}} {
		rep := validateAll(t, facts, src, ck)

		type key struct {
			dev topology.DeviceID
			pfx ipnet.Prefix
		}
		got := map[key]ViolationKind{}
		for _, v := range rep.Violations() {
			got[key{v.Device, v.Contract.Prefix}] = v.Kind
		}

		// §2.4.4: ToR1, A1, A2, D1, D2 fail for PrefixB (missing specific
		// route); ToR2, A3, A4, D3, D4 fail for PrefixA; both ToRs fail
		// their default contract with 2 of 4 hops. The paper enumerates
		// the cluster-A side; by the same rule the cluster-B leaves behind
		// the affected spines (B1, B2 for PrefixB; B3, B4 for PrefixA)
		// also lack the specific route — RCDC reports the complete set.
		leavesB := topo.ClusterLeaves(1)
		wantMissing := []key{
			{tor1, prefixB}, {leavesA[0], prefixB}, {leavesA[1], prefixB},
			{spines[0], prefixB}, {spines[1], prefixB},
			{leavesB[0], prefixB}, {leavesB[1], prefixB},
			{tor2, prefixA}, {leavesA[2], prefixA}, {leavesA[3], prefixA},
			{spines[2], prefixA}, {spines[3], prefixA},
			{leavesB[2], prefixA}, {leavesB[3], prefixA},
		}
		for _, k := range wantMissing {
			kind, ok := got[k]
			if !ok {
				t.Errorf("%T: expected violation for dev %s prefix %v",
					ck, topo.Device(k.dev).Name, k.pfx)
				continue
			}
			if kind != MissingRoute && kind != WrongNextHops {
				t.Errorf("%T: dev %s prefix %v kind = %v", ck, topo.Device(k.dev).Name, k.pfx, kind)
			}
			delete(got, k)
		}
		for _, tor := range []topology.DeviceID{tor1, tor2} {
			k := key{tor, ipnet.Prefix{}}
			if kind, ok := got[k]; !ok || kind != DefaultMismatch {
				t.Errorf("%T: ToR %s default violation missing or wrong kind", ck, topo.Device(tor).Name)
			}
			delete(got, k)
		}
		// §2.4.4: "R1, R2, D3, D4, A3, A4 have no contract failures for
		// PrefixB" — and no other violations exist beyond the leaf
		// specific contracts toward the now-unreachable ToRs (leaves
		// expect direct ToR next hops; with the link down those contracts
		// fail too) — enumerate the full remainder precisely:
		// A3/A4 contract PrefixA -> ToR1 dead link; A1/A2 PrefixB -> ToR2.
		wantLeafDirect := []key{
			{leavesA[0], prefixB}, {leavesA[1], prefixB},
			{leavesA[2], prefixA}, {leavesA[3], prefixA},
		}
		_ = wantLeafDirect // already consumed above via wantMissing
		for k, kind := range got {
			t.Errorf("%T: unexpected extra violation dev=%s pfx=%v kind=%v",
				ck, topo.Device(k.dev).Name, k.pfx, kind)
		}
		// The R devices are clean, so the longer detour route exists.
		for _, rs := range topo.RegionalSpines() {
			for _, v := range rep.Violations() {
				if v.Device == rs {
					t.Errorf("%T: regional spine %s has violation %v", ck, topo.Device(rs).Name, v)
				}
			}
		}
	}
}

func TestDefaultContractViolationDetail(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor1 := topo.ClusterToRs(0)[0]
	leavesA := topo.ClusterLeaves(0)
	topo.FailLink(tor1, leavesA[2])
	topo.FailLink(tor1, leavesA[3])
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	tbl, _ := bgp.NewSynth(topo, nil).Table(tor1)
	v := Validator{}
	rep, err := v.ValidateDevice(facts, tbl, gen.ForDevice(tor1))
	if err != nil {
		t.Fatal(err)
	}
	var def *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Contract.Kind == contracts.Default {
			def = &rep.Violations[i]
		}
	}
	if def == nil {
		t.Fatal("no default violation")
	}
	if def.Kind != DefaultMismatch || def.Remaining != 2 {
		t.Errorf("default violation = %+v", def)
	}
	if len(def.Missing) != 2 || def.Missing[0] != leavesA[2] || def.Missing[1] != leavesA[3] {
		t.Errorf("missing = %v", def.Missing)
	}
	if len(def.Unexpected) != 0 {
		t.Errorf("unexpected = %v", def.Unexpected)
	}
}

func TestSeverityClassification(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	tor1 := topo.ClusterToRs(0)[0]
	leavesA := topo.ClusterLeaves(0)
	// Leave the ToR a single default next hop: one more fault isolates it.
	topo.FailLink(tor1, leavesA[1])
	topo.FailLink(tor1, leavesA[2])
	topo.FailLink(tor1, leavesA[3])
	facts := metadata.FromTopology(topo)
	rep := validateAll(t, facts, bgp.NewSynth(topo, nil), TrieChecker{})

	var torDefault, spineSpecific, leafSpecific *Violation
	for _, v := range rep.Violations() {
		v := v
		switch {
		case v.Device == tor1 && v.Contract.Kind == contracts.Default:
			torDefault = &v
		case topo.Device(v.Device).Role == topology.RoleSpine:
			spineSpecific = &v
		case topo.Device(v.Device).Role == topology.RoleLeaf:
			leafSpecific = &v
		}
	}
	if torDefault == nil || torDefault.Severity != HighRisk {
		t.Errorf("single-hop ToR default should be high risk: %+v", torDefault)
	}
	if spineSpecific == nil || spineSpecific.Severity != HighRisk {
		t.Errorf("spine violation should be high risk: %+v", spineSpecific)
	}
	if leafSpecific == nil || leafSpecific.Severity != LowRisk {
		t.Errorf("leaf specific violation should be low risk: %+v", leafSpecific)
	}
}

func TestMissingDefaultRoute(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	leaf := topo.ClusterLeaves(0)[0]
	cfg := map[topology.DeviceID]*bgp.DeviceConfig{leaf: {RejectDefaultIn: true}}
	facts := metadata.FromTopology(topo)
	rep := validateAll(t, facts, bgp.NewSynth(topo, cfg), TrieChecker{})
	found := false
	for _, v := range rep.Violations() {
		if v.Device == leaf && v.Kind == MissingDefault {
			found = true
			if v.Severity != HighRisk {
				t.Error("missing default should be high risk")
			}
		}
	}
	if !found {
		t.Error("MissingDefault not reported")
	}
}

// TestTrieVsSMTRandom cross-checks the two verification engines per
// contract on randomized tables: they must agree on which contracts are
// violated.
func TestTrieVsSMTRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		p := topology.Params{
			Name:             fmt.Sprintf("x%d", iter),
			Clusters:         1 + rng.Intn(2),
			ToRsPerCluster:   1 + rng.Intn(3),
			LeavesPerCluster: 1 + rng.Intn(3),
			SpinesPerPlane:   1 + rng.Intn(2),
			RegionalSpines:   2,
			RSLinksPerSpine:  1 + rng.Intn(2),
		}
		if p.RegionalSpines%p.RSLinksPerSpine != 0 {
			p.RSLinksPerSpine = 1
		}
		topo := topology.MustNew(p)
		for i := range topo.Links {
			if rng.Intn(6) == 0 {
				topo.Links[i].Up = false
			}
		}
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)
		gen := contracts.NewGenerator(facts)

		for id := range topo.Devices {
			d := topology.DeviceID(id)
			tbl, err := src.Table(d)
			if err != nil {
				t.Fatal(err)
			}
			dc := gen.ForDevice(d)
			role := topo.Device(d).Role
			tv, err := (TrieChecker{}).CheckDevice(tbl, dc, role)
			if err != nil {
				t.Fatal(err)
			}
			sv, err := (SMTChecker{Workers: 1}).CheckDevice(tbl, dc, role)
			if err != nil {
				t.Fatal(err)
			}
			if !sameViolatedContracts(tv, sv) {
				t.Fatalf("iter %d dev %s: engines disagree\ntrie: %v\nsmt:  %v",
					iter, topo.Device(d).Name, tv, sv)
			}
			// The parallel fan-out must report the same violated-contract
			// set as both the sequential SMT path and the trie oracle
			// (witness details may differ; the contract set may not).
			// Workers=4 forces true chunked fan-out regardless of
			// GOMAXPROCS on the test host.
			pv, err := (SMTChecker{Workers: 4}).CheckDevice(tbl, dc, role)
			if err != nil {
				t.Fatal(err)
			}
			if !sameViolatedContracts(tv, pv) {
				t.Fatalf("iter %d dev %s: parallel SMT disagrees with trie\ntrie: %v\npar:  %v",
					iter, topo.Device(d).Name, tv, pv)
			}
		}
	}
}

func sameViolatedContracts(a, b []Violation) bool {
	set := func(vs []Violation) []string {
		var out []string
		seen := map[string]bool{}
		for _, v := range vs {
			k := fmt.Sprintf("%d|%v", v.Device, v.Contract.Prefix)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	x, y := set(a), set(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestSubsetVsExactModes: the default (paper) semantics does not flag a
// specific route that lost redundant hops but still forwards correctly;
// the Exact variant of §2.5.1 does.
func TestSubsetVsExactModes(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	tor1 := topo.ClusterToRs(0)[0]
	dc := gen.ForDevice(tor1)
	leaves := topo.ClusterLeaves(0)

	// Table whose PrefixB route uses only 2 of 4 leaves: subset mode must
	// NOT flag it, exact mode must.
	hps := topo.HostedPrefixes()
	tbl := fib.NewTable(tor1)
	tbl.Add(fib.Entry{Prefix: ipnet.Prefix{}, NextHops: leaves})
	tbl.Add(fib.Entry{Prefix: hps[1].Prefix, NextHops: leaves[:2]})
	tbl.Add(fib.Entry{Prefix: hps[2].Prefix, NextHops: leaves})
	tbl.Add(fib.Entry{Prefix: hps[3].Prefix, NextHops: leaves})

	for _, ck := range []Checker{SMTChecker{}, TrieChecker{}} {
		sub, err := ck.CheckDevice(tbl, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != 0 {
			t.Errorf("%T subset mode flagged lost redundancy: %v", ck, sub)
		}
	}
	for _, ck := range []Checker{SMTChecker{Exact: true}, TrieChecker{Exact: true}} {
		exact, err := ck.CheckDevice(tbl, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) != 1 || exact[0].Contract.Prefix != hps[1].Prefix {
			t.Errorf("%T exact mode = %v", ck, exact)
		}
	}

	// A route through an unexpected next hop must be flagged in both modes.
	tbl2 := fib.NewTable(tor1)
	tbl2.Add(fib.Entry{Prefix: ipnet.Prefix{}, NextHops: leaves})
	wrong := append(append([]topology.DeviceID{}, leaves...), topo.ClusterToRs(0)[1])
	tbl2.Add(fib.Entry{Prefix: hps[1].Prefix, NextHops: wrong})
	tbl2.Add(fib.Entry{Prefix: hps[2].Prefix, NextHops: leaves})
	tbl2.Add(fib.Entry{Prefix: hps[3].Prefix, NextHops: leaves})
	for _, ck := range []Checker{SMTChecker{}, TrieChecker{}, SMTChecker{Exact: true}, TrieChecker{Exact: true}} {
		vs, err := ck.CheckDevice(tbl2, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || vs[0].Kind != WrongNextHops {
			t.Errorf("%+v missed unexpected hop: %v", ck, vs)
		}
	}
}

// TestTrieCheckerSubRoutes exercises LPM subtleties: a more-specific rule
// inside a contract range with deviating next hops must be flagged even if
// a correct covering route exists.
func TestTrieCheckerSubRoutes(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	tor1 := topo.ClusterToRs(0)[0]
	leaves := topo.ClusterLeaves(0)
	hps := topo.HostedPrefixes()
	dc := gen.ForDevice(tor1)

	tbl := fib.NewTable(tor1)
	tbl.Add(fib.Entry{Prefix: ipnet.Prefix{}, NextHops: leaves})
	for _, hp := range hps[1:] {
		tbl.Add(fib.Entry{Prefix: hp.Prefix, NextHops: leaves})
	}
	// Hijack half of PrefixB toward a spine (not an expected hop) via a /25.
	sub := ipnet.PrefixFrom(hps[1].Prefix.Addr, 25)
	tbl.Add(fib.Entry{Prefix: sub, NextHops: []topology.DeviceID{topo.Spines()[0]}})

	for _, ck := range []Checker{TrieChecker{}, SMTChecker{}} {
		vs, err := ck.CheckDevice(tbl, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || vs[0].Contract.Prefix != hps[1].Prefix {
			t.Fatalf("%T: violations = %v", ck, vs)
		}
		if ck, isTrie := ck.(TrieChecker); isTrie {
			_ = ck
			if vs[0].RulePrefix != sub || vs[0].Kind != WrongNextHops {
				t.Errorf("trie violation detail = %+v", vs[0])
			}
		}
	}
}

// TestTriePartialCoverage: specific coverage of only part of the contract
// range is a MissingRoute violation.
func TestTriePartialCoverage(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	tor1 := topo.ClusterToRs(0)[0]
	leaves := topo.ClusterLeaves(0)
	hps := topo.HostedPrefixes()
	dc := contracts.DeviceContracts{Device: tor1}
	for _, c := range gen.ForDevice(tor1).Contracts {
		if c.Prefix == hps[1].Prefix {
			dc.Contracts = append(dc.Contracts, c)
		}
	}

	tbl := fib.NewTable(tor1)
	tbl.Add(fib.Entry{Prefix: ipnet.Prefix{}, NextHops: leaves})
	// Only half the range has a (correct) specific route.
	tbl.Add(fib.Entry{Prefix: ipnet.PrefixFrom(hps[1].Prefix.Addr, 25), NextHops: leaves})

	for _, ck := range []Checker{TrieChecker{}, SMTChecker{}} {
		vs, err := ck.CheckDevice(tbl, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 {
			t.Fatalf("%T: violations = %v", ck, vs)
		}
		if ck, isTrie := ck.(TrieChecker); isTrie {
			_ = ck
			if vs[0].Kind != MissingRoute {
				t.Errorf("kind = %v, want MissingRoute", vs[0].Kind)
			}
		}
	}

	// Two /25s with correct hops fully cover the /24: no violation.
	l, r := hps[1].Prefix.Children()
	tbl2 := fib.NewTable(tor1)
	tbl2.Add(fib.Entry{Prefix: ipnet.Prefix{}, NextHops: leaves})
	tbl2.Add(fib.Entry{Prefix: l, NextHops: leaves})
	tbl2.Add(fib.Entry{Prefix: r, NextHops: leaves})
	for _, ck := range []Checker{TrieChecker{}, SMTChecker{}} {
		vs, err := ck.CheckDevice(tbl2, dc, topology.RoleToR)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("%T: split coverage flagged: %v", ck, vs)
		}
	}
}

func TestValidateAllParallelMatchesSerial(t *testing.T) {
	topo := topology.MustNew(topology.Params{
		Clusters: 3, ToRsPerCluster: 4, LeavesPerCluster: 3,
		SpinesPerPlane: 2, RegionalSpines: 2, RSLinksPerSpine: 2,
	})
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	facts := metadata.FromTopology(topo)
	src := bgp.NewSynth(topo, nil)
	serial := Validator{Workers: 1}
	parallel := Validator{Workers: 8}
	rs, err := serial.ValidateAll(facts, src)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ValidateAll(facts, src)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != rp.Failures || rs.Checked != rp.Checked {
		t.Errorf("serial %d/%d vs parallel %d/%d",
			rs.Failures, rs.Checked, rp.Failures, rp.Checked)
	}
	if len(rs.Devices) != len(rp.Devices) {
		t.Fatal("device report counts differ")
	}
	for i := range rs.Devices {
		if rs.Devices[i].Device != rp.Devices[i].Device ||
			len(rs.Devices[i].Violations) != len(rp.Devices[i].Violations) {
			t.Errorf("device %d reports differ", i)
		}
	}
}

func TestGlobalCheckerHealthy(t *testing.T) {
	topo, _, src := healthyFig3(t)
	g, err := NewGlobalChecker(topo, src)
	if err != nil {
		t.Fatal(err)
	}
	if fails := g.Check(FullRedundancy); len(fails) != 0 {
		t.Errorf("healthy datacenter fails global check: %v", fails)
	}
	if g.Pairs() != 4*3 {
		t.Errorf("Pairs = %d", g.Pairs())
	}
	// Spot-check path shapes.
	hps := topo.HostedPrefixes()
	intra := g.CheckPair(topo.ClusterToRs(0)[0], hps[1])
	if !intra.Reaches || intra.MinHops != 2 || intra.Paths != 4 {
		t.Errorf("intra pair = %+v", intra)
	}
	inter := g.CheckPair(topo.ClusterToRs(0)[0], hps[2])
	if !inter.Reaches || inter.MinHops != 4 || inter.Paths != 4 {
		t.Errorf("inter pair = %+v", inter)
	}
}

func TestGlobalCheckerDetectsDetour(t *testing.T) {
	// The Figure 3 failures leave reachability intact (via the R detour)
	// but break shortest paths: the global checker distinguishes levels.
	topo := topology.MustNew(topology.Figure3Params())
	tor1, tor2 := topo.ClusterToRs(0)[0], topo.ClusterToRs(0)[1]
	leavesA := topo.ClusterLeaves(0)
	topo.FailLink(tor1, leavesA[2])
	topo.FailLink(tor1, leavesA[3])
	topo.FailLink(tor2, leavesA[0])
	topo.FailLink(tor2, leavesA[1])
	g, err := NewGlobalChecker(topo, bgp.NewSynth(topo, nil))
	if err != nil {
		t.Fatal(err)
	}
	if fails := g.Check(Reachability); len(fails) != 0 {
		t.Errorf("reachability should survive (detour via R): %v", fails)
	}
	fails := g.Check(ShortestPaths)
	if len(fails) == 0 {
		t.Error("shortest-path check should fail")
	}
	// ToR1 -> PrefixB goes up to the regional spine and back: 6 hops.
	hps := topo.HostedPrefixes()
	r := g.CheckPair(tor1, hps[1])
	if !r.Reaches || r.MinHops != 6 {
		t.Errorf("detour pair = %+v", r)
	}
}

// TestClaim1 is E14: on random topologies with random failures, zero local
// violations must imply the full global intent (local ⇒ global), and a
// failing global intent must imply some local violation (contrapositive).
func TestClaim1(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	checkedHealthy := 0
	for iter := 0; iter < 60; iter++ {
		p := topology.Params{
			Name:             fmt.Sprintf("c1-%d", iter),
			Clusters:         1 + rng.Intn(3),
			ToRsPerCluster:   1 + rng.Intn(3),
			LeavesPerCluster: 1 + rng.Intn(3),
			SpinesPerPlane:   1 + rng.Intn(2),
			RegionalSpines:   2,
			RSLinksPerSpine:  2,
		}
		topo := topology.MustNew(p)
		// Sometimes healthy, sometimes a few failures.
		nf := rng.Intn(3)
		for i := 0; i < nf; i++ {
			l := rng.Intn(len(topo.Links))
			topo.Links[l].Up = false
		}
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)
		rep := validateAll(t, facts, src, TrieChecker{})
		g, err := NewGlobalChecker(topo, src)
		if err != nil {
			t.Fatal(err)
		}
		fails := g.Check(FullRedundancy)
		if rep.Failures == 0 {
			checkedHealthy++
			if len(fails) != 0 {
				t.Fatalf("iter %d: Claim 1 violated: no local violations but global fails: %v (%+v)",
					iter, fails, p)
			}
		}
		if len(fails) > 0 && rep.Failures == 0 {
			t.Fatalf("iter %d: global failure with clean local validation", iter)
		}
	}
	if checkedHealthy == 0 {
		t.Error("no healthy samples exercised Claim 1")
	}
}

func TestViolationStrings(t *testing.T) {
	v := Violation{
		Device:   3,
		Contract: contracts.Contract{Kind: contracts.Specific, Prefix: ipnet.MustParsePrefix("10.0.0.0/24")},
		Kind:     WrongNextHops, Severity: HighRisk,
		Missing: []topology.DeviceID{1}, Unexpected: []topology.DeviceID{2},
	}
	s := v.String()
	for _, want := range []string{"10.0.0.0/24", "wrong-next-hops", "high", "missing", "unexpected"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	for _, k := range []ViolationKind{MissingRoute, WrongNextHops, DefaultMismatch, MissingDefault} {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && (s[:len(sub)] == sub || contains(s[1:], sub))))
}
