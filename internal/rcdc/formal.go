package rcdc

import (
	"fmt"

	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// This file implements the abstract local-validation formalism of §2.4.5:
// policies P_v : H → 2^(H×V) are validated against a ranking function
// δ : H×V → ℕ (think time-to-live) and a cardinality bound C : H×V → ℕ
// such that
//
//	(h', v') ∈ P_v(h) ⇒ δ(h,v) > δ(h',v'),
//	δ(h,v) = 0 ⇒ v is the intended destination of h,
//	δ(h,v) > 0 ⇒ C(h,v) > 0 and |{v' : (h',v') ∈ P_v(h)}| ≥ C(h,v).
//
// δ-decrease makes forwarding loop-free by construction and pins path
// lengths (every step reduces the rank by exactly one here), and the
// cardinality bound expresses the ECMP redundancy requirement. The checker
// below instantiates δ and C from the Clos architecture and validates each
// device's FIB against them — a second, independently-derived notion of
// local correctness used to cross-check the contract-based checker.

// Rank is δ(prefix, device): the number of forwarding steps to the hosting
// ToR along intended paths, or -1 when the device is not on any intended
// path for the prefix.
func (f *FormalChecker) Rank(d topology.DeviceID, hp topology.HostedPrefix) int {
	dev := f.topo.Device(d)
	switch dev.Role {
	case topology.RoleToR:
		if hp.ToR == d {
			return 0
		}
		if dev.Cluster == hp.Cluster {
			return 2
		}
		return 4
	case topology.RoleLeaf:
		if dev.Cluster == hp.Cluster {
			return 1
		}
		return 3
	case topology.RoleSpine:
		return 2
	case topology.RoleRegionalSpine:
		return 3
	}
	return -1
}

// Cardinality is C(prefix, device): the minimum ECMP fan-out the
// architecture promises at each rank (maximal redundancy under healthy
// state; the checker may be configured with MinFraction < 1 to tolerate a
// redundancy budget).
func (f *FormalChecker) Cardinality(d topology.DeviceID, hp topology.HostedPrefix) int {
	dev := f.topo.Device(d)
	p := f.topo.Params
	switch dev.Role {
	case topology.RoleToR:
		if hp.ToR == d {
			return 0
		}
		return p.LeavesPerCluster
	case topology.RoleLeaf:
		if dev.Cluster == hp.Cluster {
			return 1
		}
		return p.SpinesPerPlane
	case topology.RoleSpine:
		return 1
	case topology.RoleRegionalSpine:
		// Spines connect to RS groups round-robin: spine k attaches to RS
		// group k mod groups, so this RS sees every spine whose index is
		// congruent to its own group.
		groups := p.RegionalSpines / p.RSLinksPerSpine
		nSpines := p.LeavesPerCluster * p.SpinesPerPlane
		g := dev.Index % groups
		return (nSpines - g + groups - 1) / groups
	}
	return 0
}

// FormalViolation is one failed §2.4.5 obligation.
type FormalViolation struct {
	Device topology.DeviceID
	Prefix ipnet.Prefix
	// Kind is "rank" when some next hop does not strictly decrease δ,
	// "cardinality" when the fan-out is below C.
	Kind    string
	Detail  string
	NextHop topology.DeviceID
}

func (v FormalViolation) String() string {
	return fmt.Sprintf("dev=%d prefix=%v %s: %s", v.Device, v.Prefix, v.Kind, v.Detail)
}

// FormalChecker validates FIBs against the §2.4.5 obligations.
type FormalChecker struct {
	topo *topology.Topology
	// byPrefix maps each hosted prefix to its facts.
	byPrefix map[ipnet.Prefix]topology.HostedPrefix
}

// NewFormalChecker builds the checker for a topology.
func NewFormalChecker(topo *topology.Topology) *FormalChecker {
	f := &FormalChecker{topo: topo, byPrefix: map[ipnet.Prefix]topology.HostedPrefix{}}
	for _, hp := range topo.HostedPrefixes() {
		f.byPrefix[hp.Prefix] = hp
	}
	return f
}

// CheckDevice validates one device's FIB: every specific route's next hops
// must strictly decrease δ (by exactly one — shortest paths), and the
// fan-out must meet the cardinality bound.
func (f *FormalChecker) CheckDevice(tbl *fib.Table) []FormalViolation {
	var out []FormalViolation
	d := tbl.Device
	for i := range tbl.Entries {
		e := &tbl.Entries[i]
		if e.Connected || e.Prefix.IsDefault() {
			continue
		}
		hp, ok := f.byPrefix[e.Prefix]
		if !ok {
			continue // not a hosted VLAN prefix (out of model)
		}
		rank := f.Rank(d, hp)
		if rank <= 0 {
			continue
		}
		for _, nh := range e.NextHops {
			nrank := f.Rank(nh, hp)
			if nrank < 0 || nrank != rank-1 {
				out = append(out, FormalViolation{
					Device: d, Prefix: e.Prefix, Kind: "rank", NextHop: nh,
					Detail: fmt.Sprintf("next hop %d has δ=%d, need %d", nh, nrank, rank-1),
				})
			}
		}
		if want := f.Cardinality(d, hp); len(e.NextHops) < want {
			out = append(out, FormalViolation{
				Device: d, Prefix: e.Prefix, Kind: "cardinality",
				Detail: fmt.Sprintf("fan-out %d < C=%d", len(e.NextHops), want),
			})
		}
	}
	return out
}

// CheckAll validates every device from a source and additionally requires
// that each device carries a specific route for every prefix it is ranked
// for (absence is a trivially failed cardinality bound: |∅| < C).
func (f *FormalChecker) CheckAll(source fib.Source) ([]FormalViolation, error) {
	var out []FormalViolation
	prefixes := f.topo.HostedPrefixes()
	for i := range f.topo.Devices {
		d := topology.DeviceID(i)
		tbl, err := source.Table(d)
		if err != nil {
			return nil, err
		}
		out = append(out, f.CheckDevice(tbl)...)
		for _, hp := range prefixes {
			if f.Rank(d, hp) <= 0 || f.Cardinality(d, hp) == 0 {
				continue
			}
			if _, ok := tbl.Get(hp.Prefix); !ok {
				out = append(out, FormalViolation{
					Device: d, Prefix: hp.Prefix, Kind: "cardinality",
					Detail: "no specific route (fan-out 0)",
				})
			}
		}
	}
	return out, nil
}
