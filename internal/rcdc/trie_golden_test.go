package rcdc

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTrieReportGolden pins the trie engine's full-fleet report
// byte-for-byte against testdata/trie_report.golden on a fixed scenario:
// the Figure 3 topology with a failed ToR-leaf link, a session shutdown,
// and a policy misconfiguration, on a virtual clock so no timing leaks
// into the bytes. The walk-scratch pooling and slab-allocated trie nodes
// were introduced under this pin — any future allocation-path change
// that alters a verdict, an ordering, or a hop-set diff fails here.
// Regenerate with `go test ./internal/rcdc -run Golden -update`.
func TestTrieReportGolden(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	cfg := map[topology.DeviceID]*bgp.DeviceConfig{
		topo.ToRs()[1]:           {MaxECMPPaths: 1},
		topo.ClusterLeaves(1)[0]: {RejectDefaultIn: true},
		topo.ClusterLeaves(1)[1]: {SessionsDisabled: true},
	}
	facts := metadata.FromTopology(topo)
	synth := bgp.NewSynth(topo, cfg)
	v := Validator{Workers: 2, Clock: clock.NewVirtual(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))}
	rep, err := v.ValidateAll(facts, synth)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "devices=%d checked=%d failures=%d highrisk=%d\n",
		len(rep.Devices), rep.Checked, rep.Failures, rep.HighRisk())
	for i := range rep.Devices {
		d := &rep.Devices[i]
		if d.Healthy() {
			continue
		}
		fmt.Fprintf(&buf, "dev=%d name=%s role=%s contracts=%d\n", d.Device, d.Name, d.Role, d.Contracts)
		for _, viol := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", viol.String())
		}
	}

	path := filepath.Join("testdata", "trie_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trie report drifted from golden (run with -update to accept)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
