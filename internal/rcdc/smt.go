package rcdc

import (
	"fmt"
	"runtime"
	"sync"

	"dcvalidate/internal/bv"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// SMTChecker is the bit-vector-logic verification engine of §2.5.1. The
// routing policy is encoded per Definition 2.1 as a nested if-then-else
// over prefix-range predicates, with one Boolean variable per next-hop
// interface; a contract check is a satisfiability query discharged to the
// internal/bv + internal/sat pipeline (the Z3 substitute).
//
// It is the default, fully general engine ("flexible query language,
// performance within a second per routing table"); TrieChecker is the
// specialized fast path for the common workload.
//
// A specific contract discharges the paper's primary query
//
//	C.range(x) ∧ P ∧ ¬C.nexthops
//
// (satisfiable ⇒ some covered address forwards outside the expected set)
// plus a coverage query asserting some specific rule matches every address
// in the range (unsatisfied ⇒ MissingRoute: packets fall to the default
// route, the §2.4.4 failure shape). With Exact set, the single query
// variant C.range(x) ∧ ¬(P ⇔ C.nexthops) of §2.5.1 is used instead, which
// additionally requires every expected redundant hop.
type SMTChecker struct {
	Exact bool
	// Workers bounds the per-device contract fan-out. Contracts are
	// embarrassingly parallel once each worker owns its own bv.Ctx and
	// solver (solver state is the only shared-nothing requirement), so
	// CheckDevice splits the contract list into contiguous chunks, one
	// fresh policy encoding per worker, and merges results back in
	// contract order — the violation stream is identical to the
	// sequential path up to counterexample witness choice, which the
	// trie-vs-SMT differential oracle is insensitive to. Semantics
	// mirror Validator.Workers: 0 means GOMAXPROCS, 1 pins sequential.
	Workers int
	// Metrics, when non-nil, instruments every solver this checker
	// creates (per-query conflicts/decisions/propagations and solve
	// latency); Clock times those solves (nil = system clock). The
	// bundle is atomic-add based, so one bundle may serve all workers.
	Metrics *bv.Metrics
	Clock   clock.Clock
}

func hopVar(c *bv.Ctx, d topology.DeviceID) bv.Term {
	return c.BoolVar(fmt.Sprintf("nh%d", d))
}

// encodePolicy builds the Definition 2.1 meaning of the non-default part of
// the policy: rules sorted by descending prefix length folded into an ITE
// chain, evaluating to the matched rule's next-hop disjunction, or drop
// (false) when no specific rule matches. It also returns the coverage
// predicate (some specific rule matches). The default route is excluded: it
// is validated by the default contract's special case, and specific
// contracts require a specific route (§2.4, §2.6.2 Migrations).
func encodePolicy(c *bv.Ctx, dst bv.Term, tbl *fib.Table) (policy, covered bv.Term) {
	// Collect non-default entries in descending prefix-length order.
	byLen := make([][]int, 33)
	for i := range tbl.Entries {
		p := tbl.Entries[i].Prefix
		if p.IsDefault() {
			continue
		}
		byLen[p.Bits] = append(byLen[p.Bits], i)
	}
	formula := c.False() // P_n = drop
	var conds []bv.Term
	// Build the ITE chain inside-out: the longest prefix must be the
	// outermost (first-checked) condition, so wrap from shortest upward.
	for bits := 0; bits <= 32; bits++ {
		for _, idx := range byLen[bits] {
			e := &tbl.Entries[idx]
			rng := ipnet.RangeOf(e.Prefix)
			cond := c.InRange(dst, uint64(rng.Lo), uint64(rng.Hi))
			conds = append(conds, cond)
			var hops bv.Term
			if e.Connected {
				hops = c.BoolVar("local")
			} else {
				terms := make([]bv.Term, len(e.NextHops))
				for i, nh := range e.NextHops {
					terms[i] = hopVar(c, nh)
				}
				hops = c.Or(terms...)
			}
			formula = c.Ite(cond, hops, formula)
		}
	}
	return formula, c.Or(conds...)
}

// smtSession is one worker's view of a device check: a private term
// context, solver, and policy encoding, plus the per-device coverage
// fact learned from assumption failure analysis. Sessions are never
// shared between goroutines.
type smtSession struct {
	checker SMTChecker
	tbl     *fib.Table
	role    topology.Role

	c          *bv.Ctx
	solver     *bv.Solver
	dst        bv.Term
	policy     bv.Term
	notCovered bv.Term

	// coverageComplete is set once FailedAssumptions proves ¬covered is
	// unsatisfiable against the policy encoding alone (independent of
	// any contract's range assumption): every address matches a
	// specific rule, so all later coverage queries are skipped.
	coverageComplete bool
}

func (s SMTChecker) newSession(tbl *fib.Table, role topology.Role) *smtSession {
	c := bv.NewCtx()
	dst := c.BVVar("dstIp", 32)
	policy, covered := encodePolicy(c, dst, tbl)
	solver := bv.NewSolver(c)
	solver.Metrics = s.Metrics
	solver.Clock = s.Clock
	return &smtSession{
		checker: s, tbl: tbl, role: role,
		c: c, solver: solver, dst: dst,
		policy: policy, notCovered: c.Not(covered),
	}
}

func (ss *smtSession) check(ct contracts.Contract) ([]Violation, error) {
	if ct.Kind == contracts.Default {
		// §2.5.1: the default contract is the special case
		// r_default.nexthops = C_default.nexthops.
		return appendDefaultViolations(nil, ss.tbl, ct, ss.role), nil
	}
	return ss.checkSpecific(ct)
}

// CheckDevice implements Checker. Each worker bit-blasts the device's
// policy once and discharges its share of the contracts as assumption
// queries against that shared encoding; violations are merged back in
// contract order.
func (s SMTChecker) CheckDevice(tbl *fib.Table, dc contracts.DeviceContracts, role topology.Role) ([]Violation, error) {
	cts := dc.Contracts
	workers := s.Workers
	if workers <= 0 {
		// Auto mode: each worker pays for a full policy encoding, so fan
		// out only when every worker has enough contracts to amortize
		// that rebuild. An explicit Workers count is honored as-is,
		// mirroring Validator.Workers.
		workers = runtime.GOMAXPROCS(0)
		if len(cts) < 8*workers {
			workers = len(cts) / 8
		}
	}
	if workers > len(cts) {
		workers = len(cts)
	}
	if workers <= 1 {
		ss := s.newSession(tbl, role)
		var out []Violation
		for _, ct := range cts {
			v, err := ss.check(ct)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	}

	perContract := make([][]Violation, len(cts))
	errs := make([]error, workers)
	chunk := (len(cts) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(cts) {
			hi = len(cts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ss := s.newSession(tbl, role)
			for i := lo; i < hi; i++ {
				v, err := ss.check(cts[i])
				if err != nil {
					errs[w] = err
					return
				}
				perContract[i] = v
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Violation
	for _, v := range perContract {
		out = append(out, v...)
	}
	return out, nil
}

func (ss *smtSession) checkSpecific(ct contracts.Contract) ([]Violation, error) {
	c, tbl := ss.c, ss.tbl
	expected := make([]bv.Term, len(ct.NextHops))
	for i, nh := range ct.NextHops {
		expected[i] = hopVar(c, nh)
	}
	want := c.Or(expected...)

	rng := ipnet.RangeOf(ct.Prefix)
	inRange := c.InRange(ss.dst, uint64(rng.Lo), uint64(rng.Hi))

	var query bv.Term
	if ss.checker.Exact {
		query = c.And(inRange, c.Not(c.Iff(ss.policy, want)))
	} else {
		// Coverage first: an address in range matched by no specific rule
		// is a MissingRoute violation regardless of next-hop assignments.
		// The range predicate and ¬covered ride as separate assumptions
		// so failure analysis can tell which of them the refutation
		// actually needs.
		if !ss.coverageComplete {
			res, err := ss.solver.SolveAssuming(inRange, ss.notCovered)
			if err != nil {
				return nil, fmt.Errorf("rcdc: smt coverage %v: %w", ct.Prefix, err)
			}
			if res.Sat {
				def, _ := tbl.Default()
				remaining := 0
				if def != nil {
					remaining = len(def.NextHops)
				}
				v := Violation{Device: ct.Device, Contract: ct, Kind: MissingRoute, Remaining: remaining}
				classify(&v, ss.role)
				return []Violation{v}, nil
			}
			// Unsat with inRange outside the failed core means ¬covered
			// contradicts the policy encoding for every address, not just
			// this contract's range — no later coverage query can succeed.
			complete := true
			for _, f := range ss.solver.FailedAssumptions() {
				if f == inRange {
					complete = false
					break
				}
			}
			ss.coverageComplete = complete
		}
		query = c.And(inRange, ss.policy, c.Not(want))
	}
	res, err := ss.solver.SolveAssuming(query)
	if err != nil {
		return nil, fmt.Errorf("rcdc: smt check %v: %w", ct.Prefix, err)
	}
	if !res.Sat {
		return nil, nil
	}
	// Counterexample: locate the rule the witness address selects and
	// report the concrete ECMP-set difference.
	addr := ipnet.Addr(res.Model.BVs["dstIp"])
	e, ok := lookupSpecific(tbl, addr)
	if !ok {
		def, _ := tbl.Default()
		remaining := 0
		if def != nil {
			remaining = len(def.NextHops)
		}
		v := Violation{Device: ct.Device, Contract: ct, Kind: MissingRoute, Remaining: remaining}
		classify(&v, ss.role)
		return []Violation{v}, nil
	}
	missing, unexpected := diffHops(ct.NextHops, e.NextHops)
	v := Violation{
		Device: ct.Device, Contract: ct, Kind: WrongNextHops,
		RulePrefix: e.Prefix, Missing: missing, Unexpected: unexpected,
		Remaining: len(e.NextHops),
	}
	classify(&v, ss.role)
	return []Violation{v}, nil
}

// lookupSpecific is LPM restricted to non-default rules.
func lookupSpecific(tbl *fib.Table, a ipnet.Addr) (*fib.Entry, bool) {
	e, ok := tbl.Lookup(a)
	if !ok || e.Prefix.IsDefault() {
		return nil, false
	}
	return e, true
}
