package rcdc

import (
	"fmt"

	"dcvalidate/internal/bv"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// SMTChecker is the bit-vector-logic verification engine of §2.5.1. The
// routing policy is encoded per Definition 2.1 as a nested if-then-else
// over prefix-range predicates, with one Boolean variable per next-hop
// interface; a contract check is a satisfiability query discharged to the
// internal/bv + internal/sat pipeline (the Z3 substitute).
//
// It is the default, fully general engine ("flexible query language,
// performance within a second per routing table"); TrieChecker is the
// specialized fast path for the common workload.
//
// A specific contract discharges the paper's primary query
//
//	C.range(x) ∧ P ∧ ¬C.nexthops
//
// (satisfiable ⇒ some covered address forwards outside the expected set)
// plus a coverage query asserting some specific rule matches every address
// in the range (unsatisfied ⇒ MissingRoute: packets fall to the default
// route, the §2.4.4 failure shape). With Exact set, the single query
// variant C.range(x) ∧ ¬(P ⇔ C.nexthops) of §2.5.1 is used instead, which
// additionally requires every expected redundant hop.
type SMTChecker struct {
	Exact bool
	// Metrics, when non-nil, instruments every solver this checker
	// creates (per-query conflicts/decisions/propagations and solve
	// latency); Clock times those solves (nil = system clock).
	Metrics *bv.Metrics
	Clock   clock.Clock
}

func hopVar(c *bv.Ctx, d topology.DeviceID) bv.Term {
	return c.BoolVar(fmt.Sprintf("nh%d", d))
}

// encodePolicy builds the Definition 2.1 meaning of the non-default part of
// the policy: rules sorted by descending prefix length folded into an ITE
// chain, evaluating to the matched rule's next-hop disjunction, or drop
// (false) when no specific rule matches. It also returns the coverage
// predicate (some specific rule matches). The default route is excluded: it
// is validated by the default contract's special case, and specific
// contracts require a specific route (§2.4, §2.6.2 Migrations).
func encodePolicy(c *bv.Ctx, dst bv.Term, tbl *fib.Table) (policy, covered bv.Term) {
	// Collect non-default entries in descending prefix-length order.
	byLen := make([][]int, 33)
	for i := range tbl.Entries {
		p := tbl.Entries[i].Prefix
		if p.IsDefault() {
			continue
		}
		byLen[p.Bits] = append(byLen[p.Bits], i)
	}
	formula := c.False() // P_n = drop
	var conds []bv.Term
	// Build the ITE chain inside-out: the longest prefix must be the
	// outermost (first-checked) condition, so wrap from shortest upward.
	for bits := 0; bits <= 32; bits++ {
		for _, idx := range byLen[bits] {
			e := &tbl.Entries[idx]
			rng := ipnet.RangeOf(e.Prefix)
			cond := c.InRange(dst, uint64(rng.Lo), uint64(rng.Hi))
			conds = append(conds, cond)
			var hops bv.Term
			if e.Connected {
				hops = c.BoolVar("local")
			} else {
				terms := make([]bv.Term, len(e.NextHops))
				for i, nh := range e.NextHops {
					terms[i] = hopVar(c, nh)
				}
				hops = c.Or(terms...)
			}
			formula = c.Ite(cond, hops, formula)
		}
	}
	return formula, c.Or(conds...)
}

// CheckDevice implements Checker. The device's policy is bit-blasted once
// and every contract is discharged as an assumption query against the
// shared encoding.
func (s SMTChecker) CheckDevice(tbl *fib.Table, dc contracts.DeviceContracts, role topology.Role) ([]Violation, error) {
	c := bv.NewCtx()
	dst := c.BVVar("dstIp", 32)
	policy, covered := encodePolicy(c, dst, tbl)
	solver := bv.NewSolver(c)
	solver.Metrics = s.Metrics
	solver.Clock = s.Clock

	var out []Violation
	for _, ct := range dc.Contracts {
		if ct.Kind == contracts.Default {
			// §2.5.1: the default contract is the special case
			// r_default.nexthops = C_default.nexthops.
			out = appendDefaultViolations(out, tbl, ct, role)
			continue
		}
		v, err := s.checkSpecific(c, solver, dst, policy, covered, tbl, ct, role)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (s SMTChecker) checkSpecific(c *bv.Ctx, solver *bv.Solver, dst, policy, covered bv.Term,
	tbl *fib.Table, ct contracts.Contract, role topology.Role) ([]Violation, error) {
	expected := make([]bv.Term, len(ct.NextHops))
	for i, nh := range ct.NextHops {
		expected[i] = hopVar(c, nh)
	}
	want := c.Or(expected...)

	rng := ipnet.RangeOf(ct.Prefix)
	inRange := c.InRange(dst, uint64(rng.Lo), uint64(rng.Hi))

	var query bv.Term
	if s.Exact {
		query = c.And(inRange, c.Not(c.Iff(policy, want)))
	} else {
		// Coverage first: an address in range matched by no specific rule
		// is a MissingRoute violation regardless of next-hop assignments.
		res, err := solver.SolveAssuming(c.And(inRange, c.Not(covered)))
		if err != nil {
			return nil, fmt.Errorf("rcdc: smt coverage %v: %w", ct.Prefix, err)
		}
		if res.Sat {
			def, _ := tbl.Default()
			remaining := 0
			if def != nil {
				remaining = len(def.NextHops)
			}
			v := Violation{Device: ct.Device, Contract: ct, Kind: MissingRoute, Remaining: remaining}
			classify(&v, role)
			return []Violation{v}, nil
		}
		query = c.And(inRange, policy, c.Not(want))
	}
	res, err := solver.SolveAssuming(query)
	if err != nil {
		return nil, fmt.Errorf("rcdc: smt check %v: %w", ct.Prefix, err)
	}
	if !res.Sat {
		return nil, nil
	}
	// Counterexample: locate the rule the witness address selects and
	// report the concrete ECMP-set difference.
	addr := ipnet.Addr(res.Model.BVs["dstIp"])
	e, ok := lookupSpecific(tbl, addr)
	if !ok {
		def, _ := tbl.Default()
		remaining := 0
		if def != nil {
			remaining = len(def.NextHops)
		}
		v := Violation{Device: ct.Device, Contract: ct, Kind: MissingRoute, Remaining: remaining}
		classify(&v, role)
		return []Violation{v}, nil
	}
	missing, unexpected := diffHops(ct.NextHops, e.NextHops)
	v := Violation{
		Device: ct.Device, Contract: ct, Kind: WrongNextHops,
		RulePrefix: e.Prefix, Missing: missing, Unexpected: unexpected,
		Remaining: len(e.NextHops),
	}
	classify(&v, role)
	return []Violation{v}, nil
}

// lookupSpecific is LPM restricted to non-default rules.
func lookupSpecific(tbl *fib.Table, a ipnet.Addr) (*fib.Entry, bool) {
	e, ok := tbl.Lookup(a)
	if !ok || e.Prefix.IsDefault() {
		return nil, false
	}
	return e, true
}
