package rcdc

import (
	"bytes"
	"fmt"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/topology"
)

// renderViolations renders the full violation state of a report,
// including the per-contract next-hop sets a caller could alias.
func renderViolations(rep *Report) []byte {
	var buf bytes.Buffer
	for i := range rep.Devices {
		for _, v := range rep.Devices[i].Violations {
			fmt.Fprintf(&buf, "%s hops=%v\n", v.String(), v.Contract.NextHops)
		}
	}
	return buf.Bytes()
}

// TestViolationsCopyOnReturn pins the copy-on-return contract of
// Report.Violations: the caller may mutate the returned slice, the
// violations in it, and their next-hop sets without corrupting the
// report the serving layer caches — or the contract sets a memoizing
// generator shares across validations.
func TestViolationsCopyOnReturn(t *testing.T) {
	topo := topology.MustNew(topology.Params{
		Clusters: 2, ToRsPerCluster: 3, LeavesPerCluster: 2,
		SpinesPerPlane: 1, RegionalSpines: 2, RSLinksPerSpine: 1,
		PrefixesPerToR: 1,
	})
	// Break enough links that violations carry non-empty Missing sets.
	tor := topo.ClusterToRs(0)[0]
	topo.FailLink(tor, topo.ClusterLeaves(0)[0])
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	gen.EnableMemo()

	v := Validator{Workers: 2}
	synth := bgp.NewSynth(topo, nil)
	full, err := v.ValidateAll(facts, synth)
	if err != nil {
		t.Fatal(err)
	}
	// Revalidate the failed ToR through the memoizing generator so its
	// violations reference the shared, cached contract sets.
	rep, err := v.ValidateDelta(full, facts, gen, synth, []topology.DeviceID{tor})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("expected violations after link failure")
	}
	before := renderViolations(rep)
	genBefore := fmt.Sprintf("%v", gen.ForDevice(tor))

	got := rep.Violations()
	if len(got) != rep.Failures {
		t.Fatalf("Violations() returned %d, want %d", len(got), rep.Failures)
	}
	// Vandalize everything the caller can reach through the return value.
	for i := range got {
		got[i].Device = -99
		got[i].Kind = 200
		for j := range got[i].Missing {
			got[i].Missing[j] = -1
		}
		for j := range got[i].Unexpected {
			got[i].Unexpected[j] = -1
		}
		for j := range got[i].Contract.NextHops {
			got[i].Contract.NextHops[j] = -1
		}
	}

	if after := renderViolations(rep); !bytes.Equal(before, after) {
		t.Fatalf("mutating Violations() corrupted the report:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	if genAfter := fmt.Sprintf("%v", gen.ForDevice(tor)); genBefore != genAfter {
		t.Fatalf("mutating Violations() corrupted memoized contracts:\n%s\nvs\n%s", genBefore, genAfter)
	}
	// A second flatten must match the first, pre-vandalism.
	second := rep.Violations()
	var a, b bytes.Buffer
	for _, v := range second {
		fmt.Fprintf(&a, "%s hops=%v\n", v.String(), v.Contract.NextHops)
	}
	b.Write(before)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("second Violations() call diverges from the report")
	}
}
