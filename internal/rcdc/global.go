package rcdc

import (
	"fmt"

	"dcvalidate/internal/fib"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// GlobalChecker is the straw-man the paper's local technique replaces
// (§2.4): it materializes a snapshot of every device's FIB and verifies the
// end-to-end intent directly — all-pairs ToR reachability (INTENT 1) along
// shortest paths (INTENT 2) with the maximal redundant path set (INTENT 3).
// Its cost and memory scale with the global snapshot, which is exactly the
// scalability argument of §1; it doubles as the independent oracle for
// validating Claim 1 in tests.
type GlobalChecker struct {
	topo   *topology.Topology
	tables []*fib.Table // indexed by device; the global snapshot
}

// NewGlobalChecker materializes the snapshot from the source.
func NewGlobalChecker(topo *topology.Topology, source fib.Source) (*GlobalChecker, error) {
	g := &GlobalChecker{topo: topo, tables: make([]*fib.Table, len(topo.Devices))}
	for i := range topo.Devices {
		t, err := source.Table(topology.DeviceID(i))
		if err != nil {
			return nil, fmt.Errorf("rcdc: snapshot device %d: %w", i, err)
		}
		g.tables[i] = t
	}
	return g, nil
}

// PairResult describes forwarding from one source ToR toward one prefix.
type PairResult struct {
	Src     topology.DeviceID
	Prefix  ipnet.Prefix
	Dst     topology.DeviceID // hosting ToR
	Reaches bool
	// MinHops/MaxHops over all ECMP path choices actually reaching Dst.
	MinHops, MaxHops int
	// Paths is the number of distinct forwarding paths reaching Dst.
	Paths int
	// Dropped reports whether some ECMP branch drops or loops.
	Dropped bool
}

// Intent is the global property level being verified.
type Intent int

const (
	// Reachability: every ToR pair reaches each other (INTENT 1).
	Reachability Intent = iota
	// ShortestPaths: additionally all used paths have the intended length
	// — 2 device hops intra-cluster, 4 inter-cluster (INTENT 2).
	ShortestPaths
	// FullRedundancy: additionally the number of redundant paths is
	// maximal for the deployed topology (INTENT 3): one path per cluster
	// leaf intra-cluster, leaves × spines-per-plane inter-cluster.
	FullRedundancy
)

// walker memoizes the forwarding trace toward one prefix, shared across
// source ToRs (one dynamic program over the snapshot per prefix).
type walker struct {
	g    *GlobalChecker
	hp   topology.HostedPrefix
	addr ipnet.Addr
	memo map[topology.DeviceID]*walkResult
}

type walkResult struct {
	reaches        bool
	minH, maxH     int
	paths          int
	dropped        bool
	done, visiting bool
}

func (g *GlobalChecker) newWalker(hp topology.HostedPrefix) *walker {
	return &walker{g: g, hp: hp, addr: hp.Prefix.First(),
		memo: make(map[topology.DeviceID]*walkResult)}
}

func (w *walker) walk(d topology.DeviceID) *walkResult {
	if m, ok := w.memo[d]; ok {
		if m.visiting && !m.done {
			// Forwarding loop: treat this branch as a drop.
			return &walkResult{dropped: true, done: true}
		}
		return m
	}
	m := &walkResult{visiting: true}
	w.memo[d] = m
	defer func() { m.done = true; m.visiting = false }()

	if d == w.hp.ToR {
		m.reaches, m.paths = true, 1
		return m
	}
	e, ok := w.g.tables[d].Lookup(w.addr)
	if !ok || len(e.NextHops) == 0 {
		m.dropped = true
		return m
	}
	if e.Connected {
		// Delivered locally at a device that is not the hosting ToR;
		// cannot happen with distinct VLANs, treat as a drop.
		m.dropped = true
		return m
	}
	m.minH = 1 << 30
	for _, nh := range e.NextHops {
		sub := w.walk(nh)
		if sub.dropped {
			m.dropped = true
		}
		if sub.reaches {
			m.reaches = true
			if sub.minH+1 < m.minH {
				m.minH = sub.minH + 1
			}
			if sub.maxH+1 > m.maxH {
				m.maxH = sub.maxH + 1
			}
			m.paths += sub.paths
		}
	}
	if !m.reaches {
		m.minH = 0
	}
	return m
}

func pairResult(src topology.DeviceID, hp topology.HostedPrefix, m *walkResult) PairResult {
	res := PairResult{
		Src: src, Prefix: hp.Prefix, Dst: hp.ToR,
		Reaches: m.reaches, Dropped: m.dropped,
		MinHops: m.minH, MaxHops: m.maxH, Paths: m.paths,
	}
	if !res.Reaches {
		res.MinHops = -1
	}
	return res
}

// CheckPair traces forwarding from src toward the given hosted prefix by
// following every ECMP choice through the snapshot.
func (g *GlobalChecker) CheckPair(src topology.DeviceID, hp topology.HostedPrefix) PairResult {
	w := g.newWalker(hp)
	return pairResult(src, hp, w.walk(src))
}

// expected path shape for a src ToR and a hosted prefix.
func (g *GlobalChecker) expected(src topology.DeviceID, hp topology.HostedPrefix) (hops, paths int) {
	p := g.topo.Params
	if g.topo.Device(src).Cluster == hp.Cluster {
		return 2, p.LeavesPerCluster
	}
	return 4, p.LeavesPerCluster * p.SpinesPerPlane
}

// Check verifies the selected intent level for all ToR pairs, returning
// the failing pairs (empty means the intent holds). This is the
// whole-snapshot computation whose cost and memory footprint RCDC's local
// decomposition avoids.
func (g *GlobalChecker) Check(level Intent) []PairResult {
	var failures []PairResult
	for _, hp := range g.topo.HostedPrefixes() {
		w := g.newWalker(hp)
		for _, src := range g.topo.ToRs() {
			if src == hp.ToR {
				continue
			}
			r := pairResult(src, hp, w.walk(src))
			wantHops, wantPaths := g.expected(src, hp)
			ok := r.Reaches && !r.Dropped
			if ok && level >= ShortestPaths {
				ok = r.MinHops == wantHops && r.MaxHops == wantHops
			}
			if ok && level >= FullRedundancy {
				ok = r.Paths == wantPaths
			}
			if !ok {
				failures = append(failures, r)
			}
		}
	}
	return failures
}

// CounterexamplePath finds one concrete forwarding trajectory from src
// toward the hosted prefix that fails to deliver: a hop-by-hop ECMP
// branch ending where the packet is dropped (no covering route), looped
// (revisits a device on its own path), or delivered at the wrong device.
// The returned path lists every device the packet traverses including the
// failure point; reason is "no-route", "loop", or "wrong-delivery". ok is
// false when every ECMP branch delivers — there is no counterexample.
//
// The serving layer turns this into the counterexample packet of a failed
// reachability query: a header addressed into the prefix plus the switch
// where it dies.
func (g *GlobalChecker) CounterexamplePath(src topology.DeviceID, hp topology.HostedPrefix) (path []topology.DeviceID, reason string, ok bool) {
	addr := hp.Prefix.First()
	onPath := make(map[topology.DeviceID]bool)
	var walk func(d topology.DeviceID) ([]topology.DeviceID, string, bool)
	walk = func(d topology.DeviceID) ([]topology.DeviceID, string, bool) {
		if d == hp.ToR {
			return nil, "", false // delivered: this branch is no counterexample
		}
		e, found := g.tables[d].Lookup(addr)
		if !found || len(e.NextHops) == 0 {
			return []topology.DeviceID{d}, "no-route", true
		}
		if e.Connected {
			return []topology.DeviceID{d}, "wrong-delivery", true
		}
		onPath[d] = true
		defer delete(onPath, d)
		for _, nh := range e.NextHops {
			if onPath[nh] {
				return []topology.DeviceID{d, nh}, "loop", true
			}
			if sub, why, bad := walk(nh); bad {
				return append([]topology.DeviceID{d}, sub...), why, true
			}
		}
		return nil, "", false
	}
	return walk(src)
}

// Pairs returns the number of (src ToR, prefix) pairs Check examines.
func (g *GlobalChecker) Pairs() int {
	return len(g.topo.HostedPrefixes()) * (len(g.topo.ToRs()) - 1)
}
