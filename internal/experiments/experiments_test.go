package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment harness is exercised end to end at tiny scale: every
// experiment must run to completion and produce a table without the
// "UNEXPECTED" marker that flags internal consistency failures.

func checkResult(t *testing.T, r Result, wantID string) {
	t.Helper()
	if r.ID != wantID {
		t.Errorf("ID = %q, want %q", r.ID, wantID)
	}
	if r.Table == "" || r.Title == "" {
		t.Error("empty table or title")
	}
	if strings.Contains(r.Table, "UNEXPECTED") {
		t.Errorf("%s reported internal inconsistency:\n%s", r.ID, r.Table)
	}
	if !strings.Contains(r.String(), r.Title) {
		t.Error("String() missing title")
	}
}

func TestE1Smoke(t *testing.T)   { checkResult(t, E1PerDevice([]int{200}, 3), "E1") }
func TestE2Smoke(t *testing.T)   { checkResult(t, E2Sweep([]int{200}), "E2") }
func TestE3Smoke(t *testing.T)   { checkResult(t, E3LocalVsGlobal([]int{200}), "E3") }
func TestE5Smoke(t *testing.T)   { checkResult(t, E5Figure3(), "E5") }
func TestE6Smoke(t *testing.T)   { checkResult(t, E6Taxonomy(), "E6") }
func TestE7Smoke(t *testing.T)   { checkResult(t, E7Burndown(), "E7") }
func TestE8Smoke(t *testing.T)   { checkResult(t, E8ACLLatency([]int{100}), "E8") }
func TestE9Smoke(t *testing.T)   { checkResult(t, E9Refactor(), "E9") }
func TestE11Smoke(t *testing.T)  { checkResult(t, E11Firewall(), "E11") }
func TestE12Smoke(t *testing.T)  { checkResult(t, E12Precheck(), "E12") }
func TestE13Smoke(t *testing.T)  { checkResult(t, E13Monitor([]int{150}), "E13") }
func TestE13cSmoke(t *testing.T) { checkResult(t, E13cDegraded(150, 4), "E13c") }
func TestE14Smoke(t *testing.T)  { checkResult(t, E14Claim1(6), "E14") }

// E4's rows feed BENCH_solver.json and the e4s CI gate: every point must
// agree with the trie oracle (sequential and parallel SMT alike).
func TestE4Smoke(t *testing.T) {
	res, rows := E4SMTVsTrie([]int{100})
	checkResult(t, res, "E4")
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want one point", rows)
	}
	if !rows[0].Match {
		t.Errorf("SMT verdicts diverge from trie oracle: %+v", rows[0])
	}
	if rows[0].SMTContractNS <= 0 || rows[0].Workers < 1 {
		t.Errorf("implausible row: %+v", rows[0])
	}
}

func TestE4SolverGateSmoke(t *testing.T) {
	checkResult(t, E4SolverGate(100, time.Second), "E4s")
}

// E20's rows feed BENCH_pec.json and the pec-smoke CI gate: the point
// itself panics unless PEC renders byte-identically to the trie engine
// and agrees with the SMT sample, so a clean return already certifies
// equivalence. The speedup floor is only asserted at the full E20 sizes,
// not at this smoke scale.
func TestE20Smoke(t *testing.T) {
	res, rows := E20PEC([]int{200})
	checkResult(t, res, "E20")
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want one point", rows)
	}
	r := rows[0]
	if !r.Identical || !r.SMTAgree {
		t.Errorf("equivalence flags false: %+v", r)
	}
	if r.AtomsPerDevice <= 1 || r.HopSets < 1 || r.PECWarmNS <= 0 {
		t.Errorf("implausible row: %+v", r)
	}
}

func TestE5DetectsPaperViolationSet(t *testing.T) {
	r := E5Figure3()
	// The §2.4.4 headline facts must appear in the table.
	for _, want := range []string{
		"fig3-c0-t0-0", "default-mismatch", "missing-route",
		"reachability failures: 0",
		"6 hops",
	} {
		if !strings.Contains(r.Table, want) {
			t.Errorf("E5 table missing %q:\n%s", want, r.Table)
		}
	}
}

func TestE6AllClassesDetected(t *testing.T) {
	r := E6Taxonomy()
	if strings.Contains(r.Table, "false") {
		t.Errorf("E6 has undetected classes:\n%s", r.Table)
	}
	for _, class := range []string{
		"rib-fib-inconsistency", "l2-port-bug", "hardware-failure",
		"operation-drift", "migration-misconfig", "policy-error",
	} {
		if !strings.Contains(r.Table, class) {
			t.Errorf("E6 missing class %q", class)
		}
	}
}

func TestSizedParams(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		p := SizedParams("t", n)
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := p.NumDevices()
		if got < n || got > n+60 {
			t.Errorf("n=%d: NumDevices = %d", n, got)
		}
	}
}

func TestE15Smoke(t *testing.T) { checkResult(t, E15Region(), "E15") }

// E17 carries three panic gates (brute-vs-pruned divergence, k=2
// pruning-ratio floor, minimal-set replay); running it at the smallest
// 2-pod width exercises all of them.
func TestE17Smoke(t *testing.T) {
	res, rows := E17Explore(2)
	checkResult(t, res, "E17")
	if len(rows) != 3 {
		t.Fatalf("rows = %+v, want brute-k1, pruned-k1, pruned-k2", rows)
	}
	if rows[0].Total != rows[1].Total {
		t.Errorf("k=1 totals diverge: %d vs %d", rows[0].Total, rows[1].Total)
	}
	if rows[2].Generators > 0 && rows[2].PruningRatio <= 2 {
		t.Errorf("k=2 pruning ratio %.2fx <= 2x", rows[2].PruningRatio)
	}
}

func TestE13bSmoke(t *testing.T) { checkResult(t, E13bIncremental(150), "E13b") }

// The soundness gate (verifyMax >= size) runs here: a blast-radius or
// report-equivalence violation panics.
func TestE16Smoke(t *testing.T) {
	res, rows := E16Incremental([]int{150}, 200)
	checkResult(t, res, "E16")
	if len(rows) != 1 || !rows[0].Verified || rows[0].Dirty == 0 {
		t.Fatalf("rows = %+v, want one verified row with a nonempty blast radius", rows)
	}
}
