package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/delta"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// E16Row is one machine-readable point of the incremental-validation
// experiment (serialized into BENCH_incremental.json by dcbench).
type E16Row struct {
	Devices       int     `json:"devices"`
	Dirty         int     `json:"dirtyDevices"`
	DirtyFraction float64 `json:"dirtyFraction"`
	FullSweepNs   int64   `json:"fullSweepNs"`
	DeltaNs       int64   `json:"deltaNs"`
	Speedup       float64 `json:"speedup"`
	Verified      bool    `json:"verified"`
}

// e16Tables snapshots every device's converged table for the soundness
// gate.
func e16Tables(topo *topology.Topology) map[topology.DeviceID]string {
	s := bgp.NewSynth(topo, nil)
	out := make(map[topology.DeviceID]string, len(topo.Devices))
	for id := range topo.Devices {
		d := topology.DeviceID(id)
		tbl, err := s.Table(d)
		if err != nil {
			panic(err)
		}
		c := tbl.Clone()
		c.Sort()
		out[d] = fmt.Sprint(c.Entries)
	}
	return out
}

// E16Incremental measures steady-state incremental revalidation against
// the full sweep it replaces: after one leaf–spine link failure, the
// change journal bounds the blast radius to a few percent of the fleet,
// and delta revalidation of just those devices produces the same report
// an order of magnitude faster (single worker, comparable to E2's
// single-CPU sweep).
//
// Sizes at or below verifyMax devices also run the soundness gate: every
// device whose converged table actually changed must be inside the
// computed blast radius, and the spliced delta report must agree with a
// from-scratch full sweep. A violation panics, failing the bench-smoke CI
// target.
func E16Incremental(deviceCounts []int, verifyMax int) (Result, []E16Row) {
	var b strings.Builder
	var rows []E16Row
	fmt.Fprintf(&b, "%10s %8s %8s %12s %12s %9s %9s\n",
		"devices", "dirty", "dirty%", "fullsweep", "delta", "speedup", "verified")
	for _, n := range deviceCounts {
		p := SizedParams("e16", n)
		topo := topology.MustNew(p)
		facts := metadata.FromTopology(topo)
		v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}

		// The baseline: a cold full sweep, as the monitor runs today.
		start := now()
		if _, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil)); err != nil {
			panic(err)
		}
		fullWall := since(start)

		// The monitor's steady state: a persistent generation-cached
		// source and a memoized contract generator, warmed by one sweep.
		cached := bgp.NewSynth(topo, nil)
		cached.EnableTableCache()
		cached.Metrics = synthMetrics()
		gen := contracts.NewGenerator(facts)
		gen.EnableMemo()
		prev, err := v.ValidateAll(facts, cached)
		if err != nil {
			panic(err)
		}

		verify := n <= verifyMax
		var before map[topology.DeviceID]string
		if verify {
			before = e16Tables(topo)
		}

		genBefore := topo.Generation()
		leaf := topo.ClusterLeaves(0)[0]
		var spine topology.DeviceID = -1
		for _, nb := range topo.Neighbors(leaf) {
			if topo.Device(nb).Role == topology.RoleSpine {
				spine = nb
				break
			}
		}
		if !topo.FailLink(leaf, spine) {
			panic("e16: FailLink failed")
		}

		// The incremental cycle: consume the journal, bound the blast,
		// revalidate only the dirty devices.
		start = now()
		changes, ok := topo.ChangesSince(genBefore)
		if !ok {
			panic("e16: journal truncated")
		}
		ds := delta.Compute(topo, changes, delta.Options{})
		if ds.Full() {
			panic("e16: expected a bounded blast radius for one leaf-spine failure")
		}
		cached.Refresh()
		rep, err := v.ValidateDelta(prev, facts, gen, cached, ds.Devices())
		if err != nil {
			panic(err)
		}
		deltaWall := since(start)

		if verify {
			after := e16Tables(topo)
			for id := range topo.Devices {
				d := topology.DeviceID(id)
				if before[d] != after[d] && !ds.Contains(d) {
					panic(fmt.Sprintf("e16: device %s table changed outside the blast radius (%d dirty of %d)",
						topo.Device(d).Name, ds.Count(), len(topo.Devices)))
				}
			}
			full, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
			if err != nil {
				panic(err)
			}
			if rep.Checked != full.Checked || rep.Failures != full.Failures ||
				len(rep.Devices) != len(full.Devices) {
				panic(fmt.Sprintf("e16: delta report (checked=%d failures=%d devices=%d) diverges from full sweep (checked=%d failures=%d devices=%d)",
					rep.Checked, rep.Failures, len(rep.Devices),
					full.Checked, full.Failures, len(full.Devices)))
			}
		}

		row := E16Row{
			Devices:       len(topo.Devices),
			Dirty:         ds.Count(),
			DirtyFraction: float64(ds.Count()) / float64(len(topo.Devices)),
			FullSweepNs:   fullWall.Nanoseconds(),
			DeltaNs:       deltaWall.Nanoseconds(),
			Speedup:       float64(fullWall) / float64(deltaWall),
			Verified:      verify,
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "%10d %8d %7.1f%% %12s %12s %8.1fx %9v\n",
			row.Devices, row.Dirty, 100*row.DirtyFraction,
			fullWall.Round(time.Millisecond), deltaWall.Round(time.Millisecond),
			row.Speedup, verify)
	}
	return Result{
		ID:    "E16",
		Title: "incremental revalidation after one link failure (change journal + blast radius)",
		Table: b.String(),
		Notes: "steady-state delta cycles revalidate only the blast radius of journaled changes; acceptance: ≤5% of devices dirty and ≥10x over the full sweep at ~2000 devices",
	}, rows
}
