package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/monitor"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

// E13cDegraded runs the monitoring service in degraded mode: the same
// injected contract violations as a clean control run, but with transient
// pull failures across the fleet and one persistently dead device. It
// reports per-cycle degradation stats and checks that detection on
// healthy devices is unimpaired — the robustness claim behind §2.6.1's
// "any device may be flaky" operating regime.
func E13cDegraded(devices, cycles int) Result {
	build := func(degraded bool) (*monitor.Instance, topology.DeviceID) {
		topo := topology.MustNew(SizedParams("e13c", devices))
		sc := workload.NewScenario(topo)
		// Identical ground-truth faults in both runs.
		link, _ := topo.LinkBetween(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
		sc.InjectOpticalFailure(link.ID)
		sc.InjectPolicyRejectDefault(topo.ClusterLeaves(0)[1])
		sc.InjectRIBFIBBug(topo.ToRs()[1], 1)
		dead := topo.ToRs()[2]
		if degraded {
			sc.TransientPullRate = 0.10
			sc.FaultSeed = 17
			sc.InjectTelemetryLoss(dead)
		}
		in := monitor.NewInstance("e13c", sc.Datacenter("dc"))
		in.Workers = 16
		in.MaxConsecutiveFailures = 2
		return in, dead
	}

	ctrl, _ := build(false)
	var ctrlLast monitor.CycleStats
	for i := 0; i < cycles; i++ {
		st, err := ctrl.RunCycle()
		if err != nil {
			panic(err)
		}
		ctrlLast = st
	}

	in, dead := build(true)
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %9s %8s %7s %7s %11s %11s %13s\n",
		"cycle", "pullFail", "retries", "stale", "unmon", "violations", "errors", "modeledPull")
	var last monitor.CycleStats
	for i := 0; i < cycles; i++ {
		st, err := in.RunCycle()
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%6d %9d %8d %7d %7d %11d %11d %13s\n",
			st.Cycle, st.PullFailures, st.Retries, st.StaleDevices, st.Unmonitored,
			st.Violations, len(st.Errs), st.ModeledPullTime.Round(time.Millisecond))
		last = st
	}

	// Detection parity on healthy devices in the final cycle. The dead
	// device is excluded: its state cannot be observed — that is precisely
	// what its Unmonitored escalation reports instead.
	want := map[topology.DeviceID]bool{}
	for _, r := range ctrl.Analytics.UnhealthyInCycle(ctrlLast.Cycle) {
		if r.Device != dead {
			want[r.Device] = true
		}
	}
	detected := 0
	deadAlerted := false
	for _, r := range in.Analytics.UnhealthyInCycle(last.Cycle) {
		if r.Unmonitored {
			if r.Device == dead {
				deadAlerted = true
			}
			continue
		}
		if want[r.Device] {
			detected++
		}
	}
	fmt.Fprintf(&b, "\nhealthy-device detection: %d/%d control violations found", detected, len(want))
	if detected < len(want) {
		fmt.Fprintf(&b, "  UNEXPECTED detection loss")
	}
	fmt.Fprintf(&b, "\ndead device escalated as telemetry loss: %v", deadAlerted)
	if !deadAlerted {
		fmt.Fprintf(&b, "  UNEXPECTED")
	}
	fmt.Fprintf(&b, "\n")
	return Result{
		ID:    "E13c",
		Title: "degraded-mode monitoring: pull faults and dead devices (§2.6.1)",
		Table: b.String(),
		Notes: "with 10% transient pull failures the retry/backoff layer keeps every device observed; the dead device degrades through stale carry-forward into an Unmonitored telemetry-loss escalation while violation detection on the rest of the fleet is unimpaired",
	}
}
