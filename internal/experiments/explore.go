package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/explore"
	"dcvalidate/internal/topology"
)

// E17Row is one machine-readable leg of the failure-space exploration
// experiment (BENCH_explore.json).
type E17Row struct {
	Leg              string  `json:"leg"`
	K                int     `json:"k"`
	Mode             string  `json:"mode"` // "brute" | "pruned"
	Universe         int     `json:"universe"`
	Total            uint64  `json:"total_scenarios"`
	Explored         int     `json:"explored_classes"`
	Pruned           uint64  `json:"pruned_scenarios"`
	Generators       int     `json:"generators"`
	ViolatingClasses int     `json:"violating_classes"`
	ViolatingWeight  int     `json:"violating_weight"`
	DegradedOnly     int     `json:"degraded_only_classes"`
	MinimalSets      int     `json:"minimal_sets"`
	PruningRatio     float64 `json:"pruning_ratio"`
	ScenariosPerSec  float64 `json:"scenarios_per_sec"`
	WallMS           float64 `json:"wall_ms"`
}

// e17Params is the 2-pod Clos the exploration sweeps: two clusters of
// torsPerCluster ToRs with 4 leaves each, two spines per plane, and four
// regional spines.
func e17Params(torsPerCluster int) topology.Params {
	return topology.Params{
		Name: "e17", Clusters: 2, ToRsPerCluster: torsPerCluster,
		LeavesPerCluster: 4, SpinesPerPlane: 2,
		RegionalSpines: 4, RSLinksPerSpine: 2,
	}
}

// E17Explore runs the failure-space model checker over a 2-pod Clos:
// an exhaustive brute-force k=1 sweep, the symmetry-pruned k=1 sweep
// (gated to report the exact same violating scenario space), and the
// symmetry-pruned k=2 sweep with pruning-ratio and scenarios/sec columns.
// Three soundness gates panic on divergence:
//
//   - the pruned k=1 violating classes, expanded back through their
//     orbits, must equal the brute-force violating set exactly;
//   - the k=2 pruning ratio must exceed 2x (the acceptance floor for
//     symmetry pruning being worth its overhead);
//   - every reported minimal failure set must still violate its contract
//     when replayed from scratch.
func E17Explore(torsPerCluster int) (Result, []E17Row) {
	topo := topology.MustNew(e17Params(torsPerCluster))
	run := func(opts explore.Options) *explore.Result {
		opts.Clock = Clock
		opts.Metrics = exploreMetrics()
		res, err := (&explore.Explorer{Topo: topo, Opts: opts}).Run()
		if err != nil {
			panic(fmt.Sprintf("e17: exploration failed: %v", err))
		}
		return res
	}

	brute1 := run(explore.Options{K: 1, NoPrune: true})
	pruned1 := run(explore.Options{K: 1})
	gateDivergence(topo, brute1, pruned1)
	pruned2 := run(explore.Options{K: 2, OnlyK: true})
	if pruned2.Generators > 0 && pruned2.PruningRatio() <= 2 {
		panic(fmt.Sprintf("e17: k=2 pruning ratio %.2fx <= 2x acceptance floor (%d classes for %d scenarios)",
			pruned2.PruningRatio(), pruned2.Explored, pruned2.Total))
	}
	gateReplay(topo, append(append([]explore.MinimalSet(nil),
		pruned1.MinimalSets...), pruned2.MinimalSets...))

	var b strings.Builder
	fmt.Fprintf(&b, "%8s %2s %7s %9s %9s %9s %5s %6s %7s %7s %6s %10s %10s\n",
		"leg", "k", "mode", "universe", "total", "explored", "gens",
		"viol", "weight", "minsets", "ratio", "scen/s", "wall")
	var rows []E17Row
	for _, leg := range []struct {
		name string
		k    int
		mode string
		res  *explore.Result
	}{
		{"k1-brute", 1, "brute", brute1},
		{"k1-sym", 1, "pruned", pruned1},
		{"k2-sym", 2, "pruned", pruned2},
	} {
		r := leg.res
		row := E17Row{
			Leg: leg.name, K: leg.k, Mode: leg.mode,
			Universe: r.Universe, Total: r.Total,
			Explored: r.Explored, Pruned: r.Pruned, Generators: r.Generators,
			ViolatingClasses: len(r.Violating), ViolatingWeight: violatingWeight(r),
			DegradedOnly: r.DegradedOnly, MinimalSets: len(r.MinimalSets),
			PruningRatio:    r.PruningRatio(),
			ScenariosPerSec: r.ScenariosPerSec(),
			WallMS:          float64(r.Elapsed) / float64(time.Millisecond),
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "%8s %2d %7s %9d %9d %9d %5d %6d %7d %7d %5.1fx %10.0f %10s\n",
			row.Leg, row.K, row.Mode, row.Universe, row.Total, row.Explored,
			row.Generators, row.ViolatingClasses, row.ViolatingWeight,
			row.MinimalSets, row.PruningRatio, row.ScenariosPerSec,
			r.Elapsed.Round(time.Millisecond))
	}
	// A taste of the certification output: the first few minimal failure
	// sets, rendered with device names.
	if n := len(pruned2.MinimalSets); n > 0 {
		fmt.Fprintf(&b, "sample minimal failure sets (%d total):\n", n)
		for i, ms := range pruned2.MinimalSets {
			if i == 3 {
				break
			}
			var fs []string
			for _, f := range ms.Faults {
				fs = append(fs, f.Describe(topo))
			}
			fmt.Fprintf(&b, "  %s <- {%s}\n", ms.ContractKey, strings.Join(fs, ", "))
		}
	}
	return Result{
		ID:    "E17",
		Title: "failure-space exploration: certify contracts up to k faults",
		Table: b.String(),
		Notes: "Plankton-style equivalence partitioning over the Clos automorphism group: symmetric failure scenarios validate once with a 'represents N' weight; each class revalidates only its blast radius against the healthy baseline; violating classes shrink to minimal per-contract failure sets (all gates replayed)",
	}, rows
}

// gateDivergence panics unless the pruned run's violating classes,
// expanded back through the verified automorphism orbits, cover exactly
// the brute-force violating scenario set — the same invariant the
// explore property test fuzzes, enforced here on every bench run.
func gateDivergence(topo *topology.Topology, brute, pruned *explore.Result) {
	if brute.Total != pruned.Total {
		panic(fmt.Sprintf("e17: scenario totals diverge: brute %d vs pruned %d", brute.Total, pruned.Total))
	}
	bruteViolating := make(map[string]bool, len(brute.Violating))
	for _, sc := range brute.Violating {
		bruteViolating[sc.Key] = true
	}
	sym := explore.ComputeSymmetry(topo, nil, false)
	orbitUnion := make(map[string]bool)
	weight := 0
	for _, sc := range pruned.Violating {
		weight += sc.Weight
		sym.Orbit(sc.Faults, func(k string) { orbitUnion[k] = true })
	}
	if weight != len(brute.Violating) {
		panic(fmt.Sprintf("e17: violating weight %d != brute violating count %d", weight, len(brute.Violating)))
	}
	for k := range orbitUnion {
		if !bruteViolating[k] {
			panic(fmt.Sprintf("e17: pruned orbit member %s not violating under brute force", k))
		}
	}
	for k := range bruteViolating {
		if !orbitUnion[k] {
			panic(fmt.Sprintf("e17: brute violating scenario %s missed by pruned classes", k))
		}
	}
}

// gateReplay re-evaluates every reported minimal failure set on a fresh
// clone and panics unless the named contract still fails — the acceptance
// gate that shrunk counterexamples are real.
func gateReplay(topo *topology.Topology, sets []explore.MinimalSet) {
	re, err := (&explore.Explorer{Topo: topo}).NewReplayer()
	if err != nil {
		panic(fmt.Sprintf("e17: replayer: %v", err))
	}
	for _, ms := range sets {
		keys, err := re.ViolationKeys(ms.Faults)
		if err != nil {
			panic(fmt.Sprintf("e17: replaying %v: %v", ms.Faults, err))
		}
		if !keys[ms.ContractKey] {
			panic(fmt.Sprintf("e17: minimal set %v does not violate %s on replay", ms.Faults, ms.ContractKey))
		}
	}
}

func violatingWeight(r *explore.Result) int {
	n := 0
	for _, sc := range r.Violating {
		n += sc.Weight
	}
	return n
}
