package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// E20Row is one machine-readable point of E20, serialized to
// BENCH_pec.json by dcbench so equivalence-class-engine regressions diff
// cleanly.
type E20Row struct {
	Devices        int     `json:"devices"`
	AtomsPerDevice float64 `json:"atoms_per_device"`
	HopSets        int     `json:"hop_sets"`
	SlowContracts  int64   `json:"slow_path_contracts"`
	TrieColdNS     int64   `json:"trie_cold_busy_ns"`
	TrieWarmNS     int64   `json:"trie_warm_busy_ns"`
	PECColdNS      int64   `json:"pec_cold_busy_ns"`
	PECWarmNS      int64   `json:"pec_warm_busy_ns"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	Identical      bool    `json:"identical"`
	SMTAgree       bool    `json:"smt_agree"`
}

// e20Busy sums the per-device validation times — pure checker work, no
// FIB-pull or scheduling time — so the trie-vs-PEC comparison is about
// the engines, not the harness.
func e20Busy(rep *rcdc.Report) time.Duration {
	var t time.Duration
	for i := range rep.Devices {
		t += rep.Devices[i].Elapsed
	}
	return t
}

// e20Point measures one fleet size: a cold and a warm full sweep through
// each engine at Workers=1 (sequential, so busy time has no lock-wait or
// scheduling noise), with three panic gates (failing make pec-smoke):
//
//   - byte identity: every PEC report — cold (atomizing) and warm
//     (content-hash cache hits) — must render byte-identically to the
//     trie engine's, on the same surface the shard-equivalence gate uses;
//   - SMT agreement: one device per role is cross-checked against the
//     independent bit-vector engine;
//   - speedup floor: when gateSpeedup is set (the largest size of a run),
//     the warm PEC sweep must beat the warm trie sweep by >= 2x.
func e20Point(n int, gateSpeedup bool) E20Row {
	topo := topology.MustNew(SizedParams("e20", n))
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	gen.EnableMemo()
	synth := bgp.NewSynth(topo, nil)
	synth.EnableTableCache()

	pc := &pec.Checker{Clock: Clock, Metrics: pecMetrics()}
	trieV := &rcdc.Validator{Workers: 1, Clock: Clock, Metrics: validatorMetrics(), Contracts: gen}
	pecV := &rcdc.Validator{Checker: pc, Workers: 1, Clock: Clock, Metrics: validatorMetrics(), Contracts: gen}
	run := func(v *rcdc.Validator) *rcdc.Report {
		rep, err := v.ValidateAll(facts, synth)
		if err != nil {
			panic(err)
		}
		return rep
	}

	trieCold := run(trieV)
	trieWarm := run(trieV)
	pecCold := run(pecV)
	pecWarm := run(pecV)

	truth := e19Render(trieCold)
	identical := bytes.Equal(truth, e19Render(pecCold)) &&
		bytes.Equal(truth, e19Render(pecWarm)) &&
		bytes.Equal(truth, e19Render(trieWarm))
	if !identical {
		panic(fmt.Sprintf("e20: PEC report diverges from trie engine at %d devices", len(topo.Devices)))
	}

	smtAgree := true
	seen := make(map[topology.Role]bool)
	for i := range topo.Devices {
		d := &topo.Devices[i]
		if seen[d.Role] {
			continue
		}
		seen[d.Role] = true
		tbl, err := synth.Table(d.ID)
		if err != nil {
			panic(err)
		}
		dc := gen.ForDevice(d.ID)
		smtViol, err := (rcdc.SMTChecker{Metrics: solverMetrics(), Clock: Clock}).CheckDevice(tbl, dc, d.Role)
		if err != nil {
			panic(err)
		}
		pecViol, err := pc.CheckDevice(tbl, dc, d.Role)
		if err != nil {
			panic(err)
		}
		if !sameViolations(smtViol, pecViol) {
			smtAgree = false
		}
	}
	if !smtAgree {
		panic(fmt.Sprintf("e20: PEC verdicts diverge from the SMT engine at %d devices", len(topo.Devices)))
	}

	st := pc.Stats()
	row := E20Row{
		Devices:       len(topo.Devices),
		HopSets:       st.HopSets,
		SlowContracts: st.SlowPathContracts,
		TrieColdNS:    int64(e20Busy(trieCold)),
		TrieWarmNS:    int64(e20Busy(trieWarm)),
		PECColdNS:     int64(e20Busy(pecCold)),
		PECWarmNS:     int64(e20Busy(pecWarm)),
		Identical:     identical,
		SMTAgree:      smtAgree,
	}
	if st.Atomizations > 0 {
		row.AtomsPerDevice = float64(st.Atoms) / float64(st.Atomizations)
	}
	if row.PECWarmNS > 0 {
		row.WarmSpeedup = float64(row.TrieWarmNS) / float64(row.PECWarmNS)
	}
	if gateSpeedup && row.TrieWarmNS > 0 && row.WarmSpeedup < 2.0 {
		panic(fmt.Sprintf("e20: warm PEC speedup %.2fx below the 2.0x floor at %d devices",
			row.WarmSpeedup, row.Devices))
	}
	return row
}

// E20PEC benchmarks the packet-equivalence-class engine against the trie
// engine across fleet sizes: per size, a cold full sweep (every device
// atomizes) and a warm one (every device is a content-hash cache hit —
// the steady state a monitoring loop lives in). Every point is
// byte-identity-gated against the trie engine and cross-checked against
// the SMT engine on a per-role device sample; the largest point must
// clear a 2x warm-speedup floor. Any gate failure panics, so dcbench
// exits non-zero (the pec-smoke CI hook). The machine-readable rows back
// BENCH_pec.json.
func E20PEC(deviceCounts []int) (Result, []E20Row) {
	var b strings.Builder
	rows := make([]E20Row, 0, len(deviceCounts))
	fmt.Fprintf(&b, "%9s %12s %9s %11s %11s %11s %11s %9s %6s %6s\n",
		"devices", "atoms/dev", "hopsets", "trie-cold", "trie-warm", "pec-cold", "pec-warm", "speedup", "ident", "smt")
	for i, n := range deviceCounts {
		r := e20Point(n, i == len(deviceCounts)-1)
		rows = append(rows, r)
		fmt.Fprintf(&b, "%9d %12.1f %9d %11s %11s %11s %11s %8.1fx %6v %6v\n",
			r.Devices, r.AtomsPerDevice, r.HopSets,
			time.Duration(r.TrieColdNS).Round(time.Microsecond),
			time.Duration(r.TrieWarmNS).Round(time.Microsecond),
			time.Duration(r.PECColdNS).Round(time.Microsecond),
			time.Duration(r.PECWarmNS).Round(time.Microsecond),
			r.WarmSpeedup, r.Identical, r.SMTAgree)
	}
	return Result{
		ID:    "E20",
		Title: "packet-equivalence-class engine vs trie: warm-sweep speedup with byte-identity gates",
		Table: b.String(),
		Notes: "cold sweeps atomize every FIB into destination equivalence classes; warm sweeps answer from content-hash caches (the monitoring steady state); every point renders byte-identically to the trie engine and agrees with the SMT engine on a per-role sample, and the largest point must clear a 2x warm-speedup floor — violations panic, failing make pec-smoke",
	}, rows
}
