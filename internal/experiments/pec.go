package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// E20Row is one machine-readable point of E20, serialized to
// BENCH_pec.json by dcbench so equivalence-class-engine regressions diff
// cleanly.
type E20Row struct {
	Devices        int     `json:"devices"`
	AtomsPerDevice float64 `json:"atoms_per_device"`
	HopSets        int     `json:"hop_sets"`
	SlowContracts  int64   `json:"slow_path_contracts"`
	// DistinctShapes is the number of interned shapes in the shared atom
	// arena after the cold sweep; DedupRatio is devices per atomization
	// the arena actually performed (builds + locality fallbacks).
	DistinctShapes int     `json:"distinct_shapes"`
	DedupRatio     float64 `json:"dedup_ratio"`
	TrieColdNS     int64   `json:"trie_cold_busy_ns"`
	TrieWarmNS     int64   `json:"trie_warm_busy_ns"`
	// PECColdNS is the per-device cold path (arena disabled);
	// PECSharedColdNS is the same cold sweep through the shared arena.
	PECColdNS       int64 `json:"pec_cold_busy_ns"`
	PECSharedColdNS int64 `json:"pec_cold_shared_busy_ns"`
	PECWarmNS       int64 `json:"pec_warm_busy_ns"`
	// PrewarmShapes / PrewarmWallNS measure Prewarm on a fresh checker:
	// one fleet scan plus a worker pool atomizing each distinct shape.
	PrewarmShapes int     `json:"prewarm_shapes"`
	PrewarmWallNS int64   `json:"prewarm_wall_ns"`
	ColdSpeedup   float64 `json:"cold_shared_speedup"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	Identical     bool    `json:"identical"`
	SMTAgree      bool    `json:"smt_agree"`
}

// e20Busy sums the per-device validation times — pure checker work, no
// FIB-pull or scheduling time — so the trie-vs-PEC comparison is about
// the engines, not the harness.
func e20Busy(rep *rcdc.Report) time.Duration {
	var t time.Duration
	for i := range rep.Devices {
		t += rep.Devices[i].Elapsed
	}
	return t
}

// e20Point measures one fleet size: cold and warm full sweeps through the
// trie engine, the per-device PEC path, and the shared-arena PEC path,
// all at Workers=1 (sequential, so busy time has no lock-wait or
// scheduling noise), plus a Prewarm demo on a fresh checker. The synth
// table cache stays OFF: with it on, gigabytes of cached tables plus
// per-pull copies put GC assists inside the timed checker calls and made
// the warm trie sweep look ~2.3x slower than cold at 5080 devices (the
// PR 9 BENCH_pec.json anomaly) — the trie-warm pin gate below keeps that
// harness artifact from coming back.
//
// Panic gates (failing make pec-smoke):
//
//   - byte identity: every PEC report — per-device cold, shared cold,
//     warm, and post-Prewarm — must render byte-identically to the trie
//     engine's, on the same surface the shard-equivalence gate uses;
//   - SMT agreement: one device per role is cross-checked against the
//     independent bit-vector engine, on both PEC configurations;
//   - cold dedup floor: at >= 2008 devices the shared-arena cold sweep
//     must be >= 2x faster than the per-device cold sweep;
//   - prewarm accounting: Prewarm must build exactly the arena's distinct
//     shapes and leave nothing to build for the following sweep;
//   - speedup floor: when gateSpeedup is set (the largest size of a run),
//     the warm PEC sweep must beat the warm trie sweep by >= 2x and the
//     warm trie sweep must stay within 1.5x of the cold one.
func e20Point(n int, gateSpeedup bool) E20Row {
	topo := topology.MustNew(SizedParams("e20", n))
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	gen.EnableMemo()
	synth := bgp.NewSynth(topo, nil)

	pcPriv := &pec.Checker{DisableArena: true, Clock: Clock, Metrics: pecMetrics()}
	pcShared := &pec.Checker{Clock: Clock, Metrics: pecMetrics()}
	trieV := &rcdc.Validator{Workers: 1, Clock: Clock, Metrics: validatorMetrics(), Contracts: gen}
	privV := &rcdc.Validator{Checker: pcPriv, Workers: 1, Clock: Clock, Metrics: validatorMetrics(), Contracts: gen}
	sharedV := &rcdc.Validator{Checker: pcShared, Workers: 1, Clock: Clock, Metrics: validatorMetrics(), Contracts: gen}
	run := func(v *rcdc.Validator) *rcdc.Report {
		rep, err := v.ValidateAll(facts, synth)
		if err != nil {
			panic(err)
		}
		return rep
	}

	trieCold := run(trieV)
	trieWarm := run(trieV)
	privCold := run(privV)
	sharedCold := run(sharedV)
	sharedWarm := run(sharedV)

	// Prewarm demo: a fresh arena builds every distinct shape up front on
	// a worker pool; the sweep that follows must not atomize anything new.
	pcPre := &pec.Checker{Clock: Clock}
	preV := &rcdc.Validator{Checker: pcPre, Workers: 1, Clock: Clock, Contracts: gen}
	preStart := clock.Or(Clock).Now()
	preShapes, err := pcPre.Prewarm(facts, synth, gen, 0)
	if err != nil {
		panic(err)
	}
	preWall := clock.Since(Clock, preStart)
	preRun := run(preV)
	stPre := pcPre.Stats()
	if stPre.ShapeBuilds != int64(preShapes) {
		panic(fmt.Sprintf("e20: prewarm built %d shapes but the sweep atomized %d at %d devices",
			preShapes, stPre.ShapeBuilds, len(topo.Devices)))
	}

	truth := e19Render(trieCold)
	identical := bytes.Equal(truth, e19Render(trieWarm)) &&
		bytes.Equal(truth, e19Render(privCold)) &&
		bytes.Equal(truth, e19Render(sharedCold)) &&
		bytes.Equal(truth, e19Render(sharedWarm)) &&
		bytes.Equal(truth, e19Render(preRun))
	if !identical {
		panic(fmt.Sprintf("e20: PEC report diverges from trie engine at %d devices", len(topo.Devices)))
	}

	smtAgree := true
	seen := make(map[topology.Role]bool)
	for i := range topo.Devices {
		d := &topo.Devices[i]
		if seen[d.Role] {
			continue
		}
		seen[d.Role] = true
		tbl, err := synth.Table(d.ID)
		if err != nil {
			panic(err)
		}
		dc := gen.ForDevice(d.ID)
		smtViol, err := (rcdc.SMTChecker{Metrics: solverMetrics(), Clock: Clock}).CheckDevice(tbl, dc, d.Role)
		if err != nil {
			panic(err)
		}
		for _, pc := range []*pec.Checker{pcPriv, pcShared} {
			pecViol, err := pc.CheckDevice(tbl, dc, d.Role)
			if err != nil {
				panic(err)
			}
			if !sameViolations(smtViol, pecViol) {
				smtAgree = false
			}
		}
	}
	if !smtAgree {
		panic(fmt.Sprintf("e20: PEC verdicts diverge from the SMT engine at %d devices", len(topo.Devices)))
	}

	stPriv := pcPriv.Stats()
	stShared := pcShared.Stats()
	row := E20Row{
		Devices:         len(topo.Devices),
		HopSets:         stPriv.HopSets,
		SlowContracts:   stPriv.SlowPathContracts,
		DistinctShapes:  stShared.Shapes,
		TrieColdNS:      int64(e20Busy(trieCold)),
		TrieWarmNS:      int64(e20Busy(trieWarm)),
		PECColdNS:       int64(e20Busy(privCold)),
		PECSharedColdNS: int64(e20Busy(sharedCold)),
		PECWarmNS:       int64(e20Busy(sharedWarm)),
		PrewarmShapes:   preShapes,
		PrewarmWallNS:   int64(preWall),
		Identical:       identical,
		SMTAgree:        smtAgree,
	}
	if stPriv.Atomizations > 0 {
		row.AtomsPerDevice = float64(stPriv.Atoms) / float64(stPriv.Atomizations)
	}
	if w := stShared.ShapeBuilds + stShared.ShapeFallbacks; w > 0 {
		row.DedupRatio = float64(row.Devices) / float64(w)
	}
	if row.PECSharedColdNS > 0 {
		row.ColdSpeedup = float64(row.PECColdNS) / float64(row.PECSharedColdNS)
	}
	if row.PECWarmNS > 0 {
		row.WarmSpeedup = float64(row.TrieWarmNS) / float64(row.PECWarmNS)
	}
	if row.Devices >= 2008 && row.ColdSpeedup < 2.0 {
		panic(fmt.Sprintf("e20: shared-arena cold speedup %.2fx below the 2.0x floor at %d devices",
			row.ColdSpeedup, row.Devices))
	}
	if gateSpeedup && row.TrieWarmNS > 0 && row.WarmSpeedup < 2.0 {
		panic(fmt.Sprintf("e20: warm PEC speedup %.2fx below the 2.0x floor at %d devices",
			row.WarmSpeedup, row.Devices))
	}
	if gateSpeedup && row.TrieWarmNS > 3*row.TrieColdNS/2 {
		panic(fmt.Sprintf("e20: warm trie sweep %.2fx the cold one at %d devices — the table-cache GC artifact is back",
			float64(row.TrieWarmNS)/float64(row.TrieColdNS), row.Devices))
	}
	return row
}

// E20PEC benchmarks the packet-equivalence-class engine against the trie
// engine across fleet sizes: per size, cold full sweeps through the
// per-device path and the shared atom arena (near-clone devices dedupe
// to one atomization per distinct shape), a warm sweep (every device a
// content-hash cache hit — the monitoring steady state), and a Prewarm
// pass that builds all shapes up front on a worker pool. Every point is
// byte-identity-gated against the trie engine and cross-checked against
// the SMT engine on a per-role device sample; sizes >= 2008 must clear a
// 2x shared-cold dedup floor, and the largest point a 2x warm-speedup
// floor plus a trie warm-vs-cold regression pin. Any gate failure
// panics, so dcbench exits non-zero (the pec-smoke CI hook). The
// machine-readable rows back BENCH_pec.json.
func E20PEC(deviceCounts []int) (Result, []E20Row) {
	var b strings.Builder
	rows := make([]E20Row, 0, len(deviceCounts))
	fmt.Fprintf(&b, "%9s %7s %7s %11s %11s %11s %11s %11s %7s %7s %6s %6s\n",
		"devices", "shapes", "dedup", "trie-cold", "trie-warm", "pec-cold", "arena-cold", "pec-warm", "cold-x", "warm-x", "ident", "smt")
	for i, n := range deviceCounts {
		r := e20Point(n, i == len(deviceCounts)-1)
		rows = append(rows, r)
		fmt.Fprintf(&b, "%9d %7d %6.1fx %11s %11s %11s %11s %11s %6.1fx %6.1fx %6v %6v\n",
			r.Devices, r.DistinctShapes, r.DedupRatio,
			time.Duration(r.TrieColdNS).Round(time.Microsecond),
			time.Duration(r.TrieWarmNS).Round(time.Microsecond),
			time.Duration(r.PECColdNS).Round(time.Microsecond),
			time.Duration(r.PECSharedColdNS).Round(time.Microsecond),
			time.Duration(r.PECWarmNS).Round(time.Microsecond),
			r.ColdSpeedup, r.WarmSpeedup, r.Identical, r.SMTAgree)
	}
	return Result{
		ID:    "E20",
		Title: "packet-equivalence-class engine vs trie: shared-arena dedup and warm-sweep speedup with byte-identity gates",
		Table: b.String(),
		Notes: "cold sweeps atomize every FIB into destination equivalence classes — per-device (pec-cold) or once per distinct fleet shape through the shared atom arena (arena-cold); warm sweeps answer from content-hash caches (the monitoring steady state); every point renders byte-identically to the trie engine and agrees with the SMT engine on a per-role sample; sizes >= 2008 must clear a 2x shared-cold dedup floor and the largest point a 2x warm-speedup floor plus a trie warm<=1.5x-cold pin (the synth table cache once put GC assists inside timed checks and made warm sweeps look slower than cold) — violations panic, failing make pec-smoke; on single-core hosts (GOMAXPROCS=1, as in CI) the arena's cold win is pure dedup, with shape-parallel Prewarm adding on multi-core",
	}, rows
}
