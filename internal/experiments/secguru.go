package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bgp"
	"dcvalidate/internal/emulator"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/secguru"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

// E8ACLLatency measures SecGuru contract checking against ACL size (§3.2:
// "a few hundred rules ≈ 300ms, a few thousand ≈ 1s").
func E8ACLLatency(ruleCounts []int) Result {
	var b strings.Builder
	cs := workload.EdgeContracts()
	fmt.Fprintf(&b, "%10s %10s %12s %14s %10s\n",
		"rules", "contracts", "suite", "per-contract", "paper")
	for _, n := range ruleCounts {
		params := workload.EdgeACLParams{
			ServiceRules:    n * 8 / 10,
			DuplicateDenies: n / 10,
			ZeroDayDenies:   n - n*8/10 - n/10 - 15,
			Seed:            7,
		}
		if params.ZeroDayDenies < 0 {
			params.ZeroDayDenies = 0
		}
		pol := workload.GenerateLegacyEdgeACL(params)
		start := now()
		rep, err := secguru.Check(pol, cs)
		if err != nil {
			panic(err)
		}
		suite := since(start)
		if !rep.OK() {
			fmt.Fprintf(&b, "  UNEXPECTED contract failures\n")
		}
		paper := ""
		switch {
		case n <= 500:
			paper = "≈300ms"
		case n >= 2000:
			paper = "≈1s"
		}
		fmt.Fprintf(&b, "%10d %10d %12s %14s %10s\n",
			len(pol.Rules), len(cs),
			suite.Round(time.Millisecond),
			(suite / time.Duration(len(cs))).Round(time.Microsecond), paper)
	}
	return Result{
		ID:    "E8",
		Title: "SecGuru ACL analysis latency vs policy size (§3.2)",
		Table: b.String(),
		Notes: "paper: a few hundred rules ≈ 300ms, a few thousand ≈ 1s per analysis; growth is linear in policy size (Definition 3.1 encoding), matching here",
	}
}

// E9Refactor regenerates the Figure 11 series: the phased legacy Edge ACL
// refactoring with prechecks.
func E9Refactor() Result {
	legacy := workload.GenerateLegacyEdgeACL(workload.DefaultEdgeACLParams())
	steps := workload.BuildRefactorPlan(legacy)
	pl := &secguru.Plan{
		TestDevice: secguru.NewDevice("testdev", 0, 0, legacy),
		Devices: []*secguru.Device{
			secguru.NewDevice("edge-1", 0, 0, legacy),
			secguru.NewDevice("edge-2", 0, 0, legacy),
			secguru.NewDevice("edge-3", 1, 0, legacy),
			secguru.NewDevice("edge-4", 1, 0, legacy),
		},
		Contracts: workload.EdgeContracts(),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %8s %9s %7s\n", "change", "rules", "precheck", "groups")
	fmt.Fprintf(&b, "%-46s %8d %9s %7s\n", "(legacy ACL)", len(legacy.Rules), "-", "-")
	for _, st := range steps {
		res, err := pl.Apply(st.Change)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-46s %8d %9v %7d\n", st.Name, res.RuleCount, res.PrecheckOK, res.DeployedGroups)
	}
	// The typo scenario: prechecks stop a bad change.
	bad := workload.CorruptChange(steps[len(steps)-1].Change)
	res, err := pl.Apply(bad)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(&b, "%-46s %8d %9v %7d  <- typo caught, first failure: %s\n",
		bad.Name, res.RuleCount, res.PrecheckOK, res.DeployedGroups,
		res.PrecheckFails[0].Contract.Name)
	return Result{
		ID:    "E9",
		Title: "Figure 11: managing the complexity of a legacy ACL (§3.3)",
		Table: b.String(),
		Notes: "paper: several thousand rules reduced below 1000 across phased changes without outages; prechecks caught typos such as incorrect prefixes",
	}
}

// E10NSGIssues regenerates the Figure 12 series.
func E10NSGIssues() Result {
	pts, err := workload.SimulateNSGIssues(workload.DefaultNSGIssuesConfig())
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %10s %9s %9s %9s\n", "day", "customers", "changes", "rejected", "open")
	for _, p := range pts {
		if p.Day%10 != 0 {
			continue
		}
		fmt.Fprintf(&b, "%5d %10d %9d %9d %9d\n",
			p.Day, p.Customers, p.ChangesAttempts, p.Rejected, p.OpenIncidents)
	}
	return Result{
		ID:    "E10",
		Title: "Figure 12: customer NSG misconfiguration issues (§3.4)",
		Table: b.String(),
		Notes: "shape matches the paper: issues climb after the managed-database launch and fall steeply once SecGuru validation gates the NSG change API (~day 100); every candidate change here is checked by the real engine",
	}
}

// E11Firewall validates the §3.5 distributed-firewall deployment gate.
func E11Firewall() Result {
	tmpl := secguru.FirewallTemplate{
		Infrastructure: []ipnet.Prefix{
			ipnet.MustParsePrefix("168.63.129.0/24"),
			ipnet.MustParsePrefix("169.254.169.0/24"),
		},
		TenantRanges: []ipnet.Prefix{ipnet.MustParsePrefix("10.4.0.0/16")},
		OtherTenants: []ipnet.Prefix{
			ipnet.MustParsePrefix("10.5.0.0/16"),
			ipnet.MustParsePrefix("10.6.0.0/16"),
		},
	}
	good := tmpl.Generate()
	var b strings.Builder
	err := secguru.GateDeployment(good, tmpl)
	fmt.Fprintf(&b, "correct template config: gate=%v\n", err == nil)
	caught := 0
	denies := 0
	for i := range good.Rules {
		if good.Rules[i].Action == acl.Deny {
			denies++
			bad := good.Clone()
			bad.Rules = append(bad.Rules[:i], bad.Rules[i+1:]...)
			if secguru.GateDeployment(bad, tmpl) != nil {
				caught++
			}
		}
	}
	fmt.Fprintf(&b, "omitted-restriction bugs injected: %d, caught by gate: %d\n", denies, caught)
	return Result{
		ID:    "E11",
		Title: "distributed firewall template validation (§3.5)",
		Table: b.String(),
		Notes: "paper: gating deployments on validation eradicated accidentally omitted restrictions; every injected omission is caught",
	}
}

// E12Precheck exercises the Figure 7 pipeline on good and bad changes.
func E12Precheck() Result {
	topo := topology.MustNew(topology.Figure3Params())
	pipe := &emulator.Pipeline{Production: emulator.NewNetwork(topo)}
	type tc struct {
		name   string
		change emulator.Change
	}
	leaf := topo.ClusterLeaves(0)[0]
	cases := []tc{
		{"raise ECMP limit (benign)", emulator.SetConfig{Device: topo.ToRs()[0], Config: bgp.DeviceConfig{MaxECMPPaths: 64}}},
		{"route-map rejects default", emulator.SetConfig{Device: leaf, Config: bgp.DeviceConfig{RejectDefaultIn: true}}},
		{"ECMP limited to 1 path", emulator.SetConfig{Device: topo.ToRs()[1], Config: bgp.DeviceConfig{MaxECMPPaths: 1}}},
		{"migration ASN clash", emulator.SetConfig{Device: topo.ClusterLeaves(1)[0], Config: bgp.DeviceConfig{ASNOverride: topo.Device(topo.ClusterLeaves(0)[0]).ASN}}},
		{"shut ToR uplink session", emulator.SetLinkState{A: topo.ClusterToRs(1)[0], B: topo.ClusterLeaves(1)[1], Up: true, SessionUp: false}},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %9s %14s\n", "proposed change", "approved", "newViolations")
	for _, c := range cases {
		res, err := pipe.Precheck(c.change)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-32s %9v %14d\n", c.name, res.Approved, len(res.NewViolations))
	}
	return Result{
		ID:    "E12",
		Title: "Figure 7: precheck pipeline for network changes (§2.7)",
		Table: b.String(),
		Notes: "dangerous changes (software bugs, policy errors, interoperability issues) are caught in emulation before reaching production; benign changes pass",
	}
}

// E13bIncremental is the incremental-validation ablation: steady-state
// monitoring cycles with and without unchanged-device skipping.
func E13bIncremental(devices int) Result {
	p := SizedParams("e13b", devices)
	run := func(skip bool) (first, steady time.Duration, skipped int) {
		topo := topology.MustNew(p)
		// One persistent fault so the steady state isn't trivially empty.
		topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
		in := monitor.NewInstance("e13b", monitor.NewDatacenter("dc", topo, nil))
		in.Workers = 16
		in.SkipUnchanged = skip
		s1, err := in.RunCycle()
		if err != nil {
			panic(err)
		}
		s2, err := in.RunCycle()
		if err != nil {
			panic(err)
		}
		return s1.ValidateTime, s2.ValidateTime, s2.Skipped
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %14s %9s\n", "mode", "firstCycle", "steadyCycle", "skipped")
	f1, s1, k1 := run(false)
	fmt.Fprintf(&b, "%-14s %12s %14s %9d\n", "full", f1.Round(time.Millisecond), s1.Round(time.Millisecond), k1)
	f2, s2, k2 := run(true)
	fmt.Fprintf(&b, "%-14s %12s %14s %9d\n", "incremental", f2.Round(time.Millisecond), s2.Round(time.Millisecond), k2)
	return Result{
		ID:    "E13b",
		Title: "incremental validation: skipping unchanged devices",
		Table: b.String(),
		Notes: "steady-state cycles revalidate only devices whose stored table/contract documents changed, the monitoring-loop analogue of the incremental techniques the paper cites ([21], [50]); results carry forward so the violation counts are unchanged",
	}
}

// E13Monitor measures monitoring-service throughput (§2.6.1: 200–800ms
// fetch, O(100)ms validation, O(10K) devices per instance).
func E13Monitor(deviceCounts []int) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %9s %14s %14s %16s\n",
		"devices", "workers", "modeledPull", "validate", "devices/sec/inst")
	for _, n := range deviceCounts {
		p := SizedParams("e13", n)
		topo := topology.MustNew(p)
		in := monitor.NewInstance("inst", monitor.NewDatacenter("dc", topo, nil))
		in.Workers = 64 // a puller fleet is I/O-bound; use wide concurrency
		stats, err := in.RunCycle()
		if err != nil {
			panic(err)
		}
		cycle := stats.ModeledPullTime + stats.ValidateTime
		rate := float64(stats.Devices) / cycle.Seconds()
		fmt.Fprintf(&b, "%10d %9d %14s %14s %16.0f\n",
			stats.Devices, in.Workers,
			stats.ModeledPullTime.Round(time.Millisecond),
			stats.ValidateTime.Round(time.Millisecond), rate)
	}
	return Result{
		ID:    "E13",
		Title: "monitoring service throughput (§2.6.1)",
		Table: b.String(),
		Notes: "per-device fetch modeled at 200–800ms as in the paper; with the paper's O(10K) devices per instance a cycle completes within minutes and scales horizontally by adding instances",
	}
}
