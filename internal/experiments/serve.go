package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/engine"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/serve"
	"dcvalidate/internal/shard"
	"dcvalidate/internal/topology"
)

// E19Row is one machine-readable point of the serving-plane experiment
// (serialized into BENCH_serve.json by dcbench): one (fleet size, shard
// count) combination with its sweep scaling, byte-identity verdict, and
// HTTP query latencies cached vs cold.
type E19Row struct {
	Devices      int     `json:"devices"`
	Shards       int     `json:"shards"`
	SweepNs      int64   `json:"sweepNs"`      // cold full sweep through the coordinator
	DeltaSweepNs int64   `json:"deltaSweepNs"` // sweep after one journaled link failure
	Identical    bool    `json:"identical"`    // merged report byte-identical to single engine
	ColdNs       int64   `json:"coldQueryNs"`  // HTTP query that must revalidate first
	CachedP50Ns  int64   `json:"cachedP50Ns"`
	CachedP99Ns  int64   `json:"cachedP99Ns"`
	CachedQPS    float64 `json:"cachedQPS"`
	CacheHits    float64 `json:"cacheHits"` // serve-cache hits during the cached phase
}

// e19Render is the byte-identity surface of the shard-equivalence
// contract: everything in a report except timing and worker counts.
func e19Render(rep *rcdc.Report) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "checked=%d failures=%d\n", rep.Checked, rep.Failures)
	for i := range rep.Devices {
		d := &rep.Devices[i]
		fmt.Fprintf(&buf, "dev=%d name=%s role=%s contracts=%d\n", d.Device, d.Name, d.Role, d.Contracts)
		for _, v := range d.Violations {
			fmt.Fprintf(&buf, "  %s\n", v.String())
		}
	}
	return buf.Bytes()
}

// e19Truth is a from-scratch single-engine full sweep over the
// topology's current state.
func e19Truth(topo *topology.Topology) *rcdc.Report {
	v := rcdc.Validator{Workers: 2, Metrics: validatorMetrics()}
	rep, err := v.ValidateAll(metadata.FromTopology(topo), bgp.NewSynth(topo, nil))
	if err != nil {
		panic(err)
	}
	return rep
}

// e19Identity certifies the coordinator against the single engine for
// one shard count: a clean full sweep and a journaled-delta sweep after
// a ToR–leaf link failure must both render byte-identically to a
// from-scratch sweep. Any divergence panics (failing make serve-smoke).
// Returns the two coordinator sweep walls.
func e19Identity(topo *topology.Topology, n int) (sweep, deltaSweep time.Duration) {
	co := shard.New(topo, nil, n, shard.Options{Clock: Clock})

	start := now()
	rep, err := co.Sweep()
	if err != nil {
		panic(err)
	}
	sweep = since(start)
	if !bytes.Equal(e19Render(rep), e19Render(e19Truth(topo))) {
		panic(fmt.Sprintf("e19: %d-shard clean sweep diverges from single engine", n))
	}

	tor := topo.ClusterToRs(0)[0]
	leaf := topo.ClusterLeaves(0)[0]
	if !topo.FailLink(tor, leaf) {
		panic("e19: FailLink failed")
	}
	start = now()
	rep, err = co.Sweep()
	if err != nil {
		panic(err)
	}
	deltaSweep = since(start)
	identical := bytes.Equal(e19Render(rep), e19Render(e19Truth(topo)))
	if !topo.RestoreLink(tor, leaf) {
		panic("e19: RestoreLink failed")
	}
	if !identical {
		panic(fmt.Sprintf("e19: %d-shard delta sweep diverges from single engine", n))
	}
	return sweep, deltaSweep
}

// e19Sample reads one registry series (alternating label key/value
// pairs must all match; missing series read as 0).
func e19Sample(reg *obs.Registry, name string, labels ...string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return 0
}

func e19Sweeps(reg *obs.Registry) float64 {
	return e19Sample(reg, "dcv_serve_sweeps_total", "mode", "single") +
		e19Sample(reg, "dcv_serve_sweeps_total", "mode", "sharded")
}

// e19Get issues one GET and drains the body (keep-alive reuse); panics
// on transport errors or non-200s — the loadgen runs against a server
// it just booted, so failures are harness bugs, not results.
func e19Get(client *http.Client, url string) time.Duration {
	start := now()
	resp, err := client.Get(url)
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("e19: GET %s = %d: %s", url, resp.StatusCode, body))
	}
	return since(start)
}

func e19Percentile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// e19Loadgen boots a dcvalidated server over an engine with n shards and
// replays a query stream against it: a few cold queries (each preceded
// by a link flap through the API, so the engine must revalidate) and a
// concurrent cached stream. Two gates are armed: every cached request
// must land as a dcv_serve_cache_hits_total increment, and the cached
// phase must not trigger a single revalidation sweep.
func e19Loadgen(p topology.Params, n, coldSamples, cachedSamples, concurrency int) (cold, p50, p99 time.Duration, qps, hits float64) {
	topo := topology.MustNew(p)
	eng := engine.New(topo, nil)
	reg := eng.Metrics()
	if n > 1 {
		eng.EnableSharding(n)
	}
	srv := serve.New(eng)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// Rotate queries across ToRs in distinct clusters so cached answers
	// exercise different report slots, not one hot row.
	var names []string
	for c := 0; c < topo.Params.Clusters; c++ {
		names = append(names, topo.Device(topo.ClusterToRs(c)[0]).Name)
	}
	tor := topo.Device(topo.ClusterToRs(0)[0]).Name
	leaf := topo.Device(topo.ClusterLeaves(0)[0]).Name

	// Cold: flip the link through the API (invalidate), then query. The
	// measured latency includes the delta revalidation the query forces.
	var coldTotal time.Duration
	for i := 0; i < coldSamples; i++ {
		action := "fail"
		if i%2 == 1 {
			action = "restore"
		}
		resp, err := client.Post(fmt.Sprintf("%s/link?a=%s&b=%s&action=%s", base, tor, leaf, action), "", nil)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		coldTotal += e19Get(client, base+"/device?name="+names[i%len(names)])
	}
	cold = coldTotal / time.Duration(coldSamples)
	if coldSamples%2 == 1 { // leave the fleet healthy for the cached phase
		resp, err := client.Post(fmt.Sprintf("%s/link?a=%s&b=%s&action=restore", base, tor, leaf), "", nil)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Warm once so the cached stream starts from a valid report.
	e19Get(client, base+"/device?name="+names[0])

	hitsBefore := e19Sample(reg, "dcv_serve_cache_hits_total")
	sweepsBefore := e19Sweeps(reg)

	durs := make([][]time.Duration, concurrency)
	var wg sync.WaitGroup
	perWorker := cachedSamples / concurrency
	start := now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &http.Client{}
			for i := 0; i < perWorker; i++ {
				url := base + "/device?name=" + names[(w+i)%len(names)]
				durs[w] = append(durs[w], e19Get(c, url))
			}
		}(w)
	}
	wg.Wait()
	wall := since(start)

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	hits = e19Sample(reg, "dcv_serve_cache_hits_total") - hitsBefore
	if hits < float64(len(all)) {
		panic(fmt.Sprintf("e19: %d cached queries but only %.0f cache hits — cached serving is not O(1)", len(all), hits))
	}
	if sweeps := e19Sweeps(reg) - sweepsBefore; sweeps != 0 {
		panic(fmt.Sprintf("e19: cached query stream triggered %.0f revalidation sweep(s)", sweeps))
	}
	return cold, e19Percentile(all, 0.50), e19Percentile(all, 0.99),
		float64(len(all)) / wall.Seconds(), hits
}

// E19Serve measures the sharded serving plane end to end: for each fleet
// size and shard count N ∈ {1, 2, 5}, the coordinator's merged report is
// certified byte-identical to a single-engine sweep (clean and after a
// journaled link failure), then an HTTP load generator replays a query
// stream against a freshly booted dcvalidated server, reporting cached
// p50/p99/QPS against the cold (revalidating) latency. Three panic gates
// arm make serve-smoke: byte-identity divergence, a cached query that
// does not increment dcv_serve_cache_hits_total, and any revalidation
// sweep during the cached phase.
func E19Serve(deviceCounts []int) (Result, []E19Row) {
	const (
		coldSamples   = 2
		cachedSamples = 400
		concurrency   = 4
	)
	shardCounts := []int{1, 2, 5}

	var b strings.Builder
	var rows []E19Row
	fmt.Fprintf(&b, "%10s %7s %10s %10s %10s %11s %11s %9s %9s\n",
		"devices", "shards", "sweep", "deltaSweep", "coldQuery", "cachedP50", "cachedP99", "QPS", "identical")
	for _, n := range deviceCounts {
		p := SizedParams("e19", n)
		devices := len(topology.MustNew(p).Devices)
		for _, ns := range shardCounts {
			sweep, deltaSweep := e19Identity(topology.MustNew(p), ns)
			cold, p50, p99, qps, hits := e19Loadgen(p, ns, coldSamples, cachedSamples, concurrency)
			row := E19Row{
				Devices:      devices,
				Shards:       ns,
				SweepNs:      sweep.Nanoseconds(),
				DeltaSweepNs: deltaSweep.Nanoseconds(),
				Identical:    true, // divergence panics in e19Identity
				ColdNs:       cold.Nanoseconds(),
				CachedP50Ns:  p50.Nanoseconds(),
				CachedP99Ns:  p99.Nanoseconds(),
				CachedQPS:    qps,
				CacheHits:    hits,
			}
			rows = append(rows, row)
			fmt.Fprintf(&b, "%10d %7d %10s %10s %10s %11s %11s %9.0f %9v\n",
				row.Devices, ns,
				sweep.Round(time.Millisecond), deltaSweep.Round(time.Millisecond),
				cold.Round(time.Microsecond),
				p50.Round(time.Microsecond), p99.Round(time.Microsecond),
				qps, row.Identical)
		}
	}
	return Result{
		ID:    "E19",
		Title: "sharded serving plane: byte-identity, cache hit rate, query latency",
		Table: b.String(),
		Notes: "merged shard reports are byte-identical to single-engine sweeps (gate armed); cached queries are generation-checked cache hits — O(1), independent of fleet size and shard count — while cold queries pay one delta revalidation; QPS is a 4-way concurrent stream over HTTP loopback",
	}, rows
}
