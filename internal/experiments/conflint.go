package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bgp"
	"dcvalidate/internal/conflint"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// E18Row is one machine-readable sweep point (BENCH_conflint.json).
type E18Row struct {
	Devices         int     `json:"devices"`
	SeededInstances int     `json:"seededInstances"`
	SeededClasses   int     `json:"seededClasses"`
	DetectedClasses int     `json:"detectedClasses"`
	Findings        int     `json:"findings"`
	CleanFindings   int     `json:"cleanFindings"`
	LintMs          float64 `json:"lintMs"`
	ValidateMs      float64 `json:"validateMs"`
	Speedup         float64 `json:"speedup"`
}

// e18Seed is one planted misconfiguration: the device whose config is
// mutated, the analyzer class expected to fire, the device the finding
// must land on (usually the mutated device; for one-sided declarations
// it is the abandoned peer), and the mutation itself.
type e18Seed struct {
	class    string
	host     string
	expectOn string
	mutate   func(*devconf.Spec)
}

// E18Conflint is the detection experiment for the configuration
// multichecker: render a clean fleet, require a findings-free lint (zero
// false positives), seed every misconfiguration class the analyzers
// cover, and require 100% class detection — with the report byte-stable
// across runs and the acl-shadow SMT verdicts agreeing with the exact
// interval engine. The timing columns compare a static lint of the whole
// fleet against full validation (FIB synthesis + trie contract sweep) of
// the same topology: the static pass is what you can afford on every
// config push.
//
// Gates (all panic, wired into CI as `make conflint-smoke`):
//   - clean fleet lints to zero findings;
//   - every seeded class is detected on the expected device;
//   - the seeded report is byte-identical across two runs;
//   - acl-shadow's SMT and interval engines agree rule-for-rule.
func E18Conflint(sizes []int) (Result, []E18Row) {
	var b strings.Builder
	fmt.Fprintf(&b, "%9s %8s %9s %10s %9s %12s %12s %9s\n",
		"devices", "seeded", "classes", "detected", "findings", "lint", "validate", "speedup")
	var rows []E18Row
	for _, n := range sizes {
		row := e18Point(n)
		rows = append(rows, row)
		fmt.Fprintf(&b, "%9d %8d %9d %10d %9d %12s %12s %8.1fx\n",
			row.Devices, row.SeededInstances, row.SeededClasses, row.DetectedClasses,
			row.Findings,
			(time.Duration(row.LintMs * float64(time.Millisecond))).Round(10*time.Microsecond),
			(time.Duration(row.ValidateMs * float64(time.Millisecond))).Round(10*time.Microsecond),
			row.Speedup)
	}
	return Result{
		ID:    "E18",
		Title: "configuration static analysis: seeded-misconfig detection and lint cost",
		Table: b.String(),
		Notes: "gates: zero findings on the clean fleet, 100% detection of seeded classes, byte-stable report, SMT/interval shadow agreement; lint column is the full-fleet static pass, validate column a 1-worker trie sweep incl. FIB synthesis",
	}, rows
}

func e18Point(n int) E18Row {
	topo := topology.MustNew(SizedParams("e18", n))
	clean, err := devconf.RenderFleet(topo, nil)
	if err != nil {
		panic(err)
	}
	runner := &conflint.Runner{Clock: Clock, Metrics: conflintMetrics()}

	lintStart := now()
	cleanRep := lintFleet(runner, topo, clean)
	lintElapsed := since(lintStart)
	if len(cleanRep.Findings) != 0 {
		panic(fmt.Sprintf("e18: clean fleet of %d devices has %d findings (false positives):\n%s",
			len(topo.Devices), len(cleanRep.Findings), cleanRep))
	}

	// Full validation of the same (clean) fleet for the cost column.
	valStart := now()
	facts := metadata.FromTopology(topo)
	v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}
	rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		panic(err)
	}
	valElapsed := since(valStart)
	if len(rep.Violations()) != 0 {
		panic("e18: clean fleet fails full validation")
	}

	// Seed every misconfiguration class on deterministic devices.
	seeded := make(map[string]string, len(clean))
	for host, text := range clean {
		seeded[host] = text
	}
	seeds := e18Seeds(topo, seeded)
	for _, s := range seeds {
		spec, err := devconf.Parse(strings.NewReader(seeded[s.host]))
		if err != nil {
			panic(err)
		}
		s.mutate(spec)
		seeded[s.host] = spec.Text()
	}

	seededRep := lintFleet(runner, topo, seeded)
	if again := lintFleet(runner, topo, seeded); again.String() != seededRep.String() {
		panic("e18: seeded report not byte-identical across runs")
	}

	classes := map[string]bool{}
	detected := map[string]bool{}
	for _, s := range seeds {
		classes[s.class] = true
	}
	for _, s := range seeds {
		for _, f := range seededRep.Findings {
			if f.Analyzer == s.class && f.Device == s.expectOn {
				detected[s.class] = true
				break
			}
		}
	}
	for class := range classes {
		if !detected[class] {
			panic(fmt.Sprintf("e18: seeded class %q not detected; report:\n%s", class, seededRep))
		}
	}

	lintMs := float64(lintElapsed) / float64(time.Millisecond)
	valMs := float64(valElapsed) / float64(time.Millisecond)
	speedup := 0.0
	if lintMs > 0 {
		speedup = valMs / lintMs
	}
	return E18Row{
		Devices:         len(topo.Devices),
		SeededInstances: len(seeds),
		SeededClasses:   len(classes),
		DetectedClasses: len(detected),
		Findings:        len(seededRep.Findings),
		CleanFindings:   len(cleanRep.Findings),
		LintMs:          lintMs,
		ValidateMs:      valMs,
		Speedup:         speedup,
	}
}

func lintFleet(r *conflint.Runner, topo *topology.Topology, configs map[string]string) *conflint.Report {
	fleet, err := conflint.NewFleet(topo, configs)
	if err != nil {
		panic(err)
	}
	rep, err := r.Run(fleet)
	if err != nil {
		panic(err)
	}
	return rep
}

// e18Seeds plants at least one instance of every analyzer class; the
// device picks are deterministic tier indices so reports are stable.
func e18Seeds(topo *topology.Topology, configs map[string]string) []e18Seed {
	name := func(id topology.DeviceID) string { return topo.Device(id).Name }
	tors, leaves := topo.ToRs(), topo.Leaves()
	spines, rspines := topo.Spines(), topo.RegionalSpines()

	// The peer abandoned by the one-sided-declaration seed reports it.
	t0 := name(tors[0])
	spec, err := devconf.Parse(strings.NewReader(configs[t0]))
	if err != nil {
		panic(err)
	}
	peerID, ok := topo.DeviceByAddr(spec.Neighbors[0].Addr)
	if !ok {
		panic("e18: ToR neighbor address unresolvable")
	}

	shadowACL := devconf.ACL{
		Name: "EDGE-IN",
		Rules: []acl.Rule{
			mustRule("permit tcp 10.0.0.0/8 any eq 443"),
			mustRule("deny tcp 10.0.0.0/8 any eq 443"),
			mustRule("permit ip any any"),
		},
		RulePos: make([]devconf.Pos, 3),
	}
	// The gate's differential cross-check, surfaced explicitly: the SMT
	// and interval engines must agree on the seeded policy.
	pol := shadowACL.Policy()
	smt, err := conflint.ShadowedRulesSMT(pol)
	if err != nil {
		panic(err)
	}
	exact := conflint.ShadowedRulesInterval(pol)
	for i := range smt {
		if smt[i] != exact[i] {
			panic(fmt.Sprintf("e18: shadow engines disagree on rule %d", i+1))
		}
	}

	return []e18Seed{
		{"session-symmetry", t0, name(peerID),
			func(s *devconf.Spec) { s.Neighbors = s.Neighbors[1:] }},
		{"session-symmetry", name(tors[1]), name(tors[1]),
			func(s *devconf.Spec) { s.Neighbors[0].RemoteAS++ }},
		{"session-symmetry", name(leaves[0]), name(leaves[0]),
			func(s *devconf.Spec) { s.Neighbors[0].Shutdown = true }},
		{"asn-plan", name(leaves[1]), name(leaves[1]),
			func(s *devconf.Spec) { s.ASN = 65000 }},
		{"asn-plan", name(spines[0]), name(spines[0]),
			func(s *devconf.Spec) { s.ASN = 3320 }}, // public: leaks past E15 stripping
		{"ref-integrity", name(tors[2]), name(tors[2]),
			func(s *devconf.Spec) { s.Neighbors[0].RouteMapIn = "NO-SUCH-MAP" }},
		{"ref-integrity", name(rspines[0]), name(rspines[0]),
			func(s *devconf.Spec) {
				s.RouteMaps = append(s.RouteMaps, devconf.RouteMap{Name: "STALE", Seq: 10})
			}},
		{"prefix-origin", name(tors[3]), name(tors[3]),
			func(s *devconf.Spec) {
				s.Networks = append(s.Networks, topo.Device(tors[0]).HostedPrefixes[0])
			}},
		{"prefix-origin", name(tors[4]), name(tors[4]),
			func(s *devconf.Spec) { s.Networks = nil }},
		{"prefix-origin", name(tors[5]), name(tors[5]),
			func(s *devconf.Spec) { s.Networks = append(s.Networks, s.Networks[0]) }},
		{"ecmp-consistency", name(leaves[2]), name(leaves[2]),
			func(s *devconf.Spec) { s.MaxPaths = 1 }},
		{"acl-shadow", name(rspines[1]), name(rspines[1]),
			func(s *devconf.Spec) { s.ACLs = append(s.ACLs, shadowACL) }},
	}
}

func mustRule(line string) acl.Rule {
	r, err := acl.ParseIOSRule(strings.Fields(line), 1)
	if err != nil {
		panic(err)
	}
	return r
}
