// Package experiments implements the reproduction harness for every
// quantitative table, figure, and claim in the paper's evaluation (see
// DESIGN.md's experiment index E1–E14). Each experiment returns both a
// machine-readable result and a formatted paper-style text block; the
// dcbench command prints them and the root bench_test.go benchmarks wrap
// the measured kernels.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// SizedParams returns generator parameters for a datacenter of roughly n
// devices with paper-like fan-outs (ToRs dominate the device count, each
// ToR hosting one /24, leaves in 8 planes).
func SizedParams(name string, n int) topology.Params {
	// Fixed shape ratios: per cluster 40 ToRs + 8 leaves; 8 planes x 4
	// spines; 8 regional spines.
	p := topology.Params{
		Name:             name,
		ToRsPerCluster:   40,
		LeavesPerCluster: 8,
		SpinesPerPlane:   4,
		RegionalSpines:   8,
		RSLinksPerSpine:  4,
		PrefixesPerToR:   1,
	}
	fixed := p.LeavesPerCluster*p.SpinesPerPlane + p.RegionalSpines
	perCluster := p.ToRsPerCluster + p.LeavesPerCluster
	p.Clusters = (n - fixed + perCluster - 1) / perCluster
	if p.Clusters < 1 {
		p.Clusters = 1
	}
	return p
}

// Result is one experiment's outcome: an identifier, the formatted rows,
// and free-form notes comparing against the paper.
type Result struct {
	ID    string
	Title string
	Table string
	Notes string
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	if r.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", r.Notes)
	}
	return b.String()
}

// E1PerDevice measures per-device validation latency (§2.6.3: "RCDC takes
// 180ms to verify all contracts on a single device on average") on devices
// whose tables hold several thousand prefixes.
func E1PerDevice(prefixCounts []int, sample int) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %12s %16s %16s\n",
		"prefixes", "contracts", "tableRules", "trie/device", "paper")
	for _, n := range prefixCounts {
		p := SizedParams("e1", 0)
		p.Clusters = (n + p.ToRsPerCluster - 1) / p.ToRsPerCluster
		topo := topology.MustNew(p)
		facts := metadata.FromTopology(topo)
		gen := contracts.NewGenerator(facts)
		src := bgp.NewSynth(topo, nil)
		v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}

		// Sample ToRs spread across clusters (ToRs carry the big tables).
		tors := topo.ToRs()
		step := len(tors) / sample
		if step == 0 {
			step = 1
		}
		var total time.Duration
		var contractsPerDev, rules int
		count := 0
		for i := 0; i < len(tors) && count < sample; i += step {
			tbl, err := src.Table(tors[i])
			if err != nil {
				panic(err)
			}
			dc := gen.ForDevice(tors[i])
			start := now()
			if _, err := v.ValidateDevice(facts, tbl, dc); err != nil {
				panic(err)
			}
			total += since(start)
			contractsPerDev = len(dc.Contracts)
			rules = tbl.Len()
			count++
		}
		fmt.Fprintf(&b, "%10d %10d %12d %16s %16s\n",
			n, contractsPerDev, rules,
			(total / time.Duration(count)).Round(time.Microsecond), "≈180ms")
	}
	return Result{
		ID:    "E1",
		Title: "per-device validation latency (§2.6.3)",
		Table: b.String(),
		Notes: "paper: 180ms average per device with several thousand contracts; the trie engine here is typically faster since the synthetic tables lack vendor parsing overhead — shape matches (linear in contracts)",
	}
}

// E2Sweep validates entire datacenters of increasing size (§1/§2.6.3:
// 10^4 routers in under 3 minutes on a single CPU). Each sweep point is
// validated twice — pinned to one worker (the paper's single-CPU claim)
// and at Workers = NumCPU — so the "embarrassingly parallel" claim is
// exercised and reported as a speedup column.
//
// The parallel leg forces GOMAXPROCS up to NumCPU for its duration: a
// harness launched with GOMAXPROCS=1 would otherwise time-slice the
// worker goroutines on one core and silently report ~1.0x speedup (the
// PR 5 bench gap). Hosts that genuinely cannot exercise multi-core get
// an explicit warning instead of a misleading number.
func E2Sweep(deviceCounts []int) Result {
	var b strings.Builder
	host := runtime.NumCPU()
	configured := runtime.GOMAXPROCS(0)
	par := host
	if configured < host {
		runtime.GOMAXPROCS(host)
		defer runtime.GOMAXPROCS(configured)
		fmt.Fprintf(&b, "note: GOMAXPROCS raised %d -> %d (NumCPU) for the parallel leg\n",
			configured, host)
	}
	if host == 1 {
		fmt.Fprintf(&b, "WARNING: single-CPU host — the parallel leg cannot exercise multi-core; speedup ~1.0x is an environment limit, not a result\n")
	}
	fmt.Fprintf(&b, "%10s %10s %11s %12s %12s %9s %8s\n",
		"devices", "prefixes", "contracts", "wall(1cpu)", fmt.Sprintf("wall(%dw)", par), "speedup", "paper")
	for _, n := range deviceCounts {
		p := SizedParams("e2", n)
		topo := topology.MustNew(p)
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)

		v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}
		start := now()
		rep, err := v.ValidateAll(facts, src)
		if err != nil {
			panic(err)
		}
		wall := since(start)

		v.Workers = par
		start = now()
		repPar, err := v.ValidateAll(facts, src)
		if err != nil {
			panic(err)
		}
		wallPar := since(start)

		note := ""
		if n >= 10000 {
			note = "<3min"
		}
		speedup := float64(wall) / float64(wallPar)
		fmt.Fprintf(&b, "%10d %10d %11d %12s %12s %8.2fx %8s\n",
			len(topo.Devices), len(topo.HostedPrefixes()), rep.Checked,
			wall.Round(time.Millisecond), wallPar.Round(time.Millisecond),
			speedup, note)
		if rep.Failures != 0 || repPar.Failures != 0 {
			fmt.Fprintf(&b, "  UNEXPECTED: %d/%d violations on healthy DC\n", rep.Failures, repPar.Failures)
		}
		if par > 1 && wall >= 50*time.Millisecond && speedup < 1.2 {
			fmt.Fprintf(&b, "  WARNING: effective parallelism %.2fx with %d workers — host cores may be throttled or oversubscribed\n",
				speedup, par)
		}
	}
	return Result{
		ID:    "E2",
		Title: "whole-datacenter local validation sweep (§1, §2.6.3)",
		Table: b.String(),
		Notes: fmt.Sprintf("paper: all-pairs redundant routes for a 10^4-router datacenter checked in <3 minutes on one CPU; local checks parallelize embarrassingly — parallel leg ran %d workers on %d host CPUs", par, host),
	}
}

// E3LocalVsGlobal compares local validation against the global
// all-pairs snapshot baseline (§1, §2.4).
func E3LocalVsGlobal(deviceCounts []int) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %12s %12s %9s %14s\n",
		"devices", "pairs", "local", "global", "ratio", "snapshotRules")
	for _, n := range deviceCounts {
		p := SizedParams("e3", n)
		topo := topology.MustNew(p)
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)

		v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}
		start := now()
		if _, err := v.ValidateAll(facts, src); err != nil {
			panic(err)
		}
		local := since(start)

		start = now()
		g, err := rcdc.NewGlobalChecker(topo, src)
		if err != nil {
			panic(err)
		}
		fails := g.Check(rcdc.FullRedundancy)
		global := since(start)
		if len(fails) != 0 {
			fmt.Fprintf(&b, "  UNEXPECTED global failures: %d\n", len(fails))
		}
		// Snapshot footprint: total routing rules materialized at once.
		snapshotRules := 0
		for i := range topo.Devices {
			tbl, _ := src.Table(topology.DeviceID(i))
			snapshotRules += tbl.Len()
		}
		fmt.Fprintf(&b, "%10d %10d %12s %12s %8.1fx %14d\n",
			len(topo.Devices), g.Pairs(),
			local.Round(time.Millisecond), global.Round(time.Millisecond),
			float64(global)/float64(local), snapshotRules)
	}
	return Result{
		ID:    "E3",
		Title: "local contracts vs global snapshot verification (§1, §2.4)",
		Table: b.String(),
		Notes: "the global baseline must hold every device's table simultaneously and walk all (ToR, prefix) pairs; local validation touches one device at a time — the paper's core scalability argument",
	}
}
