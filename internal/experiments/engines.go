package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/contracts"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/monitor"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
	"dcvalidate/internal/workload"
)

// E4Row is one machine-readable sweep point of E4, serialized to
// BENCH_solver.json by dcbench so solver-perf regressions diff cleanly.
type E4Row struct {
	Rules         int     `json:"rules"`
	Contracts     int     `json:"contracts"`
	SMTDeviceNS   int64   `json:"smt_device_ns"`
	SMTContractNS int64   `json:"smt_contract_ns"`
	SMTParDevNS   int64   `json:"smt_par_device_ns"`
	Workers       int     `json:"workers"`
	TrieDeviceNS  int64   `json:"trie_device_ns"`
	TrieSpeedup   float64 `json:"trie_speedup"`
	Match         bool    `json:"match"`
}

// violationKey is the differential-oracle identity of a violation — the
// same key the trie-vs-SMT tests use. Witness details (counterexample
// addresses, matched rule prefixes) are engine- and schedule-dependent
// and deliberately excluded.
func violationKey(v rcdc.Violation) string {
	return fmt.Sprintf("%d|%v|%v", v.Device, v.Contract.Prefix, v.Kind)
}

func sameViolations(a, b []rcdc.Violation) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]int, len(a))
	for _, v := range a {
		set[violationKey(v)]++
	}
	for _, v := range b {
		set[violationKey(v)]--
	}
	for _, n := range set {
		if n != 0 {
			return false
		}
	}
	return true
}

// e4Point benchmarks one table size and cross-checks every engine
// configuration against the trie verdicts.
func e4Point(n int) E4Row {
	p := SizedParams("e4", 0)
	p.Clusters = (n + p.ToRsPerCluster - 1) / p.ToRsPerCluster
	topo := topology.MustNew(p)
	facts := metadata.FromTopology(topo)
	gen := contracts.NewGenerator(facts)
	src := bgp.NewSynth(topo, nil)

	tor := topo.ToRs()[0]
	tbl, err := src.Table(tor)
	if err != nil {
		panic(err)
	}
	dc := gen.ForDevice(tor)

	sm := solverMetrics()
	start := now()
	smtViol, err := (rcdc.SMTChecker{Workers: 1, Metrics: sm, Clock: Clock}).CheckDevice(tbl, dc, topology.RoleToR)
	if err != nil {
		panic(err)
	}
	smt := since(start)

	workers := runtime.GOMAXPROCS(0)
	start = now()
	parViol, err := (rcdc.SMTChecker{Workers: workers, Metrics: sm, Clock: Clock}).CheckDevice(tbl, dc, topology.RoleToR)
	if err != nil {
		panic(err)
	}
	smtPar := since(start)

	start = now()
	trieViol, err := (rcdc.TrieChecker{}).CheckDevice(tbl, dc, topology.RoleToR)
	if err != nil {
		panic(err)
	}
	trie := since(start)

	return E4Row{
		Rules:         tbl.Len(),
		Contracts:     len(dc.Contracts),
		SMTDeviceNS:   int64(smt),
		SMTContractNS: int64(smt) / int64(len(dc.Contracts)),
		SMTParDevNS:   int64(smtPar),
		Workers:       workers,
		TrieDeviceNS:  int64(trie),
		TrieSpeedup:   float64(smt) / float64(trie),
		Match:         sameViolations(smtViol, trieViol) && sameViolations(parViol, trieViol),
	}
}

// E4SMTVsTrie compares the generic bit-vector engine against the
// specialized trie checker per device (§2.5: SMT "within a second" per
// routing table; the trie algorithm enabled scaling with modest CPU).
// Every point also runs the SMT engine at Workers = GOMAXPROCS and
// cross-checks all verdicts against the trie oracle; the machine-readable
// rows back BENCH_solver.json.
func E4SMTVsTrie(prefixCounts []int) (Result, []E4Row) {
	var b strings.Builder
	rows := make([]E4Row, 0, len(prefixCounts))
	fmt.Fprintf(&b, "%10s %10s %12s %14s %12s %12s %9s %6s %12s\n",
		"rules", "contracts", "smt/device", "smt/contract", "smt-par", "trie/device", "speedup", "match", "paper(query)")
	for _, n := range prefixCounts {
		r := e4Point(n)
		rows = append(rows, r)
		fmt.Fprintf(&b, "%10d %10d %12s %14s %12s %12s %8.0fx %6v %12s\n",
			r.Rules, r.Contracts,
			time.Duration(r.SMTDeviceNS).Round(time.Millisecond),
			time.Duration(r.SMTContractNS).Round(time.Microsecond),
			time.Duration(r.SMTParDevNS).Round(time.Millisecond),
			time.Duration(r.TrieDeviceNS).Round(time.Microsecond),
			r.TrieSpeedup, r.Match, "≤1s")
	}
	return Result{
		ID:    "E4",
		Title: "verification engines: bit-vector SMT vs specialized trie (§2.5)",
		Table: b.String(),
		Notes: "paper: Z3-based checking stays within a second per query on datacenter routing tables (see smt/contract); the specialized trie algorithm is the much faster common-workload path — same ordering here, and the gap is why RCDC built it; match cross-checks SMT (sequential and parallel) verdicts against the trie oracle",
	}, rows
}

// E4SolverGate is the CI solver-perf smoke: one short E4 point that must
// stay under a generous per-contract ceiling with verdicts matching the
// trie engine. It panics on regression so dcbench exits non-zero.
func E4SolverGate(prefixCount int, ceiling time.Duration) Result {
	r := e4Point(prefixCount)
	if !r.Match {
		panic(fmt.Sprintf("e4s: SMT verdicts diverge from trie oracle at %d rules", r.Rules))
	}
	if got := time.Duration(r.SMTContractNS); got > ceiling {
		panic(fmt.Sprintf("e4s: smt/contract %v exceeds ceiling %v at %d rules", got, ceiling, r.Rules))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rules %d: smt/contract %v (ceiling %v), match %v\n",
		r.Rules, time.Duration(r.SMTContractNS).Round(time.Microsecond), ceiling, r.Match)
	return Result{
		ID:    "E4s",
		Title: "solver perf smoke: per-contract ceiling and trie agreement",
		Table: b.String(),
		Notes: "CI gate: panics (non-zero exit) when the SMT engine regresses past the ceiling or stops agreeing with the trie engine",
	}
}

// E5Figure3 reproduces the running example of §2.4.4 end to end.
func E5Figure3() Result {
	topo := topology.MustNew(topology.Figure3Params())
	hps := topo.HostedPrefixes()
	tor1, tor2 := topo.ClusterToRs(0)[0], topo.ClusterToRs(0)[1]
	leavesA := topo.ClusterLeaves(0)
	topo.FailLink(tor1, leavesA[2])
	topo.FailLink(tor1, leavesA[3])
	topo.FailLink(tor2, leavesA[0])
	topo.FailLink(tor2, leavesA[1])

	facts := metadata.FromTopology(topo)
	v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}
	rep, err := v.ValidateAll(facts, bgp.NewSynth(topo, nil))
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-18s %-16s %-5s\n", "device", "contract", "kind", "risk")
	for _, viol := range rep.Violations() {
		name := topo.Device(viol.Device).Name
		pfx := "default"
		if viol.Contract.Kind == contracts.Specific {
			pfx = viol.Contract.Prefix.String()
		}
		fmt.Fprintf(&b, "%-14s %-18s %-16s %-5s\n", name, pfx, viol.Kind, viol.Severity)
	}
	// Detour check: reachability survives via the R devices.
	g, err := rcdc.NewGlobalChecker(topo, bgp.NewSynth(topo, nil))
	if err != nil {
		panic(err)
	}
	reach := g.Check(rcdc.Reachability)
	pair := g.CheckPair(tor1, hps[1])
	fmt.Fprintf(&b, "reachability failures: %d (paper: none — longer route via R)\n", len(reach))
	fmt.Fprintf(&b, "ToR1->PrefixB path length under failures: %d hops (direct would be 2)\n", pair.MinHops)
	return Result{
		ID:    "E5",
		Title: "Figure 3/4 running example with four link failures (§2.4.4)",
		Table: b.String(),
		Notes: "paper's violation set: {ToR1,A1,A2,D1,D2}×PrefixB, {ToR2,A3,A4,D3,D4}×PrefixA, both ToR defaults at 2/4 hops; RCDC also flags the B-side leaves behind the affected spines",
	}
}

// E6Taxonomy injects each §2.6.2 error class and reports detection and
// triage routing.
func E6Taxonomy() Result {
	type tc struct {
		name   string
		inject func(s *workload.Scenario) topology.DeviceID
	}
	cases := []tc{
		{"software bug 1 (RIB-FIB)", func(s *workload.Scenario) topology.DeviceID {
			d := s.Topo.ToRs()[0]
			s.InjectRIBFIBBug(d, 1)
			return d
		}},
		{"software bug 2 (L2 ports)", func(s *workload.Scenario) topology.DeviceID {
			d := s.Topo.ClusterLeaves(0)[0]
			s.InjectL2PortBug(d)
			return d
		}},
		{"hardware failure (optics)", func(s *workload.Scenario) topology.DeviceID {
			l, _ := s.Topo.LinkBetween(s.Topo.ToRs()[0], s.Topo.ClusterLeaves(0)[0])
			s.InjectOpticalFailure(l.ID)
			return s.Topo.ToRs()[0]
		}},
		{"operation drift (shut)", func(s *workload.Scenario) topology.DeviceID {
			l, _ := s.Topo.LinkBetween(s.Topo.ToRs()[1], s.Topo.ClusterLeaves(0)[1])
			s.InjectOperationDrift(l.ID, false)
			return s.Topo.ToRs()[1]
		}},
		{"migration (ASN clash)", func(s *workload.Scenario) topology.DeviceID {
			s.InjectMigrationClash(0, 1)
			return s.Topo.ClusterLeaves(1)[0]
		}},
		{"policy error (reject default)", func(s *workload.Scenario) topology.DeviceID {
			d := s.Topo.ClusterLeaves(1)[2]
			s.InjectPolicyRejectDefault(d)
			return d
		}},
		{"policy error (single ECMP)", func(s *workload.Scenario) topology.DeviceID {
			d := s.Topo.ToRs()[3]
			s.InjectPolicyECMPSingle(d)
			return d
		}},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-10s %-22s %-20s\n", "injected", "detected", "class", "remediation queue")
	for _, c := range cases {
		s := workload.NewScenario(topology.MustNew(topology.Figure3Params()))
		dev := c.inject(s)
		in := monitor.NewInstance("e6", s.Datacenter("dc"))
		in.Workers = 4
		stats, err := in.RunCycle()
		if err != nil {
			panic(err)
		}
		detected := stats.Violations > 0
		class, queue := "-", "-"
		for _, te := range in.Analytics.Triage(stats.Cycle, in.Datacenters) {
			if te.Record.Device == dev {
				class, queue = te.Class.String(), string(te.Queue)
				break
			}
		}
		fmt.Fprintf(&b, "%-30s %-10v %-22s %-20s\n", c.name, detected, class, queue)
	}
	return Result{
		ID:    "E6",
		Title: "§2.6.2 error taxonomy: detection and automated triage",
		Table: b.String(),
		Notes: "every class the paper reports from production is detected by contract validation and routed to the remediation path §2.6.1 describes",
	}
}

// E7Burndown regenerates the Figure 6 series.
func E7Burndown() Result {
	pts := workload.SimulateBurndown(workload.DefaultBurndownConfig())
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %10s %10s %10s\n", "day", "highFrac", "lowFrac", "totalFrac")
	for _, p := range pts {
		if p.Day%5 != 0 {
			continue
		}
		fmt.Fprintf(&b, "%5d %10.3f %10.3f %10.3f\n", p.Day, p.HighFrac, p.LowFrac, p.TotalFrac)
	}
	last := pts[len(pts)-1]
	fmt.Fprintf(&b, "remediated: %d total, %d high-risk; final backlog %d\n",
		last.RemediatedSoFar, last.HighRemediatedSoFar, last.High+last.Low)
	return Result{
		ID:    "E7",
		Title: "Figure 6: burndown of routing intent-drift errors",
		Table: b.String(),
		Notes: "shape matches the paper: flat backlog until deployment (day 5), then a clear downward trend with high-risk errors burning down first",
	}
}

// E7bPipelineBurndown is the closed-loop variant of E7: instead of a
// seeded telemetry model, the burndown curve is produced by the actual
// pipeline — inject a latent backlog, run RCDC cycles, triage, spend a
// bounded remediation budget highest-risk-first — and read the alert
// tracker's open counts.
func E7bPipelineBurndown() Result {
	series, err := workload.SimulatePipelineBurndown(workload.DefaultPipelineBurndownConfig())
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %9s %8s %8s %9s\n", "cycle", "openHigh", "openLow", "opened", "resolved")
	for _, p := range series {
		fmt.Fprintf(&b, "%6d %9d %8d %8d %9d\n", p.Cycle, p.OpenHigh, p.OpenLow, p.Opened, p.Resolved)
	}
	return Result{
		ID:    "E7b",
		Title: "Figure 6, closed loop: burndown from the real detect/triage/remediate pipeline",
		Table: b.String(),
		Notes: "the downward, high-risk-first curve emerges from the pipeline itself: RCDC detects the injected backlog, triage classifies it, auto-remediation unshuts drifted sessions, and the bounded manual budget drains the §2.6.4 queues highest risk first",
	}
}

// E14Claim1 runs the randomized Claim 1 consistency trials.
func E14Claim1(trials int) Result {
	healthy, inconsistent := 0, 0
	for i := 0; i < trials; i++ {
		p := topology.Params{
			Name:     fmt.Sprintf("c1-%d", i),
			Clusters: 1 + i%3, ToRsPerCluster: 1 + i%4, LeavesPerCluster: 1 + (i/2)%3,
			SpinesPerPlane: 1 + i%2, RegionalSpines: 2, RSLinksPerSpine: 2,
		}
		topo := topology.MustNew(p)
		if i%2 == 1 {
			topo.Links[i%len(topo.Links)].Up = false
		}
		facts := metadata.FromTopology(topo)
		src := bgp.NewSynth(topo, nil)
		v := rcdc.Validator{Workers: 1, Metrics: validatorMetrics()}
		rep, err := v.ValidateAll(facts, src)
		if err != nil {
			panic(err)
		}
		g, err := rcdc.NewGlobalChecker(topo, src)
		if err != nil {
			panic(err)
		}
		fails := g.Check(rcdc.FullRedundancy)
		// Claim 1 is the healthy direction: zero local violations must
		// imply the full global intent. (Local contracts are strictly
		// stronger, so violations with a passing global check are fine.)
		if rep.Failures == 0 {
			healthy++
			if len(fails) != 0 {
				inconsistent++
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trials=%d healthySamples=%d claim1Violations=%d\n", trials, healthy, inconsistent)
	return Result{
		ID:    "E14",
		Title: "Claim 1: local contracts imply global reachability (§2.4.5)",
		Table: b.String(),
		Notes: "on every trial with zero local violations, the independent global checker confirms all-pairs maximal shortest-path reachability",
	}
}
