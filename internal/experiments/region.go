package experiments

import (
	"fmt"
	"strings"

	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/region"
	"dcvalidate/internal/topology"
)

// E15Region demonstrates the §2.1 inter-datacenter design rule: regional
// spines strip private ASNs when relaying routes between datacenters, and
// without stripping the deliberately reused spine/leaf/ToR ASNs would make
// loop prevention drop every inter-DC route.
func E15Region() Result {
	mk := func(strip bool) (haveRemote, total int, localViolations int) {
		a := topology.Figure3Params()
		a.Name = "dc0"
		b := topology.Figure3Params()
		b.Name = "dc1"
		b.RegionIndex = 1
		r, err := region.New([]topology.Params{a, b})
		if err != nil {
			panic(err)
		}
		r.DisableStripping = !strip
		if err := r.Converge(); err != nil {
			panic(err)
		}
		dc0, dc1 := r.DCs[0].Topo, r.DCs[1].Topo
		for _, hp := range dc0.HostedPrefixes() {
			for _, tor := range dc1.ToRs() {
				total++
				tbl, err := r.Table(1, tor)
				if err != nil {
					panic(err)
				}
				if _, ok := tbl.Get(hp.Prefix); ok {
					haveRemote++
				}
			}
		}
		facts := metadata.FromTopology(dc1)
		v := rcdc.Validator{Workers: 2, Metrics: validatorMetrics()}
		rep, err := v.ValidateAll(facts, r.Source(1))
		if err != nil {
			panic(err)
		}
		return haveRemote, total, rep.Failures
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %18s %18s\n", "configuration", "remoteRoutes@ToRs", "localViolations")
	h1, t1, v1 := mk(true)
	fmt.Fprintf(&b, "%-22s %11d/%-6d %18d\n", "ASN stripping on", h1, t1, v1)
	h2, t2, v2 := mk(false)
	fmt.Fprintf(&b, "%-22s %11d/%-6d %18d\n", "ASN stripping off", h2, t2, v2)
	return Result{
		ID:    "E15",
		Title: "inter-datacenter routing and private-ASN stripping (§2.1)",
		Table: b.String(),
		Notes: "with stripping every remote prefix reaches every ToR of the other datacenter; without it the reused private ASNs trip loop prevention and zero inter-DC routes survive — the collision the design rule exists to prevent. Local contract validation is clean either way: regional routes fall outside every local contract range",
	}
}
