package experiments

import (
	"time"

	"dcvalidate/internal/clock"
)

// Clock is the time source every experiment measures with. It defaults
// to the system clock (the tables report real engine performance);
// tests substitute a clock.Virtual so experiment output is reproducible
// and the wallclock analyzer can verify no experiment reads real time
// directly.
var Clock clock.Clock = clock.System{}

func now() time.Time { return clock.Or(Clock).Now() }

func since(t time.Time) time.Duration { return clock.Since(Clock, t) }
