package experiments

import (
	"time"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/bv"
	"dcvalidate/internal/clock"
	"dcvalidate/internal/conflint"
	"dcvalidate/internal/explore"
	"dcvalidate/internal/obs"
	"dcvalidate/internal/pec"
	"dcvalidate/internal/rcdc"
)

// Clock is the time source every experiment measures with. It defaults
// to the system clock (the tables report real engine performance);
// tests substitute a clock.Virtual so experiment output is reproducible
// and the wallclock analyzer can verify no experiment reads real time
// directly.
var Clock clock.Clock = clock.System{}

// Metrics, when non-nil, makes every experiment record subsystem
// metrics (validator latencies and run counters, synth cache hit rates,
// per-experiment wall time) into the registry. dcbench sets it and
// snapshots the registry between experiments for its JSON output; nil
// (the default) keeps experiments instrumentation-free.
var Metrics *obs.Registry

func now() time.Time { return clock.Or(Clock).Now() }

func since(t time.Time) time.Duration { return clock.Since(Clock, t) }

// Phase runs one experiment, timing it on the experiment clock and
// recording dcv_experiment_seconds{id} when Metrics is set.
func Phase(id string, fn func() Result) Result {
	start := now()
	res := fn()
	if Metrics != nil {
		Metrics.GaugeVec("dcv_experiment_seconds",
			"Wall time of one dcbench experiment.", "id").With(id).Set(since(start).Seconds())
	}
	return res
}

// validatorMetrics returns the rcdc bundle bound to Metrics (nil when
// instrumentation is off). Registration is idempotent, so calling it per
// experiment hands back the same underlying series.
func validatorMetrics() *rcdc.Metrics {
	if Metrics == nil {
		return nil
	}
	return rcdc.NewMetrics(Metrics)
}

// solverMetrics is the bv counterpart of validatorMetrics: the solver
// bundle is atomic-add based, so one bundle serves every SMT worker.
func solverMetrics() *bv.Metrics {
	if Metrics == nil {
		return nil
	}
	return bv.NewMetrics(Metrics)
}

// synthMetrics is the bgp counterpart of validatorMetrics.
func synthMetrics() *bgp.Metrics {
	if Metrics == nil {
		return nil
	}
	return bgp.NewMetrics(Metrics)
}

// conflintMetrics is the configuration-lint counterpart of
// validatorMetrics.
func conflintMetrics() *conflint.Metrics {
	if Metrics == nil {
		return nil
	}
	return conflint.NewMetrics(Metrics)
}

// exploreMetrics is the failure-explorer counterpart of validatorMetrics.
func exploreMetrics() *explore.Metrics {
	if Metrics == nil {
		return nil
	}
	return explore.NewMetrics(Metrics)
}

// pecMetrics is the packet-equivalence-class counterpart of
// validatorMetrics.
func pecMetrics() *pec.Metrics {
	if Metrics == nil {
		return nil
	}
	return pec.NewMetrics(Metrics)
}
