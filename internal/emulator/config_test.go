package emulator

import (
	"strings"
	"testing"

	"dcvalidate/internal/devconf"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// renderConfig returns the current config text of a device.
func renderConfig(t *testing.T, n *Network, dev topology.DeviceID) string {
	t.Helper()
	var sb strings.Builder
	if err := devconf.Render(&sb, n.Topo, dev, n.Cfg[dev]); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestConfigTextPrecheck drives the Figure 7 pipeline with actual device
// configuration text: a config edit adding a default-rejecting route map
// must be caught; re-submitting the original config must pass.
func TestConfigTextPrecheck(t *testing.T) {
	p, topo := newPipeline(t)
	leaf := topo.ClusterLeaves(0)[0]
	orig := renderConfig(t, p.Production, leaf)

	// The "operator edit": apply the deny-default route map to every
	// neighbor (simulating a bad template rollout).
	var edited strings.Builder
	for _, line := range strings.SplitAfter(orig, "\n") {
		edited.WriteString(line)
		if strings.HasPrefix(strings.TrimSpace(line), "neighbor ") &&
			strings.Contains(line, "remote-as") {
			addr := strings.Fields(line)[1]
			edited.WriteString("  neighbor " + addr + " route-map " +
				devconf.RouteMapDenyDefaultIn + " in\n")
		}
	}
	res, err := p.Precheck(ReplaceConfig{Text: edited.String()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("config edit with deny-default route map approved")
	}
	found := false
	for _, v := range res.NewViolations {
		if v.Device == leaf && v.Kind == rcdc.MissingDefault {
			found = true
		}
	}
	if !found {
		t.Errorf("expected MissingDefault, got %v", res.NewViolations)
	}

	// Re-submitting the unmodified config is a no-op and passes.
	res, err = p.Precheck(ReplaceConfig{Text: orig})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Errorf("original config rejected: %v", res.NewViolations)
	}
}

// TestConfigTextSessionShutdown: a config with a neighbor shutdown stanza
// surfaces the default-contract violation downstream.
func TestConfigTextSessionShutdown(t *testing.T) {
	p, topo := newPipeline(t)
	leaf := topo.ClusterLeaves(0)[0]
	orig := renderConfig(t, p.Production, leaf)
	tor := topo.ToRs()[0]
	l, _ := topo.LinkBetween(leaf, tor)
	_, torAddr := l.Peer(leaf)

	edited := strings.Replace(orig,
		"neighbor "+torAddr.String()+" remote-as",
		"neighbor "+torAddr.String()+" shutdown\n  neighbor "+torAddr.String()+" remote-as", 1)
	res, err := p.Precheck(ReplaceConfig{Text: edited})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("shutdown edit approved")
	}
	// Production untouched.
	if lp, _ := p.Production.Topo.LinkBetween(leaf, tor); !lp.SessionUp {
		t.Error("precheck mutated production session state")
	}
}

func TestConfigTextDeployRoundTrip(t *testing.T) {
	p, topo := newPipeline(t)
	tor := topo.ToRs()[1]
	orig := renderConfig(t, p.Production, tor)
	// A benign edit: raise maximum-paths.
	edited := strings.Replace(orig, "router bgp",
		"router bgp", 1) // no structural change yet
	edited = strings.Replace(edited, "\n  network",
		"\n  maximum-paths 64\n  network", 1)
	res, err := p.Precheck(ReplaceConfig{Text: edited})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatalf("benign config edit rejected: %v", res.NewViolations)
	}
	rep, err := p.Deploy(res, ReplaceConfig{Text: edited})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Errorf("postcheck failures: %d", rep.Failures)
	}
	if p.Production.Cfg[tor] == nil || p.Production.Cfg[tor].MaxECMPPaths != 64 {
		t.Error("config change did not deploy")
	}
}

func TestReplaceConfigErrors(t *testing.T) {
	p, _ := newPipeline(t)
	if _, err := p.Precheck(ReplaceConfig{Text: "garbage"}); err == nil {
		t.Error("garbage config accepted")
	}
	if _, err := p.Precheck(ReplaceConfig{Text: "hostname nope\nrouter bgp 1\n"}); err == nil {
		t.Error("unknown hostname accepted")
	}
	if (ReplaceConfig{Text: "garbage"}).Describe() == "" {
		t.Error("empty description")
	}
}
