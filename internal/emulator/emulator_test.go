package emulator

import (
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

func newPipeline(t *testing.T) (*Pipeline, *topology.Topology) {
	t.Helper()
	topo := topology.MustNew(topology.Figure3Params())
	return &Pipeline{Production: NewNetwork(topo)}, topo
}

func TestPrecheckApprovesBenignChange(t *testing.T) {
	p, topo := newPipeline(t)
	// Raising the ECMP path limit to a non-restrictive value is benign.
	res, err := p.Precheck(SetConfig{Device: topo.ToRs()[0], Config: bgp.DeviceConfig{MaxECMPPaths: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved || len(res.NewViolations) != 0 {
		t.Fatalf("benign change rejected: %+v", res.NewViolations)
	}
	if len(res.Changes) != 1 {
		t.Error("change descriptions missing")
	}
}

func TestPrecheckCatchesRouteMapError(t *testing.T) {
	p, topo := newPipeline(t)
	leaf := topo.ClusterLeaves(0)[0]
	// The §2.6.2 policy error: a route map rejecting default routes.
	res, err := p.Precheck(SetConfig{Device: leaf, Config: bgp.DeviceConfig{RejectDefaultIn: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("dangerous change approved")
	}
	foundMissingDefault := false
	for _, v := range res.NewViolations {
		if v.Device == leaf && v.Kind == rcdc.MissingDefault {
			foundMissingDefault = true
		}
	}
	if !foundMissingDefault {
		t.Errorf("expected MissingDefault on the leaf, got %v", res.NewViolations)
	}
	// Production is untouched by a failed precheck.
	if len(p.Production.Cfg) != 0 {
		t.Error("precheck mutated production config")
	}
}

func TestPrecheckCatchesECMPMisconfig(t *testing.T) {
	p, topo := newPipeline(t)
	tor := topo.ToRs()[0]
	res, err := p.Precheck(SetConfig{Device: tor, Config: bgp.DeviceConfig{MaxECMPPaths: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("single-next-hop ECMP change approved")
	}
}

func TestPrecheckCatchesMigrationASNClash(t *testing.T) {
	p, topo := newPipeline(t)
	asnA := topo.Device(topo.ClusterLeaves(0)[0]).ASN
	var changes []Change
	for _, leaf := range topo.ClusterLeaves(1) {
		changes = append(changes, SetConfig{Device: leaf, Config: bgp.DeviceConfig{ASNOverride: asnA}})
	}
	res, err := p.Precheck(changes...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Fatal("ASN-clash migration approved")
	}
	// The signature: ToRs in both clusters lose the other cluster's
	// specific routes (missing-route violations).
	missing := 0
	for _, v := range res.NewViolations {
		if v.Kind == rcdc.MissingRoute && topo.Device(v.Device).Role == topology.RoleToR {
			missing++
		}
	}
	if missing == 0 {
		t.Errorf("no ToR missing-route violations: %v", res.NewViolations)
	}
}

func TestPrecheckIgnoresPreexistingViolations(t *testing.T) {
	p, topo := newPipeline(t)
	// Production already has a failed link (a live issue being worked).
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	res, err := p.Precheck(SetConfig{Device: topo.ToRs()[1], Config: bgp.DeviceConfig{MaxECMPPaths: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatalf("pre-existing violations blocked an unrelated change: %v", res.NewViolations)
	}
	if res.Report.Failures == 0 {
		t.Error("report should still show the live violations")
	}
}

func TestDeployGateAndPostcheck(t *testing.T) {
	p, topo := newPipeline(t)
	leaf := topo.ClusterLeaves(0)[0]
	bad := SetConfig{Device: leaf, Config: bgp.DeviceConfig{RejectDefaultIn: true}}
	res, err := p.Precheck(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deploy(res, bad); err == nil {
		t.Fatal("Deploy accepted an unapproved change")
	}

	good := SetConfig{Device: leaf, Config: bgp.DeviceConfig{MaxECMPPaths: 64}}
	res, err = p.Precheck(good)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Deploy(res, good)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Errorf("postcheck failures: %d", rep.Failures)
	}
	if p.Production.Cfg[leaf] == nil || p.Production.Cfg[leaf].MaxECMPPaths != 64 {
		t.Error("deploy did not reach production")
	}
}

func TestPrecheckPlannedMaintenance(t *testing.T) {
	p, topo := newPipeline(t)
	// Shutting one ToR uplink session (lossy-link mitigation) does create
	// a violation — live monitoring would track it — so the precheck
	// correctly reports it as a new violation.
	res, err := p.Precheck(SetLinkState{
		A: topo.ToRs()[0], B: topo.ClusterLeaves(0)[0], Up: true, SessionUp: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Error("session shut should surface a default-contract violation")
	}
}

func TestChangeErrors(t *testing.T) {
	p, topo := newPipeline(t)
	if _, err := p.Precheck(SetLinkState{A: topo.ToRs()[0], B: topo.ToRs()[1]}); err == nil {
		t.Error("nonexistent link accepted")
	}
	if _, err := p.Precheck(SetConfig{Device: 10_000}); err == nil {
		t.Error("nonexistent device accepted")
	}
}
