// Package emulator implements the change-validation pipeline of §2.7
// (Figure 7): before a configuration change rolls out to production, it is
// applied to an emulated network — virtualized devices connected with the
// production topology and configured with production state — BGP is
// re-converged, FIBs are extracted, and RCDC validates them, reporting the
// same class of errors as on the live network. Only changes whose emulated
// validation is clean are approved for deployment.
//
// The emulator stands in for CrystalNet [27] and the BGP simulator [31];
// the fidelity here is the internal/bgp path-vector simulation.
package emulator

import (
	"fmt"
	"strings"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/devconf"
	"dcvalidate/internal/metadata"
	"dcvalidate/internal/rcdc"
	"dcvalidate/internal/topology"
)

// Network is the production network state: topology (with live link
// state) plus per-device configuration.
type Network struct {
	Topo *topology.Topology
	Cfg  map[topology.DeviceID]*bgp.DeviceConfig
}

// NewNetwork wraps a topology with an empty configuration set.
func NewNetwork(t *topology.Topology) *Network {
	return &Network{Topo: t, Cfg: map[topology.DeviceID]*bgp.DeviceConfig{}}
}

// clone deep-copies the network for emulation.
func (n *Network) clone() *Network {
	cp := &Network{Topo: n.Topo.Clone(), Cfg: map[topology.DeviceID]*bgp.DeviceConfig{}}
	for d, c := range n.Cfg {
		cc := *c
		cp.Cfg[d] = &cc
	}
	return cp
}

// Change is one proposed modification to the network. Changes mutate the
// (emulated or production) network they are applied to.
type Change interface {
	Describe() string
	Apply(*Network) error
}

// SetConfig replaces a device's route-map/platform configuration.
type SetConfig struct {
	Device topology.DeviceID
	Config bgp.DeviceConfig
}

func (c SetConfig) Describe() string { return fmt.Sprintf("set-config device %d", c.Device) }

func (c SetConfig) Apply(n *Network) error {
	if int(c.Device) >= len(n.Topo.Devices) {
		return fmt.Errorf("emulator: no device %d", c.Device)
	}
	cfg := c.Config
	n.Cfg[c.Device] = &cfg
	return nil
}

// SetLinkState changes a link's physical or session state (e.g. planned
// maintenance shutting BGP on a link).
type SetLinkState struct {
	A, B      topology.DeviceID
	Up        bool
	SessionUp bool
}

func (c SetLinkState) Describe() string {
	return fmt.Sprintf("set-link %d-%d up=%v session=%v", c.A, c.B, c.Up, c.SessionUp)
}

func (c SetLinkState) Apply(n *Network) error {
	l, ok := n.Topo.LinkBetween(c.A, c.B)
	if !ok {
		return fmt.Errorf("emulator: no link between %d and %d", c.A, c.B)
	}
	l.Up, l.SessionUp = c.Up, c.SessionUp
	return nil
}

// ReplaceConfig swaps a device's full configuration text (the artifact the
// §2.7 pipeline receives): the text is parsed, the device's route-map and
// platform knobs reconstructed, and its sessions' admin state set from the
// neighbor stanzas.
type ReplaceConfig struct {
	Text string
}

func (c ReplaceConfig) Describe() string {
	spec, err := devconf.Parse(strings.NewReader(c.Text))
	if err != nil {
		return "replace-config (unparsed)"
	}
	return "replace-config " + spec.Hostname
}

func (c ReplaceConfig) Apply(n *Network) error {
	spec, err := devconf.Parse(strings.NewReader(c.Text))
	if err != nil {
		return err
	}
	dev, cfg, err := devconf.ApplyDevice(n.Topo, spec)
	if err != nil {
		return err
	}
	if *cfg == (bgp.DeviceConfig{}) {
		delete(n.Cfg, dev)
	} else {
		n.Cfg[dev] = cfg
	}
	return nil
}

// PrecheckResult is the verdict of emulating a change set.
type PrecheckResult struct {
	Changes  []string
	Report   *rcdc.Report
	Approved bool
	// NewViolations are violations present after the change but not
	// before — a change is judged against the delta so that pre-existing
	// live issues don't block unrelated changes.
	NewViolations []rcdc.Violation
}

// Pipeline is the Figure 7 workflow: emulate, validate, gate, deploy.
type Pipeline struct {
	Production *Network
	Validator  rcdc.Validator
}

// Precheck applies the changes to an emulated copy of production, runs
// full BGP convergence, extracts FIBs, and validates all contracts.
func (p *Pipeline) Precheck(changes ...Change) (*PrecheckResult, error) {
	res := &PrecheckResult{}
	for _, ch := range changes {
		res.Changes = append(res.Changes, ch.Describe())
	}

	baseline, err := p.validate(p.Production)
	if err != nil {
		return nil, err
	}

	emu := p.Production.clone()
	for _, ch := range changes {
		if err := ch.Apply(emu); err != nil {
			return nil, err
		}
	}
	after, err := p.validate(emu)
	if err != nil {
		return nil, err
	}
	res.Report = after

	seen := map[string]bool{}
	for _, v := range baseline.Violations() {
		seen[violationKey(v)] = true
	}
	for _, v := range after.Violations() {
		if !seen[violationKey(v)] {
			res.NewViolations = append(res.NewViolations, v)
		}
	}
	res.Approved = len(res.NewViolations) == 0
	return res, nil
}

// Deploy applies approved changes to production and re-validates
// (the postcheck of the rollout workflow). It refuses unapproved results.
func (p *Pipeline) Deploy(res *PrecheckResult, changes ...Change) (*rcdc.Report, error) {
	if !res.Approved {
		return nil, fmt.Errorf("emulator: refusing to deploy: %d new violations in precheck",
			len(res.NewViolations))
	}
	for _, ch := range changes {
		if err := ch.Apply(p.Production); err != nil {
			return nil, err
		}
	}
	return p.validate(p.Production)
}

func (p *Pipeline) validate(n *Network) (*rcdc.Report, error) {
	sim := bgp.NewSim(n.Topo, n.Cfg)
	sim.Run()
	facts := metadata.FromTopology(n.Topo)
	return p.Validator.ValidateAll(facts, sim)
}

func violationKey(v rcdc.Violation) string {
	return fmt.Sprintf("%d|%s|%v|%v", v.Device, v.Contract.Kind, v.Contract.Prefix, v.Kind)
}
