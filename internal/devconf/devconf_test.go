package devconf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/topology"
)

func TestRenderHealthyToR(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	var sb strings.Builder
	if err := Render(&sb, topo, topo.ToRs()[0], nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{
		"hostname fig3-c0-t0-0",
		"router bgp 4210000000",
		"network 10.0.0.0/24",
		"remote-as 4200001000",
		"allowas-in",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("config missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "shutdown") || strings.Contains(out, "route-map") {
		t.Errorf("healthy config has fault stanzas:\n%s", out)
	}
}

func TestRenderKnobs(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	leaf := topo.ClusterLeaves(0)[0]
	var sb strings.Builder
	if err := Render(&sb, topo, leaf, &bgp.DeviceConfig{
		RejectDefaultIn: true, MaxECMPPaths: 1, ASNOverride: 4200001777,
	}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{"router bgp 4200001777", "maximum-paths 1", "route-map DENY-DEFAULT-IN in"} {
		if !strings.Contains(out, w) {
			t.Errorf("config missing %q:\n%s", w, out)
		}
	}

	// Software Bug 2 renders with no router stanza at all.
	sb.Reset()
	if err := Render(&sb, topo, leaf, &bgp.DeviceConfig{SessionsDisabled: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "router bgp") {
		t.Error("L2-bug config still has a router stanza")
	}
}

func TestParseBasics(t *testing.T) {
	in := `
hostname sw1
router bgp 65001
  maximum-paths 8
  network 10.0.0.0/24
  neighbor 100.64.0.1 remote-as 65002
  neighbor 100.64.0.1 allowas-in
  neighbor 100.64.0.3 remote-as 65003
  neighbor 100.64.0.3 shutdown
  neighbor 100.64.0.3 route-map DENY-DEFAULT-IN in
!
`
	spec, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Hostname != "sw1" || spec.ASN != 65001 || spec.MaxPaths != 8 {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.Networks) != 1 || spec.Networks[0].String() != "10.0.0.0/24" {
		t.Errorf("networks = %v", spec.Networks)
	}
	if len(spec.Neighbors) != 2 {
		t.Fatalf("neighbors = %d", len(spec.Neighbors))
	}
	n0, n1 := spec.Neighbors[0], spec.Neighbors[1]
	if !n0.AllowASIn || n0.RemoteAS != 65002 || n0.Shutdown {
		t.Errorf("n0 = %+v", n0)
	}
	if !n1.Shutdown || n1.RouteMapIn != RouteMapDenyDefaultIn {
		t.Errorf("n1 = %+v", n1)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"router bgp 65001\n",                        // missing hostname
		"hostname x\nrouter ospf 1\n",               // not bgp
		"hostname x\nrouter bgp zz\n",               // bad asn
		"hostname x\nnetwork 10.0.0.0/24\n",         // network outside router
		"hostname x\nrouter bgp 1\n  network bad\n", // bad prefix
		"hostname x\nrouter bgp 1\n  neighbor 1.2.3.4 frob\n",
		"hostname x\nrouter bgp 1\n  neighbor bad remote-as 2\n",
		"hostname x\nrouter bgp 1\n  maximum-paths -1\n",
		"hostname x\nfrobnicate\n",
		"hostname x\nrouter bgp 1\n  neighbor 1.2.3.4 route-map X out\n",
	}
	for i, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

// fleetRoundTrip renders, parses, applies to a fresh topology, and returns
// the reconstructed config map.
func fleetRoundTrip(t *testing.T, topo *topology.Topology,
	cfgs map[topology.DeviceID]*bgp.DeviceConfig) (*topology.Topology, map[topology.DeviceID]*bgp.DeviceConfig) {
	t.Helper()
	texts, err := RenderFleet(topo, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	fresh := topo.Clone()
	// The clone copies link state; ApplyFleet recomputes session state
	// from the configs, so only physical (Up) state carries over.
	var specs []*Spec
	for _, text := range texts {
		spec, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, text)
		}
		specs = append(specs, spec)
	}
	back, err := ApplyFleet(fresh, specs)
	if err != nil {
		t.Fatal(err)
	}
	return fresh, back
}

// TestFleetRoundTripReproducesFIBs: render→parse→apply reproduces the same
// converged forwarding state, across random fault/knob injections.
func TestFleetRoundTripReproducesFIBs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 15; iter++ {
		topo := topology.MustNew(topology.Figure3Params())
		cfgs := map[topology.DeviceID]*bgp.DeviceConfig{}
		// Random session shuts (physical Up faults are out of config scope).
		for i := range topo.Links {
			if rng.Intn(8) == 0 {
				topo.Links[i].SessionUp = false
			}
		}
		for id := range topo.Devices {
			if rng.Intn(8) != 0 {
				continue
			}
			d := topology.DeviceID(id)
			switch rng.Intn(4) {
			case 0:
				cfgs[d] = &bgp.DeviceConfig{RejectDefaultIn: true}
			case 1:
				cfgs[d] = &bgp.DeviceConfig{MaxECMPPaths: 1 + rng.Intn(3)}
			case 2:
				cfgs[d] = &bgp.DeviceConfig{SessionsDisabled: true}
			case 3:
				cfgs[d] = &bgp.DeviceConfig{ASNOverride: 4200009000 + uint32(rng.Intn(3))}
			}
		}

		fresh, back := fleetRoundTrip(t, topo, cfgs)

		// Converged state must match device by device.
		origSrc := bgp.NewSynth(topo, cfgs)
		backSrc := bgp.NewSynth(fresh, back)
		for id := range topo.Devices {
			d := topology.DeviceID(id)
			a, err := origSrc.Table(d)
			if err != nil {
				t.Fatal(err)
			}
			b, err := backSrc.Table(d)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Entries) != len(b.Entries) {
				t.Fatalf("iter %d dev %s: %d vs %d entries",
					iter, topo.Device(d).Name, len(a.Entries), len(b.Entries))
			}
			for i := range a.Entries {
				x, y := a.Entries[i], b.Entries[i]
				if x.Prefix != y.Prefix || x.Connected != y.Connected ||
					fmt.Sprint(x.NextHops) != fmt.Sprint(y.NextHops) {
					t.Fatalf("iter %d dev %s entry %d: %+v vs %+v",
						iter, topo.Device(d).Name, i, x, y)
				}
			}
		}
	}
}

func TestApplyFleetErrors(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	texts, err := RenderFleet(topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	var specs []*Spec
	for _, text := range texts {
		s, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	// Unknown hostname.
	bad := *specs[0]
	bad.Hostname = "nope"
	if _, err := ApplyFleet(topo.Clone(), append([]*Spec{&bad}, specs[1:]...)); err == nil {
		t.Error("unknown hostname accepted")
	}
	// Missing device.
	if _, err := ApplyFleet(topo.Clone(), specs[1:]); err == nil {
		t.Error("partial fleet accepted")
	}
	// Duplicate.
	if _, err := ApplyFleet(topo.Clone(), append(specs, specs[0])); err == nil {
		t.Error("duplicate config accepted")
	}
	// Unknown neighbor interface.
	bad2 := *specs[0]
	bad2.Neighbors = append([]Neighbor{{Addr: 1}}, bad2.Neighbors...)
	if _, err := ApplyFleet(topo.Clone(), append([]*Spec{&bad2}, specs[1:]...)); err == nil {
		t.Error("unknown neighbor accepted")
	}
}
