package devconf

import (
	"strings"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/topology"
)

// TestRenderParseWriteByteIdentical locks the canonical-form contract:
// for every device of a rendered fleet — across the full misconfig knob
// matrix — parsing the rendered text and writing it back through
// Spec.Write reproduces the original bytes.
func TestRenderParseWriteByteIdentical(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	knobs := []*bgp.DeviceConfig{
		nil,
		{RejectDefaultIn: true},
		{MaxECMPPaths: 2},
		{SessionsDisabled: true},
		{ASNOverride: 65001},
		{RejectDefaultIn: true, MaxECMPPaths: 3, ASNOverride: 64999},
	}
	for ki, knob := range knobs {
		cfgs := map[topology.DeviceID]*bgp.DeviceConfig{}
		if knob != nil {
			for i := range topo.Devices {
				cfgs[topology.DeviceID(i)] = knob
			}
		}
		fleet, err := RenderFleet(topo, cfgs)
		if err != nil {
			t.Fatalf("knob %d: RenderFleet: %v", ki, err)
		}
		for host, text := range fleet {
			spec, err := Parse(strings.NewReader(text))
			if err != nil {
				t.Fatalf("knob %d: parse %s: %v", ki, host, err)
			}
			if got := spec.Text(); got != text {
				t.Fatalf("knob %d: %s: Write not byte-identical to Render\n--- rendered\n%s--- rewritten\n%s",
					ki, host, text, got)
			}
		}
	}
}

// TestPositions checks the line:col positions Parse attaches to stanzas
// and the positioned error convention.
func TestPositions(t *testing.T) {
	in := "hostname sw1\n" +
		"ip access-list EDGE\n" +
		"  remark block telnet\n" +
		"  deny tcp any any eq 23\n" +
		"route-map RM deny 10\n" +
		"router bgp 65000\n" +
		"  maximum-paths 8\n" +
		"  network 10.0.0.0/24\n" +
		"  neighbor 1.2.3.4 remote-as 65001\n" +
		"  neighbor 1.2.3.4 shutdown\n" +
		"  neighbor 1.2.3.4 route-map RM in\n" +
		"!\n"
	spec, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	checks := []struct {
		name string
		got  Pos
		want Pos
	}{
		{"hostname", spec.HostnamePos, Pos{1, 1}},
		{"acl", spec.ACLs[0].Pos, Pos{2, 1}},
		{"acl rule", spec.ACLs[0].RulePos[0], Pos{4, 3}},
		{"route-map def", spec.RouteMaps[0].Pos, Pos{5, 1}},
		{"router", spec.RouterPos, Pos{6, 1}},
		{"maximum-paths", spec.MaxPathsPos, Pos{7, 3}},
		{"network", spec.NetworkPos[0], Pos{8, 3}},
		{"neighbor", spec.Neighbors[0].Pos, Pos{9, 3}},
		{"remote-as", spec.Neighbors[0].RemoteASPos, Pos{9, 3}},
		{"shutdown", spec.Neighbors[0].ShutdownPos, Pos{10, 3}},
		{"route-map in", spec.Neighbors[0].RouteMapInPos, Pos{11, 3}},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s position = %v, want %v", c.name, c.got, c.want)
		}
	}
	if spec.ACLs[0].Rules[0].Remark != "block telnet" {
		t.Errorf("remark = %q", spec.ACLs[0].Rules[0].Remark)
	}
	if len(spec.RouteMaps) != 1 || spec.RouteMaps[0].Permit {
		t.Errorf("route-map def = %+v", spec.RouteMaps)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		in   string
		want string // error prefix "devconf: line:col"
	}{
		{"hostname a b\n", "devconf: 1:1"},
		{"hostname a\nrouter bgp zzz\n", "devconf: 2:1"},
		{"hostname a\nrouter bgp 1\n  network bogus\n", "devconf: 3:3"},
		{"hostname a\nrouter bgp 1\n  neighbor 1.2.3.4 frobnicate\n", "devconf: 3:3"},
		{"hostname a\nroute-map X permit nope\n", "devconf: 2:1"},
		{"hostname a\nip access-list L\n  permit tcp bogus any\n", "devconf: 3:3"},
		{"maximum-paths 4\n", "devconf: 1:1"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%q: no error", c.in)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%q: error %v is not a *ParseError", c.in, err)
			continue
		}
		if !strings.HasPrefix(err.Error(), c.want) {
			t.Errorf("%q: error %q, want prefix %q", c.in, err, c.want)
		}
		if pe.Pos.Line == 0 || pe.Pos.Col == 0 {
			t.Errorf("%q: zero position in %v", c.in, err)
		}
	}
}

// FuzzRoundTrip asserts Write is a normal form: any accepted input,
// written canonically, re-parses to a spec whose canonical form is
// byte-identical (Write ∘ Parse is idempotent from the first
// application on).
func FuzzRoundTrip(f *testing.F) {
	f.Add("hostname x\nrouter bgp 65000\n  network 10.0.0.0/24\n  neighbor 1.2.3.4 remote-as 65001\n!\n")
	f.Add("hostname y\n! L2 only\n")
	f.Add("hostname z\nrouter bgp 1\n  neighbor 1.2.3.4 shutdown\n  neighbor 1.2.3.4 remote-as 2\n")
	f.Add("hostname q\nip access-list A\n  remark r\n  permit tcp 10.0.0.0/8 any eq 443\nroute-map M permit 5\nrouter bgp 7\n  maximum-paths 2\n  neighbor 9.9.9.9 route-map M in\n!\n")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		canon := spec.Text()
		spec2, err := Parse(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		if again := spec2.Text(); again != canon {
			t.Fatalf("Write not idempotent:\n--- first\n%s--- second\n%s", canon, again)
		}
	})
}
