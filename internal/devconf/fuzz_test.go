package devconf

import (
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	f.Add("hostname x\nrouter bgp 65000\n  network 10.0.0.0/24\n  neighbor 1.2.3.4 remote-as 65001\n!\n")
	f.Add("hostname y\n! L2 only\n")
	f.Add("router bgp 1\n")
	f.Add("hostname z\nrouter bgp 1\n  neighbor 1.2.3.4 shutdown\n  neighbor 1.2.3.4 remote-as 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		if spec.Hostname == "" {
			t.Fatal("accepted config without hostname")
		}
	})
}
