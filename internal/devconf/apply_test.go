package devconf

import (
	"strings"
	"testing"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/topology"
)

func TestApplyDevice(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	leaf := topo.ClusterLeaves(0)[0]
	tor := topo.ToRs()[0]
	var sb strings.Builder
	if err := Render(&sb, topo, leaf, &bgp.DeviceConfig{RejectDefaultIn: true, MaxECMPPaths: 2}); err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	dev, cfg, err := ApplyDevice(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	if dev != leaf {
		t.Errorf("device = %d, want %d", dev, leaf)
	}
	if !cfg.RejectDefaultIn || cfg.MaxECMPPaths != 2 || cfg.ASNOverride != 0 {
		t.Errorf("cfg = %+v", cfg)
	}

	// Shutdown in the config pulls the session down; re-applying the
	// original config restores it.
	l, _ := topo.LinkBetween(leaf, tor)
	_, torAddr := l.Peer(leaf)
	shutCfg := strings.Replace(sb.String(),
		"neighbor "+torAddr.String()+" remote-as",
		"neighbor "+torAddr.String()+" shutdown\n  neighbor "+torAddr.String()+" remote-as", 1)
	spec2, err := Parse(strings.NewReader(shutCfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApplyDevice(topo, spec2); err != nil {
		t.Fatal(err)
	}
	if l.SessionUp {
		t.Error("shutdown stanza did not shut the session")
	}
	if _, _, err := ApplyDevice(topo, spec); err != nil {
		t.Fatal(err)
	}
	if !l.SessionUp {
		t.Error("re-applying the clean config did not restore the session")
	}
}

func TestApplyDeviceL2Bug(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	leaf := topo.ClusterLeaves(0)[1]
	var sb strings.Builder
	if err := Render(&sb, topo, leaf, &bgp.DeviceConfig{SessionsDisabled: true}); err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	_, cfg, err := ApplyDevice(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.SessionsDisabled {
		t.Error("missing router stanza not mapped to SessionsDisabled")
	}
}

func TestApplyDeviceErrors(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	if _, _, err := ApplyDevice(topo, &Spec{Hostname: "nope"}); err == nil {
		t.Error("unknown hostname accepted")
	}
	if _, _, err := ApplyDevice(topo, &Spec{
		Hostname: "fig3-c0-t0-0", ASN: 1,
		Neighbors: []Neighbor{{Addr: 1}},
	}); err == nil {
		t.Error("unknown neighbor interface accepted")
	}
	// Known interface but no link toward it from this device (a cluster-1
	// leaf is not adjacent to a cluster-0 ToR).
	other := topo.Link(topo.LinksOf(topo.ClusterToRs(1)[0])[0])
	if _, _, err := ApplyDevice(topo, &Spec{
		Hostname: "fig3-c0-t0-0", ASN: 1,
		Neighbors: []Neighbor{{Addr: other.AddrB}},
	}); err == nil {
		t.Error("non-adjacent neighbor accepted")
	}
}
