// Package devconf implements a device configuration language for the
// datacenter's switches — the artifact that, in the paper, defines reality
// (§1: "reality is given as configurations that reside on network
// devices") and that the §2.7 emulation pipeline loads from production
// devices before re-converging the network.
//
// The syntax is an IOS/FRR-flavored BGP stanza:
//
//	hostname dc-c0-t0-0
//	router bgp 4210000000
//	  maximum-paths 64
//	  network 10.0.0.0/24
//	  neighbor 100.64.0.1 remote-as 4200001000
//	  neighbor 100.64.0.1 allowas-in
//	  neighbor 100.64.0.3 shutdown
//	  neighbor 100.64.0.5 route-map DENY-DEFAULT-IN in
//	!
//
// Render generates the fleet's configurations from a topology plus the
// simulator's DeviceConfig knobs; Parse reads one back; ApplyFleet
// reconstructs topology session state and simulator knobs from a set of
// parsed configurations. Round-tripping is exact: rendering a fleet,
// parsing it, and applying it to a fresh topology reproduces the same
// converged FIBs (see devconf_test.go).
package devconf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dcvalidate/internal/bgp"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// RouteMapDenyDefaultIn is the route-map name modeling the §2.6.2 policy
// error of rejecting default-route announcements from upstream devices.
const RouteMapDenyDefaultIn = "DENY-DEFAULT-IN"

// Neighbor is one BGP session stanza.
type Neighbor struct {
	Addr       ipnet.Addr // far-end interface address
	RemoteAS   uint32
	Shutdown   bool
	AllowASIn  bool
	RouteMapIn string
}

// Spec is one device's parsed configuration.
type Spec struct {
	Hostname  string
	ASN       uint32
	MaxPaths  int
	Networks  []ipnet.Prefix
	Neighbors []Neighbor
	// NoRouterStanza marks a device whose interfaces came up as layer-2
	// switch ports (Software Bug 2): no BGP process at all.
	NoRouterStanza bool
}

// Render produces the configuration text of one device given the topology
// and its simulator knobs (nil means default configuration).
func Render(w io.Writer, topo *topology.Topology, d topology.DeviceID, cfg *bgp.DeviceConfig) error {
	bw := bufio.NewWriter(w)
	dev := topo.Device(d)
	fmt.Fprintf(bw, "hostname %s\n", dev.Name)
	if cfg != nil && cfg.SessionsDisabled {
		// Software Bug 2: ports are L2, no BGP process configured.
		fmt.Fprintf(bw, "! interfaces in switchport mode; no routing process\n!\n")
		return bw.Flush()
	}
	asn := dev.ASN
	if cfg != nil && cfg.ASNOverride != 0 {
		asn = cfg.ASNOverride
	}
	fmt.Fprintf(bw, "router bgp %d\n", asn)
	if cfg != nil && cfg.MaxECMPPaths > 0 {
		fmt.Fprintf(bw, "  maximum-paths %d\n", cfg.MaxECMPPaths)
	}
	for _, p := range dev.HostedPrefixes {
		fmt.Fprintf(bw, "  network %s\n", p)
	}
	// Stable neighbor order: by far-end address.
	lids := append([]topology.LinkID(nil), topo.LinksOf(d)...)
	sort.Slice(lids, func(i, j int) bool {
		pi, ai := topo.Link(lids[i]).Peer(d)
		pj, aj := topo.Link(lids[j]).Peer(d)
		_, _ = pi, pj
		return ai < aj
	})
	for _, lid := range lids {
		l := topo.Link(lid)
		peer, peerAddr := l.Peer(d)
		pd := topo.Device(peer)
		fmt.Fprintf(bw, "  neighbor %s remote-as %d\n", peerAddr, pd.ASN)
		if dev.Role == topology.RoleToR && pd.Role == topology.RoleLeaf {
			// §2.1: ToR upstream sessions accept announcements carrying
			// their own (reused) ASN.
			fmt.Fprintf(bw, "  neighbor %s allowas-in\n", peerAddr)
		}
		if !l.SessionUp {
			fmt.Fprintf(bw, "  neighbor %s shutdown\n", peerAddr)
		}
		if cfg != nil && cfg.RejectDefaultIn {
			fmt.Fprintf(bw, "  neighbor %s route-map %s in\n", peerAddr, RouteMapDenyDefaultIn)
		}
	}
	fmt.Fprintf(bw, "!\n")
	return bw.Flush()
}

// RenderFleet renders every device, returning configuration text keyed by
// hostname.
func RenderFleet(topo *topology.Topology, cfgs map[topology.DeviceID]*bgp.DeviceConfig) (map[string]string, error) {
	out := make(map[string]string, len(topo.Devices))
	for i := range topo.Devices {
		d := topology.DeviceID(i)
		var sb strings.Builder
		if err := Render(&sb, topo, d, cfgs[d]); err != nil {
			return nil, err
		}
		out[topo.Device(d).Name] = sb.String()
	}
	return out, nil
}

// Parse reads one device configuration.
func Parse(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	spec := &Spec{NoRouterStanza: true}
	nbrIdx := map[ipnet.Addr]int{}
	lineNo := 0
	inRouter := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "hostname":
			if len(f) != 2 {
				return nil, fmt.Errorf("devconf: line %d: malformed hostname", lineNo)
			}
			spec.Hostname = f[1]
		case "router":
			if len(f) != 3 || f[1] != "bgp" {
				return nil, fmt.Errorf("devconf: line %d: only 'router bgp <asn>' supported", lineNo)
			}
			asn, err := strconv.ParseUint(f[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("devconf: line %d: bad ASN %q", lineNo, f[2])
			}
			spec.ASN = uint32(asn)
			spec.NoRouterStanza = false
			inRouter = true
		case "maximum-paths":
			if !inRouter || len(f) != 2 {
				return nil, fmt.Errorf("devconf: line %d: maximum-paths outside router bgp", lineNo)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("devconf: line %d: bad maximum-paths", lineNo)
			}
			spec.MaxPaths = n
		case "network":
			if !inRouter || len(f) != 2 {
				return nil, fmt.Errorf("devconf: line %d: network outside router bgp", lineNo)
			}
			p, err := ipnet.ParsePrefix(f[1])
			if err != nil {
				return nil, fmt.Errorf("devconf: line %d: %v", lineNo, err)
			}
			spec.Networks = append(spec.Networks, p)
		case "neighbor":
			if !inRouter || len(f) < 3 {
				return nil, fmt.Errorf("devconf: line %d: malformed neighbor", lineNo)
			}
			addr, err := ipnet.ParseAddr(f[1])
			if err != nil {
				return nil, fmt.Errorf("devconf: line %d: %v", lineNo, err)
			}
			i, ok := nbrIdx[addr]
			if !ok {
				i = len(spec.Neighbors)
				nbrIdx[addr] = i
				spec.Neighbors = append(spec.Neighbors, Neighbor{Addr: addr})
			}
			nb := &spec.Neighbors[i]
			switch f[2] {
			case "remote-as":
				if len(f) != 4 {
					return nil, fmt.Errorf("devconf: line %d: malformed remote-as", lineNo)
				}
				ras, err := strconv.ParseUint(f[3], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("devconf: line %d: bad remote-as", lineNo)
				}
				nb.RemoteAS = uint32(ras)
			case "shutdown":
				nb.Shutdown = true
			case "allowas-in":
				nb.AllowASIn = true
			case "route-map":
				if len(f) != 5 || f[4] != "in" {
					return nil, fmt.Errorf("devconf: line %d: only 'route-map <name> in' supported", lineNo)
				}
				nb.RouteMapIn = f[3]
			default:
				return nil, fmt.Errorf("devconf: line %d: unknown neighbor option %q", lineNo, f[2])
			}
		default:
			return nil, fmt.Errorf("devconf: line %d: unknown statement %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spec.Hostname == "" {
		return nil, fmt.Errorf("devconf: missing hostname")
	}
	return spec, nil
}

// ApplyDevice applies a single parsed configuration to the network,
// returning the device and its reconstructed simulator knobs, and setting
// the BGP session state of the device's links according to its neighbor
// stanzas (shutdown present → session down; absent → session up). This is
// the primitive behind config-text changes in the §2.7 emulation pipeline.
func ApplyDevice(topo *topology.Topology, spec *Spec) (topology.DeviceID, *bgp.DeviceConfig, error) {
	dev, ok := topo.ByName(spec.Hostname)
	if !ok {
		return 0, nil, fmt.Errorf("devconf: unknown device %q", spec.Hostname)
	}
	cfg := &bgp.DeviceConfig{}
	if spec.NoRouterStanza {
		cfg.SessionsDisabled = true
		return dev.ID, cfg, nil
	}
	if spec.ASN != dev.ASN {
		cfg.ASNOverride = spec.ASN
	}
	if spec.MaxPaths > 0 {
		cfg.MaxECMPPaths = spec.MaxPaths
	}
	shut := map[ipnet.Addr]bool{}
	for _, nb := range spec.Neighbors {
		peer, ok := topo.DeviceByAddr(nb.Addr)
		if !ok {
			return 0, nil, fmt.Errorf("devconf: %s: neighbor %s is not a known interface",
				spec.Hostname, nb.Addr)
		}
		if _, ok := topo.LinkBetween(dev.ID, peer); !ok {
			return 0, nil, fmt.Errorf("devconf: %s: no link toward neighbor %s",
				spec.Hostname, nb.Addr)
		}
		if nb.Shutdown {
			shut[nb.Addr] = true
		}
		if nb.RouteMapIn == RouteMapDenyDefaultIn {
			cfg.RejectDefaultIn = true
		}
	}
	for _, lid := range topo.LinksOf(dev.ID) {
		l := topo.Link(lid)
		_, peerAddr := l.Peer(dev.ID)
		l.SessionUp = !shut[peerAddr]
	}
	return dev.ID, cfg, nil
}

// ApplyFleet reconstructs simulator state from parsed configurations: it
// returns the DeviceConfig knob map and sets per-link session admin state
// on the topology (a session is up only if neither end shuts it down).
// Every config must correspond to a device in the topology, and neighbor
// addresses must resolve to real interfaces.
func ApplyFleet(topo *topology.Topology, specs []*Spec) (map[topology.DeviceID]*bgp.DeviceConfig, error) {
	cfgs := map[topology.DeviceID]*bgp.DeviceConfig{}
	// First pass: mark every session up, then let shutdowns pull down.
	seen := map[topology.DeviceID]bool{}
	type shut struct{ a, b topology.DeviceID }
	var shuts []shut

	for _, spec := range specs {
		dev, ok := topo.ByName(spec.Hostname)
		if !ok {
			return nil, fmt.Errorf("devconf: unknown device %q", spec.Hostname)
		}
		if seen[dev.ID] {
			return nil, fmt.Errorf("devconf: duplicate configuration for %q", spec.Hostname)
		}
		seen[dev.ID] = true

		cfg := &bgp.DeviceConfig{}
		if spec.NoRouterStanza {
			cfg.SessionsDisabled = true
			cfgs[dev.ID] = cfg
			continue
		}
		if spec.ASN != dev.ASN {
			cfg.ASNOverride = spec.ASN
		}
		if spec.MaxPaths > 0 {
			cfg.MaxECMPPaths = spec.MaxPaths
		}
		for _, nb := range spec.Neighbors {
			peer, ok := topo.DeviceByAddr(nb.Addr)
			if !ok {
				return nil, fmt.Errorf("devconf: %s: neighbor %s is not a known interface",
					spec.Hostname, nb.Addr)
			}
			if _, ok := topo.LinkBetween(dev.ID, peer); !ok {
				return nil, fmt.Errorf("devconf: %s: no link toward neighbor %s",
					spec.Hostname, nb.Addr)
			}
			if nb.Shutdown {
				shuts = append(shuts, shut{dev.ID, peer})
			}
			if nb.RouteMapIn == RouteMapDenyDefaultIn {
				cfg.RejectDefaultIn = true
			}
		}
		if *cfg != (bgp.DeviceConfig{}) {
			cfgs[dev.ID] = cfg
		}
	}
	if len(seen) != len(topo.Devices) {
		return nil, fmt.Errorf("devconf: %d of %d devices configured", len(seen), len(topo.Devices))
	}
	// Session state: up unless some side shuts it.
	for i := range topo.Links {
		topo.Links[i].SessionUp = true
	}
	for _, s := range shuts {
		topo.ShutSession(s.a, s.b)
	}
	return cfgs, nil
}
