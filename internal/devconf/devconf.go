// Package devconf implements a device configuration language for the
// datacenter's switches — the artifact that, in the paper, defines reality
// (§1: "reality is given as configurations that reside on network
// devices") and that the §2.7 emulation pipeline loads from production
// devices before re-converging the network.
//
// The syntax is an IOS/FRR-flavored BGP stanza, optionally preceded by
// packet-filter and routing-policy definitions:
//
//	hostname dc-c0-t0-0
//	ip access-list EDGE-IN
//	  permit tcp 10.0.0.0/8 any eq 443
//	  deny ip any any
//	route-map DENY-DEFAULT-IN deny 10
//	router bgp 4210000000
//	  maximum-paths 64
//	  network 10.0.0.0/24
//	  neighbor 100.64.0.1 remote-as 4200001000
//	  neighbor 100.64.0.1 allowas-in
//	  neighbor 100.64.0.3 shutdown
//	  neighbor 100.64.0.5 route-map DENY-DEFAULT-IN in
//	!
//
// Render generates the fleet's configurations from a topology plus the
// simulator's DeviceConfig knobs; Parse reads one back; ApplyFleet
// reconstructs topology session state and simulator knobs from a set of
// parsed configurations. Round-tripping is exact in two senses: rendering
// a fleet, parsing it, and applying it to a fresh topology reproduces the
// same converged FIBs (devconf_test.go), and Parse followed by Spec.Write
// is a byte-stable normal form (roundtrip_test.go).
//
// Every parsed stanza carries a 1-based line:col Pos so static analysis
// (internal/conflint) can point diagnostics at the offending stanza, and
// parse errors are positioned ParseError values in the same line:col
// convention as the bv/sat parsers.
package devconf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dcvalidate/internal/acl"
	"dcvalidate/internal/bgp"
	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// RouteMapDenyDefaultIn is the route-map name modeling the §2.6.2 policy
// error of rejecting default-route announcements from upstream devices.
const RouteMapDenyDefaultIn = "DENY-DEFAULT-IN"

// Pos is a 1-based line:column position of a stanza within one device's
// configuration text (the column of the statement keyword).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsZero reports whether the position is unset.
func (p Pos) IsZero() bool { return p.Line == 0 }

// ParseError is a positioned configuration syntax error.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("devconf: %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

func errf(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Neighbor is one BGP session stanza.
type Neighbor struct {
	Addr       ipnet.Addr // far-end interface address
	RemoteAS   uint32
	Shutdown   bool
	AllowASIn  bool
	RouteMapIn string

	// Pos is the first stanza line mentioning this neighbor; the
	// per-option positions locate the specific line carrying each option
	// (zero when the option is absent).
	Pos           Pos
	RemoteASPos   Pos
	ShutdownPos   Pos
	AllowASInPos  Pos
	RouteMapInPos Pos
}

// RouteMap is one `route-map <name> permit|deny <seq>` definition.
type RouteMap struct {
	Name   string
	Permit bool
	Seq    int
	Pos    Pos
}

// ACL is one `ip access-list <name>` block of IOS-style packet-filter
// rules (first-applicable semantics, Figure 8 syntax).
type ACL struct {
	Name  string
	Pos   Pos
	Rules []acl.Rule
	// RulePos is parallel to Rules: the position of each rule line.
	RulePos []Pos
}

// Policy returns the block as an acl.Policy for the semantic engines.
func (a *ACL) Policy() *acl.Policy {
	return &acl.Policy{
		Name:      a.Name,
		Semantics: acl.FirstApplicable,
		Rules:     append([]acl.Rule(nil), a.Rules...),
	}
}

// Spec is one device's parsed configuration.
type Spec struct {
	Hostname  string
	ASN       uint32
	MaxPaths  int
	Networks  []ipnet.Prefix
	Neighbors []Neighbor
	RouteMaps []RouteMap
	ACLs      []ACL
	// NoRouterStanza marks a device whose interfaces came up as layer-2
	// switch ports (Software Bug 2): no BGP process at all.
	NoRouterStanza bool

	// Stanza positions for diagnostics. NetworkPos is parallel to
	// Networks; RouterPos locates the `router bgp` line.
	HostnamePos Pos
	RouterPos   Pos
	MaxPathsPos Pos
	NetworkPos  []Pos
}

// noRouterComment is the fixed comment Render and Write emit for a
// device with no BGP process, so the two renderers stay byte-identical.
const noRouterComment = "! interfaces in switchport mode; no routing process\n!\n"

// Render produces the configuration text of one device given the topology
// and its simulator knobs (nil means default configuration).
func Render(w io.Writer, topo *topology.Topology, d topology.DeviceID, cfg *bgp.DeviceConfig) error {
	bw := bufio.NewWriter(w)
	dev := topo.Device(d)
	fmt.Fprintf(bw, "hostname %s\n", dev.Name)
	if cfg != nil && cfg.SessionsDisabled {
		// Software Bug 2: ports are L2, no BGP process configured.
		fmt.Fprint(bw, noRouterComment)
		return bw.Flush()
	}
	if cfg != nil && cfg.RejectDefaultIn {
		// The referenced policy must be defined on-device, or the
		// ref-integrity lint flags the dangling reference.
		fmt.Fprintf(bw, "route-map %s deny 10\n", RouteMapDenyDefaultIn)
	}
	asn := dev.ASN
	if cfg != nil && cfg.ASNOverride != 0 {
		asn = cfg.ASNOverride
	}
	fmt.Fprintf(bw, "router bgp %d\n", asn)
	if cfg != nil && cfg.MaxECMPPaths > 0 {
		fmt.Fprintf(bw, "  maximum-paths %d\n", cfg.MaxECMPPaths)
	}
	for _, p := range dev.HostedPrefixes {
		fmt.Fprintf(bw, "  network %s\n", p)
	}
	// Stable neighbor order: by far-end address.
	lids := append([]topology.LinkID(nil), topo.LinksOf(d)...)
	sort.Slice(lids, func(i, j int) bool {
		pi, ai := topo.Link(lids[i]).Peer(d)
		pj, aj := topo.Link(lids[j]).Peer(d)
		_, _ = pi, pj
		return ai < aj
	})
	for _, lid := range lids {
		l := topo.Link(lid)
		peer, peerAddr := l.Peer(d)
		pd := topo.Device(peer)
		fmt.Fprintf(bw, "  neighbor %s remote-as %d\n", peerAddr, pd.ASN)
		if dev.Role == topology.RoleToR && pd.Role == topology.RoleLeaf {
			// §2.1: ToR upstream sessions accept announcements carrying
			// their own (reused) ASN.
			fmt.Fprintf(bw, "  neighbor %s allowas-in\n", peerAddr)
		}
		if !l.SessionUp {
			fmt.Fprintf(bw, "  neighbor %s shutdown\n", peerAddr)
		}
		if cfg != nil && cfg.RejectDefaultIn {
			fmt.Fprintf(bw, "  neighbor %s route-map %s in\n", peerAddr, RouteMapDenyDefaultIn)
		}
	}
	fmt.Fprintf(bw, "!\n")
	return bw.Flush()
}

// Write renders the spec in the canonical form Render produces: ACL
// blocks (stable-sorted by name, rule order preserved), route-map
// definitions (stable-sorted by name then sequence), then the router
// stanza with networks in prefix order and neighbors in address order.
// Parsing any accepted configuration and writing it back is a stable
// normal form: Write ∘ Parse ∘ Write ≡ Write byte-for-byte (locked by
// the round-trip fuzz test).
func (s *Spec) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hostname %s\n", s.Hostname)

	acls := append([]ACL(nil), s.ACLs...)
	sort.SliceStable(acls, func(i, j int) bool { return acls[i].Name < acls[j].Name })
	for ai := range acls {
		a := &acls[ai]
		fmt.Fprintf(bw, "ip access-list %s\n", a.Name)
		for i := range a.Rules {
			r := &a.Rules[i]
			if r.Remark != "" {
				fmt.Fprintf(bw, "  remark %s\n", r.Remark)
			}
			fmt.Fprintf(bw, "  %s\n", acl.FormatIOSRule(r))
		}
	}

	rms := append([]RouteMap(nil), s.RouteMaps...)
	sort.SliceStable(rms, func(i, j int) bool {
		if rms[i].Name != rms[j].Name {
			return rms[i].Name < rms[j].Name
		}
		return rms[i].Seq < rms[j].Seq
	})
	for _, rm := range rms {
		action := "deny"
		if rm.Permit {
			action = "permit"
		}
		fmt.Fprintf(bw, "route-map %s %s %d\n", rm.Name, action, rm.Seq)
	}

	if s.NoRouterStanza {
		fmt.Fprint(bw, noRouterComment)
		return bw.Flush()
	}
	fmt.Fprintf(bw, "router bgp %d\n", s.ASN)
	if s.MaxPaths > 0 {
		fmt.Fprintf(bw, "  maximum-paths %d\n", s.MaxPaths)
	}
	nets := append([]ipnet.Prefix(nil), s.Networks...)
	sort.SliceStable(nets, func(i, j int) bool { return nets[i].Compare(nets[j]) < 0 })
	for _, p := range nets {
		fmt.Fprintf(bw, "  network %s\n", p)
	}
	nbrs := append([]Neighbor(nil), s.Neighbors...)
	sort.SliceStable(nbrs, func(i, j int) bool { return nbrs[i].Addr < nbrs[j].Addr })
	for i := range nbrs {
		nb := &nbrs[i]
		if nb.RemoteAS != 0 {
			fmt.Fprintf(bw, "  neighbor %s remote-as %d\n", nb.Addr, nb.RemoteAS)
		}
		if nb.AllowASIn {
			fmt.Fprintf(bw, "  neighbor %s allowas-in\n", nb.Addr)
		}
		if nb.Shutdown {
			fmt.Fprintf(bw, "  neighbor %s shutdown\n", nb.Addr)
		}
		if nb.RouteMapIn != "" {
			fmt.Fprintf(bw, "  neighbor %s route-map %s in\n", nb.Addr, nb.RouteMapIn)
		}
	}
	fmt.Fprintf(bw, "!\n")
	return bw.Flush()
}

// Text returns the canonical configuration text of the spec.
func (s *Spec) Text() string {
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		// invariant: strings.Builder writes cannot fail.
		panic(err)
	}
	return sb.String()
}

// RenderFleet renders every device, returning configuration text keyed by
// hostname.
func RenderFleet(topo *topology.Topology, cfgs map[topology.DeviceID]*bgp.DeviceConfig) (map[string]string, error) {
	out := make(map[string]string, len(topo.Devices))
	for i := range topo.Devices {
		d := topology.DeviceID(i)
		var sb strings.Builder
		if err := Render(&sb, topo, d, cfgs[d]); err != nil {
			return nil, err
		}
		out[topo.Device(d).Name] = sb.String()
	}
	return out, nil
}

// Parse reads one device configuration. Errors are *ParseError values
// carrying the line:col of the offending stanza.
func Parse(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	spec := &Spec{NoRouterStanza: true}
	nbrIdx := map[ipnet.Addr]int{}
	lineNo := 0
	inRouter := false
	curACL := -1 // index into spec.ACLs while inside a block
	remark := ""
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		pos := Pos{Line: lineNo, Col: strings.Index(raw, line) + 1}
		f := strings.Fields(line)
		if curACL >= 0 {
			// Inside an access-list block: rule and remark lines belong
			// to the block; any other statement closes it.
			switch f[0] {
			case "remark":
				remark = strings.TrimSpace(strings.TrimPrefix(line, "remark"))
				continue
			case "permit", "deny":
				rule, err := acl.ParseIOSRule(f, lineNo)
				if err != nil {
					return nil, errf(pos, "%v", err)
				}
				rule.Remark = remark
				remark = ""
				a := &spec.ACLs[curACL]
				rule.Priority = len(a.Rules) + 1
				a.Rules = append(a.Rules, rule)
				a.RulePos = append(a.RulePos, pos)
				continue
			}
			curACL = -1
			remark = ""
		}
		switch f[0] {
		case "hostname":
			if len(f) != 2 {
				return nil, errf(pos, "malformed hostname")
			}
			spec.Hostname = f[1]
			spec.HostnamePos = pos
		case "ip":
			if len(f) != 3 || f[1] != "access-list" {
				return nil, errf(pos, "only 'ip access-list <name>' supported")
			}
			spec.ACLs = append(spec.ACLs, ACL{Name: f[2], Pos: pos})
			curACL = len(spec.ACLs) - 1
		case "route-map":
			if len(f) != 4 || (f[2] != "permit" && f[2] != "deny") {
				return nil, errf(pos, "only 'route-map <name> permit|deny <seq>' supported")
			}
			seq, err := strconv.Atoi(f[3])
			if err != nil || seq < 0 {
				return nil, errf(pos, "bad route-map sequence %q", f[3])
			}
			spec.RouteMaps = append(spec.RouteMaps, RouteMap{
				Name: f[1], Permit: f[2] == "permit", Seq: seq, Pos: pos,
			})
		case "router":
			if len(f) != 3 || f[1] != "bgp" {
				return nil, errf(pos, "only 'router bgp <asn>' supported")
			}
			asn, err := strconv.ParseUint(f[2], 10, 32)
			if err != nil {
				return nil, errf(pos, "bad ASN %q", f[2])
			}
			spec.ASN = uint32(asn)
			spec.NoRouterStanza = false
			spec.RouterPos = pos
			inRouter = true
		case "maximum-paths":
			if !inRouter || len(f) != 2 {
				return nil, errf(pos, "maximum-paths outside router bgp")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 1 {
				return nil, errf(pos, "bad maximum-paths")
			}
			spec.MaxPaths = n
			spec.MaxPathsPos = pos
		case "network":
			if !inRouter || len(f) != 2 {
				return nil, errf(pos, "network outside router bgp")
			}
			p, err := ipnet.ParsePrefix(f[1])
			if err != nil {
				return nil, errf(pos, "%v", err)
			}
			spec.Networks = append(spec.Networks, p)
			spec.NetworkPos = append(spec.NetworkPos, pos)
		case "neighbor":
			if !inRouter || len(f) < 3 {
				return nil, errf(pos, "malformed neighbor")
			}
			addr, err := ipnet.ParseAddr(f[1])
			if err != nil {
				return nil, errf(pos, "%v", err)
			}
			i, ok := nbrIdx[addr]
			if !ok {
				i = len(spec.Neighbors)
				nbrIdx[addr] = i
				spec.Neighbors = append(spec.Neighbors, Neighbor{Addr: addr, Pos: pos})
			}
			nb := &spec.Neighbors[i]
			switch f[2] {
			case "remote-as":
				if len(f) != 4 {
					return nil, errf(pos, "malformed remote-as")
				}
				ras, err := strconv.ParseUint(f[3], 10, 32)
				if err != nil {
					return nil, errf(pos, "bad remote-as")
				}
				nb.RemoteAS = uint32(ras)
				nb.RemoteASPos = pos
			case "shutdown":
				nb.Shutdown = true
				nb.ShutdownPos = pos
			case "allowas-in":
				nb.AllowASIn = true
				nb.AllowASInPos = pos
			case "route-map":
				if len(f) != 5 || f[4] != "in" {
					return nil, errf(pos, "only 'route-map <name> in' supported")
				}
				nb.RouteMapIn = f[3]
				nb.RouteMapInPos = pos
			default:
				return nil, errf(pos, "unknown neighbor option %q", f[2])
			}
		default:
			return nil, errf(pos, "unknown statement %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spec.Hostname == "" {
		return nil, errf(Pos{Line: 1, Col: 1}, "missing hostname")
	}
	return spec, nil
}

// ApplyDevice applies a single parsed configuration to the network,
// returning the device and its reconstructed simulator knobs, and setting
// the BGP session state of the device's links according to its neighbor
// stanzas (shutdown present → session down; absent → session up). This is
// the primitive behind config-text changes in the §2.7 emulation pipeline.
func ApplyDevice(topo *topology.Topology, spec *Spec) (topology.DeviceID, *bgp.DeviceConfig, error) {
	dev, ok := topo.ByName(spec.Hostname)
	if !ok {
		return 0, nil, fmt.Errorf("devconf: unknown device %q", spec.Hostname)
	}
	cfg := &bgp.DeviceConfig{}
	if spec.NoRouterStanza {
		cfg.SessionsDisabled = true
		return dev.ID, cfg, nil
	}
	if spec.ASN != dev.ASN {
		cfg.ASNOverride = spec.ASN
	}
	if spec.MaxPaths > 0 {
		cfg.MaxECMPPaths = spec.MaxPaths
	}
	shut := map[ipnet.Addr]bool{}
	for _, nb := range spec.Neighbors {
		peer, ok := topo.DeviceByAddr(nb.Addr)
		if !ok {
			return 0, nil, fmt.Errorf("devconf: %s: neighbor %s is not a known interface",
				spec.Hostname, nb.Addr)
		}
		if _, ok := topo.LinkBetween(dev.ID, peer); !ok {
			return 0, nil, fmt.Errorf("devconf: %s: no link toward neighbor %s",
				spec.Hostname, nb.Addr)
		}
		if nb.Shutdown {
			shut[nb.Addr] = true
		}
		if nb.RouteMapIn == RouteMapDenyDefaultIn {
			cfg.RejectDefaultIn = true
		}
	}
	for _, lid := range topo.LinksOf(dev.ID) {
		l := topo.Link(lid)
		_, peerAddr := l.Peer(dev.ID)
		l.SessionUp = !shut[peerAddr]
	}
	return dev.ID, cfg, nil
}

// ApplyFleet reconstructs simulator state from parsed configurations: it
// returns the DeviceConfig knob map and sets per-link session admin state
// on the topology (a session is up only if neither end shuts it down).
// Every config must correspond to a device in the topology, and neighbor
// addresses must resolve to real interfaces.
func ApplyFleet(topo *topology.Topology, specs []*Spec) (map[topology.DeviceID]*bgp.DeviceConfig, error) {
	cfgs := map[topology.DeviceID]*bgp.DeviceConfig{}
	// First pass: mark every session up, then let shutdowns pull down.
	seen := map[topology.DeviceID]bool{}
	type shut struct{ a, b topology.DeviceID }
	var shuts []shut

	for _, spec := range specs {
		dev, ok := topo.ByName(spec.Hostname)
		if !ok {
			return nil, fmt.Errorf("devconf: unknown device %q", spec.Hostname)
		}
		if seen[dev.ID] {
			return nil, fmt.Errorf("devconf: duplicate configuration for %q", spec.Hostname)
		}
		seen[dev.ID] = true

		cfg := &bgp.DeviceConfig{}
		if spec.NoRouterStanza {
			cfg.SessionsDisabled = true
			cfgs[dev.ID] = cfg
			continue
		}
		if spec.ASN != dev.ASN {
			cfg.ASNOverride = spec.ASN
		}
		if spec.MaxPaths > 0 {
			cfg.MaxECMPPaths = spec.MaxPaths
		}
		for _, nb := range spec.Neighbors {
			peer, ok := topo.DeviceByAddr(nb.Addr)
			if !ok {
				return nil, fmt.Errorf("devconf: %s: neighbor %s is not a known interface",
					spec.Hostname, nb.Addr)
			}
			if _, ok := topo.LinkBetween(dev.ID, peer); !ok {
				return nil, fmt.Errorf("devconf: %s: no link toward neighbor %s",
					spec.Hostname, nb.Addr)
			}
			if nb.Shutdown {
				shuts = append(shuts, shut{dev.ID, peer})
			}
			if nb.RouteMapIn == RouteMapDenyDefaultIn {
				cfg.RejectDefaultIn = true
			}
		}
		if *cfg != (bgp.DeviceConfig{}) {
			cfgs[dev.ID] = cfg
		}
	}
	if len(seen) != len(topo.Devices) {
		return nil, fmt.Errorf("devconf: %d of %d devices configured", len(seen), len(topo.Devices))
	}
	// Session state: up unless some side shuts it.
	for i := range topo.Links {
		topo.Links[i].SessionUp = true
	}
	for _, s := range shuts {
		topo.ShutSession(s.a, s.b)
	}
	return cfgs, nil
}
