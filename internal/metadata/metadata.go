// Package metadata models the Azure metadata service of §2.3: the source of
// truth for network intent. It records facts about topology and address
// locality — which IP prefixes are hosted in which top-of-rack switch, who
// each device's neighbors are, and how BGP sessions are configured between
// routers. The device contract generator derives intent from these facts
// alone; it never looks at live network state, because contracts are based
// on the expected topology (§2.4), not the current link status.
package metadata

import (
	"encoding/json"
	"fmt"
	"io"

	"dcvalidate/internal/ipnet"
	"dcvalidate/internal/topology"
)

// Neighbor is one expected adjacency of a device, with the configuration of
// the BGP session riding it.
type Neighbor struct {
	Device   topology.DeviceID `json:"device"`
	Name     string            `json:"name"`
	Role     topology.Role     `json:"role"`
	Cluster  int               `json:"cluster"`
	ASN      uint32            `json:"asn"`
	PeerAddr ipnet.Addr        `json:"peerAddr"` // far-end interface address
}

// DeviceFacts is everything the metadata service knows about one device.
type DeviceFacts struct {
	ID      topology.DeviceID `json:"id"`
	Name    string            `json:"name"`
	Role    topology.Role     `json:"role"`
	Cluster int               `json:"cluster"`
	ASN     uint32            `json:"asn"`

	// HostedPrefixes are the VLAN prefixes this device announces (ToR only).
	HostedPrefixes []ipnet.Prefix `json:"hostedPrefixes,omitempty"`

	// Uplinks and Downlinks are the expected adjacencies by direction in
	// the Clos hierarchy (uplink = toward the regional spine).
	Uplinks   []Neighbor `json:"uplinks,omitempty"`
	Downlinks []Neighbor `json:"downlinks,omitempty"`
}

// PrefixFacts locates one hosted prefix.
type PrefixFacts struct {
	Prefix  ipnet.Prefix      `json:"prefix"`
	ToR     topology.DeviceID `json:"tor"`
	Cluster int               `json:"cluster"`
}

// Facts is a full metadata snapshot for one datacenter.
type Facts struct {
	Datacenter string        `json:"datacenter"`
	Devices    []DeviceFacts `json:"devices"`
	Prefixes   []PrefixFacts `json:"prefixes"`

	byName map[string]int
	// gen counts intent changes (see NoteIntentChange). Unlike the
	// topology generation, it does NOT advance on link state flips: facts
	// model the expected architecture, so contracts derived from them stay
	// valid across failures.
	gen uint64
}

// Generation returns the intent-change counter. Contract memoization keys
// on it: link-state changes leave it untouched, edits to the facts
// themselves must advance it via NoteIntentChange.
func (f *Facts) Generation() uint64 { return f.gen }

// NoteIntentChange records an edit to the facts (devices added or retired,
// prefixes moved), invalidating memoized contracts derived from them.
func (f *Facts) NoteIntentChange() { f.gen++ }

// FromTopology extracts the metadata facts from a datacenter topology.
// Link state is deliberately ignored: the metadata service describes the
// architecture, and contracts must hold across state fluctuations.
func FromTopology(t *topology.Topology) *Facts {
	f := &Facts{Datacenter: t.Params.Name}
	for i := range t.Devices {
		d := &t.Devices[i]
		df := DeviceFacts{
			ID: d.ID, Name: d.Name, Role: d.Role, Cluster: d.Cluster, ASN: d.ASN,
			HostedPrefixes: append([]ipnet.Prefix(nil), d.HostedPrefixes...),
		}
		for _, lid := range t.LinksOf(d.ID) {
			l := t.Link(lid)
			peer, peerAddr := l.Peer(d.ID)
			pd := t.Device(peer)
			nb := Neighbor{
				Device: pd.ID, Name: pd.Name, Role: pd.Role,
				Cluster: pd.Cluster, ASN: pd.ASN, PeerAddr: peerAddr,
			}
			if pd.Role > d.Role { // higher tier value = closer to RS
				df.Uplinks = append(df.Uplinks, nb)
			} else {
				df.Downlinks = append(df.Downlinks, nb)
			}
		}
		f.Devices = append(f.Devices, df)
	}
	for _, hp := range t.HostedPrefixes() {
		f.Prefixes = append(f.Prefixes, PrefixFacts{Prefix: hp.Prefix, ToR: hp.ToR, Cluster: hp.Cluster})
	}
	return f
}

// Device returns the facts for a device ID.
func (f *Facts) Device(id topology.DeviceID) *DeviceFacts {
	return &f.Devices[id]
}

// ByName returns the facts for a device name.
func (f *Facts) ByName(name string) (*DeviceFacts, bool) {
	if f.byName == nil {
		f.byName = make(map[string]int, len(f.Devices))
		for i := range f.Devices {
			f.byName[f.Devices[i].Name] = i
		}
	}
	i, ok := f.byName[name]
	if !ok {
		return nil, false
	}
	return &f.Devices[i], true
}

// PrefixesInCluster returns the prefixes hosted by ToRs of the cluster.
func (f *Facts) PrefixesInCluster(cluster int) []PrefixFacts {
	var out []PrefixFacts
	for _, p := range f.Prefixes {
		if p.Cluster == cluster {
			out = append(out, p)
		}
	}
	return out
}

// WriteJSON serializes the snapshot.
func (f *Facts) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON deserializes a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (*Facts, error) {
	var f Facts
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("metadata: decoding snapshot: %w", err)
	}
	return &f, nil
}
