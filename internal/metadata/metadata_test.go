package metadata

import (
	"bytes"
	"reflect"
	"testing"

	"dcvalidate/internal/topology"
)

func TestFromTopology(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := FromTopology(topo)
	if f.Datacenter != "fig3" {
		t.Errorf("Datacenter = %q", f.Datacenter)
	}
	if len(f.Devices) != len(topo.Devices) {
		t.Fatalf("devices = %d", len(f.Devices))
	}
	if len(f.Prefixes) != 4 {
		t.Fatalf("prefixes = %d", len(f.Prefixes))
	}

	// ToR facts: 4 uplinks (leaves), no downlinks, one hosted prefix.
	tor := f.Device(topo.ToRs()[0])
	if len(tor.Uplinks) != 4 || len(tor.Downlinks) != 0 || len(tor.HostedPrefixes) != 1 {
		t.Errorf("ToR facts: up=%d down=%d hosted=%d",
			len(tor.Uplinks), len(tor.Downlinks), len(tor.HostedPrefixes))
	}
	for _, u := range tor.Uplinks {
		if u.Role != topology.RoleLeaf || u.Cluster != 0 {
			t.Errorf("ToR uplink = %+v", u)
		}
	}

	// Leaf facts: 1 uplink (spine), 2 downlinks (ToRs).
	leaf := f.Device(topo.ClusterLeaves(0)[0])
	if len(leaf.Uplinks) != 1 || len(leaf.Downlinks) != 2 {
		t.Errorf("leaf facts: up=%d down=%d", len(leaf.Uplinks), len(leaf.Downlinks))
	}

	// Spine facts: 2 uplinks (RS), 2 downlinks (leaves).
	spine := f.Device(topo.Spines()[0])
	if len(spine.Uplinks) != 2 || len(spine.Downlinks) != 2 {
		t.Errorf("spine facts: up=%d down=%d", len(spine.Uplinks), len(spine.Downlinks))
	}

	// RS facts: downlinks only.
	rs := f.Device(topo.RegionalSpines()[0])
	if len(rs.Uplinks) != 0 || len(rs.Downlinks) == 0 {
		t.Errorf("rs facts: up=%d down=%d", len(rs.Uplinks), len(rs.Downlinks))
	}
}

func TestFactsIgnoreLinkState(t *testing.T) {
	// Contracts derive from expected topology (§2.4): failing links must
	// not change the metadata facts.
	topo := topology.MustNew(topology.Figure3Params())
	before := FromTopology(topo)
	topo.FailLink(topo.ToRs()[0], topo.ClusterLeaves(0)[0])
	topo.ShutSession(topo.ToRs()[0], topo.ClusterLeaves(0)[1])
	after := FromTopology(topo)
	if !reflect.DeepEqual(before.Devices, after.Devices) {
		t.Error("metadata changed with link state")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := FromTopology(topo)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Datacenter != f.Datacenter ||
		!reflect.DeepEqual(back.Devices, f.Devices) ||
		!reflect.DeepEqual(back.Prefixes, f.Prefixes) {
		t.Error("JSON round trip changed facts")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("ReadJSON accepted invalid input")
	}
}

func TestByNameAndClusterQueries(t *testing.T) {
	topo := topology.MustNew(topology.Figure3Params())
	f := FromTopology(topo)
	d, ok := f.ByName("fig3-c1-t1-2")
	if !ok || d.Role != topology.RoleLeaf || d.Cluster != 1 {
		t.Errorf("ByName = %+v, %v", d, ok)
	}
	if _, ok := f.ByName("missing"); ok {
		t.Error("ByName matched missing device")
	}
	ps := f.PrefixesInCluster(1)
	if len(ps) != 2 {
		t.Errorf("PrefixesInCluster(1) = %d", len(ps))
	}
	for _, p := range ps {
		if p.Cluster != 1 {
			t.Errorf("wrong cluster in %+v", p)
		}
	}
}
